// Ablation: allreduce algorithm choice under OS noise.
//
// MiniFE's collapse (Fig. 5b) is a property of *blocking synchronization*,
// not of any particular tree: this bench sweeps the allreduce algorithms at
// several scales and payloads, on a quiet LWK and on Linux, showing (a) the
// classic latency/bandwidth trade between algorithms and (b) that the noise
// penalty tracks the number of synchronization stages.

#include <cstdio>

#include "core/config.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"
#include "obs/snapshots.hpp"
#include "runtime/collectives.hpp"
#include "runtime/simmpi.hpp"

namespace {

using namespace mkos;
using runtime::AllreduceAlgo;

double allreduce_us(kernel::OsKind os, int nodes, sim::Bytes bytes, AllreduceAlgo algo,
                    obs::RunLedger& ledger) {
  const auto machine = core::SystemConfig::for_os(os).machine(nodes);
  runtime::Job job{machine, runtime::JobSpec{nodes, 64, 1}, 1};
  runtime::MpiWorld world{job, 99};
  world.collective_model().algo = algo;
  constexpr int kReps = 40;
  for (int i = 0; i < kReps; ++i) world.allreduce(bytes);
  const double us = world.finish().us() / kReps;
  obs::record_world(ledger, world);
  const std::string series = std::string(kernel::to_string(os)) + "." +
                             std::string(runtime::to_string(algo)) + ".n" +
                             std::to_string(nodes) + "." + sim::bytes_to_string(bytes);
  ledger.set_gauge("allreduce_us." + series, us);
  return us;
}

}  // namespace

int main() {
  core::print_banner("Ablation — allreduce algorithms x OS noise",
                     "collective synchronization is the noise coupling point");

  obs::RunLedger ledger = core::bench_ledger(
      "ablation_collectives", "MiniFE Fig. 5b mechanism: stage-count x noise", 99);

  const AllreduceAlgo algos[] = {AllreduceAlgo::kRecursiveDoubling,
                                 AllreduceAlgo::kRabenseifner, AllreduceAlgo::kRing,
                                 AllreduceAlgo::kReduceBroadcast};

  for (const sim::Bytes bytes : {sim::Bytes{8}, sim::Bytes{4} * sim::MiB}) {
    core::Table t{{std::string("payload ") + sim::bytes_to_string(bytes),
                   "McKernel 64n us", "McKernel 1024n us", "Linux 1024n us"}};
    for (const auto algo : algos) {
      t.add_row(
          {std::string(to_string(algo)),
           core::fmt(allreduce_us(kernel::OsKind::kMcKernel, 64, bytes, algo, ledger), 1),
           core::fmt(allreduce_us(kernel::OsKind::kMcKernel, 1024, bytes, algo, ledger), 1),
           core::fmt(allreduce_us(kernel::OsKind::kLinux, 1024, bytes, algo, ledger), 1)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  std::printf("auto policy picks: 8 B -> %s, 4 MiB/64n -> %s, 4 MiB/1024n -> %s\n",
              std::string(to_string(runtime::allreduce_pick({64, 64, 8}))).c_str(),
              std::string(to_string(runtime::allreduce_pick({64, 64, 4 * sim::MiB}))).c_str(),
              std::string(to_string(runtime::allreduce_pick({1024, 64, 4 * sim::MiB}))).c_str());

  core::emit(ledger);
  return 0;
}
