// Ablation D1/D3/D6 (DESIGN.md): memory-management design choices.
//
//  * upfront physical mapping + large pages vs demand paging (D1)
//  * transparent MCDRAM spill vs Linux SNC-4 policies, and quadrant mode (D3)
//  * McKernel demand-paging fallback vs mOS launch partitioning (D6)

#include <cstdio>

#include "core/experiment.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"

namespace {

/// Record the run into the shared ledger and hand back its median.
double run_cell(mkos::obs::RunLedger& ledger, const std::string& series,
                mkos::workloads::App& app, const mkos::core::SystemConfig& config,
                int nodes, int reps, std::uint64_t seed) {
  const mkos::core::RunStats rs = mkos::core::run_app(app, config, nodes, reps, seed);
  mkos::core::record_config(ledger, config, series);
  mkos::core::record_run_stats(ledger, series, rs);
  return rs.median();
}

}  // namespace

int main() {
  using namespace mkos;
  using core::SystemConfig;

  core::print_banner("Ablation — memory management design choices (D1/D3/D6)",
                     "DESIGN.md Section 6");

  obs::RunLedger ledger =
      core::bench_ledger("ablation_mem", "DESIGN.md Section 6 (D1/D3/D6)", 51);

  // ---- D1: what does upfront mapping buy on a fault-heavy app? ----------
  // Run from DDR4 (as in Table I) so the comparison isolates the fault
  // mechanics from the MCDRAM-footprint trade-off the HPC heap makes
  // ("it runs out of MCDRAM", Section IV).
  {
    auto app = workloads::make_lulesh(50, /*force_ddr=*/true);
    SystemConfig lin_cfg = SystemConfig::linux_default();
    lin_cfg.lwk_prefer_mcdram = false;
    const double lin = run_cell(ledger, "d1.linux", *app, lin_cfg, 27, 3, 51);
    SystemConfig mck_no_brk = SystemConfig::mckernel();
    mck_no_brk.hpc_brk = false;
    mck_no_brk.lwk_prefer_mcdram = false;
    const double lwk_demand =
        run_cell(ledger, "d1.mckernel_demand", *app, mck_no_brk, 27, 3, 51);
    SystemConfig mck_full = SystemConfig::mckernel();
    mck_full.lwk_prefer_mcdram = false;
    const double lwk_full =
        run_cell(ledger, "d1.mckernel_hpc_brk", *app, mck_full, 27, 3, 51);
    core::Table t{{"D1: Lulesh @27 nodes (DDR4)", "zones/s", "vs Linux"}};
    t.add_row({"Linux (demand paging)", core::fmt(lin, 0), "100.0%"});
    t.add_row({"McKernel, demand-paged heap", core::fmt(lwk_demand, 0),
               core::fmt_pct(lwk_demand / lin)});
    t.add_row({"McKernel, HPC brk()", core::fmt(lwk_full, 0),
               core::fmt_pct(lwk_full / lin)});
    std::printf("%s\n", t.to_string().c_str());
  }

  // ---- D3: CCS-QCD across memory modes -----------------------------------
  {
    auto app = workloads::make_ccs_qcd();
    const double snc4_linux = run_cell(ledger, "d3.linux_snc4", *app,
                                       SystemConfig::linux_default(), 8, 3, 52);
    SystemConfig quad_linux = SystemConfig::linux_default();
    quad_linux.mem_mode = core::MemMode::kQuadrantFlat;
    const double quad = run_cell(ledger, "d3.linux_quadrant", *app, quad_linux, 8, 3, 52);
    const double mck = run_cell(ledger, "d3.mckernel_snc4", *app,
                                SystemConfig::mckernel(), 8, 3, 52);
    core::Table t{{"D3: CCS-QCD @8 nodes", "Mflops/s/node", "vs Linux SNC-4"}};
    t.add_row({"Linux SNC-4 (DDR4 only)", core::fmt_sci(snc4_linux), "100.0%"});
    t.add_row({"Linux quadrant (numactl -p works)", core::fmt_sci(quad),
               core::fmt_pct(quad / snc4_linux)});
    t.add_row({"McKernel SNC-4 (transparent spill)", core::fmt_sci(mck),
               core::fmt_pct(mck / snc4_linux)});
    std::printf("%s\n", t.to_string().c_str());
  }

  // ---- D6: fallback vs rigid launch partitioning --------------------------
  {
    auto app = workloads::make_ccs_qcd();
    const double mck = run_cell(ledger, "d6.mckernel_fallback", *app,
                                SystemConfig::mckernel(), 8, 3, 53);
    SystemConfig mck_no_fb = SystemConfig::mckernel();
    mck_no_fb.mckernel_demand_fallback = false;
    const double no_fb = run_cell(ledger, "d6.mckernel_no_fallback", *app, mck_no_fb, 8, 3, 53);
    SystemConfig mos_quota = SystemConfig::mos();
    const double mos = run_cell(ledger, "d6.mos_quota", *app, mos_quota, 8, 3, 53);
    SystemConfig mos_no_quota = SystemConfig::mos();
    mos_no_quota.mos_partition_mcdram = false;
    const double mos_nq = run_cell(ledger, "d6.mos_no_quota", *app, mos_no_quota, 8, 3, 53);
    core::Table t{{"D6: CCS-QCD @8 nodes", "Mflops/s/node", "vs McKernel"}};
    t.add_row({"McKernel (demand fallback)", core::fmt_sci(mck), "100.0%"});
    t.add_row({"McKernel, fallback off", core::fmt_sci(no_fb), core::fmt_pct(no_fb / mck)});
    t.add_row({"mOS (per-rank MCDRAM quota)", core::fmt_sci(mos), core::fmt_pct(mos / mck)});
    t.add_row({"mOS, quota off", core::fmt_sci(mos_nq), core::fmt_pct(mos_nq / mck)});
    std::printf("%s\n", t.to_string().c_str());
  }

  core::emit(ledger);
  return 0;
}
