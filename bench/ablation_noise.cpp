// Ablation D5 (DESIGN.md): noise isolation — where does the collective
// collapse threshold sit as a function of the noise tail, and how much of
// the LWK advantage is jitter vs memory management?

#include <cstdio>

#include "core/experiment.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"
#include "runtime/simmpi.hpp"

namespace {

using namespace mkos;

// Iteration time of a MiniFE-shaped loop under an arbitrary noise model.
double loop_time_us(const kernel::NoiseModel& noise, int nodes) {
  const auto machine = core::SystemConfig::mckernel().machine(nodes);
  runtime::Job job{machine, runtime::JobSpec{nodes, 64, 4}, 1};
  runtime::MpiWorld world{job, 77};
  // Swap the extremes source by simulating directly with NoiseExtremes.
  const runtime::NoiseExtremes ex{noise};
  sim::Rng rng{99};
  const sim::TimeNs window = sim::microseconds(200);
  const auto cores = static_cast<std::uint64_t>(nodes) * 64;
  sim::TimeNs total{0};
  constexpr int kIters = 50;
  for (int i = 0; i < kIters; ++i) {
    const auto w = ex.sample(window, cores, rng);
    total += window + w.max;
  }
  return total.us() / kIters;
}

}  // namespace

int main() {
  core::print_banner("Ablation — noise tails vs collective collapse (D5)",
                     "DESIGN.md Section 6; the Fig. 5b mechanism swept");

  obs::RunLedger ledger =
      core::bench_ledger("ablation_noise", "DESIGN.md Section 6 (D5)", 61);

  // Sweep the heavy-tail rate: where does a 200 us window double?
  core::Table t{{"tail rate (1/s/core)", "64 nodes us", "512 nodes us", "2048 nodes us"}};
  for (double rate : {0.0, 0.005, 0.02, 0.05, 0.15}) {
    kernel::NoiseModel m = kernel::noise_lwk();
    if (rate > 0) {
      m.add(kernel::NoiseComponent{"tail", rate, sim::milliseconds(1.1),
                                   kernel::NoiseComponent::Dist::kPareto, 1.35,
                                   sim::milliseconds(24)});
    }
    const double us64 = loop_time_us(m, 64);
    const double us512 = loop_time_us(m, 512);
    const double us2048 = loop_time_us(m, 2048);
    t.add_row({core::fmt(rate, 3), core::fmt(us64, 1), core::fmt(us512, 1),
               core::fmt(us2048, 1)});
    const std::string key = "window_us.rate_" + core::fmt(rate, 3);
    ledger.set_gauge(key + ".n64", us64);
    ledger.set_gauge(key + ".n512", us512);
    ledger.set_gauge(key + ".n2048", us2048);
  }
  std::printf("%s\n", t.to_string().c_str());

  // Cross-check with the full pipeline: MiniFE on Linux with nohz_full off
  // (noisier) vs on, vs LWK.
  auto app = workloads::make_minife();
  core::SystemConfig noisy = core::SystemConfig::linux_default();
  noisy.linux_nohz_full = false;
  const core::RunStats lwk_rs =
      core::run_app(*app, core::SystemConfig::mckernel(), 256, 3, 61);
  const core::RunStats lin_rs =
      core::run_app(*app, core::SystemConfig::linux_default(), 256, 3, 61);
  const core::RunStats bad_rs = core::run_app(*app, noisy, 256, 3, 61);
  core::record_run_stats(ledger, "minife.mckernel.n256", lwk_rs);
  core::record_run_stats(ledger, "minife.linux_nohz.n256", lin_rs);
  core::record_run_stats(ledger, "minife.linux_untuned.n256", bad_rs);
  const double lwk = lwk_rs.median();
  const double lin = lin_rs.median();
  const double bad = bad_rs.median();
  core::Table t2{{"MiniFE @256 nodes", "Mflops", "vs McKernel"}};
  t2.add_row({"McKernel", core::fmt_sci(lwk), "100.0%"});
  t2.add_row({"Linux nohz_full", core::fmt_sci(lin), core::fmt_pct(lin / lwk)});
  t2.add_row({"Linux untuned", core::fmt_sci(bad), core::fmt_pct(bad / lwk)});
  std::printf("%s\n", t2.to_string().c_str());

  core::emit(ledger);
  return 0;
}
