# Bench binaries: one per paper table/figure plus micro-benchmarks.
# Declared with include() from the top-level CMakeLists so that
# ${CMAKE_BINARY_DIR}/bench contains ONLY executables — the harness runs
# `for b in build/bench/*; do $b; done`.

function(mkos_add_bench name)
  add_executable(${name} ${CMAKE_CURRENT_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE mkos mkos_warnings)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

function(mkos_add_gbench name)
  mkos_add_bench(${name})
  # No benchmark_main: micro_substrates carries its own main so it can
  # emit a BENCH_*.json run ledger after the timing loops.
  target_link_libraries(${name} PRIVATE benchmark::benchmark)
endfunction()

mkos_add_bench(fig4_overview)
mkos_add_bench(fig5a_ccs_qcd)
mkos_add_bench(fig5b_minife)
mkos_add_bench(fig6a_lulesh)
mkos_add_bench(fig6b_lammps)
mkos_add_bench(table1_brk)
mkos_add_bench(ltp_compat)
mkos_add_bench(brk_trace)
mkos_add_bench(opt_ablation)
mkos_add_bench(core_partitioning)
mkos_add_bench(ablation_mem)
mkos_add_bench(ablation_noise)
mkos_add_bench(ablation_collectives)
mkos_add_bench(isolation)
mkos_add_bench(design_space)
mkos_add_bench(phase_breakdown)
mkos_add_bench(syscall_matrix)
mkos_add_bench(hotpath_sampling)
mkos_add_bench(event_queue)
mkos_add_bench(perf_smoke)
mkos_add_bench(sweep_sched)
mkos_add_bench(resilience)
mkos_add_bench(fig_numa_lookup)
mkos_add_gbench(micro_substrates)
