// Section IV brk() trace: Lulesh -s 30 heap behaviour over the full 932
// timesteps, plus the per-kernel cost of the churn.
//
//   paper: "There were 7,526 queries ... 3,028 expansion requests, and
//   1,499 requests for contraction for a total of about 12,000 calls to
//   brk() ... At its largest, the heap grew to 87 MB, but ... the
//   cumulative amount of memory requested was 22 GB."

#include <cstdio>

#include "core/config.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"
#include "obs/snapshots.hpp"
#include "runtime/simmpi.hpp"
#include "workloads/app.hpp"

int main() {
  using namespace mkos;
  using core::SystemConfig;

  core::print_banner("Section IV — Lulesh -s 30 brk() trace (932 timesteps)",
                     "IPDPS'18; measured: 7,526 / 3,028 / 1,499 calls, 87 MB, 22 GB");

  core::Table table{{"kernel", "queries", "grows", "shrinks", "total", "max heap",
                     "cum. growth", "heap faults"}};

  obs::RunLedger ledger =
      core::bench_ledger("brk_trace", "IPDPS'18 Section IV, Lulesh brk() trace", 3);

  for (const auto os :
       {kernel::OsKind::kLinux, kernel::OsKind::kMcKernel, kernel::OsKind::kMos}) {
    auto app = workloads::make_lulesh(30, /*force_ddr=*/false, /*iteration_cap=*/932);
    const SystemConfig config = SystemConfig::for_os(os);
    const runtime::Machine machine = config.machine(1);
    runtime::Job job{machine, app->spec(1), /*seed=*/3};
    app->setup(job);
    runtime::MpiWorld world{job, 4};
    (void)app->run(job, world);

    const auto& s = job.lane(0).heap()->stats();
    table.add_row({config.label(), std::to_string(s.queries), std::to_string(s.grows),
                   std::to_string(s.shrinks), std::to_string(s.calls()),
                   sim::bytes_to_string(s.max_break), sim::bytes_to_string(s.cum_growth),
                   std::to_string(s.faults)});

    // Per-kernel sub-ledger merged under a deterministic order (the loop).
    obs::RunLedger sub;
    obs::record_heap(sub, s);
    obs::record_world(sub, world);
    core::record_config(ledger, config);
    ledger.set_gauge("brk_calls." + config.label(), static_cast<double>(s.calls()));
    ledger.set_gauge("heap_faults." + config.label(), static_cast<double>(s.faults));
    ledger.merge(sub);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper row (any kernel, bookkeeping): 7,526 + 3,028 + 1,499 = 12,053 calls;\n"
              "87 MB peak; 22 GB cumulative. Under Linux the 3,028 expansions refault\n"
              "everything the 1,499 contractions released — on 64 ranks per node.\n");

  core::emit(ledger);
  return 0;
}
