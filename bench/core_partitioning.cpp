// Section III-A core-count observation: "Additional experiments have shown
// that mOS using 64 or 66 cores beats Linux on 68 cores. This is often due
// to CPU 0 running services and introducing noise."

#include <cstdio>

#include "core/experiment.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"

namespace {

using mkos::core::SystemConfig;

double hpcg_median(const SystemConfig& config, mkos::obs::RunLedger& ledger,
                   const std::string& series) {
  auto app = mkos::workloads::make_hpcg();
  const mkos::core::RunStats rs =
      mkos::core::run_app(*app, config, /*nodes=*/32, /*reps=*/5, /*seed=*/41);
  mkos::core::record_config(ledger, config, series);
  mkos::core::record_run_stats(ledger, series, rs);
  return rs.median();
}

}  // namespace

int main() {
  using namespace mkos;

  core::print_banner("Section III-A — application cores vs service cores (HPCG, 32 nodes)",
                     "IPDPS'18; 'mOS using 64 or 66 cores beats Linux on 68 cores'");

  core::Table table{{"configuration", "app cores", "GFLOP/s", "vs Linux 68c"}};

  obs::RunLedger ledger =
      core::bench_ledger("core_partitioning", "IPDPS'18 Section III-A", 41);

  // Linux using all 68 cores: more compute, but application ranks share the
  // cores running system services.
  SystemConfig linux68 = SystemConfig::linux_default();
  linux68.app_cores = 68;
  linux68.service_cores = 0;
  const double base = hpcg_median(linux68, ledger, "hpcg.linux_68c");
  table.add_row({"Linux, all cores", "68", core::fmt(base, 1), "100.0%"});

  SystemConfig linux64 = SystemConfig::linux_default();
  const double l64 = hpcg_median(linux64, ledger, "hpcg.linux_64c");
  table.add_row({"Linux, 4 reserved", "64", core::fmt(l64, 1), core::fmt_pct(l64 / base)});

  for (int cores : {64, 66}) {
    SystemConfig mos = SystemConfig::mos();
    mos.app_cores = cores;
    mos.service_cores = 68 - cores;
    const double v =
        hpcg_median(mos, ledger, "hpcg.mos_" + std::to_string(cores) + "c");
    table.add_row({"mOS", std::to_string(cores), core::fmt(v, 1),
                   core::fmt_pct(v / base)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected ordering: mOS 64c and 66c above Linux 68c — reserving cores\n"
              "for the OS buys back more than the lost compute at scale.\n");

  core::emit(ledger);
  return 0;
}
