// Design-space bench: the multi-kernel triangle of Fig. 1, quantified.
//
// Four points in the space on three workloads that stress different corners:
//   Linux     — full compatibility, the noise/paging costs of Section IV
//   McKernel  — LWK performance, proxy offload, module-level isolation
//   mOS       — LWK performance, thread-migration offload, tight integration
//   FusedOS   — the historical extreme (Section V-C): user-level LWK that
//               offloads *everything*, CNK-grade quiet cores
//
// The pattern the paper's design rationale predicts: FusedOS matches the
// multi-kernels when syscalls are rare (MiniFE at scale — noise is all that
// matters) and falls off a cliff when the performance-sensitive calls the
// multi-kernels keep local dominate (Lulesh's brk churn, LAMMPS' device
// writes).

#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "hw/knl.hpp"
#include "kernel/node.hpp"

namespace {

using mkos::core::SystemConfig;

double run(mkos::workloads::App& app, mkos::kernel::OsKind os, int nodes) {
  return mkos::core::run_app(app, SystemConfig::for_os(os), nodes, 5, 81).median();
}

}  // namespace

int main() {
  using namespace mkos;

  core::print_banner("Design space — Linux vs McKernel vs mOS vs FusedOS",
                     "Fig. 1 quantified; FusedOS per Section V-C");

  struct Row {
    const char* label;
    std::unique_ptr<workloads::App> app;
    int nodes;
  };
  Row rows[] = {
      {"MiniFE @512 (collectives)", workloads::make_minife(), 512},
      {"Lulesh @27 (brk churn)", workloads::make_lulesh(50), 27},
      {"LAMMPS @512 (device I/O)", workloads::make_lammps(), 512},
  };

  core::Table table{{"workload", "Linux", "McKernel", "mOS", "FusedOS"}};
  for (auto& row : rows) {
    const double lin = run(*row.app, kernel::OsKind::kLinux, row.nodes);
    const double mck = run(*row.app, kernel::OsKind::kMcKernel, row.nodes);
    const double mos = run(*row.app, kernel::OsKind::kMos, row.nodes);
    const double fus = run(*row.app, kernel::OsKind::kFusedOs, row.nodes);
    table.add_row({row.label, "100.0%", core::fmt_pct(mck / lin),
                   core::fmt_pct(mos / lin), core::fmt_pct(fus / lin)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Where the designs structurally differ: the price of the calls HPC
  // codes issue on the critical path.
  core::Table lat{{"syscall latency (ns)", "Linux", "McKernel", "mOS", "FusedOS"}};
  std::vector<std::unique_ptr<kernel::Node>> nodes;
  std::vector<kernel::Kernel*> kernels;
  std::uint64_t seed = 90;
  for (const auto os : {kernel::OsKind::kLinux, kernel::OsKind::kMcKernel,
                        kernel::OsKind::kMos, kernel::OsKind::kFusedOs}) {
    kernel::NodeOsConfig cfg;
    cfg.os = os;
    nodes.push_back(std::make_unique<kernel::Node>(hw::knl_snc4_flat(), cfg, seed++));
    kernels.push_back(&nodes.back()->app_kernel());
  }
  for (const auto sys : {kernel::Sys::kBrk, kernel::Sys::kMmap, kernel::Sys::kFutex,
                         kernel::Sys::kSchedYield, kernel::Sys::kOpen,
                         kernel::Sys::kWrite}) {
    std::vector<std::string> row{std::string(kernel::sys_name(sys))};
    for (kernel::Kernel* k : kernels) {
      row.push_back(std::to_string(k->priced(sys).ns()));
    }
    lat.add_row(std::move(row));
  }
  std::printf("%s\n", lat.to_string().c_str());
  std::printf(
      "FusedOS' user-level LWK keeps the noise win but re-pays the proxy trip\n"
      "on every call — brk/mmap/futex run at offload latency. The multi-\n"
      "kernels close that gap by implementing the performance-sensitive calls\n"
      "inside the LWK and offloading only the compatibility surface.\n");
  return 0;
}
