// Design-space bench: the multi-kernel triangle of Fig. 1, quantified.
//
// Four points in the space on three workloads that stress different corners:
//   Linux     — full compatibility, the noise/paging costs of Section IV
//   McKernel  — LWK performance, proxy offload, module-level isolation
//   mOS       — LWK performance, thread-migration offload, tight integration
//   FusedOS   — the historical extreme (Section V-C): user-level LWK that
//               offloads *everything*, CNK-grade quiet cores
//
// The pattern the paper's design rationale predicts: FusedOS matches the
// multi-kernels when syscalls are rare (MiniFE at scale — noise is all that
// matters) and falls off a cliff when the performance-sensitive calls the
// multi-kernels keep local dominate (Lulesh's brk churn, LAMMPS' device
// writes).

#include <cstdio>
#include <set>

#include "core/campaign.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"
#include "hw/knl.hpp"
#include "kernel/node.hpp"

namespace {

using mkos::core::SystemConfig;

}  // namespace

int main() {
  using namespace mkos;

  core::print_banner("Design space — Linux vs McKernel vs mOS vs FusedOS",
                     "Fig. 1 quantified; FusedOS per Section V-C");

  struct Row {
    const char* label;
    const char* app;  // registry name; the campaign builds one App per task
    int nodes;
  };
  const Row rows[] = {
      {"MiniFE @512 (collectives)", "MiniFE", 512},
      {"Lulesh @27 (brk churn)", "Lulesh2.0", 27},
      {"LAMMPS @512 (device I/O)", "LAMMPS", 512},
  };

  // One campaign per row (the node counts differ); all four OS cells of a
  // row simulate concurrently and the shared cache carries cells across
  // rows should any repeat. MKOS_CELL_STORE=<dir> adds the persistent disk
  // tier: a warm store serves every cell without resimulating.
  // MKOS_SHARD=<i>/<n> runs one keyspace slice (DESIGN.md §16): a sharded
  // process fills the store and skips the comparison tables — the merge is
  // an unsharded rerun over the warm store.
  const core::ShardSpec shard = core::ShardSpec::from_env();
  sim::ThreadPool pool;
  const auto store = core::CellStore::from_env();
  core::CellCache cache(store.get());
  core::Campaign campaign(pool, cache);

  obs::RunLedger ledger = core::bench_ledger("design_space", "Fig. 1 quantified", 81);

  std::set<std::string> recorded;
  core::Table table{{"workload", "Linux", "McKernel", "mOS", "FusedOS"}};
  for (const Row& row : rows) {
    core::CampaignSpec spec;
    spec.apps = {row.app};
    spec.configs = {SystemConfig::for_os(kernel::OsKind::kLinux),
                    SystemConfig::for_os(kernel::OsKind::kMcKernel),
                    SystemConfig::for_os(kernel::OsKind::kMos),
                    SystemConfig::for_os(kernel::OsKind::kFusedOs)};
    spec.nodes = {row.nodes};
    spec.reps = 5;
    spec.seed = 81;
    spec.shard = shard;
    const auto cells = campaign.run(spec);
    for (const core::CellResult& cell : cells) {
      if (cell.skipped) continue;  // sharded run: foreign cell, no statistics
      // Dedupe repeated cells by series name, not by from_cache: with a
      // warm disk store every cell is a cache hit yet must still merge.
      const std::string series = std::string(row.app) + "." + cell.config_label +
                                 ".n" + std::to_string(cell.nodes);
      if (!recorded.insert(series).second) continue;
      core::record_run_stats(ledger, series, cell.stats);
    }
    if (shard.sharded()) continue;  // ratios need all four cells resident
    const double lin = cells[0].stats.median();
    table.add_row({row.label, "100.0%", core::fmt_pct(cells[1].stats.median() / lin),
                   core::fmt_pct(cells[2].stats.median() / lin),
                   core::fmt_pct(cells[3].stats.median() / lin)});
  }
  if (shard.sharded()) {
    std::printf("sharded run %d/%d: comparison table deferred to the merge pass\n\n",
                shard.index, shard.count);
  } else {
    std::printf("%s\n", table.to_string().c_str());
  }

  // Where the designs structurally differ: the price of the calls HPC
  // codes issue on the critical path.
  core::Table lat{{"syscall latency (ns)", "Linux", "McKernel", "mOS", "FusedOS"}};
  std::vector<std::unique_ptr<kernel::Node>> nodes;
  std::vector<kernel::Kernel*> kernels;
  std::uint64_t seed = 90;
  for (const auto os : {kernel::OsKind::kLinux, kernel::OsKind::kMcKernel,
                        kernel::OsKind::kMos, kernel::OsKind::kFusedOs}) {
    kernel::NodeOsConfig cfg;
    cfg.os = os;
    nodes.push_back(std::make_unique<kernel::Node>(hw::knl_snc4_flat(), cfg, seed++));
    kernels.push_back(&nodes.back()->app_kernel());
  }
  for (const auto sys : {kernel::Sys::kBrk, kernel::Sys::kMmap, kernel::Sys::kFutex,
                         kernel::Sys::kSchedYield, kernel::Sys::kOpen,
                         kernel::Sys::kWrite}) {
    std::vector<std::string> row{std::string(kernel::sys_name(sys))};
    for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
      const sim::TimeNs cost = kernels[ki]->priced(sys);
      ledger.set_gauge("syscall_ns." + std::string(kernels[ki]->name()) + "." +
                           std::string(kernel::sys_name(sys)),
                       static_cast<double>(cost.ns()));
      row.push_back(std::to_string(cost.ns()));
    }
    lat.add_row(std::move(row));
  }
  std::printf("%s\n", lat.to_string().c_str());
  std::printf(
      "FusedOS' user-level LWK keeps the noise win but re-pays the proxy trip\n"
      "on every call — brk/mmap/futex run at offload latency. The multi-\n"
      "kernels close that gap by implementing the performance-sensitive calls\n"
      "inside the LWK and offloading only the compatibility surface.\n");

  core::record_campaign(ledger, campaign.telemetry(), sim::ThreadPool::default_threads(),
                        store.get());
  core::emit(ledger);
  return 0;
}
