// Event-arena microbenchmark: the pointer-heap event queue the arena rewrite
// replaced vs sim::EventQueue (flat slab arena + 4-ary implicit index heap,
// DESIGN.md §13). The acceptance bar for the rewrite is a >= 2x events/sec
// advantage on the combined schedule/drain + timer-churn workload; this
// binary measures exactly that, against a faithful in-binary reimplementation
// of the old design (unique_ptr heap nodes, std::function actions, an id ->
// node map consulted on every cancel), and cross-checks that both engines
// execute the same events in the same order (order-sensitive checksums).
//
// The ledger also surfaces the data-layout telemetry the rewrite added but
// deliberately keeps out of obs::record_world (pre-rewrite ledgers stay
// byte-identical): open-table probe counts and whole-cycle heap memo hits as
// engine.cache.*, and the arena's slab/tombstone accounting as engine.queue.*.
//
//   MKOS_EQ_EVENTS scales the per-workload event counts (default 200000).
//   MKOS_EQ_REPS   timed repetitions per side, interleaved; min wall wins.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"
#include "runtime/simmpi.hpp"
#include "sim/contracts.hpp"
#include "sim/env.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace {

using namespace mkos;

// ------------------------------------------------------------ legacy queue
/// The pre-arena design, reimplemented verbatim as the benchmark reference:
/// a binary heap of raw pointers into unique_ptr-owned nodes, std::function
/// payloads, and an id -> node map that every schedule inserts into and
/// every cancel/pop erases from. Semantics match sim::EventQueue exactly
/// (FIFO among equal timestamps, O(1)-ish cancel via lazy tombstones).
class LegacyQueue {
 public:
  std::uint64_t schedule_at(sim::TimeNs at, std::function<void()> action) {
    MKOS_EXPECTS(at >= now_);
    auto node = std::make_unique<Node>();
    node->at = at;
    node->seq = next_seq_++;
    node->action = std::move(action);
    const std::uint64_t id = node->seq + 1;  // 0 is never issued
    heap_.push_back(node.get());
    std::push_heap(heap_.begin(), heap_.end(), later);
    index_.emplace(id, std::move(node));
    ++live_;
    return id;
  }

  std::uint64_t schedule_after(sim::TimeNs delay, std::function<void()> action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  bool cancel(std::uint64_t id) {
    const auto it = index_.find(id);
    if (it == index_.end() || !it->second->armed) return false;
    it->second->armed = false;  // lazy tombstone; the heap entry pops later
    --live_;
    return true;
  }

  bool step() {
    skim();
    if (heap_.empty()) return false;
    Node* top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
    now_ = top->at;
    std::function<void()> action = std::move(top->action);
    index_.erase(top->seq + 1);
    --live_;
    ++executed_;
    action();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

  [[nodiscard]] sim::TimeNs now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  [[nodiscard]] std::uint64_t compactions() const { return 0; }
  [[nodiscard]] std::size_t slot_capacity() const { return 0; }

 private:
  struct Node {
    sim::TimeNs at{0};
    std::uint64_t seq = 0;
    std::function<void()> action;
    bool armed = true;
  };
  /// Min-heap comparator for std::push_heap (which builds a max-heap).
  static bool later(const Node* a, const Node* b) {
    if (a->at != b->at) return a->at > b->at;
    return a->seq > b->seq;
  }
  void skim() {
    while (!heap_.empty() && !heap_.front()->armed) {
      Node* top = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), later);
      heap_.pop_back();
      index_.erase(top->seq + 1);
    }
  }

  sim::TimeNs now_{0};
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Node*> heap_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Node>> index_;
};

// -------------------------------------------------------------- workloads
/// What one side produced: order-sensitive checksum plus the queue's own
/// accounting. Everything but the arena telemetry must match across engines.
struct Outcome {
  std::uint64_t checksum = 0;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  std::int64_t final_now_ns = 0;
  std::size_t peak_pending = 0;
  std::uint64_t compactions = 0;
  std::size_t slot_capacity = 0;
};

/// Bulk schedule at pseudo-random times, then drain — the trace-replay /
/// noise-timeline shape: insertion-heavy, no cancellation.
template <typename Queue>
Outcome schedule_drain(int events, std::uint64_t seed) {
  Queue q;
  sim::Rng rng(seed);
  Outcome out;
  std::uint64_t sum = 0;
  for (int i = 0; i < events; ++i) {
    const sim::TimeNs at{static_cast<std::int64_t>(rng.uniform_index(1u << 20))};
    q.schedule_at(at, [&sum, i] { sum = sum * 31 + static_cast<std::uint64_t>(i); });
    out.peak_pending = std::max(out.peak_pending, q.pending());
  }
  q.run();
  out.checksum = sum;
  out.executed = q.executed();
  out.final_now_ns = q.now().ns();
  out.compactions = q.compactions();
  out.slot_capacity = q.slot_capacity();
  return out;
}

/// Retransmit-timer churn — the IKC/scheduler shape: a sliding window of
/// armed timers where most are cancelled and rearmed before they fire, with
/// interleaved stepping. Exercises cancel, slot reuse and tombstone sweeps.
template <typename Queue>
Outcome timer_churn(int iters, std::uint64_t seed) {
  Queue q;
  sim::Rng rng(seed);
  Outcome out;
  std::uint64_t sum = 0;
  constexpr std::size_t kWindow = 512;
  std::vector<std::uint64_t> ring(kWindow, 0);
  for (int i = 0; i < iters; ++i) {
    const std::size_t slot = static_cast<std::size_t>(i) % kWindow;
    if (ring[slot] != 0 && q.cancel(ring[slot])) ++out.cancelled;
    const sim::TimeNs delay{100 + static_cast<std::int64_t>(rng.uniform_index(10000))};
    ring[slot] =
        q.schedule_after(delay, [&sum, i] { sum = sum * 31 + static_cast<std::uint64_t>(i); });
    if ((i & 3) == 3) q.step();
    out.peak_pending = std::max(out.peak_pending, q.pending());
  }
  q.run();
  out.checksum = sum;
  out.executed = q.executed();
  out.final_now_ns = q.now().ns();
  out.compactions = q.compactions();
  out.slot_capacity = q.slot_capacity();
  return out;
}

bool same_events(const Outcome& a, const Outcome& b) {
  return a.checksum == b.checksum && a.executed == b.executed &&
         a.cancelled == b.cancelled && a.final_now_ns == b.final_now_ns &&
         a.peak_pending == b.peak_pending;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  // mkos-lint: allow(wall-clock) — host-side telemetry: this binary exists
  // to time the two queue engines; the measurements land in the host block.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Time both workloads back to back on one engine.
template <typename Queue>
double run_side(int events, std::uint64_t seed, Outcome* drain, Outcome* churn) {
  // mkos-lint: allow(wall-clock) — host telemetry: queue engine throughput.
  const auto t0 = std::chrono::steady_clock::now();
  *drain = schedule_drain<Queue>(events, seed);
  *churn = timer_churn<Queue>(events, seed + 1);
  return seconds_since(t0);
}

/// Drive the cost-cache / heap-memo fast paths the way the engine
/// equivalence tests do, so the ledger carries real engine.cache.* numbers.
runtime::MpiWorld::EngineCounters sample_cache_counters() {
  const runtime::Machine m = core::SystemConfig::mckernel().machine(4);
  runtime::Job job{m, runtime::JobSpec{4, 8, 1}, 1};
  runtime::MpiWorld world{job, 1234};
  world.mpi_init();
  const std::int64_t grow = 8 * static_cast<std::int64_t>(sim::MiB);
  const std::vector<std::int64_t> cycle{grow, 0, -grow};
  for (int step = 0; step < 8; ++step) {
    world.heap_cycle(cycle);
    world.compute_bytes(32 * sim::MiB);
    world.allreduce(64 * sim::KiB);
    world.halo_exchange(256 * sim::KiB, 6);
  }
  world.barrier();
  (void)world.finish();
  return world.engine_counters();
}

}  // namespace

int main() {
  const int events = sim::env_int("MKOS_EQ_EVENTS", 200000, 1000, 100000000);
  const int reps = sim::env_int("MKOS_EQ_REPS", 3, 1, 100);

  core::print_banner("event_queue — pointer-heap vs flat event arena",
                     "event-arena acceptance microbenchmark (DESIGN.md §13)");

  // Interleave the reps so host-side drift hits both engines alike; keep the
  // best (least-disturbed) wall time per side.
  double legacy_wall = 0.0;
  double arena_wall = 0.0;
  Outcome legacy_drain;
  Outcome legacy_churn;
  Outcome arena_drain;
  Outcome arena_churn;
  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t seed = 42 + 2 * static_cast<std::uint64_t>(rep);
    const double lw = run_side<LegacyQueue>(events, seed, &legacy_drain, &legacy_churn);
    const double aw = run_side<sim::EventQueue>(events, seed, &arena_drain, &arena_churn);
    legacy_wall = rep == 0 ? lw : std::min(legacy_wall, lw);
    arena_wall = rep == 0 ? aw : std::min(arena_wall, aw);
    // Equivalence gate: both engines executed the same events in the same
    // order. A checksum split here means the rewrite changed semantics.
    MKOS_ASSERT(same_events(legacy_drain, arena_drain));
    MKOS_ASSERT(same_events(legacy_churn, arena_churn));
  }

  const double total_events = 2.0 * static_cast<double>(events);
  const double legacy_rate = total_events / legacy_wall;
  const double arena_rate = total_events / arena_wall;
  const double speedup = arena_rate / legacy_rate;

  core::Table t{{"engine", "events/s", "executed", "cancelled", "peak pending"}};
  t.add_row({"legacy pointer heap", core::fmt(legacy_rate, 0),
             std::to_string(legacy_drain.executed + legacy_churn.executed),
             std::to_string(legacy_churn.cancelled),
             std::to_string(legacy_drain.peak_pending)});
  t.add_row({"flat event arena", core::fmt(arena_rate, 0),
             std::to_string(arena_drain.executed + arena_churn.executed),
             std::to_string(arena_churn.cancelled),
             std::to_string(arena_drain.peak_pending)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("queue speedup: %.2fx   (acceptance bar: >= 2x)\n", speedup);
  std::printf("arena slab: %zu slots for %zu peak events, %llu tombstone sweeps\n\n",
              std::max(arena_drain.slot_capacity, arena_churn.slot_capacity),
              std::max(arena_drain.peak_pending, arena_churn.peak_pending),
              static_cast<unsigned long long>(arena_drain.compactions +
                                              arena_churn.compactions));

  const runtime::MpiWorld::EngineCounters cache = sample_cache_counters();

  obs::RunLedger ledger = core::bench_ledger(
      "event_queue", "event-arena acceptance microbenchmark", 42);
  ledger.set_meta("events", std::to_string(events));
  ledger.set_meta("reps", std::to_string(reps));
  // Deterministic block — the arena's slab/tombstone accounting...
  ledger.incr("engine.queue.executed", arena_drain.executed + arena_churn.executed);
  ledger.incr("engine.queue.cancelled", arena_drain.cancelled + arena_churn.cancelled);
  ledger.incr("engine.queue.compactions",
              arena_drain.compactions + arena_churn.compactions);
  ledger.incr("engine.queue.peak_pending",
              std::max(arena_drain.peak_pending, arena_churn.peak_pending));
  ledger.incr("engine.queue.slot_capacity",
              std::max(arena_drain.slot_capacity, arena_churn.slot_capacity));
  // ...and the cost-cache / heap-memo layout telemetry (kept out of
  // obs::record_world so pre-rewrite ledgers stay byte-identical).
  ledger.incr("engine.cache.coll_hits", cache.coll_cache_hits);
  ledger.incr("engine.cache.coll_misses", cache.coll_cache_misses);
  ledger.incr("engine.cache.coll_probes", cache.coll_cache_probes);
  ledger.incr("engine.cache.msg_hits", cache.msg_cache_hits);
  ledger.incr("engine.cache.msg_misses", cache.msg_cache_misses);
  ledger.incr("engine.cache.msg_probes", cache.msg_cache_probes);
  ledger.incr("engine.cache.heap_memo_hits", cache.heap_memo_hits);
  ledger.incr("engine.cache.heap_memo_misses", cache.heap_memo_misses);
  // Host block: the wall-clock measurements themselves.
  ledger.set_host("legacy_events_per_s", core::json_number(legacy_rate));
  ledger.set_host("arena_events_per_s", core::json_number(arena_rate));
  ledger.set_host("queue_speedup", core::json_number(speedup));
  core::emit(ledger);
  return 0;
}
