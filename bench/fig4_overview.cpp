// Figure 4: "Comparing mOS and McKernel against the Linux baseline".
//
// Relative median performance of the two LWKs vs Linux for the seven Fig. 4
// applications over 1..2048 nodes (5 runs each, median), plus the paper's
// headline aggregation: "a median performance improvement of 9% with some
// applications as high as 280%".
//
//   MKOS_FIG4_MAX_NODES / MKOS_FIG4_REPS env vars shrink the sweep for
//   quick runs; defaults reproduce the full figure.

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "core/report.hpp"

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

}  // namespace

int main() {
  using namespace mkos;
  using core::SystemConfig;

  const int max_nodes = env_int("MKOS_FIG4_MAX_NODES", 2048);
  const int reps = env_int("MKOS_FIG4_REPS", 5);

  core::print_banner("Fig. 4 — relative median performance vs Linux, 1..2048 nodes",
                     "IPDPS'18 10.1109/IPDPS.2018.00022, Figure 4");

  const auto apps = workloads::make_fig4_apps();
  std::vector<std::vector<core::RelativePoint>> mck_curves;
  std::vector<std::vector<core::RelativePoint>> mos_curves;

  for (const auto& app : apps) {
    const auto linux_sweep =
        core::scaling_sweep(*app, SystemConfig::linux_default(), reps, 42, max_nodes);
    const auto mck_sweep =
        core::scaling_sweep(*app, SystemConfig::mckernel(), reps, 42, max_nodes);
    const auto mos_sweep =
        core::scaling_sweep(*app, SystemConfig::mos(), reps, 42, max_nodes);
    const auto mck_rel = core::relative_to(mck_sweep, linux_sweep);
    const auto mos_rel = core::relative_to(mos_sweep, linux_sweep);

    core::Table table{{std::string(app->name()) + " nodes", "McKernel/Linux",
                       "mOS/Linux"}};
    for (std::size_t i = 0; i < mck_rel.size(); ++i) {
      table.add_row({std::to_string(mck_rel[i].nodes), core::fmt(mck_rel[i].ratio, 3),
                     core::fmt(mos_rel[i].ratio, 3)});
    }
    std::printf("%s\n", table.to_string().c_str());

    mck_curves.push_back(mck_rel);
    mos_curves.push_back(mos_rel);
  }

  std::vector<std::vector<core::RelativePoint>> all = mck_curves;
  all.insert(all.end(), mos_curves.begin(), mos_curves.end());
  const core::Headline h = core::headline(all);
  std::printf("HEADLINE  median LWK/Linux ratio: %s   best: %s\n",
              core::fmt_pct(h.median_ratio).c_str(), core::fmt_pct(h.best_ratio).c_str());
  std::printf("          paper: median +9%% (109%%), best ~280%% gain aside from the\n"
              "          MiniFE outliers (6.47x / 7.01x at 1,024 nodes)\n");
  return 0;
}
