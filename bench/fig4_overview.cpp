// Figure 4: "Comparing mOS and McKernel against the Linux baseline".
//
// Relative median performance of the two LWKs vs Linux for the seven Fig. 4
// applications over 1..2048 nodes (5 runs each, median), plus the paper's
// headline aggregation: "a median performance improvement of 9% with some
// applications as high as 280%".
//
// Runs on the parallel campaign engine: the cell grid fans out across a
// sim::ThreadPool and the Linux baseline cells — requested by both the
// McKernel and the mOS comparison — are simulated once and served from the
// cell cache afterwards. A 1-thread cold-cache reference run measures the
// serial wall clock; results are bit-identical by construction (positional
// seeds), and the full run ledger lands in BENCH_fig4_overview.json —
// identical modulo the host block for any MKOS_THREADS value.
//
//   MKOS_FIG4_MAX_NODES / MKOS_FIG4_REPS env vars shrink the sweep for
//   quick runs; defaults reproduce the full figure. MKOS_THREADS sets the
//   pool size (default: hardware concurrency). MKOS_FIG4_SKIP_SERIAL=1
//   skips the serial reference timing. MKOS_CELL_STORE=<dir> attaches the
//   persistent cell store: finished cells land on disk and later runs load
//   them instead of resimulating (campaign.store.* counters in the ledger).
//   MKOS_FIG4_RESUME=1 skips cells the store already holds (a "what
//   remains" pass); MKOS_SHARD=<i>/<n> runs one keyspace slice of the grid
//   (DESIGN.md §16) — both produce partial, store-filling runs whose merge
//   is a plain unsharded rerun over the warm store.

#include <chrono>
#include <cstdio>
#include <map>
#include <set>

#include "core/campaign.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"
#include "sim/env.hpp"

namespace {

using namespace mkos;
using core::SystemConfig;

struct SweepOpts {
  int max_nodes = 2048;
  int reps = 5;
  bool resume = false;          ///< MKOS_FIG4_RESUME: skip already-stored cells
  core::ShardSpec shard;        ///< MKOS_SHARD keyspace slice
  [[nodiscard]] bool partial() const { return resume || shard.sharded(); }
};

core::CampaignSpec fig4_spec(const SweepOpts& opts) {
  core::CampaignSpec spec;
  spec.apps = workloads::fig4_app_names();
  spec.reps = opts.reps;
  spec.seed = 42;
  spec.max_nodes = opts.max_nodes;
  spec.resume = opts.resume;
  spec.shard = opts.shard;
  return spec;
}

/// The two campaign phases share every Linux cell: phase two's baseline is
/// pure cache hits.
std::vector<core::CellResult> run_cells(core::Campaign& campaign,
                                        const SweepOpts& opts) {
  core::CampaignSpec spec = fig4_spec(opts);
  spec.configs = {SystemConfig::linux_default(), SystemConfig::mckernel()};
  auto cells = campaign.run(spec);
  spec.configs = {SystemConfig::linux_default(), SystemConfig::mos()};
  auto mos_cells = campaign.run(spec);
  cells.insert(cells.end(), mos_cells.begin(), mos_cells.end());
  return cells;
}

/// Reassemble per-(app, config) scaling curves from the flat cell list.
std::map<std::string, std::map<std::string, std::vector<core::ScalingPoint>>> curves_of(
    const std::vector<core::CellResult>& cells) {
  std::map<std::string, std::map<std::string, std::vector<core::ScalingPoint>>> curves;
  for (const core::CellResult& cell : cells) {
    if (cell.skipped) continue;  // sharded/resumed runs: no statistics
    auto& curve = curves[cell.app][cell.config_label];
    const core::ScalingPoint point{cell.nodes, cell.stats.median(), cell.stats.min(),
                                   cell.stats.max()};
    // The Linux baseline appears in both phases; keep one point per node.
    bool seen = false;
    for (const auto& p : curve) seen = seen || p.nodes == point.nodes;
    if (!seen) curve.push_back(point);
  }
  return curves;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  // mkos-lint: allow(wall-clock) — host-side telemetry only: times the sweep
  // itself for the speedup report; never feeds a simulated result.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  SweepOpts opts;
  opts.max_nodes = sim::env_int("MKOS_FIG4_MAX_NODES", 2048, 1, 1 << 20);
  opts.reps = sim::env_int("MKOS_FIG4_REPS", 5, 1, 1000);
  // Sharded / resumed sweeps exist to fill the cell store, not to render the
  // figure: foreign or already-stored cells come back skipped with empty
  // statistics, so the tables, headline, and serial reference are suppressed
  // and the ledger carries only the cells this process actually resolved.
  // The merge pass — an unsharded run over the warm store — produces the
  // full figure and the byte-comparable ledger.
  opts.resume = sim::env_int("MKOS_FIG4_RESUME", 0, 0, 1) == 1;
  opts.shard = core::ShardSpec::from_env();
  const int max_nodes = opts.max_nodes;
  const int reps = opts.reps;
  const int threads = sim::ThreadPool::default_threads();

  core::print_banner("Fig. 4 — relative median performance vs Linux, 1..2048 nodes",
                     "IPDPS'18 10.1109/IPDPS.2018.00022, Figure 4");

  sim::ThreadPool pool(threads);
  const auto store = core::CellStore::from_env();
  core::CellCache cache(store.get());
  core::Campaign campaign(pool, cache);
  // mkos-lint: allow(wall-clock) — host telemetry: parallel sweep wall time.
  const auto t0 = std::chrono::steady_clock::now();
  const auto cells = run_cells(campaign, opts);
  const double parallel_s = seconds_since(t0);

  const auto curves = curves_of(cells);
  std::vector<std::vector<core::RelativePoint>> all_rel;
  core::Headline h;
  if (opts.partial()) {
    std::printf("partial sweep (%s%s): figure rendering deferred to the merge pass\n\n",
                opts.shard.sharded() ? "sharded" : "",
                opts.resume ? (opts.shard.sharded() ? ", resume" : "resume") : "");
  } else {
    for (const std::string& app : workloads::fig4_app_names()) {
      const auto found = curves.find(app);
      if (found == curves.end()) continue;  // every node count above the cap
      const auto& by_config = found->second;
      const auto mck_rel =
          core::relative_to(by_config.at("McKernel"), by_config.at("Linux"));
      const auto mos_rel = core::relative_to(by_config.at("mOS"), by_config.at("Linux"));

      core::Table table{{app + " nodes", "McKernel/Linux", "mOS/Linux"}};
      for (std::size_t i = 0; i < mck_rel.size(); ++i) {
        table.add_row({std::to_string(mck_rel[i].nodes), core::fmt(mck_rel[i].ratio, 3),
                       core::fmt(mos_rel[i].ratio, 3)});
      }
      std::printf("%s\n", table.to_string().c_str());
      all_rel.push_back(mck_rel);
      all_rel.push_back(mos_rel);
    }

    h = core::headline(all_rel);
    std::printf("HEADLINE  median LWK/Linux ratio: %s   best: %s\n",
                core::fmt_pct(h.median_ratio).c_str(),
                core::fmt_pct(h.best_ratio).c_str());
    std::printf("          paper: median +9%% (109%%), best ~280%% gain aside from the\n"
                "          MiniFE outliers (6.47x / 7.01x at 1,024 nodes)\n\n");
  }

  const core::CampaignTelemetry& t = campaign.telemetry();
  std::printf("%s\n", core::describe(t, threads).c_str());

  // Serial reference: same grid, one thread, cold cache — deliberately
  // store-less even when MKOS_CELL_STORE is set, so the timing measures
  // actual simulation, not disk loads. Bit-identical results (positional
  // seeds), so only the wall clock differs.
  double serial_s = 0.0;
  if (!opts.partial() && sim::env_int("MKOS_FIG4_SKIP_SERIAL", 0, 0, 1) == 0) {
    sim::ThreadPool serial_pool(1);
    core::CellCache serial_cache;
    core::Campaign serial_campaign(serial_pool, serial_cache);
    // mkos-lint: allow(wall-clock) — host telemetry: serial reference timing.
    const auto s0 = std::chrono::steady_clock::now();
    (void)run_cells(serial_campaign, opts);
    serial_s = seconds_since(s0);
    std::printf("serial reference (1 thread, cold cache): %.3f s   speedup: %.2fx\n",
                serial_s, parallel_s > 0.0 ? serial_s / parallel_s : 0.0);
  }

  obs::RunLedger ledger = core::bench_ledger(
      "fig4_overview", "IPDPS'18 10.1109/IPDPS.2018.00022, Figure 4", 42);
  ledger.set_meta("reps", std::to_string(reps));
  ledger.set_meta("max_nodes", std::to_string(max_nodes));
  core::record_config(ledger, SystemConfig::linux_default());
  core::record_config(ledger, SystemConfig::mckernel());
  core::record_config(ledger, SystemConfig::mos());
  // Cells come back in deterministic grid order; merging their per-rep
  // ledgers in that order keeps the document thread-count independent.
  // Dedupe by series name (not by from_cache: with a warm disk store every
  // cell is a cache hit) — the Linux baseline appears in both phases and
  // must merge exactly once.
  std::set<std::string> recorded;
  for (const core::CellResult& cell : cells) {
    if (cell.skipped) continue;  // sharded/resumed runs: no statistics
    const std::string series =
        cell.app + "." + cell.config_label + ".n" + std::to_string(cell.nodes);
    if (!recorded.insert(series).second) continue;  // phase-2 baseline dups
    core::record_run_stats(ledger, series, cell.stats);
  }
  if (!opts.partial()) {
    ledger.set_gauge("headline.median_ratio", h.median_ratio);
    ledger.set_gauge("headline.best_ratio", h.best_ratio);
  }
  core::record_campaign(ledger, t, threads, store.get());
  ledger.set_host("wall_s_serial", core::json_number(serial_s));
  ledger.set_host("speedup", core::json_number(serial_s > 0.0 && parallel_s > 0.0
                                                   ? serial_s / parallel_s
                                                   : 0.0));
  core::emit(ledger);
  return 0;
}
