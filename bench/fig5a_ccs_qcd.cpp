// Figure 5a: "CCS-QCD scaling as a percentage compared to Linux".
//
// Clover fermion, 4 ranks/node x 32 threads/rank, working set larger than
// MCDRAM. Paper result: McKernel up to 139% of Linux, mOS up to 128%; Linux
// runs from DDR4 only (SNC-4 policy limitation). The McKernel > mOS gap is
// the demand-paging-fallback MCDRAM packing (Section IV).

#include <cstdio>

#include "core/experiment.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"

int main() {
  using namespace mkos;
  using core::SystemConfig;

  core::print_banner("Fig. 5a — CCS-QCD, % of Linux median (4 ranks/node, 32 thr)",
                     "IPDPS'18, Figure 5a; paper peaks: McKernel 139%, mOS 128%");

  auto app = workloads::make_ccs_qcd();
  constexpr int kReps = 5;
  constexpr int kMaxNodes = 1 << 30;

  obs::RunLedger ledger = core::bench_ledger("fig5a_ccs_qcd", "IPDPS'18, Figure 5a", 7);
  core::record_config(ledger, SystemConfig::linux_default());
  core::record_config(ledger, SystemConfig::mckernel());
  core::record_config(ledger, SystemConfig::mos());
  const auto lin = core::scaling_sweep(*app, SystemConfig::linux_default(), kReps, 7,
                                       kMaxNodes, &ledger);
  const auto mck =
      core::scaling_sweep(*app, SystemConfig::mckernel(), kReps, 7, kMaxNodes, &ledger);
  const auto mos =
      core::scaling_sweep(*app, SystemConfig::mos(), kReps, 7, kMaxNodes, &ledger);
  const auto mck_rel = core::relative_to(mck, lin);
  const auto mos_rel = core::relative_to(mos, lin);

  core::Table table{{"nodes", "Linux Mflops/s/node", "McKernel %", "mOS %"}};
  for (std::size_t i = 0; i < lin.size(); ++i) {
    table.add_row({std::to_string(lin[i].nodes), core::fmt_sci(lin[i].median),
                   core::fmt_pct(mck_rel[i].ratio), core::fmt_pct(mos_rel[i].ratio)});
  }
  std::printf("%s\n", table.to_string().c_str());

  double mck_peak = 0;
  double mos_peak = 0;
  for (const auto& p : mck_rel) mck_peak = std::max(mck_peak, p.ratio);
  for (const auto& p : mos_rel) mos_peak = std::max(mos_peak, p.ratio);
  std::printf("peaks     McKernel %s (paper 139%%)   mOS %s (paper 128%%)\n",
              core::fmt_pct(mck_peak).c_str(), core::fmt_pct(mos_peak).c_str());

  core::record_scaling(ledger, "ccs_qcd.linux", lin);
  core::record_scaling(ledger, "ccs_qcd.mckernel", mck);
  core::record_scaling(ledger, "ccs_qcd.mos", mos);
  ledger.set_gauge("peak.mckernel_vs_linux", mck_peak);
  ledger.set_gauge("peak.mos_vs_linux", mos_peak);
  core::emit(ledger);
  return 0;
}
