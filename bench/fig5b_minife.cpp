// Figure 5b: "MiniFE scaling experiments" — aggregate Mflops, 16..1024
// nodes, 660x660x660, 64 ranks/node x 4 threads/rank.
//
// Paper result: all three track each other to ~512 nodes; at 1,024 nodes the
// Linux curve collapses (the LWKs end up ~7x faster: 6.47x/7.01x in Fig. 4)
// because MiniFE "is sensitive to the performance of MPI collective
// operations, which typically benefit from jitter-less operating system
// kernels".

#include <cstdio>

#include "core/experiment.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"

int main() {
  using namespace mkos;
  using core::SystemConfig;

  core::print_banner("Fig. 5b — MiniFE 660^3, Mflops, 16..1024 nodes",
                     "IPDPS'18, Figure 5b; Linux collapses at 1,024 nodes");

  auto app = workloads::make_minife();
  constexpr int kReps = 5;
  constexpr int kMaxNodes = 1 << 30;

  obs::RunLedger ledger = core::bench_ledger("fig5b_minife", "IPDPS'18, Figure 5b", 11);
  core::record_config(ledger, SystemConfig::linux_default());
  core::record_config(ledger, SystemConfig::mckernel());
  core::record_config(ledger, SystemConfig::mos());
  const auto lin = core::scaling_sweep(*app, SystemConfig::linux_default(), kReps, 11,
                                       kMaxNodes, &ledger);
  const auto mck =
      core::scaling_sweep(*app, SystemConfig::mckernel(), kReps, 11, kMaxNodes, &ledger);
  const auto mos =
      core::scaling_sweep(*app, SystemConfig::mos(), kReps, 11, kMaxNodes, &ledger);

  core::Table table{{"nodes", "McKernel Mflops", "mOS Mflops", "Linux Mflops",
                     "LWK/Linux"}};
  for (std::size_t i = 0; i < lin.size(); ++i) {
    const double best_lwk = std::max(mck[i].median, mos[i].median);
    table.add_row({std::to_string(lin[i].nodes), core::fmt_sci(mck[i].median),
                   core::fmt_sci(mos[i].median), core::fmt_sci(lin[i].median),
                   core::fmt(best_lwk / lin[i].median, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper: at 1,024 nodes McKernel/Linux = 6.47, mOS/Linux = 7.01;\n"
              "       \"that apparent performance gain is actually due to Linux\n"
              "       performance dropping precariously\".\n");

  core::record_scaling(ledger, "minife.linux", lin);
  core::record_scaling(ledger, "minife.mckernel", mck);
  core::record_scaling(ledger, "minife.mos", mos);
  const std::size_t last = lin.size() - 1;
  ledger.set_gauge("collapse.mckernel_vs_linux", mck[last].median / lin[last].median);
  ledger.set_gauge("collapse.mos_vs_linux", mos[last].median / lin[last].median);
  core::emit(ledger);
  return 0;
}
