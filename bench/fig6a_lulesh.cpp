// Figure 6a: "Lulesh 2.0 scaling experiments" — zones/s, -s 50,
// 64 ranks/node x 2 threads/rank, cubic node counts 1..1728.
//
// Paper result: the LWKs lead throughout (the HPC brk() + large pages
// margin, Table I's ~121%), and the Linux median drops at 1,728 nodes — "A
// similar drop-off at a high node count occurred with Lulesh 2.0. Note that
// this is not a single outlier. The 1,728-node Linux result ... is the
// median of five experiments."

#include <cstdio>

#include "core/experiment.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"

int main() {
  using namespace mkos;
  using core::SystemConfig;

  core::print_banner("Fig. 6a — Lulesh 2.0 (-s 50), zones/s, cubic node counts",
                     "IPDPS'18, Figure 6a; Linux drop at 1,728 nodes");

  auto app = workloads::make_lulesh(50);
  constexpr int kReps = 5;
  constexpr int kMaxNodes = 1 << 30;

  obs::RunLedger ledger = core::bench_ledger("fig6a_lulesh", "IPDPS'18, Figure 6a", 13);
  core::record_config(ledger, SystemConfig::linux_default());
  core::record_config(ledger, SystemConfig::mckernel());
  core::record_config(ledger, SystemConfig::mos());
  const auto lin = core::scaling_sweep(*app, SystemConfig::linux_default(), kReps, 13,
                                       kMaxNodes, &ledger);
  const auto mck =
      core::scaling_sweep(*app, SystemConfig::mckernel(), kReps, 13, kMaxNodes, &ledger);
  const auto mos =
      core::scaling_sweep(*app, SystemConfig::mos(), kReps, 13, kMaxNodes, &ledger);

  core::Table table{{"nodes", "McKernel zones/s", "mOS zones/s", "Linux zones/s",
                     "mOS/Linux"}};
  for (std::size_t i = 0; i < lin.size(); ++i) {
    table.add_row({std::to_string(lin[i].nodes), core::fmt_sci(mck[i].median),
                   core::fmt_sci(mos[i].median), core::fmt_sci(lin[i].median),
                   core::fmt(mos[i].median / lin[i].median, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Scaling-efficiency view: does Linux keep gaining from 1,331 -> 1,728?
  const auto& l_13 = lin[lin.size() - 2];
  const auto& l_17 = lin[lin.size() - 1];
  const auto& m_13 = mos[mos.size() - 2];
  const auto& m_17 = mos[mos.size() - 1];
  std::printf("1331 -> 1728 speedup   Linux %.2fx   mOS %.2fx (ideal 1.30x)\n",
              l_17.median / l_13.median, m_17.median / m_13.median);

  core::record_scaling(ledger, "lulesh.linux", lin);
  core::record_scaling(ledger, "lulesh.mckernel", mck);
  core::record_scaling(ledger, "lulesh.mos", mos);
  ledger.set_gauge("top_step_speedup.linux", l_17.median / l_13.median);
  ledger.set_gauge("top_step_speedup.mos", m_17.median / m_13.median);
  core::emit(ledger);
  return 0;
}
