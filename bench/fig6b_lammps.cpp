// Figure 6b: "LAMMPS scaling experiments" — timesteps/s, lj weak-scaling
// deck, 64 ranks/node x 2 threads/rank, 16..2048 nodes.
//
// Paper result: the one benchmark where "neither mOS nor McKernel performed
// better than Linux at scale, despite the fact that single node results
// were promising" — the Omni-Path send path issues system calls on device
// files, which the LWKs offload to Linux. The bench also runs the
// kernel-bypass fabric variant to show the regression disappears on
// user-space-driven networks (the paper's outlook).

#include <cstdio>

#include "core/experiment.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"

int main() {
  using namespace mkos;
  using core::SystemConfig;

  core::print_banner("Fig. 6b — LAMMPS lj.weak, timesteps/s, 16..2048 nodes",
                     "IPDPS'18, Figure 6b; LWKs fall behind Linux at scale");

  auto app = workloads::make_lammps();
  constexpr int kReps = 5;
  constexpr int kMaxNodes = 1 << 30;

  obs::RunLedger ledger = core::bench_ledger("fig6b_lammps", "IPDPS'18, Figure 6b", 17);
  core::record_config(ledger, SystemConfig::linux_default());
  core::record_config(ledger, SystemConfig::mckernel());
  core::record_config(ledger, SystemConfig::mos());
  const auto lin = core::scaling_sweep(*app, SystemConfig::linux_default(), kReps, 17,
                                       kMaxNodes, &ledger);
  const auto mck =
      core::scaling_sweep(*app, SystemConfig::mckernel(), kReps, 17, kMaxNodes, &ledger);
  const auto mos =
      core::scaling_sweep(*app, SystemConfig::mos(), kReps, 17, kMaxNodes, &ledger);

  core::Table table{{"nodes", "McKernel steps/s", "mOS steps/s", "Linux steps/s",
                     "McKernel/Linux"}};
  for (std::size_t i = 0; i < lin.size(); ++i) {
    table.add_row({std::to_string(lin[i].nodes), core::fmt(mck[i].median, 1),
                   core::fmt(mos[i].median, 1), core::fmt(lin[i].median, 1),
                   core::fmt_pct(mck[i].median / lin[i].median)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Outlook: "most high-performance networks are usually driven entirely
  // from user-space" — rerun the top scale on a kernel-bypass fabric.
  SystemConfig mck_bypass = SystemConfig::mckernel();
  mck_bypass.user_space_network = true;
  SystemConfig lin_bypass = SystemConfig::linux_default();
  lin_bypass.user_space_network = true;
  const auto mck_b = core::run_app(*app, mck_bypass, 2048, kReps, 17);
  const auto lin_b = core::run_app(*app, lin_bypass, 2048, kReps, 17);
  std::printf("kernel-bypass fabric @2048 nodes: McKernel/Linux = %s "
              "(regression gone)\n",
              core::fmt_pct(mck_b.median() / lin_b.median()).c_str());

  core::record_scaling(ledger, "lammps.linux", lin);
  core::record_scaling(ledger, "lammps.mckernel", mck);
  core::record_scaling(ledger, "lammps.mos", mos);
  core::record_config(ledger, mck_bypass, "mckernel_bypass");
  core::record_config(ledger, lin_bypass, "linux_bypass");
  core::record_run_stats(ledger, "lammps.mckernel_bypass.n2048", mck_b);
  core::record_run_stats(ledger, "lammps.linux_bypass.n2048", lin_b);
  ledger.set_gauge("bypass.mckernel_vs_linux", mck_b.median() / lin_b.median());
  core::emit(ledger);
  return 0;
}
