// NUMA-lookup placement sweep: XSBench-style cross-section lookups under
// first-touch (DDR4), interleave, and MCDRAM-preferred placement across
// Linux, McKernel, and mOS — the allocator-model companion figure to the
// paper's Section III-C memory-policy story.
//
// Every config runs with the kernel-allocator model enabled
// (AllocSpec::model_allocator), so each ledger carries the full alloc.*
// counter group: Linux pays contended depot/zone locks plus kreclaimd
// reclaim; the LWKs' large-quantum paths stay near-free. Expected result:
// the three placements separate cleanly on the LWKs (DDR4 < interleave <
// MCDRAM) while Linux's MCDRAM-preferred run is capped by the
// one-domain-PREFERRED spill and its allocator contention widens the gap as
// core counts grow.
//
//   MKOS_NUMA_MAX_NODES / MKOS_NUMA_REPS shrink the sweep (defaults 256/3).
//   MKOS_THREADS sets the pool size; MKOS_NUMA_SKIP_SERIAL=1 skips the
//   serial reference. MKOS_CELL_STORE=<dir> attaches the persistent cell
//   store; MKOS_NUMA_RESUME=1 skips already-stored cells and
//   MKOS_SHARD=<i>/<n> runs one keyspace slice (both produce partial,
//   store-filling runs; the merge pass is an unsharded rerun).

#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"
#include "sim/env.hpp"

namespace {

using namespace mkos;
using core::SystemConfig;

struct SweepOpts {
  int max_nodes = 256;
  int reps = 3;
  bool resume = false;
  core::ShardSpec shard;
  [[nodiscard]] bool partial() const { return resume || shard.sharded(); }
};

const std::vector<std::string>& placement_apps() {
  static const std::vector<std::string> apps = {
      "XSBench/first-touch", "XSBench/interleave", "XSBench/mcdram"};
  return apps;
}

SystemConfig with_alloc_model(SystemConfig config) {
  config.alloc.model_allocator = true;
  return config;
}

std::vector<core::CellResult> run_cells(core::Campaign& campaign,
                                        const SweepOpts& opts) {
  core::CampaignSpec spec;
  spec.apps = placement_apps();
  spec.configs = {with_alloc_model(SystemConfig::linux_default()),
                  with_alloc_model(SystemConfig::mckernel()),
                  with_alloc_model(SystemConfig::mos())};
  spec.reps = opts.reps;
  spec.seed = 42;
  spec.max_nodes = opts.max_nodes;
  spec.resume = opts.resume;
  spec.shard = opts.shard;
  return campaign.run(spec);
}

/// curves[config][app] -> scaling points in node order.
std::map<std::string, std::map<std::string, std::vector<core::ScalingPoint>>> curves_of(
    const std::vector<core::CellResult>& cells) {
  std::map<std::string, std::map<std::string, std::vector<core::ScalingPoint>>> curves;
  for (const core::CellResult& cell : cells) {
    if (cell.skipped) continue;  // sharded/resumed runs: no statistics
    curves[cell.config_label][cell.app].push_back(core::ScalingPoint{
        cell.nodes, cell.stats.median(), cell.stats.min(), cell.stats.max()});
  }
  return curves;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  // mkos-lint: allow(wall-clock) — host-side telemetry only: times the sweep
  // itself for the speedup report; never feeds a simulated result.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  SweepOpts opts;
  opts.max_nodes = sim::env_int("MKOS_NUMA_MAX_NODES", 256, 1, 1 << 20);
  opts.reps = sim::env_int("MKOS_NUMA_REPS", 3, 1, 1000);
  opts.resume = sim::env_int("MKOS_NUMA_RESUME", 0, 0, 1) == 1;
  opts.shard = core::ShardSpec::from_env();
  const int threads = sim::ThreadPool::default_threads();

  core::print_banner(
      "NUMA lookup — XSBench placement policies under the allocator model",
      "IPDPS'18 10.1109/IPDPS.2018.00022, Section III-C extension");

  sim::ThreadPool pool(threads);
  const auto store = core::CellStore::from_env();
  core::CellCache cache(store.get());
  core::Campaign campaign(pool, cache);
  // mkos-lint: allow(wall-clock) — host telemetry: parallel sweep wall time.
  const auto t0 = std::chrono::steady_clock::now();
  const auto cells = run_cells(campaign, opts);
  const double parallel_s = seconds_since(t0);

  const auto curves = curves_of(cells);
  // median FOM of (config, app) at the largest node count actually swept.
  std::map<std::string, std::map<std::string, double>> at_max;
  if (opts.partial()) {
    std::printf("partial sweep (%s%s): figure rendering deferred to the merge pass\n\n",
                opts.shard.sharded() ? "sharded" : "",
                opts.resume ? (opts.shard.sharded() ? ", resume" : "resume") : "");
  } else {
    for (const auto& [config, by_app] : curves) {
      core::Table table{{config + " nodes", "first-touch", "interleave", "mcdram",
                         "mcdram/first-touch"}};
      const auto& ft = by_app.at("XSBench/first-touch");
      const auto& il = by_app.at("XSBench/interleave");
      const auto& mp = by_app.at("XSBench/mcdram");
      for (std::size_t i = 0; i < ft.size(); ++i) {
        table.add_row({std::to_string(ft[i].nodes), core::fmt(ft[i].median, 0),
                       core::fmt(il[i].median, 0), core::fmt(mp[i].median, 0),
                       core::fmt(mp[i].median / ft[i].median, 3)});
      }
      std::printf("%s\n", table.to_string().c_str());
      at_max[config]["first-touch"] = ft.back().median;
      at_max[config]["interleave"] = il.back().median;
      at_max[config]["mcdram"] = mp.back().median;
    }
    // The headline: how much of the MCDRAM win survives on each kernel, and
    // how far ahead of Linux the LWKs pull once placement + allocator costs
    // both act. (The CI separation gate reads these gauges.)
    for (const auto& [config, medians] : at_max) {
      std::printf("SEPARATION %-9s first-touch %.3g  interleave %.3g  mcdram %.3g"
                  "  (mcdram/first-touch %.2fx)\n",
                  config.c_str(), medians.at("first-touch"),
                  medians.at("interleave"), medians.at("mcdram"),
                  medians.at("mcdram") / medians.at("first-touch"));
    }
    std::printf("\n");
  }

  const core::CampaignTelemetry& t = campaign.telemetry();
  std::printf("%s\n", core::describe(t, threads).c_str());

  double serial_s = 0.0;
  if (!opts.partial() && sim::env_int("MKOS_NUMA_SKIP_SERIAL", 0, 0, 1) == 0) {
    sim::ThreadPool serial_pool(1);
    core::CellCache serial_cache;
    core::Campaign serial_campaign(serial_pool, serial_cache);
    // mkos-lint: allow(wall-clock) — host telemetry: serial reference timing.
    const auto s0 = std::chrono::steady_clock::now();
    (void)run_cells(serial_campaign, opts);
    serial_s = seconds_since(s0);
    std::printf("serial reference (1 thread, cold cache): %.3f s   speedup: %.2fx\n",
                serial_s, parallel_s > 0.0 ? serial_s / parallel_s : 0.0);
  }

  obs::RunLedger ledger = core::bench_ledger(
      "fig_numa_lookup",
      "IPDPS'18 10.1109/IPDPS.2018.00022, Section III-C extension", 42);
  ledger.set_meta("reps", std::to_string(opts.reps));
  ledger.set_meta("max_nodes", std::to_string(opts.max_nodes));
  core::record_config(ledger, with_alloc_model(SystemConfig::linux_default()));
  core::record_config(ledger, with_alloc_model(SystemConfig::mckernel()));
  core::record_config(ledger, with_alloc_model(SystemConfig::mos()));
  std::set<std::string> recorded;
  for (const core::CellResult& cell : cells) {
    if (cell.skipped) continue;
    const std::string series =
        cell.app + "." + cell.config_label + ".n" + std::to_string(cell.nodes);
    if (!recorded.insert(series).second) continue;
    core::record_run_stats(ledger, series, cell.stats);
  }
  if (!opts.partial()) {
    for (const auto& [config, medians] : at_max) {
      for (const auto& [placement, median] : medians) {
        ledger.set_gauge("sep." + config + "." + placement, median);
      }
    }
  }
  core::record_campaign(ledger, t, threads, store.get());
  ledger.set_host("wall_s_serial", core::json_number(serial_s));
  ledger.set_host("speedup", core::json_number(serial_s > 0.0 && parallel_s > 0.0
                                                   ? serial_s / parallel_s
                                                   : 0.0));
  core::emit(ledger);
  return 0;
}
