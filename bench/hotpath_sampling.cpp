// Hot-path sampling microbenchmark: naive per-event noise draws vs the
// analytic engine (Gamma-batched sums, moment-matched normals, inverse-CDF
// maxima). The acceptance bar for the sampling rewrite started at a >= 5x
// samples/sec advantage for NoiseModel::sample over the per-event loop it
// replaced and was ratcheted to >= 8x once the arena/SoA rewrite left that
// much headroom; this binary measures exactly that, plus the equivalent ratio
// for maximum-of-n draws, and cross-checks that both samplers agree on the
// mean stolen fraction (they are distribution-equivalent, not bit-equal).
//
//   MKOS_HOTPATH_SAMPLES scales the timed iteration counts (default 20000).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "core/obs_glue.hpp"
#include "core/report.hpp"
#include "kernel/noise.hpp"
#include "sim/env.hpp"

namespace {

using namespace mkos;
using kernel::NoiseComponent;

/// The per-event reference sampler: the exact loop NoiseModel::sample ran
/// before the analytic engine — one Poisson count per component, then one
/// full distribution draw (plus cap clamp) per event.
double naive_sample_ns(const kernel::NoiseModel& model, sim::TimeNs span, sim::Rng& rng,
                       std::uint64_t* events) {
  const double span_s = static_cast<double>(span.ns()) * 1e-9;
  double total_ns = 0.0;
  for (const NoiseComponent& c : model.components()) {
    const std::uint64_t n = rng.poisson(c.rate_hz * span_s);
    *events += n;
    for (std::uint64_t i = 0; i < n; ++i) {
      double d = 0.0;
      switch (c.dist) {
        case NoiseComponent::Dist::kFixed:
          d = static_cast<double>(c.duration.ns());
          break;
        case NoiseComponent::Dist::kExponential:
          d = rng.exponential(static_cast<double>(c.duration.ns()));
          break;
        case NoiseComponent::Dist::kPareto:
          d = rng.pareto(static_cast<double>(c.duration.ns()), c.pareto_alpha);
          break;
      }
      if (c.cap.ns() > 0) d = std::min(d, static_cast<double>(c.cap.ns()));
      total_ns += d;
    }
  }
  return total_ns;
}

/// Maximum-of-n reference: draw all n events and keep the largest.
double naive_max_ns(const NoiseComponent& c, std::uint64_t n, sim::Rng& rng) {
  double best = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    double d = c.dist == NoiseComponent::Dist::kExponential
                   ? rng.exponential(static_cast<double>(c.duration.ns()))
                   : rng.pareto(static_cast<double>(c.duration.ns()), c.pareto_alpha);
    if (c.cap.ns() > 0) d = std::min(d, static_cast<double>(c.cap.ns()));
    best = std::max(best, d);
  }
  return best;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  // mkos-lint: allow(wall-clock) — host-side telemetry: this binary exists
  // to time the two samplers; the measurements land in the host block only.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct SideResult {
  double wall_s = 0.0;
  double mean_fraction = 0.0;  ///< deterministic per seed
  std::uint64_t events = 0;
};

}  // namespace

int main() {
  const int samples = sim::env_int("MKOS_HOTPATH_SAMPLES", 20000, 100, 100000000);
  const sim::TimeNs span = sim::seconds(10.0);
  const kernel::NoiseModel model = kernel::noise_linux_co_tenant();

  core::print_banner("hotpath_sampling — naive per-event vs analytic noise draws",
                     "sampling-engine acceptance microbenchmark");

  // ------------------------------------------------------------------- sums
  // Same workload both sides: `samples` windows of 10 s of co-tenant Linux
  // noise (~390 events/window naive). Forked child streams keep the two
  // measurements independent of each other and of iteration order. Each side
  // is timed kReps times with a fresh identically-seeded stream (so every rep
  // draws the same variates and the deterministic ledger block stays
  // byte-stable), interleaved so host drift hits both alike; the best wall
  // time per side feeds the CI speedup bar.
  constexpr int kReps = 3;
  SideResult naive;
  kernel::SampleCounters counters;
  SideResult analytic;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      sim::Rng rng = sim::Rng(42).fork(1);
      std::uint64_t events = 0;
      double stolen_ns = 0.0;
      // mkos-lint: allow(wall-clock) — host telemetry: sampler throughput.
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < samples; ++i) {
        stolen_ns += naive_sample_ns(model, span, rng, &events);
      }
      const double wall = seconds_since(t0);
      naive.wall_s = rep == 0 ? wall : std::min(naive.wall_s, wall);
      if (rep == 0) {
        naive.events = events;
        naive.mean_fraction =
            stolen_ns / (static_cast<double>(samples) * static_cast<double>(span.ns()));
      }
    }
    {
      sim::Rng rng = sim::Rng(42).fork(2);
      kernel::SampleCounters rep_counters;
      double stolen_ns = 0.0;
      // mkos-lint: allow(wall-clock) — host telemetry: sampler throughput.
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < samples; ++i) {
        stolen_ns += static_cast<double>(model.sample(span, rng, &rep_counters).ns());
      }
      const double wall = seconds_since(t0);
      analytic.wall_s = rep == 0 ? wall : std::min(analytic.wall_s, wall);
      if (rep == 0) {
        counters = rep_counters;
        analytic.mean_fraction =
            stolen_ns / (static_cast<double>(samples) * static_cast<double>(span.ns()));
      }
    }
  }

  const double naive_rate = static_cast<double>(samples) / naive.wall_s;
  const double analytic_rate = static_cast<double>(samples) / analytic.wall_s;
  const double sum_speedup = analytic_rate / naive_rate;

  core::Table sums{{"sampler", "samples/s", "events drawn", "mean stolen fraction"}};
  sums.add_row({"naive per-event", core::fmt(naive_rate, 0), std::to_string(naive.events),
                core::fmt(naive.mean_fraction, 6)});
  sums.add_row({"analytic", core::fmt(analytic_rate, 0),
                std::to_string(counters.exact_events), core::fmt(analytic.mean_fraction, 6)});
  std::printf("%s\n", sums.to_string().c_str());
  std::printf("sum speedup: %.1fx   (acceptance bar: >= 8x, ratcheted from 5x)\n",
              sum_speedup);
  std::printf("expected fraction (closed form): %s\n\n",
              core::fmt(model.expected_fraction(), 6).c_str());

  // ------------------------------------------------------------------ maxima
  // Max of n=4096 exponential housekeeping draws — the shape NoiseExtremes
  // needs for its sparse regime. Inverse CDF at U^(1/n) is O(1) in n, the
  // reference is O(n); an uncapped shape keeps the comparison informative
  // (a capped heavy tail maxes out at the cap almost surely at this n).
  const NoiseComponent burst{"housekeeping", 25.0, sim::microseconds(4),
                             NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}};
  const std::uint64_t max_n = 4096;
  const int max_iters = std::max(samples / 16, 100);

  double naive_max_mean = 0.0;
  double naive_max_wall = 0.0;
  {
    sim::Rng rng = sim::Rng(42).fork(3);
    // mkos-lint: allow(wall-clock) — host telemetry: sampler throughput.
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < max_iters; ++i) naive_max_mean += naive_max_ns(burst, max_n, rng);
    naive_max_wall = seconds_since(t0);
    naive_max_mean /= static_cast<double>(max_iters);
  }
  double analytic_max_mean = 0.0;
  double analytic_max_wall = 0.0;
  {
    sim::Rng rng = sim::Rng(42).fork(4);
    // mkos-lint: allow(wall-clock) — host telemetry: sampler throughput.
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < max_iters; ++i) {
      analytic_max_mean += kernel::sample_component_max_ns(burst, max_n, rng);
    }
    analytic_max_wall = seconds_since(t0);
    analytic_max_mean /= static_cast<double>(max_iters);
  }
  const double max_speedup = naive_max_wall / analytic_max_wall;
  std::printf("max-of-%llu draws: naive %.3f ms mean, analytic %.3f ms mean, %.0fx faster\n\n",
              static_cast<unsigned long long>(max_n), naive_max_mean * 1e-6,
              analytic_max_mean * 1e-6, max_speedup);

  obs::RunLedger ledger = core::bench_ledger(
      "hotpath_sampling", "sampling-engine acceptance microbenchmark", 42);
  ledger.set_meta("samples", std::to_string(samples));
  ledger.set_meta("span_s", "10");
  ledger.set_meta("model", "noise_linux_co_tenant");
  // Deterministic block: what was drawn and what it averaged to.
  ledger.incr("engine.noise_analytic_sums", counters.analytic_sums);
  ledger.incr("engine.noise_exact_events", counters.exact_events);
  ledger.incr("engine.noise_analytic_maxima", counters.analytic_maxima);
  ledger.incr("engine.noise_gumbel_draws", counters.gumbel_draws);
  ledger.incr("naive.events", naive.events);
  ledger.set_gauge("naive.mean_fraction", naive.mean_fraction);
  ledger.set_gauge("analytic.mean_fraction", analytic.mean_fraction);
  ledger.set_gauge("expected_fraction", model.expected_fraction());
  ledger.set_gauge("max4096.naive_mean_ns", naive_max_mean);
  ledger.set_gauge("max4096.analytic_mean_ns", analytic_max_mean);
  // Host block: the wall-clock measurements themselves.
  ledger.set_host("naive_samples_per_s", core::json_number(naive_rate));
  ledger.set_host("analytic_samples_per_s", core::json_number(analytic_rate));
  ledger.set_host("sum_speedup", core::json_number(sum_speedup));
  ledger.set_host("max_speedup", core::json_number(max_speedup));
  core::emit(ledger);
  return 0;
}
