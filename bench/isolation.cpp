// Extension experiment: performance isolation under multi-tenancy.
//
// The paper's related work highlights multi-kernels' "ability of performance
// isolation [31], [32] — an increasingly important aspect of system software
// as we move toward multi-tenant deployments", noting those studies ran at
// small scale. This bench runs the scenario at scale with mkos: a co-located
// tenant (in-situ analytics / monitoring stack) is added to every node. On
// Linux it shares the application cores; on a multi-kernel it is confined to
// the Linux partition, so only the offloaded paths feel it.

#include <cstdio>

#include "core/experiment.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"

namespace {

using mkos::core::SystemConfig;

double median(mkos::workloads::App& app, SystemConfig config, bool tenant, int nodes,
              mkos::obs::RunLedger& ledger, const std::string& series) {
  config.co_tenant = tenant;
  const mkos::core::RunStats rs =
      mkos::core::run_app(app, config, nodes, /*reps=*/5, /*seed=*/71);
  mkos::core::record_config(ledger, config, series);
  mkos::core::record_run_stats(ledger, series, rs);
  return rs.median();
}

}  // namespace

int main() {
  using namespace mkos;

  core::print_banner("Extension — performance isolation under co-tenancy",
                     "related work [31],[32] rerun at scale (256 nodes)");

  struct Case {
    const char* name;
    std::unique_ptr<workloads::App> app;
    int nodes;
  };
  Case cases[] = {
      {"HPCG", workloads::make_hpcg(), 256},
      {"MiniFE", workloads::make_minife(), 256},
      {"MILC", workloads::make_milc(), 256},
  };

  obs::RunLedger ledger =
      core::bench_ledger("isolation", "related work [31],[32] at 256 nodes", 71);

  core::Table table{{"app @256 nodes", "OS", "alone", "with tenant", "retained"}};
  for (auto& c : cases) {
    for (const auto os : {kernel::OsKind::kLinux, kernel::OsKind::kMcKernel}) {
      const SystemConfig config = SystemConfig::for_os(os);
      const std::string base = std::string(c.name) + "." + config.label();
      const double alone = median(*c.app, config, false, c.nodes, ledger, base + ".alone");
      const double shared =
          median(*c.app, config, true, c.nodes, ledger, base + ".tenant");
      ledger.set_gauge("retained." + base, shared / alone);
      table.add_row({c.name, config.label(), core::fmt_sci(alone), core::fmt_sci(shared),
                     core::fmt_pct(shared / alone)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Strong partitioning confines the tenant to the Linux cores: the LWK\n"
      "retains nearly all of its performance while the Linux deployment leaks\n"
      "the interference straight into the application's compute and\n"
      "collective paths.\n");

  core::emit(ledger);
  return 0;
}
