// Section III-D: Linux compatibility — the LTP-style suite against all
// three kernels.
//
//   paper: "McKernel passes all but 32 of them. For mOS the numbers are
//   more bleak: 111 tests out of 3,328 fail." Eleven of McKernel's are
//   move_pages() combinations; mOS's are dominated by the fork() cascade
//   and 4-of-5 ptrace cases.

#include <algorithm>
#include <cstdio>

#include "compat/ltp.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"
#include "hw/knl.hpp"
#include "kernel/node.hpp"

int main() {
  using namespace mkos;

  core::print_banner("Section III-D — LTP system-call compatibility",
                     "IPDPS'18; paper: McKernel 32/3328 fail, mOS 111/3328 fail");

  const compat::LtpSuite suite = compat::LtpSuite::standard();

  kernel::Node linux_node{hw::knl_snc4_flat(), kernel::NodeOsConfig::linux_default(), 1};
  kernel::Node mck_node{hw::knl_snc4_flat(), kernel::NodeOsConfig::mckernel_default(), 2};
  kernel::Node mos_node{hw::knl_snc4_flat(), kernel::NodeOsConfig::mos_default(), 3};

  core::Table table{{"kernel", "total", "failed", "paper failed"}};
  std::vector<std::pair<std::string, compat::Report>> reports;
  for (kernel::Node* node : {&linux_node, &mck_node, &mos_node}) {
    kernel::Kernel& k = node->app_kernel();
    reports.emplace_back(std::string(k.name()), suite.run(k));
  }
  table.add_row({"Linux", "3328", std::to_string(reports[0].second.failed), "0"});
  table.add_row({"McKernel", "3328", std::to_string(reports[1].second.failed), "32"});
  table.add_row({"mOS", "3328", std::to_string(reports[2].second.failed), "111"});
  std::printf("%s\n", table.to_string().c_str());

  obs::RunLedger ledger =
      core::bench_ledger("ltp_compat", "IPDPS'18 Section III-D", 1);
  for (const auto& [name, report] : reports) {
    ledger.incr("ltp." + name + ".failed", static_cast<std::uint64_t>(report.failed));
  }

  for (std::size_t i = 1; i < reports.size(); ++i) {
    std::printf("%s failures by family:\n", reports[i].first.c_str());
    std::vector<std::pair<std::string, int>> fams(
        reports[i].second.failures_by_family.begin(),
        reports[i].second.failures_by_family.end());
    std::sort(fams.begin(), fams.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [family, count] : fams) {
      std::printf("  %-16s %3d\n", family.c_str(), count);
      // fams is sorted above — deterministic order for the ledger too.
      ledger.incr("ltp." + reports[i].first + ".family." + family,
                  static_cast<std::uint64_t>(count));
    }
  }
  std::printf("\npaper anchors: 11 of McKernel's failures are move_pages() variants;\n"
              "4 of 5 ptrace tests fail on mOS; fork()-setup cascades dominate mOS.\n");

  core::emit(ledger);
  return 0;
}
