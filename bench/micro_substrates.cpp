// Micro-benchmarks of the mkos substrates (google-benchmark).
//
// These measure the *simulator's* own performance (events/s, allocations/s)
// and print the *modeled* costs of the kernel mechanisms (offload round
// trips, noise sampling) as counters — both matter for anyone extending the
// framework or sweeping large design spaces with it.

#include <benchmark/benchmark.h>

#include "compat/ltp.hpp"
#include "core/config.hpp"
#include "core/obs_glue.hpp"
#include "hw/knl.hpp"
#include "kernel/node.hpp"
#include "mem/heap.hpp"
#include "obs/snapshots.hpp"
#include "runtime/noise_extremes.hpp"
#include "runtime/simmpi.hpp"

namespace {

using namespace mkos;
using mkos::sim::KiB;
using mkos::sim::MiB;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      q.schedule_at(sim::TimeNs{i}, [&fired] { ++fired; });
    }
    q.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_RngNoiseSample(benchmark::State& state) {
  const kernel::NoiseModel model = kernel::noise_linux_nohz_full();
  sim::Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.sample(sim::milliseconds(10), rng));
  }
}
BENCHMARK(BM_RngNoiseSample);

void BM_NoiseExtremesSample(benchmark::State& state) {
  const runtime::NoiseExtremes ex{kernel::noise_linux_nohz_full()};
  sim::Rng rng{2};
  const auto cores = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.sample(sim::milliseconds(10), cores, rng));
  }
}
BENCHMARK(BM_NoiseExtremesSample)->Arg(64)->Arg(131072);

void BM_PhysAllocatorBestEffort(benchmark::State& state) {
  for (auto _ : state) {
    mem::DomainAllocator a{0, 4 * sim::GiB};
    for (int i = 0; i < 256; ++i) {
      benchmark::DoNotOptimize(a.alloc_best_effort(8 * MiB, 2 * MiB));
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PhysAllocatorBestEffort);

void BM_LwkHeapSteadyStateCycle(benchmark::State& state) {
  const hw::NodeTopology topo = hw::knl_snc4_flat();
  mem::PhysMemory phys{topo};
  mem::LwkHeap heap{phys, topo, mem::MemCostModel{}, mem::LwkHeapOptions{}, 0};
  (void)heap.sbrk(64 * MiB);
  for (auto _ : state) {
    (void)heap.sbrk(0);
    (void)heap.sbrk(8 * MiB);
    (void)heap.sbrk(-8 * MiB);
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_LwkHeapSteadyStateCycle);

void BM_LinuxHeapCycleWithRefault(benchmark::State& state) {
  const hw::NodeTopology topo = hw::knl_snc4_flat();
  mem::PhysMemory phys{topo};
  mem::LinuxHeap heap{phys, topo, mem::MemCostModel{}, mem::MemPolicy::standard(), 0};
  for (auto _ : state) {
    (void)heap.sbrk(8 * MiB);
    (void)heap.touch_new(64);
    (void)heap.sbrk(-8 * MiB);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinuxHeapCycleWithRefault);

void BM_McKernelMmapUpfront(benchmark::State& state) {
  kernel::Node node{hw::knl_snc4_flat(), kernel::NodeOsConfig::mckernel_default(), 1};
  kernel::Kernel& k = node.app_kernel();
  kernel::Process& p = k.create_process(0);
  for (auto _ : state) {
    auto r = k.sys_mmap(p, 16 * MiB, mem::VmaKind::kAnon, mem::MemPolicy::standard());
    (void)k.sys_munmap(p, r.vma->start);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_McKernelMmapUpfront);

// Modeled cost constants, exported as counters so bench output documents the
// design-space numbers (D4 of DESIGN.md).
void BM_ModeledOffloadCosts(benchmark::State& state) {
  kernel::Node mck{hw::knl_snc4_flat(), kernel::NodeOsConfig::mckernel_default(), 1};
  kernel::Node mos{hw::knl_snc4_flat(), kernel::NodeOsConfig::mos_default(), 2};
  kernel::Node lin{hw::knl_snc4_flat(), kernel::NodeOsConfig::linux_default(), 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mck.app_kernel().offload_cost(256));
  }
  state.counters["mckernel_proxy_ns"] =
      static_cast<double>(mck.app_kernel().offload_cost(256).ns());
  state.counters["mos_migration_ns"] =
      static_cast<double>(mos.app_kernel().offload_cost(256).ns());
  state.counters["linux_local_ns"] =
      static_cast<double>(lin.app_kernel().local_syscall_cost().ns());
}
BENCHMARK(BM_ModeledOffloadCosts);

void BM_MpiWorldIteration(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const auto machine = core::SystemConfig::mckernel().machine(nodes);
  runtime::Job job{machine, runtime::JobSpec{nodes, 64, 2}, 1};
  runtime::MpiWorld world{job, 7};
  for (auto _ : state) {
    world.compute_time(sim::milliseconds(5));
    world.allreduce(8);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpiWorldIteration)->Arg(16)->Arg(2048);

void BM_LtpSuiteRun(benchmark::State& state) {
  const compat::LtpSuite suite = compat::LtpSuite::standard();
  for (auto _ : state) {
    kernel::Node node{hw::knl_snc4_flat(), kernel::NodeOsConfig::mckernel_default(), 1};
    benchmark::DoNotOptimize(suite.run(node.app_kernel()));
  }
  state.SetItemsProcessed(state.iterations() * suite.size());
}
BENCHMARK(BM_LtpSuiteRun);

}  // namespace

// Custom main (instead of benchmark_main) so the bench also emits a run
// ledger. Host-measured throughput stays out of the ledger (it is not
// deterministic); the *modeled* mechanism costs are, and go in as gauges.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace mkos;
  obs::RunLedger ledger =
      core::bench_ledger("micro_substrates", "framework substrate costs", 1);
  kernel::Node mck{hw::knl_snc4_flat(), kernel::NodeOsConfig::mckernel_default(), 1};
  kernel::Node mos{hw::knl_snc4_flat(), kernel::NodeOsConfig::mos_default(), 2};
  kernel::Node lin{hw::knl_snc4_flat(), kernel::NodeOsConfig::linux_default(), 3};
  ledger.set_gauge("modeled.mckernel_proxy_ns",
                   static_cast<double>(mck.app_kernel().offload_cost(256).ns()));
  ledger.set_gauge("modeled.mos_migration_ns",
                   static_cast<double>(mos.app_kernel().offload_cost(256).ns()));
  ledger.set_gauge("modeled.linux_local_ns",
                   static_cast<double>(lin.app_kernel().local_syscall_cost().ns()));
  obs::record_kernel(ledger, mck.app_kernel());
  core::emit(ledger);
  return 0;
}
