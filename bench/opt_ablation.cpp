// Section IV proxy-process options: "--mpol-shm-premap ... and
// --disable-sched-yield ... with the combination of these two we observed
// 9% and 2% improvements on 16 nodes for AMG 2013 and MiniFE, respectively."

#include <cstdio>

#include "core/campaign.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"

namespace {

using mkos::core::SystemConfig;

}  // namespace

int main() {
  using namespace mkos;

  core::print_banner(
      "Section IV — McKernel proxy options: --mpol-shm-premap, --disable-sched-yield",
      "IPDPS'18; paper: +9% AMG 2013, +2% MiniFE at 16 nodes (combined)");

  const SystemConfig plain = SystemConfig::mckernel();
  SystemConfig premap = plain;
  premap.mckernel_mpol_shm_premap = true;
  SystemConfig yield = plain;
  yield.mckernel_disable_sched_yield = true;
  SystemConfig both = premap;
  both.mckernel_disable_sched_yield = true;

  // All 8 cells (2 apps x 4 option sets) fan out across the pool at once.
  // MKOS_CELL_STORE=<dir> adds the persistent disk tier.
  sim::ThreadPool pool;
  const auto store = core::CellStore::from_env();
  core::CellCache cache(store.get());
  core::Campaign campaign(pool, cache);
  core::CampaignSpec spec;
  spec.apps = {"AMG2013", "MiniFE"};
  spec.configs = {plain, premap, yield, both};
  spec.nodes = {16};
  spec.reps = 5;
  spec.seed = 31;
  const auto cells = campaign.run(spec);

  obs::RunLedger ledger = core::bench_ledger(
      "opt_ablation", "IPDPS'18 Section IV proxy-process options", 31);
  core::record_config(ledger, plain, "plain");
  core::record_config(ledger, premap, "premap");
  core::record_config(ledger, yield, "yield");
  core::record_config(ledger, both, "both");
  const char* variants[] = {"plain", "premap", "yield", "both"};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string series =
        cells[i].app + "." + variants[i % 4];  // cells are app-major, configs in spec order
    core::record_run_stats(ledger, series, cells[i].stats);
  }

  core::Table table{{"app @16 nodes", "+premap only", "+yield only", "both",
                     "paper (both)"}};
  struct Row {
    const char* label;
    std::size_t first_cell;  // cells are app-major, configs in spec order
    const char* paper;
  };
  const Row rows[] = {{"AMG 2013", 0, "+9%"}, {"MiniFE", 4, "+2%"}};
  for (const Row& row : rows) {
    const double base = cells[row.first_cell].stats.median();
    const double p = cells[row.first_cell + 1].stats.median();
    const double y = cells[row.first_cell + 2].stats.median();
    const double b = cells[row.first_cell + 3].stats.median();
    table.add_row({row.label, core::fmt_pct(p / base - 1.0), core::fmt_pct(y / base - 1.0),
                   core::fmt_pct(b / base - 1.0), row.paper});
    const std::string app = cells[row.first_cell].app;
    ledger.set_gauge("gain." + app + ".premap", p / base - 1.0);
    ledger.set_gauge("gain." + app + ".yield", y / base - 1.0);
    ledger.set_gauge("gain." + app + ".both", b / base - 1.0);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("premap avoids the shared-memory fault storm at MPI_Init;\n"
              "the yield hijack removes user/kernel crossings from OpenMP spin loops.\n");

  core::record_campaign(ledger, campaign.telemetry(), sim::ThreadPool::default_threads(),
                        store.get());
  core::emit(ledger);
  return 0;
}
