// Section IV proxy-process options: "--mpol-shm-premap ... and
// --disable-sched-yield ... with the combination of these two we observed
// 9% and 2% improvements on 16 nodes for AMG 2013 and MiniFE, respectively."

#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"

namespace {

using mkos::core::SystemConfig;

double median_at_16(mkos::workloads::App& app, const SystemConfig& config) {
  return mkos::core::run_app(app, config, /*nodes=*/16, /*reps=*/5, /*seed=*/31).median();
}

}  // namespace

int main() {
  using namespace mkos;

  core::print_banner(
      "Section IV — McKernel proxy options: --mpol-shm-premap, --disable-sched-yield",
      "IPDPS'18; paper: +9% AMG 2013, +2% MiniFE at 16 nodes (combined)");

  const SystemConfig plain = SystemConfig::mckernel();
  SystemConfig premap = plain;
  premap.mckernel_mpol_shm_premap = true;
  SystemConfig yield = plain;
  yield.mckernel_disable_sched_yield = true;
  SystemConfig both = premap;
  both.mckernel_disable_sched_yield = true;

  core::Table table{{"app @16 nodes", "+premap only", "+yield only", "both",
                     "paper (both)"}};
  struct Row {
    const char* name;
    std::unique_ptr<workloads::App> app;
    const char* paper;
  };
  Row rows[] = {{"AMG 2013", workloads::make_amg2013(), "+9%"},
                {"MiniFE", workloads::make_minife(), "+2%"}};
  for (auto& row : rows) {
    const double base = median_at_16(*row.app, plain);
    const double p = median_at_16(*row.app, premap);
    const double y = median_at_16(*row.app, yield);
    const double b = median_at_16(*row.app, both);
    table.add_row({row.name, core::fmt_pct(p / base - 1.0), core::fmt_pct(y / base - 1.0),
                   core::fmt_pct(b / base - 1.0), row.paper});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("premap avoids the shared-memory fault storm at MPI_Init;\n"
              "the yield hijack removes user/kernel crossings from OpenMP spin loops.\n");
  return 0;
}
