// Release perf smoke: a reduced fig4-style campaign under a wall-clock
// timer. CI runs this on every push to catch sampling-engine or fast-path
// regressions that the unit tests cannot see (they check equivalence, not
// speed): the wall seconds land in the host block, and the deterministic
// block carries the engine counters that prove the fast paths actually
// engaged (heap replays, analytic draws, cost-cache hits). A drop of
// engine.heap_fast_lanes to zero or a wall-time excursion shows up in the
// emitted BENCH_perf_smoke.json without failing the run — the JSON is the
// sensor, the dashboards (or a human diffing two runs) are the alarm.
//
//   MKOS_SMOKE_MAX_NODES / MKOS_SMOKE_REPS shrink or grow the grid
//   (defaults 256 / 3: ~25 s serial on a laptop, a few seconds pooled).

#include <chrono>
#include <cstdio>

#include "core/campaign.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"
#include "sim/env.hpp"

namespace {

using namespace mkos;
using core::SystemConfig;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  // mkos-lint: allow(wall-clock) — host-side telemetry: the smoke test's
  // entire purpose is to time the campaign; results stay in the host block.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  const int max_nodes = sim::env_int("MKOS_SMOKE_MAX_NODES", 256, 1, 1 << 20);
  const int reps = sim::env_int("MKOS_SMOKE_REPS", 3, 1, 1000);
  const int threads = sim::ThreadPool::default_threads();

  core::print_banner("perf_smoke — timed fig4-style campaign",
                     "sampling-engine performance regression sensor");

  core::CampaignSpec spec;
  spec.apps = workloads::fig4_app_names();
  spec.reps = reps;
  spec.seed = 42;
  spec.max_nodes = max_nodes;
  spec.configs = {SystemConfig::linux_default(), SystemConfig::mckernel(),
                  SystemConfig::mos()};

  sim::ThreadPool pool(threads);
  core::CellCache cache;
  core::Campaign campaign(pool, cache);
  // mkos-lint: allow(wall-clock) — host telemetry: campaign wall time.
  const auto t0 = std::chrono::steady_clock::now();
  const auto cells = campaign.run(spec);
  const double wall_s = seconds_since(t0);

  std::printf("%zu cells in %.3f s (%d threads, max_nodes=%d, reps=%d)\n\n",
              cells.size(), wall_s, threads, max_nodes, reps);

  obs::RunLedger ledger = core::bench_ledger(
      "perf_smoke", "sampling-engine performance regression sensor", 42);
  ledger.set_meta("reps", std::to_string(reps));
  ledger.set_meta("max_nodes", std::to_string(max_nodes));
  core::record_config(ledger, SystemConfig::linux_default());
  core::record_config(ledger, SystemConfig::mckernel());
  core::record_config(ledger, SystemConfig::mos());
  for (const core::CellResult& cell : cells) {
    core::record_run_stats(
        ledger, cell.app + "." + cell.config_label + ".n" + std::to_string(cell.nodes),
        cell.stats);
  }
  core::record_campaign(ledger, campaign.telemetry(), threads);
  ledger.set_host("wall_s_campaign", core::json_number(wall_s));
  ledger.set_host("cells_per_s",
                  core::json_number(wall_s > 0.0
                                        ? static_cast<double>(cells.size()) / wall_s
                                        : 0.0));
  core::emit(ledger);

  std::printf("engine fast-path engagement (deterministic):\n"
              "  heap replayed lanes     %llu\n"
              "  heap simulated lanes    %llu\n"
              "  analytic noise sums     %llu\n"
              "  exact per-event draws   %llu\n",
              static_cast<unsigned long long>(ledger.counter("engine.heap_fast_lanes")),
              static_cast<unsigned long long>(ledger.counter("engine.heap_slow_lanes")),
              static_cast<unsigned long long>(ledger.counter("engine.noise_analytic_sums")),
              static_cast<unsigned long long>(ledger.counter("engine.noise_exact_events")));
  return 0;
}
