// Phase breakdown: where each application's time goes per OS at 256 nodes —
// compute vs noise-wait vs communication — plus the memory-translation
// footprint (page-table bytes, average walk depth) of a rank's placement.
// The quantitative version of the paper's Section IV narratives.

#include <cstdio>

#include "core/config.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"
#include "obs/snapshots.hpp"
#include "mem/page_table.hpp"
#include "runtime/simmpi.hpp"
#include "workloads/app.hpp"

namespace {

using namespace mkos;

struct Sample {
  runtime::MpiWorld::PhaseBreakdown phases;
  sim::TimeNs elapsed{0};
  mem::PageTableStats tables;
  double walk_depth = 0.0;
};

Sample run_one(workloads::App& app, kernel::OsKind os, int nodes,
               obs::RunLedger& ledger, const std::string& series) {
  const core::SystemConfig config = core::SystemConfig::for_os(os);
  const runtime::Machine machine = config.machine(nodes);
  runtime::Job job{machine, app.spec(nodes), 7};
  app.setup(job);
  runtime::MpiWorld world{job, 17};
  const workloads::AppResult r = app.run(job, world);

  Sample s;
  s.phases = world.breakdown();
  s.elapsed = r.elapsed;
  mem::Placement agg;
  job.lane(0).address_space().for_each([&](const mem::Vma& v) {
    for (const auto& c : v.placement.chunks()) agg.add(c.domain, c.page, c.bytes);
  });
  s.tables = mem::page_tables_for(agg);
  s.walk_depth = mem::average_walk_depth(agg);

  obs::RunLedger sub;
  obs::record_world(sub, world);
  obs::record_job(sub, job);
  ledger.merge(sub);
  const double total = s.elapsed.sec();
  ledger.set_gauge(series + ".compute_frac", s.phases.compute.sec() / total);
  ledger.set_gauge(series + ".noise_frac", s.phases.noise.sec() / total);
  ledger.set_gauge(series + ".comm_frac", s.phases.comm.sec() / total);
  ledger.set_gauge(series + ".pt_bytes", static_cast<double>(s.tables.table_bytes()));
  ledger.set_gauge(series + ".walk_depth", s.walk_depth);
  return s;
}

}  // namespace

int main() {
  core::print_banner("Phase breakdown — compute / noise / comm per OS @256 nodes",
                     "quantifying the Section IV narratives");

  using namespace mkos;
  obs::RunLedger ledger =
      core::bench_ledger("phase_breakdown", "IPDPS'18 Section IV narratives", 17);

  core::Table table{{"app", "OS", "compute", "noise", "comm", "PT bytes/rank",
                     "walk depth"}};
  const char* names[] = {"AMG2013", "HPCG", "LAMMPS", "MILC", "MiniFE"};
  for (const char* name : names) {
    for (const auto os :
         {kernel::OsKind::kLinux, kernel::OsKind::kMcKernel, kernel::OsKind::kMos}) {
      auto app = workloads::make_app(name);
      const std::string series =
          std::string(name) + "." + std::string(kernel::to_string(os));
      const Sample s = run_one(*app, os, 256, ledger, series);
      const double total = s.elapsed.sec();
      table.add_row({name, std::string(kernel::to_string(os)),
                     core::fmt_pct(s.phases.compute.sec() / total),
                     core::fmt_pct(s.phases.noise.sec() / total),
                     core::fmt_pct(s.phases.comm.sec() / total),
                     sim::bytes_to_string(s.tables.table_bytes()),
                     core::fmt(s.walk_depth, 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("noise%% is time the slowest rank spent absorbing OS detours;\n"
              "comm%% includes collective stalls. Page-table bytes and walk\n"
              "depth show the translation cost of 4 KiB vs 2 MiB/1 GiB pages.\n");

  core::emit(ledger);
  return 0;
}
