// Resilience chaos bench: fault rate x recovery policy x kernel.
//
// The paper's partitioning claim has a resilience corollary: "the Linux
// side can crash or be rebooted while the LWK keeps computing". This bench
// quantifies it with the deterministic fault subsystem (src/fault/):
//
//   Phase A  fault-free baselines per (kernel, nodes) — also the
//            calibration source: fault rates are expressed as expected
//            machine-wide event counts over each cell's own fault-free
//            progress horizon (read back from the deterministic
//            runtime.compute_ns ledger counter), so every policy and
//            kernel faces the same expected number of faults.
//   Phase B  mixed-fault sweep: expected fail-stop counts k in {2, 8, 32}
//            (with proportional straggler/storm/IKC disturbance rates)
//            crossed with all four recovery policies on all kernels —
//            graceful degradation under retry+checkpoint, collapse under
//            kNone at high rates.
//   Phase C  Linux-crash isolation: crashes only; the LWKs ride through at
//            partition cost (reboot stall x offload coupling + proxy
//            respawns) while the Linux baseline loses whole nodes.
//   Phase D  checkpoint-interval sweep at fixed fault rate: total overhead
//            vs interval has an interior optimum (Daly's first-order
//            sqrt(2*cost*MTBF) shape) — too-frequent checkpoints pay
//            cadence, too-rare ones pay rollback.
//
// Everything outside the host block of BENCH_resilience.json is a pure
// function of (grid, seed): rates derive from deterministic counters, seeds
// are positional, and cells merge in grid order — byte-identical for any
// MKOS_THREADS value.
//
//   MKOS_RES_MAX_NODES / MKOS_RES_REPS shrink the sweep for smoke runs;
//   MKOS_THREADS sets the pool size.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"
#include "sim/env.hpp"

namespace {

using namespace mkos;
using core::SystemConfig;

constexpr const char* kApp = "MiniFE";
constexpr std::uint64_t kSeed = 42;

struct Scenario {
  std::string label;               // ledger/gauge key fragment
  double expected_failures = 0.0;  // machine-wide fail-stop count over T
  fault::RecoveryPolicy policy = fault::RecoveryPolicy::kNone;
  bool crash_only = false;         // Phase C: Linux-crash channel only
};

/// Baseline calibration for one (kernel, nodes) cell.
struct Baseline {
  double fom = 0.0;
  double progress_s = 0.0;  // fault-free progress horizon (one rep)
};

/// Tune a resilience spec so the cell sees `expected` machine-wide events
/// of the lead channel over its own fault-free horizon.
fault::Spec tuned_spec(const Scenario& s, const Baseline& base, int nodes) {
  fault::Spec spec;
  const double denom = static_cast<double>(nodes) * std::max(base.progress_s, 1e-6);
  const double lead = s.expected_failures / denom;
  if (s.crash_only) {
    spec.linux_crash_rate_hz = lead;
  } else {
    spec.node_fail_rate_hz = lead;
    // Softer disturbances arrive more often than hard failures.
    spec.straggler_rate_hz = 2.0 * lead;
    spec.storm_rate_hz = 2.0 * lead;
    spec.ikc_drop_rate_hz = 8.0 * lead;
    spec.ikc_delay_rate_hz = 4.0 * lead;
  }
  spec.policy = s.policy;
  // Every duration and cost scales with the cell's own horizon so the sweep
  // compares *relative* disturbance budgets across kernels and node counts
  // (the absolute horizon shrinks as the simulated problem strong-scales):
  // checkpoint ~ 0.25% of the run, restart 4x that, a straggler episode 1%,
  // a storm 1.25%, a Linux reboot 5%.
  const sim::TimeNs horizon = sim::seconds(base.progress_s);
  spec.checkpoint_cost = std::max(sim::microseconds(1), horizon.scaled(1.0 / 400.0));
  spec.restart_cost = spec.checkpoint_cost * 4;
  spec.straggler_duration = std::max(sim::microseconds(10), horizon.scaled(1.0 / 100.0));
  spec.storm_duration = std::max(sim::microseconds(10), horizon.scaled(1.0 / 80.0));
  spec.linux_reboot_stall = std::max(sim::microseconds(10), horizon.scaled(1.0 / 20.0));
  spec.proxy_respawn_cost = std::max(sim::nanoseconds(100), horizon.scaled(1.0 / 10000.0));
  spec.ikc_backoff_base = std::max(sim::nanoseconds(100), horizon.scaled(1.0 / 20000.0));
  spec.ikc_delay_duration = std::max(sim::microseconds(1), horizon.scaled(1.0 / 2000.0));
  if (fault::policy_checkpoints(s.policy)) {
    // Daly first-order optimum against the machine-wide fail-stop MTBF.
    const double mtbf_s = base.progress_s / std::max(s.expected_failures, 1e-9);
    const double interval_s =
        std::sqrt(2.0 * spec.checkpoint_cost.sec() * mtbf_s);
    spec.checkpoint_interval =
        std::max(sim::microseconds(10), sim::seconds(interval_s));
  }
  return spec;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  // mkos-lint: allow(wall-clock) — host-side telemetry only: sweep timing.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  // Floor of 16: MiniFE strong-scales a fixed problem, and below its
  // smallest supported scale the per-node share no longer fits in memory.
  const int max_nodes = sim::env_int("MKOS_RES_MAX_NODES", 2048, 16, 1 << 20);
  const int reps = sim::env_int("MKOS_RES_REPS", 3, 1, 1000);
  const int threads = sim::ThreadPool::default_threads();

  core::print_banner("Resilience — fault rate x recovery policy x kernel",
                     "IPDPS'18 10.1109/IPDPS.2018.00022, Section II (partitioning)");

  std::vector<int> node_counts;
  for (const int n : {64, 256, 1024, 2048}) {
    if (n <= max_nodes) node_counts.push_back(n);
  }
  // Caps below 64 still get one cell at MiniFE's smallest supported scale.
  if (node_counts.empty()) node_counts.push_back(16);

  const std::vector<SystemConfig> kernels = {
      SystemConfig::linux_default(), SystemConfig::mckernel(), SystemConfig::mos()};

  sim::ThreadPool pool(threads);
  core::CellCache cache;
  core::Campaign campaign(pool, cache);
  // mkos-lint: allow(wall-clock) — host telemetry: total sweep wall time.
  const auto t0 = std::chrono::steady_clock::now();

  obs::RunLedger ledger = core::bench_ledger(
      "resilience", "IPDPS'18 10.1109/IPDPS.2018.00022, Section II", kSeed);
  ledger.set_meta("app", kApp);
  ledger.set_meta("reps", std::to_string(reps));
  ledger.set_meta("max_nodes", std::to_string(max_nodes));
  for (const SystemConfig& k : kernels) core::record_config(ledger, k);

  // ---------------------------------------------------- Phase A: baselines
  core::CampaignSpec base_spec;
  base_spec.apps = {kApp};
  base_spec.configs = kernels;
  base_spec.nodes = node_counts;
  base_spec.reps = reps;
  base_spec.seed = kSeed;
  const auto base_cells = campaign.run(base_spec);

  std::map<std::pair<std::string, int>, Baseline> baselines;
  for (const core::CellResult& cell : base_cells) {
    Baseline b;
    b.fom = cell.stats.median();
    b.progress_s = static_cast<double>(cell.stats.ledger.counter("runtime.compute_ns")) /
                   static_cast<double>(reps) * 1e-9;
    baselines[{cell.config_label, cell.nodes}] = b;
    core::record_run_stats(ledger,
                           "base." + cell.config_label + ".n" + std::to_string(cell.nodes),
                           cell.stats);
  }

  // ------------------------------- Phases B + C: scenario sweep per nodes
  std::vector<Scenario> scenarios;
  for (const double k : {2.0, 8.0, 32.0}) {
    for (const fault::RecoveryPolicy p :
         {fault::RecoveryPolicy::kNone, fault::RecoveryPolicy::kRetry,
          fault::RecoveryPolicy::kCheckpointRestart, fault::RecoveryPolicy::kFull}) {
      Scenario s;
      s.label = "k" + std::to_string(static_cast<int>(k)) + "." +
                std::string(fault::to_string(p));
      s.expected_failures = k;
      s.policy = p;
      scenarios.push_back(s);
    }
  }
  {
    Scenario crash;
    crash.label = "crash";
    crash.expected_failures = 8.0;
    crash.policy = fault::RecoveryPolicy::kFull;
    crash.crash_only = true;
    scenarios.push_back(crash);
  }

  for (const int nodes : node_counts) {
    core::CampaignSpec spec;
    spec.apps = {kApp};
    spec.nodes = {nodes};
    spec.reps = reps;
    spec.seed = kSeed;
    // Grid order is config-major, mirroring this meta list.
    std::vector<std::pair<std::string, const Scenario*>> meta;
    for (const SystemConfig& base : kernels) {
      const Baseline& b = baselines.at({base.label(), nodes});
      for (const Scenario& s : scenarios) {
        SystemConfig faulty = base;
        faulty.resilience = tuned_spec(s, b, nodes);
        spec.configs.push_back(faulty);
        meta.emplace_back(base.label(), &s);
      }
    }
    const auto cells = campaign.run(spec);

    core::Table table{{"n" + std::to_string(nodes) + " scenario", "Linux", "McKernel", "mOS"}};
    std::map<std::string, std::map<std::string, double>> degr;  // scenario -> kernel
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto& [kernel_label, scenario] = meta[i];
      const Baseline& b = baselines.at({kernel_label, nodes});
      const double ratio = b.fom > 0.0 ? cells[i].stats.median() / b.fom : 0.0;
      degr[scenario->label][kernel_label] = ratio;
      const std::string key =
          "resilience." + kernel_label + ".n" + std::to_string(nodes) + "." + scenario->label;
      ledger.set_gauge(key + ".degradation", ratio);
      core::record_run_stats(ledger, key, cells[i].stats);
    }
    for (const Scenario& s : scenarios) {
      const auto& by_kernel = degr[s.label];
      table.add_row({s.label, core::fmt(by_kernel.at("Linux"), 3),
                     core::fmt(by_kernel.at("McKernel"), 3),
                     core::fmt(by_kernel.at("mOS"), 3)});
    }
    std::printf("%s\n", table.to_string().c_str());

    // Isolation headline per node count: how much of the Linux-crash damage
    // the partitioned kernels avoid.
    const auto& crash = degr["crash"];
    const double linux_d = crash.at("Linux");
    for (const char* lwk : {"McKernel", "mOS"}) {
      const double iso = linux_d > 0.0 ? crash.at(lwk) / linux_d : 0.0;
      ledger.set_gauge("resilience.isolation." + std::string(lwk) + ".n" +
                           std::to_string(nodes),
                       iso);
    }
  }

  // ------------------------------ Phase D: checkpoint-interval cost curve
  // Fixed rate (k=8 fail-stops), checkpoint-only policy, McKernel at the
  // mid node count: sweep the interval as fractions of the horizon and find
  // the interior optimum.
  const int sweep_nodes = node_counts[std::min<std::size_t>(1, node_counts.size() - 1)];
  const Baseline& sweep_base = baselines.at({"McKernel", sweep_nodes});
  const std::vector<double> fractions = {1.0 / 128, 1.0 / 64, 1.0 / 32,
                                         1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2};
  {
    Scenario s;
    s.label = "ckpt";
    s.expected_failures = 8.0;
    s.policy = fault::RecoveryPolicy::kCheckpointRestart;
    core::CampaignSpec spec;
    spec.apps = {kApp};
    spec.nodes = {sweep_nodes};
    spec.reps = reps;
    spec.seed = kSeed;
    for (const double f : fractions) {
      SystemConfig faulty = SystemConfig::mckernel();
      faulty.resilience = tuned_spec(s, sweep_base, sweep_nodes);
      faulty.resilience.checkpoint_interval =
          std::max(sim::microseconds(10), sim::seconds(sweep_base.progress_s * f));
      spec.configs.push_back(faulty);
    }
    const auto cells = campaign.run(spec);

    core::Table table{{"interval/T", "FOM/baseline"}};
    std::size_t best = 0;
    double best_ratio = -1.0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const double ratio =
          sweep_base.fom > 0.0 ? cells[i].stats.median() / sweep_base.fom : 0.0;
      table.add_row({core::fmt(fractions[i], 5), core::fmt(ratio, 4)});
      ledger.set_gauge("resilience.ckpt.f" + std::to_string(i) + ".degradation", ratio);
      ledger.set_gauge("resilience.ckpt.f" + std::to_string(i) + ".fraction", fractions[i]);
      core::record_run_stats(ledger, "resilience.ckpt.f" + std::to_string(i),
                             cells[i].stats);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = i;
      }
    }
    std::printf("%s\n", table.to_string().c_str());
    const bool interior = best > 0 && best + 1 < fractions.size();
    std::printf("checkpoint sweep (McKernel, n%d, k=8): best interval = T*%s (%s)\n\n",
                sweep_nodes, core::fmt(fractions[best], 5).c_str(),
                interior ? "interior optimum" : "edge — widen the sweep");
    ledger.set_gauge("resilience.ckpt.optimal_fraction", fractions[best]);
    ledger.set_gauge("resilience.ckpt.optimal_interior", interior ? 1.0 : 0.0);
  }

  const core::CampaignTelemetry& t = campaign.telemetry();
  std::printf("%s\n", core::describe(t, threads).c_str());
  core::record_campaign(ledger, t, threads);
  ledger.set_host("wall_s_total", core::json_number(seconds_since(t0)));
  core::emit(ledger);
  return 0;
}
