// Scheduler sweep: FIFO pool vs work-stealing pool on a skewed cost mix,
// plus sharded two-process scaling over a shared cell store.
//
// Section 1 (gated): a synthetic skewed task mix driven through the exact
// production fan-out path (sim::parallel_for_weighted -> TaskPool): a
// broad field of light tasks submitted first and one dominant straggler
// last — grid order, the FIFO worst case. The mix is sized so LPT's bound
// is tight (light work ~= 7x the straggler on 8 workers): FIFO starts the
// straggler only after draining the light field (makespan ~= W_light/8 +
// h) while LPT placement starts it immediately (makespan ~= h), a ~1.8x
// gap. CI gates `host.sched_speedup >= 1.3` on the MODELED makespan
// ratio, not wall clock: a CI container may expose a single CPU, where
// eight spinning workers serialize and every schedule takes total-work
// time — wall clock cannot distinguish schedulers there. The FIFO model
// is the greedy list schedule of the submission order (exactly what the
// shared-queue pool implements: the next free worker takes the next
// queued task); the work-stealing model is taken from the REAL pool run —
// max per-worker executed cost, i.e. `imbalance x mean` from
// sched_telemetry() — so the gate still certifies production placement.
// Wall clocks are reported alongside, informationally.
//
// Section 2: a real campaign grid with genuine cost skew (Lulesh 2.0 on
// Linux pays the brk-churn price — tens of ms — while LWK cells run in
// ~1ms) timed on both pools, asserting the pools produce byte-identical
// cell statistics (the positional-seed determinism contract), and printing
// measured cell cost against the placement model's estimate.
//
// Section 3 (multi-process, emulated): the same grid split across two
// shards (MKOS_SHARD semantics, DESIGN.md §16) running concurrently over
// one shared store directory, claims mediating the overlap, each shard on
// its own half-size pool — two half-machines standing in for two hosts. A
// final unsharded merge run over the warm store must recompute nothing:
// every cell a verified disk hit, zero writes, statistics identical to
// direct simulation.
//
//   MKOS_SWEEP_SCHED_REPS    timing repetitions, min taken (default 3)
//   MKOS_SWEEP_SCHED_THREADS pool width for the timed runs (default 8)
//   MKOS_SWEEP_SCHED_CELL_REPS  per-cell simulation reps (default 2)

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"
#include "sim/env.hpp"
#include "sim/work_stealing_pool.hpp"
#include "workloads/app.hpp"

namespace {

using namespace mkos;
using core::SystemConfig;

/// Real-cell grid with genuine skew: Lulesh 2.0 cells on the Linux config
/// simulate the paper's brk churn at full price while every LWK cell is
/// light; app-major grid order puts the whole Lulesh block last.
core::CampaignSpec cell_spec(int cell_reps) {
  core::CampaignSpec spec;
  spec.apps = {"MiniFE", "Lulesh2.0"};
  spec.configs = {SystemConfig::linux_default(), SystemConfig::mckernel(),
                  SystemConfig::mos(),
                  SystemConfig::for_os(kernel::OsKind::kFusedOs)};
  spec.nodes = {16, 128, 512};  // both apps accept these (MiniFE needs >= 16)
  spec.reps = cell_reps;
  spec.seed = 7;
  return spec;
}

/// Synthetic skewed cost mix, in the unit of spin() below. Light field
/// first, one dominant straggler last — submission order is grid order, so
/// a FIFO pool starts the straggler when the queue is already drained.
/// Sized for the LPT bound to be tight at 8 workers: W_light = 112x13 +
/// 6x37 = 1678 ~= 7x the 240-unit straggler.
std::vector<double> skewed_costs() {
  std::vector<double> costs(112, 13.0);
  costs.insert(costs.end(), 6, 37.0);  // a mid-weight shelf, for realism
  costs.push_back(240.0);              // the straggler, submitted last
  return costs;
}

/// Greedy list-schedule makespan of `costs` taken in index order on
/// `workers` identical virtual workers: the next free worker takes the
/// next queued task. This is exactly the schedule a shared-FIFO pool
/// produces on a machine with `workers` real cores, computed in virtual
/// time so the answer does not depend on the CI host's core count.
double list_schedule_makespan(const std::vector<double>& costs, int workers) {
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int w = 0; w < workers; ++w) free_at.push(0.0);
  double makespan = 0.0;
  for (const double c : costs) {
    const double start = free_at.top();
    free_at.pop();
    free_at.push(start + c);
    makespan = std::max(makespan, start + c);
  }
  return makespan;
}

/// Deterministic integer spin proportional to `units`; returns a value the
/// caller must consume so the loop cannot be optimized away. The absolute
/// per-unit duration is machine-dependent; only the ratio between task
/// durations matters to the scheduling comparison.
std::uint64_t spin(double units) {
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  const auto iters = static_cast<std::uint64_t>(units * 60000.0);
  for (std::uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  // mkos-lint: allow(wall-clock) — host-side telemetry only: this bench
  // times the scheduler itself; no simulated result depends on it.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Makespan of the synthetic mix on `pool`, via the campaign's own
/// weighted fan-out (LPT placement iff the pool is cost-aware).
double timed_synthetic(sim::TaskPool& pool, const std::vector<double>& costs,
                       std::vector<std::uint64_t>* sink) {
  // mkos-lint: allow(wall-clock) — host telemetry: scheduler makespan.
  const auto t0 = std::chrono::steady_clock::now();
  sim::parallel_for_weighted(pool, costs, [&](std::size_t i) {
    (*sink)[i] = spin(costs[i]);
  });
  return seconds_since(t0);
}

/// Run the cell grid on `pool` with a cold cache; returns wall seconds and
/// the cell results (deterministic grid order).
double timed_cells(sim::TaskPool& pool, const core::CampaignSpec& spec,
                   std::vector<core::CellResult>* out) {
  core::CellCache cache;
  core::Campaign campaign(pool, cache);
  // mkos-lint: allow(wall-clock) — host telemetry: campaign makespan.
  const auto t0 = std::chrono::steady_clock::now();
  auto cells = campaign.run(spec);
  const double s = seconds_since(t0);
  if (out != nullptr) *out = std::move(cells);
  return s;
}

/// Cell statistics must not depend on the pool: compare every sample of
/// every cell across two runs.
bool same_results(const std::vector<core::CellResult>& a,
                  const std::vector<core::CellResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].app != b[i].app || a[i].nodes != b[i].nodes ||
        a[i].config_fp != b[i].config_fp) {
      return false;
    }
    if (a[i].stats.fom.samples() != b[i].stats.fom.samples()) return false;
  }
  return true;
}

}  // namespace

int main() {
  const int reps = sim::env_int("MKOS_SWEEP_SCHED_REPS", 3, 1, 100);
  const int threads = sim::env_int("MKOS_SWEEP_SCHED_THREADS", 8, 2, 256);
  const int cell_reps = sim::env_int("MKOS_SWEEP_SCHED_CELL_REPS", 2, 1, 100);
  const core::CampaignSpec spec = cell_spec(cell_reps);

  core::print_banner("Scheduler sweep — FIFO vs work stealing vs 2-shard store",
                     "campaign engine; skewed cost mix (DESIGN.md §16)");

  // --- Section 1 (gated): synthetic skewed mix --------------------------
  const std::vector<double> costs = skewed_costs();
  std::vector<std::uint64_t> sink(costs.size());
  double fifo_s = 1e300;
  double wsp_s = 1e300;
  sim::TaskPool::SchedTelemetry sched{};
  for (int r = 0; r < reps; ++r) {
    {
      sim::ThreadPool pool(threads);
      fifo_s = std::min(fifo_s, timed_synthetic(pool, costs, &sink));
    }
    {
      sim::WorkStealingPool pool(threads);
      wsp_s = std::min(wsp_s, timed_synthetic(pool, costs, &sink));
      sched = pool.sched_telemetry();
    }
  }
  std::uint64_t sink_sum = 0;
  for (const std::uint64_t v : sink) sink_sum += v;  // consume the spin results

  // The gated comparison, in virtual time (core-count independent): FIFO =
  // greedy list schedule of the submission order; WSP = the real pool's
  // measured executed-cost peak (imbalance x mean). LPT's makespan is
  // bounded below by the straggler, so the ratio is ~1.8 by construction
  // and collapses toward 1.0 if cost-model placement regresses.
  double total_cost = 0.0;
  for (const double c : costs) total_cost += c;
  const double fifo_model = list_schedule_makespan(costs, threads);
  const double wsp_model = sched.imbalance * (total_cost / threads);
  const double speedup = wsp_model > 0.0 ? fifo_model / wsp_model : 0.0;
  core::Table t1{{"pool (" + std::to_string(threads) + " threads)",
                  "makespan (cost units)", "speedup",
                  "wall s (min of " + std::to_string(reps) + ")"}};
  t1.add_row({"FIFO ThreadPool", core::fmt(fifo_model, 1), "1.00x",
              core::fmt(fifo_s, 3)});
  t1.add_row({"WorkStealingPool (LPT)", core::fmt(wsp_model, 1),
              core::fmt(speedup, 2) + "x", core::fmt(wsp_s, 3)});
  std::printf("%s\n", t1.to_string().c_str());
  std::printf("synthetic mix: %zu tasks, %.0f cost units, straggler last; last WSP "
              "run: %llu local pops, %llu steals, %llu failed scans, imbalance "
              "%.3f (sink %llx)\n\n",
              costs.size(), total_cost,
              static_cast<unsigned long long>(sched.local_pops),
              static_cast<unsigned long long>(sched.steals),
              static_cast<unsigned long long>(sched.steal_fails), sched.imbalance,
              static_cast<unsigned long long>(sink_sum));

  // --- Section 2: real cells, determinism across pools ------------------
  std::vector<core::CellResult> fifo_cells;
  std::vector<core::CellResult> wsp_cells;
  double fifo_cells_s = 0.0;
  double wsp_cells_s = 0.0;
  {
    sim::ThreadPool pool(threads);
    fifo_cells_s = timed_cells(pool, spec, &fifo_cells);
  }
  {
    sim::WorkStealingPool pool(threads);
    wsp_cells_s = timed_cells(pool, spec, &wsp_cells);
  }
  if (!same_results(fifo_cells, wsp_cells)) {
    std::fprintf(stderr, "FATAL: pool choice changed cell statistics\n");
    return 1;
  }
  // Measured cell cost vs the placement model (workloads::app_cost_weight):
  // the Linux column is where Lulesh's brk churn bites.
  core::Table tc{{"cell (Linux config)", "wall ms", "model cost"}};
  for (const core::CellResult& c : fifo_cells) {
    if (c.config_label != "Linux" || c.from_cache) continue;
    tc.add_row({c.app + " @" + std::to_string(c.nodes), core::fmt(c.wall_ms, 1),
                core::fmt(static_cast<double>(c.nodes) * cell_reps *
                              workloads::app_cost_weight(c.app),
                          0)});
  }
  std::printf("%s\n", tc.to_string().c_str());
  std::printf("real cells (%zu): FIFO %.3f s, WSP %.3f s, statistics identical\n\n",
              fifo_cells.size(), fifo_cells_s, wsp_cells_s);

  // --- Section 3: two concurrent shards over one store, then merge ------
  namespace fs = std::filesystem;
  const fs::path store_root =
      fs::temp_directory_path() /
      ("mkos-sweep-sched-" + std::to_string(static_cast<long long>(::getpid())));
  std::error_code ec;
  fs::remove_all(store_root, ec);

  // Each shard gets half the machine: two half-size pools standing in for
  // two hosts. Claims through the shared store mediate the steal phase.
  const int half = threads / 2;
  double shard_walls[2] = {0.0, 0.0};
  core::CampaignTelemetry shard_telemetry[2];
  {
    std::vector<std::thread> shards;
    for (int i = 0; i < 2; ++i) {
      shards.emplace_back([&, i] {
        core::CellStore store(store_root.string());
        core::CellCache cache(&store);
        sim::WorkStealingPool pool(half);
        core::Campaign campaign(pool, cache);
        core::CampaignSpec shard_spec = spec;
        shard_spec.shard = core::ShardSpec{i, 2};
        // mkos-lint: allow(wall-clock) — host telemetry: shard makespan.
        const auto t0 = std::chrono::steady_clock::now();
        (void)campaign.run(shard_spec);
        shard_walls[i] = seconds_since(t0);
        shard_telemetry[i] = campaign.telemetry();
      });
    }
    for (std::thread& th : shards) th.join();
  }

  // Merge: unsharded run over the warm store. Nothing may recompute — every
  // cell is a verified disk hit (or an in-run duplicate), zero writes.
  core::CellStore merge_store(store_root.string());
  core::CellCache merge_cache(&merge_store);
  sim::WorkStealingPool merge_pool(threads);
  core::Campaign merge_campaign(merge_pool, merge_cache);
  // mkos-lint: allow(wall-clock) — host telemetry: merge wall time.
  const auto m0 = std::chrono::steady_clock::now();
  const auto merged = merge_campaign.run(spec);
  const double merge_s = seconds_since(m0);
  const core::CellStoreCounters msc = merge_store.counters();
  if (msc.writes != 0 || msc.misses != 0) {
    std::fprintf(stderr,
                 "FATAL: merge recomputed cells (writes=%llu misses=%llu) — "
                 "the shards did not cover the grid\n",
                 static_cast<unsigned long long>(msc.writes),
                 static_cast<unsigned long long>(msc.misses));
    return 1;
  }
  if (!same_results(fifo_cells, merged)) {
    std::fprintf(stderr, "FATAL: merged results differ from direct simulation\n");
    return 1;
  }

  const double slowest_shard = std::max(shard_walls[0], shard_walls[1]);
  const double efficiency = slowest_shard > 0.0 ? wsp_cells_s / slowest_shard : 0.0;
  core::Table t2{{"phase", "wall s", "claims", "races", "stolen"}};
  for (int i = 0; i < 2; ++i) {
    const core::CampaignTelemetry& st = shard_telemetry[i];
    t2.add_row({"shard " + std::to_string(i) + "/2 (" + std::to_string(half) +
                    " threads)",
                core::fmt(shard_walls[i], 3), std::to_string(st.sched_claims),
                std::to_string(st.sched_claim_races),
                std::to_string(st.stolen_cells)});
  }
  t2.add_row({"merge (warm store)", core::fmt(merge_s, 3), "0", "0", "0"});
  std::printf("%s\n", t2.to_string().c_str());
  std::printf("2-shard efficiency vs one %d-thread machine: %.2f "
              "(1.0 = linear: each half-machine shard matches the full pool)\n\n",
              threads, efficiency);

  fs::remove_all(store_root, ec);

  // --- Ledger ------------------------------------------------------------
  obs::RunLedger ledger =
      core::bench_ledger("sweep_sched", "campaign scheduler microbenchmark", 7);
  ledger.set_meta("cell_reps", std::to_string(cell_reps));
  ledger.set_meta("timing_reps", std::to_string(reps));
  core::record_campaign(ledger, merge_campaign.telemetry(), threads, &merge_store);
  ledger.set_host("wall_s_fifo", core::json_number(fifo_s));
  ledger.set_host("wall_s_wsp", core::json_number(wsp_s));
  ledger.set_host("makespan_fifo_model", core::json_number(fifo_model));
  ledger.set_host("makespan_wsp_model", core::json_number(wsp_model));
  ledger.set_host("sched_speedup", core::json_number(speedup));
  ledger.set_host("wall_s_fifo_cells", core::json_number(fifo_cells_s));
  ledger.set_host("wall_s_wsp_cells", core::json_number(wsp_cells_s));
  ledger.set_host("wall_s_shard0", core::json_number(shard_walls[0]));
  ledger.set_host("wall_s_shard1", core::json_number(shard_walls[1]));
  ledger.set_host("wall_s_merge", core::json_number(merge_s));
  ledger.set_host("shard_efficiency", core::json_number(efficiency));
  core::emit(ledger);
  return 0;
}
