// Section II-D as data: the per-kernel system-call disposition matrix.
//
// "McKernel ... implements only a small set of performance sensitive system
// calls. The rest are offloaded to Linux." / mOS keeps the same split with
// thread migration / FusedOS offloads everything. This bench prints the
// full table the kernel models implement, plus summary counts — the ground
// truth the LTP reproduction and the offload pricing both consume.

#include <cstdio>

#include "core/obs_glue.hpp"
#include "core/report.hpp"
#include "hw/knl.hpp"
#include "kernel/node.hpp"

int main() {
  using namespace mkos;
  using kernel::Disposition;
  using kernel::Sys;

  core::print_banner("Section II-D — system-call disposition matrix",
                     "local / offloaded / partial / unsupported per kernel");

  kernel::Node linux_node{hw::knl_snc4_flat(), kernel::NodeOsConfig::linux_default(), 1};
  kernel::Node mck_node{hw::knl_snc4_flat(), kernel::NodeOsConfig::mckernel_default(), 2};
  kernel::Node mos_node{hw::knl_snc4_flat(), kernel::NodeOsConfig::mos_default(), 3};
  kernel::Node fused_node{hw::knl_snc4_flat(), kernel::NodeOsConfig::fusedos_default(), 4};
  kernel::Kernel* kernels[] = {&linux_node.app_kernel(), &mck_node.app_kernel(),
                               &mos_node.app_kernel(), &fused_node.app_kernel()};

  obs::RunLedger ledger =
      core::bench_ledger("syscall_matrix", "IPDPS'18 Section II-D", 1);

  // Summary counts per kernel.
  core::Table summary{{"kernel", "local", "offloaded", "partial", "unsupported"}};
  for (kernel::Kernel* k : kernels) {
    int counts[4] = {0, 0, 0, 0};
    for (std::size_t i = 0; i < kernel::kSysCount; ++i) {
      ++counts[static_cast<int>(k->disposition(static_cast<Sys>(i)))];
    }
    summary.add_row({std::string(k->name()), std::to_string(counts[0]),
                     std::to_string(counts[1]), std::to_string(counts[2]),
                     std::to_string(counts[3])});
    const std::string base = "dispo." + std::string(k->name()) + ".";
    const char* kinds[] = {"local", "offloaded", "partial", "unsupported"};
    for (int d = 0; d < 4; ++d) {
      ledger.incr(base + kinds[d], static_cast<std::uint64_t>(counts[d]));
    }
  }
  std::printf("%s\n", summary.to_string().c_str());

  // The calls where the kernels disagree — the design-space fingerprint.
  core::Table table{{"syscall", "Linux", "McKernel", "mOS", "FusedOS"}};
  for (std::size_t i = 0; i < kernel::kSysCount; ++i) {
    const auto s = static_cast<Sys>(i);
    const Disposition d0 = kernels[1]->disposition(s);
    const Disposition d1 = kernels[2]->disposition(s);
    const Disposition d2 = kernels[3]->disposition(s);
    if (d0 == d1 && d1 == d2) continue;  // uniform rows are noise
    std::vector<std::string> row{std::string(kernel::sys_name(s))};
    for (kernel::Kernel* k : kernels) {
      row.push_back(std::string(kernel::to_string(k->disposition(s))));
    }
    table.add_row(std::move(row));
  }
  std::printf("calls where the LWK designs disagree:\n%s\n", table.to_string().c_str());
  ledger.incr("dispo.divergent_calls", static_cast<std::uint64_t>(table.rows()));

  core::emit(ledger);
  return 0;
}
