// Table I: "Lulesh performance in DDR4 RAM with and without brk()
// optimizations" (single node, -s 50, 64 ranks x 2 threads).
//
//   paper:  Linux                         8,959 zones/s   100.0%
//           mOS, heap management disabled 9,551 zones/s   106.6%
//           mOS, regular heap management 10,841 zones/s   121.0%

#include <cstdio>

#include "core/experiment.hpp"
#include "core/obs_glue.hpp"
#include "core/report.hpp"

namespace {

double run_ddr_lulesh(const mkos::core::SystemConfig& config, mkos::obs::RunLedger& ledger,
                      const std::string& series) {
  auto app = mkos::workloads::make_lulesh(50, /*force_ddr=*/true);
  const mkos::core::RunStats rs =
      mkos::core::run_app(*app, config, /*nodes=*/1, /*reps=*/5, /*seed=*/21);
  mkos::core::record_config(ledger, config, series);
  mkos::core::record_run_stats(ledger, series, rs);
  return rs.median();
}

}  // namespace

int main() {
  using namespace mkos;
  using core::SystemConfig;

  core::print_banner("Table I — Lulesh in DDR4 RAM, with/without brk() optimizations",
                     "IPDPS'18, Table I");

  SystemConfig linux_cfg = SystemConfig::linux_default();
  linux_cfg.lwk_prefer_mcdram = false;

  SystemConfig mos_plain = SystemConfig::mos();
  mos_plain.hpc_brk = false;          // "heap management disabled"
  mos_plain.lwk_prefer_mcdram = false;  // DDR4 only

  SystemConfig mos_regular = SystemConfig::mos();
  mos_regular.lwk_prefer_mcdram = false;

  obs::RunLedger ledger = core::bench_ledger("table1_brk", "IPDPS'18, Table I", 21);
  const double lin = run_ddr_lulesh(linux_cfg, ledger, "lulesh_ddr.linux");
  const double plain = run_ddr_lulesh(mos_plain, ledger, "lulesh_ddr.mos_plain_heap");
  const double regular = run_ddr_lulesh(mos_regular, ledger, "lulesh_ddr.mos_hpc_heap");

  core::Table table{{"configuration", "zones/s", "vs Linux", "paper"}};
  table.add_row({"Linux", core::fmt(lin, 0), "100.0%", "8,959 (100.0%)"});
  table.add_row({"mOS, heap management disabled", core::fmt(plain, 0),
                 core::fmt_pct(plain / lin), "9,551 (106.6%)"});
  table.add_row({"mOS, regular heap management", core::fmt(regular, 0),
                 core::fmt_pct(regular / lin), "10,841 (121.0%)"});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("decomposition: ~%s of the gain is heap management "
              "(paper: 121.0 - 106.6 = 14.4 points)\n",
              core::fmt_pct(regular / lin - plain / lin, 1).c_str());

  ledger.set_gauge("ratio.mos_plain_vs_linux", plain / lin);
  ledger.set_gauge("ratio.mos_hpc_vs_linux", regular / lin);
  core::emit(ledger);
  return 0;
}
