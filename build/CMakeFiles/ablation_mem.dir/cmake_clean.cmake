file(REMOVE_RECURSE
  "CMakeFiles/ablation_mem.dir/bench/ablation_mem.cpp.o"
  "CMakeFiles/ablation_mem.dir/bench/ablation_mem.cpp.o.d"
  "bench/ablation_mem"
  "bench/ablation_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
