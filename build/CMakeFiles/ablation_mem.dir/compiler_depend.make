# Empty compiler generated dependencies file for ablation_mem.
# This may be replaced when dependencies are built.
