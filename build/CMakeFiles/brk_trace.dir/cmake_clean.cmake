file(REMOVE_RECURSE
  "CMakeFiles/brk_trace.dir/bench/brk_trace.cpp.o"
  "CMakeFiles/brk_trace.dir/bench/brk_trace.cpp.o.d"
  "bench/brk_trace"
  "bench/brk_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brk_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
