# Empty compiler generated dependencies file for brk_trace.
# This may be replaced when dependencies are built.
