file(REMOVE_RECURSE
  "CMakeFiles/core_partitioning.dir/bench/core_partitioning.cpp.o"
  "CMakeFiles/core_partitioning.dir/bench/core_partitioning.cpp.o.d"
  "bench/core_partitioning"
  "bench/core_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
