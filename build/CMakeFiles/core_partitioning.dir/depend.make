# Empty dependencies file for core_partitioning.
# This may be replaced when dependencies are built.
