file(REMOVE_RECURSE
  "CMakeFiles/fig4_overview.dir/bench/fig4_overview.cpp.o"
  "CMakeFiles/fig4_overview.dir/bench/fig4_overview.cpp.o.d"
  "bench/fig4_overview"
  "bench/fig4_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
