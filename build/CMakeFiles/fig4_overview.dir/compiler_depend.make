# Empty compiler generated dependencies file for fig4_overview.
# This may be replaced when dependencies are built.
