file(REMOVE_RECURSE
  "CMakeFiles/fig5a_ccs_qcd.dir/bench/fig5a_ccs_qcd.cpp.o"
  "CMakeFiles/fig5a_ccs_qcd.dir/bench/fig5a_ccs_qcd.cpp.o.d"
  "bench/fig5a_ccs_qcd"
  "bench/fig5a_ccs_qcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_ccs_qcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
