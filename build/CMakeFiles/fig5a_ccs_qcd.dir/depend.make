# Empty dependencies file for fig5a_ccs_qcd.
# This may be replaced when dependencies are built.
