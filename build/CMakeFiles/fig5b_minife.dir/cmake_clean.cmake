file(REMOVE_RECURSE
  "CMakeFiles/fig5b_minife.dir/bench/fig5b_minife.cpp.o"
  "CMakeFiles/fig5b_minife.dir/bench/fig5b_minife.cpp.o.d"
  "bench/fig5b_minife"
  "bench/fig5b_minife.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_minife.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
