# Empty compiler generated dependencies file for fig5b_minife.
# This may be replaced when dependencies are built.
