file(REMOVE_RECURSE
  "CMakeFiles/fig6a_lulesh.dir/bench/fig6a_lulesh.cpp.o"
  "CMakeFiles/fig6a_lulesh.dir/bench/fig6a_lulesh.cpp.o.d"
  "bench/fig6a_lulesh"
  "bench/fig6a_lulesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_lulesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
