# Empty dependencies file for fig6a_lulesh.
# This may be replaced when dependencies are built.
