file(REMOVE_RECURSE
  "CMakeFiles/fig6b_lammps.dir/bench/fig6b_lammps.cpp.o"
  "CMakeFiles/fig6b_lammps.dir/bench/fig6b_lammps.cpp.o.d"
  "bench/fig6b_lammps"
  "bench/fig6b_lammps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_lammps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
