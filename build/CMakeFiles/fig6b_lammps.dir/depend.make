# Empty dependencies file for fig6b_lammps.
# This may be replaced when dependencies are built.
