file(REMOVE_RECURSE
  "CMakeFiles/isolation.dir/bench/isolation.cpp.o"
  "CMakeFiles/isolation.dir/bench/isolation.cpp.o.d"
  "bench/isolation"
  "bench/isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
