# Empty dependencies file for isolation.
# This may be replaced when dependencies are built.
