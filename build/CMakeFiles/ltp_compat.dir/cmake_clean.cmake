file(REMOVE_RECURSE
  "CMakeFiles/ltp_compat.dir/bench/ltp_compat.cpp.o"
  "CMakeFiles/ltp_compat.dir/bench/ltp_compat.cpp.o.d"
  "bench/ltp_compat"
  "bench/ltp_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltp_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
