# Empty compiler generated dependencies file for ltp_compat.
# This may be replaced when dependencies are built.
