file(REMOVE_RECURSE
  "CMakeFiles/opt_ablation.dir/bench/opt_ablation.cpp.o"
  "CMakeFiles/opt_ablation.dir/bench/opt_ablation.cpp.o.d"
  "bench/opt_ablation"
  "bench/opt_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
