# Empty compiler generated dependencies file for opt_ablation.
# This may be replaced when dependencies are built.
