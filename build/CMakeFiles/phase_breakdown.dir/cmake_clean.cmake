file(REMOVE_RECURSE
  "CMakeFiles/phase_breakdown.dir/bench/phase_breakdown.cpp.o"
  "CMakeFiles/phase_breakdown.dir/bench/phase_breakdown.cpp.o.d"
  "bench/phase_breakdown"
  "bench/phase_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
