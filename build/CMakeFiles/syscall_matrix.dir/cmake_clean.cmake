file(REMOVE_RECURSE
  "CMakeFiles/syscall_matrix.dir/bench/syscall_matrix.cpp.o"
  "CMakeFiles/syscall_matrix.dir/bench/syscall_matrix.cpp.o.d"
  "bench/syscall_matrix"
  "bench/syscall_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syscall_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
