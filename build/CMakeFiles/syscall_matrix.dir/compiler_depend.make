# Empty compiler generated dependencies file for syscall_matrix.
# This may be replaced when dependencies are built.
