file(REMOVE_RECURSE
  "CMakeFiles/table1_brk.dir/bench/table1_brk.cpp.o"
  "CMakeFiles/table1_brk.dir/bench/table1_brk.cpp.o.d"
  "bench/table1_brk"
  "bench/table1_brk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_brk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
