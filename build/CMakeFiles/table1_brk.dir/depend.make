# Empty dependencies file for table1_brk.
# This may be replaced when dependencies are built.
