file(REMOVE_RECURSE
  "CMakeFiles/compat_probe.dir/compat_probe.cpp.o"
  "CMakeFiles/compat_probe.dir/compat_probe.cpp.o.d"
  "compat_probe"
  "compat_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compat_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
