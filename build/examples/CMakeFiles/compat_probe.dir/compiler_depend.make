# Empty compiler generated dependencies file for compat_probe.
# This may be replaced when dependencies are built.
