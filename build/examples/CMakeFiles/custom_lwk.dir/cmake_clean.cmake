file(REMOVE_RECURSE
  "CMakeFiles/custom_lwk.dir/custom_lwk.cpp.o"
  "CMakeFiles/custom_lwk.dir/custom_lwk.cpp.o.d"
  "custom_lwk"
  "custom_lwk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_lwk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
