# Empty compiler generated dependencies file for custom_lwk.
# This may be replaced when dependencies are built.
