file(REMOVE_RECURSE
  "CMakeFiles/memory_policies.dir/memory_policies.cpp.o"
  "CMakeFiles/memory_policies.dir/memory_policies.cpp.o.d"
  "memory_policies"
  "memory_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
