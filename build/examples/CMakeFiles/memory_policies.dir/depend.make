# Empty dependencies file for memory_policies.
# This may be replaced when dependencies are built.
