file(REMOVE_RECURSE
  "CMakeFiles/noise_amplification.dir/noise_amplification.cpp.o"
  "CMakeFiles/noise_amplification.dir/noise_amplification.cpp.o.d"
  "noise_amplification"
  "noise_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
