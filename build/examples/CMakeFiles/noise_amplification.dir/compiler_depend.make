# Empty compiler generated dependencies file for noise_amplification.
# This may be replaced when dependencies are built.
