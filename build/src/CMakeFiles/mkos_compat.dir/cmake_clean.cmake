file(REMOVE_RECURSE
  "CMakeFiles/mkos_compat.dir/compat/catalog.cpp.o"
  "CMakeFiles/mkos_compat.dir/compat/catalog.cpp.o.d"
  "CMakeFiles/mkos_compat.dir/compat/ltp.cpp.o"
  "CMakeFiles/mkos_compat.dir/compat/ltp.cpp.o.d"
  "libmkos_compat.a"
  "libmkos_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkos_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
