file(REMOVE_RECURSE
  "libmkos_compat.a"
)
