# Empty compiler generated dependencies file for mkos_compat.
# This may be replaced when dependencies are built.
