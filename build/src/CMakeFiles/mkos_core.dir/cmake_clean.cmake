file(REMOVE_RECURSE
  "CMakeFiles/mkos_core.dir/core/config.cpp.o"
  "CMakeFiles/mkos_core.dir/core/config.cpp.o.d"
  "CMakeFiles/mkos_core.dir/core/experiment.cpp.o"
  "CMakeFiles/mkos_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/mkos_core.dir/core/report.cpp.o"
  "CMakeFiles/mkos_core.dir/core/report.cpp.o.d"
  "libmkos_core.a"
  "libmkos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
