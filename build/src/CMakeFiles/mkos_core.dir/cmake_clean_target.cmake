file(REMOVE_RECURSE
  "libmkos_core.a"
)
