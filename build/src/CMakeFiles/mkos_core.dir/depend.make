# Empty dependencies file for mkos_core.
# This may be replaced when dependencies are built.
