file(REMOVE_RECURSE
  "CMakeFiles/mkos_hw.dir/hw/cluster.cpp.o"
  "CMakeFiles/mkos_hw.dir/hw/cluster.cpp.o.d"
  "CMakeFiles/mkos_hw.dir/hw/knl.cpp.o"
  "CMakeFiles/mkos_hw.dir/hw/knl.cpp.o.d"
  "CMakeFiles/mkos_hw.dir/hw/network.cpp.o"
  "CMakeFiles/mkos_hw.dir/hw/network.cpp.o.d"
  "CMakeFiles/mkos_hw.dir/hw/topology.cpp.o"
  "CMakeFiles/mkos_hw.dir/hw/topology.cpp.o.d"
  "libmkos_hw.a"
  "libmkos_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkos_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
