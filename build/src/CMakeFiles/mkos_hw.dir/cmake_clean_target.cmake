file(REMOVE_RECURSE
  "libmkos_hw.a"
)
