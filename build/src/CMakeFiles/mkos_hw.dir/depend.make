# Empty dependencies file for mkos_hw.
# This may be replaced when dependencies are built.
