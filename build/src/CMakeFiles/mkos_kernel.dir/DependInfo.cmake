
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/fusedos.cpp" "src/CMakeFiles/mkos_kernel.dir/kernel/fusedos.cpp.o" "gcc" "src/CMakeFiles/mkos_kernel.dir/kernel/fusedos.cpp.o.d"
  "/root/repo/src/kernel/ihk.cpp" "src/CMakeFiles/mkos_kernel.dir/kernel/ihk.cpp.o" "gcc" "src/CMakeFiles/mkos_kernel.dir/kernel/ihk.cpp.o.d"
  "/root/repo/src/kernel/ikc.cpp" "src/CMakeFiles/mkos_kernel.dir/kernel/ikc.cpp.o" "gcc" "src/CMakeFiles/mkos_kernel.dir/kernel/ikc.cpp.o.d"
  "/root/repo/src/kernel/ikc_queue.cpp" "src/CMakeFiles/mkos_kernel.dir/kernel/ikc_queue.cpp.o" "gcc" "src/CMakeFiles/mkos_kernel.dir/kernel/ikc_queue.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/CMakeFiles/mkos_kernel.dir/kernel/kernel.cpp.o" "gcc" "src/CMakeFiles/mkos_kernel.dir/kernel/kernel.cpp.o.d"
  "/root/repo/src/kernel/linux_kernel.cpp" "src/CMakeFiles/mkos_kernel.dir/kernel/linux_kernel.cpp.o" "gcc" "src/CMakeFiles/mkos_kernel.dir/kernel/linux_kernel.cpp.o.d"
  "/root/repo/src/kernel/mckernel.cpp" "src/CMakeFiles/mkos_kernel.dir/kernel/mckernel.cpp.o" "gcc" "src/CMakeFiles/mkos_kernel.dir/kernel/mckernel.cpp.o.d"
  "/root/repo/src/kernel/mos.cpp" "src/CMakeFiles/mkos_kernel.dir/kernel/mos.cpp.o" "gcc" "src/CMakeFiles/mkos_kernel.dir/kernel/mos.cpp.o.d"
  "/root/repo/src/kernel/node.cpp" "src/CMakeFiles/mkos_kernel.dir/kernel/node.cpp.o" "gcc" "src/CMakeFiles/mkos_kernel.dir/kernel/node.cpp.o.d"
  "/root/repo/src/kernel/noise.cpp" "src/CMakeFiles/mkos_kernel.dir/kernel/noise.cpp.o" "gcc" "src/CMakeFiles/mkos_kernel.dir/kernel/noise.cpp.o.d"
  "/root/repo/src/kernel/process.cpp" "src/CMakeFiles/mkos_kernel.dir/kernel/process.cpp.o" "gcc" "src/CMakeFiles/mkos_kernel.dir/kernel/process.cpp.o.d"
  "/root/repo/src/kernel/pseudofs.cpp" "src/CMakeFiles/mkos_kernel.dir/kernel/pseudofs.cpp.o" "gcc" "src/CMakeFiles/mkos_kernel.dir/kernel/pseudofs.cpp.o.d"
  "/root/repo/src/kernel/scheduler.cpp" "src/CMakeFiles/mkos_kernel.dir/kernel/scheduler.cpp.o" "gcc" "src/CMakeFiles/mkos_kernel.dir/kernel/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mkos_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mkos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mkos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
