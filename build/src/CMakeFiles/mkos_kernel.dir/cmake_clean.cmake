file(REMOVE_RECURSE
  "CMakeFiles/mkos_kernel.dir/kernel/fusedos.cpp.o"
  "CMakeFiles/mkos_kernel.dir/kernel/fusedos.cpp.o.d"
  "CMakeFiles/mkos_kernel.dir/kernel/ihk.cpp.o"
  "CMakeFiles/mkos_kernel.dir/kernel/ihk.cpp.o.d"
  "CMakeFiles/mkos_kernel.dir/kernel/ikc.cpp.o"
  "CMakeFiles/mkos_kernel.dir/kernel/ikc.cpp.o.d"
  "CMakeFiles/mkos_kernel.dir/kernel/ikc_queue.cpp.o"
  "CMakeFiles/mkos_kernel.dir/kernel/ikc_queue.cpp.o.d"
  "CMakeFiles/mkos_kernel.dir/kernel/kernel.cpp.o"
  "CMakeFiles/mkos_kernel.dir/kernel/kernel.cpp.o.d"
  "CMakeFiles/mkos_kernel.dir/kernel/linux_kernel.cpp.o"
  "CMakeFiles/mkos_kernel.dir/kernel/linux_kernel.cpp.o.d"
  "CMakeFiles/mkos_kernel.dir/kernel/mckernel.cpp.o"
  "CMakeFiles/mkos_kernel.dir/kernel/mckernel.cpp.o.d"
  "CMakeFiles/mkos_kernel.dir/kernel/mos.cpp.o"
  "CMakeFiles/mkos_kernel.dir/kernel/mos.cpp.o.d"
  "CMakeFiles/mkos_kernel.dir/kernel/node.cpp.o"
  "CMakeFiles/mkos_kernel.dir/kernel/node.cpp.o.d"
  "CMakeFiles/mkos_kernel.dir/kernel/noise.cpp.o"
  "CMakeFiles/mkos_kernel.dir/kernel/noise.cpp.o.d"
  "CMakeFiles/mkos_kernel.dir/kernel/process.cpp.o"
  "CMakeFiles/mkos_kernel.dir/kernel/process.cpp.o.d"
  "CMakeFiles/mkos_kernel.dir/kernel/pseudofs.cpp.o"
  "CMakeFiles/mkos_kernel.dir/kernel/pseudofs.cpp.o.d"
  "CMakeFiles/mkos_kernel.dir/kernel/scheduler.cpp.o"
  "CMakeFiles/mkos_kernel.dir/kernel/scheduler.cpp.o.d"
  "libmkos_kernel.a"
  "libmkos_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkos_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
