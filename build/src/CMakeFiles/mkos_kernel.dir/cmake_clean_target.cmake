file(REMOVE_RECURSE
  "libmkos_kernel.a"
)
