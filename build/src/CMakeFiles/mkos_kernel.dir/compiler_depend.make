# Empty compiler generated dependencies file for mkos_kernel.
# This may be replaced when dependencies are built.
