
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cpp" "src/CMakeFiles/mkos_mem.dir/mem/address_space.cpp.o" "gcc" "src/CMakeFiles/mkos_mem.dir/mem/address_space.cpp.o.d"
  "/root/repo/src/mem/heap.cpp" "src/CMakeFiles/mkos_mem.dir/mem/heap.cpp.o" "gcc" "src/CMakeFiles/mkos_mem.dir/mem/heap.cpp.o.d"
  "/root/repo/src/mem/page_table.cpp" "src/CMakeFiles/mkos_mem.dir/mem/page_table.cpp.o" "gcc" "src/CMakeFiles/mkos_mem.dir/mem/page_table.cpp.o.d"
  "/root/repo/src/mem/phys_allocator.cpp" "src/CMakeFiles/mkos_mem.dir/mem/phys_allocator.cpp.o" "gcc" "src/CMakeFiles/mkos_mem.dir/mem/phys_allocator.cpp.o.d"
  "/root/repo/src/mem/placement.cpp" "src/CMakeFiles/mkos_mem.dir/mem/placement.cpp.o" "gcc" "src/CMakeFiles/mkos_mem.dir/mem/placement.cpp.o.d"
  "/root/repo/src/mem/tlb.cpp" "src/CMakeFiles/mkos_mem.dir/mem/tlb.cpp.o" "gcc" "src/CMakeFiles/mkos_mem.dir/mem/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mkos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mkos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
