file(REMOVE_RECURSE
  "CMakeFiles/mkos_mem.dir/mem/address_space.cpp.o"
  "CMakeFiles/mkos_mem.dir/mem/address_space.cpp.o.d"
  "CMakeFiles/mkos_mem.dir/mem/heap.cpp.o"
  "CMakeFiles/mkos_mem.dir/mem/heap.cpp.o.d"
  "CMakeFiles/mkos_mem.dir/mem/page_table.cpp.o"
  "CMakeFiles/mkos_mem.dir/mem/page_table.cpp.o.d"
  "CMakeFiles/mkos_mem.dir/mem/phys_allocator.cpp.o"
  "CMakeFiles/mkos_mem.dir/mem/phys_allocator.cpp.o.d"
  "CMakeFiles/mkos_mem.dir/mem/placement.cpp.o"
  "CMakeFiles/mkos_mem.dir/mem/placement.cpp.o.d"
  "CMakeFiles/mkos_mem.dir/mem/tlb.cpp.o"
  "CMakeFiles/mkos_mem.dir/mem/tlb.cpp.o.d"
  "libmkos_mem.a"
  "libmkos_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkos_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
