file(REMOVE_RECURSE
  "libmkos_mem.a"
)
