# Empty dependencies file for mkos_mem.
# This may be replaced when dependencies are built.
