
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/collectives.cpp" "src/CMakeFiles/mkos_runtime.dir/runtime/collectives.cpp.o" "gcc" "src/CMakeFiles/mkos_runtime.dir/runtime/collectives.cpp.o.d"
  "/root/repo/src/runtime/job.cpp" "src/CMakeFiles/mkos_runtime.dir/runtime/job.cpp.o" "gcc" "src/CMakeFiles/mkos_runtime.dir/runtime/job.cpp.o.d"
  "/root/repo/src/runtime/noise_extremes.cpp" "src/CMakeFiles/mkos_runtime.dir/runtime/noise_extremes.cpp.o" "gcc" "src/CMakeFiles/mkos_runtime.dir/runtime/noise_extremes.cpp.o.d"
  "/root/repo/src/runtime/shm.cpp" "src/CMakeFiles/mkos_runtime.dir/runtime/shm.cpp.o" "gcc" "src/CMakeFiles/mkos_runtime.dir/runtime/shm.cpp.o.d"
  "/root/repo/src/runtime/simmpi.cpp" "src/CMakeFiles/mkos_runtime.dir/runtime/simmpi.cpp.o" "gcc" "src/CMakeFiles/mkos_runtime.dir/runtime/simmpi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mkos_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mkos_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mkos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mkos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
