file(REMOVE_RECURSE
  "CMakeFiles/mkos_runtime.dir/runtime/collectives.cpp.o"
  "CMakeFiles/mkos_runtime.dir/runtime/collectives.cpp.o.d"
  "CMakeFiles/mkos_runtime.dir/runtime/job.cpp.o"
  "CMakeFiles/mkos_runtime.dir/runtime/job.cpp.o.d"
  "CMakeFiles/mkos_runtime.dir/runtime/noise_extremes.cpp.o"
  "CMakeFiles/mkos_runtime.dir/runtime/noise_extremes.cpp.o.d"
  "CMakeFiles/mkos_runtime.dir/runtime/shm.cpp.o"
  "CMakeFiles/mkos_runtime.dir/runtime/shm.cpp.o.d"
  "CMakeFiles/mkos_runtime.dir/runtime/simmpi.cpp.o"
  "CMakeFiles/mkos_runtime.dir/runtime/simmpi.cpp.o.d"
  "libmkos_runtime.a"
  "libmkos_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkos_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
