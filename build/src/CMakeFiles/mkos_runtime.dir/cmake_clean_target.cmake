file(REMOVE_RECURSE
  "libmkos_runtime.a"
)
