# Empty dependencies file for mkos_runtime.
# This may be replaced when dependencies are built.
