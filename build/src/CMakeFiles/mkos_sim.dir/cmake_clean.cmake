file(REMOVE_RECURSE
  "CMakeFiles/mkos_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/mkos_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/mkos_sim.dir/sim/histogram.cpp.o"
  "CMakeFiles/mkos_sim.dir/sim/histogram.cpp.o.d"
  "CMakeFiles/mkos_sim.dir/sim/log.cpp.o"
  "CMakeFiles/mkos_sim.dir/sim/log.cpp.o.d"
  "CMakeFiles/mkos_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/mkos_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/mkos_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/mkos_sim.dir/sim/stats.cpp.o.d"
  "libmkos_sim.a"
  "libmkos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
