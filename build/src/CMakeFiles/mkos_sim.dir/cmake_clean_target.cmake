file(REMOVE_RECURSE
  "libmkos_sim.a"
)
