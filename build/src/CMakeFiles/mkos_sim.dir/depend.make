# Empty dependencies file for mkos_sim.
# This may be replaced when dependencies are built.
