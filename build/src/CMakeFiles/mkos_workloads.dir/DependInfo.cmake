
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/amg.cpp" "src/CMakeFiles/mkos_workloads.dir/workloads/amg.cpp.o" "gcc" "src/CMakeFiles/mkos_workloads.dir/workloads/amg.cpp.o.d"
  "/root/repo/src/workloads/app.cpp" "src/CMakeFiles/mkos_workloads.dir/workloads/app.cpp.o" "gcc" "src/CMakeFiles/mkos_workloads.dir/workloads/app.cpp.o.d"
  "/root/repo/src/workloads/ccs_qcd.cpp" "src/CMakeFiles/mkos_workloads.dir/workloads/ccs_qcd.cpp.o" "gcc" "src/CMakeFiles/mkos_workloads.dir/workloads/ccs_qcd.cpp.o.d"
  "/root/repo/src/workloads/geofem.cpp" "src/CMakeFiles/mkos_workloads.dir/workloads/geofem.cpp.o" "gcc" "src/CMakeFiles/mkos_workloads.dir/workloads/geofem.cpp.o.d"
  "/root/repo/src/workloads/hpcg.cpp" "src/CMakeFiles/mkos_workloads.dir/workloads/hpcg.cpp.o" "gcc" "src/CMakeFiles/mkos_workloads.dir/workloads/hpcg.cpp.o.d"
  "/root/repo/src/workloads/lammps.cpp" "src/CMakeFiles/mkos_workloads.dir/workloads/lammps.cpp.o" "gcc" "src/CMakeFiles/mkos_workloads.dir/workloads/lammps.cpp.o.d"
  "/root/repo/src/workloads/lulesh.cpp" "src/CMakeFiles/mkos_workloads.dir/workloads/lulesh.cpp.o" "gcc" "src/CMakeFiles/mkos_workloads.dir/workloads/lulesh.cpp.o.d"
  "/root/repo/src/workloads/milc.cpp" "src/CMakeFiles/mkos_workloads.dir/workloads/milc.cpp.o" "gcc" "src/CMakeFiles/mkos_workloads.dir/workloads/milc.cpp.o.d"
  "/root/repo/src/workloads/minife.cpp" "src/CMakeFiles/mkos_workloads.dir/workloads/minife.cpp.o" "gcc" "src/CMakeFiles/mkos_workloads.dir/workloads/minife.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/mkos_workloads.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/mkos_workloads.dir/workloads/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mkos_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mkos_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mkos_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mkos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mkos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
