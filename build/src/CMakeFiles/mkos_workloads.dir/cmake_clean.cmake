file(REMOVE_RECURSE
  "CMakeFiles/mkos_workloads.dir/workloads/amg.cpp.o"
  "CMakeFiles/mkos_workloads.dir/workloads/amg.cpp.o.d"
  "CMakeFiles/mkos_workloads.dir/workloads/app.cpp.o"
  "CMakeFiles/mkos_workloads.dir/workloads/app.cpp.o.d"
  "CMakeFiles/mkos_workloads.dir/workloads/ccs_qcd.cpp.o"
  "CMakeFiles/mkos_workloads.dir/workloads/ccs_qcd.cpp.o.d"
  "CMakeFiles/mkos_workloads.dir/workloads/geofem.cpp.o"
  "CMakeFiles/mkos_workloads.dir/workloads/geofem.cpp.o.d"
  "CMakeFiles/mkos_workloads.dir/workloads/hpcg.cpp.o"
  "CMakeFiles/mkos_workloads.dir/workloads/hpcg.cpp.o.d"
  "CMakeFiles/mkos_workloads.dir/workloads/lammps.cpp.o"
  "CMakeFiles/mkos_workloads.dir/workloads/lammps.cpp.o.d"
  "CMakeFiles/mkos_workloads.dir/workloads/lulesh.cpp.o"
  "CMakeFiles/mkos_workloads.dir/workloads/lulesh.cpp.o.d"
  "CMakeFiles/mkos_workloads.dir/workloads/milc.cpp.o"
  "CMakeFiles/mkos_workloads.dir/workloads/milc.cpp.o.d"
  "CMakeFiles/mkos_workloads.dir/workloads/minife.cpp.o"
  "CMakeFiles/mkos_workloads.dir/workloads/minife.cpp.o.d"
  "CMakeFiles/mkos_workloads.dir/workloads/registry.cpp.o"
  "CMakeFiles/mkos_workloads.dir/workloads/registry.cpp.o.d"
  "libmkos_workloads.a"
  "libmkos_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkos_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
