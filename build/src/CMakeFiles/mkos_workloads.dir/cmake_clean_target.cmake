file(REMOVE_RECURSE
  "libmkos_workloads.a"
)
