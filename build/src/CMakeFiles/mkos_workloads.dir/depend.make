# Empty dependencies file for mkos_workloads.
# This may be replaced when dependencies are built.
