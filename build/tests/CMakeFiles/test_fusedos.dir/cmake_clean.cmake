file(REMOVE_RECURSE
  "CMakeFiles/test_fusedos.dir/test_fusedos.cpp.o"
  "CMakeFiles/test_fusedos.dir/test_fusedos.cpp.o.d"
  "test_fusedos"
  "test_fusedos.pdb"
  "test_fusedos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fusedos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
