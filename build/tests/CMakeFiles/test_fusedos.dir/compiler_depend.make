# Empty compiler generated dependencies file for test_fusedos.
# This may be replaced when dependencies are built.
