file(REMOVE_RECURSE
  "CMakeFiles/test_ihk.dir/test_ihk.cpp.o"
  "CMakeFiles/test_ihk.dir/test_ihk.cpp.o.d"
  "test_ihk"
  "test_ihk.pdb"
  "test_ihk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ihk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
