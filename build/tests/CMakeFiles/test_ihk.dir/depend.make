# Empty dependencies file for test_ihk.
# This may be replaced when dependencies are built.
