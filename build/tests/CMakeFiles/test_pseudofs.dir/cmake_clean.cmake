file(REMOVE_RECURSE
  "CMakeFiles/test_pseudofs.dir/test_pseudofs.cpp.o"
  "CMakeFiles/test_pseudofs.dir/test_pseudofs.cpp.o.d"
  "test_pseudofs"
  "test_pseudofs.pdb"
  "test_pseudofs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pseudofs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
