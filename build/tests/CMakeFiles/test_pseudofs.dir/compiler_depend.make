# Empty compiler generated dependencies file for test_pseudofs.
# This may be replaced when dependencies are built.
