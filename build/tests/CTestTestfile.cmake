# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sim_extras[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_heap[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_offload[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_compat[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_ihk[1]_include.cmake")
include("/root/repo/build/tests/test_syscalls[1]_include.cmake")
include("/root/repo/build/tests/test_figures[1]_include.cmake")
include("/root/repo/build/tests/test_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_fusedos[1]_include.cmake")
include("/root/repo/build/tests/test_noise[1]_include.cmake")
include("/root/repo/build/tests/test_pseudofs[1]_include.cmake")
include("/root/repo/build/tests/test_page_table[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_apps_detail[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
