// Campaign runner: sweep every Fig. 4 application over OS stacks and node
// counts on the parallel campaign engine, emitting machine-readable CSV
// (stdout) for external plotting plus runner telemetry (stderr).
//
//   $ ./examples/campaign > results.csv
//   $ ./examples/campaign 64 3        # cap node count, repetitions
//   $ MKOS_THREADS=8 ./examples/campaign
//
// Results are bit-identical at any thread count: cell seeds derive from
// hash(app, config fingerprint, nodes, rep), not execution order.

#include <cstdio>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "sim/env.hpp"

namespace {

/// argv[i] as a strict positive integer, or `fallback` when absent.
int arg_int(int argc, char** argv, int index, int fallback) {
  if (argc <= index) return fallback;
  const auto parsed = mkos::sim::parse_int(argv[index]);
  if (!parsed || *parsed < 1 || *parsed > (1 << 20)) {
    std::fprintf(stderr, "campaign: bad argument '%s' (expected integer >= 1)\n",
                 argv[index]);
    std::exit(2);
  }
  return static_cast<int>(*parsed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mkos;

  const int max_nodes = arg_int(argc, argv, 1, 2048);
  const int reps = arg_int(argc, argv, 2, 5);

  sim::ThreadPool pool;
  core::CellCache cache;
  core::Campaign campaign(pool, cache);

  core::CampaignSpec spec;
  spec.apps = workloads::fig4_app_names();
  spec.configs = {core::SystemConfig::linux_default(), core::SystemConfig::mckernel(),
                  core::SystemConfig::mos()};
  spec.reps = reps;
  spec.seed = 2026;
  spec.max_nodes = max_nodes;

  core::Table table{{"app", "os", "nodes", "metric", "median", "min", "max"}};
  for (const core::CellResult& cell : campaign.run(spec)) {
    const auto app = workloads::make_app(cell.app);
    table.add_row({cell.app, cell.config_label, std::to_string(cell.nodes),
                   std::string(app->metric()), core::fmt_sci(cell.stats.median(), 6),
                   core::fmt_sci(cell.stats.min(), 6),
                   core::fmt_sci(cell.stats.max(), 6)});
  }
  std::fputs(table.to_csv().c_str(), stdout);
  std::fputs(core::describe(campaign.telemetry(), pool.size()).c_str(), stderr);
  return 0;
}
