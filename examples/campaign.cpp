// Campaign runner: sweep every Fig. 4 application over OS stacks and node
// counts, emitting machine-readable CSV (stdout) for external plotting.
//
//   $ ./examples/campaign > results.csv
//   $ ./examples/campaign 64 3        # cap node count, repetitions

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace mkos;

  const int max_nodes = argc > 1 ? std::atoi(argv[1]) : 2048;
  const int reps = argc > 2 ? std::atoi(argv[2]) : 5;

  core::Table table{{"app", "os", "nodes", "metric", "median", "min", "max"}};
  for (const auto& app : workloads::make_fig4_apps()) {
    for (const auto os :
         {kernel::OsKind::kLinux, kernel::OsKind::kMcKernel, kernel::OsKind::kMos}) {
      const core::SystemConfig config = core::SystemConfig::for_os(os);
      for (const auto& point :
           core::scaling_sweep(*app, config, reps, /*seed=*/2026, max_nodes)) {
        table.add_row({std::string(app->name()), config.label(),
                       std::to_string(point.nodes), std::string(app->metric()),
                       core::fmt_sci(point.median, 6), core::fmt_sci(point.min, 6),
                       core::fmt_sci(point.max, 6)});
      }
    }
  }
  std::fputs(table.to_csv().c_str(), stdout);
  return 0;
}
