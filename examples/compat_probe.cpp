// Compatibility probe: run the LTP-style suite against every kernel and
// drill into one failure family — the paper's Section III-D, interactive.

#include <cstdio>

#include "compat/ltp.hpp"
#include "core/report.hpp"
#include "hw/knl.hpp"
#include "kernel/node.hpp"

int main() {
  using namespace mkos;

  core::print_banner("mkos compatibility probe — LTP-style suite",
                     "paper Section III-D: Linux compatibility");

  const compat::LtpSuite suite = compat::LtpSuite::standard();
  core::Table table{{"kernel", "total", "passed", "failed", "pass rate"}};

  kernel::Node linux_node{hw::knl_snc4_flat(), kernel::NodeOsConfig::linux_default(), 1};
  kernel::Node mck_node{hw::knl_snc4_flat(), kernel::NodeOsConfig::mckernel_default(), 2};
  kernel::Node mos_node{hw::knl_snc4_flat(), kernel::NodeOsConfig::mos_default(), 3};

  compat::Report mos_report;
  for (kernel::Node* node : {&linux_node, &mck_node, &mos_node}) {
    kernel::Kernel& k = node->app_kernel();
    const compat::Report r = suite.run(k);
    if (k.kind() == kernel::OsKind::kMos) mos_report = r;
    table.add_row({std::string(k.name()), std::to_string(r.total),
                   std::to_string(r.passed), std::to_string(r.failed),
                   core::fmt_pct(r.pass_rate())});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("mOS failures by syscall family:\n");
  for (const auto& [family, count] : mos_report.failures_by_family) {
    std::printf("  %-16s %d\n", family.c_str(), count);
  }

  // Why a single test fails: the HPC brk() semantics.
  std::printf(
      "\nExample: the brk shrink/refault cases fail on both LWKs because the\n"
      "HPC heap ignores contractions — behaviour HPC applications neither\n"
      "need nor expect, but LTP checks for.\n");
  return 0;
}
