// Rapid LWK experimentation: the paper argues a key multi-kernel strength is
// that the small LWK code base lets you "rapidly experiment with features
// targeting specific application needs". This example does exactly that with
// mkos: it sweeps McKernel feature toggles (HPC brk, aggressive heap
// extension, sched_yield hijack, shm premap) on the Lulesh proxy and prints
// the contribution of each.

#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"

namespace {

double median_fom(const mkos::core::SystemConfig& config) {
  auto app = mkos::workloads::make_lulesh(50);
  return mkos::core::run_app(*app, config, /*nodes=*/27, /*reps=*/3, /*seed=*/5).median();
}

}  // namespace

int main() {
  using namespace mkos;

  core::print_banner("mkos custom LWK — McKernel feature toggles on Lulesh (27 nodes)",
                     "Section II-D6: application-specific features");

  core::SystemConfig base = core::SystemConfig::mckernel();
  base.hpc_brk = false;
  const double baseline = median_fom(base);

  core::Table table{{"configuration", "zones/s", "vs plain McKernel"}};
  table.add_row({"plain (HPC brk off)", core::fmt(baseline, 0), "100.0%"});

  core::SystemConfig with_brk = base;
  with_brk.hpc_brk = true;
  const double brk_fom = median_fom(with_brk);
  table.add_row({"+ HPC brk()", core::fmt(brk_fom, 0),
                 core::fmt_pct(brk_fom / baseline)});

  core::SystemConfig with_yield = with_brk;
  with_yield.mckernel_disable_sched_yield = true;
  const double yield_fom = median_fom(with_yield);
  table.add_row({"+ --disable-sched-yield", core::fmt(yield_fom, 0),
                 core::fmt_pct(yield_fom / baseline)});

  core::SystemConfig with_premap = with_yield;
  with_premap.mckernel_mpol_shm_premap = true;
  const double premap_fom = median_fom(with_premap);
  table.add_row({"+ --mpol-shm-premap", core::fmt(premap_fom, 0),
                 core::fmt_pct(premap_fom / baseline)});

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Each toggle maps to a real McKernel/mOS deployment option; because the\n"
      "LWK models are small, adding another experiment is a few lines of C++.\n");
  return 0;
}
