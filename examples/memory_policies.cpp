// Memory-policy walkthrough: how the same 20 GiB working set lands in
// MCDRAM/DDR4 under each kernel on a SNC-4 KNL node — the paper's CCS-QCD
// mechanism, observable through the public API.

#include <cstdio>

#include "core/config.hpp"
#include "core/report.hpp"
#include "runtime/job.hpp"
#include "workloads/app.hpp"

int main() {
  using namespace mkos;
  using sim::GiB;

  core::print_banner("mkos memory policies — MCDRAM spill on SNC-4",
                     "working set exceeds the 16 GiB of MCDRAM");

  core::Table table{{"OS", "lane", "resident", "MCDRAM share", "faults"}};

  for (const auto os :
       {kernel::OsKind::kLinux, kernel::OsKind::kMcKernel, kernel::OsKind::kMos}) {
    const core::SystemConfig config = core::SystemConfig::for_os(os);
    const runtime::Machine machine = config.machine(1);
    runtime::Job job{machine, runtime::JobSpec{1, 4, 32}, /*seed=*/7};

    // 5 GiB per rank, uneven like a real domain decomposition.
    workloads::alloc_working_set(job, 5 * GiB, {1.3, 0.72, 1.12, 0.86});

    for (int lane = 0; lane < job.lane_count(); ++lane) {
      const auto& p = job.lane(lane);
      table.add_row({config.label(), std::to_string(lane),
                     sim::bytes_to_string(p.address_space().resident_bytes()),
                     core::fmt_pct(job.lane_fraction_in(lane, hw::MemKind::kMcdram)),
                     std::to_string(p.address_space().total_faults())});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Linux (SNC-4, default policy): first touch walks DDR4 first - MCDRAM unused.\n"
      "mOS:      upfront allocation against a per-rank MCDRAM quota set at launch.\n"
      "McKernel: mappings that exceed free MCDRAM fall back to demand paging and\n"
      "          pack remaining MCDRAM evenly across ranks at first touch.\n");
  return 0;
}
