// Noise amplification demo: the same allreduce-per-iteration loop at
// growing node counts, Linux vs LWK. Shows why MiniFE collapses at scale on
// Linux (Fig. 5b) while the LWKs keep scaling.

#include <cstdio>

#include "core/config.hpp"
#include "core/report.hpp"
#include "runtime/simmpi.hpp"

namespace {

double iteration_us(mkos::kernel::OsKind os, int nodes, mkos::sim::TimeNs window) {
  using namespace mkos;
  const core::SystemConfig config = core::SystemConfig::for_os(os);
  const runtime::Machine machine = config.machine(nodes);
  runtime::Job job{machine, runtime::JobSpec{nodes, 64, 4}, 1};
  runtime::MpiWorld world{job, 1234};
  constexpr int kIters = 40;
  for (int i = 0; i < kIters; ++i) {
    world.compute_time(window);
    world.allreduce(8);
  }
  return world.finish().us() / kIters;
}

}  // namespace

int main() {
  using namespace mkos;

  core::print_banner("mkos noise amplification — allreduce loop, 150 us windows",
                     "the Fig. 5b mechanism in isolation");

  core::Table table{{"nodes", "Linux us/iter", "McKernel us/iter", "Linux/LWK"}};
  for (int nodes : {16, 64, 256, 512, 1024, 2048}) {
    const double lin = iteration_us(kernel::OsKind::kLinux, nodes, sim::microseconds(150));
    const double mck =
        iteration_us(kernel::OsKind::kMcKernel, nodes, sim::microseconds(150));
    table.add_row({std::to_string(nodes), core::fmt(lin, 1), core::fmt(mck, 1),
                   core::fmt(lin / mck, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Every rank waits for the slowest core in each window; the maximum over\n"
      "N cores of a heavy-tailed noise distribution grows with N, so Linux\n"
      "iterations dilate at scale while the jitter-less LWK stays flat.\n");
  return 0;
}
