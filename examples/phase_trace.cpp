// Phase trace: run MiniFE at the Fig. 5b cliff with tracing enabled and
// show *where the time goes* per synchronization — the collective stalls
// that eat Linux alive are directly visible in the event stream.

#include <cstdio>

#include "core/config.hpp"
#include "core/report.hpp"
#include "runtime/simmpi.hpp"
#include "sim/histogram.hpp"
#include "workloads/app.hpp"

namespace {

const char* kind_name(mkos::runtime::MpiWorld::SyncKind k) {
  using K = mkos::runtime::MpiWorld::SyncKind;
  switch (k) {
    case K::kAllreduce: return "allreduce";
    case K::kHalo: return "halo";
    case K::kShift: return "shift";
    case K::kFinish: return "finish";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace mkos;

  core::print_banner("mkos phase trace — MiniFE at 1,024 nodes",
                     "per-synchronization breakdown of the Fig. 5b collapse");

  for (const auto os : {kernel::OsKind::kMcKernel, kernel::OsKind::kLinux}) {
    auto app = workloads::make_minife();
    const core::SystemConfig config = core::SystemConfig::for_os(os);
    const runtime::Machine machine = config.machine(1024);
    runtime::Job job{machine, app->spec(1024), 1};
    app->setup(job);
    runtime::MpiWorld world{job, 77};
    world.enable_trace();
    const workloads::AppResult r = app->run(job, world);

    const auto b = world.breakdown();
    std::printf("\n%s: elapsed %s  (compute %s | noise %s | comm %s)\n",
                config.label().c_str(), sim::to_string(r.elapsed).c_str(),
                sim::to_string(b.compute).c_str(), sim::to_string(b.noise).c_str(),
                sim::to_string(b.comm).c_str());

    // Distribution of per-event communication cost: on Linux a bimodal
    // cluster appears at the stall-recovery bound.
    sim::Histogram comm_us{1.0, 1e6, 4};
    for (const auto& e : world.trace()) {
      if (e.kind == runtime::MpiWorld::SyncKind::kAllreduce) {
        comm_us.add(e.comm.us());
      }
    }
    std::printf("allreduce cost distribution (us):\n%s", comm_us.to_string(32).c_str());

    // The five most expensive events.
    auto trace = world.trace();
    std::sort(trace.begin(), trace.end(), [](const auto& a, const auto& b2) {
      return a.noise + a.comm > b2.noise + b2.comm;
    });
    std::printf("worst events:\n");
    for (std::size_t i = 0; i < std::min<std::size_t>(5, trace.size()); ++i) {
      std::printf("  %-9s span=%-10s noise=%-10s comm=%s\n",
                  kind_name(trace[i].kind), sim::to_string(trace[i].span).c_str(),
                  sim::to_string(trace[i].noise).c_str(),
                  sim::to_string(trace[i].comm).c_str());
    }
  }
  return 0;
}
