// Quickstart: boot the three OS deployments on a 16-node KNL cluster, run
// the MiniFE proxy on each, and compare figures of merit.
//
//   $ ./examples/quickstart
//
// This is the smallest end-to-end use of the public API:
//   SystemConfig -> run_app() -> RunStats.

#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"

int main() {
  using namespace mkos;

  core::print_banner("mkos quickstart — MiniFE on 16 KNL nodes",
                     "multi-kernel OS simulation framework");

  auto app = workloads::make_minife();
  constexpr int kNodes = 16;
  constexpr int kReps = 5;

  core::Table table{{"OS", "median " + std::string(app->metric()), "min", "max"}};
  double linux_median = 0.0;

  for (const auto os :
       {kernel::OsKind::kLinux, kernel::OsKind::kMcKernel, kernel::OsKind::kMos}) {
    const core::SystemConfig config = core::SystemConfig::for_os(os);
    const core::RunStats stats = core::run_app(*app, config, kNodes, kReps, /*seed=*/1);
    if (os == kernel::OsKind::kLinux) linux_median = stats.median();
    table.add_row({config.label(), core::fmt_sci(stats.median()),
                   core::fmt_sci(stats.min()), core::fmt_sci(stats.max())});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Relative view, the way the paper reports it.
  for (const auto os : {kernel::OsKind::kMcKernel, kernel::OsKind::kMos}) {
    const core::RunStats stats =
        core::run_app(*app, core::SystemConfig::for_os(os), kNodes, kReps, 1);
    std::printf("%-9s vs Linux: %s\n", std::string(kernel::to_string(os)).c_str(),
                core::fmt_pct(stats.median() / linux_median).c_str());
  }
  return 0;
}
