#include "alloc/model.hpp"

#include <algorithm>
#include <string>

#include "sim/contracts.hpp"

namespace mkos::alloc {

using sim::KiB;
using sim::MiB;

PersonalityParams params_for(kernel::OsKind os, const AllocSpec& spec) {
  PersonalityParams p;
  p.magazines.max_rounds = std::max(spec.magazine_cap, p.magazines.min_rounds);
  switch (os) {
    case kernel::OsKind::kLinux:
      // Buddy/SLUB-like: 4 KiB pages, per-2 MiB section imports, small slab
      // spans, fine-grained locks that *do* bounce under concurrency, and a
      // reclaim daemon that keeps eating the depot.
      p.vmem_quantum = 4 * KiB;
      p.import_quantum = 2 * MiB;
      p.slab_span = 64 * KiB;
      p.cpu_hit = sim::TimeNs{12};
      p.depot_lock = sim::TimeNs{60};
      p.zone_lock = sim::TimeNs{220};
      p.segment_op = sim::TimeNs{90};
      p.import_cpu = sim::TimeNs{600};
      p.lock_contention = 0.35;
      p.reclaim_daemon = spec.linux_reclaim_daemon;
      break;
    case kernel::OsKind::kMcKernel:
      // IHK hands McKernel big chunks up front; allocation is large-quantum
      // carving with almost no cross-CPU lock traffic and no reclaim.
      p.vmem_quantum = 2 * MiB;
      p.import_quantum = 64 * MiB;
      p.slab_span = 2 * MiB;
      p.cpu_hit = sim::TimeNs{10};
      p.depot_lock = sim::TimeNs{40};
      p.zone_lock = sim::TimeNs{90};
      p.segment_op = sim::TimeNs{50};
      p.import_cpu = sim::TimeNs{350};
      p.lock_contention = 0.03;
      p.reclaim_daemon = false;
      break;
    case kernel::OsKind::kMos:
      // mOS reserved contiguous physical memory at boot — even cheaper
      // segment paths and the least lock contention of the three.
      p.vmem_quantum = 2 * MiB;
      p.import_quantum = 128 * MiB;
      p.slab_span = 2 * MiB;
      p.cpu_hit = sim::TimeNs{10};
      p.depot_lock = sim::TimeNs{40};
      p.zone_lock = sim::TimeNs{80};
      p.segment_op = sim::TimeNs{45};
      p.import_cpu = sim::TimeNs{300};
      p.lock_contention = 0.02;
      p.reclaim_daemon = false;
      break;
    case kernel::OsKind::kFusedOs:
      // CL partitions own their memory outright; mOS-like costs.
      p.vmem_quantum = 2 * MiB;
      p.import_quantum = 128 * MiB;
      p.slab_span = 2 * MiB;
      p.cpu_hit = sim::TimeNs{10};
      p.depot_lock = sim::TimeNs{42};
      p.zone_lock = sim::TimeNs{85};
      p.segment_op = sim::TimeNs{48};
      p.import_cpu = sim::TimeNs{320};
      p.lock_contention = 0.025;
      p.reclaim_daemon = false;
      break;
  }
  return p;
}

NodeAllocModel::NodeAllocModel(const hw::NodeTopology& topo,
                               mem::PhysMemory& phys, kernel::OsKind os,
                               const AllocSpec& spec, int lanes)
    : phys_(&phys),
      spec_(spec),
      params_(params_for(os, spec)),
      lanes_(lanes),
      import_order_(topo.domains_of_kind(hw::MemKind::kDdr4)),
      lane_refill_bytes_(static_cast<std::size_t>(lanes), 0) {
  MKOS_EXPECTS(lanes_ > 0);
  MKOS_EXPECTS(!import_order_.empty());
  for (hw::DomainId d : import_order_) {
    phys_->domain(d).set_traffic_hook(
        [this](int caller, sim::Bytes length) {
          if (caller < 0) return;  // not an allocator-model import
          refill_bytes_ += length;
          lane_refill_bytes_[static_cast<std::size_t>(caller)] += length;
        });
  }
  arena_ = std::make_unique<VmemArena>(
      std::string("kmem"), params_.vmem_quantum, params_.import_quantum,
      [this](sim::Bytes want) -> sim::Bytes {
        sim::Bytes granted = 0;
        for (hw::DomainId d : import_order_) {
          auto& dom = phys_->domain(d);
          dom.set_traffic_caller(import_lane_);
          const auto& extents =
              dom.alloc_best_effort(want - granted, params_.vmem_quantum);
          dom.set_traffic_caller(-1);
          for (const auto& e : extents) granted += e.length;
          if (granted >= want) break;
        }
        return granted;
      },
      params_.segment_op, params_.import_cpu);
}

NodeAllocModel::~NodeAllocModel() {
  // The hook lambda captures `this`; never leave it dangling on the node.
  for (hw::DomainId d : import_order_) {
    phys_->domain(d).set_traffic_hook(nullptr);
    phys_->domain(d).set_traffic_caller(-1);
  }
}

sim::TimeNs NodeAllocModel::churn(int lane, std::uint64_t pairs,
                                  sim::Bytes obj_bytes) {
  MKOS_EXPECTS(lane >= 0 && lane < lanes_);
  SlabCache& cache = cache_for(obj_bytes);
  import_lane_ = lane;  // attribute any refill cascade this burst triggers
  const sim::TimeNs cost = cache.churn(lane, pairs, lanes_,
                                       spec_.contention_scale,
                                       spec_.churn_cost_scale);
  import_lane_ = -1;
  if (params_.reclaim_daemon) maybe_reclaim(cache);
  return cost;
}

void NodeAllocModel::drain_lanes() {
  for (auto& cache : caches_) {
    for (int lane = 0; lane < lanes_; ++lane) cache->drain(lane);
  }
}

AllocCounters NodeAllocModel::counters() const {
  AllocCounters out;
  for (const auto& cache : caches_) {
    const SlabCache::Stats& s = cache->stats();
    out.magazine_hits += s.magazine_hits;
    out.magazine_misses += s.magazine_misses;
    out.depot_loads += s.depot_loads;
    out.depot_unloads += s.depot_unloads;
    out.depot_lock_ns += s.depot_lock_ns;
    out.zone_lock_ns += s.zone_lock_ns;
    out.slab_creates += s.slab_creates;
    out.slab_frees += s.slab_frees;
    out.resizes_up += s.resizes_up;
    out.resizes_down += s.resizes_down;
  }
  const VmemStats& v = arena_->stats();
  out.vmem_allocs = v.allocs;
  out.vmem_frees = v.frees;
  out.vmem_qcache_hits = v.qcache_hits;
  out.vmem_imports = v.imports;
  out.vmem_import_bytes = v.import_bytes;
  out.vmem_import_fails = v.import_fails;
  out.refill_bytes = refill_bytes_;
  out.reclaims = reclaims_;
  out.reclaimed_slabs = reclaimed_slabs_;
  return out;
}

sim::Bytes NodeAllocModel::lane_refill_bytes(int lane) const {
  MKOS_EXPECTS(lane >= 0 && lane < lanes_);
  return lane_refill_bytes_[static_cast<std::size_t>(lane)];
}

SlabCache& NodeAllocModel::cache_for(sim::Bytes obj_bytes) {
  const auto it = std::lower_bound(
      caches_.begin(), caches_.end(), obj_bytes,
      [](const std::unique_ptr<SlabCache>& c, sim::Bytes sz) {
        return c->obj_bytes() < sz;
      });
  if (it != caches_.end() && (*it)->obj_bytes() == obj_bytes) return **it;
  SlabCosts costs{params_.cpu_hit, params_.depot_lock, params_.zone_lock,
                  params_.lock_contention};
  auto cache = std::make_unique<SlabCache>(
      arena_.get(), obj_bytes, std::max(params_.slab_span, obj_bytes), costs,
      params_.magazines, lanes_);
  return **caches_.insert(it, std::move(cache));
}

void NodeAllocModel::maybe_reclaim(SlabCache& cache) {
  // kreclaimd policy: once the depot holds more than kReclaimThresholdMags
  // full (max-size) magazines, trim it back to half the threshold. The trim
  // frees whole slabs to the arena, so the next burst rebuilds them under
  // the zone lock — Linux pays twice for churny allocation patterns.
  const std::uint64_t threshold =
      kReclaimThresholdMags *
      static_cast<std::uint64_t>(params_.magazines.max_rounds);
  if (cache.depot_rounds() <= threshold) return;
  const SlabCache::ReclaimResult r =
      cache.reclaim(cache.depot_rounds() - threshold / 2);
  ++reclaims_;
  reclaimed_slabs_ += r.freed_slabs;
}

}  // namespace mkos::alloc
