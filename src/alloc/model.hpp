#pragma once
// NodeAllocModel — per-node instantiation of the allocator model, with one
// kernel "personality" per OsKind (DESIGN.md §17):
//
//   Linux     — 4 KiB vmem quantum, small slab spans, fine-grained but
//               contended depot/zone locks, and a kreclaimd-style daemon
//               that trims the depot (forcing repeated slab reconstruction
//               under the zone lock).
//   McKernel  — 2 MiB quantum, huge import spans, near-contention-free
//               locks, no reclaim: allocation is a bump down a large
//               pre-reserved region, as in IHK/McKernel.
//   mOS       — like McKernel with slightly cheaper paths (memory was
//               grabbed contiguously at boot) — the mOS "lean LWK" story.
//   FusedOS   — mOS-like (CL partitions own their memory outright).
//
// One VmemArena per node imports DDR4 backing from `mem::DomainAllocator`
// best-effort carving (attributed per lane via the TrafficHook), and a small
// family of SlabCaches serves per-object-size churn from the workloads.

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/slab.hpp"
#include "alloc/spec.hpp"
#include "alloc/vmem.hpp"
#include "hw/topology.hpp"
#include "kernel/kernel.hpp"
#include "mem/phys_allocator.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"

namespace mkos::alloc {

/// Calibrated per-kernel parameters of the model. Values are modeled costs
/// (see DESIGN.md §17 for provenance), scaled by the AllocSpec knobs.
struct PersonalityParams {
  sim::Bytes vmem_quantum = 0;
  sim::Bytes import_quantum = 0;
  sim::Bytes slab_span = 0;
  sim::TimeNs cpu_hit{0};
  sim::TimeNs depot_lock{0};
  sim::TimeNs zone_lock{0};
  sim::TimeNs segment_op{0};
  sim::TimeNs import_cpu{0};
  double lock_contention = 0.0;
  bool reclaim_daemon = false;
  MagazinePolicy magazines;
};

[[nodiscard]] PersonalityParams params_for(kernel::OsKind os,
                                           const AllocSpec& spec);

/// Snapshot of every `alloc.*` counter (all registered in
/// tools/counter_schema.json; obs::record_alloc emits them 1:1).
struct AllocCounters {
  std::uint64_t magazine_hits = 0;
  std::uint64_t magazine_misses = 0;
  std::uint64_t depot_loads = 0;
  std::uint64_t depot_unloads = 0;
  std::uint64_t depot_lock_ns = 0;
  std::uint64_t zone_lock_ns = 0;
  std::uint64_t slab_creates = 0;
  std::uint64_t slab_frees = 0;
  std::uint64_t resizes_up = 0;
  std::uint64_t resizes_down = 0;
  std::uint64_t vmem_allocs = 0;
  std::uint64_t vmem_frees = 0;
  std::uint64_t vmem_qcache_hits = 0;
  std::uint64_t vmem_imports = 0;
  std::uint64_t vmem_import_bytes = 0;
  std::uint64_t vmem_import_fails = 0;
  std::uint64_t refill_bytes = 0;
  std::uint64_t reclaims = 0;
  std::uint64_t reclaimed_slabs = 0;
};

class NodeAllocModel {
 public:
  /// `topo`/`phys` describe the job's representative node and must outlive
  /// the model. Installs a TrafficHook on every DDR4 DomainAllocator to
  /// attribute refill traffic per lane; the destructor removes it.
  NodeAllocModel(const hw::NodeTopology& topo, mem::PhysMemory& phys,
                 kernel::OsKind os, const AllocSpec& spec, int lanes);
  ~NodeAllocModel();

  NodeAllocModel(const NodeAllocModel&) = delete;
  NodeAllocModel& operator=(const NodeAllocModel&) = delete;

  /// Charge `lane` for `pairs` alloc/free pairs of `obj_bytes` objects,
  /// assuming all lanes churn concurrently (worst-case lock contention).
  /// Runs the Linux reclaim daemon policy when the personality has one.
  [[nodiscard]] sim::TimeNs churn(int lane, std::uint64_t pairs,
                                  sim::Bytes obj_bytes);

  /// Lane teardown: return every per-CPU magazine to the depots.
  void drain_lanes();

  [[nodiscard]] AllocCounters counters() const;
  [[nodiscard]] sim::Bytes lane_refill_bytes(int lane) const;
  [[nodiscard]] const VmemArena& arena() const { return *arena_; }
  [[nodiscard]] const PersonalityParams& params() const { return params_; }
  [[nodiscard]] int lane_count() const { return lanes_; }

  /// Depot occupancy (rounds) above which the reclaim daemon trims, per
  /// cache. Deterministic function of allocator state — the daemon's *noise*
  /// cost is modeled separately by the kreclaimd NoiseComponent.
  static constexpr std::uint64_t kReclaimThresholdMags = 16;

 private:
  SlabCache& cache_for(sim::Bytes obj_bytes);
  void maybe_reclaim(SlabCache& cache);

  mem::PhysMemory* phys_;
  AllocSpec spec_;
  PersonalityParams params_;
  int lanes_;
  std::vector<hw::DomainId> import_order_;  ///< DDR4 domains, id order
  std::unique_ptr<VmemArena> arena_;
  // Sorted by object size; workloads use a handful of size classes.
  std::vector<std::unique_ptr<SlabCache>> caches_;
  std::vector<sim::Bytes> lane_refill_bytes_;
  sim::Bytes refill_bytes_ = 0;
  int import_lane_ = -1;  ///< lane attributed with in-flight import traffic
  std::uint64_t reclaims_ = 0;
  std::uint64_t reclaimed_slabs_ = 0;
};

}  // namespace mkos::alloc
