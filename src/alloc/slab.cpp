#include "alloc/slab.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace mkos::alloc {

namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace

SlabCache::SlabCache(VmemArena* arena, sim::Bytes obj_bytes,
                     sim::Bytes slab_span, SlabCosts costs,
                     MagazinePolicy policy, int cpus)
    : arena_(arena),
      obj_bytes_(obj_bytes),
      slab_span_(slab_span),
      rounds_per_slab_(slab_span / obj_bytes),
      costs_(costs),
      policy_(policy),
      cpus_(static_cast<std::size_t>(cpus)) {
  MKOS_EXPECTS(arena_ != nullptr);
  MKOS_EXPECTS(obj_bytes_ > 0);
  MKOS_EXPECTS(rounds_per_slab_ > 0);
  MKOS_EXPECTS(policy_.min_rounds > 0);
  MKOS_EXPECTS(policy_.max_rounds >= policy_.min_rounds);
  for (auto& c : cpus_) c.mag_rounds = policy_.min_rounds;
}

sim::TimeNs SlabCache::churn(int cpu, std::uint64_t pairs, int active_cpus,
                             double contention_scale,
                             double churn_cost_scale) {
  MKOS_EXPECTS(cpu >= 0 && cpu < static_cast<int>(cpus_.size()));
  if (pairs == 0) return sim::TimeNs{0};
  CpuCache& c = cpus_[static_cast<std::size_t>(cpu)];
  const auto mag = static_cast<std::uint64_t>(c.mag_rounds);

  // Every alloc and every free at least touches the loaded magazine.
  sim::TimeNs cost = costs_.cpu_hit * static_cast<std::int64_t>(2 * pairs);

  // Alloc side: serve from loaded+previous, then the depot, then construct
  // fresh rounds from new slabs carved out of the arena (the refill cascade).
  const std::uint64_t held = c.loaded + c.previous;
  const std::uint64_t from_cache = std::min(pairs, held);
  stats_.magazine_hits += from_cache;
  const std::uint64_t need = pairs - from_cache;
  stats_.magazine_misses += need;

  const std::uint64_t from_depot = std::min(need, depot_rounds_);
  depot_rounds_ -= from_depot;
  const std::uint64_t load_trips = ceil_div(from_depot, mag);
  stats_.depot_loads += load_trips;

  const std::uint64_t constructed = need - from_depot;
  std::uint64_t slabs = 0;
  if (constructed > 0) {
    slabs = ceil_div(constructed, rounds_per_slab_);
    for (std::uint64_t s = 0; s < slabs; ++s) {
      const VmemAlloc a = arena_->alloc(slab_span_);
      cost += a.cost;
      if (!a.ok) break;  // backing exhausted; model keeps going on fumes
      slab_offsets_.push_back(a.offset);
      ++stats_.slab_creates;
    }
    // Rounds in freshly built slabs beyond what this burst consumes sit in
    // the depot for the next miss.
    depot_rounds_ += slabs * rounds_per_slab_ - constructed;
  }

  // Free side: the burst returns every object; the per-CPU layer keeps at
  // most two magazines' worth, the rest unloads to the depot.
  const std::uint64_t total = (held - from_cache) + pairs;
  const std::uint64_t keep = std::min(total, 2 * mag);
  const std::uint64_t to_depot = total - keep;
  const std::uint64_t unload_trips = ceil_div(to_depot, mag);
  stats_.depot_unloads += unload_trips;
  depot_rounds_ += to_depot;
  c.loaded = std::min(keep, mag);
  c.previous = keep - c.loaded;

  // Lock costs scale with concurrency through the personality's contention
  // coefficient — the Linux-vs-LWK differentiator.
  const double cpus_beyond_self =
      active_cpus > 1 ? static_cast<double>(active_cpus - 1) : 0.0;
  const double factor =
      1.0 + costs_.lock_contention * contention_scale * cpus_beyond_self;
  const sim::TimeNs depot_cost =
      (costs_.depot_lock * static_cast<std::int64_t>(load_trips + unload_trips))
          .scaled(factor);
  const sim::TimeNs zone_cost =
      (costs_.zone_lock * static_cast<std::int64_t>(slabs)).scaled(factor);
  stats_.depot_lock_ns += static_cast<std::uint64_t>(depot_cost.ns());
  stats_.zone_lock_ns += static_cast<std::uint64_t>(zone_cost.ns());
  cost += depot_cost + zone_cost;

  // Magazine resize: grow under depot pressure, shrink after a quiet streak.
  const std::uint64_t trips = load_trips + unload_trips;
  if (trips > static_cast<std::uint64_t>(policy_.grow_trip_threshold) &&
      c.mag_rounds < policy_.max_rounds) {
    c.mag_rounds = std::min(c.mag_rounds * 2, policy_.max_rounds);
    c.quiet_bursts = 0;
    ++stats_.resizes_up;
  } else if (trips == 0) {
    ++c.quiet_bursts;
    if (c.quiet_bursts >= policy_.shrink_quiet_bursts &&
        c.mag_rounds > policy_.min_rounds) {
      c.mag_rounds = std::max(c.mag_rounds / 2, policy_.min_rounds);
      c.quiet_bursts = 0;
      ++stats_.resizes_down;
      // Shrunk magazines may no longer hold what the CPU cached; spill the
      // overflow to the depot (uncharged: piggybacks on the next trip).
      const auto cap = static_cast<std::uint64_t>(2 * c.mag_rounds);
      const std::uint64_t cached = c.loaded + c.previous;
      if (cached > cap) {
        depot_rounds_ += cached - cap;
        c.loaded = std::min(cap, static_cast<std::uint64_t>(c.mag_rounds));
        c.previous = cap - c.loaded;
      }
    }
  } else {
    c.quiet_bursts = 0;
  }

  return cost.scaled(churn_cost_scale);
}

void SlabCache::drain(int cpu) {
  MKOS_EXPECTS(cpu >= 0 && cpu < static_cast<int>(cpus_.size()));
  CpuCache& c = cpus_[static_cast<std::size_t>(cpu)];
  const std::uint64_t cached = c.loaded + c.previous;
  if (cached > 0) {
    stats_.depot_unloads +=
        ceil_div(cached, static_cast<std::uint64_t>(c.mag_rounds));
    depot_rounds_ += cached;
    c.loaded = 0;
    c.previous = 0;
  }
  c.quiet_bursts = 0;
}

SlabCache::ReclaimResult SlabCache::reclaim(std::uint64_t target_rounds) {
  ReclaimResult out;
  out.trimmed_rounds = std::min(depot_rounds_, target_rounds);
  depot_rounds_ -= out.trimmed_rounds;
  std::uint64_t freeable = out.trimmed_rounds / rounds_per_slab_;
  while (freeable > 0 && !slab_offsets_.empty()) {
    arena_->free(slab_offsets_.back(), slab_span_);
    slab_offsets_.pop_back();
    ++stats_.slab_frees;
    ++out.freed_slabs;
    --freeable;
  }
  return out;
}

int SlabCache::magazine_rounds(int cpu) const {
  MKOS_EXPECTS(cpu >= 0 && cpu < static_cast<int>(cpus_.size()));
  return cpus_[static_cast<std::size_t>(cpu)].mag_rounds;
}

std::uint64_t SlabCache::cached_rounds(int cpu) const {
  MKOS_EXPECTS(cpu >= 0 && cpu < static_cast<int>(cpus_.size()));
  const CpuCache& c = cpus_[static_cast<std::size_t>(cpu)];
  return c.loaded + c.previous;
}

}  // namespace mkos::alloc
