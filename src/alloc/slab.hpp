#pragma once
// SlabCache — object cache with per-CPU magazine depots, after Bonwick &
// Adams ("Magazines and Vmem", USENIX ATC 2001; the SCAL-UX/Keyronex
// rendition in SNIPPETS.md). Each CPU holds a loaded and a previous
// magazine of pre-constructed objects; the shared depot holds full
// magazines behind a lock; empty depots cascade to slab construction from
// a backing VmemArena behind the zone lock.
//
// Like VmemArena, this is a cost model over simulated handles: `churn`
// charges a lane the modeled CPU time of an alloc/free burst and moves
// rounds between the per-CPU layer, the depot, and the arena. Depot and
// zone lock costs scale with the number of concurrently churning CPUs via
// a per-personality contention coefficient — the axis that separates
// Linux's fine-grained-but-contended zone locks from the LWKs'
// near-contention-free large-quantum paths.

#include <cstdint>
#include <vector>

#include "alloc/vmem.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"

namespace mkos::alloc {

/// Magazine resize policy: magazines double under depot pressure (many
/// depot trips in one burst) and halve after a sustained quiet streak.
struct MagazinePolicy {
  int min_rounds = 8;
  int max_rounds = 128;
  /// More than this many depot trips in one churn burst → grow.
  int grow_trip_threshold = 4;
  /// This many consecutive zero-depot-trip bursts → shrink.
  int shrink_quiet_bursts = 8;
};

/// Modeled CPU costs of the cache's layers, per kernel personality.
struct SlabCosts {
  sim::TimeNs cpu_hit{0};     ///< per alloc/free served from the loaded magazine
  sim::TimeNs depot_lock{0};  ///< per depot round-trip (magazine load/unload)
  sim::TimeNs zone_lock{0};   ///< per slab construction/destruction
  /// Per-extra-CPU multiplier on lock costs:
  /// factor = 1 + lock_contention * contention_scale * (active_cpus - 1).
  double lock_contention = 0.0;
};

class SlabCache {
 public:
  struct Stats {
    std::uint64_t magazine_hits = 0;    ///< rounds served per-CPU, no lock
    std::uint64_t magazine_misses = 0;  ///< rounds that had to leave the CPU
    std::uint64_t depot_loads = 0;      ///< magazines fetched from the depot
    std::uint64_t depot_unloads = 0;    ///< magazines returned to the depot
    std::uint64_t depot_lock_ns = 0;    ///< modeled ns under the depot lock
    std::uint64_t zone_lock_ns = 0;     ///< modeled ns under the zone lock
    std::uint64_t slab_creates = 0;
    std::uint64_t slab_frees = 0;
    std::uint64_t resizes_up = 0;
    std::uint64_t resizes_down = 0;
  };

  struct ReclaimResult {
    std::uint64_t trimmed_rounds = 0;
    std::uint64_t freed_slabs = 0;
  };

  /// `arena` must outlive the cache. `slab_span` is the bytes carved from
  /// the arena per slab; `obj_bytes` the object size this cache serves.
  SlabCache(VmemArena* arena, sim::Bytes obj_bytes, sim::Bytes slab_span,
            SlabCosts costs, MagazinePolicy policy, int cpus);

  /// Charge `cpu` for a burst of `pairs` alloc+free pairs while
  /// `active_cpus` lanes churn concurrently (drives the contention factor).
  /// `contention_scale` and `churn_cost_scale` come from the AllocSpec.
  [[nodiscard]] sim::TimeNs churn(int cpu, std::uint64_t pairs,
                                  int active_cpus, double contention_scale,
                                  double churn_cost_scale);

  /// Return the CPU's loaded+previous rounds to the depot (lane teardown).
  void drain(int cpu);

  /// Trim up to `target_rounds` out of the depot, freeing whole slabs back
  /// to the arena where possible (Linux reclaim daemon).
  ReclaimResult reclaim(std::uint64_t target_rounds);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] sim::Bytes obj_bytes() const { return obj_bytes_; }
  [[nodiscard]] std::uint64_t depot_rounds() const { return depot_rounds_; }
  [[nodiscard]] int magazine_rounds(int cpu) const;
  [[nodiscard]] std::uint64_t cached_rounds(int cpu) const;

 private:
  struct CpuCache {
    std::uint64_t loaded = 0;    ///< rounds in the loaded magazine
    std::uint64_t previous = 0;  ///< rounds in the previous magazine
    int mag_rounds = 0;          ///< current magazine size for this CPU
    int quiet_bursts = 0;        ///< consecutive bursts without depot traffic
  };

  VmemArena* arena_;
  sim::Bytes obj_bytes_;
  sim::Bytes slab_span_;
  std::uint64_t rounds_per_slab_;
  SlabCosts costs_;
  MagazinePolicy policy_;

  std::vector<CpuCache> cpus_;
  std::uint64_t depot_rounds_ = 0;
  std::vector<sim::Bytes> slab_offsets_;  ///< arena offsets of live slabs
  Stats stats_;
};

}  // namespace mkos::alloc
