#pragma once
// mkos::alloc — declarative configuration of the kernel-allocator model.
//
// The spec is inert by default: `AllocSpec{}` must leave every simulation
// bit-identical to a build without the subsystem. SystemConfig folds the
// fingerprint in only when enabled(), mirroring fault::Spec, so pre-existing
// campaign cache keys, cell-store entries and ledger digests all survive the
// subsystem being compiled in.

#include <bit>
#include <cstdint>

namespace mkos::alloc {

/// Knobs of the VMem + per-CPU-magazine allocator model (DESIGN.md §17).
/// Per-kernel personality parameters (quantum sizes, lock costs, contention
/// coefficients) live in model.cpp; the spec scales them.
struct AllocSpec {
  /// Master switch. Off (the default): allocation stays free, exactly as
  /// before the subsystem existed — no model is built, no counters emitted.
  bool model_allocator = false;

  /// Multiplies each personality's depot/zone lock-contention coefficient
  /// (0 = perfectly scalable locks, 1 = calibrated default).
  double contention_scale = 1.0;

  /// Multiplies the whole per-churn cost a lane is charged (sensitivity
  /// sweeps; 1 = calibrated default).
  double churn_cost_scale = 1.0;

  /// Global ceiling on the per-CPU magazine size (rounds). The resize policy
  /// doubles magazines under depot pressure up to this cap.
  int magazine_cap = 128;

  /// Linux personality only: a kswapd-style reclaim daemon trims full
  /// magazines out of the depot (forcing repeated slab reconstruction under
  /// the zone lock) and contributes a `kreclaimd` noise component at
  /// `reclaim_rate_hz` on the application cores.
  bool linux_reclaim_daemon = true;
  double reclaim_rate_hz = 3.0;

  /// True when the spec can change observable behavior.
  [[nodiscard]] bool enabled() const { return model_allocator; }

  /// Stable content hash over every knob. Folded into
  /// core::SystemConfig::fingerprint() — but only when enabled(), so inert
  /// configs keep their pre-subsystem cache keys.
  [[nodiscard]] std::uint64_t fingerprint() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (byte * 8)) & 0xffULL;
        h *= 0x100000001b3ULL;
      }
    };
    mix(static_cast<std::uint64_t>(model_allocator));
    mix(std::bit_cast<std::uint64_t>(contention_scale));
    mix(std::bit_cast<std::uint64_t>(churn_cost_scale));
    mix(static_cast<std::uint64_t>(magazine_cap));
    mix(static_cast<std::uint64_t>(linux_reclaim_daemon));
    mix(std::bit_cast<std::uint64_t>(reclaim_rate_hz));
    return h;
  }
};

}  // namespace mkos::alloc
