#include "alloc/vmem.hpp"

#include <algorithm>
#include <utility>

#include "sim/contracts.hpp"

namespace mkos::alloc {

VmemArena::VmemArena(std::string name, sim::Bytes quantum,
                     sim::Bytes import_quantum, ImportFn import,
                     sim::TimeNs segment_op_cost, sim::TimeNs import_cost)
    : name_(std::move(name)),
      quantum_(quantum),
      import_quantum_(import_quantum),
      import_(std::move(import)),
      segment_op_cost_(segment_op_cost),
      import_cost_(import_cost) {
  MKOS_EXPECTS(quantum_ > 0);
  MKOS_EXPECTS(import_quantum_ >= quantum_);
}

VmemAlloc VmemArena::alloc(sim::Bytes bytes) {
  MKOS_EXPECTS(bytes > 0);
  const sim::Bytes size = sim::align_up(bytes, quantum_);
  VmemAlloc out;

  // Quantum-cache front end: constant-time pop, no segment-list traffic.
  const sim::Bytes quanta = size / quantum_;
  const bool cacheable = quanta >= 1 && quanta <= kQuantumCacheClasses;
  if (cacheable) {
    auto& cache = quantum_caches_[quanta - 1];
    if (!cache.empty()) {
      out.ok = true;
      out.offset = cache.back();
      cache.pop_back();
      out.cost = segment_op_cost_;  // cache hit: one cheap op, no list walk
      ++stats_.allocs;
      ++stats_.qcache_hits;
      return out;
    }
  }

  // Segment path: first-fit over the sorted free list, importing on demand.
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (std::size_t i = 0; i < free_segments_.size(); ++i) {
      Segment& seg = free_segments_[i];
      if (seg.length < size) continue;
      out.ok = true;
      out.offset = seg.offset;
      out.cost = out.cost + segment_op_cost_;
      if (seg.length == size) {
        free_segments_.erase(free_segments_.begin() +
                             static_cast<std::ptrdiff_t>(i));
      } else {
        seg.offset += size;
        seg.length -= size;
      }
      ++stats_.allocs;
      return out;
    }
    if (attempt == 0) {
      out.cost = out.cost + import_cost_;
      if (!import_more(size)) {
        ++stats_.import_fails;
        return out;  // ok == false: arena and source both exhausted
      }
    }
  }
  return out;
}

sim::TimeNs VmemArena::free(sim::Bytes offset, sim::Bytes bytes) {
  MKOS_EXPECTS(bytes > 0);
  const sim::Bytes size = sim::align_up(bytes, quantum_);
  MKOS_EXPECTS(offset + size <= span_end_);
  ++stats_.frees;

  const sim::Bytes quanta = size / quantum_;
  if (quanta >= 1 && quanta <= kQuantumCacheClasses) {
    quantum_caches_[quanta - 1].push_back(offset);
    return segment_op_cost_;
  }
  insert_free(offset, size);
  return segment_op_cost_;
}

bool VmemArena::import_more(sim::Bytes want) {
  const sim::Bytes ask =
      sim::align_up(std::max(want, import_quantum_), import_quantum_);
  if (!import_) return false;
  const sim::Bytes granted = import_(ask);
  if (granted < want) {
    // A short grant can't satisfy the triggering request; don't grow the
    // span with an unusable stub (keeps exhaustion behavior crisp).
    return false;
  }
  ++stats_.imports;
  stats_.import_bytes += granted;
  insert_free(span_end_, granted);
  span_end_ += granted;
  return true;
}

void VmemArena::insert_free(sim::Bytes offset, sim::Bytes length) {
  // Sorted insert + bidirectional coalescing.
  auto it = std::lower_bound(
      free_segments_.begin(), free_segments_.end(), offset,
      [](const Segment& s, sim::Bytes off) { return s.offset < off; });
  const std::size_t idx =
      static_cast<std::size_t>(it - free_segments_.begin());

  // Merge with predecessor?
  if (idx > 0) {
    Segment& prev = free_segments_[idx - 1];
    MKOS_ASSERT(prev.offset + prev.length <= offset);
    if (prev.offset + prev.length == offset) {
      prev.length += length;
      // Merge predecessor with successor too?
      if (idx < free_segments_.size()) {
        Segment& next = free_segments_[idx];
        if (prev.offset + prev.length == next.offset) {
          prev.length += next.length;
          free_segments_.erase(free_segments_.begin() +
                               static_cast<std::ptrdiff_t>(idx));
        }
      }
      return;
    }
  }
  // Merge with successor?
  if (idx < free_segments_.size()) {
    Segment& next = free_segments_[idx];
    MKOS_ASSERT(offset + length <= next.offset);
    if (offset + length == next.offset) {
      next.offset = offset;
      next.length += length;
      return;
    }
  }
  free_segments_.insert(it, Segment{offset, length});
}

}  // namespace mkos::alloc
