#pragma once
// VmemArena — an interval allocator in the style of Bonwick & Adams' vmem:
// a sorted, coalescing free-segment list over an abstract [0, span) offset
// space, with power-of-two quantum caches in front of the segment path and
// an import callback that grows the span from a backing source (here:
// `mem::DomainAllocator` best-effort carving) when the arena runs dry.
//
// The arena does not hand out real memory — offsets are simulation handles.
// What it models is the *cost structure*: quantum-cache hits are cheap,
// segment-list operations cost `segment_op_cost`, and imports cost
// `import_cost` plus whatever the backing layer charges.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "sim/units.hpp"

namespace mkos::alloc {

/// Result of a VmemArena::alloc call.
struct VmemAlloc {
  bool ok = false;        ///< false when the arena and its source are exhausted
  sim::Bytes offset = 0;  ///< handle into the arena's offset space
  sim::TimeNs cost{0};    ///< modeled CPU time spent in the allocator
};

/// Counters kept by the arena; snapshotted into the `alloc.*` ledger group.
struct VmemStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t qcache_hits = 0;
  std::uint64_t imports = 0;
  std::uint64_t import_fails = 0;
  sim::Bytes import_bytes = 0;
};

class VmemArena {
 public:
  /// Import callback: asked for at least `want` bytes, returns the number of
  /// bytes actually granted (0 on exhaustion). The granted span is appended
  /// to the end of the arena's offset space.
  using ImportFn = std::function<sim::Bytes(sim::Bytes want)>;

  /// `quantum` — allocation granularity (requests round up to it).
  /// `import_quantum` — granularity of span growth from the source.
  /// `segment_op_cost` / `import_cost` — modeled CPU time per segment-list
  /// operation and per import round-trip respectively.
  VmemArena(std::string name, sim::Bytes quantum, sim::Bytes import_quantum,
            ImportFn import, sim::TimeNs segment_op_cost,
            sim::TimeNs import_cost);

  VmemArena(const VmemArena&) = delete;
  VmemArena& operator=(const VmemArena&) = delete;

  /// Allocate `bytes` (rounded up to the quantum). Small requests (up to
  /// `kQuantumCacheClasses` quanta) are served from per-size-class offset
  /// stacks when possible; otherwise first-fit over the segment list, with
  /// an import from the source on exhaustion.
  [[nodiscard]] VmemAlloc alloc(sim::Bytes bytes);

  /// Return a previously allocated range; coalesces with neighbors.
  /// Returns the modeled CPU cost of the free.
  sim::TimeNs free(sim::Bytes offset, sim::Bytes bytes);

  [[nodiscard]] const VmemStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Bytes quantum() const { return quantum_; }
  [[nodiscard]] sim::Bytes span_bytes() const { return span_end_; }

  /// Number of discrete free segments (tests assert coalescing behavior).
  [[nodiscard]] std::size_t free_segment_count() const {
    return free_segments_.size();
  }

  /// Sizes up to this many quanta are fronted by quantum caches.
  static constexpr int kQuantumCacheClasses = 4;

 private:
  struct Segment {
    sim::Bytes offset = 0;
    sim::Bytes length = 0;
  };

  bool import_more(sim::Bytes want);
  void insert_free(sim::Bytes offset, sim::Bytes length);

  std::string name_;
  sim::Bytes quantum_;
  sim::Bytes import_quantum_;
  ImportFn import_;
  sim::TimeNs segment_op_cost_;
  sim::TimeNs import_cost_;

  sim::Bytes span_end_ = 0;             ///< arena offset space is [0, span_end_)
  std::vector<Segment> free_segments_;  ///< sorted by offset, fully coalesced
  /// quantum_caches_[k] holds free offsets of size (k+1)*quantum.
  std::vector<sim::Bytes> quantum_caches_[kQuantumCacheClasses];
  VmemStats stats_;
};

}  // namespace mkos::alloc
