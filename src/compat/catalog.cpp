// The standard LTP-style catalog: 3,328 cases.
//
// Family sizes follow the real LTP syscall test layout where the paper
// gives numbers (5 ptrace cases, 11 move_pages combinations, clone's one
// esoteric flag test, the fork()-setup dependency of wait/kill/pipe/dup2/
// exec families); the long tail of LTP areas that exercise no kernel
// boundary we model differently (fs stress, ipc, containers) is represented
// by generic always-portable cases so the suite totals match the paper's
// 3,328. The per-kernel failure counts are *computed* from dispositions,
// capabilities and functional probes — see DESIGN.md Section 2.

#include <algorithm>
#include <array>

#include "compat/ltp.hpp"
#include "sim/contracts.hpp"

namespace mkos::compat {

namespace {

using kernel::Capability;
using kernel::Sys;

class Builder {
 public:
  /// `n` plain cases: pass unless the syscall is entirely unsupported.
  void basic(Sys s, int n) { emit(s, n, false, std::nullopt, FunctionalCheck::kNone); }
  /// `n` cases that need `cap` (flag combinations, edge semantics).
  void cap(Sys s, int n, Capability c) { emit(s, n, false, c, FunctionalCheck::kNone); }
  /// `n` cases whose LTP setup fork()s before testing `s`.
  void forked(Sys s, int n) { emit(s, n, true, std::nullopt, FunctionalCheck::kNone); }
  /// One behavioural probe executed against the kernel.
  void functional(Sys s, FunctionalCheck f) { emit(s, 1, false, std::nullopt, f); }

  /// Pad with always-portable cases up to `total`.
  std::vector<TestCase> finish(int total) {
    MKOS_EXPECTS(static_cast<int>(cases_.size()) <= total);
    int i = 0;
    while (static_cast<int>(cases_.size()) < total) {
      TestCase t;
      t.name = "ltp_generic" + pad4(i++);
      t.sys = Sys::kUname;
      cases_.push_back(std::move(t));
    }
    return std::move(cases_);
  }

 private:
  void emit(Sys s, int n, bool forked_setup, std::optional<Capability> c,
            FunctionalCheck f) {
    MKOS_EXPECTS(n >= 1);
    int& k = serial_[static_cast<std::size_t>(s)];
    for (int i = 0; i < n; ++i) {
      TestCase t;
      t.name = std::string(kernel::sys_name(s)) + pad2(++k);
      t.sys = s;
      t.fork_setup = forked_setup;
      t.requires_capability = c;
      t.functional = f;
      cases_.push_back(std::move(t));
    }
  }

  static std::string pad2(int v) {
    std::string s = std::to_string(v);
    if (s.size() < 2) s.insert(0, 1, '0');
    return s;
  }
  static std::string pad4(int v) {
    std::string s = std::to_string(v);
    return std::string(4 - std::min<std::size_t>(4, s.size()), '0') + s;
  }

  std::vector<TestCase> cases_;
  std::array<int, kernel::kSysCount> serial_{};
};

}  // namespace

LtpSuite LtpSuite::standard() {
  Builder b;

  // ----------------------------------------------------------- memory
  b.basic(Sys::kBrk, 2);
  b.functional(Sys::kBrk, FunctionalCheck::kBrkGrowQuery);
  // "Because mOS does not return memory to the system when the heap
  // shrinks, tests that expect a page fault fail." (both LWKs' HPC brk)
  b.functional(Sys::kBrk, FunctionalCheck::kBrkShrinkReleases);
  b.functional(Sys::kBrk, FunctionalCheck::kBrkShrinkRefaults);
  b.basic(Sys::kMmap, 16);
  b.functional(Sys::kMmap, FunctionalCheck::kMmapUnmap);
  b.basic(Sys::kMunmap, 3);
  b.basic(Sys::kMprotect, 5);
  b.basic(Sys::kMremap, 2);
  b.cap(Sys::kMremap, 3, Capability::kMremapFull);
  b.basic(Sys::kMadvise, 11);
  b.basic(Sys::kSetMempolicy, 3);
  b.functional(Sys::kSetMempolicy, FunctionalCheck::kMempolicyPreferred);
  b.basic(Sys::kGetMempolicy, 2);
  b.basic(Sys::kMbind, 13);
  // "Eleven of the 32 failing experiments attempt to test various
  // combinations of the move_pages() system call, which is work in progress."
  b.basic(Sys::kMovePages, 1);
  b.cap(Sys::kMovePages, 11, Capability::kMovePages);
  b.cap(Sys::kMigratePages, 2, Capability::kMigratePages);
  b.basic(Sys::kMlock, 4);
  b.basic(Sys::kMunlock, 2);
  b.basic(Sys::kShmget, 5);
  b.basic(Sys::kShmat, 3);
  b.basic(Sys::kShmdt, 2);

  // ----------------------------------------------------------- process
  b.basic(Sys::kClone, 8);
  // "tests the error behavior of an unusual clone() flag combination,
  // which actual applications never seem to use."
  b.cap(Sys::kClone, 1, Capability::kCloneEsotericFlags);
  b.cap(Sys::kFork, 6, Capability::kForkFull);
  b.basic(Sys::kVfork, 2);
  b.forked(Sys::kExecve, 15);
  b.forked(Sys::kWait4, 12);
  b.forked(Sys::kWaitid, 6);
  b.basic(Sys::kExit, 2);
  b.basic(Sys::kExitGroup, 1);
  b.basic(Sys::kGetpid, 3);
  b.basic(Sys::kGettid, 2);
  b.forked(Sys::kGetppid, 4);
  b.forked(Sys::kKill, 12);
  b.basic(Sys::kTkill, 2);
  b.basic(Sys::kTgkill, 3);
  b.forked(Sys::kRtSigaction, 8);
  b.basic(Sys::kRtSigprocmask, 8);
  b.basic(Sys::kSigaltstack, 2);
  b.basic(Sys::kSchedYield, 2);
  b.basic(Sys::kSchedSetaffinity, 2);
  b.basic(Sys::kSchedGetaffinity, 2);
  b.basic(Sys::kSchedSetscheduler, 17);
  b.basic(Sys::kSchedGetscheduler, 3);
  b.basic(Sys::kSetpriority, 5);
  b.basic(Sys::kGetpriority, 2);
  // "ptrace() is working in mOS. However, four of the five ptrace()
  // experiments fail." (McKernel's proxy split has the same four.)
  b.cap(Sys::kPtrace, 1, Capability::kPtraceBasic);
  b.cap(Sys::kPtrace, 4, Capability::kPtraceFull);
  b.basic(Sys::kPrctl, 2);
  b.cap(Sys::kPrctl, 2, Capability::kProcSelfComplete);
  b.basic(Sys::kArchPrctl, 1);
  b.basic(Sys::kSetTidAddress, 1);
  b.basic(Sys::kFutex, 9);
  b.basic(Sys::kGetrlimit, 4);
  b.basic(Sys::kSetrlimit, 3);
  b.basic(Sys::kGetrusage, 4);
  b.basic(Sys::kTimes, 1);

  // ----------------------------------------------------------- files
  b.basic(Sys::kOpen, 17);
  b.functional(Sys::kOpen, FunctionalCheck::kOpenProcSelfMaps);
  b.functional(Sys::kOpen, FunctionalCheck::kOpenProcSelfEnviron);
  b.basic(Sys::kOpenat, 3);
  b.basic(Sys::kClose, 2);
  b.basic(Sys::kRead, 4);
  b.basic(Sys::kWrite, 5);
  b.basic(Sys::kPread64, 2);
  b.basic(Sys::kPwrite64, 2);
  b.basic(Sys::kReadv, 3);
  b.basic(Sys::kWritev, 3);
  b.basic(Sys::kLseek, 5);
  b.basic(Sys::kStat, 3);
  b.basic(Sys::kFstat, 2);
  b.basic(Sys::kLstat, 2);
  b.basic(Sys::kAccess, 4);
  b.basic(Sys::kDup, 7);
  b.forked(Sys::kDup2, 9);
  b.forked(Sys::kPipe, 14);
  b.basic(Sys::kFcntl, 30);
  b.basic(Sys::kIoctl, 9);
  b.basic(Sys::kMknod, 9);
  b.basic(Sys::kUnlink, 8);
  b.basic(Sys::kRename, 14);
  b.basic(Sys::kMkdir, 9);
  b.basic(Sys::kRmdir, 15);
  b.basic(Sys::kGetdents, 2);
  b.basic(Sys::kChdir, 4);
  b.basic(Sys::kGetcwd, 4);
  b.basic(Sys::kReadlink, 4);
  b.basic(Sys::kChmod, 9);
  b.basic(Sys::kChown, 5);
  b.basic(Sys::kUmask, 3);
  b.basic(Sys::kTruncate, 4);
  b.basic(Sys::kFtruncate, 4);
  b.basic(Sys::kFsync, 3);
  b.basic(Sys::kStatfs, 3);

  // ----------------------------------------------------------- network
  b.basic(Sys::kSocket, 2);
  b.basic(Sys::kConnect, 1);
  b.basic(Sys::kAccept, 2);
  b.basic(Sys::kBind, 6);
  b.basic(Sys::kListen, 1);
  b.basic(Sys::kSendto, 3);
  b.basic(Sys::kRecvfrom, 1);
  b.basic(Sys::kSendmsg, 3);
  b.basic(Sys::kRecvmsg, 3);
  b.basic(Sys::kShutdown, 2);
  b.basic(Sys::kGetsockname, 1);
  b.basic(Sys::kGetsockopt, 2);
  b.basic(Sys::kSetsockopt, 2);
  b.basic(Sys::kPoll, 2);
  b.basic(Sys::kSelect, 4);
  b.basic(Sys::kEpollCreate, 3);
  b.basic(Sys::kEpollCtl, 3);
  b.basic(Sys::kEpollWait, 2);

  // ----------------------------------------------------------- time/misc
  b.basic(Sys::kGettimeofday, 2);
  b.basic(Sys::kClockGettime, 3);
  b.basic(Sys::kClockNanosleep, 3);
  b.basic(Sys::kNanosleep, 4);
  b.basic(Sys::kAlarm, 7);
  // "others are simply missing implementation" — POSIX interval timers.
  b.cap(Sys::kTimerCreate, 3, Capability::kTimersFull);
  b.cap(Sys::kTimerSettime, 3, Capability::kTimersFull);
  b.basic(Sys::kGetitimer, 3);
  b.basic(Sys::kSetitimer, 3);
  b.basic(Sys::kUname, 3);
  b.basic(Sys::kSysinfo, 3);
  b.basic(Sys::kGetuid, 1);
  b.basic(Sys::kGetgid, 1);
  b.basic(Sys::kGeteuid, 1);
  b.basic(Sys::kGetegid, 1);
  b.basic(Sys::kSetuid, 4);
  b.basic(Sys::kSetgid, 3);
  b.basic(Sys::kCapget, 2);
  b.basic(Sys::kCapset, 7);
  b.basic(Sys::kPerfEventOpen, 2);

  return LtpSuite{b.finish(3328)};
}

}  // namespace mkos::compat
