#include "compat/ltp.hpp"

#include "mem/heap.hpp"
#include "sim/contracts.hpp"

namespace mkos::compat {

namespace {
/// Physically backed heap bytes, independent of the engine in use.
sim::Bytes heap_backed(const kernel::Process& p) {
  if (const auto* lwk = dynamic_cast<const mem::LwkHeap*>(p.heap())) return lwk->backed();
  if (const auto* lin = dynamic_cast<const mem::LinuxHeap*>(p.heap())) return lin->backed();
  return 0;
}
}  // namespace

LtpSuite::LtpSuite(std::vector<TestCase> cases) : cases_(std::move(cases)) {}

bool LtpSuite::run_functional(FunctionalCheck f, kernel::Kernel& k, kernel::Process& p) {
  using kernel::kOk;
  switch (f) {
    case FunctionalCheck::kNone:
      return true;
    case FunctionalCheck::kBrkGrowQuery: {
      const auto g = k.sys_brk(p, 1 << 20);
      (void)k.heap_touch(p, 1);
      const auto q = k.sys_brk(p, 0);
      return g.err == kOk && q.err == kOk && p.heap()->stats().current >= (1u << 20);
    }
    case FunctionalCheck::kBrkShrinkReleases: {
      (void)k.sys_brk(p, 8 << 20);
      (void)k.heap_touch(p, 1);
      const sim::Bytes before = heap_backed(p);
      (void)k.sys_brk(p, -(8 << 20));
      return heap_backed(p) < before;  // Linux frees; HPC brk() keeps the pages
    }
    case FunctionalCheck::kBrkShrinkRefaults: {
      (void)k.sys_brk(p, 4 << 20);
      (void)k.heap_touch(p, 1);
      (void)k.sys_brk(p, -(4 << 20));
      (void)k.sys_brk(p, 4 << 20);
      const std::uint64_t faults_before = p.heap()->stats().faults;
      (void)k.heap_touch(p, 1);
      // The LTP case expects a page fault (SIGSEGV probe) on the re-grown
      // region; an HPC heap that never released it faults zero times.
      return p.heap()->stats().faults > faults_before;
    }
    case FunctionalCheck::kMmapUnmap: {
      auto m = k.sys_mmap(p, 1 << 20, mem::VmaKind::kAnon, mem::MemPolicy::standard());
      if (m.err != kOk || m.vma == nullptr) return false;
      return k.sys_munmap(p, m.vma->start).err == kOk;
    }
    case FunctionalCheck::kMempolicyPreferred: {
      const auto mcdram = k.topo().domains_of_kind(hw::MemKind::kMcdram);
      if (mcdram.empty()) return false;
      return k.sys_set_mempolicy(p, mem::MemPolicy::preferred(mcdram[0])).err == kOk;
    }
    case FunctionalCheck::kOpenProcSelfMaps:
      return k.sys_open(p, "/proc/self/maps").err == kOk;
    case FunctionalCheck::kOpenProcSelfEnviron:
      return k.sys_open(p, "/proc/self/environ").err == kOk;
  }
  return false;
}

bool LtpSuite::passes(const TestCase& t, kernel::Kernel& k) {
  // "Many of the LTP tests rely on fork() to set up the experiment. In mOS,
  // fork() is not fully implemented yet which results in many failures
  // before the tests of the targeted system calls even begin."
  if (t.fork_setup && !k.capable(kernel::Capability::kForkFull)) return false;
  if (k.disposition(t.sys) == kernel::Disposition::kUnsupported) return false;
  if (t.requires_capability.has_value() && !k.capable(*t.requires_capability)) return false;
  if (t.functional != FunctionalCheck::kNone) {
    kernel::Process& p = k.create_process(0);
    return run_functional(t.functional, k, p);
  }
  return true;
}

Report LtpSuite::run(kernel::Kernel& k) const {
  Report r;
  r.total = size();
  for (const auto& t : cases_) {
    if (passes(t, k)) {
      ++r.passed;
    } else {
      ++r.failed;
      ++r.failures_by_family[std::string(kernel::sys_name(t.sys))];
      r.failed_tests.push_back(t.name);
    }
  }
  MKOS_ENSURES(r.passed + r.failed == r.total);
  return r;
}

}  // namespace mkos::compat
