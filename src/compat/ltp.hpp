#pragma once
// LTP-style compatibility suite (paper Section III-D).
//
// "Measuring compatibility is not simple. At first glance, the Linux Test
// Project suite of tests would seem a good starting point." The paper runs
// the 3,328 system-call tests of LTP: McKernel fails 32 (11 of them
// move_pages() variants, plus esoteric clone() flags and missing
// implementations), mOS fails 111 (fork() is not fully implemented yet and
// many LTP tests rely on fork() for setup; 4 of the 5 ptrace() tests fail;
// HPC brk() breaks the tests that expect shrunk heap pages to fault).
//
// Each TestCase declares *why* it would fail on a restricted kernel:
// a fork()-based setup, a required capability, an unsupported disposition,
// or a functional behaviour check executed against the kernel's real
// syscall layer. Verdicts are computed, not tabulated.

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"

namespace mkos::compat {

enum class FunctionalCheck : std::uint8_t {
  kNone,
  kBrkShrinkReleases,    ///< grow, touch, shrink; expect the pages released
  kBrkShrinkRefaults,    ///< ... and re-growth to fault again
  kBrkGrowQuery,         ///< grow + sbrk(0) bookkeeping
  kMmapUnmap,            ///< map/unmap round trip
  kMempolicyPreferred,   ///< single-domain preferred accepted
  kOpenProcSelfMaps,     ///< /proc/self/maps readable
  kOpenProcSelfEnviron,  ///< /proc/self/environ readable
};

struct TestCase {
  std::string name;                 ///< LTP-style, e.g. "move_pages04"
  kernel::Sys sys;                  ///< syscall under test
  bool fork_setup = false;          ///< the LTP case fork()s to set up
  std::optional<kernel::Capability> requires_capability;
  FunctionalCheck functional = FunctionalCheck::kNone;
};

struct Report {
  int total = 0;
  int passed = 0;
  int failed = 0;
  std::map<std::string, int> failures_by_family;  ///< syscall name -> count
  std::vector<std::string> failed_tests;

  [[nodiscard]] double pass_rate() const {
    return total == 0 ? 0.0 : static_cast<double>(passed) / total;
  }
};

class LtpSuite {
 public:
  explicit LtpSuite(std::vector<TestCase> cases);

  /// The standard 3,328-test catalog (see catalog.cpp).
  [[nodiscard]] static LtpSuite standard();

  [[nodiscard]] const std::vector<TestCase>& cases() const { return cases_; }
  [[nodiscard]] int size() const { return static_cast<int>(cases_.size()); }

  /// Run every case against the kernel (each case gets a fresh process).
  [[nodiscard]] Report run(kernel::Kernel& k) const;

  /// Verdict for a single case.
  [[nodiscard]] static bool passes(const TestCase& t, kernel::Kernel& k);

 private:
  static bool run_functional(FunctionalCheck f, kernel::Kernel& k, kernel::Process& p);

  std::vector<TestCase> cases_;
};

}  // namespace mkos::compat
