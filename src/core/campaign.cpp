#include "core/campaign.hpp"

#include <chrono>

#include "core/report.hpp"
#include "sim/contracts.hpp"

namespace mkos::core {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   since)
      .count();
}

}  // namespace

std::optional<RunStats> CellCache::lookup(std::uint64_t key, const CellKey& id,
                                          bool* from_disk) {
  if (from_disk != nullptr) *from_disk = false;
  {
    const sim::MutexLock lock(mu_);
    const auto it = cells_.find(key);
    if (it != cells_.end()) {
      if (it->second.id == id) {
        ++hits_;
        return it->second.stats;
      }
      // Hash collision: the slot holds a different cell. Do not serve it —
      // fall through to the disk tier (which verifies the stored key
      // itself) and, failing that, report a miss so the caller recomputes.
      ++collisions_;
    }
  }
  if (store_ != nullptr) {
    if (auto loaded = store_->load(key, id)) {
      {
        const sim::MutexLock lock(mu_);
        cells_.insert_or_assign(key, Entry{id, *loaded});
        ++hits_;
      }
      if (from_disk != nullptr) *from_disk = true;
      return loaded;
    }
  }
  const sim::MutexLock lock(mu_);
  ++misses_;
  return std::nullopt;
}

void CellCache::store(std::uint64_t key, const CellKey& id, const RunStats& stats) {
  {
    const sim::MutexLock lock(mu_);
    cells_.insert_or_assign(key, Entry{id, stats});
  }
  // Disk write-through happens outside the cache mutex: serialization and
  // fsync must not serialize other workers' lookups.
  if (store_ != nullptr) (void)store_->save(key, id, stats);
}

bool CellCache::contains(std::uint64_t key, const CellKey& id) {
  {
    const sim::MutexLock lock(mu_);
    const auto it = cells_.find(key);
    if (it != cells_.end() && it->second.id == id) return true;
  }
  return store_ != nullptr && store_->contains(key, id);
}

void CellCache::clear() {
  const sim::MutexLock lock(mu_);
  cells_.clear();
}

std::size_t CellCache::size() const {
  const sim::MutexLock lock(mu_);
  return cells_.size();
}

std::uint64_t CellCache::hits() const {
  const sim::MutexLock lock(mu_);
  return hits_;
}

std::uint64_t CellCache::misses() const {
  const sim::MutexLock lock(mu_);
  return misses_;
}

std::uint64_t CellCache::collisions() const {
  const sim::MutexLock lock(mu_);
  return collisions_;
}

std::uint64_t cell_cache_key(std::string_view app_name, const SystemConfig& config,
                             int nodes, int reps, std::uint64_t seed) {
  // Reuse the seed-derivation hash with a stream tag far outside the rep
  // range, folding `reps` in: same cell, different rep count, different key.
  return rep_seed(cell_fingerprint(app_name, config, nodes, seed),
                  /*rep=*/reps, /*stream=*/0xCAC4EULL);
}

Campaign::Campaign(sim::TaskPool& pool, CellCache& cache)
    : pool_(pool), cache_(cache) {}

std::vector<CellResult> Campaign::run(const CampaignSpec& spec) {
  MKOS_EXPECTS(spec.reps >= 1);
  MKOS_EXPECTS(spec.shard.count >= 1);
  MKOS_EXPECTS(spec.shard.index >= 0 && spec.shard.index < spec.shard.count);
  const auto started = std::chrono::steady_clock::now();
  const auto sched0 = pool_.sched_telemetry();
  CellStore* store = cache_.disk();
  const auto claims0 =
      store != nullptr ? store->counters() : CellStoreCounters{};
  // Cross-process coordination needs the shared store; without one a shard
  // still runs (its slice only, nothing to steal from or publish to).
  const bool use_claims =
      spec.shard.sharded() && store != nullptr && store->ready();

  // Enumerate the grid in deterministic order.
  struct Cell {
    std::size_t result_index;
    std::string app;
    const SystemConfig* config;
    int nodes;
    std::uint64_t key;
    CellKey id;
  };
  std::vector<CellResult> results;
  std::vector<Cell> grid;
  for (const std::string& app_name : spec.apps) {
    const auto probe = workloads::make_app(app_name);
    MKOS_EXPECTS(probe != nullptr);
    std::vector<int> counts = spec.nodes;
    if (counts.empty()) counts = probe->node_counts();
    for (const SystemConfig& config : spec.configs) {
      const std::string config_digest = config.digest();
      for (const int nodes : counts) {
        if (nodes > spec.max_nodes) continue;
        const std::uint64_t key =
            cell_cache_key(app_name, config, nodes, spec.reps, spec.seed);
        grid.push_back(Cell{results.size(), app_name, &config, nodes, key,
                            CellKey{app_name, config_digest, nodes, spec.reps,
                                    spec.seed}});
        results.push_back(CellResult{app_name, config.label(), config.fingerprint(),
                                     nodes, RunStats{}, false, 0.0});
      }
    }
  }

  // Audit: each cell owns a distinct results slot, assigned in grid order —
  // a collision would let parallel workers cross-write each other's results.
  MKOS_AUDIT([&] {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].result_index >= results.size()) return false;
      if (i > 0 && grid[i].result_index <= grid[i - 1].result_index) return false;
    }
    return true;
  }());

  // Resolve cache hits up front and dedupe identical cells within this run:
  // the first occurrence of a key simulates, later ones are cache hits by
  // construction (their results are copied after the fan-out completes).
  // Telemetry splits hits by tier: memory hits and in-run dups are a pure
  // function of the request sequence (deterministic counter), disk-store
  // hits depend on what previous processes left behind (host state).
  std::vector<const Cell*> to_simulate;
  std::vector<const Cell*> foreign;  // sharded: another process's slice
  std::unordered_map<std::uint64_t, std::size_t> first_occurrence;
  std::vector<std::pair<std::size_t, std::size_t>> duplicates;  // (dst, src) indices
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t skipped = 0;
  for (const Cell& cell : grid) {
    if (spec.shard.sharded() &&
        cell.key % static_cast<std::uint64_t>(spec.shard.count) !=
            static_cast<std::uint64_t>(spec.shard.index)) {
      // Foreign slice: skipped unless the steal phase below claims it. The
      // per-shard ledger is partial by design; the unsharded merge pass
      // over the shared store produces the canonical document.
      results[cell.result_index].skipped = true;
      foreign.push_back(&cell);
      continue;
    }
    if (spec.resume && cache_.contains(cell.key, cell.id)) {
      results[cell.result_index].skipped = true;
      ++skipped;
      continue;
    }
    bool from_disk = false;
    if (const auto cached = cache_.lookup(cell.key, cell.id, &from_disk)) {
      results[cell.result_index].stats = *cached;
      results[cell.result_index].from_cache = true;
      ++(from_disk ? disk_hits : memory_hits);
      continue;
    }
    const auto [it, inserted] = first_occurrence.try_emplace(cell.key, cell.result_index);
    if (inserted) {
      to_simulate.push_back(&cell);
    } else {
      duplicates.emplace_back(cell.result_index, it->second);
      results[cell.result_index].from_cache = true;
      ++memory_hits;
    }
  }

  // Owned-slice fan-out. Costs feed cost-aware pools (LPT placement of the
  // skewed tail); FIFO pools keep plain submission order. In a sharded run
  // every simulated cell is claimed first so sibling shards' steal scans
  // can tell in-flight work (live claim) from unstarted work (no claim).
  const auto cost_of = [&spec](const Cell& cell) {
    return static_cast<double>(cell.nodes) * static_cast<double>(spec.reps) *
           workloads::app_cost_weight(cell.app);
  };
  const auto simulate_cell = [&](const Cell& cell) {
    CellResult& out = results[cell.result_index];
    const auto cell_started = std::chrono::steady_clock::now();
    // Each task owns its App: no simulator state crosses threads.
    const auto app = workloads::make_app(cell.app);
    out.stats = run_app(*app, *cell.config, cell.nodes, spec.reps, spec.seed);
    out.wall_ms = elapsed_ms(cell_started);
    out.skipped = false;
    cache_.store(cell.key, cell.id, out.stats);
  };
  std::vector<double> costs;
  costs.reserve(to_simulate.size());
  for (const Cell* cell : to_simulate) costs.push_back(cost_of(*cell));
  sim::parallel_for_weighted(pool_, costs, [&](std::size_t i) {
    const Cell& cell = *to_simulate[i];
    if (use_claims) {
      if (store->try_claim(cell.key) != CellStore::ClaimOutcome::kAcquired) {
        // A sibling shard stole this cell; its entry lands in the shared
        // store and the merge pass serves it from there.
        results[cell.result_index].skipped = true;
        return;
      }
    }
    simulate_cell(cell);
    if (use_claims) store->release_claim(cell.key);
  });

  // Steal phase: this shard is out of owned work — scan the foreign slice
  // for cells nobody has published or claimed yet and take them. Duplicate
  // keys need one attempt only; a lost claim or a published entry means
  // some sibling has it covered.
  std::uint64_t stolen = 0;
  if (use_claims && !foreign.empty()) {
    std::vector<const Cell*> to_steal;
    std::unordered_map<std::uint64_t, bool> steal_seen;
    for (const Cell* cell : foreign) {
      if (!steal_seen.try_emplace(cell->key, true).second) continue;
      if (store->has_entry(cell->key)) continue;
      to_steal.push_back(cell);
    }
    std::vector<double> steal_costs;
    steal_costs.reserve(to_steal.size());
    for (const Cell* cell : to_steal) steal_costs.push_back(cost_of(*cell));
    sim::parallel_for_weighted(pool_, steal_costs, [&](std::size_t i) {
      const Cell& cell = *to_steal[i];
      if (store->try_claim(cell.key) != CellStore::ClaimOutcome::kAcquired) return;
      if (store->has_entry(cell.key)) {
        // Published between our scan and the claim (the owner releases its
        // claim only after the entry rename lands).
        store->release_claim(cell.key);
        return;
      }
      simulate_cell(cell);
      store->release_claim(cell.key);
    });
    for (const Cell* cell : to_steal) {
      if (!results[cell->result_index].skipped) ++stolen;
    }
  }

  for (const auto& [dst, src] : duplicates) {
    results[dst].stats = results[src].stats;
    results[dst].skipped = results[src].skipped;
  }

  telemetry_.cells += grid.size();
  telemetry_.cache_hits += memory_hits;
  telemetry_.store_hits += disk_hits;
  telemetry_.skipped += skipped;
  telemetry_.wall_seconds += elapsed_ms(started) / 1e3;
  for (const Cell* cell : to_simulate) {
    if (!results[cell->result_index].skipped) {
      telemetry_.cell_wall_ms.add(results[cell->result_index].wall_ms);
    }
  }
  const auto sched1 = pool_.sched_telemetry();
  if (sched1.active) {
    telemetry_.sched_active = true;
    telemetry_.sched_steals += sched1.steals - sched0.steals;
    telemetry_.sched_steal_fails += sched1.steal_fails - sched0.steal_fails;
    telemetry_.sched_local_pops += sched1.local_pops - sched0.local_pops;
    telemetry_.sched_imbalance = sched1.imbalance;
  }
  if (store != nullptr) {
    const CellStoreCounters claims1 = store->counters();
    telemetry_.sched_claims += claims1.claims - claims0.claims;
    telemetry_.sched_claim_races += claims1.claim_races - claims0.claim_races;
  }
  telemetry_.stolen_cells += stolen;
  std::uint64_t foreign_skipped = 0;
  for (const Cell* cell : foreign) {
    if (results[cell->result_index].skipped) ++foreign_skipped;
  }
  telemetry_.foreign_skipped += foreign_skipped;
  return results;
}

std::string describe(const CampaignTelemetry& t, int threads) {
  Table table{{"campaign telemetry", "value"}};
  table.add_row({"threads", std::to_string(threads)});
  table.add_row({"cells", std::to_string(t.cells)});
  table.add_row({"cache hits", std::to_string(t.cache_hits)});
  if (t.store_hits > 0) table.add_row({"store hits", std::to_string(t.store_hits)});
  if (t.skipped > 0) table.add_row({"skipped (stored)", std::to_string(t.skipped)});
  table.add_row({"cache hit rate", fmt_pct(t.hit_rate())});
  table.add_row({"wall seconds", fmt(t.wall_seconds, 3)});
  table.add_row({"cells/s", fmt(t.cells_per_second(), 1)});
  if (t.sched_active) {
    table.add_row({"sched steals", std::to_string(t.sched_steals)});
    table.add_row({"sched local pops", std::to_string(t.sched_local_pops)});
    table.add_row({"sched imbalance", fmt(t.sched_imbalance, 3)});
  }
  if (t.sched_claims > 0 || t.sched_claim_races > 0) {
    table.add_row({"shard claims", std::to_string(t.sched_claims)});
    table.add_row({"shard claim races", std::to_string(t.sched_claim_races)});
  }
  if (t.stolen_cells > 0 || t.foreign_skipped > 0) {
    table.add_row({"cells stolen", std::to_string(t.stolen_cells)});
    table.add_row({"foreign skipped", std::to_string(t.foreign_skipped)});
  }
  std::string out = table.to_string();
  if (t.cell_wall_ms.total() > 0) {
    out += "per-cell wall time (ms):\n";
    out += t.cell_wall_ms.to_string();
  }
  return out;
}

}  // namespace mkos::core
