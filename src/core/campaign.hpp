#pragma once
// Parallel campaign engine.
//
// A campaign is an (app × config × nodes) cell grid, each cell being `reps`
// independent simulated runs. The runner fans cells out across a
// sim::ThreadPool and memoizes finished cells in a CellCache keyed by the
// cell fingerprint, so benches that share cells (every figure bench reuses
// the Linux baseline) hit the cache instead of resimulating. Determinism:
// seeds are positional (see core/experiment.hpp), so cell results are
// independent of thread count, scheduling, and cache state.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/experiment.hpp"
#include "sim/histogram.hpp"
#include "sim/thread_pool.hpp"
#include "sim/thread_safety.hpp"

namespace mkos::core {

/// Thread-safe memoization of finished cells, keyed by
/// hash(cell_fingerprint, reps). Apps are identified by registry name, which
/// pins their parameters, so equal keys imply equal simulations.
class CellCache {
 public:
  [[nodiscard]] std::optional<RunStats> lookup(std::uint64_t key) MKOS_EXCLUDES(mu_);
  void store(std::uint64_t key, const RunStats& stats) MKOS_EXCLUDES(mu_);
  void clear() MKOS_EXCLUDES(mu_);

  [[nodiscard]] std::size_t size() const MKOS_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t hits() const MKOS_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t misses() const MKOS_EXCLUDES(mu_);

 private:
  mutable sim::Mutex mu_;
  std::unordered_map<std::uint64_t, RunStats> cells_ MKOS_GUARDED_BY(mu_);
  std::uint64_t hits_ MKOS_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ MKOS_GUARDED_BY(mu_) = 0;
};

/// Cache key for one cell; `reps` participates because a 2-rep and a 5-rep
/// cell share seeds but not statistics.
[[nodiscard]] std::uint64_t cell_cache_key(std::string_view app_name,
                                           const SystemConfig& config, int nodes,
                                           int reps, std::uint64_t seed);

struct CampaignSpec {
  std::vector<std::string> apps;        ///< registry names (workloads::make_app)
  std::vector<SystemConfig> configs;
  std::vector<int> nodes;               ///< empty = each app's own node_counts()
  int reps = 5;
  std::uint64_t seed = 42;
  int max_nodes = 1 << 30;
};

struct CellResult {
  std::string app;
  std::string config_label;
  std::uint64_t config_fp = 0;
  int nodes = 0;
  RunStats stats;
  bool from_cache = false;
  double wall_ms = 0.0;  ///< host time to simulate (0 for cache hits)
};

/// Cumulative runner telemetry across Campaign::run calls.
struct CampaignTelemetry {
  std::uint64_t cells = 0;       ///< cells requested
  std::uint64_t cache_hits = 0;  ///< cells served from cache (incl. in-run dups)
  double wall_seconds = 0.0;     ///< host wall time inside run()
  sim::Histogram cell_wall_ms{1e-3, 1e5, 4};  ///< per simulated cell, host ms

  [[nodiscard]] double cells_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(cells) / wall_seconds : 0.0;
  }
  [[nodiscard]] double hit_rate() const {
    return cells > 0 ? static_cast<double>(cache_hits) / static_cast<double>(cells) : 0.0;
  }
};

class Campaign {
 public:
  /// The cache is borrowed: share one across Campaign instances (and specs)
  /// to share cells across benches within a process.
  Campaign(sim::ThreadPool& pool, CellCache& cache);

  /// Execute the cell grid. Results come back in deterministic grid order
  /// (app-major, then config, then nodes), independent of thread count.
  [[nodiscard]] std::vector<CellResult> run(const CampaignSpec& spec);

  [[nodiscard]] const CampaignTelemetry& telemetry() const { return telemetry_; }

 private:
  sim::ThreadPool& pool_;
  CellCache& cache_;
  CampaignTelemetry telemetry_;
};

/// Render telemetry with the core/report toolkit (table + histogram).
[[nodiscard]] std::string describe(const CampaignTelemetry& t, int threads);

}  // namespace mkos::core
