#pragma once
// Parallel campaign engine.
//
// A campaign is an (app × config × nodes) cell grid, each cell being `reps`
// independent simulated runs. The runner fans cells out across a
// sim::TaskPool — the FIFO ThreadPool by default, or a WorkStealingPool for
// skewed cell mixes (the pool gets a cost estimate per cell,
// nodes × reps × app weight, and places the heavy tail first) — and
// memoizes finished cells in a CellCache keyed by the cell fingerprint, so
// benches that share cells (every figure bench reuses the Linux baseline)
// hit the cache instead of resimulating. Determinism: seeds are positional
// (see core/experiment.hpp), so cell results are independent of thread
// count, scheduling, stealing, and cache state.
//
// The cache is two-tier: an in-memory map always, plus an optional
// disk-backed CellStore (core/cell_store.hpp) attached at construction.
// Lookups read through (memory → disk → miss), stores write through; a
// disk hit populates the memory tier. Every tier stores the full CellKey
// next to the 64-bit hash and verifies it on hit, so a fingerprint
// collision is a detected miss, never the wrong cell's statistics.
//
// Sharding (DESIGN.md §16): MKOS_SHARD=<i>/<n> splits the cell keyspace
// deterministically (a cell belongs to shard key % n) so n processes over
// one shared store cover a grid together. A shard simulates its own slice,
// then steals unclaimed foreign cells through the store's O_EXCL .claim
// protocol; a final unsharded run over the warm store is the merge — every
// cell is a disk hit and the ledger is byte-identical to a single-process
// run modulo host/campaign.store.*/campaign.sched.*.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/cell_store.hpp"
#include "core/experiment.hpp"
#include "sim/env.hpp"
#include "sim/histogram.hpp"
#include "sim/thread_pool.hpp"
#include "sim/thread_safety.hpp"

namespace mkos::core {

/// Thread-safe memoization of finished cells, keyed by
/// hash(cell_fingerprint, reps) and verified against the full CellKey.
/// Apps are identified by registry name, which pins their parameters, so
/// equal keys imply equal simulations.
class CellCache {
 public:
  CellCache() = default;
  /// Attach a disk tier (borrowed; may be nullptr for memory-only). The
  /// store must outlive the cache.
  explicit CellCache(CellStore* store) : store_(store) {}

  /// Two-tier read-through. On a hash collision (entry present under `key`
  /// but with a different CellKey) the memory entry is not trusted: the
  /// collision is counted and the lookup falls through to the disk tier —
  /// which performs its own key verification — then to a miss. Sets
  /// `*from_disk` (when non-null) iff the hit was served by the store.
  [[nodiscard]] std::optional<RunStats> lookup(std::uint64_t key, const CellKey& id,
                                               bool* from_disk = nullptr)
      MKOS_EXCLUDES(mu_);
  /// Write-through: memory immediately, then the store (best-effort, I/O
  /// outside the cache mutex). Colliding keys are last-writer-wins.
  void store(std::uint64_t key, const CellKey& id, const RunStats& stats)
      MKOS_EXCLUDES(mu_);
  /// True when either tier holds a verified entry for (key, id), without
  /// rebuilding statistics — the resumable-sweep probe. Does not perturb
  /// the memory tier's hit/miss counters.
  [[nodiscard]] bool contains(std::uint64_t key, const CellKey& id) MKOS_EXCLUDES(mu_);
  /// Clears the memory tier only; the disk tier persists by design.
  void clear() MKOS_EXCLUDES(mu_);

  [[nodiscard]] CellStore* disk() const { return store_; }
  [[nodiscard]] std::size_t size() const MKOS_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t hits() const MKOS_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t misses() const MKOS_EXCLUDES(mu_);
  /// Memory-tier hash collisions detected (key verified, id differed).
  [[nodiscard]] std::uint64_t collisions() const MKOS_EXCLUDES(mu_);

 private:
  struct Entry {
    CellKey id;
    RunStats stats;
  };

  CellStore* store_ = nullptr;
  mutable sim::Mutex mu_;
  std::unordered_map<std::uint64_t, Entry> cells_ MKOS_GUARDED_BY(mu_);
  std::uint64_t hits_ MKOS_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ MKOS_GUARDED_BY(mu_) = 0;
  std::uint64_t collisions_ MKOS_GUARDED_BY(mu_) = 0;
};

/// Cache key for one cell; `reps` participates because a 2-rep and a 5-rep
/// cell share seeds but not statistics.
[[nodiscard]] std::uint64_t cell_cache_key(std::string_view app_name,
                                           const SystemConfig& config, int nodes,
                                           int reps, std::uint64_t seed);

/// One process's slice of a sharded sweep: this process owns the cells with
/// `key % count == index`. The default {0, 1} owns everything (unsharded).
struct ShardSpec {
  int index = 0;
  int count = 1;

  [[nodiscard]] bool sharded() const { return count > 1; }

  /// Environment variable: `MKOS_SHARD=<index>/<count>`.
  static constexpr const char* kEnvVar = "MKOS_SHARD";

  /// Parse MKOS_SHARD strictly (mirrors sim::env_int: unset/empty keeps the
  /// unsharded default; anything else must be <i>/<n> with
  /// 0 <= i < n <= 4096 or the process stops naming the variable).
  /// Header-inline so MKOS_CONTRACTS_THROW test builds get a catchable
  /// ContractViolation instead of exit(2).
  [[nodiscard]] static ShardSpec from_env() {
    const char* value = std::getenv(kEnvVar);
    if (value == nullptr || value[0] == '\0') return {};
    const std::string_view text(value);
    const std::size_t slash = text.find('/');
    std::optional<long long> index;
    std::optional<long long> count;
    if (slash != std::string_view::npos) {
      index = sim::parse_int(text.substr(0, slash));
      count = sim::parse_int(text.substr(slash + 1));
    }
    if (!index || !count || *count < 1 || *count > 4096 || *index < 0 ||
        *index >= *count) {
      shard_env_failure(value);
    }
    return ShardSpec{static_cast<int>(*index), static_cast<int>(*count)};
  }

 private:
  [[noreturn]] static void shard_env_failure(const char* value) {
    char msg[256];
    std::snprintf(msg, sizeof msg,
                  "%s='%s' (expected <index>/<count>, 0 <= index < count <= 4096)",
                  kEnvVar, value);
#ifdef MKOS_CONTRACTS_THROW
    throw sim::ContractViolation(std::string("mkos: invalid environment: ") + msg);
#else
    std::fprintf(stderr, "mkos: invalid environment: %s\n", msg);
    std::exit(2);  // user input error, not a program bug: no abort/core
#endif
  }
};

struct CampaignSpec {
  std::vector<std::string> apps;        ///< registry names (workloads::make_app)
  std::vector<SystemConfig> configs;
  std::vector<int> nodes;               ///< empty = each app's own node_counts()
  int reps = 5;
  std::uint64_t seed = 42;
  int max_nodes = 1 << 30;
  /// Resumable sweep: cells whose key the cache (memory or disk store)
  /// already holds are skipped outright — marked CellResult::skipped with
  /// empty statistics, nothing loaded or simulated. For "what remains"
  /// passes over a partially-filled store; leave false to get full results.
  bool resume = false;
  /// Sharded sweep: this process simulates only its keyspace slice, then
  /// steals unclaimed foreign cells when a store is attached. Foreign cells
  /// that were not stolen come back CellResult::skipped.
  ShardSpec shard;
};

struct CellResult {
  std::string app;
  std::string config_label;
  std::uint64_t config_fp = 0;
  int nodes = 0;
  RunStats stats;
  bool from_cache = false;
  double wall_ms = 0.0;  ///< host time to simulate (0 for cache hits)
  bool skipped = false;  ///< resume mode: already stored, stats left empty
};

/// Cumulative runner telemetry across Campaign::run calls.
struct CampaignTelemetry {
  std::uint64_t cells = 0;       ///< cells requested
  /// Cells served deterministically: memory-tier hits and in-run dups. A
  /// pure function of the request sequence — independent of disk state —
  /// so it belongs in the ledger's deterministic counter block.
  std::uint64_t cache_hits = 0;
  std::uint64_t store_hits = 0;  ///< cells served by the disk store (host state)
  std::uint64_t skipped = 0;     ///< resume mode: cells skipped as already stored
  double wall_seconds = 0.0;     ///< host wall time inside run()
  sim::Histogram cell_wall_ms{1e-3, 1e5, 4};  ///< per simulated cell, host ms

  // Scheduler telemetry (the campaign.sched.* ledger group; host-state
  // dependent like campaign.store.*, emitted only when a cost-aware pool
  // ran). Pool counters are per-run deltas of the pool's cumulative totals;
  // claim counters come from the store's claim protocol.
  bool sched_active = false;        ///< a cost-aware (work-stealing) pool ran
  std::uint64_t sched_steals = 0;       ///< tasks taken from a foreign deque
  std::uint64_t sched_steal_fails = 0;  ///< deque scans that raced to nothing
  std::uint64_t sched_local_pops = 0;   ///< tasks served from the owner deque
  std::uint64_t sched_claims = 0;       ///< cross-process claims acquired
  std::uint64_t sched_claim_races = 0;  ///< claims lost to a live owner
  double sched_imbalance = 0.0;  ///< max/mean executed cost across workers
  /// Sharded runs: foreign cells skipped (not stolen) / stolen and simulated.
  std::uint64_t foreign_skipped = 0;
  std::uint64_t stolen_cells = 0;

  [[nodiscard]] double cells_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(cells) / wall_seconds : 0.0;
  }
  /// Fraction of requested cells served without simulation (either tier).
  [[nodiscard]] double hit_rate() const {
    return cells > 0 ? static_cast<double>(cache_hits + store_hits) /
                           static_cast<double>(cells)
                     : 0.0;
  }
};

class Campaign {
 public:
  /// The cache is borrowed: share one across Campaign instances (and specs)
  /// to share cells across benches within a process. Any TaskPool works;
  /// a cost-aware pool (sim::WorkStealingPool) additionally gets LPT
  /// heaviest-first placement of the cell mix.
  Campaign(sim::TaskPool& pool, CellCache& cache);

  /// Execute the cell grid. Results come back in deterministic grid order
  /// (app-major, then config, then nodes), independent of thread count,
  /// pool kind, and stealing — bit-identical by the positional-seed
  /// contract.
  [[nodiscard]] std::vector<CellResult> run(const CampaignSpec& spec);

  [[nodiscard]] const CampaignTelemetry& telemetry() const { return telemetry_; }

 private:
  sim::TaskPool& pool_;
  CellCache& cache_;
  CampaignTelemetry telemetry_;
};

/// Render telemetry with the core/report toolkit (table + histogram).
[[nodiscard]] std::string describe(const CampaignTelemetry& t, int threads);

}  // namespace mkos::core
