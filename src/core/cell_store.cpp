#include "core/cell_store.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <system_error>
#include <utility>

#include "obs/ledger.hpp"
#include "sim/format.hpp"
#include "sim/json.hpp"

namespace mkos::core {

namespace {

/// Same FNV-1a 64 the fingerprints use; here over raw payload bytes.
std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf);
}

/// The entry's first line, sans newline. Verification re-renders this from
/// the observed payload and compares byte-wise: one comparison checks the
/// magic, the format version, the declared length and the checksum at once.
std::string header_line(std::size_t payload_len, std::uint64_t crc) {
  return "mkos-cell v" + std::to_string(CellStore::kFormatVersion) +
         " len=" + std::to_string(payload_len) + " crc=" + hex16(crc);
}

std::string key_json(const CellKey& id) {
  std::string out = "{\"app\": " + sim::json_quote(id.app);
  out += ", \"config_digest\": " + sim::json_quote(id.config_digest);
  out += ", \"nodes\": " + std::to_string(id.nodes);
  out += ", \"reps\": " + std::to_string(id.reps);
  out += ", \"seed\": " + std::to_string(id.seed);
  out += "}";
  return out;
}

std::string fom_samples_json(const sim::Summary& fom) {
  std::string out = "[";
  bool first = true;
  for (const double v : fom.samples()) {
    if (!first) out += ", ";
    first = false;
    out += sim::json_number(v);
  }
  out += "]";
  return out;
}

/// json_number() emits non-finite doubles as null; read null back as NaN
/// (mirrors the ledger storage codec's convention).
bool read_stored_double(const sim::JsonValue& v, double* out) {
  if (v.is_null()) {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  const auto d = v.as_double();
  if (!d) return false;
  *out = *d;
  return true;
}

/// Extract and validate the stored key block. False on any missing or
/// mistyped field (the entry is corrupt, not merely foreign).
bool parse_key_block(const sim::JsonValue& doc, CellKey* out) {
  const sim::JsonValue* key_block = doc.find("key");
  if (key_block == nullptr || !key_block->is_object()) return false;
  const sim::JsonValue* app = key_block->find("app");
  const sim::JsonValue* digest = key_block->find("config_digest");
  const sim::JsonValue* nodes = key_block->find("nodes");
  const sim::JsonValue* reps = key_block->find("reps");
  const sim::JsonValue* seed = key_block->find("seed");
  if (app == nullptr || !app->is_string() || digest == nullptr ||
      !digest->is_string() || nodes == nullptr || !nodes->as_i64() ||
      reps == nullptr || !reps->as_i64() || seed == nullptr || !seed->as_u64()) {
    return false;
  }
  out->app = app->as_string();
  out->config_digest = digest->as_string();
  out->nodes = static_cast<int>(*nodes->as_i64());
  out->reps = static_cast<int>(*reps->as_i64());
  out->seed = *seed->as_u64();
  return true;
}

/// Verify one scanned blob (filename `<hex16>.cell`) and extract its index
/// entry. Mirrors read_entry's header/schema/key checks, minus quarantine
/// and ledger reconstruction — the index needs identity and FoM only.
bool parse_index_entry(const std::string& blob, const std::string& name,
                       CellIndexEntry* out) {
  if (name.size() != 16 + 5) return false;  // "<16 hex>.cell"
  std::uint64_t key = 0;
  for (int i = 0; i < 16; ++i) {
    const char c = name[static_cast<std::size_t>(i)];
    key <<= 4;
    if (c >= '0' && c <= '9') {
      key |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      key |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  const std::size_t eol = blob.find('\n');
  if (eol == std::string::npos) return false;
  const std::string payload = blob.substr(eol + 1);
  if (blob.compare(0, eol, header_line(payload.size(), fnv1a64(payload))) != 0) {
    return false;
  }
  std::string parse_error;
  const auto doc = sim::json_parse(payload, &parse_error);
  if (!doc || !doc->is_object()) return false;
  const sim::JsonValue* schema = doc->find("schema");
  const sim::JsonValue* schema_version = doc->find("schema_version");
  const sim::JsonValue* fingerprint = doc->find("fingerprint");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != CellStore::kSchemaId || schema_version == nullptr ||
      schema_version->as_u64() !=
          std::optional<std::uint64_t>(CellStore::kFormatVersion) ||
      fingerprint == nullptr || !fingerprint->is_string() ||
      fingerprint->as_string() != hex16(key)) {
    return false;
  }
  if (!parse_key_block(*doc, &out->id)) return false;
  const sim::JsonValue* unit = doc->find("unit");
  const sim::JsonValue* samples = doc->find("fom_samples");
  if (unit == nullptr || !unit->is_string() || samples == nullptr ||
      !samples->is_array()) {
    return false;
  }
  out->unit = unit->as_string();
  for (const sim::JsonValue& sample : samples->items()) {
    double v = 0.0;
    if (!read_stored_double(sample, &v)) return false;
    out->fom_samples.push_back(v);
  }
  out->key = key;
  return true;
}

/// Claim-file body (sans newline); see the protocol note in the header.
std::string claim_line(std::uint64_t gen, long long pid) {
  return "mkos-claim v1 gen=" + std::to_string(gen) +
         " pid=" + std::to_string(pid);
}

/// Parse a claim file's single line. False when the file is not a
/// well-formed v1 claim (treated as reclaimable — an empty or torn claim
/// must not wedge the cell forever).
bool parse_claim(const std::string& blob, std::uint64_t* gen, long long* pid) {
  unsigned long long g = 0;
  long long p = 0;
  if (std::sscanf(blob.c_str(), "mkos-claim v1 gen=%llu pid=%lld", &g, &p) != 2) {
    return false;
  }
  *gen = g;
  *pid = p;
  return true;
}

/// Is the claiming process still alive? kill(pid, 0) probes without
/// signaling; EPERM means "alive but not ours", which still counts.
bool pid_alive(long long pid) {
  if (pid <= 0) return false;
  if (pid == static_cast<long long>(::getpid())) return true;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

/// Move a corrupt entry aside for post-mortem; if even that fails, delete
/// it so the next save can replace it. Best-effort by design.
void quarantine(const std::string& path) {
  const std::string aside = path + ".quarantined";
  if (std::rename(path.c_str(), aside.c_str()) != 0) (void)std::remove(path.c_str());
}

bool read_file(const std::string& path, std::string* out, bool* existed) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    *existed = false;
    return false;
  }
  *existed = true;
  std::string blob((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) return false;
  *out = std::move(blob);
  return true;
}

}  // namespace

CellStore::CellStore(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  // create_directories reports false+no-error for an already-existing dir;
  // ready means "the path exists and is a directory now".
  ready_ = !ec && std::filesystem::is_directory(root_, ec) && !ec;
}

std::unique_ptr<CellStore> CellStore::from_env() {
  const char* root = std::getenv(kEnvVar);
  if (root == nullptr || root[0] == '\0') return nullptr;
  auto store = std::make_unique<CellStore>(std::string(root));
  if (!store->ready()) {
    std::fprintf(stderr, "warning: %s=%s is not a usable directory; cell store disabled\n",
                 kEnvVar, root);
    return nullptr;
  }
  return store;
}

std::string CellStore::entry_path(std::uint64_t key) const {
  return root_ + "/" + hex16(key) + ".cell";
}

CellStore::ReadOutcome CellStore::read_entry(std::uint64_t key, const CellKey& id,
                                             RunStats* out) {
  const auto finish = [this](ReadOutcome outcome, std::uint64_t bytes) {
    const sim::MutexLock lock(mu_);
    switch (outcome) {
      case ReadOutcome::kHit:
        ++counters_.hits;
        counters_.bytes_read += bytes;
        break;
      case ReadOutcome::kMiss:
        ++counters_.misses;
        break;
      case ReadOutcome::kCorrupt:
        ++counters_.misses;
        ++counters_.corrupt;
        break;
      case ReadOutcome::kKeyMismatch:
        ++counters_.misses;
        ++counters_.key_mismatches;
        break;
    }
    return outcome;
  };
  if (!ready_) return finish(ReadOutcome::kMiss, 0);

  const std::string path = entry_path(key);
  std::string blob;
  bool existed = false;
  if (!read_file(path, &blob, &existed)) {
    if (!existed) return finish(ReadOutcome::kMiss, 0);
    quarantine(path);
    return finish(ReadOutcome::kCorrupt, 0);
  }
  const auto corrupt = [&] {
    quarantine(path);
    return finish(ReadOutcome::kCorrupt, 0);
  };

  // Header: everything before the first newline must equal the line we
  // would write for the observed payload (zero-length and truncated files
  // fail here; so do bad checksums and foreign format versions).
  const std::size_t eol = blob.find('\n');
  if (eol == std::string::npos) return corrupt();
  const std::string payload = blob.substr(eol + 1);
  if (blob.compare(0, eol, header_line(payload.size(), fnv1a64(payload))) != 0) {
    return corrupt();
  }

  std::string parse_error;
  const auto doc = sim::json_parse(payload, &parse_error);
  if (!doc || !doc->is_object()) return corrupt();

  const sim::JsonValue* schema = doc->find("schema");
  const sim::JsonValue* schema_version = doc->find("schema_version");
  const sim::JsonValue* ledger_version = doc->find("ledger_schema_version");
  const sim::JsonValue* fingerprint = doc->find("fingerprint");
  if (schema == nullptr || !schema->is_string() || schema->as_string() != kSchemaId ||
      schema_version == nullptr ||
      schema_version->as_u64() != std::optional<std::uint64_t>(kFormatVersion) ||
      ledger_version == nullptr ||
      ledger_version->as_u64() !=
          std::optional<std::uint64_t>(static_cast<std::uint64_t>(obs::kSchemaVersion)) ||
      fingerprint == nullptr || !fingerprint->is_string() ||
      fingerprint->as_string() != hex16(key)) {
    return corrupt();
  }

  // Collision check: the stored key must match the requested cell on every
  // field, not just on the 64-bit hash the filename encodes.
  CellKey stored;
  if (!parse_key_block(*doc, &stored)) return corrupt();
  if (!(stored == id)) return finish(ReadOutcome::kKeyMismatch, 0);

  if (out != nullptr) {
    const sim::JsonValue* unit = doc->find("unit");
    const sim::JsonValue* samples = doc->find("fom_samples");
    const sim::JsonValue* ledger = doc->find("ledger");
    if (unit == nullptr || !unit->is_string() || samples == nullptr ||
        !samples->is_array() || ledger == nullptr) {
      return corrupt();
    }
    RunStats stats;
    stats.unit = unit->as_string();
    for (const sim::JsonValue& sample : samples->items()) {
      double v = 0.0;
      if (!read_stored_double(sample, &v)) return corrupt();
      stats.fom.add(v);
    }
    std::string restore_error;
    if (!stats.ledger.restore_storage_json(*ledger, &restore_error)) return corrupt();
    *out = std::move(stats);
  }
  return finish(ReadOutcome::kHit, blob.size());
}

std::optional<RunStats> CellStore::load(std::uint64_t key, const CellKey& id) {
  RunStats stats;
  if (read_entry(key, id, &stats) != ReadOutcome::kHit) return std::nullopt;
  return stats;
}

bool CellStore::contains(std::uint64_t key, const CellKey& id) {
  return read_entry(key, id, nullptr) == ReadOutcome::kHit;
}

bool CellStore::save(std::uint64_t key, const CellKey& id, const RunStats& stats) {
  if (!ready_) return false;

  sim::JsonObject doc;
  doc.text("schema", kSchemaId);
  doc.integer("schema_version", kFormatVersion);
  doc.integer("ledger_schema_version", obs::kSchemaVersion);
  doc.text("fingerprint", hex16(key));
  doc.raw("key", key_json(id));
  doc.text("unit", stats.unit);
  doc.raw("fom_samples", fom_samples_json(stats.fom));
  doc.raw("ledger", stats.ledger.to_storage_json());
  const std::string payload = doc.to_string();
  const std::string blob = header_line(payload.size(), fnv1a64(payload)) + "\n" + payload;

  // Atomic publish: write a uniquely named sibling, fsync, rename into
  // place. Concurrent writers of the same key race benignly (identical
  // content by the determinism contract; rename is atomic either way) —
  // the pid distinguishes processes and the sequence number distinguishes
  // threads within one process (two in-process shards sharing a store
  // directory must not truncate each other's temp file mid-write).
  static std::atomic<std::uint64_t> tmp_seq{0};
  const std::string path = entry_path(key);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid())) + "." +
      std::to_string(tmp_seq.fetch_add(1, std::memory_order_relaxed));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  const bool flushed = wrote && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!(wrote && flushed && closed)) {
    (void)std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    return false;
  }
  {
    const sim::MutexLock lock(mu_);
    ++counters_.writes;
    counters_.bytes_written += blob.size();
  }
  return true;
}

bool CellStore::has_entry(std::uint64_t key) const {
  if (!ready_) return false;
  std::error_code ec;
  return std::filesystem::exists(entry_path(key), ec) && !ec;
}

std::string CellStore::claim_path(std::uint64_t key) const {
  return root_ + "/" + hex16(key) + ".claim";
}

CellStore::ClaimOutcome CellStore::try_claim(std::uint64_t key) {
  const auto finish = [this](ClaimOutcome outcome) {
    const sim::MutexLock lock(mu_);
    if (outcome == ClaimOutcome::kAcquired) {
      ++counters_.claims;
    } else {
      ++counters_.claim_races;
    }
    return outcome;
  };
  if (!ready_) return finish(ClaimOutcome::kBusy);

  const std::string path = claim_path(key);
  const long long self = static_cast<long long>(::getpid());
  // Fast path: atomic O_EXCL create wins or loses the race outright.
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd >= 0) {
    const std::string line = claim_line(/*gen=*/1, self) + "\n";
    const bool wrote =
        ::write(fd, line.data(), line.size()) == static_cast<ssize_t>(line.size());
    (void)::close(fd);
    // A failed body write leaves an empty claim; it parses as stale and a
    // sibling reclaims it, so we must not pretend to hold it.
    return finish(wrote ? ClaimOutcome::kAcquired : ClaimOutcome::kBusy);
  }
  if (errno != EEXIST) return finish(ClaimOutcome::kBusy);

  // Slow path: somebody holds (or held) the claim. A live owner wins; a
  // dead or unparseable one is reclaimed with a bumped generation.
  std::string blob;
  bool existed = false;
  if (!read_file(path, &blob, &existed)) {
    // Vanished between open and read: the owner released. Don't retry in a
    // loop — the caller treats busy as "skip this cell", duplicates of the
    // unclaimed-cell scan are cheap.
    return finish(ClaimOutcome::kBusy);
  }
  std::uint64_t gen = 0;
  long long owner = 0;
  if (parse_claim(blob, &gen, &owner) && pid_alive(owner)) {
    return finish(ClaimOutcome::kBusy);
  }
  // Reclaim: write the successor claim aside and atomically rename it over
  // the stale one. Two racing reclaimers both "win" benignly — the cell
  // computes twice, entry publication is last-writer-wins.
  const std::string tmp = path + ".tmp." + std::to_string(self);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return finish(ClaimOutcome::kBusy);
  const std::string line = claim_line(gen + 1, self) + "\n";
  const bool wrote = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  const bool closed = std::fclose(f) == 0;
  if (!(wrote && closed) || std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    return finish(ClaimOutcome::kBusy);
  }
  return finish(ClaimOutcome::kAcquired);
}

void CellStore::release_claim(std::uint64_t key) const {
  (void)std::remove(claim_path(key).c_str());
}

std::vector<CellIndexEntry> CellStore::scan_index(std::uint64_t* corrupt) const {
  std::vector<CellIndexEntry> index;
  if (corrupt != nullptr) *corrupt = 0;
  if (!ready_) return index;

  std::vector<std::string> names;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(root_, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::filesystem::path& p = it->path();
    if (p.extension() == ".cell") names.push_back(p.filename().string());
  }
  std::sort(names.begin(), names.end());

  const auto bad = [corrupt] {
    if (corrupt != nullptr) ++*corrupt;
  };
  for (const std::string& name : names) {
    const std::string path = root_ + "/" + name;
    // mmap the entry read-only: the scan verifies and parses in place, so a
    // million-cell store indexes without double-buffering every file.
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      bad();
      continue;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
      (void)::close(fd);
      bad();
      continue;
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    (void)::close(fd);
    if (map == MAP_FAILED) {
      bad();
      continue;
    }
    const std::string blob(static_cast<const char*>(map), size);
    (void)::munmap(map, size);

    CellIndexEntry entry;
    if (!parse_index_entry(blob, name, &entry)) {
      bad();
      continue;
    }
    entry.bytes = size;
    index.push_back(std::move(entry));
  }
  return index;
}

CellStoreCounters CellStore::counters() const {
  const sim::MutexLock lock(mu_);
  return counters_;
}

}  // namespace mkos::core
