#pragma once
// Persistent content-addressed cell store (ROADMAP 1 groundwork).
//
// A CellStore is the disk tier behind the campaign CellCache: every finished
// (app × config × nodes × reps × seed) cell serializes into one file named by
// its 64-bit cell cache key, so a later process — a re-run bench, a resumed
// sweep, CI's warm-cache job — loads the cell instead of resimulating it.
// The determinism contract makes this sound: a cell's deterministic sections
// are a pure function of the key inputs, so a stored cell is bit-equivalent
// to a recomputed one (tests/test_cell_store.cpp proves the round trip).
//
// Entry format (DESIGN.md §15): a single header line
//
//   mkos-cell v1 len=<payload bytes, decimal> crc=<FNV-1a 64, 16 hex>\n
//
// followed by exactly `len` bytes of JSON payload. The payload carries the
// schema id/version, the ledger schema version, the *full* cell key (app
// name, canonical config digest, nodes, reps, seed — not just the 64-bit
// hash), the FoM samples + unit, and the ledger's full-fidelity storage
// document. Writes go to a pid-suffixed temp file renamed into place, so a
// concurrent reader sees the old entry or the whole new one, never a torn
// write.
//
// Failure policy: trust nothing on the read path. A truncated, bit-flipped,
// wrong-version or zero-length entry is detected (length, checksum, strict
// JSON parse, schema check), renamed aside to `<entry>.quarantined` for
// post-mortem, counted, and reported as a miss — the caller recomputes. An
// entry whose 64-bit name matches but whose stored key differs is a hash
// collision: also a miss (counted separately), but *not* quarantined — the
// entry is a valid cell, just somebody else's.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "sim/thread_safety.hpp"

namespace mkos::core {

/// Full identity of a cell — every input the 64-bit cache key hashes,
/// spelled out. Stored beside the hash (in memory and on disk) and compared
/// on every hit, so a fingerprint collision reads as a miss instead of
/// silently serving the wrong cell's statistics.
struct CellKey {
  std::string app;            ///< registry name (pins workload parameters)
  std::string config_digest;  ///< SystemConfig::digest() — all hashed knobs
  int nodes = 0;
  int reps = 0;
  std::uint64_t seed = 0;

  friend bool operator==(const CellKey&, const CellKey&) = default;
};

/// Monotonic store telemetry; snapshot via CellStore::counters(). Reported
/// as the `campaign.store.*` ledger group (host-state-dependent: only
/// emitted when a store is attached).
struct CellStoreCounters {
  std::uint64_t hits = 0;            ///< entries served (load or contains)
  std::uint64_t misses = 0;          ///< absent, corrupt, or mismatched
  std::uint64_t writes = 0;          ///< entries persisted
  std::uint64_t corrupt = 0;         ///< of misses: quarantined entries
  std::uint64_t key_mismatches = 0;  ///< of misses: hash collisions
  std::uint64_t bytes_read = 0;      ///< payload+header bytes of served hits
  std::uint64_t bytes_written = 0;   ///< payload+header bytes persisted
  /// Claim-protocol telemetry (sharded sweeps; see try_claim). Reported as
  /// part of the `campaign.sched.*` group, not `campaign.store.*`: claims
  /// only happen when the sharded scheduler runs.
  std::uint64_t claims = 0;        ///< claims acquired (fresh or reclaimed)
  std::uint64_t claim_races = 0;   ///< claims lost to a live owner
};

/// One store entry as seen by a read-only index scan (mkos-query): the full
/// cell identity plus the figure-of-merit samples — everything needed to
/// answer best-config queries without rebuilding a ledger.
struct CellIndexEntry {
  std::uint64_t key = 0;  ///< 64-bit name (the filename stem)
  CellKey id;
  std::string unit;
  std::vector<double> fom_samples;
  std::uint64_t bytes = 0;  ///< on-disk entry size
};

/// Disk tier of the campaign cell cache. Thread-safe: the mutex guards only
/// the counters; file operations rely on atomic rename, so concurrent
/// writers of the same key are last-writer-wins with no torn state.
class CellStore {
 public:
  /// Bump when the entry layout changes shape; older entries quarantine and
  /// recompute rather than parse wrongly.
  static constexpr int kFormatVersion = 1;
  static constexpr const char* kSchemaId = "mkos.cell.v1";
  /// Environment variable naming the store directory; unset/empty = no store.
  static constexpr const char* kEnvVar = "MKOS_CELL_STORE";

  /// Opens (creating if needed) the store rooted at `root`. On directory
  /// creation failure the store is not ready(): loads miss, saves fail —
  /// the campaign still runs, just without persistence.
  explicit CellStore(std::string root);

  /// Store named by $MKOS_CELL_STORE, or nullptr when the variable is unset
  /// or empty (the default: no disk tier, byte-identical legacy behavior).
  [[nodiscard]] static std::unique_ptr<CellStore> from_env();

  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] const std::string& root() const { return root_; }
  /// `<root>/<16-hex key>.cell`.
  [[nodiscard]] std::string entry_path(std::uint64_t key) const;

  /// Read, verify, and rebuild the cell stored under `key`. Verifies the
  /// header, checksum, schema versions and the full `id` before trusting a
  /// byte of statistics. nullopt = recompute (absent / corrupt / collision).
  [[nodiscard]] std::optional<RunStats> load(std::uint64_t key, const CellKey& id)
      MKOS_EXCLUDES(mu_);

  /// Persist a finished cell (atomic temp + rename). Best-effort: false on
  /// I/O failure, which callers treat as "cache stays cold", never fatal.
  bool save(std::uint64_t key, const CellKey& id, const RunStats& stats)
      MKOS_EXCLUDES(mu_);

  /// Full verification of an entry (header, checksum, schema, key) without
  /// rebuilding its statistics — the resumable-sweep probe. Counts exactly
  /// like load(): a verified entry is a hit, anything else a miss.
  [[nodiscard]] bool contains(std::uint64_t key, const CellKey& id) MKOS_EXCLUDES(mu_);

  /// Cheap existence probe: does an entry file for `key` exist at all? No
  /// verification, no counters — sharded stealers use it to skip cells a
  /// sibling already published (a corrupt file reads as present; the merge
  /// pass's verified load recomputes it).
  [[nodiscard]] bool has_entry(std::uint64_t key) const;

  // ---- cross-process claim protocol (sharded sweeps, DESIGN.md §16) ----
  //
  // A claim is `<root>/<16-hex key>.claim` holding one line:
  //
  //   mkos-claim v1 gen=<generation> pid=<owner pid>\n
  //
  // Creation is O_EXCL (atomic claim-or-lose). A claim whose owner pid is no
  // longer alive — the shard crashed — is reclaimed by atomically renaming a
  // rewritten claim with a bumped generation over it (the PR 8 temp+rename
  // discipline); the generation records how many owners the claim outlived.
  // Losing a reclaim race, or double-computing a cell because a claim was
  // reclaimed while its owner still lived behind a PID collision, is benign:
  // cell content is deterministic, entry writes are last-writer-wins atomic
  // renames. Unsharded runs never consult claims, so a merge pass always
  // completes regardless of leftover claim files.

  enum class ClaimOutcome : std::uint8_t { kAcquired, kBusy };

  /// Try to claim `key` for this process. kBusy when a live process holds
  /// it (counted as a claim race); dead-owner and unparseable claims are
  /// reclaimed. Callers must release_claim() after publishing the entry.
  [[nodiscard]] ClaimOutcome try_claim(std::uint64_t key) MKOS_EXCLUDES(mu_);

  /// Drop this process's claim on `key` (best-effort unlink).
  void release_claim(std::uint64_t key) const;

  /// `<root>/<16-hex key>.claim`.
  [[nodiscard]] std::string claim_path(std::uint64_t key) const;

  /// Read-only scan of every `.cell` entry under the root, in sorted
  /// filename order. Each file is mmap-ed, header/checksum/schema-verified
  /// and its key block + FoM samples parsed — no ledger reconstruction, so
  /// the scan is cheap enough to run once at query-server startup.
  /// Unverifiable entries are skipped and counted into `*corrupt` (when
  /// non-null), never quarantined: scanning must not mutate the store.
  [[nodiscard]] std::vector<CellIndexEntry> scan_index(
      std::uint64_t* corrupt = nullptr) const;

  [[nodiscard]] CellStoreCounters counters() const MKOS_EXCLUDES(mu_);

 private:
  enum class ReadOutcome : std::uint8_t { kHit, kMiss, kCorrupt, kKeyMismatch };

  /// Shared read path; `out == nullptr` skips statistics reconstruction
  /// (contains()). Updates counters and quarantines corrupt entries.
  ReadOutcome read_entry(std::uint64_t key, const CellKey& id, RunStats* out)
      MKOS_EXCLUDES(mu_);

  std::string root_;
  bool ready_ = false;
  mutable sim::Mutex mu_;
  CellStoreCounters counters_ MKOS_GUARDED_BY(mu_);
};

}  // namespace mkos::core
