#include "core/config.hpp"

#include <cstdio>

#include "hw/knl.hpp"

namespace mkos::core {

SystemConfig SystemConfig::linux_default() { return SystemConfig{}; }

SystemConfig SystemConfig::mckernel() {
  SystemConfig c;
  c.os = kernel::OsKind::kMcKernel;
  return c;
}

SystemConfig SystemConfig::mos() {
  SystemConfig c;
  c.os = kernel::OsKind::kMos;
  return c;
}

SystemConfig SystemConfig::for_os(kernel::OsKind os) {
  SystemConfig c;
  c.os = os;
  return c;
}

std::string SystemConfig::label() const { return std::string(kernel::to_string(os)); }

std::uint64_t SystemConfig::fingerprint() const {
  // FNV-1a over a canonical field sequence. Every knob participates; adding a
  // field to SystemConfig must extend this list or cells with different
  // behavior would alias in the campaign cache.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(os));
  mix(static_cast<std::uint64_t>(mem_mode));
  mix(static_cast<std::uint64_t>(app_cores));
  mix(static_cast<std::uint64_t>(service_cores));
  std::uint64_t bools = 0;
  for (const bool b : {linux_nohz_full, linux_thp, hpc_brk, lwk_prefer_mcdram,
                       mckernel_demand_fallback, mckernel_mpol_shm_premap,
                       mckernel_disable_sched_yield, mos_partition_mcdram,
                       user_space_network, co_tenant}) {
    bools = (bools << 1) | static_cast<std::uint64_t>(b);
  }
  mix(bools);
  // Fold the resilience spec only when it can change observable behavior:
  // an inert spec must keep every pre-existing fingerprint (cache keys,
  // ledger meta) exactly as it was before the fault subsystem existed.
  if (resilience.enabled()) mix(resilience.fingerprint());
  // Same contract for the allocator model: inert means invisible.
  if (alloc.enabled()) mix(alloc.fingerprint());
  return h;
}

std::string SystemConfig::digest() const {
  // Mirrors fingerprint()'s field sequence exactly; see the header contract.
  std::string out = "os=" + std::to_string(static_cast<int>(os));
  out += " mem=" + std::to_string(static_cast<int>(mem_mode));
  out += " cores=" + std::to_string(app_cores) + "+" + std::to_string(service_cores);
  out += " flags=";
  for (const bool b : {linux_nohz_full, linux_thp, hpc_brk, lwk_prefer_mcdram,
                       mckernel_demand_fallback, mckernel_mpol_shm_premap,
                       mckernel_disable_sched_yield, mos_partition_mcdram,
                       user_space_network, co_tenant}) {
    out += b ? '1' : '0';
  }
  // Like fingerprint(): an inert resilience spec is invisible, so digests
  // (and therefore stored cells) survive the fault subsystem being compiled
  // in or out.
  if (resilience.enabled()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, " res=%016llx",
                  static_cast<unsigned long long>(resilience.fingerprint()));
    out += buf;
  } else {
    out += " res=off";
  }
  // The allocator spec appends a token ONLY when enabled — unlike the
  // " res=off" above (already baked into every stored digest), an
  // unconditional " alloc=off" would invalidate every pre-existing cell.
  if (alloc.enabled()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, " alloc=%016llx",
                  static_cast<unsigned long long>(alloc.fingerprint()));
    out += buf;
  }
  return out;
}

kernel::NodeOsConfig SystemConfig::node_config() const {
  kernel::NodeOsConfig nc;
  nc.os = os;
  nc.app_cores = app_cores;
  nc.service_cores = service_cores;
  nc.linux_opts.nohz_full = linux_nohz_full;
  nc.linux_opts.thp = linux_thp;
  // With no reserved service cores, application ranks share CPU 0 with the
  // system daemons ("often due to CPU 0 running services and introducing
  // noise", Section III-A).
  nc.linux_opts.service_core_shared = service_cores == 0;
  nc.mckernel_opts.hpc_brk = hpc_brk;
  nc.mckernel_opts.prefer_mcdram = lwk_prefer_mcdram;
  nc.mckernel_opts.demand_fallback = mckernel_demand_fallback;
  nc.mckernel_opts.mpol_shm_premap = mckernel_mpol_shm_premap;
  nc.mckernel_opts.disable_sched_yield = mckernel_disable_sched_yield;
  nc.mos_opts.hpc_brk = hpc_brk;
  nc.mos_opts.prefer_mcdram = lwk_prefer_mcdram;
  nc.mos_opts.partition_mcdram_per_rank = mos_partition_mcdram;
  nc.linux_opts.co_tenant = co_tenant && os == kernel::OsKind::kLinux;
  if (alloc.enabled() && alloc.linux_reclaim_daemon &&
      os == kernel::OsKind::kLinux) {
    nc.linux_opts.alloc_reclaim_rate_hz = alloc.reclaim_rate_hz;
  }
  nc.mckernel_opts.co_tenant_on_linux = co_tenant;
  nc.mos_opts.co_tenant_on_linux = co_tenant;
  return nc;
}

hw::NodeTopology SystemConfig::node_topology() const {
  return mem_mode == MemMode::kSnc4Flat ? hw::knl_snc4_flat() : hw::knl_quadrant_flat();
}

hw::NetworkModel SystemConfig::network() const {
  return user_space_network ? hw::omni_path_user_space() : hw::omni_path_100();
}

runtime::Machine SystemConfig::machine(int nodes) const {
  return runtime::Machine{hw::Cluster{nodes, node_topology(), network()}, node_config()};
}

}  // namespace mkos::core
