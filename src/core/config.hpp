#pragma once
// SystemConfig — the top-level deployment choice an experiment runs under:
// which OS stack, which feature toggles, which memory mode, which fabric.
// This is the public entry point a downstream user starts from.

#include <cstdint>
#include <string>

#include "alloc/spec.hpp"
#include "fault/fault.hpp"
#include "hw/cluster.hpp"
#include "kernel/node.hpp"
#include "runtime/job.hpp"

namespace mkos::core {

enum class MemMode : std::uint8_t { kSnc4Flat, kQuadrantFlat };

struct SystemConfig {
  kernel::OsKind os = kernel::OsKind::kLinux;
  MemMode mem_mode = MemMode::kSnc4Flat;

  int app_cores = 64;
  int service_cores = 4;

  // Linux knobs.
  bool linux_nohz_full = true;
  bool linux_thp = true;

  // LWK knobs.
  bool hpc_brk = true;
  bool lwk_prefer_mcdram = true;
  bool mckernel_demand_fallback = true;
  bool mckernel_mpol_shm_premap = false;
  bool mckernel_disable_sched_yield = false;
  bool mos_partition_mcdram = true;

  // Fabric: first-generation Omni-Path (kernel-involved send path) vs a
  // hypothetical user-space-driven generation (the Section IV outlook).
  bool user_space_network = false;

  /// Multi-tenancy extension: a co-located tenant on every node. On Linux it
  /// shares the application cores; on a multi-kernel it is confined to the
  /// Linux partition — the isolation experiment of the papers the related
  /// work cites ([31], [32]).
  bool co_tenant = false;

  /// Fault injection and recovery (inert by default: all rates zero). Folded
  /// into fingerprint() only when enabled(), so pre-existing configs keep
  /// their cache keys and ledger meta entries.
  fault::Spec resilience;

  /// Kernel-allocator scalability model (inert by default: allocation stays
  /// free). Folded into fingerprint()/digest() only when enabled(), exactly
  /// like `resilience`, so pre-existing cells and cache keys survive.
  alloc::AllocSpec alloc;

  [[nodiscard]] static SystemConfig linux_default();
  [[nodiscard]] static SystemConfig mckernel();
  [[nodiscard]] static SystemConfig mos();
  [[nodiscard]] static SystemConfig for_os(kernel::OsKind os);

  /// Short human label ("McKernel", "Linux", "mOS").
  [[nodiscard]] std::string label() const;

  /// Stable 64-bit fingerprint over every knob above. Two configs compare
  /// equal iff they produce the same fingerprint (field-by-field hash, not a
  /// memory hash — padding and field order changes don't perturb it). The
  /// campaign engine derives cell seeds and cache keys from this, so it must
  /// stay identical across processes and runs.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Canonical rendering of exactly the fields fingerprint() hashes, in
  /// hash order ("os=1 mem=0 cores=64+4 flags=0111010000 res=off"). The
  /// campaign cache stores this next to the 64-bit hash and compares it on
  /// every hit: two configs whose knobs differ can collide on the hash, but
  /// never on the digest, so a collision reads as a miss instead of serving
  /// the wrong cell. Keep in lockstep with fingerprint() — a field added to
  /// one but not the other either defeats collision detection or invalidates
  /// every stored cell.
  [[nodiscard]] std::string digest() const;

  [[nodiscard]] kernel::NodeOsConfig node_config() const;
  [[nodiscard]] hw::NodeTopology node_topology() const;
  [[nodiscard]] hw::NetworkModel network() const;

  /// Assemble the machine an experiment boots.
  [[nodiscard]] runtime::Machine machine(int nodes) const;
};

}  // namespace mkos::core
