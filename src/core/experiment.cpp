#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "alloc/model.hpp"
#include "obs/snapshots.hpp"
#include "runtime/resilience.hpp"
#include "sim/contracts.hpp"

namespace mkos::core {

namespace {

// splitmix64 finalizer: cheap avalanche so sequential inputs (rep indices,
// node counts) land on uncorrelated streams.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// One repetition's figure of merit plus its telemetry snapshot.
struct RepOutcome {
  workloads::AppResult result;
  obs::RunLedger ledger;
};

/// One repetition of a cell with positionally derived seeds. Thread-safe as
/// long as `app` is not shared across concurrent calls.
RepOutcome run_once(workloads::App& app, const SystemConfig& config, int nodes,
                    std::uint64_t cell_fp, int rep) {
  // Fresh machine per repetition: heap state, placements and partition
  // fragmentation must not leak across runs.
  const runtime::Machine machine = config.machine(nodes);
  runtime::Job job(machine, app.spec(nodes), rep_seed(cell_fp, rep, /*stream=*/0));
  // Fault plan on its own positional stream, constructed before setup so
  // MCDRAM denial hooks see placement-time allocations. Declared after `job`
  // (destroyed first: the dtor detaches the hooks it installed).
  std::optional<runtime::ResilienceManager> resil;
  if (config.resilience.enabled()) {
    resil.emplace(config.resilience, job, rep_seed(cell_fp, rep, /*stream=*/2));
    resil->install_memory_faults();
  }
  app.setup(job);
  // Allocator model after setup (its vmem imports must not race placement's
  // carving for the same DDR4 extents) and before the world attaches to it.
  // Draws no randomness: churn costs are a pure function of allocator state.
  std::optional<alloc::NodeAllocModel> alloc_model;
  if (config.alloc.enabled()) {
    alloc_model.emplace(job.node().topo(), job.node().phys(), config.os,
                        config.alloc, job.lane_count());
  }
  runtime::MpiWorld world(job, rep_seed(cell_fp, rep, /*stream=*/1));
  if (resil) world.attach_resilience(&*resil);
  if (alloc_model) world.attach_alloc(&*alloc_model);
  RepOutcome out;
  out.result = app.run(job, world);
  if (alloc_model) alloc_model->drain_lanes();
  // Snapshot after the run so heap/kernel/world counters reflect the whole
  // repetition; per-rep ledgers are merged positionally by the callers.
  obs::record_world(out.ledger, world);
  obs::record_job(out.ledger, job);
  if (resil) obs::record_faults(out.ledger, resil->counters());
  if (alloc_model) obs::record_alloc(out.ledger, alloc_model->counters());
  out.ledger.observe("run.fom", out.result.fom);
  return out;
}

std::vector<int> capped_node_counts(const workloads::App& app, int max_nodes) {
  std::vector<int> counts;
  for (const int nodes : app.node_counts()) {
    if (nodes <= max_nodes) counts.push_back(nodes);
  }
  return counts;
}

std::unique_ptr<workloads::App> registry_app(std::string_view name) {
  auto app = workloads::make_app(name);
  MKOS_EXPECTS(app != nullptr);  // pooled overloads need a registry name
  return app;
}

RunStats collect(const std::vector<RepOutcome>& outcomes) {
  RunStats rs;
  for (const RepOutcome& o : outcomes) {
    rs.fom.add(o.result.fom);
    rs.unit = o.result.unit;
    rs.ledger.merge(o.ledger);  // rep order: positional, thread-count free
  }
  return rs;
}

}  // namespace

std::uint64_t cell_fingerprint(std::string_view app_name, const SystemConfig& config,
                               int nodes, std::uint64_t seed) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : app_name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h = mix64(h ^ config.fingerprint());
  h = mix64(h ^ static_cast<std::uint64_t>(nodes));
  return mix64(h ^ seed);
}

std::uint64_t rep_seed(std::uint64_t cell_fp, int rep, std::uint64_t stream) {
  return mix64(cell_fp + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(rep + 1) +
               (stream << 32));
}

RunStats run_app(workloads::App& app, const SystemConfig& config, int nodes, int reps,
                 std::uint64_t seed) {
  MKOS_EXPECTS(reps >= 1);
  const std::uint64_t fp = cell_fingerprint(app.name(), config, nodes, seed);
  std::vector<RepOutcome> outcomes;
  outcomes.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    outcomes.push_back(run_once(app, config, nodes, fp, rep));
  }
  return collect(outcomes);
}

RunStats run_app(std::string_view app_name, const SystemConfig& config, int nodes,
                 int reps, std::uint64_t seed, sim::TaskPool& pool) {
  MKOS_EXPECTS(reps >= 1);
  registry_app(app_name);  // fail fast on unknown names, before fan-out
  const std::uint64_t fp = cell_fingerprint(app_name, config, nodes, seed);
  std::vector<RepOutcome> outcomes(static_cast<std::size_t>(reps));
  sim::parallel_for(pool, static_cast<std::size_t>(reps), [&](std::size_t rep) {
    // Own App per task: proxies keep per-run scratch, and sharing one across
    // threads would race setup() against run().
    const auto app = registry_app(app_name);
    outcomes[rep] = run_once(*app, config, nodes, fp, static_cast<int>(rep));
  });
  return collect(outcomes);
}

std::vector<ScalingPoint> scaling_sweep(workloads::App& app, const SystemConfig& config,
                                        int reps, std::uint64_t seed, int max_nodes,
                                        obs::RunLedger* ledger) {
  std::vector<ScalingPoint> out;
  for (const int nodes : capped_node_counts(app, max_nodes)) {
    const RunStats rs = run_app(app, config, nodes, reps, seed);
    if (ledger != nullptr) ledger->merge(rs.ledger);
    out.push_back(ScalingPoint{nodes, rs.median(), rs.min(), rs.max()});
  }
  return out;
}

std::vector<ScalingPoint> scaling_sweep(std::string_view app_name,
                                        const SystemConfig& config, int reps,
                                        std::uint64_t seed, sim::TaskPool& pool,
                                        int max_nodes, obs::RunLedger* ledger) {
  MKOS_EXPECTS(reps >= 1);
  const auto probe = registry_app(app_name);
  const std::vector<int> counts = capped_node_counts(*probe, max_nodes);

  // Flatten to (node, rep) tasks for load balance: large-node cells dominate
  // wall time and would serialize a per-node fan-out's tail.
  std::vector<std::vector<RepOutcome>> outcomes(counts.size());
  for (auto& cell : outcomes) cell.resize(static_cast<std::size_t>(reps));
  sim::parallel_for(pool, counts.size() * static_cast<std::size_t>(reps),
                    [&](std::size_t task) {
                      const std::size_t ci = task / static_cast<std::size_t>(reps);
                      const int rep = static_cast<int>(task % static_cast<std::size_t>(reps));
                      const std::uint64_t fp =
                          cell_fingerprint(app_name, config, counts[ci], seed);
                      const auto app = registry_app(app_name);
                      outcomes[ci][rep] = run_once(*app, config, counts[ci], fp, rep);
                    });

  std::vector<ScalingPoint> out;
  out.reserve(counts.size());
  for (std::size_t ci = 0; ci < counts.size(); ++ci) {
    const RunStats rs = collect(outcomes[ci]);
    // Merge after collect so the ledger accumulates in (node, rep) order —
    // identical to the serial overload regardless of task scheduling.
    if (ledger != nullptr) ledger->merge(rs.ledger);
    out.push_back(ScalingPoint{counts[ci], rs.median(), rs.min(), rs.max()});
  }
  return out;
}

std::vector<RelativePoint> relative_to(const std::vector<ScalingPoint>& subject,
                                       const std::vector<ScalingPoint>& baseline) {
  std::vector<RelativePoint> out;
  for (const auto& s : subject) {
    const auto it = std::find_if(baseline.begin(), baseline.end(),
                                 [&](const ScalingPoint& b) { return b.nodes == s.nodes; });
    // A degenerate baseline (zero, negative, NaN or infinite median) would
    // poison every downstream ratio and the headline(); drop the point.
    if (it == baseline.end() || !std::isfinite(it->median) || it->median <= 0.0) continue;
    out.push_back(RelativePoint{s.nodes, s.median / it->median});
  }
  return out;
}

Headline headline(const std::vector<std::vector<RelativePoint>>& curves) {
  sim::Summary all;
  for (const auto& curve : curves) {
    for (const auto& p : curve) all.add(p.ratio);
  }
  Headline h;
  if (!all.empty()) {
    h.median_ratio = all.median();
    h.best_ratio = all.max();
  }
  return h;
}

}  // namespace mkos::core
