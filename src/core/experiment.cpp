#include "core/experiment.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace mkos::core {

namespace {
std::uint64_t mix_seed(std::uint64_t seed, int rep) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(rep + 1);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

RunStats run_app(workloads::App& app, const SystemConfig& config, int nodes, int reps,
                 std::uint64_t seed) {
  MKOS_EXPECTS(reps >= 1);
  RunStats rs;
  for (int rep = 0; rep < reps; ++rep) {
    // Fresh machine per repetition: heap state, placements and partition
    // fragmentation must not leak across runs.
    const runtime::Machine machine = config.machine(nodes);
    runtime::Job job(machine, app.spec(nodes), mix_seed(seed, rep));
    app.setup(job);
    runtime::MpiWorld world(job, mix_seed(seed ^ 0xc0ffee, rep));
    const workloads::AppResult res = app.run(job, world);
    rs.fom.add(res.fom);
    rs.unit = res.unit;
  }
  return rs;
}

std::vector<ScalingPoint> scaling_sweep(workloads::App& app, const SystemConfig& config,
                                        int reps, std::uint64_t seed, int max_nodes) {
  std::vector<ScalingPoint> out;
  for (int nodes : app.node_counts()) {
    if (nodes > max_nodes) continue;
    const RunStats rs = run_app(app, config, nodes, reps, seed + static_cast<std::uint64_t>(nodes));
    out.push_back(ScalingPoint{nodes, rs.median(), rs.min(), rs.max()});
  }
  return out;
}

std::vector<RelativePoint> relative_to(const std::vector<ScalingPoint>& subject,
                                       const std::vector<ScalingPoint>& baseline) {
  std::vector<RelativePoint> out;
  for (const auto& s : subject) {
    const auto it = std::find_if(baseline.begin(), baseline.end(),
                                 [&](const ScalingPoint& b) { return b.nodes == s.nodes; });
    if (it == baseline.end() || it->median == 0.0) continue;
    out.push_back(RelativePoint{s.nodes, s.median / it->median});
  }
  return out;
}

Headline headline(const std::vector<std::vector<RelativePoint>>& curves) {
  sim::Summary all;
  for (const auto& curve : curves) {
    for (const auto& p : curve) all.add(p.ratio);
  }
  Headline h;
  if (!all.empty()) {
    h.median_ratio = all.median();
    h.best_ratio = all.max();
  }
  return h;
}

}  // namespace mkos::core
