#pragma once
// Experiment driver: run an application under a system configuration at a
// node count, repeated with independent noise seeds, reporting the median
// with min/max error bars — the paper's methodology ("We ran most
// applications five times and show the median").
//
// Seeds are positional: every repetition's RNG streams derive from
// hash(app name, SystemConfig::fingerprint(), nodes, campaign seed, rep),
// never from execution order. The serial entry points and the thread-pooled
// overloads therefore produce bit-identical statistics, and the campaign
// cache can key results by the same fingerprint.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "obs/ledger.hpp"
#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"
#include "workloads/app.hpp"

namespace mkos::core {

struct RunStats {
  sim::Summary fom;
  std::string unit;
  /// Telemetry of the cell's repetitions, merged in rep order (positional,
  /// so serial and pooled runs carry identical ledgers).
  obs::RunLedger ledger;

  [[nodiscard]] double median() const { return fom.median(); }
  [[nodiscard]] double min() const { return fom.min(); }
  [[nodiscard]] double max() const { return fom.max(); }
};

/// Stable seed base for one (app, config, nodes) cell under a campaign seed.
/// Identical inputs give identical cells on every run, thread count, and
/// sweep order.
[[nodiscard]] std::uint64_t cell_fingerprint(std::string_view app_name,
                                             const SystemConfig& config, int nodes,
                                             std::uint64_t seed);

/// Seed for one RNG stream of repetition `rep` within a cell. `stream`
/// separates independent consumers (job/machine noise vs MPI world).
[[nodiscard]] std::uint64_t rep_seed(std::uint64_t cell_fp, int rep,
                                     std::uint64_t stream = 0);

/// One (app, config, nodes) cell: `reps` independent runs, serial.
[[nodiscard]] RunStats run_app(workloads::App& app, const SystemConfig& config,
                               int nodes, int reps, std::uint64_t seed);

/// Thread-pooled cell: repetitions fan out as independent tasks, each
/// constructing its own App through the registry (`app_name` must be a
/// registry name). Bit-identical to the serial overload.
[[nodiscard]] RunStats run_app(std::string_view app_name, const SystemConfig& config,
                               int nodes, int reps, std::uint64_t seed,
                               sim::TaskPool& pool);

struct ScalingPoint {
  int nodes = 0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Full node-count sweep at the app's own counts (capped at `max_nodes`).
/// When `ledger` is non-null, every repetition's telemetry is merged into it
/// in (node, rep) order.
[[nodiscard]] std::vector<ScalingPoint> scaling_sweep(workloads::App& app,
                                                      const SystemConfig& config,
                                                      int reps, std::uint64_t seed,
                                                      int max_nodes = 1 << 30,
                                                      obs::RunLedger* ledger = nullptr);

/// Thread-pooled sweep: (node count, repetition) pairs fan out as independent
/// tasks. Bit-identical to the serial overload for the same inputs — including
/// the merged `ledger`, which always accumulates in positional (node, rep)
/// order regardless of task scheduling.
[[nodiscard]] std::vector<ScalingPoint> scaling_sweep(std::string_view app_name,
                                                      const SystemConfig& config,
                                                      int reps, std::uint64_t seed,
                                                      sim::TaskPool& pool,
                                                      int max_nodes = 1 << 30,
                                                      obs::RunLedger* ledger = nullptr);

/// Median relative performance vs a baseline sweep (same node counts).
struct RelativePoint {
  int nodes = 0;
  double ratio = 0.0;  ///< config median / baseline median
};
[[nodiscard]] std::vector<RelativePoint> relative_to(
    const std::vector<ScalingPoint>& subject, const std::vector<ScalingPoint>& baseline);

/// The paper's headline aggregation over a set of relative curves:
/// "a median performance improvement of 9% with some applications as high
/// as 280%". Returns {median ratio, best ratio} over all (app, node) cells.
struct Headline {
  double median_ratio = 0.0;
  double best_ratio = 0.0;
};
[[nodiscard]] Headline headline(const std::vector<std::vector<RelativePoint>>& curves);

}  // namespace mkos::core
