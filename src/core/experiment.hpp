#pragma once
// Experiment driver: run an application under a system configuration at a
// node count, repeated with independent noise seeds, reporting the median
// with min/max error bars — the paper's methodology ("We ran most
// applications five times and show the median").

#include <string>
#include <vector>

#include "core/config.hpp"
#include "sim/stats.hpp"
#include "workloads/app.hpp"

namespace mkos::core {

struct RunStats {
  sim::Summary fom;
  std::string unit;

  [[nodiscard]] double median() const { return fom.median(); }
  [[nodiscard]] double min() const { return fom.min(); }
  [[nodiscard]] double max() const { return fom.max(); }
};

/// One (app, config, nodes) cell: `reps` independent runs.
[[nodiscard]] RunStats run_app(workloads::App& app, const SystemConfig& config,
                               int nodes, int reps, std::uint64_t seed);

struct ScalingPoint {
  int nodes = 0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Full node-count sweep at the app's own counts (capped at `max_nodes`).
[[nodiscard]] std::vector<ScalingPoint> scaling_sweep(workloads::App& app,
                                                      const SystemConfig& config,
                                                      int reps, std::uint64_t seed,
                                                      int max_nodes = 1 << 30);

/// Median relative performance vs a baseline sweep (same node counts).
struct RelativePoint {
  int nodes = 0;
  double ratio = 0.0;  ///< config median / baseline median
};
[[nodiscard]] std::vector<RelativePoint> relative_to(
    const std::vector<ScalingPoint>& subject, const std::vector<ScalingPoint>& baseline);

/// The paper's headline aggregation over a set of relative curves:
/// "a median performance improvement of 9% with some applications as high
/// as 280%". Returns {median ratio, best ratio} over all (app, node) cells.
struct Headline {
  double median_ratio = 0.0;
  double best_ratio = 0.0;
};
[[nodiscard]] Headline headline(const std::vector<std::vector<RelativePoint>>& curves);

}  // namespace mkos::core
