#include "core/obs_glue.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "core/report.hpp"
#include "sim/contracts.hpp"

namespace mkos::core {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

obs::RunLedger bench_ledger(const std::string& bench_id, const std::string& paper_ref,
                            std::uint64_t seed) {
  obs::RunLedger ledger;
  ledger.set_meta("bench", bench_id);
  ledger.set_meta("paper_ref", paper_ref);
  ledger.set_meta("seed", std::to_string(seed));
  return ledger;
}

void record_config(obs::RunLedger& ledger, const SystemConfig& config,
                   const std::string& key) {
  const std::string name = key.empty() ? config.label() : key;
  ledger.set_meta("config." + name, hex64(config.fingerprint()));
}

void record_scaling(obs::RunLedger& ledger, const std::string& series,
                    const std::vector<ScalingPoint>& points) {
  for (const ScalingPoint& p : points) {
    const std::string base = series + ".n" + std::to_string(p.nodes);
    ledger.set_gauge(base + ".median", p.median);
    ledger.set_gauge(base + ".min", p.min);
    ledger.set_gauge(base + ".max", p.max);
  }
}

void record_run_stats(obs::RunLedger& ledger, const std::string& series,
                      const RunStats& stats) {
  for (const double s : stats.fom.samples()) ledger.observe(series, s);
  if (!stats.unit.empty()) ledger.set_meta(series + ".unit", stats.unit);
  ledger.merge(stats.ledger);
}

void record_campaign(obs::RunLedger& ledger, const CampaignTelemetry& telemetry,
                     int threads, const CellStore* store) {
  // Cells and cache hits are functions of the grid alone (positional seeds,
  // deterministic in-run dedup), so they belong to the deterministic block.
  ledger.incr("campaign.cells", telemetry.cells);
  ledger.incr("campaign.cache_hits", telemetry.cache_hits);
  // The store group reflects on-disk state from previous runs: comparators
  // strip `campaign.store.*` alongside the host block. Emitted only when a
  // store is attached so store-less ledgers keep their exact legacy bytes.
  if (store != nullptr) {
    const CellStoreCounters c = store->counters();
    ledger.incr("campaign.store.hits", c.hits);
    ledger.incr("campaign.store.misses", c.misses);
    ledger.incr("campaign.store.writes", c.writes);
    ledger.incr("campaign.store.corrupt", c.corrupt);
    ledger.incr("campaign.store.key_mismatches", c.key_mismatches);
    ledger.incr("campaign.store.bytes_read", c.bytes_read);
    ledger.incr("campaign.store.bytes_written", c.bytes_written);
    ledger.incr("campaign.store.skipped", telemetry.skipped);
  }
  // Scheduler group: steal/claim traffic depends on thread timing and on
  // what sibling shards did — host state, stripped by comparators exactly
  // like campaign.store.*. Gated on a work-stealing pool having run so
  // FIFO-pool ledgers keep their exact legacy bytes.
  if (telemetry.sched_active) {
    ledger.incr("campaign.sched.steals", telemetry.sched_steals);
    ledger.incr("campaign.sched.steal_fails", telemetry.sched_steal_fails);
    ledger.incr("campaign.sched.local_pops", telemetry.sched_local_pops);
    ledger.incr("campaign.sched.claims", telemetry.sched_claims);
    ledger.incr("campaign.sched.claim_races", telemetry.sched_claim_races);
    // The imbalance gauge lives in the host block, not gauges: the ledger's
    // gauges section is part of the deterministic byte-compare surface and
    // --strip-counters only filters counters.
    ledger.set_host("campaign.sched.imbalance",
                    json_number(telemetry.sched_imbalance));
  }
  // Wall time and throughput vary run to run: host block only.
  ledger.set_host("threads", std::to_string(threads));
  ledger.set_host("wall_seconds", json_number(telemetry.wall_seconds));
  ledger.set_host("cells_per_second", json_number(telemetry.cells_per_second()));
  ledger.set_host("cell_wall_ms", obs::histogram_json(telemetry.cell_wall_ms));
}

bool emit(const obs::RunLedger& ledger) {
  const std::string* id = ledger.meta("bench");
  MKOS_EXPECTS(id != nullptr);  // stamp identity with bench_ledger() first
  std::string path = "BENCH_" + *id + ".json";
  // MKOS_BENCH_DIR redirects artifacts out of the CWD (CI runs benches from
  // build/; ad-hoc runs should not litter the repo root). Best-effort
  // directory creation; an unusable dir surfaces as the write warning.
  const char* dir = std::getenv("MKOS_BENCH_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    path = std::string(dir) + "/" + path;
  }
  if (!ledger.write_json(path)) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace mkos::core
