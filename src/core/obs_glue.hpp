#pragma once
// Bench-facing glue between the experiment/campaign layer and the run
// ledger: helpers to stamp bench identity, record sweep results and
// campaign telemetry, and emit the standard BENCH_<id>.json artifact.
//
// Naming: scaling series record as `<series>.n<nodes>.{median,min,max}`
// gauges; campaign telemetry splits into deterministic counters
// (campaign.cells, campaign.cache_hits) and host-only throughput numbers.

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "obs/ledger.hpp"

namespace mkos::core {

/// Fresh ledger stamped with the bench's identity: meta.bench = `bench_id`,
/// meta.paper_ref, and the campaign seed every figure bench uses.
[[nodiscard]] obs::RunLedger bench_ledger(const std::string& bench_id,
                                          const std::string& paper_ref,
                                          std::uint64_t seed);

/// Record a config's fingerprint as meta `config.<key>` = hex fp; the key
/// defaults to the config's label. Pass an explicit key when a bench runs
/// several variants sharing one label (e.g. mOS with hpc_brk toggled).
void record_config(obs::RunLedger& ledger, const SystemConfig& config,
                   const std::string& key = std::string{});

/// Record a scaling sweep as `<series>.n<nodes>.{median,min,max}` gauges.
void record_scaling(obs::RunLedger& ledger, const std::string& series,
                    const std::vector<ScalingPoint>& points);

/// Record one cell's statistics as a summary named `series`, with the
/// unit in meta `<series>.unit`, and merge the cell's own telemetry.
void record_run_stats(obs::RunLedger& ledger, const std::string& series,
                      const RunStats& stats);

/// Campaign runner telemetry: deterministic cell/cache counters, plus the
/// host-only block (threads, wall seconds, cells/s, per-cell wall-time
/// histogram — excluded from byte-identity comparisons).
///
/// With a non-null `store`, additionally records the `campaign.store.*`
/// counter group (hits/misses/writes/corrupt/key_mismatches/bytes_*).
/// These depend on what previous runs left on disk, so — like the host
/// block — comparators strip them; they are only emitted when a store is
/// actually attached, keeping store-less ledgers byte-identical to
/// pre-store builds.
void record_campaign(obs::RunLedger& ledger, const CampaignTelemetry& telemetry,
                     int threads, const CellStore* store = nullptr);

/// Write the ledger to BENCH_<bench_id>.json (the id stamped by
/// bench_ledger). Prints the path on success, a warning on failure.
bool emit(const obs::RunLedger& ledger);

}  // namespace mkos::core
