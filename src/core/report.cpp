#include "core/report.hpp"

#include <algorithm>
#include <cstdio>

namespace mkos::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      out += "| ";
      if (c == 0) {
        out += row[c];
        out.append(pad, ' ');
      } else {
        out.append(pad, ' ');
        out += row[c];
      }
      out += ' ';
    }
    out += "|\n";
  };
  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (const char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  };
  std::string out;
  emit(headers_, out);
  for (const auto& row : rows_) emit(row, out);
  return out;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string fmt_pct(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, ratio * 100.0);
  return buf;
}

namespace {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

JsonObject& JsonObject::number(const std::string& key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  fields_.push_back(json_quote(key) + ": " + buf);
  return *this;
}

JsonObject& JsonObject::integer(const std::string& key, std::int64_t v) {
  fields_.push_back(json_quote(key) + ": " + std::to_string(v));
  return *this;
}

JsonObject& JsonObject::text(const std::string& key, const std::string& v) {
  fields_.push_back(json_quote(key) + ": " + json_quote(v));
  return *this;
}

std::string JsonObject::to_string() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    out += "  " + fields_[i];
    if (i + 1 < fields_.size()) out += ',';
    out += '\n';
  }
  out += "}\n";
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

void print_banner(const std::string& title, const std::string& paper_ref) {
  std::string bar(72, '=');
  std::printf("%s\n%s\n  (%s)\n%s\n", bar.c_str(), title.c_str(), paper_ref.c_str(),
              bar.c_str());
}

}  // namespace mkos::core
