#pragma once
// Bench-harness report surface: tables, number formatting, strict JSON.
//
// The implementations live in sim/format.* (the bottom layer) so the run
// ledger can serialize without an obs → core upward include; this header
// re-exports them under mkos::core, the namespace the experiment driver,
// benches, examples and tests have always used. New lower-layer code should
// include sim/format.hpp directly; core-and-above callers keep this header.

#include "sim/format.hpp"

namespace mkos::core {

using sim::fmt;
using sim::fmt_pct;
using sim::fmt_sci;
using sim::json_number;
using sim::json_quote;
using sim::JsonObject;
using sim::print_banner;
using sim::Table;
using sim::write_text_file;

}  // namespace mkos::core
