#include "fault/fault.hpp"

#include <algorithm>
#include <bit>

#include "sim/contracts.hpp"

namespace mkos::fault {

namespace {

/// FNV-1a over a 64-bit word, byte by byte (matches the SystemConfig style).
std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv_mix(std::uint64_t h, double v) {
  return fnv_mix(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t fnv_mix(std::uint64_t h, sim::TimeNs v) {
  return fnv_mix(h, static_cast<std::uint64_t>(v.ns()));
}

}  // namespace

std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNodeFailStop: return "node_fail_stop";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kDaemonStorm: return "daemon_storm";
    case FaultKind::kIkcDrop: return "ikc_drop";
    case FaultKind::kIkcDelay: return "ikc_delay";
    case FaultKind::kLinuxCrash: return "linux_crash";
    case FaultKind::kMcdramFault: return "mcdram_fault";
    case FaultKind::kCount_: break;
  }
  return "unknown";
}

std::string_view to_string(RecoveryPolicy p) {
  switch (p) {
    case RecoveryPolicy::kNone: return "none";
    case RecoveryPolicy::kRetry: return "retry";
    case RecoveryPolicy::kCheckpointRestart: return "checkpoint";
    case RecoveryPolicy::kFull: return "full";
  }
  return "unknown";
}

bool policy_retries(RecoveryPolicy p) {
  return p == RecoveryPolicy::kRetry || p == RecoveryPolicy::kFull;
}

bool policy_checkpoints(RecoveryPolicy p) {
  return p == RecoveryPolicy::kCheckpointRestart || p == RecoveryPolicy::kFull;
}

bool Spec::enabled() const {
  const bool any_rate = node_fail_rate_hz > 0.0 || straggler_rate_hz > 0.0 ||
                        storm_rate_hz > 0.0 || ikc_drop_rate_hz > 0.0 ||
                        ikc_delay_rate_hz > 0.0 || linux_crash_rate_hz > 0.0 ||
                        mcdram_fail_fraction > 0.0;
  // A checkpointing policy charges its cadence cost even without faults, so
  // it must count as "observable behavior" for fingerprinting purposes.
  const bool ckpt_overhead = policy_checkpoints(policy) && checkpoint_interval.ns() > 0;
  return any_rate || ckpt_overhead;
}

std::uint64_t Spec::fingerprint() const {
  std::uint64_t h = 0x6a09e667f3bcc908ULL;
  h = fnv_mix(h, node_fail_rate_hz);
  h = fnv_mix(h, straggler_rate_hz);
  h = fnv_mix(h, storm_rate_hz);
  h = fnv_mix(h, ikc_drop_rate_hz);
  h = fnv_mix(h, ikc_delay_rate_hz);
  h = fnv_mix(h, linux_crash_rate_hz);
  h = fnv_mix(h, mcdram_fail_fraction);
  h = fnv_mix(h, static_cast<std::uint64_t>(policy));
  h = fnv_mix(h, checkpoint_interval);
  h = fnv_mix(h, checkpoint_cost);
  h = fnv_mix(h, restart_cost);
  h = fnv_mix(h, static_cast<std::uint64_t>(ikc_max_retries));
  h = fnv_mix(h, ikc_backoff_base);
  h = fnv_mix(h, ikc_drop_batch);
  h = fnv_mix(h, ikc_delay_duration);
  h = fnv_mix(h, straggler_factor);
  h = fnv_mix(h, straggler_duration);
  h = fnv_mix(h, redistribute_residual);
  h = fnv_mix(h, redistribution_cost);
  h = fnv_mix(h, storm_duration);
  h = fnv_mix(h, linux_reboot_stall);
  h = fnv_mix(h, proxy_respawn_cost);
  h = fnv_mix(h, plan_salt);
  return h;
}

Plan Plan::generate(const Spec& spec, int nodes, std::uint64_t seed) {
  MKOS_EXPECTS(nodes >= 1);
  Plan plan;
  plan.spec_ = spec;
  plan.nodes_ = nodes;
  plan.seed_ = seed;
  const sim::Rng root(seed ^ (spec.plan_salt * 0x9e3779b97f4a7c15ULL));
  const auto add_process = [&](FaultKind kind, double rate_hz) {
    if (rate_hz <= 0.0) return;
    Process p;
    p.kind = kind;
    p.machine_rate_hz = rate_hz * static_cast<double>(nodes);
    // One stream per kind: arrivals of one kind never shift another's.
    p.rng = root.fork(static_cast<std::uint64_t>(kind) + 1);
    const double dt_s = p.rng.exponential(1.0 / p.machine_rate_hz);
    p.next_at = sim::from_double_ns(dt_s * 1e9);
    plan.processes_.push_back(std::move(p));
  };
  add_process(FaultKind::kNodeFailStop, spec.node_fail_rate_hz);
  add_process(FaultKind::kStraggler, spec.straggler_rate_hz);
  add_process(FaultKind::kDaemonStorm, spec.storm_rate_hz);
  add_process(FaultKind::kIkcDrop, spec.ikc_drop_rate_hz);
  add_process(FaultKind::kIkcDelay, spec.ikc_delay_rate_hz);
  add_process(FaultKind::kLinuxCrash, spec.linux_crash_rate_hz);
  return plan;
}

Plan Plan::scripted(const Spec& spec) {
  Plan plan;
  plan.spec_ = spec;
  return plan;
}

Plan& Plan::add(const FaultEvent& e) {
  pending_.push_back(Scheduled{e, next_seq_++});
  fixed_hash_ = fnv_mix(fixed_hash_, e.at);
  fixed_hash_ = fnv_mix(fixed_hash_, static_cast<std::uint64_t>(e.kind));
  fixed_hash_ = fnv_mix(fixed_hash_, static_cast<std::uint64_t>(e.node));
  fixed_hash_ = fnv_mix(fixed_hash_, e.magnitude);
  fixed_hash_ = fnv_mix(fixed_hash_, e.duration);
  return *this;
}

FaultEvent Plan::materialize(Process& p, sim::TimeNs at) {
  FaultEvent e;
  e.at = at;
  e.kind = p.kind;
  e.node = static_cast<int>(p.rng.uniform_index(static_cast<std::uint64_t>(nodes_)));
  switch (p.kind) {
    case FaultKind::kStraggler:
      e.magnitude = spec_.straggler_factor;
      e.duration = spec_.straggler_duration;
      break;
    case FaultKind::kDaemonStorm:
      e.magnitude = 1.0;
      e.duration = spec_.storm_duration;
      break;
    case FaultKind::kIkcDrop:
      e.magnitude = spec_.ikc_drop_batch;
      break;
    case FaultKind::kIkcDelay:
      e.duration = spec_.ikc_delay_duration;
      break;
    case FaultKind::kLinuxCrash:
      e.duration = spec_.linux_reboot_stall;
      break;
    case FaultKind::kNodeFailStop:
    case FaultKind::kMcdramFault:
    case FaultKind::kCount_:
      break;
  }
  return e;
}

void Plan::extend(sim::TimeNs horizon) {
  if (horizon <= horizon_) return;
  for (Process& p : processes_) {
    while (p.next_at < horizon) {
      pending_.push_back(Scheduled{materialize(p, p.next_at), next_seq_++});
      const double dt_s = p.rng.exponential(1.0 / p.machine_rate_hz);
      p.next_at += sim::from_double_ns(dt_s * 1e9);
    }
  }
  horizon_ = horizon;
}

std::vector<FaultEvent> Plan::take_until(sim::TimeNs until) {
  extend(until);
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const Scheduled& a, const Scheduled& b) {
                     if (a.event.at != b.event.at) return a.event.at < b.event.at;
                     return a.seq < b.seq;
                   });
  std::vector<FaultEvent> out;
  std::size_t taken = 0;
  while (taken < pending_.size() && pending_[taken].event.at < until) {
    out.push_back(pending_[taken].event);
    ++taken;
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(taken));
  return out;
}

std::uint64_t Plan::fingerprint() const {
  std::uint64_t h = spec_.fingerprint();
  h = fnv_mix(h, static_cast<std::uint64_t>(nodes_));
  h = fnv_mix(h, seed_);
  h = fnv_mix(h, static_cast<std::uint64_t>(processes_.size()));
  return fnv_mix(h, fixed_hash_);
}

}  // namespace mkos::fault
