#pragma once
// mkos::fault — deterministic fault-injection plans.
//
// The resilience story of a multi-kernel (Section II: "the Linux side can
// crash or be rebooted while the LWK keeps computing") only becomes
// measurable when disturbances are first-class simulation inputs. A
// fault::Spec declares *rates* (events per node-second of useful progress);
// Plan::generate expands them into a concrete, seed-derived schedule of
// FaultEvents via independent Poisson processes — one forked RNG stream per
// fault kind, so adding a kind never perturbs another kind's arrivals.
//
// Determinism contract: a Plan is a pure function of (Spec, nodes, seed).
// The schedule is lazily extended (take_until) so the horizon follows the
// simulated run without a hard-coded end time, and repeated generation with
// the same inputs yields byte-identical event sequences. An empty Spec
// yields an empty Plan, and the runtime layers are wired so that an empty
// Plan draws no random numbers and charges no time — runs without faults
// are bit-identical to a build without the subsystem.
//
// Fault arrivals are anchored to *progress time* (useful work completed),
// not wall-clock simulated time. Anchoring to elapsed time would compound:
// every restart extends the run, which raises the expected fault count,
// which extends the run again. Progress time bounds the schedule by the
// fault-free horizon, keeping expected fault counts equal across recovery
// policies — exactly what a policy comparison needs.

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mkos::fault {

enum class FaultKind : std::uint8_t {
  kNodeFailStop,  ///< hardware fail-stop: the node leaves the job
  kStraggler,     ///< one node runs `magnitude`x slower for `duration`
  kDaemonStorm,   ///< service-daemon interference burst for `duration`
  kIkcDrop,       ///< `magnitude` IKC request messages are lost
  kIkcDelay,      ///< the IKC channel stalls for `duration`
  kLinuxCrash,    ///< Linux-side kernel crash; an LWK partition survives
  kMcdramFault,   ///< MCDRAM denial probability rises to `magnitude`
  kCount_,
};

[[nodiscard]] std::string_view to_string(FaultKind k);

/// One scheduled disturbance. `at` is a progress timestamp (see the header
/// comment); magnitude and duration are kind-specific (slowdown factor,
/// dropped-message count, denial probability / burst length, reboot stall).
struct FaultEvent {
  sim::TimeNs at{0};
  FaultKind kind = FaultKind::kNodeFailStop;
  int node = 0;
  double magnitude = 0.0;
  sim::TimeNs duration{0};
};

enum class RecoveryPolicy : std::uint8_t {
  kNone,               ///< failures restart the job from scratch
  kRetry,              ///< IKC retry + straggler work redistribution
  kCheckpointRestart,  ///< coordinated checkpoints; restart from the last one
  kFull,               ///< retry + redistribution + checkpoint/restart
};

[[nodiscard]] std::string_view to_string(RecoveryPolicy p);
/// Does the policy retry dropped messages and redistribute straggler work?
[[nodiscard]] bool policy_retries(RecoveryPolicy p);
/// Does the policy take coordinated checkpoints (bounding restart loss)?
[[nodiscard]] bool policy_checkpoints(RecoveryPolicy p);

/// Declarative fault-injection and recovery configuration. All rates are in
/// events per node-second of progress time; zero everywhere (the default)
/// means the subsystem is inert.
struct Spec {
  double node_fail_rate_hz = 0.0;
  double straggler_rate_hz = 0.0;
  double storm_rate_hz = 0.0;
  double ikc_drop_rate_hz = 0.0;
  double ikc_delay_rate_hz = 0.0;
  double linux_crash_rate_hz = 0.0;
  /// Probability that an MCDRAM allocation is denied (setup- and run-time),
  /// forcing the placement layer's spill-to-DDR4 path.
  double mcdram_fail_fraction = 0.0;

  RecoveryPolicy policy = RecoveryPolicy::kNone;
  /// Coordinated checkpoint cadence (0 disables checkpoints even under a
  /// checkpointing policy) and the per-checkpoint coordinated-flush cost.
  sim::TimeNs checkpoint_interval{0};
  sim::TimeNs checkpoint_cost = sim::milliseconds(5);
  /// Relaunch cost paid on every restart, on top of the lost work.
  sim::TimeNs restart_cost = sim::milliseconds(20);

  int ikc_max_retries = 6;
  sim::TimeNs ikc_backoff_base = sim::microseconds(50);
  /// Messages lost per kIkcDrop event and the kIkcDelay stall length.
  double ikc_drop_batch = 4.0;
  sim::TimeNs ikc_delay_duration = sim::microseconds(200);

  double straggler_factor = 3.0;
  sim::TimeNs straggler_duration = sim::milliseconds(40);
  /// Residual slowdown fraction left after work redistribution absorbs a
  /// straggler, and the one-time cost of re-balancing the decomposition.
  double redistribute_residual = 0.25;
  sim::TimeNs redistribution_cost = sim::microseconds(500);

  sim::TimeNs storm_duration = sim::milliseconds(25);
  /// Linux-side reboot stall after a kLinuxCrash (surviving LWKs feel it
  /// scaled by their offload coupling; a Linux node loses everything).
  sim::TimeNs linux_reboot_stall = sim::milliseconds(60);
  sim::TimeNs proxy_respawn_cost = sim::microseconds(150);

  /// Extra entropy folded into Plan::generate, so one (config, seed) cell
  /// can host several independent schedules.
  std::uint64_t plan_salt = 0;

  /// True when the spec can change observable behavior: any fault channel
  /// is live, or a checkpointing policy charges its cadence cost.
  [[nodiscard]] bool enabled() const;

  /// Stable content hash over every knob. Folded into
  /// core::SystemConfig::fingerprint() — but only when enabled(), so
  /// pre-existing configs keep their cache keys and ledger meta entries.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// A materialized, deterministic schedule: fixed events added by hand (tests
/// and declarative scenarios) plus lazily generated Poisson arrivals.
class Plan {
 public:
  /// Empty plan: no events, never draws randomness.
  Plan() = default;

  /// Seed-derived schedule for a `nodes`-node machine. Each fault kind with
  /// a positive rate becomes an independent Poisson process (machine-wide
  /// rate = rate_hz * nodes) on its own forked RNG stream.
  [[nodiscard]] static Plan generate(const Spec& spec, int nodes, std::uint64_t seed);

  /// Empty plan carrying `spec` (recovery knobs, no Poisson processes); fill
  /// it with add(). The declarative path for tests and scripted scenarios.
  [[nodiscard]] static Plan scripted(const Spec& spec);

  /// Append a fixed event. Order among equal timestamps is insertion order.
  Plan& add(const FaultEvent& e);

  [[nodiscard]] bool empty() const { return pending_.empty() && processes_.empty(); }
  [[nodiscard]] const Spec& spec() const { return spec_; }

  /// Pop every event with `at` strictly before `until`, extending the
  /// generated horizon on demand. Successive calls must use non-decreasing
  /// horizons (the injector advances monotonically). Events come back
  /// sorted by (at, generation order).
  [[nodiscard]] std::vector<FaultEvent> take_until(sim::TimeNs until);

  /// Deterministic content hash of the spec, shape, and fixed events.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  /// One Poisson arrival stream (a fault kind with a positive rate).
  struct Process {
    FaultKind kind = FaultKind::kNodeFailStop;
    double machine_rate_hz = 0.0;
    sim::Rng rng{0};
    sim::TimeNs next_at{0};
  };
  struct Scheduled {
    FaultEvent event;
    std::uint64_t seq = 0;  ///< tie-break: FIFO among equal timestamps
  };

  void extend(sim::TimeNs horizon);
  [[nodiscard]] FaultEvent materialize(Process& p, sim::TimeNs at);

  Spec spec_;
  int nodes_ = 1;
  std::uint64_t seed_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fixed_hash_ = 0;
  std::vector<Process> processes_;
  std::vector<Scheduled> pending_;
  sim::TimeNs horizon_{0};
};

/// Tallies of everything the injection/recovery machinery did — the
/// `fault.*` counter group of the run ledger. Deterministic per (seed, plan).
struct Counters {
  std::uint64_t injected = 0;   ///< fault events that fired (incl. denials)
  std::uint64_t detected = 0;   ///< faults the running system felt
  std::uint64_t retried = 0;    ///< IKC send attempts spent on recovery
  std::uint64_t recovered = 0;  ///< faults absorbed by a recovery path

  std::uint64_t node_failures = 0;
  std::uint64_t linux_crashes = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t storms = 0;
  std::uint64_t ikc_dropped = 0;
  std::uint64_t ikc_delays = 0;
  std::uint64_t mcdram_denied = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t restarts = 0;

  std::uint64_t lost_work_ns = 0;      ///< progress redone or abandoned
  std::uint64_t checkpoint_ns = 0;     ///< coordinated-flush overhead
  std::uint64_t backoff_wait_ns = 0;   ///< IKC exponential-backoff waits
  std::uint64_t redistributed_ns = 0;  ///< straggler slowdown absorbed by peers
  std::uint64_t wait_ns = 0;           ///< total extra time charged to the run
};

}  // namespace mkos::fault
