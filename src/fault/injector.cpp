#include "fault/injector.hpp"

#include <algorithm>
#include <utility>

namespace mkos::fault {

Injector::Injector(Plan plan) : plan_(std::move(plan)) {}

const std::vector<FaultEvent>& Injector::advance(sim::TimeNs to) {
  fired_.clear();
  for (const FaultEvent& e : plan_.take_until(to)) {
    // A fixed event may predate the queue clock (added "in the past" of the
    // first advance); clamp so the schedule stays admissible.
    events_.schedule_at(std::max(e.at, events_.now()),
                        [this, e] { fired_.push_back(e); });
  }
  events_.run_until(to);
  activated_ += fired_.size();
  return fired_;
}

}  // namespace mkos::fault
