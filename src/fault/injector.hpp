#pragma once
// The fault injector: activates a Plan's events at simulated timestamps.
//
// The injector owns a sim::EventQueue of its own — the fault timeline is a
// discrete-event system running alongside the analytic per-sync clock
// advance. On every advance(to) the plan's events up to `to` are scheduled
// into the queue and executed in time order (FIFO among equal timestamps,
// the queue's contract), and the batch that fired is handed back to the
// caller. The runtime's recovery layer consumes those batches at
// synchronization boundaries — the points where a bulk-synchronous code
// would actually observe a failure.
//
// advance() is monotone and deterministic: same plan, same sequence of
// horizons, same batches. An empty plan never touches the RNG and returns
// empty batches, which keeps zero-fault runs bit-identical to runs without
// the subsystem compiled in at all.

#include <vector>

#include "fault/fault.hpp"
#include "sim/event_queue.hpp"

namespace mkos::fault {

class Injector {
 public:
  explicit Injector(Plan plan);

  /// Advance the fault timeline to progress time `to`; returns the events
  /// that fired in (time, schedule) order. The returned reference is valid
  /// until the next advance() call.
  [[nodiscard]] const std::vector<FaultEvent>& advance(sim::TimeNs to);

  [[nodiscard]] sim::TimeNs now() const { return events_.now(); }
  [[nodiscard]] std::uint64_t activated() const { return activated_; }
  [[nodiscard]] const Plan& plan() const { return plan_; }

 private:
  Plan plan_;
  sim::EventQueue events_;
  std::vector<FaultEvent> fired_;
  std::uint64_t activated_ = 0;
};

}  // namespace mkos::fault
