#include "hw/cluster.hpp"

#include "hw/knl.hpp"
#include "sim/contracts.hpp"

namespace mkos::hw {

Cluster::Cluster(int node_count, NodeTopology node, NetworkModel network)
    : node_count_(node_count), node_(std::move(node)), network_(std::move(network)) {
  MKOS_EXPECTS(node_count >= 1);
}

sim::Bytes Cluster::total_memory() const {
  sim::Bytes per_node = 0;
  for (const auto& d : node_.domains()) per_node += d.capacity;
  return per_node * static_cast<sim::Bytes>(node_count_);
}

int Cluster::total_cores() const { return node_count_ * node_.core_count(); }

Cluster oakforest_pacs(int node_count) {
  return Cluster{node_count, knl_snc4_flat(), omni_path_100()};
}

}  // namespace mkos::hw
