#pragma once
// A cluster: N identical nodes joined by a network model. This is the
// machine an Experiment boots operating systems onto.

#include "hw/network.hpp"
#include "hw/topology.hpp"

namespace mkos::hw {

class Cluster {
 public:
  Cluster(int node_count, NodeTopology node, NetworkModel network);

  [[nodiscard]] int node_count() const { return node_count_; }
  [[nodiscard]] const NodeTopology& node() const { return node_; }
  [[nodiscard]] const NetworkModel& network() const { return network_; }

  [[nodiscard]] sim::Bytes total_memory() const;
  [[nodiscard]] int total_cores() const;

 private:
  int node_count_;
  NodeTopology node_;
  NetworkModel network_;
};

/// The machine the paper evaluates on: Oakforest-PACS (Fujitsu, 25 PF), KNL
/// SNC-4 flat nodes on 100 Gbit Omni-Path, sized to `node_count` nodes.
[[nodiscard]] Cluster oakforest_pacs(int node_count);

}  // namespace mkos::hw
