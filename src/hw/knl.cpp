#include "hw/knl.hpp"

using mkos::sim::GiB;
using mkos::sim::TimeNs;

namespace mkos::hw {

namespace {

std::vector<Core> knl_cores() {
  std::vector<Core> cores;
  cores.reserve(KnlSpec::kCores);
  for (int c = 0; c < KnlSpec::kCores; ++c) {
    // 68 cores across 4 quadrants -> 17 per quadrant. (Real SNC-4 tiles are
    // slightly uneven; the even split preserves every policy decision.)
    cores.push_back(Core{c, c / 17, KnlSpec::kSmtPerCore});
  }
  return cores;
}

}  // namespace

NodeTopology knl_snc4_flat() {
  std::vector<MemoryDomain> domains;
  for (int q = 0; q < 4; ++q) {
    domains.push_back(MemoryDomain{q, MemKind::kDdr4, KnlSpec::kDdr4Total / 4,
                                   KnlSpec::kDdr4Gbps / 4, TimeNs{130}, q});
  }
  for (int q = 0; q < 4; ++q) {
    domains.push_back(MemoryDomain{4 + q, MemKind::kMcdram, KnlSpec::kMcdramTotal / 4,
                                   KnlSpec::kMcdramGbps / 4, TimeNs{155}, q});
  }
  // SLIT distances as Linux reports them on SNC-4 KNL: local DDR 10, remote
  // DDR 21, local MCDRAM 31, remote MCDRAM 41. MCDRAM being "farther" than
  // remote DDR4 is exactly why naive NUMA fallback ordering avoids it.
  std::vector<std::vector<int>> dist(8, std::vector<int>(8, 0));
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      const bool a_hbm = a >= 4;
      const bool b_hbm = b >= 4;
      const int qa = a % 4;
      const int qb = b % 4;
      if (a == b) {
        dist[a][b] = a_hbm ? 31 : 10;  // MCDRAM has no CPUs: min distance 31
      } else if (!b_hbm) {
        dist[a][b] = qa == qb ? 10 : 21;
      } else {
        dist[a][b] = qa == qb ? 31 : 41;
      }
    }
  }
  return NodeTopology{"knl-snc4-flat", knl_cores(), std::move(domains), std::move(dist)};
}

NodeTopology knl_quadrant_flat() {
  std::vector<MemoryDomain> domains{
      MemoryDomain{0, MemKind::kDdr4, KnlSpec::kDdr4Total, KnlSpec::kDdr4Gbps, TimeNs{130}, 0},
      MemoryDomain{1, MemKind::kMcdram, KnlSpec::kMcdramTotal, KnlSpec::kMcdramGbps, TimeNs{155}, 0},
  };
  std::vector<std::vector<int>> dist{{10, 31}, {31, 31}};
  std::vector<Core> cores;
  cores.reserve(KnlSpec::kCores);
  for (int c = 0; c < KnlSpec::kCores; ++c) {
    cores.push_back(Core{c, 0, KnlSpec::kSmtPerCore});
  }
  return NodeTopology{"knl-quadrant-flat", std::move(cores), std::move(domains), std::move(dist)};
}

}  // namespace mkos::hw
