#pragma once
// Intel Xeon Phi 7250 "Knights Landing" node presets, modeled after the
// Oakforest-PACS compute node used throughout the paper's evaluation:
// 68 cores x 4 hardware threads, 16 GB on-package MCDRAM, 96 GB DDR4.
//
// Two memory modes matter for the reproduction:
//  * SNC-4 flat: MCDRAM and DDR4 each split into four NUMA domains (eight
//    total). Highest hardware performance, but Linux's one-preferred-domain
//    NUMA policy cannot express "all MCDRAM then spill to DDR4".
//  * Quadrant flat: one DDR4 domain + one MCDRAM domain; `numactl -p` works.

#include "hw/topology.hpp"

namespace mkos::hw {

/// SNC-4 flat mode: domains 0..3 are DDR4 (one per quadrant), 4..7 MCDRAM.
[[nodiscard]] NodeTopology knl_snc4_flat();

/// Quadrant flat mode: domain 0 is DDR4, domain 1 is MCDRAM.
[[nodiscard]] NodeTopology knl_quadrant_flat();

/// Per-node capacities used by the presets (exposed for tests/benches).
struct KnlSpec {
  static constexpr int kCores = 68;
  static constexpr int kSmtPerCore = 4;
  static constexpr sim::Bytes kMcdramTotal = 16 * sim::GiB;
  static constexpr sim::Bytes kDdr4Total = 96 * sim::GiB;
  static constexpr double kMcdramGbps = 480.0;  // aggregate stream
  static constexpr double kDdr4Gbps = 90.0;     // aggregate stream
};

}  // namespace mkos::hw
