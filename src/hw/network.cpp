#include "hw/network.hpp"

#include <cmath>

#include "sim/contracts.hpp"

namespace mkos::hw {

sim::TimeNs NetworkModel::wire_time(sim::Bytes bytes, int hops) const {
  MKOS_EXPECTS(hops >= 0);
  const double transfer_ns =
      static_cast<double>(bytes) / (bandwidth_gbps * 1e9) * 1e9;  // GB/s -> ns
  sim::TimeNs t = base_latency + per_hop_latency * hops + sim::from_double_ns(transfer_ns);
  if (bytes > eager_threshold) t += rendezvous_overhead;
  return t;
}

int NetworkModel::hop_count(int node_a, int node_b, int total_nodes) const {
  MKOS_EXPECTS(total_nodes >= 1);
  if (node_a == node_b) return 0;
  // Folded Clos with radix-r switches: nodes under the same leaf reach each
  // other in 1 hop; otherwise the tree depth determines the hop count.
  const int per_leaf = switch_radix / 2;
  if (node_a / per_leaf == node_b / per_leaf) return 1;
  int levels = 1;
  double reach = per_leaf;
  while (reach < total_nodes) {
    reach *= switch_radix / 2;
    ++levels;
  }
  return 2 * levels - 1;
}

sim::TimeNs NetworkModel::message_time(sim::Bytes bytes, int node_a, int node_b,
                                       int total_nodes) const {
  return wire_time(bytes, hop_count(node_a, node_b, total_nodes));
}

NetworkModel omni_path_100() { return NetworkModel{}; }

NetworkModel omni_path_user_space() {
  NetworkModel net;
  net.name = "omni-path-bypass";
  net.kernel_involved_ops = 0.0;
  return net;
}

}  // namespace mkos::hw
