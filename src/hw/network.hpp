#pragma once
// Interconnect model (Intel Omni-Path class fabric).
//
// An alpha-beta cost model over a folded-Clos (fat-tree) hop estimate. The
// property the paper's LAMMPS result hinges on is captured explicitly:
// `kernel_involved_ops` — the first-generation Omni-Path PSM2 path issues
// system calls on the hfi1 device file for certain send operations, so on a
// multi-kernel those calls are *offloaded* (IKC round trip on McKernel,
// thread migration on mOS), adding latency and reducing effective bandwidth.

#include <string>

#include "sim/time.hpp"
#include "sim/units.hpp"

namespace mkos::hw {

struct NetworkModel {
  std::string name = "omni-path-100";

  sim::TimeNs base_latency{900};        ///< injection-to-delivery, zero hops
  sim::TimeNs per_hop_latency{100};     ///< per switch traversal
  double bandwidth_gbps = 12.5;         ///< 100 Gbit/s link
  sim::Bytes eager_threshold = 16 * sim::KiB;  ///< rendezvous handshake beyond
  sim::TimeNs rendezvous_overhead{1500};

  /// Fraction of message operations that enter the kernel (device-file
  /// syscalls). 0 for a pure user-space fabric (e.g. a hypothetical
  /// kernel-bypass generation), > 0 for first-generation Omni-Path.
  double kernel_involved_ops = 1.0;

  /// Radix used for the hop-count estimate of the folded Clos.
  int switch_radix = 48;

  /// Pure wire time of an N-byte message between two nodes, excluding any
  /// OS involvement (the kernel prices that separately).
  [[nodiscard]] sim::TimeNs wire_time(sim::Bytes bytes, int hops) const;

  /// Hop estimate between two distinct nodes of a `total_nodes` machine.
  [[nodiscard]] int hop_count(int node_a, int node_b, int total_nodes) const;

  /// Convenience: wire time with the hop estimate folded in.
  [[nodiscard]] sim::TimeNs message_time(sim::Bytes bytes, int node_a, int node_b,
                                         int total_nodes) const;
};

/// The Oakforest-PACS fabric: 100 Gbit Omni-Path, full bisection fat-tree,
/// kernel-involved send path (paper Section IV, LAMMPS discussion).
[[nodiscard]] NetworkModel omni_path_100();

/// A kernel-bypass variant of the same fabric ("most high-performance
/// networks are usually driven entirely from user-space") — used by the
/// ablation bench to show LAMMPS would not regress on such hardware.
[[nodiscard]] NetworkModel omni_path_user_space();

}  // namespace mkos::hw
