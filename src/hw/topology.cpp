#include "hw/topology.hpp"

#include <algorithm>

namespace mkos::hw {

NodeTopology::NodeTopology(std::string name, std::vector<Core> cores,
                           std::vector<MemoryDomain> domains,
                           std::vector<std::vector<int>> distances)
    : name_(std::move(name)),
      cores_(std::move(cores)),
      domains_(std::move(domains)),
      distances_(std::move(distances)) {
  MKOS_EXPECTS(!cores_.empty());
  MKOS_EXPECTS(!domains_.empty());
  MKOS_EXPECTS(distances_.size() == domains_.size());
  for (const auto& row : distances_) MKOS_EXPECTS(row.size() == domains_.size());
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    MKOS_EXPECTS(domains_[i].id == static_cast<DomainId>(i));
  }
  int max_q = 0;
  for (const auto& c : cores_) max_q = std::max(max_q, c.quadrant);
  for (const auto& d : domains_) max_q = std::max(max_q, d.quadrant);
  quadrants_ = max_q + 1;
}

const Core& NodeTopology::core(CoreId id) const {
  MKOS_EXPECTS(id >= 0 && id < core_count());
  return cores_[static_cast<std::size_t>(id)];
}

const MemoryDomain& NodeTopology::domain(DomainId id) const {
  MKOS_EXPECTS(id >= 0 && id < static_cast<DomainId>(domains_.size()));
  return domains_[static_cast<std::size_t>(id)];
}

int NodeTopology::distance(DomainId a, DomainId b) const {
  MKOS_EXPECTS(a >= 0 && a < static_cast<DomainId>(domains_.size()));
  MKOS_EXPECTS(b >= 0 && b < static_cast<DomainId>(domains_.size()));
  return distances_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

std::vector<DomainId> NodeTopology::domains_of_kind(MemKind kind) const {
  std::vector<DomainId> out;
  for (const auto& d : domains_) {
    if (d.kind == kind) out.push_back(d.id);
  }
  return out;
}

std::vector<DomainId> NodeTopology::domains_of_quadrant(int quadrant) const {
  std::vector<DomainId> out;
  for (const auto& d : domains_) {
    if (d.quadrant == quadrant) out.push_back(d.id);
  }
  return out;
}

DomainId NodeTopology::domain_in_quadrant(int quadrant, MemKind kind) const {
  for (const auto& d : domains_) {
    if (d.quadrant == quadrant && d.kind == kind) return d.id;
  }
  return -1;
}

std::vector<DomainId> NodeTopology::fallback_order(int quadrant) const {
  DomainId home = domain_in_quadrant(quadrant, MemKind::kDdr4);
  if (home < 0) home = 0;
  std::vector<DomainId> order;
  order.reserve(domains_.size());
  for (const auto& d : domains_) order.push_back(d.id);
  std::sort(order.begin(), order.end(), [&](DomainId a, DomainId b) {
    const int da = distance(home, a);
    const int db = distance(home, b);
    if (da != db) return da < db;
    return a < b;
  });
  return order;
}

sim::Bytes NodeTopology::total_capacity(MemKind kind) const {
  sim::Bytes total = 0;
  for (const auto& d : domains_) {
    if (d.kind == kind) total += d.capacity;
  }
  return total;
}

double NodeTopology::total_bandwidth_gbps(MemKind kind) const {
  double total = 0.0;
  for (const auto& d : domains_) {
    if (d.kind == kind) total += d.stream_gbps;
  }
  return total;
}

}  // namespace mkos::hw
