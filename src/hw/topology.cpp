#include "hw/topology.hpp"

#include <algorithm>

namespace mkos::hw {

NodeTopology::NodeTopology(std::string name, std::vector<Core> cores,
                           std::vector<MemoryDomain> domains,
                           std::vector<std::vector<int>> distances)
    : name_(std::move(name)),
      cores_(std::move(cores)),
      domains_(std::move(domains)),
      distances_(std::move(distances)) {
  MKOS_EXPECTS(!cores_.empty());
  MKOS_EXPECTS(!domains_.empty());
  MKOS_EXPECTS(distances_.size() == domains_.size());
  for (const auto& row : distances_) MKOS_EXPECTS(row.size() == domains_.size());
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    MKOS_EXPECTS(domains_[i].id == static_cast<DomainId>(i));
  }
  int max_q = 0;
  for (const auto& c : cores_) max_q = std::max(max_q, c.quadrant);
  for (const auto& d : domains_) max_q = std::max(max_q, d.quadrant);
  quadrants_ = max_q + 1;

  for (const MemKind kind : {MemKind::kMcdram, MemKind::kDdr4}) {
    const std::size_t k = kind_index(kind);
    for (const auto& d : domains_) {
      if (d.kind != kind) continue;
      kind_domains_[k].push_back(d.id);
      capacity_by_kind_[k] += d.capacity;
      bandwidth_by_kind_[k] += d.stream_gbps;
    }
  }
  quadrant_domains_.resize(static_cast<std::size_t>(quadrants_));
  in_quadrant_.assign(static_cast<std::size_t>(quadrants_), {-1, -1});
  for (const auto& d : domains_) {
    quadrant_domains_[static_cast<std::size_t>(d.quadrant)].push_back(d.id);
    auto& slots = in_quadrant_[static_cast<std::size_t>(d.quadrant)];
    if (slots[kind_index(d.kind)] < 0) slots[kind_index(d.kind)] = d.id;
  }
  fallback_.reserve(static_cast<std::size_t>(quadrants_));
  for (int q = 0; q < quadrants_; ++q) {
    DomainId home = domain_in_quadrant(q, MemKind::kDdr4);
    if (home < 0) home = 0;
    std::vector<DomainId> order;
    order.reserve(domains_.size());
    for (const auto& d : domains_) order.push_back(d.id);
    std::sort(order.begin(), order.end(), [&](DomainId a, DomainId b) {
      const int da = distance(home, a);
      const int db = distance(home, b);
      if (da != db) return da < db;
      return a < b;
    });
    fallback_.push_back(std::move(order));
  }
  kind_major_.resize(static_cast<std::size_t>(quadrants_));
  fallback_from_.resize(static_cast<std::size_t>(quadrants_));
  for (int q = 0; q < quadrants_; ++q) {
    const auto qi = static_cast<std::size_t>(q);
    for (const MemKind first : {MemKind::kMcdram, MemKind::kDdr4}) {
      const MemKind second = first == MemKind::kMcdram ? MemKind::kDdr4 : MemKind::kMcdram;
      std::vector<DomainId>& order = kind_major_[qi][kind_index(first)];
      for (const MemKind kind : {first, second}) {
        const DomainId local = domain_in_quadrant(q, kind);
        if (local >= 0) order.push_back(local);
        for (const DomainId d : kind_domains_[kind_index(kind)]) {
          if (d != local) order.push_back(d);
        }
      }
    }
    fallback_from_[qi].resize(domains_.size());
    for (std::size_t h = 0; h < domains_.size(); ++h) {
      std::vector<DomainId>& order = fallback_from_[qi][h];
      order.push_back(static_cast<DomainId>(h));
      for (const DomainId d : fallback_[qi]) {
        if (d != static_cast<DomainId>(h)) order.push_back(d);
      }
    }
  }
}

int NodeTopology::distance(DomainId a, DomainId b) const {
  MKOS_EXPECTS(a >= 0 && a < static_cast<DomainId>(domains_.size()));
  MKOS_EXPECTS(b >= 0 && b < static_cast<DomainId>(domains_.size()));
  return distances_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

}  // namespace mkos::hw
