#pragma once
// Node hardware model: cores, hardware threads, and NUMA memory domains.
//
// This is the resource inventory every kernel model partitions and every
// memory policy places pages into. It deliberately carries exactly the
// attributes the paper's mechanisms depend on: domain kind (MCDRAM vs DDR4),
// capacity, stream bandwidth, latency, the NUMA distance matrix Linux uses
// for fallback ordering, and the core <-> quadrant affinity SNC-4 exposes.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"

namespace mkos::hw {

enum class MemKind : std::uint8_t { kMcdram, kDdr4 };

[[nodiscard]] constexpr const char* to_string(MemKind k) {
  return k == MemKind::kMcdram ? "MCDRAM" : "DDR4";
}

using DomainId = int;
using CoreId = int;

struct MemoryDomain {
  DomainId id = 0;
  MemKind kind = MemKind::kDdr4;
  sim::Bytes capacity = 0;
  double stream_gbps = 0.0;      ///< sustainable bandwidth, GB/s
  sim::TimeNs load_latency{0};   ///< idle load-to-use latency
  int quadrant = 0;              ///< SNC cluster this domain belongs to
};

struct Core {
  CoreId id = 0;
  int quadrant = 0;
  int smt_threads = 4;
};

class NodeTopology {
 public:
  NodeTopology(std::string name, std::vector<Core> cores,
               std::vector<MemoryDomain> domains,
               std::vector<std::vector<int>> distances);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int core_count() const { return static_cast<int>(cores_.size()); }
  [[nodiscard]] int quadrant_count() const { return quadrants_; }
  [[nodiscard]] const std::vector<Core>& cores() const { return cores_; }
  [[nodiscard]] const Core& core(CoreId id) const;
  [[nodiscard]] const std::vector<MemoryDomain>& domains() const { return domains_; }
  [[nodiscard]] const MemoryDomain& domain(DomainId id) const;

  /// NUMA distance in Linux's SLIT convention (local == 10).
  [[nodiscard]] int distance(DomainId a, DomainId b) const;

  [[nodiscard]] std::vector<DomainId> domains_of_kind(MemKind kind) const;
  [[nodiscard]] std::vector<DomainId> domains_of_quadrant(int quadrant) const;

  /// The domain of `kind` in the given quadrant, or -1 if none.
  [[nodiscard]] DomainId domain_in_quadrant(int quadrant, MemKind kind) const;

  /// Domains sorted by distance from the DDR4 domain of `quadrant`
  /// (ties broken by id) — the order Linux's zonelist fallback walks.
  [[nodiscard]] std::vector<DomainId> fallback_order(int quadrant) const;

  [[nodiscard]] sim::Bytes total_capacity(MemKind kind) const;
  [[nodiscard]] double total_bandwidth_gbps(MemKind kind) const;

 private:
  std::string name_;
  std::vector<Core> cores_;
  std::vector<MemoryDomain> domains_;
  std::vector<std::vector<int>> distances_;
  int quadrants_ = 1;
};

}  // namespace mkos::hw
