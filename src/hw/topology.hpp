#pragma once
// Node hardware model: cores, hardware threads, and NUMA memory domains.
//
// This is the resource inventory every kernel model partitions and every
// memory policy places pages into. It deliberately carries exactly the
// attributes the paper's mechanisms depend on: domain kind (MCDRAM vs DDR4),
// capacity, stream bandwidth, latency, the NUMA distance matrix Linux uses
// for fallback ordering, and the core <-> quadrant affinity SNC-4 exposes.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"

namespace mkos::hw {

enum class MemKind : std::uint8_t { kMcdram, kDdr4 };

[[nodiscard]] constexpr const char* to_string(MemKind k) {
  return k == MemKind::kMcdram ? "MCDRAM" : "DDR4";
}

using DomainId = int;
using CoreId = int;

struct MemoryDomain {
  DomainId id = 0;
  MemKind kind = MemKind::kDdr4;
  sim::Bytes capacity = 0;
  double stream_gbps = 0.0;      ///< sustainable bandwidth, GB/s
  sim::TimeNs load_latency{0};   ///< idle load-to-use latency
  int quadrant = 0;              ///< SNC cluster this domain belongs to
};

struct Core {
  CoreId id = 0;
  int quadrant = 0;
  int smt_threads = 4;
};

class NodeTopology {
 public:
  NodeTopology(std::string name, std::vector<Core> cores,
               std::vector<MemoryDomain> domains,
               std::vector<std::vector<int>> distances);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int core_count() const { return static_cast<int>(cores_.size()); }
  [[nodiscard]] int quadrant_count() const { return quadrants_; }
  [[nodiscard]] const std::vector<Core>& cores() const { return cores_; }
  [[nodiscard]] const Core& core(CoreId id) const {
    MKOS_EXPECTS(id >= 0 && id < core_count());
    return cores_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<MemoryDomain>& domains() const { return domains_; }
  [[nodiscard]] const MemoryDomain& domain(DomainId id) const {
    MKOS_EXPECTS(id >= 0 && id < static_cast<DomainId>(domains_.size()));
    return domains_[static_cast<std::size_t>(id)];
  }

  /// NUMA distance in Linux's SLIT convention (local == 10).
  [[nodiscard]] int distance(DomainId a, DomainId b) const;

  // The topology is immutable after construction, so every derived lookup
  // below is precomputed once in the constructor and served by reference.
  // Placement and heap code query them per fault / per carve, which made
  // the build-a-vector-per-call versions a top allocation source.

  [[nodiscard]] const std::vector<DomainId>& domains_of_kind(MemKind kind) const {
    return kind_domains_[kind_index(kind)];
  }
  [[nodiscard]] const std::vector<DomainId>& domains_of_quadrant(int quadrant) const {
    MKOS_EXPECTS(quadrant >= 0 && quadrant < quadrants_);
    return quadrant_domains_[static_cast<std::size_t>(quadrant)];
  }

  /// The domain of `kind` in the given quadrant, or -1 if none.
  [[nodiscard]] DomainId domain_in_quadrant(int quadrant, MemKind kind) const {
    MKOS_EXPECTS(quadrant >= 0 && quadrant < quadrants_);
    return in_quadrant_[static_cast<std::size_t>(quadrant)][kind_index(kind)];
  }

  /// Domains sorted by distance from the DDR4 domain of `quadrant`
  /// (ties broken by id) — the order Linux's zonelist fallback walks.
  [[nodiscard]] const std::vector<DomainId>& fallback_order(int quadrant) const {
    MKOS_EXPECTS(quadrant >= 0 && quadrant < quadrants_);
    return fallback_[static_cast<std::size_t>(quadrant)];
  }

  /// Domains of `first` kind (home-quadrant domain leading, then the rest of
  /// that kind), followed by the other kind in the same shape — the LWK
  /// MCDRAM-first spill order when `first` is kMcdram.
  [[nodiscard]] const std::vector<DomainId>& kind_major_order(int quadrant, MemKind first) const {
    MKOS_EXPECTS(quadrant >= 0 && quadrant < quadrants_);
    return kind_major_[static_cast<std::size_t>(quadrant)][kind_index(first)];
  }

  /// fallback_order(quadrant) rotated so `head` leads — the zonelist a
  /// Preferred-policy first touch walks.
  [[nodiscard]] const std::vector<DomainId>& fallback_order_from(int quadrant,
                                                                 DomainId head) const {
    MKOS_EXPECTS(quadrant >= 0 && quadrant < quadrants_);
    MKOS_EXPECTS(head >= 0 && head < static_cast<DomainId>(domains_.size()));
    return fallback_from_[static_cast<std::size_t>(quadrant)][static_cast<std::size_t>(head)];
  }

  [[nodiscard]] sim::Bytes total_capacity(MemKind kind) const {
    return capacity_by_kind_[kind_index(kind)];
  }
  [[nodiscard]] double total_bandwidth_gbps(MemKind kind) const {
    return bandwidth_by_kind_[kind_index(kind)];
  }

 private:
  static constexpr std::size_t kind_index(MemKind kind) {
    return kind == MemKind::kMcdram ? 0 : 1;
  }

  std::string name_;
  std::vector<Core> cores_;
  std::vector<MemoryDomain> domains_;
  std::vector<std::vector<int>> distances_;
  int quadrants_ = 1;
  std::array<std::vector<DomainId>, 2> kind_domains_;
  std::vector<std::vector<DomainId>> quadrant_domains_;
  std::vector<std::vector<DomainId>> fallback_;
  std::vector<std::array<std::vector<DomainId>, 2>> kind_major_;
  std::vector<std::vector<std::vector<DomainId>>> fallback_from_;
  std::vector<std::array<DomainId, 2>> in_quadrant_;
  std::array<sim::Bytes, 2> capacity_by_kind_{};
  std::array<double, 2> bandwidth_by_kind_{};
};

}  // namespace mkos::hw
