#include "kernel/fusedos.hpp"

namespace mkos::kernel {

namespace {
mem::MemCostModel cnk_mem_costs() {
  // CNK-style static mapping: trivial in-stub accounting, but the calls
  // that *perform* it run in the CL proxy.
  mem::MemCostModel c;
  // brk()/mmap() are *offloaded* in FusedOS: the per-call entry here is the
  // full stub -> CL round trip, not a kernel trap.
  c.syscall_entry = sim::TimeNs{5000};
  c.fault_4k = sim::TimeNs{800};
  c.fault_large = sim::TimeNs{1200};
  c.pte_per_page = sim::TimeNs{12};
  c.contention_slope = 0.04;
  return c;
}
}  // namespace

FusedOs::FusedOs(const hw::NodeTopology& topo, mem::PhysMemory& phys, IkcChannel channel)
    : Kernel(topo, phys),
      channel_(channel),
      noise_(noise_lwk()),  // CNK heritage: the quietest cores in the study
      sched_(SchedulerModel::lwk_coop(false)),
      fs_(pseudofs_mckernel()),  // CL reimplements a partition-reflecting subset
      mem_costs_(cnk_mem_costs()) {}

Disposition FusedOs::disposition(Sys s) const {
  switch (s) {
    // Only the cheapest state reads stay in the user-level stub.
    case Sys::kGetpid: case Sys::kGettid:
    case Sys::kGettimeofday: case Sys::kClockGettime:
      return Disposition::kLocal;
    case Sys::kFork: case Sys::kVfork:
      return Disposition::kUnsupported;  // CNK functionality only
    case Sys::kMovePages: case Sys::kMigratePages: case Sys::kMremap:
    case Sys::kPtrace:
      return Disposition::kPartial;
    default:
      // "a stub that offloads all system calls" — including brk and mmap.
      return Disposition::kOffloaded;
  }
}

bool FusedOs::capable(Capability c) const {
  switch (c) {
    case Capability::kForkFull: return false;
    case Capability::kPtraceFull: return false;
    case Capability::kPtraceBasic: return true;
    case Capability::kBrkShrinkReleases: return false;  // CNK-style static heap
    case Capability::kSignalsFull: return true;
    case Capability::kPerfCounters: return true;
    default: return false;
  }
}

MmapRet FusedOs::sys_mmap(Process& p, sim::Bytes length, mem::VmaKind kind,
                          mem::MemPolicy policy) {
  count_call(Disposition::kOffloaded);
  if (length == 0) return {kEINVAL, offload_cost(64), nullptr};
  mem::Vma& vma = p.address_space().map(length, kind, policy);
  mem::PlaceRequest req;
  req.bytes = length;
  req.policy = policy.mode == mem::PolicyMode::kDefault ? p.mempolicy() : policy;
  req.home_quadrant = p.home_quadrant();
  req.prefer_mcdram = true;
  req.use_large_pages = true;  // CNK maps statically with big TLB entries
  vma.policy = req.policy;
  const mem::PlaceResult pr = mem::place_lwk(phys_, topo_, mem_costs_, req);
  vma.placement = pr.placement;
  vma.extents = pr.extents;
  // The mapping work itself executed in the CL proxy.
  return {pr.err, offload_cost(128) + pr.map_cost, &vma};
}

sim::TimeNs FusedOs::local_syscall_cost() const {
  return sim::TimeNs{300};  // the stub's dispatch
}

sim::TimeNs FusedOs::offload_cost(sim::Bytes payload) const {
  // Stub trap + message to CL + CL handling (CL is a user-level process:
  // cheaper entry than a Linux syscall, but it must often re-enter Linux).
  return local_syscall_cost() + channel_.offload_round_trip(64 + payload, 64) +
         sim::TimeNs{1400};
}

sim::TimeNs FusedOs::network_syscall_overhead() const { return offload_cost(512); }

std::unique_ptr<mem::HeapEngine> FusedOs::make_heap(Process& p) {
  // CNK-style: statically grown, physically backed, shrinks ignored — the
  // original template for the multi-kernels' HPC brk().
  mem::LwkHeapOptions opt;
  opt.hpc_mode = true;
  opt.prefer_mcdram = true;
  opt.zero_first_4k_only = false;  // CNK zeroes fully at allocation
  return std::make_unique<mem::LwkHeap>(phys_, topo_, mem_costs_, opt, p.home_quadrant());
}

}  // namespace mkos::kernel
