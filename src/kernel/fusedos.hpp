#pragma once
// FusedOS-style kernel model (related work, paper Section V-C).
//
// "FusedOS was the first system to combine Linux with an LWK ... Contrary
// to mOS and McKernel, FusedOS runs the LWK at user level. The kernel code
// on application CPU cores is simply a stub that offloads all system calls
// to a corresponding user-level proxy process called CL ... FusedOS
// provides the same functionality with the Blue Gene CNK from which CL was
// derived. The FusedOS work was the first to demonstrate that Linux noise
// can be isolated to the Linux cores."
//
// Modeled consequences: CNK-grade noise isolation and static upfront memory
// mapping (large pages, no faults) — but *every* system call, including the
// memory calls the multi-kernels keep local, crosses to the CL proxy. The
// design-space bench uses this to show why mOS/McKernel implement the
// performance-sensitive calls inside the LWK.

#include "kernel/ikc.hpp"
#include "kernel/kernel.hpp"

namespace mkos::kernel {

class FusedOs final : public Kernel {
 public:
  FusedOs(const hw::NodeTopology& topo, mem::PhysMemory& phys, IkcChannel channel);

  [[nodiscard]] OsKind kind() const override { return OsKind::kFusedOs; }
  [[nodiscard]] std::string_view name() const override { return "FusedOS"; }
  [[nodiscard]] Disposition disposition(Sys s) const override;
  [[nodiscard]] bool capable(Capability c) const override;

  [[nodiscard]] MmapRet sys_mmap(Process& p, sim::Bytes length, mem::VmaKind kind,
                                 mem::MemPolicy policy) override;

  [[nodiscard]] sim::TimeNs local_syscall_cost() const override;
  [[nodiscard]] sim::TimeNs offload_cost(sim::Bytes payload) const override;
  [[nodiscard]] sim::TimeNs network_syscall_overhead() const override;
  [[nodiscard]] double network_bw_factor() const override { return 0.80; }

  [[nodiscard]] const NoiseModel& noise() const override { return noise_; }
  [[nodiscard]] const SchedulerModel& scheduler_model() const override { return sched_; }
  [[nodiscard]] const PseudoFs& pseudofs() const override { return fs_; }
  [[nodiscard]] mem::MemCostModel mem_costs() const override { return mem_costs_; }

  /// FusedOS offloads every call: one CL-to-FL round trip each.
  [[nodiscard]] std::uint64_t ikc_round_trips() const override {
    return offloaded_call_count();
  }

 protected:
  [[nodiscard]] std::unique_ptr<mem::HeapEngine> make_heap(Process& p) override;
  [[nodiscard]] bool fds_proxy_managed() const override { return true; }

 private:
  IkcChannel channel_;
  NoiseModel noise_;
  SchedulerModel sched_;
  PseudoFs fs_;
  mem::MemCostModel mem_costs_;
};

}  // namespace mkos::kernel
