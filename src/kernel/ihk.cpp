#include "kernel/ihk.hpp"

#include "sim/contracts.hpp"

namespace mkos::kernel {

PartitionResult partition(mem::PhysMemory& phys, const hw::NodeTopology& topo,
                          const PartitionSpec& spec, sim::Rng& rng) {
  MKOS_EXPECTS(spec.lwk_cores + spec.linux_cores <= topo.core_count());
  MKOS_EXPECTS(spec.linux_share >= 0.0 && spec.linux_share < 1.0);

  PartitionResult res;
  res.lwk_cores = spec.lwk_cores;
  res.linux_cores = spec.linux_cores;

  for (const auto& d : topo.domains()) {
    auto& alloc = phys.domain(d.id);
    // Linux's own footprint (kernel text/data, page tables, daemons). Taken
    // from the front of each DDR4 domain; MCDRAM is left to the application
    // side except a small driver slice.
    const double share = d.kind == hw::MemKind::kDdr4 ? spec.linux_share : 0.002;
    const sim::Bytes keep = sim::align_up(
        static_cast<sim::Bytes>(static_cast<double>(d.capacity) * share), 2 * sim::MiB);
    if (keep > 0) {
      auto e = alloc.alloc_contiguous(keep, 2 * sim::MiB);
      if (e.has_value()) {
        res.linux_reserved += e->length;
        res.linux_extents.push_back(*e);
      }
    }
    if (spec.late_reservation && d.kind == hw::MemKind::kDdr4) {
      res.unmovable_pinned +=
          alloc.pin_unmovable(spec.unmovable_per_domain, spec.unmovable_chunks, rng);
    }
  }

  res.largest_extent_per_domain.reserve(topo.domains().size());
  for (const auto& d : topo.domains()) {
    res.largest_extent_per_domain.push_back(phys.domain(d.id).largest_free_extent());
  }
  return res;
}

sim::Bytes release_partition(mem::PhysMemory& phys, PartitionResult& result) {
  sim::Bytes freed = 0;
  for (const auto& e : result.linux_extents) {
    phys.domain(e.domain).free(e);
    freed += e.length;
  }
  result.linux_extents.clear();
  result.linux_reserved -= freed;
  return freed;
}

}  // namespace mkos::kernel
