#pragma once
// IHK — Interface for Heterogeneous Kernels: resource partitioning.
//
// IHK "can allocate and release host resources dynamically without rebooting
// the host machine" but, being a kernel module, it runs *after* Linux has
// booted: "McKernel has to request [contiguous physical memory blocks] from
// Linux later, potentially after Linux has already placed unmovable data
// structures into it." mOS, compiled into Linux, grabs its blocks early.
//
// partition() models both: it pins Linux's own boot/runtime footprint, and
// for the late-reservation path additionally scatters unmovable chunks into
// every domain, which is what destroys 1 GiB-page contiguity for McKernel.

#include "hw/topology.hpp"
#include "mem/phys_allocator.hpp"
#include "sim/rng.hpp"

namespace mkos::kernel {

struct PartitionSpec {
  int lwk_cores = 64;        ///< cores handed to the LWK
  int linux_cores = 4;       ///< cores kept by Linux
  /// Fraction of each domain's memory Linux keeps for itself and daemons.
  double linux_share = 0.03;
  /// Late (post-boot) reservation: scatter unmovable chunks (McKernel path).
  bool late_reservation = false;
  /// Unmovable footprint scattered per DDR4 domain when late (bytes).
  sim::Bytes unmovable_per_domain = 192 * sim::MiB;
  int unmovable_chunks = 24;
};

struct PartitionResult {
  int lwk_cores = 0;
  int linux_cores = 0;
  sim::Bytes linux_reserved = 0;   ///< memory kept by Linux
  sim::Bytes unmovable_pinned = 0; ///< fragmentation injected by late boot
  /// Largest contiguous extent left per domain after partitioning —
  /// determines 1 GiB page availability for the LWK.
  std::vector<sim::Bytes> largest_extent_per_domain;
  /// Extents Linux holds (releasable — IHK "can allocate and release host
  /// resources dynamically without rebooting the host machine").
  std::vector<mem::Extent> linux_extents;
};

/// Apply a partition to a node's physical memory. The LWK subsequently
/// allocates straight from `phys`; Linux's share is simply marked used.
[[nodiscard]] PartitionResult partition(mem::PhysMemory& phys,
                                        const hw::NodeTopology& topo,
                                        const PartitionSpec& spec, sim::Rng& rng);

/// Release Linux's releasable share back to the pool (the dynamic path —
/// e.g. shrinking the service partition between jobs). The unmovable pins
/// stay by definition. Returns the bytes returned to the allocators.
sim::Bytes release_partition(mem::PhysMemory& phys, PartitionResult& result);

}  // namespace mkos::kernel
