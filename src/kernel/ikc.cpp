#include "kernel/ikc.hpp"

#include <cstdlib>

namespace mkos::kernel {

IkcChannel::IkcChannel(IkcCosts costs, int lwk_quadrant, int linux_quadrant)
    : costs_(costs), hops_(std::abs(lwk_quadrant - linux_quadrant)) {}

sim::TimeNs IkcChannel::one_way(sim::Bytes payload) const {
  const double copy_ns =
      static_cast<double>(payload) / (costs_.payload_gbps * 1e9) * 1e9;
  return costs_.post + costs_.deliver + costs_.per_quadrant_hop * hops_ +
         sim::from_double_ns(copy_ns);
}

sim::TimeNs IkcChannel::offload_round_trip(sim::Bytes request, sim::Bytes response) const {
  return one_way(request) + costs_.proxy_wakeup + one_way(response);
}

}  // namespace mkos::kernel
