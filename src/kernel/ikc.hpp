#pragma once
// IKC — Inter-Kernel Communication channel (IHK's message layer).
//
// System-call offloading on McKernel rides this: the LWK core posts a
// request message to the proxy process on a Linux core, the proxy executes
// the call, and the response comes back. "IKC ... understands the underlying
// topology to perform efficient message delivery between the two kernels" —
// crossing quadrants costs extra cacheline bounces.

#include <cstdint>

#include "hw/topology.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"

namespace mkos::kernel {

struct IkcCosts {
  sim::TimeNs post{350};             ///< enqueue + doorbell (IPI) on sender
  sim::TimeNs deliver{450};          ///< receive-side IRQ + dequeue
  sim::TimeNs per_quadrant_hop{90};  ///< mesh distance between the two cores
  sim::TimeNs proxy_wakeup{1100};    ///< schedule the proxy thread on Linux
  double payload_gbps = 8.0;         ///< message body copy bandwidth
};

class IkcChannel {
 public:
  IkcChannel(IkcCosts costs, int lwk_quadrant, int linux_quadrant);

  /// One-way message delivery cost for `payload` bytes.
  [[nodiscard]] sim::TimeNs one_way(sim::Bytes payload) const;

  /// Request/response round trip including waking the proxy. This is the
  /// transport half of a McKernel offloaded system call (the Linux-side
  /// handler cost is added by the kernel model).
  [[nodiscard]] sim::TimeNs offload_round_trip(sim::Bytes request,
                                               sim::Bytes response) const;

  [[nodiscard]] int quadrant_hops() const { return hops_; }
  [[nodiscard]] const IkcCosts& costs() const { return costs_; }

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  void count_message() { ++messages_; }

 private:
  IkcCosts costs_;
  int hops_;
  std::uint64_t messages_ = 0;
};

}  // namespace mkos::kernel
