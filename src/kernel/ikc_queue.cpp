#include "kernel/ikc_queue.hpp"

#include <algorithm>
#include <utility>

#include "sim/contracts.hpp"

namespace mkos::kernel {

IkcQueue::IkcQueue(sim::EventQueue& events, IkcChannel channel,
                   sim::TimeNs proxy_service_time, std::size_t capacity)
    : events_(events),
      channel_(channel),
      proxy_service_time_(proxy_service_time),
      capacity_(capacity) {
  MKOS_EXPECTS(proxy_service_time >= sim::TimeNs{0});
  // Bounded rings allocate their slots up front; unbounded rings grow lazily.
  if (capacity_ > 0) ring_.resize(capacity_);
}

void IkcQueue::post(sim::Bytes payload, Handler on_complete) {
  MKOS_EXPECTS(on_complete != nullptr);
  // Request message travels to the Linux side regardless of proxy state;
  // admission into the ring is decided on arrival, when the slot is claimed.
  const sim::TimeNs arrival = channel_.one_way(payload);
  Request req{payload, events_.now(), std::move(on_complete)};
  events_.schedule_after(arrival, [this, req = std::move(req)]() mutable {
    if (capacity_ > 0 && count_ >= capacity_) {
      ++dropped_;
      if (drop_handler_) drop_handler_(req.payload);
      return;  // drop-newest: the arriving request is lost
    }
    enqueue(std::move(req));
    if (!proxy_busy_) service_next();
  });
}

void IkcQueue::enqueue(Request req) {
  if (count_ == ring_.size()) {
    // Unbounded mode only (bounded rings were sized in the constructor and
    // admission already rejected the overflow). Double, un-wrapping so the
    // live window starts at slot 0 again.
    MKOS_ASSERT(capacity_ == 0);
    std::vector<Request> grown;
    grown.reserve(std::max<std::size_t>(8, ring_.size() * 2));
    for (std::size_t i = 0; i < count_; ++i) {
      grown.push_back(std::move(ring_[(head_ + i) % ring_.size()]));
    }
    grown.resize(std::max<std::size_t>(8, ring_.size() * 2));
    ring_ = std::move(grown);
    head_ = 0;
  }
  ring_[(head_ + count_) % ring_.size()] = std::move(req);
  ++count_;
}

IkcQueue::Request IkcQueue::dequeue() {
  MKOS_EXPECTS(count_ > 0);
  Request req = std::move(ring_[head_]);
  head_ = (head_ + 1) % ring_.size();
  --count_;
  return req;
}

void IkcQueue::service_next() {
  if (count_ == 0) {
    proxy_busy_ = false;
    return;
  }
  proxy_busy_ = true;
  Request req = dequeue();
  // Proxy wakeup (only when it was idle is the full wakeup paid; a busy
  // proxy pipelines) + handler execution + response message.
  const sim::TimeNs service = channel_.costs().proxy_wakeup + proxy_service_time_;
  events_.schedule_after(service, [this, req = std::move(req)]() mutable {
    const sim::TimeNs response = channel_.one_way(64);
    events_.schedule_after(response, [this, posted = req.posted_at,
                                      handler = std::move(req.on_complete)]() {
      ++completed_;
      worst_latency_ = std::max(worst_latency_, events_.now() - posted);
      handler(events_.now());
    });
    service_next();
  });
}

}  // namespace mkos::kernel
