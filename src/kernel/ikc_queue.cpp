#include "kernel/ikc_queue.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace mkos::kernel {

IkcQueue::IkcQueue(sim::EventQueue& events, IkcChannel channel,
                   sim::TimeNs proxy_service_time)
    : events_(events), channel_(channel), proxy_service_time_(proxy_service_time) {
  MKOS_EXPECTS(proxy_service_time >= sim::TimeNs{0});
}

void IkcQueue::post(sim::Bytes payload, Handler on_complete) {
  MKOS_EXPECTS(on_complete != nullptr);
  // Request message travels to the Linux side regardless of proxy state.
  const sim::TimeNs arrival = channel_.one_way(payload);
  Request req{payload, events_.now(), std::move(on_complete)};
  events_.schedule_after(arrival, [this, req = std::move(req)]() mutable {
    queue_.push_back(std::move(req));
    if (!proxy_busy_) service_next();
  });
}

void IkcQueue::service_next() {
  if (queue_.empty()) {
    proxy_busy_ = false;
    return;
  }
  proxy_busy_ = true;
  Request req = std::move(queue_.front());
  queue_.pop_front();
  // Proxy wakeup (only when it was idle is the full wakeup paid; a busy
  // proxy pipelines) + handler execution + response message.
  const sim::TimeNs service = channel_.costs().proxy_wakeup + proxy_service_time_;
  events_.schedule_after(service, [this, req = std::move(req)]() mutable {
    const sim::TimeNs response = channel_.one_way(64);
    events_.schedule_after(response, [this, posted = req.posted_at,
                                      handler = std::move(req.on_complete)]() {
      ++completed_;
      worst_latency_ = std::max(worst_latency_, events_.now() - posted);
      handler(events_.now());
    });
    service_next();
  });
}

}  // namespace mkos::kernel
