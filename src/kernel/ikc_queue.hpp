#pragma once
// Event-driven IKC endpoint: the functional (message-at-a-time) counterpart
// of IkcChannel's closed-form costs. System-call offloading on McKernel is
// request/response over this queue: the LWK core posts, the proxy wakes,
// executes, and responds. Driven by the simulation event queue so tests and
// micro-benches can observe ordering, queueing delay and backpressure —
// e.g. many LWK cores offloading simultaneously serialize on the proxy.

#include <cstdint>
#include <deque>
#include <functional>

#include "kernel/ikc.hpp"
#include "sim/event_queue.hpp"

namespace mkos::kernel {

class IkcQueue {
 public:
  using Handler = std::function<void(sim::TimeNs completion_time)>;

  /// `proxy_service_time`: Linux-side execution per request (handler body).
  IkcQueue(sim::EventQueue& events, IkcChannel channel, sim::TimeNs proxy_service_time);

  /// Post an offload request of `payload` bytes; `on_complete` fires (as a
  /// simulation event) when the response arrives back at the LWK core.
  void post(sim::Bytes payload, Handler on_complete);

  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  /// Longest request-to-response latency observed so far.
  [[nodiscard]] sim::TimeNs worst_latency() const { return worst_latency_; }

 private:
  struct Request {
    sim::Bytes payload;
    sim::TimeNs posted_at;
    Handler on_complete;
  };

  void service_next();

  sim::EventQueue& events_;
  IkcChannel channel_;
  sim::TimeNs proxy_service_time_;
  std::deque<Request> queue_;
  bool proxy_busy_ = false;
  std::uint64_t completed_ = 0;
  sim::TimeNs worst_latency_{0};
};

}  // namespace mkos::kernel
