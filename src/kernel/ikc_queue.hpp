#pragma once
// Event-driven IKC endpoint: the functional (message-at-a-time) counterpart
// of IkcChannel's closed-form costs. System-call offloading on McKernel is
// request/response over this queue: the LWK core posts, the proxy wakes,
// executes, and responds. Driven by the simulation event queue so tests and
// micro-benches can observe ordering, queueing delay and backpressure —
// e.g. many LWK cores offloading simultaneously serialize on the proxy.
//
// The pending-request store is a ring buffer with an optional capacity
// bound. Real IKC channels are fixed-size shared-memory rings; when the
// Linux side stops draining (crash, storm) the ring fills and new requests
// are lost. A full ring drops the *arriving* request (drop-newest): it never
// reaches the proxy, its completion handler never fires, and the drop is
// tallied (and surfaced via the drop handler) so the fault/recovery layer
// can model detection and retry. Capacity 0 keeps the legacy unbounded
// behavior.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "kernel/ikc.hpp"
#include "sim/event_queue.hpp"
#include "sim/thread_safety.hpp"

namespace mkos::kernel {

class MKOS_THREAD_CONFINED("the owning node's simulation task") IkcQueue {
 public:
  using Handler = std::function<void(sim::TimeNs completion_time)>;
  /// Called when a full ring rejects an arriving request (payload bytes).
  using DropHandler = std::function<void(sim::Bytes payload)>;

  /// `proxy_service_time`: Linux-side execution per request (handler body).
  /// `capacity`: max requests pending on the Linux side; 0 = unbounded.
  IkcQueue(sim::EventQueue& events, IkcChannel channel,
           sim::TimeNs proxy_service_time, std::size_t capacity = 0);

  /// Post an offload request of `payload` bytes; `on_complete` fires (as a
  /// simulation event) when the response arrives back at the LWK core. If
  /// the ring is full when the request message arrives, it is dropped and
  /// `on_complete` never runs.
  void post(sim::Bytes payload, Handler on_complete);

  /// Observe drops as they happen (fault detection). Replaces any previous
  /// handler; nullptr detaches.
  void set_drop_handler(DropHandler handler) { drop_handler_ = std::move(handler); }

  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t queued() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Longest request-to-response latency observed so far.
  [[nodiscard]] sim::TimeNs worst_latency() const { return worst_latency_; }

 private:
  struct Request {
    sim::Bytes payload;
    sim::TimeNs posted_at;
    Handler on_complete;
  };

  void enqueue(Request req);
  Request dequeue();
  void service_next();

  sim::EventQueue& events_;
  IkcChannel channel_;
  sim::TimeNs proxy_service_time_;
  std::size_t capacity_;

  // Ring storage: `count_` live requests starting at `head_`, wrapping
  // modulo ring_.size(). Unbounded mode grows by doubling on overflow.
  std::vector<Request> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;

  DropHandler drop_handler_;
  bool proxy_busy_ = false;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  sim::TimeNs worst_latency_{0};
};

}  // namespace mkos::kernel
