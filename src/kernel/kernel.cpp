#include "kernel/kernel.hpp"

#include "sim/contracts.hpp"

namespace mkos::kernel {

std::string_view to_string(OsKind k) {
  switch (k) {
    case OsKind::kLinux: return "Linux";
    case OsKind::kMcKernel: return "McKernel";
    case OsKind::kMos: return "mOS";
    case OsKind::kFusedOs: return "FusedOS";
  }
  return "?";
}

std::string_view sys_name(Sys s) {
  switch (s) {
    case Sys::kBrk: return "brk";
    case Sys::kMmap: return "mmap";
    case Sys::kMunmap: return "munmap";
    case Sys::kMprotect: return "mprotect";
    case Sys::kMremap: return "mremap";
    case Sys::kMadvise: return "madvise";
    case Sys::kSetMempolicy: return "set_mempolicy";
    case Sys::kGetMempolicy: return "get_mempolicy";
    case Sys::kMbind: return "mbind";
    case Sys::kMovePages: return "move_pages";
    case Sys::kMigratePages: return "migrate_pages";
    case Sys::kMlock: return "mlock";
    case Sys::kMunlock: return "munlock";
    case Sys::kShmget: return "shmget";
    case Sys::kShmat: return "shmat";
    case Sys::kShmdt: return "shmdt";
    case Sys::kClone: return "clone";
    case Sys::kFork: return "fork";
    case Sys::kVfork: return "vfork";
    case Sys::kExecve: return "execve";
    case Sys::kExit: return "exit";
    case Sys::kExitGroup: return "exit_group";
    case Sys::kWait4: return "wait4";
    case Sys::kWaitid: return "waitid";
    case Sys::kGetpid: return "getpid";
    case Sys::kGettid: return "gettid";
    case Sys::kGetppid: return "getppid";
    case Sys::kKill: return "kill";
    case Sys::kTkill: return "tkill";
    case Sys::kTgkill: return "tgkill";
    case Sys::kRtSigaction: return "rt_sigaction";
    case Sys::kRtSigprocmask: return "rt_sigprocmask";
    case Sys::kRtSigreturn: return "rt_sigreturn";
    case Sys::kSigaltstack: return "sigaltstack";
    case Sys::kSchedYield: return "sched_yield";
    case Sys::kSchedSetaffinity: return "sched_setaffinity";
    case Sys::kSchedGetaffinity: return "sched_getaffinity";
    case Sys::kSchedSetscheduler: return "sched_setscheduler";
    case Sys::kSchedGetscheduler: return "sched_getscheduler";
    case Sys::kSetpriority: return "setpriority";
    case Sys::kGetpriority: return "getpriority";
    case Sys::kPtrace: return "ptrace";
    case Sys::kPrctl: return "prctl";
    case Sys::kArchPrctl: return "arch_prctl";
    case Sys::kSetTidAddress: return "set_tid_address";
    case Sys::kFutex: return "futex";
    case Sys::kGetrlimit: return "getrlimit";
    case Sys::kSetrlimit: return "setrlimit";
    case Sys::kGetrusage: return "getrusage";
    case Sys::kTimes: return "times";
    case Sys::kOpen: return "open";
    case Sys::kOpenat: return "openat";
    case Sys::kClose: return "close";
    case Sys::kRead: return "read";
    case Sys::kWrite: return "write";
    case Sys::kPread64: return "pread64";
    case Sys::kPwrite64: return "pwrite64";
    case Sys::kReadv: return "readv";
    case Sys::kWritev: return "writev";
    case Sys::kLseek: return "lseek";
    case Sys::kStat: return "stat";
    case Sys::kFstat: return "fstat";
    case Sys::kLstat: return "lstat";
    case Sys::kAccess: return "access";
    case Sys::kDup: return "dup";
    case Sys::kDup2: return "dup2";
    case Sys::kPipe: return "pipe";
    case Sys::kFcntl: return "fcntl";
    case Sys::kIoctl: return "ioctl";
    case Sys::kMknod: return "mknod";
    case Sys::kUnlink: return "unlink";
    case Sys::kRename: return "rename";
    case Sys::kMkdir: return "mkdir";
    case Sys::kRmdir: return "rmdir";
    case Sys::kGetdents: return "getdents";
    case Sys::kChdir: return "chdir";
    case Sys::kGetcwd: return "getcwd";
    case Sys::kReadlink: return "readlink";
    case Sys::kChmod: return "chmod";
    case Sys::kChown: return "chown";
    case Sys::kUmask: return "umask";
    case Sys::kTruncate: return "truncate";
    case Sys::kFtruncate: return "ftruncate";
    case Sys::kFsync: return "fsync";
    case Sys::kStatfs: return "statfs";
    case Sys::kSocket: return "socket";
    case Sys::kConnect: return "connect";
    case Sys::kAccept: return "accept";
    case Sys::kBind: return "bind";
    case Sys::kListen: return "listen";
    case Sys::kSendto: return "sendto";
    case Sys::kRecvfrom: return "recvfrom";
    case Sys::kSendmsg: return "sendmsg";
    case Sys::kRecvmsg: return "recvmsg";
    case Sys::kShutdown: return "shutdown";
    case Sys::kGetsockname: return "getsockname";
    case Sys::kGetsockopt: return "getsockopt";
    case Sys::kSetsockopt: return "setsockopt";
    case Sys::kPoll: return "poll";
    case Sys::kSelect: return "select";
    case Sys::kEpollCreate: return "epoll_create";
    case Sys::kEpollCtl: return "epoll_ctl";
    case Sys::kEpollWait: return "epoll_wait";
    case Sys::kGettimeofday: return "gettimeofday";
    case Sys::kClockGettime: return "clock_gettime";
    case Sys::kClockNanosleep: return "clock_nanosleep";
    case Sys::kNanosleep: return "nanosleep";
    case Sys::kAlarm: return "alarm";
    case Sys::kTimerCreate: return "timer_create";
    case Sys::kTimerSettime: return "timer_settime";
    case Sys::kGetitimer: return "getitimer";
    case Sys::kSetitimer: return "setitimer";
    case Sys::kUname: return "uname";
    case Sys::kSysinfo: return "sysinfo";
    case Sys::kGetuid: return "getuid";
    case Sys::kGetgid: return "getgid";
    case Sys::kGeteuid: return "geteuid";
    case Sys::kGetegid: return "getegid";
    case Sys::kSetuid: return "setuid";
    case Sys::kSetgid: return "setgid";
    case Sys::kCapget: return "capget";
    case Sys::kCapset: return "capset";
    case Sys::kPerfEventOpen: return "perf_event_open";
    case Sys::kCount_: break;
  }
  return "?";
}

std::string_view to_string(Disposition d) {
  switch (d) {
    case Disposition::kLocal: return "local";
    case Disposition::kOffloaded: return "offloaded";
    case Disposition::kPartial: return "partial";
    case Disposition::kUnsupported: return "unsupported";
  }
  return "?";
}

Kernel::Kernel(const hw::NodeTopology& topo, mem::PhysMemory& phys)
    : topo_(topo), phys_(phys) {}

const NoiseModel& Kernel::collective_noise() const {
  // LWK default: no collective-coupled interference (strong partitioning).
  static const NoiseModel kNone{};
  return kNone;
}

void Kernel::count_call(Disposition d) {
  if (d == Disposition::kOffloaded) {
    ++offloaded_calls_;
  } else {
    ++local_calls_;
  }
}

Process& Kernel::create_process(int home_quadrant) {
  auto p = std::make_unique<Process>(next_pid_++, home_quadrant);
  p->set_heap(make_heap(*p));
  processes_.push_back(std::move(p));
  return *processes_.back();
}

SyscallRet Kernel::sys_munmap(Process& p, sim::Bytes start) {
  count_call(Disposition::kLocal);
  auto vma = p.address_space().unmap(start);
  if (!vma.has_value()) return {kEINVAL, local_syscall_cost()};
  sim::TimeNs cost = local_syscall_cost();
  const mem::MemCostModel mc = mem_costs();
  for (const auto& e : vma->extents) {
    phys_.domain(e.domain).free(e);
    cost += mc.pte_per_page;  // coarse: teardown priced per extent
  }
  return {kOk, cost};
}

SyscallRet Kernel::sys_brk(Process& p, std::int64_t delta) {
  count_call(Disposition::kLocal);
  MKOS_EXPECTS(p.heap() != nullptr);
  return {kOk, p.heap()->sbrk(delta)};
}

SyscallRet Kernel::sys_set_mempolicy(Process& p, mem::MemPolicy policy) {
  count_call(Disposition::kLocal);
  if (p.heap() != nullptr) p.heap()->set_policy(policy);
  p.set_mempolicy(std::move(policy));
  return {kOk, local_syscall_cost()};
}

SyscallRet Kernel::sys_fork(Process& p) {
  // Default: supported locally; concrete kernels override (mOS: ENOSYS).
  count_call(Disposition::kLocal);
  Process& child = create_process(p.home_quadrant());
  (void)child;
  return {kOk, local_syscall_cost() + sim::microseconds(60)};
}

SyscallRet Kernel::sys_clone_thread(Process& p, hw::CoreId core) {
  count_call(Disposition::kLocal);
  p.add_thread(core);
  return {kOk, local_syscall_cost() + sim::microseconds(12)};
}

SyscallRet Kernel::sys_mprotect(Process& p, sim::Bytes addr, int prot) {
  count_call(Disposition::kLocal);
  mem::Vma* vma = p.address_space().find(addr);
  if (vma == nullptr) return {kEINVAL, local_syscall_cost()};
  vma->prot = prot;
  // PTE permission rewrite, priced per page at the VMA's granule.
  const mem::MemCostModel mc = mem_costs();
  const sim::TimeNs cost =
      local_syscall_cost() +
      mc.pte_per_page * static_cast<std::int64_t>(
                            mem::pages_for(vma->length, vma->touch_page));
  return {kOk, cost};
}

SyscallRet Kernel::sys_madvise(Process& p, sim::Bytes addr, Madvise adv) {
  count_call(Disposition::kLocal);
  mem::Vma* vma = p.address_space().find(addr);
  if (vma == nullptr) return {kEINVAL, local_syscall_cost()};
  sim::TimeNs cost = local_syscall_cost();
  if (adv == Madvise::kDontNeed && kind() == OsKind::kLinux) {
    // Linux drops the backing; the next touch refaults.
    for (const auto& e : vma->extents) phys_.domain(e.domain).free(e);
    vma->extents.clear();
    vma->placement.clear();
    vma->demand_paged = true;
    cost += mem_costs().pte_per_page *
            static_cast<std::int64_t>(mem::pages_for(vma->length, vma->touch_page));
  }
  // The LWKs accept the hint and keep the memory: reclaiming pages an HPC
  // application will reuse is exactly the churn the HPC heap avoids.
  return {kOk, cost};
}

SyscallRet Kernel::sys_sched_yield(Process& p) {
  (void)p;
  count_call(Disposition::kLocal);
  return {kOk, scheduler_model().sched_yield_cost()};
}

SyscallRet Kernel::sys_open(Process& p, std::string path) {
  const bool pseudo = path.rfind("/proc", 0) == 0 || path.rfind("/sys", 0) == 0;
  if (pseudo && !pseudofs().readable(path)) {
    count_call(Disposition::kUnsupported);
    return {kENOSYS, local_syscall_cost()};
  }
  const Disposition d = disposition(Sys::kOpen);
  count_call(d);
  const sim::TimeNs cost =
      d == Disposition::kOffloaded ? offload_cost(static_cast<sim::Bytes>(path.size()))
                                   : local_syscall_cost();
  p.open_fd(std::move(path), fds_proxy_managed());
  return {kOk, cost};
}

SyscallRet Kernel::sys_generic(Process& p, Sys s) {
  (void)p;
  const Disposition d = disposition(s);
  count_call(d);
  switch (d) {
    case Disposition::kLocal:
    case Disposition::kPartial:
      return {kOk, local_syscall_cost()};
    case Disposition::kOffloaded:
      return {kOk, offload_cost(256)};
    case Disposition::kUnsupported:
      return {kENOSYS, local_syscall_cost()};
  }
  return {kENOSYS, local_syscall_cost()};
}

sim::TimeNs Kernel::priced(Sys s, sim::Bytes payload) const {
  switch (disposition(s)) {
    case Disposition::kLocal:
    case Disposition::kPartial:
    case Disposition::kUnsupported:
      return local_syscall_cost();
    case Disposition::kOffloaded:
      return offload_cost(payload);
  }
  return local_syscall_cost();
}

mem::TouchResult Kernel::touch(Process& p, mem::Vma& vma, sim::Bytes bytes,
                               int concurrent_faulters) {
  return mem::touch(phys_, topo_, mem_costs(), vma, bytes, p.home_quadrant(),
                    concurrent_faulters);
}

sim::TimeNs Kernel::heap_touch(Process& p, int concurrent_faulters) {
  MKOS_EXPECTS(p.heap() != nullptr);
  return p.heap()->touch_new(concurrent_faulters);
}

}  // namespace mkos::kernel
