#pragma once
// The kernel model interface.
//
// A Kernel owns processes, implements a *functional* system-call layer over
// the memory substrate (real VMAs, real physical placement), and exposes the
// pricing hooks the runtime uses: what a local vs offloaded call costs, how
// noisy application cores are, how the network send path is taxed.
//
// Four implementations: LinuxKernel (the baseline), McKernel (IHK proxy
// offloading), Mos (thread-migration offloading), and FusedOs (the
// related-work user-level LWK that offloads everything). Their behavioural
// differences are structural — encoded in placement flags, heap engines,
// offload transports and capability sets — not in per-benchmark special
// cases.

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "hw/topology.hpp"
#include "kernel/noise.hpp"
#include "kernel/process.hpp"
#include "kernel/pseudofs.hpp"
#include "kernel/scheduler.hpp"
#include "kernel/syscalls.hpp"
#include "mem/placement.hpp"

namespace mkos::kernel {

enum class OsKind : std::uint8_t { kLinux, kMcKernel, kMos, kFusedOs };

[[nodiscard]] std::string_view to_string(OsKind k);

struct SyscallRet {
  int err = kOk;
  sim::TimeNs cost{0};
};

struct MmapRet {
  int err = kOk;
  sim::TimeNs cost{0};
  mem::Vma* vma = nullptr;
};

/// Semantic capabilities the LTP-style compatibility suite probes. Each maps
/// to behaviour the paper's Section III-D discusses.
enum class Capability : std::uint8_t {
  kForkFull,               ///< full fork() semantics (mOS: not yet)
  kPtraceFull,             ///< complete ptrace() (McKernel proxy model: hard)
  kPtraceBasic,            ///< attach/peek works at all
  kMovePages,              ///< move_pages() (McKernel: work in progress)
  kMigratePages,
  kCloneEsotericFlags,     ///< unusual clone() flag combinations
  kBrkShrinkReleases,      ///< shrunk heap pages fault afterwards (HPC brk: no)
  kMremapFull,
  kTimersFull,             ///< POSIX interval timers
  kSignalsFull,            ///< complete signal edge cases (queued RT signals...)
  kProcSelfComplete,       ///< every /proc/self/* file tools expect
  kCpuHotplug,
  kPerfCounters,           ///< standard perf-counter interfaces
  kTimeSharing,            ///< preemptive time sharing available
  kCount_,
};

class Kernel {
 public:
  Kernel(const hw::NodeTopology& topo, mem::PhysMemory& phys);
  virtual ~Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] virtual OsKind kind() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual Disposition disposition(Sys s) const = 0;
  [[nodiscard]] virtual bool capable(Capability c) const = 0;

  // ------------------------------------------------------- process lifecycle
  /// Create a process homed on `home_quadrant`, with this kernel's heap
  /// engine attached. The returned reference is stable for the kernel's life.
  Process& create_process(int home_quadrant);
  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

  // ------------------------------------------------- functional system calls
  [[nodiscard]] virtual MmapRet sys_mmap(Process& p, sim::Bytes length,
                                         mem::VmaKind kind, mem::MemPolicy policy) = 0;
  [[nodiscard]] SyscallRet sys_munmap(Process& p, sim::Bytes start);
  /// sbrk-style brk: delta in bytes (0 = query).
  [[nodiscard]] SyscallRet sys_brk(Process& p, std::int64_t delta);
  [[nodiscard]] virtual SyscallRet sys_set_mempolicy(Process& p, mem::MemPolicy policy);
  [[nodiscard]] virtual SyscallRet sys_fork(Process& p);
  [[nodiscard]] virtual SyscallRet sys_clone_thread(Process& p, hw::CoreId core);
  /// Change protections on the VMA containing `addr` (whole-VMA granularity).
  [[nodiscard]] SyscallRet sys_mprotect(Process& p, sim::Bytes addr, int prot);
  /// madvise(): kDontNeed releases backing on kernels that honor it (Linux);
  /// the LWKs keep the physical pages — HPC applications reuse them.
  enum class Madvise : std::uint8_t { kNormal, kWillNeed, kDontNeed };
  [[nodiscard]] virtual SyscallRet sys_madvise(Process& p, sim::Bytes addr, Madvise adv);
  [[nodiscard]] SyscallRet sys_sched_yield(Process& p);
  /// open() with pseudo-filesystem awareness; non-/proc//sys paths succeed
  /// through the (possibly offloaded) VFS.
  [[nodiscard]] SyscallRet sys_open(Process& p, std::string path);
  /// Any other call: priced and dispatched by disposition.
  [[nodiscard]] virtual SyscallRet sys_generic(Process& p, Sys s);

  /// First-touch `bytes` of a demand-paged VMA.
  [[nodiscard]] mem::TouchResult touch(Process& p, mem::Vma& vma, sim::Bytes bytes,
                                       int concurrent_faulters);
  /// Application touches heap bytes grown since the last call.
  [[nodiscard]] sim::TimeNs heap_touch(Process& p, int concurrent_faulters);

  // ------------------------------------------------------------ pricing hooks
  /// Entry + handling of a call implemented locally.
  [[nodiscard]] virtual sim::TimeNs local_syscall_cost() const = 0;
  /// Transport + remote handling for an offloaded call (0 payload = no-arg).
  [[nodiscard]] virtual sim::TimeNs offload_cost(sim::Bytes payload) const = 0;
  /// Price a call by its disposition on this kernel.
  [[nodiscard]] sim::TimeNs priced(Sys s, sim::Bytes payload = 256) const;
  /// Extra kernel-side cost of one kernel-involved network operation.
  [[nodiscard]] virtual sim::TimeNs network_syscall_overhead() const = 0;
  /// Effective network bandwidth factor (< 1 when the device path offloads).
  [[nodiscard]] virtual double network_bw_factor() const = 0;

  [[nodiscard]] virtual const NoiseModel& noise() const = 0;
  /// Noise source that couples to blocking collectives (empty on LWKs;
  /// heavy-tailed on Linux). Consumed by the collective cost model only.
  [[nodiscard]] virtual const NoiseModel& collective_noise() const;
  [[nodiscard]] virtual const SchedulerModel& scheduler_model() const = 0;
  [[nodiscard]] virtual const PseudoFs& pseudofs() const = 0;
  [[nodiscard]] virtual mem::MemCostModel mem_costs() const = 0;

  [[nodiscard]] const hw::NodeTopology& topo() const { return topo_; }
  [[nodiscard]] mem::PhysMemory& phys() { return phys_; }
  [[nodiscard]] const mem::PhysMemory& phys() const { return phys_; }

  [[nodiscard]] std::uint64_t offloaded_call_count() const { return offloaded_calls_; }
  [[nodiscard]] std::uint64_t local_call_count() const { return local_calls_; }
  /// Account brk calls replayed (not re-simulated) by the symmetric-lane
  /// heap fast path: sys_brk is always local, so the replicated lanes'
  /// calls land in the local counter exactly as the slow path would.
  void note_replayed_local_calls(std::uint64_t n) { local_calls_ += n; }
  /// IKC request/response round trips taken by offloaded calls. Zero on
  /// kernels whose offload path does not ride a message channel (Linux has
  /// no offloading; mOS migrates threads instead of posting messages).
  [[nodiscard]] virtual std::uint64_t ikc_round_trips() const { return 0; }

 protected:
  /// Build the heap engine attached to new processes.
  [[nodiscard]] virtual std::unique_ptr<mem::HeapEngine> make_heap(Process& p) = 0;
  /// Whether file descriptors live in the Linux proxy (McKernel).
  [[nodiscard]] virtual bool fds_proxy_managed() const { return false; }

  void count_call(Disposition d);

  const hw::NodeTopology& topo_;
  mem::PhysMemory& phys_;
  std::vector<std::unique_ptr<Process>> processes_;
  Pid next_pid_ = 2;
  std::uint64_t offloaded_calls_ = 0;
  std::uint64_t local_calls_ = 0;
};

}  // namespace mkos::kernel
