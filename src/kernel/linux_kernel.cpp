#include "kernel/linux_kernel.hpp"

namespace mkos::kernel {

LinuxKernel::LinuxKernel(const hw::NodeTopology& topo, mem::PhysMemory& phys,
                         LinuxOptions options)
    : Kernel(topo, phys),
      options_(options),
      noise_(options.co_tenant            ? noise_linux_co_tenant()
             : options.service_core_shared ? noise_linux_service_core()
             : options.nohz_full           ? noise_linux_nohz_full()
                                           : noise_linux_service_core()),
      collective_noise_(options.co_tenant ? noise_linux_collective_tail_co_tenant()
                                          : noise_linux_collective_tail()),
      sched_(SchedulerModel::linux_cfs()),
      fs_(pseudofs_linux()) {
  // Defaults in MemCostModel are Linux-on-KNL numbers already.
  if (options.alloc_reclaim_rate_hz > 0.0) {
    // The allocator model's depot-trim daemon: short kswapd-like detours on
    // the application cores, exponential around ~12 us per pass.
    noise_.add(NoiseComponent{"kreclaimd", options.alloc_reclaim_rate_hz,
                              sim::microseconds(12.0),
                              NoiseComponent::Dist::kExponential});
  }
}

Disposition LinuxKernel::disposition(Sys s) const {
  (void)s;
  return Disposition::kLocal;
}

bool LinuxKernel::capable(Capability c) const {
  (void)c;
  return true;  // Linux is the compatibility yardstick by definition
}

MmapRet LinuxKernel::sys_mmap(Process& p, sim::Bytes length, mem::VmaKind kind,
                              mem::MemPolicy policy) {
  count_call(Disposition::kLocal);
  if (length == 0) return {kEINVAL, local_syscall_cost(), nullptr};
  mem::Vma& vma = p.address_space().map(length, kind, policy);
  mem::PlaceRequest req;
  req.bytes = length;
  req.policy = policy.mode == mem::PolicyMode::kDefault ? p.mempolicy() : policy;
  req.home_quadrant = p.home_quadrant();
  vma.policy = req.policy;
  const mem::PlaceResult pr = mem::place_linux(topo_, mem_costs_, req, vma, options_.thp);
  return {kOk, local_syscall_cost() + pr.map_cost, &vma};
}

SyscallRet LinuxKernel::sys_set_mempolicy(Process& p, mem::MemPolicy policy) {
  count_call(Disposition::kLocal);
  // The SNC-4 limitation: PREFERRED takes exactly one domain. A caller that
  // wants "all four MCDRAM domains preferred" cannot express it (EINVAL),
  // which is why the paper ran CCS-QCD from DDR4 under Linux.
  if (policy.mode == mem::PolicyMode::kPreferred && policy.domains.size() != 1) {
    return {kEINVAL, local_syscall_cost()};
  }
  if (p.heap() != nullptr) p.heap()->set_policy(policy);
  p.set_mempolicy(std::move(policy));
  return {kOk, local_syscall_cost()};
}

sim::TimeNs LinuxKernel::local_syscall_cost() const {
  // KNL's Silvermont-class cores: user->kernel->user plus handler body.
  return sim::TimeNs{950};
}

sim::TimeNs LinuxKernel::offload_cost(sim::Bytes payload) const {
  (void)payload;
  return sim::TimeNs{0};  // Linux never offloads
}

sim::TimeNs LinuxKernel::network_syscall_overhead() const {
  // The device-file write is a normal local syscall on Linux.
  return local_syscall_cost();
}

std::unique_ptr<mem::HeapEngine> LinuxKernel::make_heap(Process& p) {
  return std::make_unique<mem::LinuxHeap>(phys_, topo_, mem_costs_, p.mempolicy(),
                                          p.home_quadrant());
}

}  // namespace mkos::kernel
