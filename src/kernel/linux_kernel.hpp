#pragma once
// The Linux baseline (XPPSL / CentOS class kernel on KNL).
//
// Everything is local and everything is supported; the costs are the story:
// demand paging with first-touch faults and zero-page clearing, THP only for
// large aligned anonymous mappings, a one-preferred-domain NUMA policy, a
// preemptive scheduler, and residual OS noise even under nohz_full.

#include "kernel/kernel.hpp"

namespace mkos::kernel {

struct LinuxOptions {
  bool nohz_full = true;   ///< the paper's tuned baseline
  bool thp = true;         ///< transparent huge pages for large anon maps
  /// Application ranks share the core that runs system services (the
  /// 68-core configuration; "often due to CPU 0 running services").
  bool service_core_shared = false;
  /// A co-located tenant (analytics/monitoring) runs on the same node —
  /// on Linux-only nodes it shares the application cores.
  bool co_tenant = false;
  /// > 0: the allocator model's reclaim daemon (kreclaimd) is active and its
  /// periodic depot-trim passes steal application-core time as an extra
  /// noise component at this rate. 0 (the default) adds nothing.
  double alloc_reclaim_rate_hz = 0.0;
};

class LinuxKernel final : public Kernel {
 public:
  LinuxKernel(const hw::NodeTopology& topo, mem::PhysMemory& phys, LinuxOptions options);

  [[nodiscard]] OsKind kind() const override { return OsKind::kLinux; }
  [[nodiscard]] std::string_view name() const override { return "Linux"; }
  [[nodiscard]] Disposition disposition(Sys s) const override;
  [[nodiscard]] bool capable(Capability c) const override;

  [[nodiscard]] MmapRet sys_mmap(Process& p, sim::Bytes length, mem::VmaKind kind,
                                 mem::MemPolicy policy) override;
  [[nodiscard]] SyscallRet sys_set_mempolicy(Process& p, mem::MemPolicy policy) override;

  [[nodiscard]] sim::TimeNs local_syscall_cost() const override;
  [[nodiscard]] sim::TimeNs offload_cost(sim::Bytes payload) const override;
  [[nodiscard]] sim::TimeNs network_syscall_overhead() const override;
  [[nodiscard]] double network_bw_factor() const override { return 1.0; }

  [[nodiscard]] const NoiseModel& noise() const override { return noise_; }
  [[nodiscard]] const NoiseModel& collective_noise() const override {
    return collective_noise_;
  }
  [[nodiscard]] const SchedulerModel& scheduler_model() const override { return sched_; }
  [[nodiscard]] const PseudoFs& pseudofs() const override { return fs_; }
  [[nodiscard]] mem::MemCostModel mem_costs() const override { return mem_costs_; }

  [[nodiscard]] const LinuxOptions& options() const { return options_; }

 protected:
  [[nodiscard]] std::unique_ptr<mem::HeapEngine> make_heap(Process& p) override;

 private:
  LinuxOptions options_;
  NoiseModel noise_;
  NoiseModel collective_noise_;
  SchedulerModel sched_;
  PseudoFs fs_;
  mem::MemCostModel mem_costs_;
};

}  // namespace mkos::kernel
