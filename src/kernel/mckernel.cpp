#include "kernel/mckernel.hpp"

namespace mkos::kernel {

namespace {
/// LWK fault/trap handlers are leaner than Linux's: a short, straight-line
/// code path with no cgroup/LRU/auditing work.
mem::MemCostModel lwk_mem_costs() {
  mem::MemCostModel c;
  c.syscall_entry = sim::TimeNs{260};
  c.fault_4k = sim::TimeNs{1500};
  c.fault_large = sim::TimeNs{1400};
  c.pte_per_page = sim::TimeNs{14};
  c.contention_slope = 0.09;  // no mmap_sem-style global serialization
  return c;
}
}  // namespace

McKernel::McKernel(const hw::NodeTopology& topo, mem::PhysMemory& phys, IkcChannel ikc,
                   McKernelOptions options)
    : Kernel(topo, phys),
      options_(options),
      ikc_(ikc),
      noise_(noise_lwk()),
      sched_(SchedulerModel::lwk_coop(options.disable_sched_yield)),
      fs_(pseudofs_mckernel()),
      mem_costs_(lwk_mem_costs()) {}

Disposition McKernel::disposition(Sys s) const {
  switch (s) {
    // "McKernel provides its own memory management, it supports multi-
    // processing and multi-threading, it has a simple scheduler, and it
    // implements signaling. It also enables inter-process shared memory
    // mappings and ... standard interfaces to hardware performance counters."
    case Sys::kBrk: case Sys::kMmap: case Sys::kMunmap: case Sys::kMprotect:
    case Sys::kMadvise: case Sys::kSetMempolicy: case Sys::kGetMempolicy:
    case Sys::kMbind: case Sys::kMlock: case Sys::kMunlock:
    case Sys::kShmget: case Sys::kShmat: case Sys::kShmdt:
    case Sys::kClone: case Sys::kFork: case Sys::kVfork:
    case Sys::kExit: case Sys::kExitGroup:
    case Sys::kGetpid: case Sys::kGettid: case Sys::kGetppid:
    case Sys::kKill: case Sys::kTkill: case Sys::kTgkill:
    case Sys::kRtSigaction: case Sys::kRtSigprocmask: case Sys::kRtSigreturn:
    case Sys::kSigaltstack:
    case Sys::kSchedYield: case Sys::kSchedSetaffinity: case Sys::kSchedGetaffinity:
    case Sys::kSetTidAddress: case Sys::kFutex: case Sys::kArchPrctl:
    case Sys::kGetrlimit: case Sys::kGetrusage:
    case Sys::kGettimeofday: case Sys::kClockGettime:
    case Sys::kPerfEventOpen:
      return Disposition::kLocal;
    // Work in progress / deliberately deviating (LTP failures).
    case Sys::kMovePages: case Sys::kMigratePages: case Sys::kMremap:
    case Sys::kPtrace: case Sys::kPrctl:
    case Sys::kTimerCreate: case Sys::kTimerSettime:
    case Sys::kSchedSetscheduler: case Sys::kSchedGetscheduler:
      return Disposition::kPartial;
    default:
      // "The rest are offloaded to Linux."
      return Disposition::kOffloaded;
  }
}

bool McKernel::capable(Capability c) const {
  switch (c) {
    case Capability::kForkFull: return true;
    case Capability::kPtraceFull: return false;   // hard across the proxy split
    case Capability::kPtraceBasic: return true;
    case Capability::kMovePages: return false;    // "work in progress"
    case Capability::kMigratePages: return false;
    case Capability::kCloneEsotericFlags: return false;
    case Capability::kBrkShrinkReleases: return !options_.hpc_brk;
    case Capability::kMremapFull: return false;
    case Capability::kTimersFull: return false;
    case Capability::kSignalsFull: return true;
    case Capability::kProcSelfComplete: return false;  // reimplemented subset
    case Capability::kCpuHotplug: return false;
    case Capability::kPerfCounters: return true;
    case Capability::kTimeSharing: return options_.timeshare;
    case Capability::kCount_: break;
  }
  return false;
}

MmapRet McKernel::sys_mmap(Process& p, sim::Bytes length, mem::VmaKind kind,
                           mem::MemPolicy policy) {
  count_call(Disposition::kLocal);
  if (length == 0) return {kEINVAL, local_syscall_cost(), nullptr};
  mem::Vma& vma = p.address_space().map(length, kind, policy);

  if (kind == mem::VmaKind::kShm && !options_.mpol_shm_premap) {
    // MPI shared-memory sections are file-backed through the proxy; without
    // --mpol-shm-premap they are demand-paged like on Linux.
    mem::PlaceRequest lreq;
    lreq.bytes = length;
    lreq.policy = policy;
    lreq.home_quadrant = p.home_quadrant();
    vma.policy = policy;
    const mem::PlaceResult lpr = mem::place_linux(topo_, mem_costs_, lreq, vma, true);
    return {kOk, local_syscall_cost() + lpr.map_cost, &vma};
  }

  mem::PlaceRequest req;
  req.bytes = length;
  req.policy = policy.mode == mem::PolicyMode::kDefault ? p.mempolicy() : policy;
  req.home_quadrant = p.home_quadrant();
  req.prefer_mcdram = options_.prefer_mcdram;
  req.use_large_pages = true;
  req.demand_fallback = options_.demand_fallback;
  // McKernel "does not partition memory between LWK processes": no quota.
  vma.policy = req.policy;

  // "Both LWKs allocate physical memory at the time of the mapping request
  // ... when physical memory to back it entirely is available. McKernel has
  // an additional feature to automatically fall back to demand paging to
  // allow best effort allocation from the specific NUMA domain when enough
  // physical memory is not available." When the preferred kind (MCDRAM)
  // cannot back the whole mapping, the mapping is left to demand paging —
  // pages then fill remaining MCDRAM at touch time, interleaved fairly
  // across the ranks, before spilling to DDR4.
  const hw::DomainId local_hbm =
      topo_.domain_in_quadrant(p.home_quadrant(), hw::MemKind::kMcdram);
  if (options_.demand_fallback && options_.prefer_mcdram && local_hbm >= 0 &&
      req.policy.mode == mem::PolicyMode::kDefault &&
      phys_.domain(local_hbm).free_bytes() < sim::align_up(length, 4 * sim::KiB)) {
    vma.demand_paged = true;
    vma.touch_page = mem::PageSize::k2M;
    vma.touch_lwk_order = true;
    fallback_engaged_ = true;
    return {kOk, local_syscall_cost() + mem_costs_.pte_per_page, &vma};
  }

  const mem::PlaceResult pr = mem::place_lwk(phys_, topo_, mem_costs_, req);
  vma.placement = pr.placement;
  vma.extents = pr.extents;
  if (pr.deferred > 0) {
    vma.demand_paged = true;
    vma.touch_page = mem::PageSize::k2M;  // fallback still uses large granules
    fallback_engaged_ = fallback_engaged_ || pr.used_demand_fallback;
  }
  return {pr.err, local_syscall_cost() + pr.map_cost, &vma};
}

sim::TimeNs McKernel::local_syscall_cost() const {
  return sim::TimeNs{450};  // minimal trap path, no auditing/seccomp layers
}

sim::TimeNs McKernel::offload_cost(sim::Bytes payload) const {
  // LWK-side trap + IKC round trip + Linux-side handler executed by the
  // proxy process (priced as a Linux syscall body).
  const sim::TimeNs t = local_syscall_cost() +
                        ikc_.offload_round_trip(64 + payload, 64) + sim::TimeNs{950};
  // A tenant on the Linux cores delays proxy scheduling, but only the
  // offloaded path — the LWK cores themselves are isolated.
  return options_.co_tenant_on_linux ? t.scaled(1.6) : t;
}

sim::TimeNs McKernel::network_syscall_overhead() const {
  // Device-file write for the Omni-Path send path — offloaded.
  return offload_cost(512);
}

std::unique_ptr<mem::HeapEngine> McKernel::make_heap(Process& p) {
  mem::LwkHeapOptions opt;
  opt.hpc_mode = options_.hpc_brk;
  opt.prefer_mcdram = options_.prefer_mcdram;
  opt.zero_first_4k_only = true;
  opt.aggressive_extension = options_.aggressive_heap_extension;
  return std::make_unique<mem::LwkHeap>(phys_, topo_, mem_costs_, opt, p.home_quadrant());
}

}  // namespace mkos::kernel
