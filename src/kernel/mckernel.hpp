#pragma once
// IHK/McKernel: an LWK developed from scratch, booted by IHK, binary
// compatible with Linux but implementing only performance-sensitive calls
// locally; everything else is offloaded over IKC to a proxy process on the
// Linux cores. Stronger isolation than mOS (Linux cannot touch the LWK
// scheduler) at the price of a larger compatibility re-implementation
// surface (/proc//sys reimplemented, tools must run on LWK cores).

#include "kernel/ikc.hpp"
#include "kernel/kernel.hpp"

namespace mkos::kernel {

struct McKernelOptions {
  bool hpc_brk = true;            ///< Section IV brk() optimizations
  bool demand_fallback = true;    ///< fall back to demand paging on pressure
  bool prefer_mcdram = true;      ///< placement spill order MCDRAM -> DDR4
  bool mpol_shm_premap = false;   ///< --mpol-shm-premap proxy option
  bool disable_sched_yield = false;  ///< --disable-sched-yield proxy option
  bool timeshare = false;         ///< optional time sharing on listed cores
  /// A co-located tenant runs on the *Linux* cores: the LWK cores stay
  /// silent (strong partitioning) but offloaded calls contend with it.
  bool co_tenant_on_linux = false;
  double aggressive_heap_extension = 1.0;
};

class McKernel final : public Kernel {
 public:
  McKernel(const hw::NodeTopology& topo, mem::PhysMemory& phys, IkcChannel ikc,
           McKernelOptions options);

  [[nodiscard]] OsKind kind() const override { return OsKind::kMcKernel; }
  [[nodiscard]] std::string_view name() const override { return "McKernel"; }
  [[nodiscard]] Disposition disposition(Sys s) const override;
  [[nodiscard]] bool capable(Capability c) const override;

  [[nodiscard]] MmapRet sys_mmap(Process& p, sim::Bytes length, mem::VmaKind kind,
                                 mem::MemPolicy policy) override;

  [[nodiscard]] sim::TimeNs local_syscall_cost() const override;
  [[nodiscard]] sim::TimeNs offload_cost(sim::Bytes payload) const override;
  [[nodiscard]] sim::TimeNs network_syscall_overhead() const override;
  [[nodiscard]] double network_bw_factor() const override { return 0.82; }

  [[nodiscard]] const NoiseModel& noise() const override { return noise_; }
  [[nodiscard]] const SchedulerModel& scheduler_model() const override { return sched_; }
  [[nodiscard]] const PseudoFs& pseudofs() const override { return fs_; }
  [[nodiscard]] mem::MemCostModel mem_costs() const override { return mem_costs_; }

  [[nodiscard]] const McKernelOptions& options() const { return options_; }
  [[nodiscard]] const IkcChannel& ikc() const { return ikc_; }

  /// Every offloaded call is one proxy round trip over IKC.
  [[nodiscard]] std::uint64_t ikc_round_trips() const override {
    return offloaded_call_count();
  }

  /// Whether any mapping of this kernel fell back to demand paging (the
  /// CCS-QCD mechanism the paper's kernel logs revealed).
  [[nodiscard]] bool demand_fallback_engaged() const { return fallback_engaged_; }

 protected:
  [[nodiscard]] std::unique_ptr<mem::HeapEngine> make_heap(Process& p) override;
  [[nodiscard]] bool fds_proxy_managed() const override { return true; }

 private:
  McKernelOptions options_;
  IkcChannel ikc_;
  NoiseModel noise_;
  SchedulerModel sched_;
  PseudoFs fs_;
  mem::MemCostModel mem_costs_;
  bool fallback_engaged_ = false;
};

}  // namespace mkos::kernel
