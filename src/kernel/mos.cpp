#include "kernel/mos.hpp"

namespace mkos::kernel {

namespace {
mem::MemCostModel mos_mem_costs() {
  // Leaner than Linux, slightly heavier than McKernel: the LWK path shares
  // Linux data structures and occasionally takes their locks.
  mem::MemCostModel c;
  c.syscall_entry = sim::TimeNs{300};
  c.fault_4k = sim::TimeNs{1900};
  c.fault_large = sim::TimeNs{1600};
  c.pte_per_page = sim::TimeNs{15};
  c.contention_slope = 0.10;
  return c;
}
}  // namespace

Mos::Mos(const hw::NodeTopology& topo, mem::PhysMemory& phys, MosOptions options)
    : Kernel(topo, phys),
      options_(options),
      noise_(noise_lwk_mos()),
      sched_(SchedulerModel::lwk_coop(false)),
      fs_(pseudofs_mos()),
      mem_costs_(mos_mem_costs()) {}

Disposition Mos::disposition(Sys s) const {
  switch (s) {
    case Sys::kBrk: case Sys::kMmap: case Sys::kMunmap: case Sys::kMprotect:
    case Sys::kMadvise: case Sys::kSetMempolicy: case Sys::kGetMempolicy:
    case Sys::kMbind: case Sys::kMlock: case Sys::kMunlock:
    case Sys::kShmget: case Sys::kShmat: case Sys::kShmdt:
    case Sys::kClone:
    case Sys::kExit: case Sys::kExitGroup:
    case Sys::kGetpid: case Sys::kGettid: case Sys::kGetppid:
    case Sys::kRtSigaction: case Sys::kRtSigprocmask: case Sys::kRtSigreturn:
    case Sys::kSchedYield: case Sys::kSchedSetaffinity: case Sys::kSchedGetaffinity:
    case Sys::kSetTidAddress: case Sys::kFutex: case Sys::kArchPrctl:
    case Sys::kGettimeofday: case Sys::kClockGettime:
      return Disposition::kLocal;
    // Not fully implemented yet in the evaluated version.
    case Sys::kFork: case Sys::kVfork:
      return Disposition::kUnsupported;
    case Sys::kMovePages: case Sys::kMigratePages: case Sys::kMremap:
    case Sys::kPtrace:  // works, but 4 of the 5 LTP cases fail
      return Disposition::kPartial;
    default:
      // Everything else runs on the Linux side via thread migration —
      // including /proc, /sys and the rest of the VFS, reused wholesale.
      return Disposition::kOffloaded;
  }
}

bool Mos::capable(Capability c) const {
  switch (c) {
    case Capability::kForkFull: return false;  // "fork() is not fully implemented yet"
    case Capability::kPtraceFull: return false;  // 4 of 5 LTP ptrace tests fail
    case Capability::kPtraceBasic: return true;  // "ptrace() is working in mOS"
    case Capability::kMovePages: return false;
    case Capability::kMigratePages: return false;
    case Capability::kCloneEsotericFlags: return false;
    case Capability::kBrkShrinkReleases: return !options_.hpc_brk;
    case Capability::kMremapFull: return false;
    case Capability::kTimersFull: return true;   // reuses Linux timers
    case Capability::kSignalsFull: return true;
    case Capability::kProcSelfComplete: return true;  // reused from Linux
    case Capability::kCpuHotplug: return false;
    case Capability::kPerfCounters: return true;
    case Capability::kTimeSharing: return false;  // strictly cooperative
    case Capability::kCount_: break;
  }
  return false;
}

MmapRet Mos::sys_mmap(Process& p, sim::Bytes length, mem::VmaKind kind,
                      mem::MemPolicy policy) {
  count_call(Disposition::kLocal);
  if (length == 0) return {kEINVAL, local_syscall_cost(), nullptr};
  mem::Vma& vma = p.address_space().map(length, kind, policy);

  mem::PlaceRequest req;
  req.bytes = length;
  req.policy = policy.mode == mem::PolicyMode::kDefault ? p.mempolicy() : policy;
  req.home_quadrant = p.home_quadrant();
  req.prefer_mcdram = options_.prefer_mcdram;
  req.use_large_pages = true;
  req.rigid = false;  // spilling MCDRAM -> DDR4 is transparent and allowed...
  req.demand_fallback = false;  // ...but no demand-paging escape hatch
  if (options_.partition_mcdram_per_rank) {
    req.mcdram_quota = p.mcdram_quota();
    req.mcdram_quota_used = p.mcdram_used();
  }
  vma.policy = req.policy;

  const mem::PlaceResult pr = mem::place_lwk(phys_, topo_, mem_costs_, req);
  vma.placement = pr.placement;
  vma.extents = pr.extents;
  p.add_mcdram_used(pr.mcdram_taken);
  // Rigid allocation: whatever could not be physically backed is an error.
  if (pr.backed < sim::align_up(length, 4 * sim::KiB)) {
    p.address_space().unmap(vma.start);
    for (const auto& e : pr.extents) phys_.domain(e.domain).free(e);
    return {kENOMEM, local_syscall_cost() + pr.map_cost, nullptr};
  }
  return {kOk, local_syscall_cost() + pr.map_cost, &vma};
}

SyscallRet Mos::sys_fork(Process& p) {
  (void)p;
  count_call(Disposition::kUnsupported);
  return {kENOSYS, local_syscall_cost()};
}

sim::TimeNs Mos::local_syscall_cost() const { return sim::TimeNs{500}; }

sim::TimeNs Mos::offload_cost(sim::Bytes payload) const {
  // Thread migration: no message marshalling — the thread shows up on a
  // Linux core with its address space already shared, runs the Linux
  // handler, and migrates back. Payload size is irrelevant to transport.
  (void)payload;
  const sim::TimeNs t = local_syscall_cost() + migrate_to_linux() + sim::TimeNs{950} +
                        migrate_back() + cache_refill_penalty();
  // The migrated thread queues behind the tenant on the Linux cores.
  return options_.co_tenant_on_linux ? t.scaled(1.6) : t;
}

sim::TimeNs Mos::network_syscall_overhead() const { return offload_cost(512); }

std::unique_ptr<mem::HeapEngine> Mos::make_heap(Process& p) {
  mem::LwkHeapOptions opt;
  opt.hpc_mode = options_.hpc_brk;
  opt.prefer_mcdram = options_.prefer_mcdram;
  opt.zero_first_4k_only = true;
  return std::make_unique<mem::LwkHeap>(phys_, topo_, mem_costs_, opt, p.home_quadrant());
}

}  // namespace mkos::kernel
