#pragma once
// mOS: the LWK compiled directly into Linux. Retains Linux-compatible
// internal data structures (task_struct), so system-call offloading is
// implemented by *migrating the issuing thread* to a Linux core, running the
// call there, and migrating back — no proxy process, no message channel.
// Pseudo-filesystems and ptrace are mostly reused from Linux; fork() is not
// fully implemented yet (the LTP cascade of Section III-D). Memory is
// grabbed early at boot (contiguous) and divided across LWK processes at
// job launch (rigid: "Only physically available memory can be allocated").

#include "kernel/kernel.hpp"

namespace mkos::kernel {

struct MosOptions {
  bool hpc_brk = true;          ///< runtime-toggleable (Table I rows)
  bool prefer_mcdram = true;
  /// Divide reserved MCDRAM between ranks at launch (NUMA-respecting).
  bool partition_mcdram_per_rank = true;
  /// A co-located tenant runs on the Linux cores (see McKernelOptions).
  bool co_tenant_on_linux = false;
};

class Mos final : public Kernel {
 public:
  Mos(const hw::NodeTopology& topo, mem::PhysMemory& phys, MosOptions options);

  [[nodiscard]] OsKind kind() const override { return OsKind::kMos; }
  [[nodiscard]] std::string_view name() const override { return "mOS"; }
  [[nodiscard]] Disposition disposition(Sys s) const override;
  [[nodiscard]] bool capable(Capability c) const override;

  [[nodiscard]] MmapRet sys_mmap(Process& p, sim::Bytes length, mem::VmaKind kind,
                                 mem::MemPolicy policy) override;
  [[nodiscard]] SyscallRet sys_fork(Process& p) override;

  [[nodiscard]] sim::TimeNs local_syscall_cost() const override;
  [[nodiscard]] sim::TimeNs offload_cost(sim::Bytes payload) const override;
  [[nodiscard]] sim::TimeNs network_syscall_overhead() const override;
  [[nodiscard]] double network_bw_factor() const override { return 0.88; }

  [[nodiscard]] const NoiseModel& noise() const override { return noise_; }
  [[nodiscard]] const SchedulerModel& scheduler_model() const override { return sched_; }
  [[nodiscard]] const PseudoFs& pseudofs() const override { return fs_; }
  [[nodiscard]] mem::MemCostModel mem_costs() const override { return mem_costs_; }

  [[nodiscard]] const MosOptions& options() const { return options_; }

  /// Thread-migration cost components (exposed for the micro-bench).
  [[nodiscard]] sim::TimeNs migrate_to_linux() const { return sim::TimeNs{1250}; }
  [[nodiscard]] sim::TimeNs migrate_back() const { return sim::TimeNs{1050}; }
  /// The migrated thread returns with cold L1/L2/TLB state on its LWK core;
  /// on syscall-hot paths this recurring refill cost is why mOS trails even
  /// McKernel on LAMMPS at scale ("We are still investigating the reasons
  /// for mOS" — modeled as cache disturbance, the leading suspect).
  [[nodiscard]] sim::TimeNs cache_refill_penalty() const { return sim::TimeNs{2000}; }

 protected:
  [[nodiscard]] std::unique_ptr<mem::HeapEngine> make_heap(Process& p) override;

 private:
  MosOptions options_;
  NoiseModel noise_;
  SchedulerModel sched_;
  PseudoFs fs_;
  mem::MemCostModel mem_costs_;
};

}  // namespace mkos::kernel
