#include "kernel/node.hpp"

#include "sim/contracts.hpp"

namespace mkos::kernel {

NodeOsConfig NodeOsConfig::linux_default() { return NodeOsConfig{}; }

NodeOsConfig NodeOsConfig::mckernel_default() {
  NodeOsConfig c;
  c.os = OsKind::kMcKernel;
  return c;
}

NodeOsConfig NodeOsConfig::mos_default() {
  NodeOsConfig c;
  c.os = OsKind::kMos;
  return c;
}

NodeOsConfig NodeOsConfig::fusedos_default() {
  NodeOsConfig c;
  c.os = OsKind::kFusedOs;
  return c;
}

Node::Node(hw::NodeTopology topo, NodeOsConfig config, std::uint64_t seed)
    : topo_(std::move(topo)), config_(config), phys_(topo_) {
  MKOS_EXPECTS(config_.app_cores + config_.service_cores <= topo_.core_count());
  sim::Rng rng{seed};

  PartitionSpec spec;
  spec.lwk_cores = config_.app_cores;
  spec.linux_cores = config_.service_cores;
  spec.late_reservation = config_.os == OsKind::kMcKernel;

  partition_ = mkos::kernel::partition(phys_, topo_, spec, rng);

  linux_ = std::make_unique<LinuxKernel>(topo_, phys_, config_.linux_opts);
  switch (config_.os) {
    case OsKind::kLinux:
      break;
    case OsKind::kMcKernel: {
      // IKC endpoints: LWK cores sit in all quadrants; Linux cores are the
      // first few (quadrant 0). Use the worst-case quadrant distance of an
      // application core for the channel model.
      IkcChannel ikc{IkcCosts{}, topo_.quadrant_count() - 1, 0};
      lwk_ = std::make_unique<McKernel>(topo_, phys_, ikc, config_.mckernel_opts);
      break;
    }
    case OsKind::kMos:
      lwk_ = std::make_unique<Mos>(topo_, phys_, config_.mos_opts);
      break;
    case OsKind::kFusedOs: {
      // The CL proxy inherits Blue Gene heritage: memory grabbed early.
      IkcChannel channel{IkcCosts{}, topo_.quadrant_count() - 1, 0};
      lwk_ = std::make_unique<FusedOs>(topo_, phys_, channel);
      break;
    }
  }
}

Kernel& Node::app_kernel() { return lwk_ ? *lwk_ : *linux_; }

const Kernel& Node::app_kernel() const { return lwk_ ? *lwk_ : *linux_; }

LinuxKernel& Node::linux() { return *linux_; }

Process& Node::launch_rank(int home_quadrant, int expected_ranks_on_node) {
  MKOS_EXPECTS(expected_ranks_on_node >= 1);
  Process& p = app_kernel().create_process(home_quadrant);

  if (config_.os == OsKind::kMcKernel || config_.os == OsKind::kFusedOs) {
    // "For every single process running on McKernel there is a process
    // spawned on Linux, called the proxy process." (FusedOS: the CL proxy.)
    Process& proxy = linux_->create_process(0);
    (void)proxy;
    ++proxy_count_;
  } else if (config_.os == OsKind::kMos && config_.mos_opts.partition_mcdram_per_rank) {
    // "mOS allows LWK resources to be divided at the time of application
    // launch. This division respects NUMA boundaries."
    const sim::Bytes mcdram_free =
        phys_.free_bytes_of_kind(topo_, hw::MemKind::kMcdram);
    p.set_mcdram_quota(mcdram_free / static_cast<sim::Bytes>(expected_ranks_on_node));
  }
  return p;
}

}  // namespace mkos::kernel
