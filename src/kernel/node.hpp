#pragma once
// A booted compute node: hardware + operating system stack.
//
// Linux-only nodes run one kernel. Multi-kernel nodes run Linux on the
// service cores and an LWK (McKernel or mOS) on the application cores, with
// the partition applied to physical memory at boot:
//   * mOS grabs its contiguous blocks early (compiled into Linux);
//   * McKernel reserves through IHK after Linux booted, inheriting
//     fragmentation from Linux's unmovable allocations.
// For every McKernel application process a proxy process is spawned on the
// Linux side (system-call offloading requires its execution context).

#include <memory>

#include "hw/topology.hpp"
#include "kernel/ihk.hpp"
#include "kernel/linux_kernel.hpp"
#include "kernel/fusedos.hpp"
#include "kernel/mckernel.hpp"
#include "kernel/mos.hpp"

namespace mkos::kernel {

struct NodeOsConfig {
  OsKind os = OsKind::kLinux;
  int app_cores = 64;      ///< "we dedicated 64 CPU cores to the application"
  int service_cores = 4;   ///< "and reserved 4 CPU cores for OS activities"
  LinuxOptions linux_opts;
  McKernelOptions mckernel_opts;
  MosOptions mos_opts;

  [[nodiscard]] static NodeOsConfig linux_default();
  [[nodiscard]] static NodeOsConfig mckernel_default();
  [[nodiscard]] static NodeOsConfig mos_default();
  [[nodiscard]] static NodeOsConfig fusedos_default();
};

class Node {
 public:
  Node(hw::NodeTopology topo, NodeOsConfig config, std::uint64_t seed);

  /// The kernel HPC ranks run on (the LWK, or Linux itself).
  [[nodiscard]] Kernel& app_kernel();
  [[nodiscard]] const Kernel& app_kernel() const;
  /// The Linux instance (service side on multi-kernels).
  [[nodiscard]] LinuxKernel& linux();

  [[nodiscard]] const NodeOsConfig& config() const { return config_; }
  [[nodiscard]] const hw::NodeTopology& topo() const { return topo_; }
  [[nodiscard]] mem::PhysMemory& phys() { return phys_; }
  [[nodiscard]] const PartitionResult& partition() const { return partition_; }

  /// Launch one application rank homed on `home_quadrant`. On McKernel this
  /// also spawns the Linux-side proxy process. On mOS it assigns the
  /// launch-time MCDRAM quota (reserved MCDRAM / expected ranks).
  Process& launch_rank(int home_quadrant, int expected_ranks_on_node);

  [[nodiscard]] int proxy_process_count() const { return proxy_count_; }
  [[nodiscard]] int app_core_count() const { return config_.app_cores; }

  /// Partitioning means a Linux-side kernel crash does not take the
  /// application down: the LWK keeps computing while Linux reboots (it only
  /// stalls on offloaded services). A Linux-only node loses everything.
  [[nodiscard]] bool lwk_survives_linux_crash() const { return lwk_ != nullptr; }

 private:
  hw::NodeTopology topo_;
  NodeOsConfig config_;
  mem::PhysMemory phys_;
  std::unique_ptr<LinuxKernel> linux_;
  std::unique_ptr<Kernel> lwk_;  // null on Linux-only nodes
  PartitionResult partition_;
  int proxy_count_ = 0;
};

}  // namespace mkos::kernel
