#include "kernel/noise.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/contracts.hpp"

namespace mkos::kernel {

namespace {

/// Below this event count the exact per-event loop is cheaper than (and no
/// less accurate than) the moment-matched normal for capped components.
constexpr std::uint64_t kNormalSumThreshold = 32;

/// Bounded proxy scale for the second moment of an uncapped Pareto with
/// alpha <= 2 (divergent m2): pretend a cap at 100x the scale, mirroring
/// the old expected_fraction() fallback. Only reached by models no preset
/// uses; every heavy-tailed preset component carries a real cap.
constexpr double kUncappedParetoProxy = 100.0;

/// One exact draw of component `c` (capped), in ns. The per-event fallback
/// of the batched paths and the reference the property tests compare against.
double draw_one_ns(const NoiseComponent& c, sim::Rng& rng) {
  double d;
  switch (c.dist) {
    case NoiseComponent::Dist::kFixed:
      d = static_cast<double>(c.duration.ns());
      break;
    case NoiseComponent::Dist::kExponential:
      d = rng.exponential(static_cast<double>(c.duration.ns()));
      break;
    case NoiseComponent::Dist::kPareto:
      d = rng.pareto(static_cast<double>(c.duration.ns()), c.pareto_alpha);
      break;
    default:
      d = 0.0;
  }
  if (c.cap.ns() > 0) d = std::min(d, static_cast<double>(c.cap.ns()));
  return d;
}

/// Truncated moments of Pareto(xm, alpha) capped at c (requires c > xm):
///   E[min(X,c)^k] = integral_xm^c x^k f(x) dx + c^k (xm/c)^alpha.
ComponentMoments pareto_capped_moments(double xm, double alpha, double c) {
  ComponentMoments m;
  const double tail = std::pow(xm / c, alpha);  // P(X > c)
  if (alpha == 1.0) {
    m.m1_ns = xm * (1.0 + std::log(c / xm));
  } else {
    m.m1_ns = alpha / (alpha - 1.0) * xm * (1.0 - std::pow(xm / c, alpha - 1.0)) +
              c * tail;
  }
  if (alpha == 2.0) {
    m.m2_ns2 = 2.0 * xm * xm * std::log(c / xm) + c * c * tail;
  } else {
    m.m2_ns2 = alpha / (2.0 - alpha) * xm * xm * (std::pow(c / xm, 2.0 - alpha) - 1.0) +
               c * c * tail;
  }
  return m;
}

}  // namespace

ComponentMoments component_moments(const NoiseComponent& c) {
  ComponentMoments m;
  const double cap = static_cast<double>(c.cap.ns());
  switch (c.dist) {
    case NoiseComponent::Dist::kFixed: {
      const double d = static_cast<double>(c.duration.ns());
      const double v = cap > 0.0 ? std::min(d, cap) : d;
      m.m1_ns = v;
      m.m2_ns2 = v * v;
      break;
    }
    case NoiseComponent::Dist::kExponential: {
      const double mu = static_cast<double>(c.duration.ns());
      if (cap <= 0.0) {
        m.m1_ns = mu;
        m.m2_ns2 = 2.0 * mu * mu;
      } else {
        // E[min(X,c)] = mu (1 - e^{-c/mu});
        // E[min(X,c)^2] = 2 mu^2 - e^{-c/mu} (2 c mu + 2 mu^2).
        const double e = std::exp(-cap / mu);
        m.m1_ns = mu * (1.0 - e);
        m.m2_ns2 = 2.0 * mu * mu - e * (2.0 * cap * mu + 2.0 * mu * mu);
      }
      break;
    }
    case NoiseComponent::Dist::kPareto: {
      const double xm = static_cast<double>(c.duration.ns());
      const double alpha = c.pareto_alpha;
      if (cap > 0.0 && cap <= xm) {
        // Cap at or below the scale: every draw clips to the cap.
        m.m1_ns = cap;
        m.m2_ns2 = cap * cap;
      } else if (cap > 0.0) {
        m = pareto_capped_moments(xm, alpha, cap);
      } else if (alpha > 2.0) {
        m.m1_ns = alpha * xm / (alpha - 1.0);
        m.m2_ns2 = alpha * xm * xm / (alpha - 2.0);
      } else {
        // Divergent raw moments: bounded proxy (see kUncappedParetoProxy).
        m = pareto_capped_moments(xm, std::max(alpha, 1e-6),
                                  xm * kUncappedParetoProxy);
        m.m2_finite = false;
      }
      break;
    }
    default:
      break;
  }
  return m;
}

double sample_component_sum_ns(const NoiseComponent& c, const ComponentMoments& m,
                               std::uint64_t n, sim::Rng& rng,
                               SampleCounters* counters) {
  if (n == 0) return 0.0;
  const double cap = static_cast<double>(c.cap.ns());
  const double nd = static_cast<double>(n);

  // Exact closed forms first.
  if (c.dist == NoiseComponent::Dist::kFixed) {
    if (counters != nullptr) ++counters->analytic_sums;
    return m.m1_ns * nd;  // every event is the (capped) constant
  }
  if (c.dist == NoiseComponent::Dist::kExponential && cap <= 0.0) {
    if (counters != nullptr) ++counters->analytic_sums;
    return rng.exponential_sum(n, static_cast<double>(c.duration.ns()));
  }

  // Capped / heavy-tailed shapes: moment-matched normal over the truncated
  // moments once the CLT has teeth, exact per-event draws below that.
  if (n >= kNormalSumThreshold && m.m2_finite) {
    if (counters != nullptr) ++counters->analytic_sums;
    const double var = std::max(m.m2_ns2 - m.m1_ns * m.m1_ns, 0.0) * nd;
    double s = rng.normal(m.m1_ns * nd, std::sqrt(var));
    double lo = 0.0;
    double hi = std::numeric_limits<double>::infinity();
    if (c.dist == NoiseComponent::Dist::kPareto) {
      // Every Pareto draw is at least the scale xm (or the cap, if lower).
      const double xm = static_cast<double>(c.duration.ns());
      lo = nd * (cap > 0.0 ? std::min(xm, cap) : xm);
    }
    if (cap > 0.0) hi = nd * cap;
    return std::clamp(s, lo, hi);
  }

  if (counters != nullptr) counters->exact_events += n;
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) sum += draw_one_ns(c, rng);
  return sum;
}

double sample_component_max_ns(const NoiseComponent& c, std::uint64_t n,
                               sim::Rng& rng) {
  MKOS_EXPECTS(n >= 1);
  double u = rng.next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  if (u >= 1.0) u = 1.0 - 0x1.0p-53;
  // Max of n iid draws with CDF F is F^{-1}(U^{1/n}). With p = U^{1/n},
  // 1 - p = -expm1(ln(U)/n) keeps precision when p -> 1 (large n).
  const double one_minus_p = -std::expm1(std::log(u) / static_cast<double>(n));
  double d;
  switch (c.dist) {
    case NoiseComponent::Dist::kFixed:
      d = static_cast<double>(c.duration.ns());
      break;
    case NoiseComponent::Dist::kExponential:
      d = -static_cast<double>(c.duration.ns()) * std::log(one_minus_p);
      break;
    case NoiseComponent::Dist::kPareto:
      d = static_cast<double>(c.duration.ns()) *
          std::pow(one_minus_p, -1.0 / c.pareto_alpha);
      break;
    default:
      d = 0.0;
  }
  if (c.cap.ns() > 0) d = std::min(d, static_cast<double>(c.cap.ns()));
  return d;
}

NoiseModel::NoiseModel(std::vector<NoiseComponent> components)
    : components_(std::move(components)) {
  moments_.reserve(components_.size());
  for (const auto& c : components_) moments_.push_back(component_moments(c));
  for (std::size_t i = 0; i < components_.size(); ++i) push_lane(i);
}

NoiseModel& NoiseModel::add(NoiseComponent c) {
  moments_.push_back(component_moments(c));
  components_.push_back(std::move(c));
  push_lane(components_.size() - 1);
  return *this;
}

void NoiseModel::push_lane(std::size_t i) {
  const ComponentMoments& m = moments_[i];
  lanes_.rate_hz.push_back(components_[i].rate_hz);
  lanes_.m1_ns.push_back(m.m1_ns);
  lanes_.var_ns2.push_back(std::max(m.m2_ns2 - m.m1_ns * m.m1_ns, 0.0));
}

double NoiseModel::expected_fraction() const {
  double f = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    f += components_[i].rate_hz * moments_[i].m1_ns * 1e-9;
  }
  return f;
}

sim::TimeNs NoiseModel::sample(sim::TimeNs span, sim::Rng& rng,
                               SampleCounters* counters) const {
  MKOS_EXPECTS(span >= sim::TimeNs{0});
  sim::TimeNs stolen{0};
  const double span_s = span.sec();
  // Scan the SoA rate lane, not the components: in the common all-zero case
  // this touches one contiguous double per component instead of the whole
  // label-bearing struct. lanes_.rate_hz[i] == components_[i].rate_hz, so
  // every draw is bit-identical to the AoS loop this replaces.
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const std::uint64_t n = rng.poisson(lanes_.rate_hz[i] * span_s);
    if (n == 0) continue;
    stolen += sim::from_double_ns(
        sample_component_sum_ns(components_[i], moments_[i], n, rng, counters));
  }
  return stolen;
}

void NoiseModel::sample_batch(std::span<const sim::TimeNs> spans,
                              std::span<sim::TimeNs> out, sim::Rng& rng,
                              SampleCounters* counters) const {
  MKOS_EXPECTS(out.size() == spans.size());
  for (auto& o : out) o = sim::TimeNs{0};
  if (spans.empty() || lanes_.size() == 0) return;

  std::vector<double> means(spans.size());
  std::vector<std::uint64_t> counts(spans.size());
  std::vector<std::uint64_t> clt_counts(spans.size());
  std::vector<double> sums(spans.size());
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const NoiseComponent& c = components_[i];
    const ComponentMoments& m = moments_[i];
    const double rate = lanes_.rate_hz[i];
    for (std::size_t j = 0; j < spans.size(); ++j) {
      MKOS_EXPECTS(spans[j] >= sim::TimeNs{0});
      means[j] = rate * spans[j].sec();
    }
    rng.fill_poisson(means, counts);

    const double cap = static_cast<double>(c.cap.ns());
    if (c.dist == NoiseComponent::Dist::kFixed) {
      for (std::size_t j = 0; j < spans.size(); ++j) {
        if (counts[j] == 0) continue;
        if (counters != nullptr) ++counters->analytic_sums;
        out[j] += sim::from_double_ns(m.m1_ns * static_cast<double>(counts[j]));
      }
      continue;
    }
    if (c.dist == NoiseComponent::Dist::kExponential && cap <= 0.0) {
      rng.fill_exponential_sums(counts, static_cast<double>(c.duration.ns()), sums);
      for (std::size_t j = 0; j < spans.size(); ++j) {
        if (counts[j] == 0) continue;
        if (counters != nullptr) ++counters->analytic_sums;
        out[j] += sim::from_double_ns(sums[j]);
      }
      continue;
    }

    // Capped / heavy-tailed shapes: the CLT-eligible part of the lane goes
    // through one batched normal fill; sub-threshold counts fall back to
    // exact per-event draws, exactly as the scalar path does.
    std::uint64_t clt_mask_nonzero = 0;
    for (std::size_t j = 0; j < spans.size(); ++j) {
      const bool clt = counts[j] >= kNormalSumThreshold && m.m2_finite;
      means[j] = clt ? 1.0 : 0.0;  // reuse as the CLT-eligibility mask
      clt_mask_nonzero += clt ? 1 : 0;
    }
    if (clt_mask_nonzero > 0) {
      for (std::size_t j = 0; j < spans.size(); ++j) {
        clt_counts[j] = means[j] != 0.0 ? counts[j] : 0;
      }
      rng.fill_normal_sums(clt_counts, m.m1_ns, lanes_.var_ns2[i], sums);
      for (std::size_t j = 0; j < spans.size(); ++j) {
        if (clt_counts[j] == 0) continue;
        if (counters != nullptr) ++counters->analytic_sums;
        const double nd = static_cast<double>(clt_counts[j]);
        double lo = 0.0;
        double hi = std::numeric_limits<double>::infinity();
        if (c.dist == NoiseComponent::Dist::kPareto) {
          const double xm = static_cast<double>(c.duration.ns());
          lo = nd * (cap > 0.0 ? std::min(xm, cap) : xm);
        }
        if (cap > 0.0) hi = nd * cap;
        out[j] += sim::from_double_ns(std::clamp(sums[j], lo, hi));
      }
    }
    for (std::size_t j = 0; j < spans.size(); ++j) {
      if (counts[j] == 0 || means[j] != 0.0) continue;
      if (counters != nullptr) counters->exact_events += counts[j];
      double sum = 0.0;
      for (std::uint64_t k = 0; k < counts[j]; ++k) sum += draw_one_ns(c, rng);
      out[j] += sim::from_double_ns(sum);
    }
  }
}

NoiseModel noise_lwk() {
  // IKC interrupt handling and the odd management poke; sub-microsecond
  // detours at a few hertz: ~0.0002% stolen.
  return NoiseModel{{
      NoiseComponent{"ikc-irq", 2.0, sim::TimeNs{800}, NoiseComponent::Dist::kExponential,
                     1.5, sim::TimeNs{0}},
  }};
}

NoiseModel noise_lwk_mos() {
  NoiseModel m = noise_lwk();
  // Rare stray Linux task reaching an LWK core before eviction.
  m.add(NoiseComponent{"stray-task", 0.02, sim::microseconds(8),
                       NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}});
  return m;
}

NoiseModel noise_linux_nohz_full() {
  return NoiseModel{{
      // Residual per-core housekeeping that nohz_full does not remove:
      // deferred RCU, vmstat updates, clocksource watchdog.
      NoiseComponent{"housekeeping", 25.0, sim::microseconds(4),
                     NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}},
      // kworker items (writeback, timers migrated late).
      NoiseComponent{"kworker", 1.2, sim::microseconds(30),
                     NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}},
      // Daemon tail: cgroup accounting walks, page-cache flushes. Bounded —
      // these detours dilate long compute phases by a few percent at scale.
      NoiseComponent{"daemon-tail", 0.00005, sim::microseconds(700),
                     NoiseComponent::Dist::kPareto, 1.5, sim::milliseconds(2.5)},
  }};
}

NoiseModel noise_linux_collective_tail() {
  // Interference that couples to blocking collectives: a rank descheduled
  // mid-allreduce (IRQ storms, kswapd bursts, MPI progression starvation)
  // stalls the whole dependency tree, and the lengthened collective is
  // exposed to the *next* such event — the runaway that makes Linux
  // collapse at extreme concurrency (Fig. 5b) while long compute windows
  // barely notice. Modeled separately from the per-core compute noise and
  // consumed only by the collective cost model.
  return NoiseModel{{
      NoiseComponent{"collective-stall", 0.004, sim::milliseconds(5.5),
                     NoiseComponent::Dist::kExponential, 1.5, sim::milliseconds(22)},
  }};
}

NoiseModel noise_linux_co_tenant() {
  NoiseModel m = noise_linux_nohz_full();
  // The tenant's threads and page-cache traffic periodically preempt the
  // application ("achieving performance isolation with lightweight
  // co-kernels" is the counter-design).
  m.add(NoiseComponent{"tenant-preempt", 12.0, sim::microseconds(180),
                       NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}});
  m.add(NoiseComponent{"tenant-burst", 0.5, sim::milliseconds(1.5),
                       NoiseComponent::Dist::kPareto, 1.4, sim::milliseconds(20)});
  return m;
}

NoiseModel noise_linux_collective_tail_co_tenant() {
  NoiseModel m = noise_linux_collective_tail();
  m.add(NoiseComponent{"tenant-stall", 0.02, sim::milliseconds(5.0),
                       NoiseComponent::Dist::kExponential, 1.5, sim::milliseconds(22)});
  return m;
}

NoiseModel noise_daemon_storm() {
  // ~2000 preemptions/s of ~150us each: expected_fraction() ~= 0.3, i.e. a
  // storm costs a fully exposed core roughly a third of its cycles.
  return NoiseModel{{
      NoiseComponent{"storm-preempt", 2000.0, sim::microseconds(150),
                     NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}},
  }};
}

NoiseModel noise_linux_service_core() {
  NoiseModel m = noise_linux_nohz_full();
  m.add(NoiseComponent{"services", 40.0, sim::microseconds(120),
                       NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}});
  m.add(NoiseComponent{"service-tail", 0.8, sim::milliseconds(2),
                       NoiseComponent::Dist::kPareto, 1.3, sim::milliseconds(40)});
  return m;
}

}  // namespace mkos::kernel
