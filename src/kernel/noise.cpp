#include "kernel/noise.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace mkos::kernel {

NoiseModel::NoiseModel(std::vector<NoiseComponent> components)
    : components_(std::move(components)) {}

NoiseModel& NoiseModel::add(NoiseComponent c) {
  components_.push_back(std::move(c));
  return *this;
}

double NoiseModel::expected_fraction() const {
  double f = 0.0;
  for (const auto& c : components_) {
    double mean_ns = static_cast<double>(c.duration.ns());
    if (c.dist == NoiseComponent::Dist::kPareto) {
      // Mean of Pareto(xm, alpha) = xm * alpha / (alpha - 1) for alpha > 1;
      // with a cap the truncated mean is bounded — approximate with the cap.
      if (c.pareto_alpha > 1.0) {
        mean_ns = static_cast<double>(c.duration.ns()) * c.pareto_alpha / (c.pareto_alpha - 1.0);
      } else {
        mean_ns = static_cast<double>(c.cap.ns() > 0 ? c.cap.ns() : c.duration.ns() * 100);
      }
      if (c.cap.ns() > 0) mean_ns = std::min(mean_ns, static_cast<double>(c.cap.ns()));
    }
    f += c.rate_hz * mean_ns * 1e-9;
  }
  return f;
}

sim::TimeNs NoiseModel::sample(sim::TimeNs span, sim::Rng& rng) const {
  MKOS_EXPECTS(span >= sim::TimeNs{0});
  sim::TimeNs stolen{0};
  const double span_s = span.sec();
  for (const auto& c : components_) {
    const std::uint64_t n = rng.poisson(c.rate_hz * span_s);
    for (std::uint64_t i = 0; i < n; ++i) {
      double d_ns;
      switch (c.dist) {
        case NoiseComponent::Dist::kFixed:
          d_ns = static_cast<double>(c.duration.ns());
          break;
        case NoiseComponent::Dist::kExponential:
          d_ns = rng.exponential(static_cast<double>(c.duration.ns()));
          break;
        case NoiseComponent::Dist::kPareto:
          d_ns = rng.pareto(static_cast<double>(c.duration.ns()), c.pareto_alpha);
          break;
        default:
          d_ns = 0;
      }
      if (c.cap.ns() > 0) d_ns = std::min(d_ns, static_cast<double>(c.cap.ns()));
      stolen += sim::from_double_ns(d_ns);
    }
  }
  return stolen;
}

NoiseModel noise_lwk() {
  // IKC interrupt handling and the odd management poke; sub-microsecond
  // detours at a few hertz: ~0.0002% stolen.
  return NoiseModel{{
      NoiseComponent{"ikc-irq", 2.0, sim::TimeNs{800}, NoiseComponent::Dist::kExponential,
                     1.5, sim::TimeNs{0}},
  }};
}

NoiseModel noise_lwk_mos() {
  NoiseModel m = noise_lwk();
  // Rare stray Linux task reaching an LWK core before eviction.
  m.add(NoiseComponent{"stray-task", 0.02, sim::microseconds(8),
                       NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}});
  return m;
}

NoiseModel noise_linux_nohz_full() {
  return NoiseModel{{
      // Residual per-core housekeeping that nohz_full does not remove:
      // deferred RCU, vmstat updates, clocksource watchdog.
      NoiseComponent{"housekeeping", 25.0, sim::microseconds(4),
                     NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}},
      // kworker items (writeback, timers migrated late).
      NoiseComponent{"kworker", 1.2, sim::microseconds(30),
                     NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}},
      // Daemon tail: cgroup accounting walks, page-cache flushes. Bounded —
      // these detours dilate long compute phases by a few percent at scale.
      NoiseComponent{"daemon-tail", 0.00005, sim::microseconds(700),
                     NoiseComponent::Dist::kPareto, 1.5, sim::milliseconds(2.5)},
  }};
}

NoiseModel noise_linux_collective_tail() {
  // Interference that couples to blocking collectives: a rank descheduled
  // mid-allreduce (IRQ storms, kswapd bursts, MPI progression starvation)
  // stalls the whole dependency tree, and the lengthened collective is
  // exposed to the *next* such event — the runaway that makes Linux
  // collapse at extreme concurrency (Fig. 5b) while long compute windows
  // barely notice. Modeled separately from the per-core compute noise and
  // consumed only by the collective cost model.
  return NoiseModel{{
      NoiseComponent{"collective-stall", 0.004, sim::milliseconds(5.5),
                     NoiseComponent::Dist::kExponential, 1.5, sim::milliseconds(22)},
  }};
}

NoiseModel noise_linux_co_tenant() {
  NoiseModel m = noise_linux_nohz_full();
  // The tenant's threads and page-cache traffic periodically preempt the
  // application ("achieving performance isolation with lightweight
  // co-kernels" is the counter-design).
  m.add(NoiseComponent{"tenant-preempt", 12.0, sim::microseconds(180),
                       NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}});
  m.add(NoiseComponent{"tenant-burst", 0.5, sim::milliseconds(1.5),
                       NoiseComponent::Dist::kPareto, 1.4, sim::milliseconds(20)});
  return m;
}

NoiseModel noise_linux_collective_tail_co_tenant() {
  NoiseModel m = noise_linux_collective_tail();
  m.add(NoiseComponent{"tenant-stall", 0.02, sim::milliseconds(5.0),
                       NoiseComponent::Dist::kExponential, 1.5, sim::milliseconds(22)});
  return m;
}

NoiseModel noise_linux_service_core() {
  NoiseModel m = noise_linux_nohz_full();
  m.add(NoiseComponent{"services", 40.0, sim::microseconds(120),
                       NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}});
  m.add(NoiseComponent{"service-tail", 0.8, sim::milliseconds(2),
                       NoiseComponent::Dist::kPareto, 1.3, sim::milliseconds(40)});
  return m;
}

}  // namespace mkos::kernel
