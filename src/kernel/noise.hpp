#pragma once
// OS noise (jitter) models.
//
// "Strong partitioning between the two kernels is a key property for
// preventing OS jitter from Linux to be propagated to the LWK" — the LWKs'
// scalability advantage in the paper is almost entirely a noise story at
// high node counts (MiniFE Fig. 5b, Lulesh at 1,728 nodes in Fig. 6a).
//
// A NoiseModel is a set of independent detour sources. Each source fires as
// a Poisson process at `rate_hz` and steals a duration drawn from its
// distribution. sample() returns the total stolen time accumulated while the
// application computes for `span`; collectives then propagate the per-rank
// tails (max-reduction), which is where amplification at scale comes from.

#include <span>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mkos::kernel {

struct NoiseComponent {
  enum class Dist { kFixed, kExponential, kPareto };

  std::string label;
  double rate_hz = 0.0;          ///< mean firings per second of app time
  sim::TimeNs duration{0};       ///< fixed value / exponential mean / Pareto scale
  Dist dist = Dist::kFixed;
  double pareto_alpha = 1.5;     ///< shape for kPareto
  sim::TimeNs cap{0};            ///< 0 = uncapped; otherwise truncate draws
};

/// Closed-form moments of one capped event draw min(X, cap). These replace
/// the Monte-Carlo moment estimation the extreme-value sampler used to run
/// at construction (8k draws per component) and anchor the analytic sum
/// paths: the "expected clip mass" E[(X - cap)+] is folded in exactly by
/// integrating the truncated density instead of the raw one.
struct ComponentMoments {
  double m1_ns = 0.0;    ///< E[min(X, cap)] in ns
  double m2_ns2 = 0.0;   ///< E[min(X, cap)^2] in ns^2
  bool m2_finite = true; ///< false: uncapped Pareto alpha <= 2 (m2 uses a
                         ///  100x-scale effective cap as a bounded proxy)
};
[[nodiscard]] ComponentMoments component_moments(const NoiseComponent& c);

/// Telemetry of the sampling engine: how much work went through analytic
/// O(1) paths vs exact per-event draws. Deterministic per seed, so the
/// counters may live in the run ledger's deterministic block.
struct SampleCounters {
  std::uint64_t analytic_sums = 0;    ///< component sums via Gamma / normal
  std::uint64_t exact_events = 0;     ///< individually drawn events
  std::uint64_t analytic_maxima = 0;  ///< inverse-CDF maximum draws
  std::uint64_t gumbel_draws = 0;     ///< frequent-component Gumbel maxima
};

/// Sum of n iid (capped) draws of component `c`, in nanoseconds.
/// O(events) only for small n on capped/heavy-tailed shapes; otherwise a
/// single Gamma variate (uncapped exponential — exact in distribution) or
/// a moment-matched normal on the truncated moments (large n; CLT).
[[nodiscard]] double sample_component_sum_ns(const NoiseComponent& c,
                                             const ComponentMoments& m,
                                             std::uint64_t n, sim::Rng& rng,
                                             SampleCounters* counters = nullptr);

/// One draw distributed as the maximum of n iid (capped) draws of `c`,
/// via the inverse CDF at U^(1/n) — exact in distribution, one uniform
/// instead of n full draws. Precondition: n >= 1.
[[nodiscard]] double sample_component_max_ns(const NoiseComponent& c, std::uint64_t n,
                                             sim::Rng& rng);

/// Structure-of-arrays lanes over the per-component scalars the sample scan
/// actually reads. A NoiseComponent is label-string-first and ~80 bytes, so
/// scanning the AoS pulls two cache lines per component just to learn that
/// its Poisson count is zero (the common case: rates are per second, spans
/// are microseconds). The lanes pack the firing rates contiguously —
/// parallel to components()/moments(), rebuilt on add().
struct ComponentLanes {
  std::vector<double> rate_hz;   ///< Poisson intensity of each component
  std::vector<double> m1_ns;     ///< truncated first moment (sum fast path)
  std::vector<double> var_ns2;   ///< max(m2 - m1^2, 0): per-event variance

  [[nodiscard]] std::size_t size() const { return rate_hz.size(); }
};

class NoiseModel {
 public:
  NoiseModel() = default;
  explicit NoiseModel(std::vector<NoiseComponent> components);

  [[nodiscard]] const std::vector<NoiseComponent>& components() const { return components_; }

  /// Per-component truncated moments, precomputed at construction (parallel
  /// to components()).
  [[nodiscard]] const std::vector<ComponentMoments>& moments() const { return moments_; }

  /// SoA view of the hot per-component scalars (parallel to components()).
  [[nodiscard]] const ComponentLanes& lanes() const { return lanes_; }

  /// Expected stolen fraction of CPU time (analytic; for reports/tests).
  [[nodiscard]] double expected_fraction() const;

  /// Stolen time accumulated over a compute span. O(components), not
  /// O(events): each component contributes one Poisson count draw plus one
  /// batched sum draw (see sample_component_sum_ns).
  [[nodiscard]] sim::TimeNs sample(sim::TimeNs span, sim::Rng& rng,
                                   SampleCounters* counters = nullptr) const;

  /// Batched variant: stolen time for each compute span in `spans`, written
  /// into the caller-provided `out` (same length). Component-major: for each
  /// component the Poisson counts of the whole batch are drawn into a lane,
  /// then the sums for the whole lane are drawn through the batched Rng
  /// fills (Gamma for uncapped exponentials, CLT normals for capped shapes).
  /// Stream layout therefore differs from calling sample() per span — the
  /// distribution of each output is identical, the draw interleaving is not
  /// — so this is a new-callers-only API: hot paths whose draw order feeds
  /// ledgered gauges stay on sample().
  void sample_batch(std::span<const sim::TimeNs> spans, std::span<sim::TimeNs> out,
                    sim::Rng& rng, SampleCounters* counters = nullptr) const;

  NoiseModel& add(NoiseComponent c);

 private:
  void push_lane(std::size_t i);

  std::vector<NoiseComponent> components_;
  std::vector<ComponentMoments> moments_;  ///< hoisted out of the sample path
  ComponentLanes lanes_;                   ///< SoA mirror of the hot scalars
};

/// LWK application cores: essentially silent (cooperative scheduler, no
/// timer tick, no stray kernel tasks — McKernel's isolation; mOS "put a
/// significant effort into eliminating undesired kernel tasks on LWK cores").
[[nodiscard]] NoiseModel noise_lwk();

/// mOS LWK cores: as quiet as McKernel's except for rare Linux-side strays
/// (its LWK shares the Linux image, so eviction is effort, not structure).
[[nodiscard]] NoiseModel noise_lwk_mos();

/// Linux application cores configured with nohz_full (the paper's baseline):
/// residual per-core kernel work (RCU callbacks, kworkers, vmstat) plus rare
/// heavy-tailed system-level detours (daemons, page-cache writeback) that no
/// boot flag removes on a full Linux node.
[[nodiscard]] NoiseModel noise_linux_nohz_full();

/// Linux core 0 (or any core co-scheduled with system services): the reason
/// "mOS using 64 or 66 cores beats Linux on 68 cores".
[[nodiscard]] NoiseModel noise_linux_service_core();

/// A service-daemon interference storm (log rotation gone wrong, monitoring
/// stampede, kswapd frenzy): dense bursts that steal a large fraction of a
/// Linux application core while active. The fault layer applies this model
/// for the storm's duration, scaled by each kernel's isolation leak — on an
/// LWK partition almost none of it reaches application cores.
[[nodiscard]] NoiseModel noise_daemon_storm();

/// Heavy-tailed stalls that couple to blocking collectives (see the
/// definition for the mechanism). Empty on the LWKs.
[[nodiscard]] NoiseModel noise_linux_collective_tail();

/// Linux application cores sharing the node with a co-located tenant
/// (in-situ analytics, monitoring stack): the multi-tenancy scenario of the
/// performance-isolation studies the paper cites ([31], [32]).
[[nodiscard]] NoiseModel noise_linux_co_tenant();
/// Collective-coupled interference under co-tenancy (denser stalls).
[[nodiscard]] NoiseModel noise_linux_collective_tail_co_tenant();

}  // namespace mkos::kernel
