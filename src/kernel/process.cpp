#include "kernel/process.hpp"

#include "sim/contracts.hpp"

namespace mkos::kernel {

Process::Process(Pid pid, int home_quadrant)
    : pid_(pid), home_quadrant_(home_quadrant) {
  MKOS_EXPECTS(pid > 0);
  MKOS_EXPECTS(home_quadrant >= 0);
}

Thread& Process::add_thread(hw::CoreId core) {
  threads_.push_back(Thread{next_tid_++, core});
  return threads_.back();
}

int Process::open_fd(std::string path, bool proxy_managed) {
  const int fd = next_fd_++;
  fds_.emplace(fd, Fd{std::move(path), proxy_managed});
  return fd;
}

bool Process::close_fd(int fd) { return fds_.erase(fd) > 0; }

const std::string* Process::fd_path(int fd) const {
  auto it = fds_.find(fd);
  return it == fds_.end() ? nullptr : &it->second.path;
}

bool Process::fd_is_proxy_managed(int fd) const {
  auto it = fds_.find(fd);
  return it != fds_.end() && it->second.proxy_managed;
}

}  // namespace mkos::kernel
