#pragma once
// Simulated processes and threads.
//
// A Process owns an address space, a heap engine supplied by its kernel, a
// file-descriptor table (which, on McKernel, is *not* authoritative — the
// Linux proxy process tracks the real one; we model that split explicitly),
// and its CPU binding.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/topology.hpp"
#include "mem/address_space.hpp"
#include "mem/heap.hpp"

namespace mkos::kernel {

using Pid = int;
using Tid = int;

struct Thread {
  Tid tid = 0;
  hw::CoreId core = -1;  ///< bound core, -1 if unbound
};

class Process {
 public:
  Process(Pid pid, int home_quadrant);

  [[nodiscard]] Pid pid() const { return pid_; }
  [[nodiscard]] int home_quadrant() const { return home_quadrant_; }

  [[nodiscard]] mem::AddressSpace& address_space() { return as_; }
  [[nodiscard]] const mem::AddressSpace& address_space() const { return as_; }

  [[nodiscard]] mem::HeapEngine* heap() { return heap_.get(); }
  [[nodiscard]] const mem::HeapEngine* heap() const { return heap_.get(); }
  void set_heap(std::unique_ptr<mem::HeapEngine> heap) { heap_ = std::move(heap); }

  [[nodiscard]] const mem::MemPolicy& mempolicy() const { return policy_; }
  void set_mempolicy(mem::MemPolicy p) { policy_ = std::move(p); }

  Thread& add_thread(hw::CoreId core);
  [[nodiscard]] const std::vector<Thread>& threads() const { return threads_; }

  /// File descriptors. `proxy_managed` marks descriptors whose state lives
  /// in the Linux proxy (McKernel: "The actual set of open files ... are
  /// tracked by the Linux kernel").
  int open_fd(std::string path, bool proxy_managed);
  bool close_fd(int fd);
  [[nodiscard]] const std::string* fd_path(int fd) const;
  [[nodiscard]] std::size_t open_fd_count() const { return fds_.size(); }
  [[nodiscard]] bool fd_is_proxy_managed(int fd) const;

  /// mOS launch-time MCDRAM partitioning state.
  [[nodiscard]] sim::Bytes mcdram_quota() const { return mcdram_quota_; }
  [[nodiscard]] sim::Bytes mcdram_used() const { return mcdram_used_; }
  void set_mcdram_quota(sim::Bytes q) { mcdram_quota_ = q; }
  void add_mcdram_used(sim::Bytes b) { mcdram_used_ += b; }

 private:
  struct Fd {
    std::string path;
    bool proxy_managed = false;
  };

  Pid pid_;
  int home_quadrant_;
  mem::AddressSpace as_;
  std::unique_ptr<mem::HeapEngine> heap_;
  mem::MemPolicy policy_;
  std::vector<Thread> threads_;
  std::map<int, Fd> fds_;
  int next_fd_ = 3;  // 0/1/2 reserved
  Tid next_tid_ = 1;
  sim::Bytes mcdram_quota_ = ~sim::Bytes{0};
  sim::Bytes mcdram_used_ = 0;
};

}  // namespace mkos::kernel
