#include "kernel/pseudofs.hpp"

#include <algorithm>

namespace mkos::kernel {

std::string_view to_string(FsProvider p) {
  switch (p) {
    case FsProvider::kNative: return "native";
    case FsProvider::kReusedLinux: return "reused-linux";
    case FsProvider::kReimplemented: return "reimplemented";
    case FsProvider::kMissing: return "missing";
  }
  return "?";
}

PseudoFs::PseudoFs(std::vector<Entry> entries) : entries_(std::move(entries)) {}

FsProvider PseudoFs::provider(std::string_view path) const {
  const Entry* best = nullptr;
  for (const auto& e : entries_) {
    if (path.substr(0, e.prefix.size()) == e.prefix) {
      if (best == nullptr || e.prefix.size() > best->prefix.size()) best = &e;
    }
  }
  return best == nullptr ? FsProvider::kMissing : best->provider;
}

const std::vector<std::string>& PseudoFs::canonical_paths() {
  static const std::vector<std::string> paths = {
      "/proc/self/maps",       "/proc/self/status",     "/proc/self/stat",
      "/proc/self/numa_maps",  "/proc/self/task",       "/proc/self/environ",
      "/proc/self/smaps",      "/proc/self/cmdline",    "/proc/self/fd",
      "/proc/cpuinfo",         "/proc/meminfo",         "/proc/stat",
      "/proc/loadavg",         "/proc/interrupts",      "/proc/vmstat",
      "/proc/sys/vm/overcommit_memory", "/proc/sys/kernel/pid_max",
      "/sys/devices/system/cpu",        "/sys/devices/system/node",
      "/sys/kernel/mm/hugepages",       "/sys/kernel/mm/transparent_hugepage",
      "/sys/class/infiniband",          "/sys/fs/cgroup",
  };
  return paths;
}

double PseudoFs::coverage() const {
  const auto& paths = canonical_paths();
  const auto readable_count = std::count_if(
      paths.begin(), paths.end(), [&](const std::string& p) { return readable(p); });
  return static_cast<double>(readable_count) / static_cast<double>(paths.size());
}

PseudoFs pseudofs_linux() {
  return PseudoFs{{
      {"/proc", FsProvider::kNative},
      {"/sys", FsProvider::kNative},
  }};
}

PseudoFs pseudofs_mckernel() {
  // McKernel re-implements the partition-reflecting families HPC runtimes
  // need; process-introspection corners and cgroup/infiniband trees lag.
  return PseudoFs{{
      {"/proc/self/maps", FsProvider::kReimplemented},
      {"/proc/self/status", FsProvider::kReimplemented},
      {"/proc/self/stat", FsProvider::kReimplemented},
      {"/proc/self/task", FsProvider::kReimplemented},
      {"/proc/self/cmdline", FsProvider::kReimplemented},
      {"/proc/self/numa_maps", FsProvider::kReimplemented},
      {"/proc/cpuinfo", FsProvider::kReimplemented},
      {"/proc/meminfo", FsProvider::kReimplemented},
      {"/proc/stat", FsProvider::kReimplemented},
      {"/sys/devices/system/cpu", FsProvider::kReimplemented},
      {"/sys/devices/system/node", FsProvider::kReimplemented},
      {"/sys/kernel/mm/hugepages", FsProvider::kReimplemented},
      // Everything else (environ, smaps, fd, interrupts, vmstat, loadavg,
      // /proc/sys, cgroup, infiniband, THP) is absent on the LWK side.
  }};
}

PseudoFs pseudofs_mos() {
  // mOS: "mostly reuses the Linux implementation"; partition-specific CPU
  // and node listings are adjusted, everything else is Linux's.
  return PseudoFs{{
      {"/proc", FsProvider::kReusedLinux},
      {"/sys", FsProvider::kReusedLinux},
      {"/sys/devices/system/cpu", FsProvider::kReimplemented},
      {"/sys/devices/system/node", FsProvider::kReimplemented},
  }};
}

}  // namespace mkos::kernel
