#pragma once
// Pseudo-filesystem (/proc, /sys) coverage model.
//
// "Full Linux compatibility requires ... mimicking the complex and ever
// changing pseudo file systems." The design split the paper highlights:
// McKernel must *reimplement* /proc//sys files to reflect the LWK's resource
// partition (and inevitably lags), while mOS "mostly reuses the Linux
// implementation". Tools support (profilers, debuggers) keys off this.

#include <string>
#include <string_view>
#include <vector>

namespace mkos::kernel {

enum class FsProvider : std::uint8_t {
  kNative,         ///< the kernel's own first-class implementation
  kReusedLinux,    ///< served by the Linux side (mOS path)
  kReimplemented,  ///< LWK re-implementation reflecting the partition
  kMissing,        ///< open() fails
};

[[nodiscard]] std::string_view to_string(FsProvider p);

class PseudoFs {
 public:
  struct Entry {
    std::string prefix;   ///< path family, longest-prefix matched
    FsProvider provider;
  };

  explicit PseudoFs(std::vector<Entry> entries);

  /// Provider for a path (longest matching prefix; kMissing if none).
  [[nodiscard]] FsProvider provider(std::string_view path) const;
  [[nodiscard]] bool readable(std::string_view path) const {
    return provider(path) != FsProvider::kMissing;
  }

  /// Fraction of the canonical path-family list that is readable.
  [[nodiscard]] double coverage() const;

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// The canonical list of families tools and runtimes touch.
  [[nodiscard]] static const std::vector<std::string>& canonical_paths();

 private:
  std::vector<Entry> entries_;
};

[[nodiscard]] PseudoFs pseudofs_linux();
[[nodiscard]] PseudoFs pseudofs_mckernel();
[[nodiscard]] PseudoFs pseudofs_mos();

}  // namespace mkos::kernel
