#include "kernel/scheduler.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace mkos::kernel {

CoopScheduler::CoopScheduler(SchedulerModel model) : model_(model) {}

int CoopScheduler::add_task(Task task) {
  MKOS_EXPECTS(task != nullptr);
  const int id = next_id_++;
  queue_.emplace_back(id, std::move(task));
  return id;
}

sim::TimeNs CoopScheduler::run_to_completion() {
  sim::TimeNs total{0};
  bool first = true;
  while (!queue_.empty()) {
    auto [id, task] = std::move(queue_.front());
    queue_.pop_front();
    if (!first) {
      total += model_.context_switch;
      ++switches_;
    }
    first = false;
    const Burst b = task();
    MKOS_ASSERT(b.duration >= sim::TimeNs{0});
    total += b.duration;
    if (b.done) {
      ++completed_;
      completion_order_.push_back(id);
    } else {
      queue_.emplace_back(id, std::move(task));
    }
  }
  return total;
}

TimeShareScheduler::TimeShareScheduler(SchedulerModel model, sim::TimeNs quantum)
    : model_(model), quantum_(quantum) {
  MKOS_EXPECTS(quantum > sim::TimeNs{0});
}

int TimeShareScheduler::add_task(sim::TimeNs total_work) {
  MKOS_EXPECTS(total_work > sim::TimeNs{0});
  remaining_.push_back(total_work);
  return static_cast<int>(remaining_.size()) - 1;
}

std::vector<sim::TimeNs> TimeShareScheduler::run() {
  std::vector<sim::TimeNs> done(remaining_.size(), sim::TimeNs{0});
  sim::TimeNs clock{0};
  std::size_t live = remaining_.size();
  bool first = true;
  while (live > 0) {
    for (std::size_t i = 0; i < remaining_.size(); ++i) {
      if (remaining_[i].ns() == 0) continue;
      if (!first) {
        clock += model_.context_switch;
        ++preemptions_;
      }
      first = false;
      const sim::TimeNs slice = std::min(remaining_[i], quantum_);
      clock += slice;
      remaining_[i] -= slice;
      if (remaining_[i].ns() == 0) {
        done[i] = clock;
        --live;
      }
    }
  }
  return done;
}

}  // namespace mkos::kernel
