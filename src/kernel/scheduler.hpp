#pragma once
// Scheduling models.
//
// Both LWKs "employ a round-robin, non-preemptive, co-operative scheduler"
// whose purpose is to stay out of the application's way; Linux runs a
// CFS-class preemptive scheduler with a periodic tick. Two artifacts here:
//
//  * SchedulerModel — the cost/behaviour summary the performance pipeline
//    uses (context-switch price, tick interference, sched_yield price, and
//    whether glibc's sched_yield() is hijacked into a no-op).
//  * CoopScheduler  — a functional cooperative round-robin runqueue driven
//    by the event queue; exercised by the unit tests and the scheduler
//    micro-bench so the claimed behaviour is demonstrable, not asserted.

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace mkos::kernel {

enum class SchedulerKind : std::uint8_t { kLinuxCfs, kLwkCooperative };

struct SchedulerModel {
  SchedulerKind kind = SchedulerKind::kLwkCooperative;
  sim::TimeNs context_switch{1300};   ///< full switch incl. cache disturbance
  sim::TimeNs yield_syscall{700};     ///< user->kernel->user for sched_yield()
  bool yield_hijacked = false;        ///< McKernel --disable-sched-yield
  bool preemptive = false;
  sim::TimeNs tick_period{sim::milliseconds(4)};  ///< CFS tick (250 Hz), if preemptive

  /// Price of one application sched_yield() call.
  [[nodiscard]] sim::TimeNs sched_yield_cost() const {
    // Hijacked: the injected shared library returns immediately in user
    // space ("helps to eliminate user/kernel mode switches").
    return yield_hijacked ? sim::TimeNs{6} : yield_syscall;
  }

  [[nodiscard]] static SchedulerModel linux_cfs() {
    SchedulerModel m;
    m.kind = SchedulerKind::kLinuxCfs;
    m.preemptive = true;
    m.context_switch = sim::TimeNs{2100};
    return m;
  }
  [[nodiscard]] static SchedulerModel lwk_coop(bool yield_hijacked = false) {
    SchedulerModel m;
    m.yield_hijacked = yield_hijacked;
    return m;
  }
};

/// Functional cooperative round-robin scheduler over abstract tasks.
/// Tasks are resumable closures: each invocation runs one "burst" and
/// reports how long it computed and whether it is finished.
class CoopScheduler {
 public:
  struct Burst {
    sim::TimeNs duration{0};
    bool done = false;
  };
  using Task = std::function<Burst()>;

  explicit CoopScheduler(SchedulerModel model);

  /// Add a task to the tail of the run queue; returns its id.
  int add_task(Task task);

  /// Run until all tasks complete; returns total simulated time including
  /// context-switch costs. Round-robin order is strict FIFO.
  sim::TimeNs run_to_completion();

  /// Tasks completed so far (for observers/tests).
  [[nodiscard]] int completed() const { return completed_; }
  [[nodiscard]] std::uint64_t context_switches() const { return switches_; }
  [[nodiscard]] const std::vector<int>& completion_order() const { return completion_order_; }

 private:
  SchedulerModel model_;
  std::deque<std::pair<int, Task>> queue_;
  int next_id_ = 0;
  int completed_ = 0;
  std::uint64_t switches_ = 0;
  std::vector<int> completion_order_;
};

/// Preemptive round-robin with a fixed quantum — McKernel's *optional* time
/// sharing ("it enables it only on specific CPU cores"). Used where a core
/// must multiplex application threads with, e.g., in-situ tasks; the default
/// LWK stance is to not time share at all.
class TimeShareScheduler {
 public:
  TimeShareScheduler(SchedulerModel model, sim::TimeNs quantum);

  /// Add a task with `total_work` of CPU time to deliver; returns its id.
  int add_task(sim::TimeNs total_work);

  /// Run to completion; returns each task's completion time (indexed by id).
  std::vector<sim::TimeNs> run();

  [[nodiscard]] std::uint64_t preemptions() const { return preemptions_; }
  [[nodiscard]] sim::TimeNs quantum() const { return quantum_; }

 private:
  SchedulerModel model_;
  sim::TimeNs quantum_;
  std::vector<sim::TimeNs> remaining_;
  std::uint64_t preemptions_ = 0;
};

}  // namespace mkos::kernel
