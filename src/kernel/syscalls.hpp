#pragma once
// The system-call surface the models and the compatibility suite reason
// about. Not the full Linux table — the subset the paper's discussion and
// the LTP results turn on, plus the families HPC applications exercise.

#include <cstdint>
#include <string_view>

namespace mkos::kernel {

enum class Sys : std::uint16_t {
  // Memory management (performance sensitive; both LWKs implement locally).
  kBrk, kMmap, kMunmap, kMprotect, kMremap, kMadvise,
  kSetMempolicy, kGetMempolicy, kMbind, kMovePages, kMigratePages,
  kMlock, kMunlock, kShmget, kShmat, kShmdt,
  // Process / thread.
  kClone, kFork, kVfork, kExecve, kExit, kExitGroup, kWait4, kWaitid,
  kGetpid, kGettid, kGetppid, kKill, kTkill, kTgkill,
  kRtSigaction, kRtSigprocmask, kRtSigreturn, kSigaltstack,
  kSchedYield, kSchedSetaffinity, kSchedGetaffinity,
  kSchedSetscheduler, kSchedGetscheduler, kSetpriority, kGetpriority,
  kPtrace, kPrctl, kArchPrctl, kSetTidAddress, kFutex,
  kGetrlimit, kSetrlimit, kGetrusage, kTimes,
  // Files & I/O (offloaded by both LWKs).
  kOpen, kOpenat, kClose, kRead, kWrite, kPread64, kPwrite64,
  kReadv, kWritev, kLseek, kStat, kFstat, kLstat, kAccess,
  kDup, kDup2, kPipe, kFcntl, kIoctl, kMknod, kUnlink, kRename,
  kMkdir, kRmdir, kGetdents, kChdir, kGetcwd, kReadlink,
  kChmod, kChown, kUmask, kTruncate, kFtruncate, kFsync, kStatfs,
  // Networking (offloaded; the Omni-Path device path goes through these).
  kSocket, kConnect, kAccept, kBind, kListen, kSendto, kRecvfrom,
  kSendmsg, kRecvmsg, kShutdown, kGetsockname, kGetsockopt, kSetsockopt,
  kPoll, kSelect, kEpollCreate, kEpollCtl, kEpollWait,
  // Time & misc.
  kGettimeofday, kClockGettime, kClockNanosleep, kNanosleep, kAlarm,
  kTimerCreate, kTimerSettime, kGetitimer, kSetitimer,
  kUname, kSysinfo, kGetuid, kGetgid, kGeteuid, kGetegid,
  kSetuid, kSetgid, kCapget, kCapset,
  kPerfEventOpen,

  kCount_,
};

constexpr std::size_t kSysCount = static_cast<std::size_t>(Sys::kCount_);

[[nodiscard]] std::string_view sys_name(Sys s);

/// How a kernel handles a system call.
enum class Disposition : std::uint8_t {
  kLocal,        ///< implemented in this kernel
  kOffloaded,    ///< forwarded to the Linux side (proxy / thread migration)
  kPartial,      ///< implemented with semantic deviations (some LTP tests fail)
  kUnsupported,  ///< returns ENOSYS
};

[[nodiscard]] std::string_view to_string(Disposition d);

/// Errno values used by the functional layer.
inline constexpr int kOk = 0;
inline constexpr int kEPERM = 1;
inline constexpr int kENOMEM = 12;
inline constexpr int kEINVAL = 22;
inline constexpr int kENOSYS = 38;

}  // namespace mkos::kernel
