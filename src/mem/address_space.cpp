#include "mem/address_space.hpp"

#include "sim/contracts.hpp"

namespace mkos::mem {

namespace {
// Virtual layout constants; only relative arithmetic matters to the models.
constexpr sim::Bytes kMmapBase = 0x7f0000000000ULL;
}  // namespace

void Placement::add(hw::DomainId domain, PageSize page, sim::Bytes bytes) {
  if (bytes == 0) return;
  by_page_[static_cast<std::size_t>(page)] += bytes;
  const auto d = static_cast<std::size_t>(domain);
  if (d >= by_domain_.size()) {
    by_domain_.resize(d + 1, 0);
    chunk_idx_.resize((d + 1) * 3, -1);
  }
  by_domain_[d] += bytes;
  total_ += bytes;
  std::int32_t& idx = chunk_idx_[d * 3 + static_cast<std::size_t>(page)];
  if (idx >= 0) {
    chunks_[static_cast<std::size_t>(idx)].bytes += bytes;
    return;
  }
  idx = static_cast<std::int32_t>(chunks_.size());
  chunks_.push_back(Chunk{domain, page, bytes});
}

void Placement::clear() {
  chunks_.clear();
  total_ = 0;
  by_page_ = {};
  by_domain_.clear();
  chunk_idx_.clear();
}

AddressSpace::AddressSpace() : mmap_cursor_(kMmapBase) {}

Vma& AddressSpace::map(sim::Bytes length, VmaKind kind, MemPolicy policy) {
  MKOS_EXPECTS(length > 0);
  const sim::Bytes len = sim::align_up(length, 4 * sim::KiB);
  Vma vma;
  vma.start = mmap_cursor_;
  vma.length = len;
  vma.kind = kind;
  vma.policy = std::move(policy);
  // Leave a guard gap so adjacent mappings never merge accidentally.
  mmap_cursor_ += len + 64 * sim::KiB;
  // The cursor is strictly increasing, so insertion is always at the end.
  const std::size_t before = vmas_.size();
  auto it = vmas_.emplace_hint(vmas_.end(), vma.start, std::move(vma));
  MKOS_ENSURES(vmas_.size() == before + 1);
  return it->second;
}

std::optional<Vma> AddressSpace::unmap(sim::Bytes start) {
  auto it = vmas_.find(start);
  if (it == vmas_.end()) return std::nullopt;
  Vma out = std::move(it->second);
  vmas_.erase(it);
  return out;
}

Vma* AddressSpace::find(sim::Bytes addr) {
  auto it = vmas_.upper_bound(addr);
  if (it == vmas_.begin()) return nullptr;
  --it;
  Vma& v = it->second;
  return addr >= v.start && addr < v.end() ? &v : nullptr;
}

const Vma* AddressSpace::find(sim::Bytes addr) const {
  return const_cast<AddressSpace*>(this)->find(addr);
}

sim::Bytes AddressSpace::resident_bytes() const {
  sim::Bytes b = 0;
  for (const auto& [s, v] : vmas_) b += v.backed();
  return b;
}

sim::Bytes AddressSpace::mapped_bytes() const {
  sim::Bytes b = 0;
  for (const auto& [s, v] : vmas_) b += v.length;
  return b;
}

sim::Bytes AddressSpace::resident_in_kind(const hw::NodeTopology& topo,
                                          hw::MemKind kind) const {
  sim::Bytes b = 0;
  for (const auto& [s, v] : vmas_) b += v.placement.bytes_in_kind(topo, kind);
  return b;
}

double AddressSpace::resident_fraction_in_kind(const hw::NodeTopology& topo,
                                               hw::MemKind kind) const {
  const sim::Bytes res = resident_bytes();
  if (res == 0) return 0.0;
  return static_cast<double>(resident_in_kind(topo, kind)) / static_cast<double>(res);
}

std::uint64_t AddressSpace::total_faults() const {
  std::uint64_t n = 0;
  for (const auto& [s, v] : vmas_) n += v.fault_count;
  return n;
}

}  // namespace mkos::mem
