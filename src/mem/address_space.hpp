#pragma once
// Per-process virtual memory: VMAs, physical placement records, residency
// accounting. The executor asks an address space "what fraction of this
// process's working set sits in MCDRAM?" — the answer drives the roofline
// compute model, so placement records are exact, not sampled.

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "hw/topology.hpp"
#include "mem/numa_policy.hpp"
#include "mem/page.hpp"
#include "mem/phys_allocator.hpp"

namespace mkos::mem {

enum class VmaKind : std::uint8_t { kText, kBss, kHeap, kStack, kAnon, kShm, kFile };

[[nodiscard]] constexpr const char* to_string(VmaKind k) {
  switch (k) {
    case VmaKind::kText: return "text";
    case VmaKind::kBss: return "bss";
    case VmaKind::kHeap: return "heap";
    case VmaKind::kStack: return "stack";
    case VmaKind::kAnon: return "anon";
    case VmaKind::kShm: return "shm";
    case VmaKind::kFile: return "file";
  }
  return "?";
}

/// Where a mapping's resident pages physically live.
class Placement {
 public:
  struct Chunk {
    hw::DomainId domain;
    PageSize page;
    sim::Bytes bytes;
  };

  void add(hw::DomainId domain, PageSize page, sim::Bytes bytes);
  void clear();

  [[nodiscard]] sim::Bytes total() const { return total_; }
  [[nodiscard]] sim::Bytes bytes_in_kind(const hw::NodeTopology& topo, hw::MemKind kind) const {
    sim::Bytes b = 0;
    for (std::size_t d = 0; d < by_domain_.size(); ++d) {
      if (topo.domain(static_cast<hw::DomainId>(d)).kind == kind) b += by_domain_[d];
    }
    return b;
  }
  [[nodiscard]] double fraction_in_kind(const hw::NodeTopology& topo, hw::MemKind kind) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(bytes_in_kind(topo, kind)) / static_cast<double>(total_);
  }
  [[nodiscard]] sim::Bytes bytes_with_page(PageSize p) const {
    return by_page_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const std::vector<Chunk>& chunks() const { return chunks_; }

 private:
  std::vector<Chunk> chunks_;
  sim::Bytes total_ = 0;
  // Incremental aggregates maintained by add()/clear(): the engine reads
  // per-page-size and per-domain volumes between every heap cycle, so the
  // chunk-list scans those reads used to pay are folded into the writes.
  std::array<sim::Bytes, 3> by_page_{};   ///< indexed by PageSize
  std::vector<sim::Bytes> by_domain_;     ///< indexed by DomainId
  /// (domain, page) -> index into chunks_, -1 when absent; turns add()'s
  /// find-matching-chunk scan into one lookup.
  std::vector<std::int32_t> chunk_idx_;
};

/// Protection bits (PROT_* subset).
inline constexpr int kProtRead = 1;
inline constexpr int kProtWrite = 2;
inline constexpr int kProtExec = 4;

struct Vma {
  sim::Bytes start = 0;
  sim::Bytes length = 0;
  VmaKind kind = VmaKind::kAnon;
  MemPolicy policy;
  int prot = kProtRead | kProtWrite;

  Placement placement;          ///< physically backed portion
  std::vector<Extent> extents;  ///< owned physical extents (freed on unmap)
  PageSize touch_page = PageSize::k4K;  ///< granule used for demand faults
  bool demand_paged = false;    ///< unbacked remainder faults on first touch
  /// Demand faults walk the LWK spill order (MCDRAM-first) instead of the
  /// Linux policy order — McKernel's demand-paging fallback.
  bool touch_lwk_order = false;
  std::uint64_t fault_count = 0;

  [[nodiscard]] sim::Bytes end() const { return start + length; }
  [[nodiscard]] sim::Bytes backed() const { return placement.total(); }
  [[nodiscard]] sim::Bytes unbacked() const { return length - backed(); }
};

class AddressSpace {
 public:
  AddressSpace();

  /// Create a VMA of `length` bytes (rounded up to 4 KiB). The address is
  /// assigned from the mmap region. Returns a stable reference.
  Vma& map(sim::Bytes length, VmaKind kind, MemPolicy policy);

  /// Remove the VMA starting at `start`; returns it (with its extents) so
  /// the kernel can return physical memory. nullopt when no such VMA.
  std::optional<Vma> unmap(sim::Bytes start);

  [[nodiscard]] Vma* find(sim::Bytes addr);
  [[nodiscard]] const Vma* find(sim::Bytes addr) const;

  [[nodiscard]] std::size_t vma_count() const { return vmas_.size(); }

  /// Iterate over all VMAs (ordered by start address).
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& [start, vma] : vmas_) f(vma);
  }
  template <typename F>
  void for_each(F&& f) {
    for (auto& [start, vma] : vmas_) f(vma);
  }

  [[nodiscard]] sim::Bytes resident_bytes() const;
  [[nodiscard]] sim::Bytes mapped_bytes() const;
  [[nodiscard]] sim::Bytes resident_in_kind(const hw::NodeTopology& topo,
                                            hw::MemKind kind) const;
  [[nodiscard]] double resident_fraction_in_kind(const hw::NodeTopology& topo,
                                                 hw::MemKind kind) const;
  [[nodiscard]] std::uint64_t total_faults() const;

 private:
  std::map<sim::Bytes, Vma> vmas_;  // start -> vma
  sim::Bytes mmap_cursor_;
};

}  // namespace mkos::mem
