#include "mem/heap.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace mkos::mem {

namespace {

/// Free `bytes` from the tail of an extent list (heap shrink — the tail is
/// the most recently grown region). Returns the page-table teardown cost.
sim::TimeNs free_tail(PhysMemory& phys, std::vector<Extent>& extents, Placement& placement,
                      const MemCostModel& cost, sim::Bytes bytes, PageSize page) {
  sim::TimeNs t{0};
  sim::Bytes remaining = bytes;
  while (remaining > 0 && !extents.empty()) {
    Extent& e = extents.back();
    const sim::Bytes take = std::min(remaining, e.length);
    Extent freed{e.domain, e.start + e.length - take, take};
    phys.domain(e.domain).free(freed);
    t += cost.pte_per_page * static_cast<std::int64_t>(pages_for(take, page));
    e.length -= take;
    remaining -= take;
    if (e.length == 0) extents.pop_back();
  }
  // Rebuild the placement from the surviving extents (domain mix may shift).
  Placement np;
  for (const auto& e : extents) np.add(e.domain, page, e.length);
  placement = np;
  // Audit: the rebuilt placement accounts for exactly the surviving extent
  // bytes — drift here would misprice every later fault and TLB walk.
  MKOS_AUDIT([&] {
    sim::Bytes total = 0;
    for (const auto& e : extents) total += e.length;
    return placement.total() == total;
  }());
  return t;
}

/// Demand-fault `bytes` of heap at 4 KiB granularity along `order`.
struct FaultBill {
  sim::TimeNs cost{0};
  std::uint64_t faults = 0;
  sim::Bytes zeroed = 0;
  sim::Bytes backed = 0;
};

FaultBill fault_in(PhysMemory& phys, const MemCostModel& cost,
                   const std::vector<hw::DomainId>& order, std::vector<Extent>& extents,
                   Placement& placement, sim::Bytes bytes, int concurrent) {
  FaultBill bill;
  sim::Bytes remaining = sim::align_up(bytes, 4 * sim::KiB);
  const double contention = cost.contention(concurrent);
  for (hw::DomainId d : order) {
    if (remaining == 0) break;
    const auto& got = phys.domain(d).alloc_best_effort(remaining, 4 * sim::KiB);
    for (const auto& e : got) {
      extents.push_back(e);
      placement.add(d, PageSize::k4K, e.length);
      const std::uint64_t n = pages_for(e.length, PageSize::k4K);
      bill.faults += n;
      bill.cost += (cost.fault_4k * static_cast<std::int64_t>(n)).scaled(contention);
      bill.cost += cost.zero_cost(e.length);
      bill.zeroed += e.length;
      bill.backed += e.length;
      remaining -= e.length;
    }
  }
  return bill;
}

/// Order-sensitive 64-bit hash combiner for state fingerprints.
std::uint64_t fp_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 31);
}

}  // namespace

// ---------------------------------------------------------------- LinuxHeap

LinuxHeap::LinuxHeap(PhysMemory& phys, const hw::NodeTopology& topo, MemCostModel cost,
                     MemPolicy policy, int home_quadrant)
    : phys_(phys), topo_(topo), cost_(cost), policy_(std::move(policy)),
      home_quadrant_(home_quadrant) {}

sim::TimeNs LinuxHeap::do_sbrk(std::int64_t delta) {
  sim::TimeNs t = cost_.syscall_entry;
  if (delta == 0) {
    ++stats_.queries;
    return t;
  }
  if (delta > 0) {
    ++stats_.grows;
    const auto d = static_cast<sim::Bytes>(delta);
    stats_.current += d;
    stats_.cum_growth += d;
    stats_.max_break = std::max(stats_.max_break, stats_.current);
    // brk() itself only moves the break; pages arrive on first touch.
    return t;
  }
  ++stats_.shrinks;
  const auto d = std::min(static_cast<sim::Bytes>(-delta), stats_.current);
  stats_.current -= d;
  // Linux returns the memory: tear down any backed pages beyond the break.
  if (placement_.total() > stats_.current) {
    const sim::Bytes excess = placement_.total() - stats_.current;
    t += free_tail(phys_, extents_, placement_, cost_, excess, PageSize::k4K);
  }
  return t;
}

sim::TimeNs LinuxHeap::do_touch_new(int concurrent_faulters) {
  const sim::Bytes to_fault =
      stats_.current > placement_.total() ? stats_.current - placement_.total() : 0;
  if (to_fault == 0) return sim::TimeNs{0};
  const auto& order = linux_domain_order(topo_, policy_, home_quadrant_);
  const FaultBill bill =
      fault_in(phys_, cost_, order, extents_, placement_, to_fault, concurrent_faulters);
  stats_.faults += bill.faults;
  stats_.zeroed += bill.zeroed;
  return bill.cost;
}

// Deliberately O(1): no walk over extents or placement chunks. The scalars
// below determine how many bytes a cycle faults, tears down, or zeroes —
// per-byte costs are domain-independent, so the chunk composition (which
// quadrant's domain backs which byte) never enters a cycle's price and can
// legitimately differ between lanes the fast path treats as identical.
std::uint64_t LinuxHeap::compute_fingerprint() const {
  std::uint64_t h = 0x243f6a8885a308d3ULL;  // class tag
  h = fp_mix(h, stats_.current);
  h = fp_mix(h, stats_.max_break);
  h = fp_mix(h, static_cast<std::uint64_t>(policy_.mode));
  for (const auto d : policy_.domains) h = fp_mix(h, static_cast<std::uint64_t>(d));
  h = fp_mix(h, extents_.size());
  return fp_mix(h, placement_.total());
}

// ------------------------------------------------------------------ LwkHeap

LwkHeap::LwkHeap(PhysMemory& phys, const hw::NodeTopology& topo, MemCostModel cost,
                 LwkHeapOptions options, int home_quadrant)
    : phys_(phys), topo_(topo), cost_(cost), options_(options),
      home_quadrant_(home_quadrant) {
  MKOS_EXPECTS(options_.growth_granule >= 4 * sim::KiB);
  MKOS_EXPECTS(options_.aggressive_extension >= 1.0);
}

sim::TimeNs LwkHeap::grow_backing(sim::Bytes target) {
  // Back the heap up to `target` (already granule-aligned) with physical
  // pages allocated *now*, in the LWK placement order.
  sim::TimeNs t{0};
  if (target <= backed_) return t;
  sim::Bytes need = target - backed_;
  const auto& order = lwk_domain_order(topo_, home_quadrant_, options_.prefer_mcdram);
  for (hw::DomainId d : order) {
    if (need == 0) break;
    const auto& got = phys_.domain(d).alloc_best_effort(need, options_.growth_granule);
    for (const auto& e : got) {
      extents_.push_back(e);
      const PageSize page =
          options_.growth_granule >= 2 * sim::MiB ? PageSize::k2M : PageSize::k4K;
      placement_.add(d, page, e.length);
      t += cost_.pte_per_page * static_cast<std::int64_t>(pages_for(e.length, page));
      // "upon a growth request and allocation of a new 2 MB page, only the
      //  first 4 kB are zeroed" — the AMG 2013 workaround.
      const sim::Bytes zero_bytes =
          options_.zero_first_4k_only
              ? 4 * sim::KiB * pages_for(e.length, page)
              : e.length;
      t += cost_.zero_cost(zero_bytes);
      stats_.zeroed += zero_bytes;
      backed_ += e.length;
      need -= std::min(need, e.length);
    }
  }
  return t;
}

sim::TimeNs LwkHeap::do_sbrk(std::int64_t delta) {
  sim::TimeNs t = cost_.syscall_entry;
  if (delta == 0) {
    ++stats_.queries;
    return t;
  }
  if (delta > 0) {
    ++stats_.grows;
    const auto d = static_cast<sim::Bytes>(delta);
    stats_.current += d;
    stats_.cum_growth += d;
    stats_.max_break = std::max(stats_.max_break, stats_.current);
    if (options_.hpc_mode) {
      sim::Bytes target = sim::align_up(stats_.current, options_.growth_granule);
      if (options_.aggressive_extension > 1.0 && target > backed_) {
        target = sim::align_up(
            static_cast<sim::Bytes>(static_cast<double>(target) * options_.aggressive_extension),
            options_.growth_granule);
      }
      t += grow_backing(target);
    } else {
      untouched_ += d;  // Linux-like: pages arrive on first touch
    }
    return t;
  }
  ++stats_.shrinks;
  const auto d = std::min(static_cast<sim::Bytes>(-delta), stats_.current);
  stats_.current -= d;
  if (!options_.hpc_mode) {
    // Heap management disabled: honor the shrink like Linux does.
    if (backed_ > stats_.current) {
      const sim::Bytes excess = backed_ - stats_.current;
      t += free_tail(phys_, extents_, placement_, cost_, excess, PageSize::k4K);
      backed_ = stats_.current;
    }
    untouched_ = std::min(untouched_, stats_.current - backed_);
  }
  // HPC mode: "Shrink requests are ignored" — backing stays; regrowth is free.
  return t;
}

sim::TimeNs LwkHeap::do_touch_new(int concurrent_faulters) {
  if (options_.hpc_mode) return sim::TimeNs{0};  // never faults
  const sim::Bytes to_fault = stats_.current > backed_ ? stats_.current - backed_ : 0;
  if (to_fault == 0) return sim::TimeNs{0};
  const auto& order = lwk_domain_order(topo_, home_quadrant_, options_.prefer_mcdram);
  const FaultBill bill =
      fault_in(phys_, cost_, order, extents_, placement_, to_fault, concurrent_faulters);
  stats_.faults += bill.faults;
  stats_.zeroed += bill.zeroed;
  backed_ += bill.backed;
  untouched_ = 0;
  return bill.cost;
}

std::uint64_t LwkHeap::compute_fingerprint() const {
  std::uint64_t h = 0x13198a2e03707344ULL;  // class tag
  h = fp_mix(h, stats_.current);
  h = fp_mix(h, stats_.max_break);
  h = fp_mix(h, backed_);
  h = fp_mix(h, untouched_);
  h = fp_mix(h, extents_.size());
  return fp_mix(h, placement_.total());
}

}  // namespace mkos::mem
