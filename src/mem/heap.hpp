#pragma once
// Heap (brk/sbrk) engines.
//
// The paper's Table I and the Lulesh discussion (Section IV) hinge on brk()
// semantics:
//
//   Linux      — page-granular break; shrink returns memory to the system;
//                growth maps the zero page and charges a fault + clear on
//                first write; large pages only when the break happens to be
//                2 MiB aligned *and* the request is large enough.
//   LWK (HPC)  — heap aligned to 2 MiB; grows in 2 MiB increments; shrink
//                requests ignored; physical pages allocated at brk() time;
//                on growth only the first 4 KiB of a fresh 2 MiB page is
//                zeroed (the AMG workaround); no faults ever reach the app.
//
// LwkHeap has an `hpc_mode` toggle: when off it reproduces the Linux
// behaviour while keeping the surrounding LWK benefits — this is exactly the
// "mOS, heap management disabled" row of Table I.

#include <cstdint>
#include <memory>

#include "mem/placement.hpp"
#include "mem/phys_allocator.hpp"

namespace mkos::mem {

struct HeapStats {
  std::uint64_t queries = 0;     ///< sbrk(0)
  std::uint64_t grows = 0;       ///< positive increments
  std::uint64_t shrinks = 0;     ///< negative increments
  sim::Bytes current = 0;        ///< break offset from heap base
  sim::Bytes max_break = 0;      ///< high-water mark
  sim::Bytes cum_growth = 0;     ///< sum of all positive increments
  std::uint64_t faults = 0;      ///< faults taken on heap pages
  sim::Bytes zeroed = 0;         ///< bytes cleared on behalf of the app

  [[nodiscard]] std::uint64_t calls() const { return queries + grows + shrinks; }
};

class HeapEngine {
 public:
  virtual ~HeapEngine() = default;

  /// sbrk(delta): delta == 0 queries, > 0 grows, < 0 shrinks (clamped at 0).
  /// Returns the cost of the call itself (syscall + any mapping work).
  sim::TimeNs sbrk(std::int64_t delta) {
    ++rev_;
    return do_sbrk(delta);
  }

  /// Cost of the application touching every byte grown since the last call
  /// (page faults + zeroing for demand-paged heaps; zero for HPC heaps).
  /// `concurrent_faulters`: ranks on this node concurrently in the fault path.
  sim::TimeNs touch_new(int concurrent_faulters) {
    ++rev_;
    return do_touch_new(concurrent_faulters);
  }

  /// The process changed its NUMA policy (set_mempolicy); demand-paged heaps
  /// place subsequent faults accordingly.
  void set_policy(const MemPolicy& policy) {
    ++rev_;
    do_set_policy(policy);
  }

  /// The engine's physical placement record, or nullptr when it keeps none.
  /// Lets hot read paths reach the placement without a dynamic_cast.
  [[nodiscard]] virtual const Placement* placement_or_null() const { return nullptr; }

  /// O(1) hash of the cost-relevant heap state: break offset, backing
  /// volume and policy — the scalars that determine how many bytes a future
  /// sbrk()/touch_new() moves (per-byte costs are domain-independent, so
  /// the placement's chunk composition never enters the price). Monotone
  /// counters (queries, faults, cum_growth, ...) are deliberately excluded
  /// so that a brk cycle which restores the heap shape maps to the same
  /// fingerprint. Used by the symmetric-lane fast path in
  /// MpiWorld::heap_cycle to detect lanes in identical states.
  ///
  /// Memoized against a mutation revision counter: the SPMD steady state
  /// fingerprints every lane between every cycle, so recomputing the hash
  /// only after sbrk/touch_new/set_policy turns the dominant profile entry
  /// into a counter compare. replay_cycle() deliberately does not bump the
  /// revision — it advances only the monotone counters the hash excludes.
  [[nodiscard]] std::uint64_t state_fingerprint() const {
    if (fp_rev_ != rev_) {
      fp_cache_ = compute_fingerprint();
      fp_rev_ = rev_;
    }
    return fp_cache_;
  }

  /// Replay the counter deltas of a simulated representative cycle onto this
  /// engine without re-simulating it. Precondition (checked): the cycle left
  /// the representative's state untouched (current/max_break unchanged), so
  /// only monotone counters advance. Header-inline: the fast path calls this
  /// once per lane per cycle, so call overhead was measurable.
  void replay_cycle(const HeapStats& before, const HeapStats& after) {
    apply_replay_delta(replay_delta(before, after));
  }

  /// The monotone-counter delta of a state-neutral cycle, checked once so a
  /// replay across many lanes can apply the subtraction-free form below.
  [[nodiscard]] static HeapStats replay_delta(const HeapStats& before, const HeapStats& after) {
    MKOS_EXPECTS(after.current == before.current);
    MKOS_EXPECTS(after.max_break == before.max_break);
    HeapStats d;
    d.queries = after.queries - before.queries;
    d.grows = after.grows - before.grows;
    d.shrinks = after.shrinks - before.shrinks;
    d.cum_growth = after.cum_growth - before.cum_growth;
    d.faults = after.faults - before.faults;
    d.zeroed = after.zeroed - before.zeroed;
    return d;
  }

  void apply_replay_delta(const HeapStats& d) {
    stats_.queries += d.queries;
    stats_.grows += d.grows;
    stats_.shrinks += d.shrinks;
    stats_.cum_growth += d.cum_growth;
    stats_.faults += d.faults;
    stats_.zeroed += d.zeroed;
  }

  [[nodiscard]] const HeapStats& stats() const { return stats_; }

 protected:
  virtual sim::TimeNs do_sbrk(std::int64_t delta) = 0;
  virtual sim::TimeNs do_touch_new(int concurrent_faulters) = 0;
  virtual void do_set_policy(const MemPolicy& policy) { (void)policy; }
  [[nodiscard]] virtual std::uint64_t compute_fingerprint() const = 0;

  HeapStats stats_;

 private:
  std::uint64_t rev_ = 1;
  mutable std::uint64_t fp_rev_ = 0;
  mutable std::uint64_t fp_cache_ = 0;
};

/// Linux brk(): demand-paged 4 KiB heap.
class LinuxHeap final : public HeapEngine {
 public:
  LinuxHeap(PhysMemory& phys, const hw::NodeTopology& topo, MemCostModel cost,
            MemPolicy policy, int home_quadrant);

  /// Physically backed (faulted-in) heap bytes.
  [[nodiscard]] sim::Bytes backed() const { return placement_.total(); }
  [[nodiscard]] const Placement& placement() const { return placement_; }
  [[nodiscard]] const Placement* placement_or_null() const override { return &placement_; }

 protected:
  sim::TimeNs do_sbrk(std::int64_t delta) override;
  sim::TimeNs do_touch_new(int concurrent_faulters) override;
  void do_set_policy(const MemPolicy& policy) override { policy_ = policy; }
  [[nodiscard]] std::uint64_t compute_fingerprint() const override;

 private:
  PhysMemory& phys_;
  const hw::NodeTopology& topo_;
  MemCostModel cost_;
  MemPolicy policy_;
  int home_quadrant_;
  Placement placement_;
  std::vector<Extent> extents_;
};

struct LwkHeapOptions {
  bool hpc_mode = true;        ///< the brk() optimizations of Section IV
  bool prefer_mcdram = true;   ///< heap placement order
  bool zero_first_4k_only = true;  ///< the AMG-bug workaround
  sim::Bytes growth_granule = 2 * sim::MiB;
  /// "Aggressively extend the heap": each physical growth over-allocates by
  /// this factor so subsequent brk() calls are satisfied without allocation.
  double aggressive_extension = 1.0;
};

/// LWK brk(): upfront physical backing, 2 MiB granularity, shrinks ignored.
class LwkHeap final : public HeapEngine {
 public:
  LwkHeap(PhysMemory& phys, const hw::NodeTopology& topo, MemCostModel cost,
          LwkHeapOptions options, int home_quadrant);

  [[nodiscard]] const LwkHeapOptions& options() const { return options_; }
  /// Physically backed extent of the heap (>= stats().current in HPC mode).
  [[nodiscard]] sim::Bytes backed() const { return backed_; }
  [[nodiscard]] const Placement& placement() const { return placement_; }
  [[nodiscard]] const Placement* placement_or_null() const override { return &placement_; }

 protected:
  sim::TimeNs do_sbrk(std::int64_t delta) override;
  sim::TimeNs do_touch_new(int concurrent_faulters) override;
  [[nodiscard]] std::uint64_t compute_fingerprint() const override;

 private:
  sim::TimeNs grow_backing(sim::Bytes target);

  PhysMemory& phys_;
  const hw::NodeTopology& topo_;
  MemCostModel cost_;
  LwkHeapOptions options_;
  int home_quadrant_;
  sim::Bytes backed_ = 0;
  sim::Bytes untouched_ = 0;  ///< only used when hpc_mode is off
  Placement placement_;
  std::vector<Extent> extents_;
};

}  // namespace mkos::mem
