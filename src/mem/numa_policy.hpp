#pragma once
// NUMA memory policies, mirroring the Linux set_mempolicy() modes.
//
// The reproduction-critical constraint is encoded here: Linux's PREFERRED
// mode accepts exactly ONE domain ("In SNC-4 mode, four such domains exist,
// but the current Linux implementation allows only one to be listed",
// paper Section III-C). The LWKs' transparent MCDRAM->DDR4 spill is not a
// policy the application sets — it is kernel placement behaviour.

#include <vector>

#include "hw/topology.hpp"

namespace mkos::mem {

enum class PolicyMode : std::uint8_t {
  kDefault,     ///< local allocation (home quadrant first)
  kBind,        ///< strictly from the listed domains; ENOMEM when exhausted
  kPreferred,   ///< one preferred domain, then the SLIT fallback order
  kInterleave,  ///< round-robin across the listed domains
};

struct MemPolicy {
  PolicyMode mode = PolicyMode::kDefault;
  std::vector<hw::DomainId> domains;

  [[nodiscard]] static MemPolicy standard() { return {}; }
  [[nodiscard]] static MemPolicy bind(std::vector<hw::DomainId> ds) {
    return {PolicyMode::kBind, std::move(ds)};
  }
  [[nodiscard]] static MemPolicy preferred(hw::DomainId d) {
    return {PolicyMode::kPreferred, {d}};
  }
  [[nodiscard]] static MemPolicy interleave(std::vector<hw::DomainId> ds) {
    return {PolicyMode::kInterleave, std::move(ds)};
  }

  friend bool operator==(const MemPolicy&, const MemPolicy&) = default;
};

}  // namespace mkos::mem
