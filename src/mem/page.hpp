#pragma once
// Page sizes. Both LWKs use large pages "whenever and wherever possible,
// e.g. even on the stack, using 1 GB pages if the size of the mapping
// allows it" (paper Section II-D3); Linux is limited to 4 KB plus THP.

#include <cstdint>

#include "sim/units.hpp"

namespace mkos::mem {

enum class PageSize : std::uint8_t { k4K, k2M, k1G };

[[nodiscard]] constexpr sim::Bytes page_bytes(PageSize p) {
  switch (p) {
    case PageSize::k4K: return 4 * sim::KiB;
    case PageSize::k2M: return 2 * sim::MiB;
    case PageSize::k1G: return sim::GiB;
  }
  return 4 * sim::KiB;
}

[[nodiscard]] constexpr const char* to_string(PageSize p) {
  switch (p) {
    case PageSize::k4K: return "4K";
    case PageSize::k2M: return "2M";
    case PageSize::k1G: return "1G";
  }
  return "?";
}

/// Number of pages of size `p` covering `bytes` (rounded up).
[[nodiscard]] constexpr std::uint64_t pages_for(sim::Bytes bytes, PageSize p) {
  const sim::Bytes pb = page_bytes(p);
  return (bytes + pb - 1) / pb;
}

}  // namespace mkos::mem
