#include "mem/page_table.hpp"

namespace mkos::mem {

namespace {
// Entries per table at every level.
constexpr std::uint64_t kEntries = 512;

std::uint64_t div_up(std::uint64_t a, std::uint64_t b) { return (a + b - 1) / b; }
}  // namespace

PageTableStats page_tables_for(const Placement& placement) {
  PageTableStats s;
  // Leaves per level-coverage unit, per page size.
  std::uint64_t pte_entries = 0;   // 4 KiB leaf entries
  std::uint64_t pd_entries = 0;    // 2 MiB leaf entries
  std::uint64_t pdpt_entries = 0;  // 1 GiB leaf entries
  for (const auto& c : placement.chunks()) {
    switch (c.page) {
      case PageSize::k4K: pte_entries += pages_for(c.bytes, PageSize::k4K); break;
      case PageSize::k2M: pd_entries += pages_for(c.bytes, PageSize::k2M); break;
      case PageSize::k1G: pdpt_entries += pages_for(c.bytes, PageSize::k1G); break;
    }
  }
  s.pte_tables = div_up(pte_entries, kEntries);
  // PD entries: 2 MiB leaves plus one per PTE table.
  const std::uint64_t pd_total = pd_entries + s.pte_tables;
  s.pd_tables = div_up(pd_total, kEntries);
  const std::uint64_t pdpt_total = pdpt_entries + s.pd_tables;
  s.pdpt_tables = div_up(pdpt_total, kEntries);
  return s;
}

double average_walk_depth(const Placement& placement) {
  const sim::Bytes total = placement.total();
  if (total == 0) return 0.0;
  double acc = 0.0;
  for (const auto& c : placement.chunks()) {
    const double frac = static_cast<double>(c.bytes) / static_cast<double>(total);
    switch (c.page) {
      case PageSize::k4K: acc += 4.0 * frac; break;
      case PageSize::k2M: acc += 3.0 * frac; break;
      case PageSize::k1G: acc += 2.0 * frac; break;
    }
  }
  return acc;
}

}  // namespace mkos::mem
