#pragma once
// Page-table shape accounting (x86-64 four-level layout).
//
// Large pages do not only save TLB misses — they shrink the page tables
// themselves: backing 96 GiB with 4 KiB PTEs costs ~188 MiB of page-table
// pages and four-level walks, while 1 GiB mappings terminate at the PDPT.
// The LWKs' "map physically contiguous memory upfront ... using 1 GB pages
// if the size of the mapping allows it" therefore also buys shorter walks
// and near-zero table overhead. This module turns a Placement into table
// statistics (pages consumed per level, bytes of table memory, walk depth).

#include "mem/address_space.hpp"

namespace mkos::mem {

struct PageTableStats {
  std::uint64_t pte_tables = 0;   ///< level-1 tables (4 KiB leaves)
  std::uint64_t pd_tables = 0;    ///< level-2 tables (2 MiB leaves or PTE dirs)
  std::uint64_t pdpt_tables = 0;  ///< level-3 tables (1 GiB leaves or PD dirs)
  std::uint64_t pml4_tables = 1;  ///< root

  [[nodiscard]] std::uint64_t total_tables() const {
    return pte_tables + pd_tables + pdpt_tables + pml4_tables;
  }
  /// Memory consumed by the tables themselves (4 KiB per table).
  [[nodiscard]] sim::Bytes table_bytes() const { return total_tables() * 4096; }
};

/// Tables needed to map `placement` (densely packed mappings assumed —
/// the upper bound is within one table per level of the truth).
[[nodiscard]] PageTableStats page_tables_for(const Placement& placement);

/// Average translation walk depth for the placement (4 levels for 4 KiB
/// leaves, 3 for 2 MiB, 2 for 1 GiB), weighted by bytes.
[[nodiscard]] double average_walk_depth(const Placement& placement);

}  // namespace mkos::mem
