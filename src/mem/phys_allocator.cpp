#include "mem/phys_allocator.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace mkos::mem {

DomainAllocator::DomainAllocator(hw::DomainId id, sim::Bytes capacity)
    : id_(id), capacity_(capacity), free_bytes_(capacity) {
  MKOS_EXPECTS(capacity > 0);
  free_.push_back(FreeExtent{0, capacity});
}

sim::Bytes DomainAllocator::largest_free_extent() const {
  sim::Bytes best = 0;
  for (const FreeExtent& e : free_) best = std::max(best, e.length);
  return best;
}

std::uint64_t DomainAllocator::compute_fingerprint() const {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
    return h ^ (h >> 31);
  };
  std::uint64_t h = mix(0x452821e638d01377ULL, free_bytes_);
  h = mix(h, free_.size());
  if (!free_.empty()) {
    h = mix(h, free_.front().start);
    h = mix(h, free_.front().length);
    h = mix(h, free_.back().start);
    h = mix(h, free_.back().length);
  }
  return h;
}

std::optional<Extent> DomainAllocator::alloc_contiguous(sim::Bytes length, sim::Bytes align) {
  if (fault_hook_ && fault_hook_(length)) return std::nullopt;
  return alloc_contiguous_impl(length, align);
}

std::optional<Extent> DomainAllocator::alloc_contiguous_impl(sim::Bytes length,
                                                             sim::Bytes align) {
  MKOS_EXPECTS(length > 0);
  MKOS_EXPECTS(align > 0 && (align & (align - 1)) == 0);
  for (std::size_t i = 0; i < free_.size(); ++i) {
    const sim::Bytes start = free_[i].start;
    const sim::Bytes len = free_[i].length;
    const sim::Bytes aligned = sim::align_up(start, align);
    const sim::Bytes waste = aligned - start;
    if (len < waste + length) continue;
    // Carve [aligned, aligned+length) out of [start, start+len), patching
    // the surviving head/tail pieces in place to keep the vector sorted.
    const sim::Bytes tail_start = aligned + length;
    const sim::Bytes tail_len = start + len - tail_start;
    const auto it = free_.begin() + static_cast<std::ptrdiff_t>(i);
    if (waste > 0 && tail_len > 0) {
      it->length = waste;
      free_.insert(it + 1, FreeExtent{tail_start, tail_len});
    } else if (waste > 0) {
      it->length = waste;
    } else if (tail_len > 0) {
      *it = FreeExtent{tail_start, tail_len};
    } else {
      free_.erase(it);
    }
    free_bytes_ -= length;
    ++rev_;
    return Extent{id_, aligned, length};
  }
  return std::nullopt;
}

const std::vector<Extent>& DomainAllocator::alloc_best_effort(sim::Bytes length,
                                                              sim::Bytes granule) {
  MKOS_EXPECTS(granule > 0 && (granule & (granule - 1)) == 0);
  std::vector<Extent>& out = best_effort_scratch_;
  out.clear();
  if (traffic_hook_) traffic_hook_(traffic_caller_, length);
  // One injection decision per request, not per carved extent: the internal
  // loop below allocates pieces it has already sized against the free map,
  // so a mid-loop denial would trip the has_value() invariant.
  if (fault_hook_ && fault_hook_(length)) return out;
  sim::Bytes remaining = sim::align_up(length, granule);
  while (remaining > 0) {
    // Take the largest granule-aligned piece available, capped at remaining.
    sim::Bytes best_usable = 0;
    for (const FreeExtent& f : free_) {
      const sim::Bytes aligned = sim::align_up(f.start, granule);
      if (aligned >= f.start + f.length) continue;
      const sim::Bytes usable = sim::align_down(f.start + f.length - aligned, granule);
      best_usable = std::max(best_usable, usable);
    }
    if (best_usable == 0) break;
    const sim::Bytes take = std::min(best_usable, remaining);
    auto e = alloc_contiguous_impl(take, granule);
    MKOS_ASSERT(e.has_value());
    out.push_back(*e);
    remaining -= take;
  }
  return out;
}

void DomainAllocator::free(const Extent& e) {
  MKOS_EXPECTS(e.domain == id_);
  MKOS_EXPECTS(e.length > 0);
  MKOS_EXPECTS(e.end() <= capacity_);
  insert_free(e.start, e.length);
  free_bytes_ += e.length;
  ++rev_;
  MKOS_ENSURES(free_bytes_ <= capacity_);
}

void DomainAllocator::insert_free(sim::Bytes start, sim::Bytes length) {
  auto next = std::lower_bound(
      free_.begin(), free_.end(), start,
      [](const FreeExtent& e, sim::Bytes s) { return e.start < s; });
  // Coalesce with the previous extent — absorb into it in place.
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    MKOS_EXPECTS(prev->start + prev->length <= start);  // double free guard
    if (prev->start + prev->length == start) {
      prev->length += length;
      // Coalesce with the following extent too.
      if (next != free_.end()) {
        MKOS_EXPECTS(prev->start + prev->length <= next->start);
        if (prev->start + prev->length == next->start) {
          prev->length += next->length;
          free_.erase(next);
        }
      }
      return;
    }
  }
  // Coalesce with the following extent — grow it downward in place.
  if (next != free_.end()) {
    MKOS_EXPECTS(start + length <= next->start);
    if (start + length == next->start) {
      next->start = start;
      next->length += length;
      return;
    }
  }
  free_.insert(next, FreeExtent{start, length});
}

sim::Bytes DomainAllocator::pin_unmovable(sim::Bytes total, int chunks, sim::Rng& rng) {
  MKOS_EXPECTS(chunks > 0);
  sim::Bytes pinned = 0;
  const sim::Bytes per_chunk = sim::align_up(total / static_cast<sim::Bytes>(chunks), 4 * sim::KiB);
  for (int i = 0; i < chunks && pinned < total; ++i) {
    // Pick a random free extent and pin a piece somewhere inside it so that
    // the remaining space is split — this is what destroys 1 GiB contiguity.
    if (free_.empty()) break;
    const auto it = free_.begin() +
                    static_cast<std::ptrdiff_t>(rng.uniform_index(free_.size()));
    const sim::Bytes start = it->start;
    const sim::Bytes len = it->length;
    if (len < per_chunk) continue;
    const sim::Bytes slack = len - per_chunk;
    const sim::Bytes offset =
        sim::align_down(slack > 0 ? rng.uniform_index(slack) : 0, 4 * sim::KiB);
    const sim::Bytes tail = start + offset + per_chunk;
    const sim::Bytes tail_len = start + len - tail;
    if (offset > 0 && tail_len > 0) {
      it->length = offset;
      free_.insert(it + 1, FreeExtent{tail, tail_len});
    } else if (offset > 0) {
      it->length = offset;
    } else if (tail_len > 0) {
      *it = FreeExtent{tail, tail_len};
    } else {
      free_.erase(it);
    }
    free_bytes_ -= per_chunk;
    ++rev_;
    pinned += per_chunk;
  }
  return pinned;
}

PhysMemory::PhysMemory(const hw::NodeTopology& topo) {
  domains_.reserve(topo.domains().size());
  for (const auto& d : topo.domains()) domains_.emplace_back(d.id, d.capacity);
}

sim::Bytes PhysMemory::free_bytes_of_kind(const hw::NodeTopology& topo,
                                          hw::MemKind kind) const {
  sim::Bytes total = 0;
  for (const auto& d : domains_) {
    if (topo.domain(d.id()).kind == kind) total += d.free_bytes();
  }
  return total;
}

}  // namespace mkos::mem
