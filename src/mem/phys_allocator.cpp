#include "mem/phys_allocator.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace mkos::mem {

DomainAllocator::DomainAllocator(hw::DomainId id, sim::Bytes capacity)
    : id_(id), capacity_(capacity), free_bytes_(capacity) {
  MKOS_EXPECTS(capacity > 0);
  free_.emplace(0, capacity);
}

sim::Bytes DomainAllocator::largest_free_extent() const {
  sim::Bytes best = 0;
  for (const auto& [start, len] : free_) best = std::max(best, len);
  return best;
}

std::uint64_t DomainAllocator::state_fingerprint() const {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
    return h ^ (h >> 31);
  };
  std::uint64_t h = mix(0x452821e638d01377ULL, free_bytes_);
  h = mix(h, free_.size());
  if (!free_.empty()) {
    h = mix(h, free_.begin()->first);
    h = mix(h, free_.begin()->second);
    h = mix(h, free_.rbegin()->first);
    h = mix(h, free_.rbegin()->second);
  }
  return h;
}

std::optional<Extent> DomainAllocator::alloc_contiguous(sim::Bytes length, sim::Bytes align) {
  if (fault_hook_ && fault_hook_(length)) return std::nullopt;
  return alloc_contiguous_impl(length, align);
}

std::optional<Extent> DomainAllocator::alloc_contiguous_impl(sim::Bytes length,
                                                             sim::Bytes align) {
  MKOS_EXPECTS(length > 0);
  MKOS_EXPECTS(align > 0 && (align & (align - 1)) == 0);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const sim::Bytes start = it->first;
    const sim::Bytes len = it->second;
    const sim::Bytes aligned = sim::align_up(start, align);
    const sim::Bytes waste = aligned - start;
    if (len < waste + length) continue;
    // Carve [aligned, aligned+length) out of [start, start+len).
    const sim::Bytes tail_start = aligned + length;
    const sim::Bytes tail_len = start + len - tail_start;
    free_.erase(it);
    if (waste > 0) free_.emplace(start, waste);
    if (tail_len > 0) free_.emplace(tail_start, tail_len);
    free_bytes_ -= length;
    return Extent{id_, aligned, length};
  }
  return std::nullopt;
}

std::vector<Extent> DomainAllocator::alloc_best_effort(sim::Bytes length, sim::Bytes granule) {
  MKOS_EXPECTS(granule > 0 && (granule & (granule - 1)) == 0);
  std::vector<Extent> out;
  // One injection decision per request, not per carved extent: the internal
  // loop below allocates pieces it has already sized against the free map,
  // so a mid-loop denial would trip the has_value() invariant.
  if (fault_hook_ && fault_hook_(length)) return out;
  sim::Bytes remaining = sim::align_up(length, granule);
  while (remaining > 0) {
    // Take the largest granule-aligned piece available, capped at remaining.
    auto best = free_.end();
    sim::Bytes best_usable = 0;
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      const sim::Bytes aligned = sim::align_up(it->first, granule);
      if (aligned >= it->first + it->second) continue;
      const sim::Bytes usable = sim::align_down(it->first + it->second - aligned, granule);
      if (usable > best_usable) {
        best_usable = usable;
        best = it;
      }
    }
    if (best == free_.end() || best_usable == 0) break;
    const sim::Bytes take = std::min(best_usable, remaining);
    const sim::Bytes aligned = sim::align_up(best->first, granule);
    auto e = alloc_contiguous_impl(take, granule);
    MKOS_ASSERT(e.has_value());
    (void)aligned;
    out.push_back(*e);
    remaining -= take;
  }
  return out;
}

void DomainAllocator::free(const Extent& e) {
  MKOS_EXPECTS(e.domain == id_);
  MKOS_EXPECTS(e.length > 0);
  MKOS_EXPECTS(e.end() <= capacity_);
  insert_free(e.start, e.length);
  free_bytes_ += e.length;
  MKOS_ENSURES(free_bytes_ <= capacity_);
}

void DomainAllocator::insert_free(sim::Bytes start, sim::Bytes length) {
  auto next = free_.lower_bound(start);
  // Coalesce with the previous extent.
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    MKOS_EXPECTS(prev->first + prev->second <= start);  // double free guard
    if (prev->first + prev->second == start) {
      start = prev->first;
      length += prev->second;
      free_.erase(prev);
    }
  }
  // Coalesce with the following extent.
  if (next != free_.end()) {
    MKOS_EXPECTS(start + length <= next->first);
    if (start + length == next->first) {
      length += next->second;
      free_.erase(next);
    }
  }
  free_.emplace(start, length);
}

sim::Bytes DomainAllocator::pin_unmovable(sim::Bytes total, int chunks, sim::Rng& rng) {
  MKOS_EXPECTS(chunks > 0);
  sim::Bytes pinned = 0;
  const sim::Bytes per_chunk = sim::align_up(total / static_cast<sim::Bytes>(chunks), 4 * sim::KiB);
  for (int i = 0; i < chunks && pinned < total; ++i) {
    // Pick a random free extent and pin a piece somewhere inside it so that
    // the remaining space is split — this is what destroys 1 GiB contiguity.
    if (free_.empty()) break;
    auto it = free_.begin();
    std::advance(it, static_cast<long>(rng.uniform_index(free_.size())));
    const sim::Bytes start = it->first;
    const sim::Bytes len = it->second;
    if (len < per_chunk) continue;
    const sim::Bytes slack = len - per_chunk;
    const sim::Bytes offset =
        sim::align_down(slack > 0 ? rng.uniform_index(slack) : 0, 4 * sim::KiB);
    free_.erase(it);
    if (offset > 0) free_.emplace(start, offset);
    const sim::Bytes tail = start + offset + per_chunk;
    if (tail < start + len) free_.emplace(tail, start + len - tail);
    free_bytes_ -= per_chunk;
    pinned += per_chunk;
  }
  return pinned;
}

PhysMemory::PhysMemory(const hw::NodeTopology& topo) {
  domains_.reserve(topo.domains().size());
  for (const auto& d : topo.domains()) domains_.emplace_back(d.id, d.capacity);
}

DomainAllocator& PhysMemory::domain(hw::DomainId id) {
  MKOS_EXPECTS(id >= 0 && id < domain_count());
  return domains_[static_cast<std::size_t>(id)];
}

const DomainAllocator& PhysMemory::domain(hw::DomainId id) const {
  MKOS_EXPECTS(id >= 0 && id < domain_count());
  return domains_[static_cast<std::size_t>(id)];
}

sim::Bytes PhysMemory::free_bytes_of_kind(const hw::NodeTopology& topo,
                                          hw::MemKind kind) const {
  sim::Bytes total = 0;
  for (const auto& d : domains_) {
    if (topo.domain(d.id()).kind == kind) total += d.free_bytes();
  }
  return total;
}

}  // namespace mkos::mem
