#pragma once
// Physical memory: per-NUMA-domain extent allocators.
//
// Kernels carve physical backing out of these. Contiguity matters: large
// pages need naturally aligned free extents, and the paper's IHK-vs-mOS
// boot-order difference ("mOS can grab large contiguous physical memory
// blocks early during the boot sequence, McKernel has to request them from
// Linux later, potentially after Linux has already placed unmovable data
// structures into it") is modeled by punching unmovable holes into a domain
// before the LWK reserves from it.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "hw/topology.hpp"
#include "mem/page.hpp"
#include "sim/rng.hpp"

namespace mkos::mem {

/// A physically contiguous run of memory inside one domain.
struct Extent {
  hw::DomainId domain = -1;
  sim::Bytes start = 0;
  sim::Bytes length = 0;

  [[nodiscard]] sim::Bytes end() const { return start + length; }
};

/// First-fit extent allocator for a single NUMA domain.
class DomainAllocator {
 public:
  DomainAllocator(hw::DomainId id, sim::Bytes capacity);

  [[nodiscard]] hw::DomainId id() const { return id_; }
  [[nodiscard]] sim::Bytes capacity() const { return capacity_; }
  [[nodiscard]] sim::Bytes free_bytes() const { return free_bytes_; }
  [[nodiscard]] sim::Bytes used_bytes() const { return capacity_ - free_bytes_; }
  [[nodiscard]] sim::Bytes largest_free_extent() const;

  /// Allocate exactly `length` bytes in one contiguous, `align`-aligned run.
  /// Returns nullopt when no such run exists (fragmentation or exhaustion).
  std::optional<Extent> alloc_contiguous(sim::Bytes length, sim::Bytes align);

  /// Allocate up to `length` bytes as multiple extents, each aligned to and
  /// a multiple of `granule` (the page size being mapped). May return less
  /// than requested; the caller decides whether to spill to another domain.
  /// Returns a reference to an internal scratch buffer that the next
  /// alloc_best_effort call on this allocator overwrites — consume it before
  /// allocating again (the fault paths call this once per spill step, so the
  /// reuse removes one heap allocation per step).
  const std::vector<Extent>& alloc_best_effort(sim::Bytes length, sim::Bytes granule);

  /// Fault-injection hook, consulted once at the top of each public
  /// allocation call (never on internal retries). Returning true denies the
  /// allocation as if the domain were exhausted, which drives callers onto
  /// their existing spill paths (MCDRAM -> DDR4). nullptr (the default)
  /// disables injection with zero cost on the allocation path.
  using FaultHook = std::function<bool(sim::Bytes length)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  [[nodiscard]] bool has_fault_hook() const { return fault_hook_ != nullptr; }

  /// Contention-visibility hook, fired once at the top of every
  /// alloc_best_effort call with the current caller id (see
  /// set_traffic_caller) and the requested length. The allocator model uses
  /// it to attribute kernel-heap refill traffic per lane; nullptr (the
  /// default) costs nothing on the allocation path.
  using TrafficHook = std::function<void(int caller, sim::Bytes length)>;
  void set_traffic_hook(TrafficHook hook) { traffic_hook_ = std::move(hook); }
  [[nodiscard]] bool has_traffic_hook() const { return traffic_hook_ != nullptr; }

  /// Tag subsequent allocations with a caller id (e.g. a lane index) for the
  /// TrafficHook; -1 (the default) means "unattributed" and hook consumers
  /// typically ignore it.
  void set_traffic_caller(int id) { traffic_caller_ = id; }
  [[nodiscard]] int traffic_caller() const { return traffic_caller_; }

  /// Return an extent previously handed out.
  void free(const Extent& e);

  /// Permanently remove `total` bytes in `chunks` randomly placed unmovable
  /// chunks (models Linux boot-time allocations that IHK cannot relocate).
  /// Returns the number of bytes actually pinned.
  sim::Bytes pin_unmovable(sim::Bytes total, int chunks, sim::Rng& rng);

  /// Number of distinct free extents (fragmentation indicator).
  [[nodiscard]] std::size_t free_extent_count() const { return free_.size(); }

  /// One entry of the free map: a maximal free run [start, start + length).
  struct FreeExtent {
    sim::Bytes start = 0;
    sim::Bytes length = 0;
  };

  /// O(1) hash of the free-map state (volume, extent count, boundary
  /// extents). A sequence of allocations exactly undone by frees maps back
  /// to the same fingerprint; used by the symmetric-lane heap fast path to
  /// verify a brk cycle left the allocator where it found it. Memoized
  /// against a mutation revision: the fast path probes it on every cycle,
  /// mutations are comparatively rare.
  [[nodiscard]] std::uint64_t state_fingerprint() const {
    if (fp_rev_ != rev_) {
      fp_cache_ = compute_fingerprint();
      fp_rev_ = rev_;
    }
    return fp_cache_;
  }

 private:
  [[nodiscard]] std::uint64_t compute_fingerprint() const;
  void insert_free(sim::Bytes start, sim::Bytes length);
  /// alloc_contiguous without the fault hook (internal callers that already
  /// passed the injection gate for the whole request).
  std::optional<Extent> alloc_contiguous_impl(sim::Bytes length, sim::Bytes align);

  hw::DomainId id_;
  sim::Bytes capacity_;
  sim::Bytes free_bytes_;
  /// Free map as a flat vector sorted by start, coalesced. Domains hold a
  /// handful of extents, so first-fit scans and lower_bound insertions are
  /// contiguous loads and a short memmove — the node-based map this
  /// replaces paid an allocation and a pointer chase per carve on the
  /// hottest setup path in the simulator.
  std::vector<FreeExtent> free_;
  std::vector<Extent> best_effort_scratch_;
  FaultHook fault_hook_;
  TrafficHook traffic_hook_;
  int traffic_caller_ = -1;
  std::uint64_t rev_ = 1;  // bumped by every free-map mutation
  mutable std::uint64_t fp_rev_ = 0;
  mutable std::uint64_t fp_cache_ = 0;
};

/// All domains of one node.
class PhysMemory {
 public:
  explicit PhysMemory(const hw::NodeTopology& topo);

  [[nodiscard]] DomainAllocator& domain(hw::DomainId id) {
    MKOS_EXPECTS(id >= 0 && id < domain_count());
    return domains_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const DomainAllocator& domain(hw::DomainId id) const {
    MKOS_EXPECTS(id >= 0 && id < domain_count());
    return domains_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int domain_count() const { return static_cast<int>(domains_.size()); }

  [[nodiscard]] sim::Bytes free_bytes_of_kind(const hw::NodeTopology& topo,
                                              hw::MemKind kind) const;

 private:
  std::vector<DomainAllocator> domains_;
};

}  // namespace mkos::mem
