#include "mem/placement.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace mkos::mem {

namespace {

/// Fraction of an eligible anon range transparent huge pages actually cover
/// on this Linux vintage (khugepaged lag, alignment holes).
constexpr double kThpCoverage = 0.65;

/// Largest page size usable for a run of `bytes` in a domain whose largest
/// free aligned extent is `largest`.
PageSize best_page(sim::Bytes bytes, sim::Bytes largest, bool use_large) {
  if (!use_large) return PageSize::k4K;
  if (bytes >= sim::GiB && largest >= sim::GiB) return PageSize::k1G;
  if (bytes >= 2 * sim::MiB && largest >= 2 * sim::MiB) return PageSize::k2M;
  return PageSize::k4K;
}

sim::TimeNs pte_cost(const MemCostModel& cost, sim::Bytes bytes, PageSize page) {
  return cost.pte_per_page * static_cast<std::int64_t>(pages_for(bytes, page));
}

/// Per-domain byte share of an INTERLEAVE request: the round-robin page
/// stripe collapses to an even split of the range across the listed domains
/// (page granularity rounding aside). 0 for every other mode.
sim::Bytes interleave_share(const MemPolicy& policy, sim::Bytes total) {
  if (policy.mode != PolicyMode::kInterleave || policy.domains.empty()) return 0;
  const auto n = static_cast<sim::Bytes>(policy.domains.size());
  return sim::align_up(std::max<sim::Bytes>(total / n, 4 * sim::KiB), 4 * sim::KiB);
}

bool in_policy_domains(const MemPolicy& policy, hw::DomainId d) {
  return std::find(policy.domains.begin(), policy.domains.end(), d) !=
         policy.domains.end();
}

}  // namespace

const std::vector<hw::DomainId>& lwk_domain_order(const hw::NodeTopology& topo,
                                                  int home_quadrant, bool prefer_mcdram) {
  return topo.kind_major_order(
      home_quadrant, prefer_mcdram ? hw::MemKind::kMcdram : hw::MemKind::kDdr4);
}

const std::vector<hw::DomainId>& linux_domain_order(const hw::NodeTopology& topo,
                                                    const MemPolicy& policy,
                                                    int home_quadrant) {
  switch (policy.mode) {
    case PolicyMode::kBind:
    case PolicyMode::kInterleave:
      return policy.domains;
    case PolicyMode::kPreferred:
      MKOS_EXPECTS(policy.domains.size() == 1);  // the Linux limitation
      return topo.fallback_order_from(home_quadrant, policy.domains[0]);
    case PolicyMode::kDefault:
      return topo.fallback_order(home_quadrant);
  }
  return topo.fallback_order(home_quadrant);
}

PlaceResult place_lwk(PhysMemory& phys, const hw::NodeTopology& topo,
                      const MemCostModel& cost, const PlaceRequest& req) {
  MKOS_EXPECTS(req.bytes > 0);
  PlaceResult res;

  std::vector<hw::DomainId> merged;
  const std::vector<hw::DomainId>* order_ptr;
  if (req.policy.mode == PolicyMode::kDefault) {
    order_ptr = &lwk_domain_order(topo, req.home_quadrant, req.prefer_mcdram);
  } else {
    // McKernel "implements the standard NUMA APIs" — an explicit policy wins
    // over the LWK spill order, but the LWK still appends a DDR4 fallback so
    // it can "silently fall back to DDR4 RAM once they run out of MCDRAM".
    merged = linux_domain_order(topo, req.policy, req.home_quadrant);
    if (req.policy.mode != PolicyMode::kBind) {
      for (hw::DomainId d : lwk_domain_order(topo, req.home_quadrant, false)) {
        if (std::find(merged.begin(), merged.end(), d) == merged.end()) merged.push_back(d);
      }
    }
    order_ptr = &merged;
  }
  const std::vector<hw::DomainId>& order = *order_ptr;

  sim::Bytes remaining = sim::align_up(req.bytes, 4 * sim::KiB);
  sim::Bytes quota_left = req.mcdram_quota == PlaceRequest::kNoQuota
                              ? PlaceRequest::kNoQuota
                              : (req.mcdram_quota > req.mcdram_quota_used
                                     ? req.mcdram_quota - req.mcdram_quota_used
                                     : 0);

  // INTERLEAVE stripes pages round-robin over the policy domains; at mmap
  // granularity that collapses to an even per-domain share. Pass 0 honors the
  // shares; pass 1 places whatever exhausted domains rejected via the normal
  // fallback walk (matching Linux, which skips full domains in the stripe).
  const sim::Bytes stripe_share = interleave_share(req.policy, remaining);
  const int passes = stripe_share > 0 ? 2 : 1;
  for (int pass = 0; pass < passes && remaining > 0; ++pass) {
    for (hw::DomainId d : order) {
      if (remaining == 0) break;
      auto& alloc = phys.domain(d);
      const bool is_mcdram = topo.domain(d).kind == hw::MemKind::kMcdram;

      sim::Bytes want = remaining;
      if (pass == 0 && stripe_share > 0 && in_policy_domains(req.policy, d)) {
        want = std::min(want, stripe_share);
      }
      if (is_mcdram && quota_left != PlaceRequest::kNoQuota) {
        want = std::min(want, quota_left);
        if (want == 0) continue;
      }

      // Try progressively smaller page granules within this domain.
      for (PageSize page : {PageSize::k1G, PageSize::k2M, PageSize::k4K}) {
        if (want == 0) break;
        const PageSize usable =
            best_page(want, alloc.largest_free_extent(), req.use_large_pages);
        // Skip granules larger than what the request/extents support.
        if (page_bytes(page) > page_bytes(usable)) continue;
        const sim::Bytes granule = page_bytes(page);
        const sim::Bytes ask = sim::align_down(want, granule);
        if (ask == 0) continue;
        const auto& extents = alloc.alloc_best_effort(ask, granule);
        for (const auto& e : extents) {
          res.extents.push_back(e);
          res.placement.add(d, page, e.length);
          res.map_cost += pte_cost(cost, e.length, page);
          // LWKs hand out pre-zeroed memory at map time so no fault ever hits
          // the application; the zeroing bill is paid here, once.
          res.map_cost += cost.zero_cost(e.length);
          remaining -= e.length;
          want -= e.length;
          if (is_mcdram) {
            res.mcdram_taken += e.length;
            if (quota_left != PlaceRequest::kNoQuota) quota_left -= e.length;
          }
        }
      }
    }
  }

  res.backed = res.placement.total();
  if (remaining > 0) {
    if (req.demand_fallback) {
      // McKernel: "automatically fall back to demand paging to allow best
      // effort allocation ... when enough physical memory is not available".
      res.deferred = remaining;
      res.used_demand_fallback = true;
    } else if (req.rigid) {
      // mOS: "Only physically available memory can be allocated."
      res.err = 12;  // ENOMEM
    } else {
      res.deferred = remaining;
    }
  }
  return res;
}

PlaceResult place_linux(const hw::NodeTopology& topo, const MemCostModel& cost,
                        const PlaceRequest& req, Vma& vma, bool thp_enabled) {
  MKOS_EXPECTS(req.bytes > 0);
  (void)topo;
  PlaceResult res;
  res.deferred = sim::align_up(req.bytes, 4 * sim::KiB);
  // THP: private anon mappings of >= 2 MiB get a 2 MiB fault granule. The
  // heap is handled separately (LinuxHeap: brk alignment rarely allows THP)
  // and tmpfs/shm segments stay at 4 KiB (shmem THP is off on this vintage).
  vma.touch_page = (thp_enabled && req.bytes >= 2 * sim::MiB && vma.kind == VmaKind::kAnon)
                       ? PageSize::k2M
                       : PageSize::k4K;
  vma.demand_paged = true;
  res.map_cost = cost.pte_per_page;  // VMA bookkeeping only
  return res;
}

TouchResult touch(PhysMemory& phys, const hw::NodeTopology& topo, const MemCostModel& cost,
                  Vma& vma, sim::Bytes bytes, int home_quadrant, int concurrent_faulters) {
  TouchResult res;
  if (!vma.demand_paged) return res;
  sim::Bytes remaining = std::min(bytes, vma.unbacked());
  if (remaining == 0) return res;

  const std::vector<hw::DomainId>& order =
      vma.touch_lwk_order ? lwk_domain_order(topo, home_quadrant, true)
                          : linux_domain_order(topo, vma.policy, home_quadrant);
  const double contention = cost.contention(concurrent_faulters);

  // INTERLEAVE faults land round-robin over the policy domains; per touch
  // slice that is an even per-domain share (pass 0), with anything an
  // exhausted domain rejected spilling down the walk order (pass 1).
  const sim::Bytes stripe_share =
      vma.touch_lwk_order ? 0 : interleave_share(vma.policy, remaining);
  const int passes = stripe_share > 0 ? 2 : 1;
  for (int pass = 0; pass < passes && remaining > 0; ++pass) {
    for (hw::DomainId d : order) {
      if (remaining == 0) break;
      auto& alloc = phys.domain(d);
      if (vma.policy.mode == PolicyMode::kBind &&
          std::find(vma.policy.domains.begin(), vma.policy.domains.end(), d) ==
              vma.policy.domains.end()) {
        continue;
      }
      sim::Bytes budget = remaining;
      if (pass == 0 && stripe_share > 0 && in_policy_domains(vma.policy, d)) {
        budget = std::min(budget, stripe_share);
      }
      // Fault granule: the VMA's granule when extents allow, else 4K. THP is
      // opportunistic on Linux — khugepaged only collapses part of an anon
      // range into huge pages (alignment holes, partial ranges, scan lag) —
      // while the LWK fallback path always fills whole 2 MiB granules.
      sim::Bytes thp_budget =
          vma.touch_lwk_order
              ? remaining
              : sim::align_down(
                    static_cast<sim::Bytes>(static_cast<double>(remaining) * kThpCoverage),
                    page_bytes(PageSize::k2M));
      while (remaining > 0 && budget > 0) {
        PageSize page = vma.touch_page;
        if (page == PageSize::k2M && thp_budget == 0) page = PageSize::k4K;
        if (page_bytes(page) > remaining || alloc.largest_free_extent() < page_bytes(page)) {
          page = PageSize::k4K;
        }
        const sim::Bytes granule = page_bytes(page);
        sim::Bytes ask = sim::align_up(
            std::min({remaining, budget, sim::Bytes{64} * sim::MiB}), granule);
        if (page == PageSize::k2M) ask = std::min(ask, thp_budget);
        const auto& extents = alloc.alloc_best_effort(ask, granule);
        if (extents.empty()) break;  // domain exhausted; next in fallback order
        for (const auto& e : extents) {
          vma.extents.push_back(e);
          vma.placement.add(d, page, e.length);
          const std::uint64_t n = pages_for(e.length, page);
          res.faults += n;
          const sim::TimeNs handler = page == PageSize::k4K ? cost.fault_4k : cost.fault_large;
          res.cost += (handler * static_cast<std::int64_t>(n)).scaled(contention);
          // Linux zeroes each page inside the fault (write to the CoW zero page).
          res.cost += cost.zero_cost(e.length);
          res.newly_backed += e.length;
          remaining -= std::min(remaining, e.length);
          budget -= std::min(budget, e.length);
          if (page == PageSize::k2M) thp_budget -= std::min(thp_budget, e.length);
        }
      }
    }
  }
  vma.fault_count += res.faults;
  if (vma.unbacked() == 0) vma.demand_paged = vma.kind == VmaKind::kHeap;  // heap can grow again
  return res;
}

}  // namespace mkos::mem
