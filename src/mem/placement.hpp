#pragma once
// Placement engine: how each kernel backs a mapping with physical memory.
//
//  * place_lwk()   — upfront physical allocation in the LWK preference order
//                    (local MCDRAM -> remote MCDRAM -> local DDR4 -> remote
//                    DDR4), largest page size the extent allows (1G / 2M),
//                    optional per-rank MCDRAM quota (mOS launch partitioning)
//                    and optional demand-paging fallback (McKernel).
//  * place_linux() — demand paging: no physical backing at map time; the
//                    fault granule is chosen here (THP for large anon maps,
//                    4K otherwise).
//  * touch()       — first-touch simulation: back `bytes` of a demand-paged
//                    VMA according to its policy, charging fault + zeroing
//                    costs with a fault-handler contention multiplier.

#include <cstdint>

#include "mem/address_space.hpp"
#include "mem/numa_policy.hpp"
#include "mem/phys_allocator.hpp"
#include "sim/time.hpp"

namespace mkos::mem {

/// Cost constants a kernel charges for memory-management work. Each kernel
/// model owns an instance; the defaults are Linux-on-KNL-class numbers
/// (KNL cores are slow: ~1.4 GHz, no out-of-order depth to hide traps).
struct MemCostModel {
  sim::TimeNs syscall_entry{400};      ///< trap + dispatch + return
  sim::TimeNs fault_4k{2400};          ///< minor-fault handler, 4 KiB
  sim::TimeNs fault_large{2600};       ///< fault handler for 2M/1G granule
  sim::TimeNs pte_per_page{18};        ///< page-table population per page at map time
  double zero_gbps = 18.0;             ///< single-thread memset bandwidth
  double contention_slope = 0.18;      ///< extra handler cost per concurrent faulter

  [[nodiscard]] sim::TimeNs zero_cost(sim::Bytes bytes) const {
    return sim::from_double_ns(static_cast<double>(bytes) / (zero_gbps * 1e9) * 1e9);
  }
  [[nodiscard]] double contention(int concurrent_faulters) const {
    return 1.0 + contention_slope * static_cast<double>(concurrent_faulters > 0 ? concurrent_faulters - 1 : 0);
  }
};

struct PlaceRequest {
  sim::Bytes bytes = 0;
  MemPolicy policy;          ///< explicit application policy (if any)
  int home_quadrant = 0;     ///< quadrant of the faulting / calling CPU
  bool prefer_mcdram = true; ///< LWK default placement order
  bool use_large_pages = true;
  /// mOS-style per-process MCDRAM budget; kNoQuota disables the cap.
  sim::Bytes mcdram_quota = kNoQuota;
  sim::Bytes mcdram_quota_used = 0;
  /// McKernel: fall back to demand paging instead of failing/spilling when
  /// physically contiguous memory of the preferred kind is unavailable.
  bool demand_fallback = false;
  /// mOS: rigid — only physically available memory; ENOMEM when exhausted.
  bool rigid = false;

  static constexpr sim::Bytes kNoQuota = ~sim::Bytes{0};
};

struct PlaceResult {
  Placement placement;          ///< what got backed now
  std::vector<Extent> extents;  ///< physical extents to attach to the VMA
  sim::Bytes backed = 0;
  sim::Bytes deferred = 0;      ///< left to demand paging
  bool used_demand_fallback = false;
  sim::TimeNs map_cost{0};      ///< PTE population + zeroing charged at map
  int err = 0;                  ///< 0 or ENOMEM
  sim::Bytes mcdram_taken = 0;  ///< for quota accounting by the caller
};

/// Upfront placement used by McKernel and mOS.
[[nodiscard]] PlaceResult place_lwk(PhysMemory& phys, const hw::NodeTopology& topo,
                                    const MemCostModel& cost, const PlaceRequest& req);

/// Linux mapping: record the fault granule; no physical backing yet.
/// `thp_enabled` models transparent huge pages for anon mappings >= 2 MiB.
[[nodiscard]] PlaceResult place_linux(const hw::NodeTopology& topo,
                                      const MemCostModel& cost, const PlaceRequest& req,
                                      Vma& vma, bool thp_enabled);

struct TouchResult {
  std::uint64_t faults = 0;
  sim::Bytes newly_backed = 0;
  sim::TimeNs cost{0};
};

/// First-touch `bytes` of a demand-paged VMA: allocate physical pages in
/// policy order, charge fault handling + zeroing. `concurrent_faulters` is
/// the number of ranks on the node concurrently inside the fault path.
[[nodiscard]] TouchResult touch(PhysMemory& phys, const hw::NodeTopology& topo,
                                const MemCostModel& cost, Vma& vma, sim::Bytes bytes,
                                int home_quadrant, int concurrent_faulters);

/// Domain order a Linux first-touch walks for the given policy. Returns a
/// reference into the topology's precomputed tables (or the policy's own
/// domain list for Bind/Interleave) — both outlive any placement call.
[[nodiscard]] const std::vector<hw::DomainId>& linux_domain_order(
    const hw::NodeTopology& topo, const MemPolicy& policy, int home_quadrant);

/// Domain order an LWK placement walks (MCDRAM-first spill order). Returns a
/// reference into the topology's precomputed tables.
[[nodiscard]] const std::vector<hw::DomainId>& lwk_domain_order(
    const hw::NodeTopology& topo, int home_quadrant, bool prefer_mcdram);

}  // namespace mkos::mem
