#include "mem/tlb.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace mkos::mem {

sim::Bytes TlbSpec::coverage(PageSize p) const {
  switch (p) {
    case PageSize::k4K: return static_cast<sim::Bytes>(entries_4k) * page_bytes(p);
    case PageSize::k2M: return static_cast<sim::Bytes>(entries_2m) * page_bytes(p);
    case PageSize::k1G: return static_cast<sim::Bytes>(entries_1g) * page_bytes(p);
  }
  return 0;
}

double tlb_miss_ns_per_byte(const TlbSpec& tlb, sim::Bytes bytes, PageSize p) {
  if (bytes == 0) return 0.0;
  const sim::Bytes covered = tlb.coverage(p);
  if (bytes <= covered) return 0.0;
  // Streaming: beyond coverage, each page crossing of the uncovered part
  // misses. Misses per byte = uncovered_fraction / page_size.
  const double uncovered =
      static_cast<double>(bytes - covered) / static_cast<double>(bytes);
  return uncovered * static_cast<double>(tlb.walk.ns()) /
         static_cast<double>(page_bytes(p));
}

double tlb_bandwidth_factor(const TlbSpec& tlb, const Placement& placement,
                            double base_gbps) {
  MKOS_EXPECTS(base_gbps > 0.0);
  const sim::Bytes total = placement.total();
  if (total == 0) return 1.0;
  const double base_ns_per_byte = 1.0 / base_gbps;  // GB/s -> ns/B

  double weighted_miss = 0.0;
  for (const PageSize p : {PageSize::k4K, PageSize::k2M, PageSize::k1G}) {
    const sim::Bytes b = placement.bytes_with_page(p);
    if (b == 0) continue;
    const double frac = static_cast<double>(b) / static_cast<double>(total);
    weighted_miss += frac * tlb_miss_ns_per_byte(tlb, b, p);
  }
  return base_ns_per_byte / (base_ns_per_byte + weighted_miss);
}

}  // namespace mkos::mem
