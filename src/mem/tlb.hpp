#pragma once
// TLB coverage model.
//
// "An implication of contiguous physical memory is better cache
// performance, similar to techniques such as page coloring" — and, more
// directly measurable, better TLB behaviour: a KNL core's second-level TLB
// covers ~1 MiB with 4 KiB pages but ~256 MiB with 2 MiB pages. For a
// streaming working set larger than the covered footprint, every page
// crossing is a miss and pays a page-table walk. This turns a placement's
// page-size mix into an effective-bandwidth derating from first principles
// (the constants below land within a point of the factor measured on real
// KNL between THP-backed and 4 KiB-backed STREAM).

#include "mem/address_space.hpp"
#include "sim/time.hpp"

namespace mkos::mem {

struct TlbSpec {
  int entries_4k = 256;    ///< unified L2 TLB entries usable for 4 KiB pages
  int entries_2m = 128;    ///< entries for 2 MiB pages
  int entries_1g = 16;     ///< entries for 1 GiB pages
  sim::TimeNs walk{65};    ///< page-table walk on a miss (memory-resident PTEs)

  [[nodiscard]] static TlbSpec knl() { return {}; }

  [[nodiscard]] sim::Bytes coverage(PageSize p) const;
};

/// Extra nanoseconds per streamed byte caused by TLB misses for a working
/// set of `bytes` backed at page size `p` (0 when the TLB covers it).
[[nodiscard]] double tlb_miss_ns_per_byte(const TlbSpec& tlb, sim::Bytes bytes,
                                          PageSize p);

/// Effective-bandwidth factor (<= 1) for a placement streamed at
/// `base_gbps`: the placement-weighted miss cost is added to each byte's
/// transfer time. 1 GiB pages always fit the TLB -> factor contribution 1.
[[nodiscard]] double tlb_bandwidth_factor(const TlbSpec& tlb, const Placement& placement,
                                          double base_gbps);

}  // namespace mkos::mem
