#include "obs/ledger.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <utility>

#include "sim/format.hpp"

namespace mkos::obs {

void RunLedger::set_meta(const std::string& key, const std::string& value) {
  meta_.at(key, std::string{}) = value;
}

const std::string* RunLedger::meta(const std::string& key) const {
  return meta_.find(key);
}

void RunLedger::incr(const std::string& name, std::uint64_t by) {
  counters_.at(name, 0) += by;
}

std::uint64_t RunLedger::counter(const std::string& name) const {
  const std::uint64_t* v = counters_.find(name);
  return v == nullptr ? 0 : *v;
}

void RunLedger::set_gauge(const std::string& name, double value) {
  gauges_.at(name, 0.0) = value;
}

double RunLedger::gauge(const std::string& name) const {
  const double* v = gauges_.find(name);
  return v == nullptr ? 0.0 : *v;
}

void RunLedger::observe(const std::string& name, double sample) {
  summaries_.at(name, sim::Summary{}).add(sample);
}

const sim::Summary* RunLedger::summary(const std::string& name) const {
  return summaries_.find(name);
}

sim::Histogram& RunLedger::hist(const std::string& name, double min_value,
                                double max_value, int bins_per_decade) {
  return histograms_.at(name, sim::Histogram{min_value, max_value, bins_per_decade});
}

const sim::Histogram* RunLedger::histogram(const std::string& name) const {
  return histograms_.find(name);
}

void RunLedger::set_host(const std::string& key, const std::string& json_value) {
  host_.at(key, std::string{}) = json_value;
}

void RunLedger::merge(const RunLedger& other) {
  for (const auto& e : other.meta_.entries) {
    if (meta_.find(e.name) == nullptr) set_meta(e.name, e.value);
  }
  for (const auto& e : other.counters_.entries) incr(e.name, e.value);
  for (const auto& e : other.gauges_.entries) set_gauge(e.name, e.value);
  for (const auto& e : other.summaries_.entries) {
    sim::Summary& mine = summaries_.at(e.name, sim::Summary{});
    for (const double s : e.value.samples()) mine.add(s);
  }
  for (const auto& e : other.histograms_.entries) {
    const auto it = histograms_.index.find(e.name);
    if (it == histograms_.index.end()) {
      histograms_.index.emplace(e.name, histograms_.entries.size());
      histograms_.entries.push_back(e);
    } else {
      histograms_.entries[it->second].value.merge(e.value);
    }
  }
  for (const auto& e : other.host_.entries) {
    if (host_.find(e.name) == nullptr) set_host(e.name, e.value);
  }
}

std::string summary_json(const sim::Summary& s) {
  std::string out = "{";
  out += "\"count\": " + std::to_string(s.count());
  if (!s.empty()) {
    out += ", \"min\": " + sim::json_number(s.min());
    out += ", \"max\": " + sim::json_number(s.max());
    out += ", \"mean\": " + sim::json_number(s.mean());
    out += ", \"median\": " + sim::json_number(s.median());
    out += ", \"p95\": " + sim::json_number(s.percentile(95.0));
    out += ", \"stddev\": " + sim::json_number(s.stddev());
  }
  out += "}";
  return out;
}

std::string histogram_json(const sim::Histogram& h) {
  std::string out = "{";
  out += "\"min_value\": " + sim::json_number(h.min_value());
  out += ", \"max_value\": " + sim::json_number(h.max_value());
  out += ", \"total\": " + std::to_string(h.total());
  out += ", \"underflow\": " + std::to_string(h.underflow());
  out += ", \"overflow\": " + std::to_string(h.overflow());
  if (h.total() > 0) {
    out += ", \"p50\": " + sim::json_number(h.quantile(0.5));
    out += ", \"p95\": " + sim::json_number(h.quantile(0.95));
    out += ", \"p99\": " + sim::json_number(h.quantile(0.99));
  }
  out += ", \"bins\": [";
  bool first = true;
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    if (h.bin(i) == 0) continue;  // sparse: empty bins carry no information
    if (!first) out += ", ";
    first = false;
    out += '[';
    out += sim::json_number(h.bin_lower(i));
    out += ", ";
    out += sim::json_number(h.bin_upper(i));
    out += ", ";
    out += std::to_string(h.bin(i));
    out += ']';
  }
  out += "]}";
  return out;
}

namespace {

/// Emit one section as `"name": { "key": value, ... }` with two-space
/// indentation; `render` maps an entry value to a JSON value string.
template <typename Entries, typename Render>
void emit_section(std::string& out, const char* name, const Entries& entries,
                  Render&& render, bool trailing_comma) {
  out += "  ";
  out += sim::json_quote(name);
  out += ": {";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    " + sim::json_quote(entries[i].name) + ": " + render(entries[i].value);
  }
  if (!entries.empty()) out += "\n  ";
  out += "}";
  if (trailing_comma) out += ",";
  out += "\n";
}

}  // namespace

std::string RunLedger::to_json() const {
  std::string out = "{\n";
  out += "  \"schema\": " + sim::json_quote(kSchemaId) + ",\n";
  out += "  \"schema_version\": " + std::to_string(kSchemaVersion) + ",\n";
  emit_section(out, "meta", meta_.entries,
               [](const std::string& v) { return sim::json_quote(v); }, true);
  emit_section(out, "counters", counters_.entries,
               [](std::uint64_t v) { return std::to_string(v); }, true);
  emit_section(out, "gauges", gauges_.entries,
               [](double v) { return sim::json_number(v); }, true);
  emit_section(out, "summaries", summaries_.entries,
               [](const sim::Summary& v) { return summary_json(v); }, true);
  emit_section(out, "histograms", histograms_.entries,
               [](const sim::Histogram& v) { return histogram_json(v); }, true);
  emit_section(out, "host", host_.entries,
               [](const std::string& v) { return v.empty() ? std::string("null") : v; },
               false);
  out += "}\n";
  return out;
}

bool RunLedger::write_json(std::ostream& os) const {
  os << to_json();
  os.flush();
  // good() (not just !fail()): a stream that hit EOF or a write error at any
  // point reports it here, after the flush pushed everything to the sink.
  return os.good();
}

bool RunLedger::write_json(const std::string& path) const {
  // Temp-then-rename: writing in place meant an interrupted bench left a
  // truncated BENCH_*.json that check_bench_json.py reported as malformed
  // rather than absent. rename(2) is atomic within a filesystem, so readers
  // only ever observe the old document or the complete new one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    if (!write_json(out)) {
      out.close();
      (void)std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::string RunLedger::to_csv() const {
  sim::Table t({"section", "name", "value"});
  for (const auto& e : meta_.entries) t.add_row({"meta", e.name, e.value});
  for (const auto& e : counters_.entries) {
    t.add_row({"counter", e.name, std::to_string(e.value)});
  }
  for (const auto& e : gauges_.entries) {
    t.add_row({"gauge", e.name, sim::json_number(e.value)});
  }
  for (const auto& e : summaries_.entries) {
    if (e.value.empty()) continue;
    t.add_row({"summary", e.name + ".median", sim::json_number(e.value.median())});
    t.add_row({"summary", e.name + ".min", sim::json_number(e.value.min())});
    t.add_row({"summary", e.name + ".max", sim::json_number(e.value.max())});
  }
  return t.to_csv();
}

}  // namespace mkos::obs
