#pragma once
// Structured run ledger — the observability spine of the simulator.
//
// Every bench binary and the campaign engine report through a RunLedger:
// named monotonic counters, gauges, sample summaries and log-binned
// histograms, grouped by a `<subsystem>.<metric>` naming convention
// (heap.brk_calls, kernel.ikc_round_trips, runtime.coll_stall_ns, ...).
// A ledger snapshots into a versioned JSON document (schema
// "mkos.run_ledger.v1") or a flat CSV via the hardened core/report layer.
//
// Determinism contract (DESIGN.md §5.1 / §10): everything outside the
// `host` section is a pure function of (app, config fingerprint, nodes,
// seed, reps). Per-task ledgers are merged in positional order with
// commutative-per-name operations — counters add, summaries append samples
// in merge order, histograms add bin-wise — so a serial run and a pooled
// run produce byte-identical JSON. Host-dependent telemetry (wall time,
// thread counts, throughput) goes in the `host` section only, which
// consumers strip before comparing ledgers.
//
// Sections are stored as insertion-ordered vectors with a name index on
// the side; iteration never touches the unordered index, so serialization
// order is deterministic.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/histogram.hpp"
#include "sim/stats.hpp"
#include "sim/thread_safety.hpp"

namespace mkos::sim {
class JsonValue;
}  // namespace mkos::sim

namespace mkos::obs {

/// Bumped whenever the JSON layout changes shape.
inline constexpr int kSchemaVersion = 1;
inline constexpr const char* kSchemaId = "mkos.run_ledger.v1";

/// Serialize one summary / histogram as a JSON value (shared by the ledger
/// and by callers stashing host-side distributions in the host section).
[[nodiscard]] std::string summary_json(const sim::Summary& s);
[[nodiscard]] std::string histogram_json(const sim::Histogram& h);

// Unsynchronized by design: each campaign cell task builds its own
// ledger; the pool-side merge happens after wait_idle(), in grid order.
class MKOS_THREAD_CONFINED("one campaign cell task, merged post-join") RunLedger {
 public:
  // ------------------------------------------------------------------ meta
  /// Identity strings (bench id, paper figure, config fingerprints, units).
  /// Setting an existing key overwrites in place, keeping its position.
  void set_meta(const std::string& key, const std::string& value);
  [[nodiscard]] const std::string* meta(const std::string& key) const;

  // -------------------------------------------------------------- counters
  /// Monotonic 64-bit counters; merge adds. Missing names read as zero.
  void incr(const std::string& name, std::uint64_t by = 1);
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;

  // ---------------------------------------------------------------- gauges
  /// Point-in-time values; merge overwrites ours with the other ledger's
  /// (positional merge order makes "last writer" deterministic).
  void set_gauge(const std::string& name, double value);
  [[nodiscard]] double gauge(const std::string& name) const;

  // ------------------------------------------------------------- summaries
  /// Sample accumulators; merge appends the other's samples in order.
  void observe(const std::string& name, double sample);
  [[nodiscard]] const sim::Summary* summary(const std::string& name) const;

  // ------------------------------------------------------------ histograms
  /// Creates the histogram on first use with the given shape; later calls
  /// with the same name return the existing one (shape arguments ignored).
  sim::Histogram& hist(const std::string& name, double min_value, double max_value,
                       int bins_per_decade = 8);
  [[nodiscard]] const sim::Histogram* histogram(const std::string& name) const;

  // ------------------------------------------------------------------ host
  /// Host-dependent telemetry (wall time, threads, throughput), excluded
  /// from the determinism contract. `json_value` is a pre-serialized JSON
  /// value (use core::json_number / core::json_quote / *_json helpers).
  void set_host(const std::string& key, const std::string& json_value);

  /// Positional merge of a per-task ledger: counters add, gauges overwrite,
  /// summaries append, histograms merge bin-wise (adopting the other's
  /// shape when the name is new), meta/host adopt only missing keys.
  void merge(const RunLedger& other);

  /// Full schema-versioned JSON document (trailing newline included).
  [[nodiscard]] std::string to_json() const;

  /// Serialize to a stream / file, reporting success. A full disk, a closed
  /// pipe or an unwritable path returns false instead of silently producing
  /// a truncated document (callers decide whether that is fatal).
  ///
  /// The path overload is atomic: the document is written to `path + ".tmp"`
  /// and renamed over `path` only once complete, so an interrupted bench
  /// leaves either the previous document intact or the new one whole —
  /// never a truncated file that schema checkers read as malformed.
  bool write_json(std::ostream& os) const;
  bool write_json(const std::string& path) const;

  /// Full-fidelity serialization for the campaign cell store. Unlike
  /// to_json() — a reporting document that aggregates summaries and drops
  /// empty histogram bins — this round-trips the ledger exactly: summaries
  /// keep their raw samples in insertion order, histograms their
  /// constructed shape and raw bin/tail counts, host values their
  /// pre-serialized bytes. restore_storage_json(parse(to_storage_json()))
  /// reproduces a ledger whose to_json() is byte-identical to the source's.
  [[nodiscard]] std::string to_storage_json() const;

  /// Rebuild this ledger from a parsed storage document, replacing any
  /// current contents. Returns false on any shape violation (wrong types,
  /// out-of-range bins, non-integer counters) with a one-line reason in
  /// `*error` (when non-null); the ledger is left empty in that case —
  /// a corrupt store entry must never half-populate a cell.
  bool restore_storage_json(const sim::JsonValue& doc, std::string* error);

  /// Flat CSV (section,name,value) of the deterministic scalar sections.
  [[nodiscard]] std::string to_csv() const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    T value;
  };
  /// Insertion-ordered name/value storage. The unordered index is only
  /// probed by name, never iterated.
  template <typename T>
  struct Section {
    std::vector<Entry<T>> entries;
    std::unordered_map<std::string, std::size_t> index;

    T& at(const std::string& name, T initial) {
      const auto it = index.find(name);
      if (it != index.end()) return entries[it->second].value;
      index.emplace(name, entries.size());
      entries.push_back(Entry<T>{name, std::move(initial)});
      return entries.back().value;
    }
    [[nodiscard]] const T* find(const std::string& name) const {
      const auto it = index.find(name);
      return it == index.end() ? nullptr : &entries[it->second].value;
    }
  };

  Section<std::string> meta_;
  Section<std::uint64_t> counters_;
  Section<double> gauges_;
  Section<sim::Summary> summaries_;
  Section<sim::Histogram> histograms_;
  Section<std::string> host_;
};

}  // namespace mkos::obs
