// Full-fidelity RunLedger (de)serialization for the campaign cell store.
//
// to_json() is a *reporting* document: summaries collapse to aggregate
// statistics and histograms drop empty bins and their construction shape.
// The cell store needs the opposite trade — an exact round-trip — so this
// codec serializes the raw private state (sample vectors in insertion
// order, histogram shapes and dense-indexed counts, host bytes verbatim)
// and rebuilds it under strict validation: a corrupt entry fails loudly
// and leaves the target ledger empty, never half-populated or aborted on.

#include <cmath>
#include <limits>
#include <utility>

#include "obs/ledger.hpp"
#include "sim/format.hpp"
#include "sim/json.hpp"

namespace mkos::obs {

namespace {

/// Largest bin array a restored histogram may allocate. Real shapes are a
/// few hundred bins; the cap keeps a bit-flipped shape field from turning
/// into a multi-gigabyte allocation before validation can reject it.
constexpr double kMaxRestoredBins = 1 << 20;

std::string histogram_storage_json(const sim::Histogram& h) {
  std::string out = "{\"min_value\": " + sim::json_number(h.min_value());
  out += ", \"max_value\": " + sim::json_number(h.max_value());
  out += ", \"bins_per_decade\": " + std::to_string(h.bins_per_decade());
  out += ", \"underflow\": " + std::to_string(h.underflow());
  out += ", \"overflow\": " + std::to_string(h.overflow());
  out += ", \"bins\": [";
  bool first = true;
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    if (h.bin(i) == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += '[' + std::to_string(i) + ", " + std::to_string(h.bin(i)) + ']';
  }
  out += "]}";
  return out;
}

std::string samples_storage_json(const sim::Summary& s) {
  std::string out = "[";
  bool first = true;
  for (const double v : s.samples()) {
    if (!first) out += ", ";
    first = false;
    out += sim::json_number(v);
  }
  out += "]";
  return out;
}

bool codec_fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

/// The storage value for a double: json_number() emits non-finite values
/// as null, so null reads back as quiet NaN (the only non-finite the
/// ledger can carry without distinguishing inf signs — documented loss,
/// and to_json() re-emits null either way, preserving byte identity).
bool read_stored_double(const sim::JsonValue& v, double* out) {
  if (v.is_null()) {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  const auto d = v.as_double();
  if (!d) return false;
  *out = *d;
  return true;
}

}  // namespace

std::string RunLedger::to_storage_json() const {
  const auto section_json = [](const auto& entries, const auto& render) {
    std::string out = "{";
    bool first = true;
    for (const auto& e : entries) {
      if (!first) out += ", ";
      first = false;
      out += sim::json_quote(e.name) + ": " + render(e.value);
    }
    out += "}";
    return out;
  };
  sim::JsonObject doc;
  doc.raw("meta", section_json(meta_.entries, [](const std::string& v) {
            return sim::json_quote(v);
          }));
  doc.raw("counters", section_json(counters_.entries, [](std::uint64_t v) {
            return std::to_string(v);
          }));
  doc.raw("gauges", section_json(gauges_.entries, [](double v) {
            return sim::json_number(v);
          }));
  doc.raw("summaries", section_json(summaries_.entries, [](const sim::Summary& v) {
            return samples_storage_json(v);
          }));
  doc.raw("histograms", section_json(histograms_.entries, [](const sim::Histogram& v) {
            return histogram_storage_json(v);
          }));
  // Host values are pre-serialized JSON; store the bytes as a string so the
  // restore is verbatim rather than a parse/re-print normalization.
  doc.raw("host", section_json(host_.entries, [](const std::string& v) {
            return sim::json_quote(v);
          }));
  return doc.to_string();
}

bool RunLedger::restore_storage_json(const sim::JsonValue& doc, std::string* error) {
  RunLedger restored;
  if (!doc.is_object()) return codec_fail(error, "ledger block is not an object");
  for (const char* section : {"meta", "counters", "gauges", "summaries",
                              "histograms", "host"}) {
    const sim::JsonValue* sec = doc.find(section);
    if (sec == nullptr || !sec->is_object()) {
      return codec_fail(error, std::string("ledger section '") + section +
                                   "' missing or not an object");
    }
  }

  for (const auto& [name, value] : doc.find("meta")->members()) {
    if (!value.is_string()) return codec_fail(error, "meta '" + name + "' not a string");
    restored.set_meta(name, value.as_string());
  }
  for (const auto& [name, value] : doc.find("counters")->members()) {
    const auto v = value.as_u64();
    if (!v) {
      return codec_fail(error, "counter '" + name + "' not a non-negative integer");
    }
    restored.counters_.at(name, 0) = *v;
  }
  for (const auto& [name, value] : doc.find("gauges")->members()) {
    double v = 0.0;
    if (!read_stored_double(value, &v)) {
      return codec_fail(error, "gauge '" + name + "' not a number");
    }
    restored.set_gauge(name, v);
  }
  for (const auto& [name, value] : doc.find("summaries")->members()) {
    if (!value.is_array()) {
      return codec_fail(error, "summary '" + name + "' not a sample array");
    }
    // Touch the entry first: a zero-sample summary must still exist so the
    // restored reporting document lists it exactly like the original.
    sim::Summary& s = restored.summaries_.at(name, sim::Summary{});
    for (const sim::JsonValue& sample : value.items()) {
      double v = 0.0;
      if (!read_stored_double(sample, &v)) {
        return codec_fail(error, "summary '" + name + "' has a non-number sample");
      }
      s.add(v);
    }
  }
  for (const auto& [name, value] : doc.find("histograms")->members()) {
    const auto bad = [&](const char* what) {
      return codec_fail(error, "histogram '" + name + "': " + what);
    };
    if (!value.is_object()) return bad("not an object");
    const sim::JsonValue* min_v = value.find("min_value");
    const sim::JsonValue* max_v = value.find("max_value");
    const sim::JsonValue* bpd_v = value.find("bins_per_decade");
    const sim::JsonValue* under_v = value.find("underflow");
    const sim::JsonValue* over_v = value.find("overflow");
    const sim::JsonValue* bins_v = value.find("bins");
    if (min_v == nullptr || max_v == nullptr || bpd_v == nullptr ||
        under_v == nullptr || over_v == nullptr || bins_v == nullptr ||
        !bins_v->is_array()) {
      return bad("missing shape or bins");
    }
    const auto min_value = min_v->as_double();
    const auto max_value = max_v->as_double();
    const auto bpd = bpd_v->as_i64();
    const auto under = under_v->as_u64();
    const auto over = over_v->as_u64();
    if (!min_value || !max_value || !bpd || !under || !over) {
      return bad("malformed shape field");
    }
    // Validate what the Histogram constructor would otherwise enforce with
    // aborting contracts — corrupt entries must fail softly — plus an
    // allocation cap the constructor does not need.
    if (!std::isfinite(*min_value) || !std::isfinite(*max_value) ||
        *min_value <= 0.0 || *max_value <= *min_value || *bpd < 1) {
      return bad("invalid shape");
    }
    const double bins =
        std::ceil((std::log10(*max_value) - std::log10(*min_value)) *
                  static_cast<double>(*bpd));
    if (!(bins >= 1.0) || bins > kMaxRestoredBins) return bad("implausible bin count");
    sim::Histogram& h = restored.histograms_.at(
        name, sim::Histogram{*min_value, *max_value, static_cast<int>(*bpd)});
    h.add_underflow_raw(*under);
    h.add_overflow_raw(*over);
    for (const sim::JsonValue& bin : bins_v->items()) {
      if (!bin.is_array() || bin.items().size() != 2) return bad("malformed bin");
      const auto index = bin.items()[0].as_u64();
      const auto count = bin.items()[1].as_u64();
      if (!index || !count || *index >= h.bin_count()) return bad("bin out of range");
      h.add_bin_raw(static_cast<std::size_t>(*index), *count);
    }
  }
  for (const auto& [name, value] : doc.find("host")->members()) {
    if (!value.is_string()) return codec_fail(error, "host '" + name + "' not a string");
    restored.set_host(name, value.as_string());
  }

  *this = std::move(restored);
  return true;
}

}  // namespace mkos::obs
