#include "obs/snapshots.hpp"

#include "alloc/model.hpp"
#include "fault/fault.hpp"
#include "kernel/kernel.hpp"
#include "mem/address_space.hpp"
#include "mem/heap.hpp"
#include "runtime/job.hpp"
#include "runtime/simmpi.hpp"

namespace mkos::obs {

void record_heap(RunLedger& ledger, const mem::HeapStats& stats) {
  ledger.incr("heap.brk_calls", stats.calls());
  ledger.incr("heap.grows", stats.grows);
  ledger.incr("heap.shrinks", stats.shrinks);
  ledger.incr("heap.faults", stats.faults);
  ledger.incr("heap.zeroed_bytes", stats.zeroed);
  ledger.incr("heap.cum_growth_bytes", stats.cum_growth);
}

void record_placement(RunLedger& ledger, const mem::Placement& placement,
                      const hw::NodeTopology& topo) {
  ledger.incr("mem.bytes_4k", placement.bytes_with_page(mem::PageSize::k4K));
  ledger.incr("mem.bytes_2m", placement.bytes_with_page(mem::PageSize::k2M));
  ledger.incr("mem.bytes_1g", placement.bytes_with_page(mem::PageSize::k1G));
  ledger.incr("mem.bytes_mcdram", placement.bytes_in_kind(topo, hw::MemKind::kMcdram));
  ledger.incr("mem.bytes_ddr4", placement.bytes_in_kind(topo, hw::MemKind::kDdr4));
}

void record_address_space(RunLedger& ledger, const mem::AddressSpace& as,
                          const hw::NodeTopology& topo) {
  // for_each walks the VMA map in address order — deterministic.
  as.for_each([&](const mem::Vma& vma) {
    record_placement(ledger, vma.placement, topo);
  });
  ledger.incr("mem.faults", as.total_faults());
  ledger.incr("mem.vmas", as.vma_count());
}

void record_kernel(RunLedger& ledger, const kernel::Kernel& k) {
  ledger.incr("kernel.syscalls_local", k.local_call_count());
  ledger.incr("kernel.syscalls_offloaded", k.offloaded_call_count());
  ledger.incr("kernel.ikc_round_trips", k.ikc_round_trips());
  // Noise detours by source: the model's per-source rates (what each
  // source steals is sampled downstream and lands in runtime.noise_wait_ns).
  for (const kernel::NoiseComponent& c : k.noise().components()) {
    ledger.set_gauge("kernel.noise." + c.label + ".rate_hz", c.rate_hz);
  }
}

void record_world(RunLedger& ledger, const runtime::MpiWorld& world) {
  ledger.incr("runtime.allreduces", world.allreduce_count());
  ledger.incr("runtime.collective_stages", world.collective_stage_count());
  const runtime::MpiWorld::PhaseBreakdown b = world.breakdown();
  ledger.incr("runtime.compute_ns", static_cast<std::uint64_t>(b.compute.ns()));
  ledger.incr("runtime.noise_wait_ns", static_cast<std::uint64_t>(b.noise.ns()));
  ledger.incr("runtime.comm_ns", static_cast<std::uint64_t>(b.comm.ns()));
  ledger.incr("runtime.coll_stall_ns",
              static_cast<std::uint64_t>(world.total_collective_stall().ns()));
  // Per-sync noise detour distribution, when the world traced its syncs.
  if (!world.trace().empty()) {
    sim::Histogram& h = ledger.hist("runtime.sync_noise_us", 1e-2, 1e6, 4);
    for (const runtime::MpiWorld::SyncEvent& ev : world.trace()) {
      if (ev.noise.ns() > 0) h.add(ev.noise.us());
    }
  }
  // Sampling-engine telemetry: fast-path hits, analytic-vs-exact draw split,
  // cost-cache effectiveness. Deterministic per seed (no wall-clock inputs),
  // so these live alongside the runtime counters, not in the host block.
  const runtime::MpiWorld::EngineCounters& e = world.engine_counters();
  ledger.incr("engine.heap_fast_lanes", e.heap_fast_lanes);
  ledger.incr("engine.heap_slow_lanes", e.heap_slow_lanes);
  ledger.incr("engine.compute_uniform_fast", e.compute_uniform_fast);
  ledger.incr("engine.compute_lane_loops", e.compute_lane_loops);
  ledger.incr("engine.coll_cache_hits", e.coll_cache_hits);
  ledger.incr("engine.coll_cache_misses", e.coll_cache_misses);
  ledger.incr("engine.msg_cache_hits", e.msg_cache_hits);
  ledger.incr("engine.msg_cache_misses", e.msg_cache_misses);
  const kernel::SampleCounters& n = world.noise_counters();
  ledger.incr("engine.noise_analytic_sums", n.analytic_sums);
  ledger.incr("engine.noise_exact_events", n.exact_events);
  ledger.incr("engine.noise_analytic_maxima", n.analytic_maxima);
  ledger.incr("engine.noise_gumbel_draws", n.gumbel_draws);
}

void record_job(RunLedger& ledger, runtime::Job& job) {
  record_kernel(ledger, job.kernel());
  const hw::NodeTopology& topo = job.kernel().topo();
  // Aggregate across lanes before touching the ledger: incr() is additive
  // and every lane emits the same fixed name set, so one bulk update per
  // name produces byte-identical JSON to the per-lane loop while paying
  // each name lookup once per job instead of once per lane (and per VMA).
  mem::HeapStats heap_sum;
  bool any_heap = false;
  sim::Bytes by_page[3] = {0, 0, 0};
  sim::Bytes mcdram = 0;
  sim::Bytes ddr4 = 0;
  std::uint64_t faults = 0;
  std::uint64_t vmas = 0;
  for (int i = 0; i < job.lane_count(); ++i) {
    const kernel::Process& p = job.lane(i);
    if (p.heap() != nullptr) {
      const mem::HeapStats& s = p.heap()->stats();
      heap_sum.queries += s.queries;
      heap_sum.grows += s.grows;
      heap_sum.shrinks += s.shrinks;
      heap_sum.cum_growth += s.cum_growth;
      heap_sum.faults += s.faults;
      heap_sum.zeroed += s.zeroed;
      any_heap = true;
    }
    const mem::AddressSpace& as = p.address_space();
    as.for_each([&](const mem::Vma& vma) {
      const mem::Placement& pl = vma.placement;
      by_page[0] += pl.bytes_with_page(mem::PageSize::k4K);
      by_page[1] += pl.bytes_with_page(mem::PageSize::k2M);
      by_page[2] += pl.bytes_with_page(mem::PageSize::k1G);
      mcdram += pl.bytes_in_kind(topo, hw::MemKind::kMcdram);
      ddr4 += pl.bytes_in_kind(topo, hw::MemKind::kDdr4);
    });
    faults += as.total_faults();
    vmas += as.vma_count();
  }
  if (any_heap) record_heap(ledger, heap_sum);
  ledger.incr("mem.bytes_4k", by_page[0]);
  ledger.incr("mem.bytes_2m", by_page[1]);
  ledger.incr("mem.bytes_1g", by_page[2]);
  ledger.incr("mem.bytes_mcdram", mcdram);
  ledger.incr("mem.bytes_ddr4", ddr4);
  ledger.incr("mem.faults", faults);
  ledger.incr("mem.vmas", vmas);
}

void record_faults(RunLedger& ledger, const fault::Counters& c) {
  ledger.incr("fault.injected", c.injected);
  ledger.incr("fault.detected", c.detected);
  ledger.incr("fault.retried", c.retried);
  ledger.incr("fault.recovered", c.recovered);
  ledger.incr("fault.node_failures", c.node_failures);
  ledger.incr("fault.linux_crashes", c.linux_crashes);
  ledger.incr("fault.stragglers", c.stragglers);
  ledger.incr("fault.storms", c.storms);
  ledger.incr("fault.ikc_dropped", c.ikc_dropped);
  ledger.incr("fault.ikc_delays", c.ikc_delays);
  ledger.incr("fault.mcdram_denied", c.mcdram_denied);
  ledger.incr("fault.checkpoints", c.checkpoints);
  ledger.incr("fault.restarts", c.restarts);
  ledger.incr("fault.lost_work_ns", c.lost_work_ns);
  ledger.incr("fault.checkpoint_ns", c.checkpoint_ns);
  ledger.incr("fault.backoff_wait_ns", c.backoff_wait_ns);
  ledger.incr("fault.redistributed_ns", c.redistributed_ns);
  ledger.incr("fault.wait_ns", c.wait_ns);
}

void record_alloc(RunLedger& ledger, const alloc::AllocCounters& c) {
  ledger.incr("alloc.magazine_hits", c.magazine_hits);
  ledger.incr("alloc.magazine_misses", c.magazine_misses);
  ledger.incr("alloc.depot_loads", c.depot_loads);
  ledger.incr("alloc.depot_unloads", c.depot_unloads);
  ledger.incr("alloc.depot_lock_ns", c.depot_lock_ns);
  ledger.incr("alloc.zone_lock_ns", c.zone_lock_ns);
  ledger.incr("alloc.slab_creates", c.slab_creates);
  ledger.incr("alloc.slab_frees", c.slab_frees);
  ledger.incr("alloc.resizes_up", c.resizes_up);
  ledger.incr("alloc.resizes_down", c.resizes_down);
  ledger.incr("alloc.vmem_allocs", c.vmem_allocs);
  ledger.incr("alloc.vmem_frees", c.vmem_frees);
  ledger.incr("alloc.vmem_qcache_hits", c.vmem_qcache_hits);
  ledger.incr("alloc.vmem_imports", c.vmem_imports);
  ledger.incr("alloc.vmem_import_bytes", c.vmem_import_bytes);
  ledger.incr("alloc.vmem_import_fails", c.vmem_import_fails);
  ledger.incr("alloc.refill_bytes", c.refill_bytes);
  ledger.incr("alloc.reclaims", c.reclaims);
  ledger.incr("alloc.reclaimed_slabs", c.reclaimed_slabs);
}

}  // namespace mkos::obs
