#pragma once
// Subsystem snapshots into a RunLedger.
//
// Each helper reads one subsystem's statistics and records them under the
// ledger naming convention (`<subsystem>.<metric>`). Helpers are pure
// readers: they never mutate the snapshotted object, and every value they
// record is deterministic (a function of the simulation inputs), so the
// results respect the ledger's determinism contract. Counters accumulate
// across calls — snapshotting the same kernel twice doubles its counts —
// so call each helper exactly once per scope being recorded.

#include "obs/ledger.hpp"

namespace mkos::hw {
class NodeTopology;
}  // namespace mkos::hw

namespace mkos::mem {
struct HeapStats;
class Placement;
class AddressSpace;
}  // namespace mkos::mem

namespace mkos::kernel {
class Kernel;
}  // namespace mkos::kernel

namespace mkos::runtime {
class MpiWorld;
class Job;
}  // namespace mkos::runtime

namespace mkos::fault {
struct Counters;
}  // namespace mkos::fault

namespace mkos::alloc {
struct AllocCounters;
}  // namespace mkos::alloc

namespace mkos::obs {

/// heap.* counters: brk traffic, faults, zeroing work.
void record_heap(RunLedger& ledger, const mem::HeapStats& stats);

/// mem.* counters: resident bytes by page size and by memory kind.
void record_placement(RunLedger& ledger, const mem::Placement& placement,
                      const hw::NodeTopology& topo);

/// mem.* counters over every VMA of an address space (page-size mix,
/// MCDRAM vs DDR4 split, demand faults).
void record_address_space(RunLedger& ledger, const mem::AddressSpace& as,
                          const hw::NodeTopology& topo);

/// kernel.* counters (local/offloaded calls, IKC round trips) and the
/// noise model's per-source rates as gauges (kernel.noise.<label>.rate_hz).
void record_kernel(RunLedger& ledger, const kernel::Kernel& k);

/// runtime.* counters: collectives, stages, phase breakdown (ns), stalls.
void record_world(RunLedger& ledger, const runtime::MpiWorld& world);

/// Whole-job snapshot: kernel + every lane's heap and address space, in
/// lane order (positional, hence deterministic).
void record_job(RunLedger& ledger, runtime::Job& job);

/// fault.* counters: injected/recovered event tallies and the time the run
/// absorbed for faults, recovery and checkpoint cadence. Only called when a
/// resilience spec is enabled — fault-free ledgers carry no fault section.
void record_faults(RunLedger& ledger, const fault::Counters& c);

/// alloc.* counters: magazine/depot/slab traffic, vmem activity and refill
/// bytes of the kernel-allocator model. Only called when an AllocSpec is
/// enabled — model-free ledgers carry no alloc section.
void record_alloc(RunLedger& ledger, const alloc::AllocCounters& c);

}  // namespace mkos::obs
