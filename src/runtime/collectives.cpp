#include "runtime/collectives.hpp"

#include <algorithm>
#include <cmath>

#include "sim/contracts.hpp"

namespace mkos::runtime {

namespace {

int ceil_log2(int n) {
  int stages = 0;
  int reach = 1;
  while (reach < n) {
    reach *= 2;
    ++stages;
  }
  return stages;
}

/// Inter-node message cost: wire time at the derated bandwidth plus the
/// kernel involvement tax.
sim::TimeNs msg_cost(sim::Bytes bytes, const hw::NetworkModel& net,
                     const CollectiveCosts& costs, int hops) {
  sim::TimeNs t = net.wire_time(bytes, hops).scaled(1.0 / costs.bandwidth_factor);
  return t + costs.kernel_overhead_per_msg;
}

}  // namespace

std::string_view to_string(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::kRecursiveDoubling: return "recursive-doubling";
    case AllreduceAlgo::kRabenseifner: return "rabenseifner";
    case AllreduceAlgo::kRing: return "ring";
    case AllreduceAlgo::kReduceBroadcast: return "reduce+bcast";
    case AllreduceAlgo::kAuto: return "auto";
  }
  return "?";
}

int allreduce_stages(AllreduceAlgo a, const CollectiveShape& shape) {
  const int n = std::max(1, shape.nodes);
  switch (a) {
    case AllreduceAlgo::kRecursiveDoubling:
      return ceil_log2(n);
    case AllreduceAlgo::kRabenseifner:
      return 2 * ceil_log2(n);
    case AllreduceAlgo::kRing:
      return 2 * (n - 1);
    case AllreduceAlgo::kReduceBroadcast:
      return 2 * ceil_log2(n);
    case AllreduceAlgo::kAuto:
      return allreduce_stages(allreduce_pick(shape), shape);
  }
  return ceil_log2(n);
}

AllreduceAlgo allreduce_pick(const CollectiveShape& shape) {
  // Production-MPI-style switch points: latency-bound small messages use
  // recursive doubling; mid-size payloads Rabenseifner; very large payloads
  // on few nodes go ring.
  if (shape.bytes <= 4 * sim::KiB) return AllreduceAlgo::kRecursiveDoubling;
  if (shape.bytes >= 4 * sim::MiB && shape.nodes <= 64) return AllreduceAlgo::kRing;
  return AllreduceAlgo::kRabenseifner;
}

sim::TimeNs allreduce_base_cost(AllreduceAlgo a, const CollectiveShape& shape,
                                const hw::NetworkModel& net,
                                const CollectiveCosts& costs) {
  MKOS_EXPECTS(shape.nodes >= 1 && shape.ranks_per_node >= 1);
  if (a == AllreduceAlgo::kAuto) a = allreduce_pick(shape);

  // Intra-node combine first (shared memory tree over the ranks).
  const int intra_stages = ceil_log2(shape.ranks_per_node);
  sim::TimeNs total = (costs.intra_stage + costs.software_stage) * intra_stages;

  if (shape.nodes <= 1) return total;
  const int hops = net.hop_count(0, shape.nodes / 2, shape.nodes);
  const int n = shape.nodes;

  switch (a) {
    case AllreduceAlgo::kRecursiveDoubling: {
      const int stages = ceil_log2(n);
      total += (msg_cost(shape.bytes, net, costs, hops) + costs.software_stage) * stages;
      break;
    }
    case AllreduceAlgo::kRabenseifner: {
      // Reduce-scatter halves the payload per stage, allgather doubles it:
      // total payload moved ~= 2 * bytes * (n-1)/n.
      const int stages = ceil_log2(n);
      sim::Bytes chunk = shape.bytes;
      for (int s = 0; s < stages; ++s) {
        chunk = std::max<sim::Bytes>(chunk / 2, 1);
        total += msg_cost(chunk, net, costs, hops) + costs.software_stage;
      }
      chunk = std::max<sim::Bytes>(shape.bytes >> std::min(stages, 30), 1);
      for (int s = 0; s < stages; ++s) {
        total += msg_cost(chunk, net, costs, hops) + costs.software_stage;
        chunk = std::min<sim::Bytes>(chunk * 2, shape.bytes);
      }
      break;
    }
    case AllreduceAlgo::kRing: {
      const sim::Bytes chunk = std::max<sim::Bytes>(shape.bytes / static_cast<sim::Bytes>(n), 1);
      total += (msg_cost(chunk, net, costs, 1) + costs.software_stage) * (2 * (n - 1));
      break;
    }
    case AllreduceAlgo::kReduceBroadcast: {
      const int stages = ceil_log2(n);
      // Full payload through both trees; the root serializes fan-in.
      total += (msg_cost(shape.bytes, net, costs, hops) + costs.software_stage) *
               (2 * stages);
      break;
    }
    case AllreduceAlgo::kAuto:
      break;  // resolved above
  }
  return total;
}

}  // namespace mkos::runtime
