#pragma once
// Collective-algorithm cost models.
//
// Real MPI implementations switch allreduce algorithms by message size and
// communicator shape; the choice interacts with OS noise (more stages =
// more synchronization points = more exposure) and with kernel-involved
// fabrics (more messages = more offloaded device calls). Modeling the
// algorithms separately lets the ablation benches ask questions the paper's
// discussion raises (MiniFE "is sensitive to the performance of MPI
// collective operations") quantitatively.
//
// Cost conventions follow the classic LogGP-style analyses (Thakur et al.):
//   recursive doubling : ceil(log2 P) stages, full payload per stage
//   Rabenseifner       : reduce-scatter + allgather, 2*(P-1)/P of the
//                        payload total, 2*ceil(log2 P) stages
//   ring               : 2*(P-1) steps of payload/P — bandwidth optimal,
//                        latency hostile
//   reduce + broadcast : two trees, root bottleneck on the payload

#include <string_view>

#include "hw/network.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"

namespace mkos::runtime {

enum class AllreduceAlgo : std::uint8_t {
  kRecursiveDoubling,
  kRabenseifner,
  kRing,
  kReduceBroadcast,
  kAuto,  ///< size-based switch, like production MPI
};

[[nodiscard]] std::string_view to_string(AllreduceAlgo a);

struct CollectiveShape {
  int nodes = 1;
  int ranks_per_node = 1;
  sim::Bytes bytes = 8;

  [[nodiscard]] int world() const { return nodes * ranks_per_node; }
};

struct CollectiveCosts {
  sim::TimeNs intra_stage{600};     ///< shared-memory combine step
  sim::TimeNs software_stage{900};  ///< per-stage software overhead
  /// Extra kernel cost per inter-node message (device-file syscalls,
  /// scaled by the fabric's kernel_involved_ops), and the send bandwidth
  /// derating of the kernel under test.
  sim::TimeNs kernel_overhead_per_msg{0};
  double bandwidth_factor = 1.0;
};

/// Number of synchronization stages the algorithm takes inter-node
/// (exposure points for noise coupling).
[[nodiscard]] int allreduce_stages(AllreduceAlgo a, const CollectiveShape& shape);

/// Algorithm the kAuto policy picks for this shape.
[[nodiscard]] AllreduceAlgo allreduce_pick(const CollectiveShape& shape);

/// Noise-free base cost of the allreduce on the given fabric.
[[nodiscard]] sim::TimeNs allreduce_base_cost(AllreduceAlgo a,
                                              const CollectiveShape& shape,
                                              const hw::NetworkModel& net,
                                              const CollectiveCosts& costs);

}  // namespace mkos::runtime
