#include "runtime/job.hpp"

#include <algorithm>

#include "mem/tlb.hpp"

#include "sim/contracts.hpp"

namespace mkos::runtime {

Job::Job(const Machine& machine, JobSpec spec, std::uint64_t seed)
    : machine_(machine), spec_(spec) {
  MKOS_EXPECTS(spec.nodes >= 1);
  MKOS_EXPECTS(spec.ranks_per_node >= 1);
  MKOS_EXPECTS(spec.threads_per_rank >= 1);
  MKOS_EXPECTS(spec.nodes <= machine.cluster.node_count());

  node_ = std::make_unique<kernel::Node>(machine.cluster.node(), machine.os, seed);

  const int quadrants = node_->topo().quadrant_count();
  lanes_.reserve(static_cast<std::size_t>(spec.ranks_per_node));
  for (int i = 0; i < spec.ranks_per_node; ++i) {
    // Block binding: consecutive ranks fill a quadrant before moving on,
    // matching how MPI_PROC_BIND-style launches lay ranks out on SNC-4.
    const int quadrant = i / std::max(1, spec.ranks_per_node / quadrants) % quadrants;
    kernel::Process& p = node_->launch_rank(quadrant, spec.ranks_per_node);
    for (int t = 0; t < spec.threads_per_rank; ++t) {
      p.add_thread(static_cast<hw::CoreId>(i));
    }
    lanes_.push_back(&p);
  }
}

kernel::Process& Job::lane(int i) {
  MKOS_EXPECTS(i >= 0 && i < lane_count());
  return *lanes_[static_cast<std::size_t>(i)];
}

double Job::lane_fraction_in(int i, hw::MemKind kind) const {
  MKOS_EXPECTS(i >= 0 && i < lane_count());
  const kernel::Process& p = *lanes_[static_cast<std::size_t>(i)];
  double frac = p.address_space().resident_fraction_in_kind(node_->topo(), kind);
  // Include the heap engine's own placement (LwkHeap tracks it separately).
  if (const auto* lwk = dynamic_cast<const mem::LwkHeap*>(p.heap())) {
    const sim::Bytes as_res = p.address_space().resident_bytes();
    const sim::Bytes heap_res = lwk->placement().total();
    if (as_res + heap_res > 0) {
      const sim::Bytes in_kind = p.address_space().resident_in_kind(node_->topo(), kind) +
                                 lwk->placement().bytes_in_kind(node_->topo(), kind);
      frac = static_cast<double>(in_kind) / static_cast<double>(as_res + heap_res);
    }
  }
  return frac;
}

double Job::lane_effective_gbps(int i) const {
  MKOS_EXPECTS(i >= 0 && i < lane_count());
  const kernel::Process& p = *lanes_[static_cast<std::size_t>(i)];
  const auto& topo = node_->topo();

  // Communication buffers (shm) are excluded: the roofline streams the
  // application's working set, not the MPI segment.
  sim::Bytes res = 0;
  sim::Bytes in_mcdram = 0;
  sim::Bytes in_4k = 0;
  sim::Bytes in_1g = 0;
  p.address_space().for_each([&](const mem::Vma& v) {
    if (v.kind == mem::VmaKind::kShm) return;
    res += v.backed();
    in_mcdram += v.placement.bytes_in_kind(topo, hw::MemKind::kMcdram);
    in_4k += v.placement.bytes_with_page(mem::PageSize::k4K);
    in_1g += v.placement.bytes_with_page(mem::PageSize::k1G);
  });
  const mem::Placement* hp =
      p.heap() != nullptr ? p.heap()->placement_or_null() : nullptr;
  if (hp != nullptr) {
    res += hp->total();
    in_mcdram += hp->bytes_in_kind(topo, hw::MemKind::kMcdram);
    in_4k += hp->bytes_with_page(mem::PageSize::k4K);
  }
  if (res == 0) {
    // Nothing resident yet: assume the DDR4 rate.
    return topo.total_bandwidth_gbps(hw::MemKind::kDdr4) / spec_.ranks_per_node;
  }

  const double f_mcdram = static_cast<double>(in_mcdram) / static_cast<double>(res);
  const double bw_mcdram = topo.total_bandwidth_gbps(hw::MemKind::kMcdram);
  const double bw_ddr = topo.total_bandwidth_gbps(hw::MemKind::kDdr4);

  // Harmonic blend: time per byte is the placement-weighted sum of the
  // per-kind costs, each kind's node bandwidth shared across all ranks.
  const double ranks = static_cast<double>(spec_.ranks_per_node);
  const double t_per_byte =
      f_mcdram * (ranks / bw_mcdram) + (1.0 - f_mcdram) * (ranks / bw_ddr);
  double gbps = 1.0 / t_per_byte;

  // Page-granularity factor from the TLB-coverage model: 4 KiB-backed data
  // pays a page-table walk per streamed page once the working set exceeds
  // the TLB reach; 2 MiB/1 GiB mappings are covered (mem/tlb.hpp).
  mem::Placement mix;
  mix.add(0, mem::PageSize::k4K, in_4k);
  mix.add(0, mem::PageSize::k1G, in_1g);
  mix.add(0, mem::PageSize::k2M, res - in_4k - in_1g);
  gbps *= mem::tlb_bandwidth_factor(mem::TlbSpec::knl(), mix, gbps);
  return gbps;
}

double Job::min_effective_gbps() const {
  double worst = lane_effective_gbps(0);
  for (int i = 1; i < lane_count(); ++i) {
    worst = std::min(worst, lane_effective_gbps(i));
  }
  return worst;
}

}  // namespace mkos::runtime
