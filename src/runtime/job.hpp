#pragma once
// Job launch: a parallel application instance on a machine.
//
// All nodes of the machine are identical and all ranks with the same
// node-local index behave identically with respect to memory placement, so
// the Job simulates one *representative node* in full (real kernel, real
// physical allocator, one process per local rank) and scales the per-lane
// results across the cluster. Per-rank divergence at scale — OS noise —
// is handled statistically by the MpiWorld executor on top.

#include <memory>
#include <vector>

#include "hw/cluster.hpp"
#include "kernel/node.hpp"

namespace mkos::runtime {

struct JobSpec {
  int nodes = 1;
  int ranks_per_node = 64;
  int threads_per_rank = 1;

  [[nodiscard]] int world_size() const { return nodes * ranks_per_node; }
  [[nodiscard]] int app_threads_per_node() const {
    return ranks_per_node * threads_per_rank;
  }
};

/// A machine is hardware plus the OS deployment choice.
struct Machine {
  hw::Cluster cluster;
  kernel::NodeOsConfig os;
};

class Job {
 public:
  /// Boot the representative node and launch `ranks_per_node` processes on
  /// it, bound round-robin across quadrants (NUMA-aware binding, as both
  /// LWKs and the paper's Linux runs do).
  Job(const Machine& machine, JobSpec spec, std::uint64_t seed);

  [[nodiscard]] const JobSpec& spec() const { return spec_; }
  [[nodiscard]] const Machine& machine() const { return machine_; }
  [[nodiscard]] int world_size() const { return spec_.world_size(); }

  [[nodiscard]] kernel::Node& node() { return *node_; }
  [[nodiscard]] kernel::Kernel& kernel() { return node_->app_kernel(); }
  [[nodiscard]] const kernel::Kernel& kernel() const { return node_->app_kernel(); }

  /// Node-local rank processes ("lanes"). lane(i) is the process every
  /// cluster rank with node-local index i is modeled by.
  [[nodiscard]] int lane_count() const { return static_cast<int>(lanes_.size()); }
  [[nodiscard]] kernel::Process& lane(int i);

  /// Aggregate per-lane placement: fraction of resident bytes in `kind`.
  [[nodiscard]] double lane_fraction_in(int i, hw::MemKind kind) const;

  /// Effective per-rank stream bandwidth (GB/s) for lane i, from its actual
  /// MCDRAM/DDR4 placement, with node bandwidth shared across ranks and a
  /// TLB/contiguity factor from the page-size mix ("An implication of
  /// contiguous physical memory is better cache performance").
  [[nodiscard]] double lane_effective_gbps(int i) const;

  /// Worst (slowest) lane's effective bandwidth — the node's critical rank.
  [[nodiscard]] double min_effective_gbps() const;

 private:
  const Machine& machine_;
  JobSpec spec_;
  std::unique_ptr<kernel::Node> node_;
  std::vector<kernel::Process*> lanes_;
};

}  // namespace mkos::runtime
