#include "runtime/noise_extremes.hpp"

#include <algorithm>
#include <cmath>

#include "sim/contracts.hpp"

namespace mkos::runtime {

namespace {
constexpr std::uint64_t kMomentSamples = 8192;
constexpr double kRareEventThreshold = 2048.0;  ///< expected events across job
}  // namespace

double NoiseExtremes::draw_duration(const kernel::NoiseComponent& c, sim::Rng& rng) {
  double d;
  switch (c.dist) {
    case kernel::NoiseComponent::Dist::kFixed:
      d = static_cast<double>(c.duration.ns());
      break;
    case kernel::NoiseComponent::Dist::kExponential:
      d = rng.exponential(static_cast<double>(c.duration.ns()));
      break;
    case kernel::NoiseComponent::Dist::kPareto:
      d = rng.pareto(static_cast<double>(c.duration.ns()), c.pareto_alpha);
      break;
    default:
      d = 0.0;
  }
  if (c.cap.ns() > 0) d = std::min(d, static_cast<double>(c.cap.ns()));
  return d;
}

NoiseExtremes::NoiseExtremes(kernel::NoiseModel model) : model_(std::move(model)) {
  moments_.reserve(model_.components().size());
  sim::Rng rng{0x9d0e5eedcafef00dULL};  // fixed: moments are model constants
  for (const auto& c : model_.components()) {
    double sum = 0.0;
    double sum2 = 0.0;
    if (c.dist == kernel::NoiseComponent::Dist::kFixed) {
      sum = static_cast<double>(c.duration.ns()) * kMomentSamples;
      sum2 = static_cast<double>(c.duration.ns()) * static_cast<double>(c.duration.ns()) *
             kMomentSamples;
    } else {
      for (std::uint64_t i = 0; i < kMomentSamples; ++i) {
        const double d = draw_duration(c, rng);
        sum += d;
        sum2 += d * d;
      }
    }
    moments_.push_back(Moments{c.rate_hz, sum / kMomentSamples, sum2 / kMomentSamples});
  }
}

double NoiseExtremes::mean_fraction() const {
  double f = 0.0;
  for (const auto& m : moments_) f += m.rate_hz * m.mean_ns * 1e-9;
  return f;
}

double NoiseExtremes::total_rate_hz() const {
  double r = 0.0;
  for (const auto& m : moments_) r += m.rate_hz;
  return r;
}

double NoiseExtremes::mean_duration_s() const {
  const double r = total_rate_hz();
  if (r <= 0.0) return 0.0;
  double weighted = 0.0;
  for (const auto& m : moments_) weighted += m.rate_hz * m.mean_ns;
  return weighted / r * 1e-9;
}

sim::TimeNs NoiseExtremes::max_cap() const {
  sim::TimeNs cap{0};
  for (const auto& c : model_.components()) {
    if (c.cap.ns() == 0) return sim::TimeNs{0};
    cap = std::max(cap, c.cap);
  }
  return cap;
}

NoiseWindow NoiseExtremes::sample(sim::TimeNs span, std::uint64_t cores,
                                  sim::Rng& rng) const {
  MKOS_EXPECTS(span >= sim::TimeNs{0});
  MKOS_EXPECTS(cores >= 1);
  if (span.ns() == 0) return {};

  const double span_s = span.sec();
  const auto& comps = model_.components();

  // Pass 1: per-core expectations.
  std::vector<double> comp_means(comps.size());
  double mean_total = 0.0;
  for (std::size_t ci = 0; ci < comps.size(); ++ci) {
    comp_means[ci] = moments_[ci].rate_hz * span_s * moments_[ci].mean_ns;
    mean_total += comp_means[ci];
  }

  // Pass 2: maxima.
  double max_total = 0.0;
  for (std::size_t ci = 0; ci < comps.size(); ++ci) {
    const auto& c = comps[ci];
    const auto& m = moments_[ci];
    const double lambda_core = m.rate_hz * span_s;       // events per core
    const double lambda_total = lambda_core * static_cast<double>(cores);
    const double comp_mean = comp_means[ci];

    double comp_max;
    if (lambda_total <= kRareEventThreshold) {
      // Rare: enumerate the events that actually happen across the job.
      const std::uint64_t n = rng.poisson(lambda_total);
      double largest = 0.0;
      for (std::uint64_t i = 0; i < n; ++i) {
        largest = std::max(largest, draw_duration(c, rng));
      }
      comp_max = largest;
    } else {
      // Frequent: per-core sum ~ Normal(mu, sigma^2); Gumbel-located max.
      const double mu = comp_mean;
      const double var = lambda_core * m.m2_ns2;
      const double sigma = std::sqrt(std::max(var, 0.0));
      const double ln_c = std::log(static_cast<double>(cores));
      const double a = std::sqrt(2.0 * ln_c);
      double u = rng.next_double();
      if (u <= 0.0) u = 0x1.0p-53;
      if (u >= 1.0) u = 1.0 - 0x1.0p-53;
      const double gumbel = -std::log(-std::log(u));
      comp_max = mu + sigma * (a + (gumbel - (std::log(ln_c) + std::log(12.566370614)) / 2.0 / a));
      comp_max = std::max(comp_max, mu);
    }
    // Combining components: the slowest core for one component very likely
    // carries only the mean of the others.
    max_total = std::max(max_total, comp_max + (mean_total - comp_mean));
  }
  max_total = std::max(max_total, mean_total);

  return NoiseWindow{sim::from_double_ns(mean_total), sim::from_double_ns(max_total)};
}

}  // namespace mkos::runtime
