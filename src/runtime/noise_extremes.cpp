#include "runtime/noise_extremes.hpp"

#include <algorithm>
#include <cmath>

#include "sim/contracts.hpp"

namespace mkos::runtime {

namespace {
/// Below this expected per-core event count the per-core stolen sums are
/// nowhere near normal (most cores see zero events), so the Gumbel-located
/// normal maximum would badly underestimate the true max; the exact
/// event-maximum draw is used instead. Now that the maximum of n draws is a
/// single inverse-CDF evaluation, the exact path is O(1) at any event count
/// — the old cap on total events across the job (it priced an O(n) loop) is
/// kept only as a lower bound that preserves its behaviour for small jobs.
constexpr double kSparsePerCore = 1.0;           ///< expected events per core
constexpr double kRareEventThreshold = 2048.0;   ///< expected events across job
}  // namespace

NoiseExtremes::NoiseExtremes(kernel::NoiseModel model) : model_(std::move(model)) {
  moments_.reserve(model_.components().size());
  for (const auto& c : model_.components()) {
    const kernel::ComponentMoments m = kernel::component_moments(c);
    moments_.push_back(Moments{c.rate_hz, m.m1_ns, m.m2_ns2});
    rate_mean_sum_ += c.rate_hz * m.m1_ns;
  }
}

double NoiseExtremes::mean_fraction() const { return rate_mean_sum_ * 1e-9; }

double NoiseExtremes::total_rate_hz() const {
  double r = 0.0;
  for (const auto& m : moments_) r += m.rate_hz;
  return r;
}

double NoiseExtremes::mean_duration_s() const {
  const double r = total_rate_hz();
  if (r <= 0.0) return 0.0;
  return rate_mean_sum_ / r * 1e-9;
}

sim::TimeNs NoiseExtremes::max_cap() const {
  sim::TimeNs cap{0};
  for (const auto& c : model_.components()) {
    if (c.cap.ns() == 0) return sim::TimeNs{0};
    cap = std::max(cap, c.cap);
  }
  return cap;
}

NoiseWindow NoiseExtremes::sample(sim::TimeNs span, std::uint64_t cores,
                                  sim::Rng& rng,
                                  kernel::SampleCounters* counters) const {
  MKOS_EXPECTS(span >= sim::TimeNs{0});
  MKOS_EXPECTS(cores >= 1);
  if (span.ns() == 0) return {};

  const double span_s = span.sec();
  const auto& comps = model_.components();
  const double mean_total = rate_mean_sum_ * span_s;

  double max_total = 0.0;
  for (std::size_t ci = 0; ci < comps.size(); ++ci) {
    const auto& c = comps[ci];
    const auto& m = moments_[ci];
    const double lambda_core = m.rate_hz * span_s;       // events per core
    const double lambda_total = lambda_core * static_cast<double>(cores);
    const double comp_mean = lambda_core * m.mean_ns;

    double comp_max;
    if (lambda_core <= kSparsePerCore || lambda_total <= kRareEventThreshold) {
      // Sparse: almost every core sees 0 or 1 events, so the maximum over
      // cores is the maximum over the events themselves. Count the events
      // that actually happen across the job, then draw their maximum
      // directly (inverse CDF at U^(1/n)).
      const std::uint64_t n = rng.poisson(lambda_total);
      if (n == 0) {
        comp_max = 0.0;
      } else {
        comp_max = kernel::sample_component_max_ns(c, n, rng);
        if (counters != nullptr) ++counters->analytic_maxima;
      }
    } else {
      // Frequent: per-core sum ~ Normal(mu, sigma^2); Gumbel-located max.
      const double mu = comp_mean;
      const double var = lambda_core * m.m2_ns2;
      const double sigma = std::sqrt(std::max(var, 0.0));
      const double ln_c = std::log(static_cast<double>(cores));
      const double a = std::sqrt(2.0 * ln_c);
      double u = rng.next_double();
      if (u <= 0.0) u = 0x1.0p-53;
      if (u >= 1.0) u = 1.0 - 0x1.0p-53;
      const double gumbel = -std::log(-std::log(u));
      comp_max = mu + sigma * (a + (gumbel - (std::log(ln_c) + std::log(12.566370614)) / 2.0 / a));
      comp_max = std::max(comp_max, mu);
      if (counters != nullptr) ++counters->gumbel_draws;
    }
    // Combining components: the slowest core for one component very likely
    // carries only the mean of the others.
    max_total = std::max(max_total, comp_max + (mean_total - comp_mean));
  }
  max_total = std::max(max_total, mean_total);

  return NoiseWindow{sim::from_double_ns(mean_total), sim::from_double_ns(max_total)};
}

}  // namespace mkos::runtime
