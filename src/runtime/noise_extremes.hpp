#pragma once
// Extreme-value statistics of OS noise across a parallel job.
//
// In a bulk-synchronous phase every rank waits for the slowest one, so what
// matters at scale is not the *mean* stolen time but the *maximum* over all
// application cores — this is the noise-amplification mechanism that makes
// Linux collapse under MiniFE at 1,024 nodes while the LWKs do not.
//
// Sampling every core individually would cost O(cores) per phase (131,072
// ranks x thousands of phases). Instead, per noise component:
//   * sparse components (expected events *per core* at most ~1, where most
//     cores see zero events and the max over cores is the max over events):
//     draw the actual number of events N ~ Poisson(total rate), then the
//     maximum of the N durations as a single inverse-CDF draw at U^(1/N) —
//     exact in distribution, one uniform instead of N full draws;
//   * frequent components (events per core well above 1): the per-core
//     stolen sum is approximately normal (CLT over many small detours); the
//     maximum over C cores follows a Gumbel law around
//     mu + sigma * sqrt(2 ln C).
// Component moments are closed-form (kernel::component_moments) — nothing is
// estimated by Monte Carlo.

#include <cstdint>

#include "kernel/noise.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mkos::runtime {

struct NoiseWindow {
  sim::TimeNs mean{0};  ///< expected stolen time per core over the span
  sim::TimeNs max{0};   ///< sampled maximum over all cores
};

class NoiseExtremes {
 public:
  explicit NoiseExtremes(kernel::NoiseModel model);

  /// Stolen-time statistics for one synchronized window of length `span`
  /// across `cores` application cores. `counters`, when non-null, tallies
  /// which sampling paths fired (run-ledger `engine` group).
  [[nodiscard]] NoiseWindow sample(sim::TimeNs span, std::uint64_t cores,
                                   sim::Rng& rng,
                                   kernel::SampleCounters* counters = nullptr) const;

  /// Expected stolen fraction (mirror of NoiseModel::expected_fraction()).
  [[nodiscard]] double mean_fraction() const;

  /// Aggregate event rate across components (per core-second).
  [[nodiscard]] double total_rate_hz() const;
  /// Rate-weighted mean event duration (seconds); 0 for an empty model.
  [[nodiscard]] double mean_duration_s() const;
  /// Largest component cap (ns); 0 when any component is uncapped.
  [[nodiscard]] sim::TimeNs max_cap() const;

 private:
  struct Moments {
    double rate_hz;
    double mean_ns;   ///< E[min(duration, cap)]
    double m2_ns2;    ///< E[min(duration, cap)^2]
  };

  kernel::NoiseModel model_;  ///< owned copy — callers may pass temporaries
  std::vector<Moments> moments_;
  double rate_mean_sum_ = 0.0;  ///< sum of rate_hz * mean_ns (hoisted)
};

}  // namespace mkos::runtime
