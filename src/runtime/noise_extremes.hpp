#pragma once
// Extreme-value statistics of OS noise across a parallel job.
//
// In a bulk-synchronous phase every rank waits for the slowest one, so what
// matters at scale is not the *mean* stolen time but the *maximum* over all
// application cores — this is the noise-amplification mechanism that makes
// Linux collapse under MiniFE at 1,024 nodes while the LWKs do not.
//
// Sampling every core individually would cost O(cores) per phase (131,072
// ranks x thousands of phases). Instead, per noise component:
//   * rare components (expected events across the job below a threshold):
//     draw the actual number of events N ~ Poisson(total rate) and take the
//     maximum of N duration draws — exact in distribution for per-core
//     event counts << 1;
//   * frequent components: the per-core stolen sum is approximately normal
//     (CLT over many small detours); the maximum over C cores follows a
//     Gumbel law around mu + sigma * sqrt(2 ln C).
// Component moments are estimated once by Monte Carlo and cached.

#include <cstdint>

#include "kernel/noise.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mkos::runtime {

struct NoiseWindow {
  sim::TimeNs mean{0};  ///< expected stolen time per core over the span
  sim::TimeNs max{0};   ///< sampled maximum over all cores
};

class NoiseExtremes {
 public:
  explicit NoiseExtremes(kernel::NoiseModel model);

  /// Stolen-time statistics for one synchronized window of length `span`
  /// across `cores` application cores.
  [[nodiscard]] NoiseWindow sample(sim::TimeNs span, std::uint64_t cores,
                                   sim::Rng& rng) const;

  /// Expected stolen fraction (mirror of NoiseModel::expected_fraction()).
  [[nodiscard]] double mean_fraction() const;

  /// Aggregate event rate across components (per core-second).
  [[nodiscard]] double total_rate_hz() const;
  /// Rate-weighted mean event duration (seconds); 0 for an empty model.
  [[nodiscard]] double mean_duration_s() const;
  /// Largest component cap (ns); 0 when any component is uncapped.
  [[nodiscard]] sim::TimeNs max_cap() const;

 private:
  struct Moments {
    double rate_hz;
    double mean_ns;   ///< E[duration]
    double m2_ns2;    ///< E[duration^2]
  };

  [[nodiscard]] static double draw_duration(const kernel::NoiseComponent& c,
                                            sim::Rng& rng);

  kernel::NoiseModel model_;  ///< owned copy — callers may pass temporaries
  std::vector<Moments> moments_;
};

}  // namespace mkos::runtime
