#include "runtime/resilience.hpp"

#include <algorithm>
#include <cmath>

#include "kernel/noise.hpp"
#include "sim/contracts.hpp"

namespace mkos::runtime {

namespace {

/// Probability that a retried IKC message is lost again (the drop was a
/// transient ring-full condition; by the time the backoff expires the proxy
/// has usually drained).
constexpr double kRetryLossP = 0.25;

/// How much of a Linux reboot an LWK partition actually waits on: the share
/// of its execution that traverses the Linux side (offloaded services).
double offload_coupling(kernel::OsKind os) {
  switch (os) {
    case kernel::OsKind::kMcKernel: return 0.25;  // proxies + IHK services
    case kernel::OsKind::kFusedOs: return 0.40;   // CL traffic through FWK
    case kernel::OsKind::kMos: return 0.15;       // direct triage, thin glue
    case kernel::OsKind::kLinux: return 1.0;      // unreachable: Linux dies
  }
  return 1.0;
}

}  // namespace

double ResilienceManager::isolation_leak(kernel::OsKind os) {
  switch (os) {
    case kernel::OsKind::kLinux: return 1.0;
    case kernel::OsKind::kFusedOs: return 0.15;
    case kernel::OsKind::kMcKernel: return 0.06;
    case kernel::OsKind::kMos: return 0.05;
  }
  return 1.0;
}

ResilienceManager::ResilienceManager(const fault::Spec& spec, Job& job,
                                     std::uint64_t seed)
    : ResilienceManager(fault::Plan::generate(spec, job.spec().nodes, seed), job,
                        seed) {}

ResilienceManager::ResilienceManager(fault::Plan plan, Job& job, std::uint64_t seed)
    : spec_(plan.spec()),
      job_(job),
      injector_(std::move(plan)),
      rng_(sim::Rng(seed).fork(1)),
      mem_rng_(sim::Rng(seed).fork(2)) {
  storm_base_fraction_ = kernel::noise_daemon_storm().expected_fraction();
}

ResilienceManager::~ResilienceManager() {
  for (int id : hooked_domains_) {
    job_.node().phys().domain(id).set_fault_hook(nullptr);
  }
}

void ResilienceManager::install_memory_faults() {
  mcdram_deny_p_ = std::max(mcdram_deny_p_, spec_.mcdram_fail_fraction);
  const auto& topo = job_.node().topo();
  auto& phys = job_.node().phys();
  for (int id = 0; id < phys.domain_count(); ++id) {
    if (topo.domain(id).kind != hw::MemKind::kMcdram) continue;
    phys.domain(id).set_fault_hook([this](sim::Bytes) {
      // Zero probability must not consume randomness: a zero-fault run's
      // allocator behavior stays bit-identical to a hook-free build.
      if (mcdram_deny_p_ <= 0.0) return false;
      if (mem_rng_.next_double() >= mcdram_deny_p_) return false;
      ++counters_.injected;
      ++counters_.detected;
      ++counters_.mcdram_denied;
      ++counters_.recovered;  // the placement layer's DDR4 spill absorbs it
      return true;
    });
    hooked_domains_.push_back(id);
  }
}

bool ResilienceManager::uses_ikc() const {
  const kernel::OsKind os = job_.kernel().kind();
  return os == kernel::OsKind::kMcKernel || os == kernel::OsKind::kFusedOs;
}

sim::TimeNs ResilienceManager::on_sync(sim::TimeNs span) {
  MKOS_EXPECTS(span >= sim::TimeNs{0});
  const sim::TimeNs w0 = progress_;
  const sim::TimeNs w1 = progress_ + span;
  progress_ = w1;
  sim::TimeNs extra{0};

  // Coordinated checkpoint cadence: one flush per interval boundary crossed.
  if (fault::policy_checkpoints(spec_.policy) && spec_.checkpoint_interval.ns() > 0) {
    const std::int64_t interval = spec_.checkpoint_interval.ns();
    const std::int64_t crossed = w1.ns() / interval - w0.ns() / interval;
    if (crossed > 0) {
      counters_.checkpoints += static_cast<std::uint64_t>(crossed);
      const sim::TimeNs cost = spec_.checkpoint_cost * crossed;
      counters_.checkpoint_ns += static_cast<std::uint64_t>(cost.ns());
      extra += cost;
    }
  }

  // Activate scheduled faults up to w1. Events open windows (stragglers,
  // storms) before the overlap charge below, so a disturbance starting
  // inside this span is already felt by it.
  for (const fault::FaultEvent& e : injector_.advance(w1)) {
    ++counters_.injected;
    extra += apply_event(e);
  }

  extra += charge_windows(w0, w1);

  counters_.wait_ns += static_cast<std::uint64_t>(extra.ns());
  return extra;
}

sim::TimeNs ResilienceManager::fail_stop_cost(sim::TimeNs at) {
  ++counters_.restarts;
  sim::TimeNs lost = at;  // no checkpoints: all progress since t=0 is redone
  if (fault::policy_checkpoints(spec_.policy) && spec_.checkpoint_interval.ns() > 0) {
    const std::int64_t interval = spec_.checkpoint_interval.ns();
    lost = sim::TimeNs{at.ns() - (at.ns() / interval) * interval};
    ++counters_.recovered;
  }
  counters_.lost_work_ns += static_cast<std::uint64_t>(lost.ns());
  return spec_.restart_cost + lost;
}

sim::TimeNs ResilienceManager::apply_event(const fault::FaultEvent& e) {
  switch (e.kind) {
    case fault::FaultKind::kNodeFailStop: {
      ++counters_.detected;
      ++counters_.node_failures;
      return fail_stop_cost(e.at);
    }

    case fault::FaultKind::kLinuxCrash: {
      ++counters_.detected;
      ++counters_.linux_crashes;
      kernel::Node& node = job_.node();
      if (!node.lwk_survives_linux_crash()) {
        // Linux baseline: the application dies with its kernel.
        ++counters_.node_failures;
        return fail_stop_cost(e.at);
      }
      // The LWK partition computes through the reboot; it stalls only on
      // the offloaded share of the stall, then respawns dead proxies.
      ++counters_.recovered;
      const double coupling = offload_coupling(job_.kernel().kind());
      sim::TimeNs stall = e.duration.scaled(coupling);
      stall += spec_.proxy_respawn_cost * node.proxy_process_count();
      return stall;
    }

    case fault::FaultKind::kStraggler: {
      ++counters_.detected;
      ++counters_.stragglers;
      ActiveWindow w;
      w.start = e.at;
      w.end = e.at + e.duration;
      const double slowdown = std::max(0.0, e.magnitude - 1.0);
      sim::TimeNs upfront{0};
      if (fault::policy_retries(spec_.policy)) {
        // Redistribute: peers absorb all but a residual of the slowdown,
        // for a one-time re-decomposition cost.
        ++counters_.recovered;
        w.dilation = slowdown * spec_.redistribute_residual;
        w.absorbed = slowdown * (1.0 - spec_.redistribute_residual);
        upfront = spec_.redistribution_cost;
      } else {
        // BSP exposes the full slowdown: everyone waits for the straggler.
        w.dilation = slowdown;
      }
      windows_.push_back(w);
      return upfront;
    }

    case fault::FaultKind::kDaemonStorm: {
      ++counters_.detected;
      ++counters_.storms;
      ActiveWindow w;
      w.start = e.at;
      w.end = e.at + e.duration;
      // Steal fraction s of the exposed core -> time dilation s / (1 - s),
      // attenuated by the kernel's isolation leak.
      const double steal = std::min(
          0.95, storm_base_fraction_ * isolation_leak(job_.kernel().kind()) *
                    std::max(e.magnitude, 1.0));
      w.dilation = steal / (1.0 - steal);
      windows_.push_back(w);
      return sim::TimeNs{0};
    }

    case fault::FaultKind::kIkcDrop: {
      if (!uses_ikc()) return sim::TimeNs{0};  // no channel to drop from
      ++counters_.detected;
      const auto messages = static_cast<std::uint64_t>(
          std::max<long long>(1, std::llround(e.magnitude)));
      counters_.ikc_dropped += messages;
      sim::TimeNs cost{0};
      if (fault::policy_retries(spec_.policy)) {
        // Exponential backoff per message; each retry is itself lost with
        // probability kRetryLossP (transient congestion decays).
        for (std::uint64_t m = 0; m < messages; ++m) {
          int attempts = 1;
          sim::TimeNs backoff = spec_.ikc_backoff_base;
          while (attempts < spec_.ikc_max_retries &&
                 rng_.next_double() < kRetryLossP) {
            backoff += spec_.ikc_backoff_base * (std::int64_t{1} << attempts);
            ++attempts;
          }
          counters_.retried += static_cast<std::uint64_t>(attempts);
          counters_.backoff_wait_ns += static_cast<std::uint64_t>(backoff.ns());
          cost += backoff + job_.kernel().offload_cost(256) * attempts;
          ++counters_.recovered;
        }
      } else {
        // No retry: each lost request stalls its rank to the full timeout.
        const int shift = std::min(spec_.ikc_max_retries, 12);
        const sim::TimeNs timeout =
            spec_.ikc_backoff_base * (std::int64_t{1} << shift);
        cost = timeout * static_cast<std::int64_t>(messages);
        counters_.lost_work_ns += static_cast<std::uint64_t>(cost.ns());
      }
      return cost;
    }

    case fault::FaultKind::kIkcDelay: {
      if (!uses_ikc()) return sim::TimeNs{0};
      ++counters_.detected;
      ++counters_.ikc_delays;
      return e.duration;  // the channel stalls; offloads queue behind it
    }

    case fault::FaultKind::kMcdramFault: {
      // Raises the denial probability; cost materializes at allocation time
      // through the installed hook.
      mcdram_deny_p_ = std::max(mcdram_deny_p_, e.magnitude);
      return sim::TimeNs{0};
    }

    case fault::FaultKind::kCount_:
      break;
  }
  return sim::TimeNs{0};
}

sim::TimeNs ResilienceManager::charge_windows(sim::TimeNs w0, sim::TimeNs w1) {
  sim::TimeNs extra{0};
  for (const ActiveWindow& w : windows_) {
    const sim::TimeNs o_start = std::max(w.start, w0);
    const sim::TimeNs o_end = std::min(w.end, w1);
    if (o_end <= o_start) continue;
    const sim::TimeNs overlap = o_end - o_start;
    extra += overlap.scaled(w.dilation);
    if (w.absorbed > 0.0) {
      counters_.redistributed_ns +=
          static_cast<std::uint64_t>(overlap.scaled(w.absorbed).ns());
    }
  }
  std::erase_if(windows_, [w1](const ActiveWindow& w) { return w.end <= w1; });
  return extra;
}

}  // namespace mkos::runtime
