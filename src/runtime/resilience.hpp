#pragma once
// Recovery policies over an injected fault plan.
//
// The ResilienceManager sits between the fault injector (a deterministic
// schedule of disturbances in progress time, see fault/fault.hpp) and the
// bulk-synchronous executor. MpiWorld calls on_sync() at every
// synchronization with the work span that just closed; the manager advances
// the fault timeline across that span, applies the recovery policy to
// whatever fired, and returns the extra time the run must absorb. Because
// the charge lands inside synchronize(), fault time flows through the same
// clock as compute, noise and communication — every downstream statistic
// (FOM, breakdowns, campaign aggregation) sees it without special cases.
//
// Recovery policy semantics:
//   * kNone — a fail-stop loses all progress since t=0; dropped IKC messages
//     stall to their full timeout; stragglers run exposed.
//   * kRetry — dropped IKC messages are retried with exponential backoff;
//     straggler work is redistributed (peers absorb all but a residual).
//   * kCheckpointRestart — coordinated checkpoints every
//     checkpoint_interval of progress (each costing checkpoint_cost);
//     a fail-stop rolls back to the last checkpoint instead of t=0.
//   * kFull — both of the above.
//
// Checkpoint-interval cost model (the classic first-order optimum): total
// overhead(I) = checkpoints * cost + expected rollback, with
// checkpoints ~ T/I and expected rollback ~ faults * I/2. Sweeping I
// exposes the interior minimum near sqrt(2 * cost * MTBF) — the resilience
// bench reproduces that shape.
//
// Kernel-specific behavior: a kLinuxCrash on a multi-kernel node is
// survivable — the LWK partition keeps computing and only stalls on the
// Linux reboot scaled by its offload coupling, plus proxy respawns
// (McKernel's proxies die with Linux). A Linux-only node treats it as a
// fail-stop. Daemon storms reach application cores scaled by the kernel's
// isolation leak: nearly in full on Linux, barely at all on the LWKs.
//
// Determinism: all randomness comes from two forked streams of the ctor
// seed (recovery coin flips, MCDRAM denial draws), consumed in a fixed
// order driven by the deterministic event schedule. A disabled spec
// constructs an empty plan, draws nothing, and charges nothing.

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "runtime/job.hpp"
#include "sim/rng.hpp"
#include "sim/thread_safety.hpp"
#include "sim/time.hpp"

namespace mkos::runtime {

class MKOS_THREAD_CONFINED("the owning cell's MpiWorld") ResilienceManager {
 public:
  /// Seed-derived plan from the spec (the production path).
  ResilienceManager(const fault::Spec& spec, Job& job, std::uint64_t seed);
  /// Explicit plan (tests and declarative scenarios).
  ResilienceManager(fault::Plan plan, Job& job, std::uint64_t seed);

  ResilienceManager(const ResilienceManager&) = delete;
  ResilienceManager& operator=(const ResilienceManager&) = delete;

  /// Detaches any installed allocator hooks.
  ~ResilienceManager();

  /// Install MCDRAM denial hooks on the representative node's MCDRAM
  /// domains. Call before the application's setup phase so placement-time
  /// allocations are exposed too. No-op when mcdram_fail_fraction is 0 and
  /// the plan carries no kMcdramFault events.
  void install_memory_faults();

  /// Close the progress window `span` (the work the world just synchronized
  /// on) against the fault timeline; returns the extra time the run absorbs
  /// for faults, recovery and checkpoint cadence inside that window.
  [[nodiscard]] sim::TimeNs on_sync(sim::TimeNs span);

  [[nodiscard]] const fault::Counters& counters() const { return counters_; }
  [[nodiscard]] const fault::Spec& spec() const { return spec_; }
  [[nodiscard]] sim::TimeNs progress() const { return progress_; }
  [[nodiscard]] std::uint64_t plan_fingerprint() const {
    return injector_.plan().fingerprint();
  }

  /// Fraction of a storm that reaches application cores on `os` (the
  /// partitioning story, quantified). Exposed for tests and the bench.
  [[nodiscard]] static double isolation_leak(kernel::OsKind os);

 private:
  /// A straggler or storm currently dilating the run: overlap of
  /// [start, end) with a progress window extends the run by
  /// overlap * dilation, and overlap * absorbed is booked as work peers
  /// redistributed away.
  struct ActiveWindow {
    sim::TimeNs start{0};
    sim::TimeNs end{0};
    double dilation = 0.0;
    double absorbed = 0.0;
  };

  [[nodiscard]] sim::TimeNs apply_event(const fault::FaultEvent& e);
  [[nodiscard]] sim::TimeNs fail_stop_cost(sim::TimeNs at);
  [[nodiscard]] sim::TimeNs charge_windows(sim::TimeNs w0, sim::TimeNs w1);
  [[nodiscard]] bool uses_ikc() const;

  fault::Spec spec_;
  Job& job_;
  fault::Injector injector_;
  sim::Rng rng_;      ///< recovery decisions (retry coin flips)
  sim::Rng mem_rng_;  ///< MCDRAM denial draws
  fault::Counters counters_;
  sim::TimeNs progress_{0};
  double mcdram_deny_p_ = 0.0;
  std::vector<ActiveWindow> windows_;
  std::vector<int> hooked_domains_;
  double storm_base_fraction_ = 0.0;  ///< expected steal of a fully exposed core
};

}  // namespace mkos::runtime
