#include "runtime/shm.hpp"

#include "kernel/mckernel.hpp"
#include "sim/contracts.hpp"

namespace mkos::runtime {

ShmSetupResult setup_mpi_shm(Job& job, sim::Bytes bytes) {
  MKOS_EXPECTS(bytes > 0);
  ShmSetupResult res;
  kernel::Kernel& k = job.kernel();

  bool premap = false;
  switch (k.kind()) {
    case kernel::OsKind::kLinux:
      premap = false;  // POSIX shm is demand-paged
      break;
    case kernel::OsKind::kMcKernel:
      premap = static_cast<const kernel::McKernel&>(k).options().mpol_shm_premap;
      break;
    case kernel::OsKind::kMos:
      premap = true;  // upfront backing is the LWK's normal policy
      break;
    case kernel::OsKind::kFusedOs:
      premap = true;  // CNK-style static mapping
      break;
  }
  res.premapped = premap;

  // The segment is one shared object per node: each rank owns (and backs)
  // its slice, and every rank can address the whole thing. Physically the
  // node carries `bytes` once, so each lane maps its slice.
  const int lanes = job.lane_count();
  const sim::Bytes slice = std::max<sim::Bytes>(bytes / static_cast<sim::Bytes>(lanes),
                                                4 * sim::KiB);
  for (int i = 0; i < lanes; ++i) {
    kernel::Process& p = job.lane(i);
    auto r = k.sys_mmap(p, slice, mem::VmaKind::kShm, mem::MemPolicy::standard());
    MKOS_ASSERT(r.err == kernel::kOk);
    sim::TimeNs cost = r.cost;
    // Installing page tables over the other ranks' slices.
    cost += k.mem_costs().pte_per_page *
            static_cast<std::int64_t>(mem::pages_for(bytes, mem::PageSize::k2M));
    if (!premap && r.vma != nullptr && r.vma->demand_paged) {
      // Demand-paged: every rank faults its slice concurrently with all the
      // others — the contention --mpol-shm-premap exists to avoid.
      const mem::TouchResult t = k.touch(p, *r.vma, slice, lanes);
      res.faults += t.faults;
      cost += t.cost;
    }
    res.per_rank_cost = std::max(res.per_rank_cost, cost);
  }
  return res;
}

}  // namespace mkos::runtime
