#pragma once
// MPI intra-node shared-memory segments.
//
// Every rank maps the node's communication segment at MPI_Init. On Linux
// (and on McKernel without --mpol-shm-premap) the segment is demand-paged:
// all ranks fault it in concurrently, contending in the fault handler. With
// --mpol-shm-premap McKernel's proxy pre-maps it ("This helps avoiding
// contention in the page fault handler"); mOS backs it upfront as a matter
// of policy.

#include "runtime/job.hpp"

namespace mkos::runtime {

struct ShmSetupResult {
  sim::TimeNs per_rank_cost{0};   ///< charged to every rank at MPI_Init
  std::uint64_t faults = 0;       ///< total faults taken across the node
  bool premapped = false;
};

/// Map an MPI shared-memory segment of `bytes` into every lane of the job.
[[nodiscard]] ShmSetupResult setup_mpi_shm(Job& job, sim::Bytes bytes);

}  // namespace mkos::runtime
