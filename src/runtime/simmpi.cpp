#include "runtime/simmpi.hpp"

#include <algorithm>
#include <cmath>

#include "sim/contracts.hpp"

namespace mkos::runtime {

MpiWorld::MpiWorld(Job& job, std::uint64_t noise_seed)
    : job_(job),
      extremes_(job.kernel().noise()),
      coll_extremes_(job.kernel().collective_noise()),
      rng_(noise_seed) {
  lane_pending_.assign(static_cast<std::size_t>(job.lane_count()), sim::TimeNs{0});
  refresh_lanes();
}

void MpiWorld::refresh_lanes() {
  lane_gbps_.resize(static_cast<std::size_t>(job_.lane_count()));
  min_lane_gbps_ = 1e30;
  for (int i = 0; i < job_.lane_count(); ++i) {
    lane_gbps_[static_cast<std::size_t>(i)] = job_.lane_effective_gbps(i);
    min_lane_gbps_ = std::min(min_lane_gbps_, lane_gbps_[static_cast<std::size_t>(i)]);
  }
}

void MpiWorld::mpi_init(sim::Bytes shm_segment_bytes) {
  shm_ = setup_mpi_shm(job_, shm_segment_bytes);
  pending_uniform_ += shm_.per_rank_cost;
  refresh_lanes();
}

std::uint64_t MpiWorld::global_cores() const {
  return static_cast<std::uint64_t>(job_.spec().nodes) *
         static_cast<std::uint64_t>(job_.node().app_core_count());
}

void MpiWorld::compute_bytes(sim::Bytes bytes_per_rank) {
  for (std::size_t i = 0; i < lane_pending_.size(); ++i) {
    const double ns = static_cast<double>(bytes_per_rank) / (lane_gbps_[i] * 1e9) * 1e9;
    lane_pending_[i] += sim::from_double_ns(ns);
  }
}

void MpiWorld::compute_bytes_scaled(sim::Bytes bytes_per_rank,
                                    const std::vector<double>& lane_scale) {
  MKOS_EXPECTS(!lane_scale.empty());
  for (std::size_t i = 0; i < lane_pending_.size(); ++i) {
    const double scaled =
        static_cast<double>(bytes_per_rank) * lane_scale[i % lane_scale.size()];
    lane_pending_[i] += sim::from_double_ns(scaled / (lane_gbps_[i] * 1e9) * 1e9);
  }
}

void MpiWorld::compute_time(sim::TimeNs per_rank) { pending_uniform_ += per_rank; }

void MpiWorld::compute_flops(double flops_per_rank) {
  // KNL per-core sustained scalar+vector rate for real codes (not peak):
  // ~12 GF/s per core over threads_per_rank-covered cores.
  const double gflops = 12.0 * job_.spec().threads_per_rank;
  pending_uniform_ += sim::from_double_ns(flops_per_rank / (gflops * 1e9) * 1e9);
}

void MpiWorld::sched_yields(int count_per_rank) {
  const sim::TimeNs per = job_.kernel().scheduler_model().sched_yield_cost();
  pending_uniform_ += per * count_per_rank;
}

void MpiWorld::syscall(kernel::Sys s, int count_per_rank, sim::Bytes payload) {
  pending_uniform_ += job_.kernel().priced(s, payload) * count_per_rank;
}

void MpiWorld::heap_cycle(std::span<const std::int64_t> deltas) {
  kernel::Kernel& k = job_.kernel();
  // Heap faults of distinct rank processes contend only on the per-domain
  // zone allocator, not on a shared mmap_sem (unlike the shm segment), so
  // the effective concurrency in the fault handler is a fraction of the
  // rank count.
  const int faulters = 1 + job_.lane_count() / 8;
  for (int i = 0; i < job_.lane_count(); ++i) {
    kernel::Process& p = job_.lane(i);
    sim::TimeNs cost{0};
    for (const std::int64_t d : deltas) {
      const auto r = k.sys_brk(p, d);
      cost += r.cost;
      if (d > 0) cost += k.heap_touch(p, faulters);
    }
    lane_pending_[static_cast<std::size_t>(i)] += cost;
  }
}

void MpiWorld::synchronize(std::uint64_t sync_cores, sim::TimeNs comm, SyncKind kind) {
  sim::TimeNs span = pending_uniform_;
  sim::TimeNs max_lane{0};
  for (auto& lp : lane_pending_) {
    max_lane = std::max(max_lane, lp);
    lp = sim::TimeNs{0};
  }
  span += max_lane;
  pending_uniform_ = sim::TimeNs{0};

  const NoiseWindow w = extremes_.sample(span, std::max<std::uint64_t>(sync_cores, 1), rng_);
  clock_ += span + w.max + comm;
  compute_time_ += span;
  noise_wait_ += w.max;
  comm_time_ += comm;
  if (trace_enabled_) trace_.push_back(SyncEvent{kind, span, w.max, comm, clock_});
}

sim::TimeNs MpiWorld::message_cost(sim::Bytes bytes) const {
  const auto& net = job_.machine().cluster.network();
  const kernel::Kernel& k = job_.kernel();
  // Average hop count for a random peer.
  const int hops = net.hop_count(0, std::max(1, job_.spec().nodes / 2), job_.spec().nodes);
  sim::TimeNs t = net.wire_time(bytes, hops).scaled(1.0 / k.network_bw_factor());
  // Kernel involvement on the send path (hfi1 device-file writes).
  if (net.kernel_involved_ops > 0.0) {
    t += k.network_syscall_overhead().scaled(net.kernel_involved_ops);
  }
  return t;
}

sim::TimeNs MpiWorld::collective_cost(sim::Bytes bytes) {
  const auto& net = job_.machine().cluster.network();
  const kernel::Kernel& k = job_.kernel();

  CollectiveShape shape{job_.spec().nodes, job_.spec().ranks_per_node, bytes};
  CollectiveCosts costs;
  costs.intra_stage = coll_.intra_stage;
  costs.software_stage = coll_.software_stage;
  costs.bandwidth_factor = k.network_bw_factor();
  if (net.kernel_involved_ops > 0.0) {
    costs.kernel_overhead_per_msg =
        k.network_syscall_overhead().scaled(net.kernel_involved_ops);
  }
  const sim::TimeNs base = allreduce_base_cost(coll_.algo, shape, net, costs);
  const AllreduceAlgo algo =
      coll_.algo == AllreduceAlgo::kAuto ? allreduce_pick(shape) : coll_.algo;
  coll_stages_ += static_cast<std::uint64_t>(allreduce_stages(algo, shape));

  // Stall coupling: a rank stalled during (or just before) a blocking
  // collective stalls the whole dependency tree. Two regimes:
  //   * sub-critical — the stall ends, the collective completes: pay the
  //     sampled stall;
  //   * super-critical — once the expected number of further stalls arriving
  //     somewhere in the machine *during one stall* reaches one, every stall
  //     hands over to the next and the collective only completes at the
  //     stall-recovery bound (the component cap). This threshold in
  //     rate x duration x cores is the sharp Fig. 5b collapse; the LWKs'
  //     collective-noise model is empty, so they never enter it.
  const std::uint64_t cores = global_cores();
  const sim::TimeNs exposure = base + coll_.stall_exposure;
  sim::TimeNs stall = coll_extremes_.sample(exposure, cores, rng_).max;
  // A genuine stall event (not the sub-event mean floor of the sampler)
  // is on the scale of the component's mean duration.
  const double event_scale_ns = coll_extremes_.mean_duration_s() * 1e9 * 0.1;
  if (static_cast<double>(stall.ns()) > event_scale_ns) {
    const double stalls_per_stall = coll_extremes_.total_rate_hz() *
                                    coll_extremes_.mean_duration_s() *
                                    static_cast<double>(cores);
    const sim::TimeNs cap = coll_extremes_.max_cap();
    if (stalls_per_stall >= 1.0 && cap > stall) stall = cap;
  }
  coll_stall_ += stall;
  return base + stall;
}

void MpiWorld::allreduce(sim::Bytes bytes) {
  ++allreduces_;
  synchronize(global_cores(), collective_cost(bytes), SyncKind::kAllreduce);
}

void MpiWorld::barrier() { allreduce(8); }

void MpiWorld::halo_exchange(sim::Bytes bytes_per_msg, int neighbors) {
  MKOS_EXPECTS(neighbors >= 0);
  // Sends in opposite directions overlap; budget ceil(n/2) serialized
  // message times plus per-message kernel involvement.
  sim::TimeNs comm = message_cost(bytes_per_msg) * ((neighbors + 1) / 2);
  const auto& net = job_.machine().cluster.network();
  if (net.kernel_involved_ops > 0.0 && neighbors > 1) {
    comm += job_.kernel().network_syscall_overhead().scaled(
        net.kernel_involved_ops * (neighbors - (neighbors + 1) / 2));
  }
  // Neighborhood synchronization: skew is absorbed from a bounded set of
  // ranks, not the whole machine.
  const auto sync_cores = static_cast<std::uint64_t>(
      (neighbors + 1) * job_.spec().threads_per_rank);
  synchronize(sync_cores, comm, SyncKind::kHalo);
}

void MpiWorld::send_shift(sim::Bytes bytes) {
  synchronize(static_cast<std::uint64_t>(2 * job_.spec().threads_per_rank),
              message_cost(bytes), SyncKind::kShift);
}

sim::TimeNs MpiWorld::finish() {
  synchronize(global_cores(), sim::TimeNs{0}, SyncKind::kFinish);
  return clock_;
}

}  // namespace mkos::runtime
