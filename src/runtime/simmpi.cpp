#include "runtime/simmpi.hpp"

#include <algorithm>
#include <cmath>

#include "alloc/model.hpp"
#include "runtime/resilience.hpp"
#include "sim/contracts.hpp"

namespace mkos::runtime {

namespace {

std::uint64_t phys_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 31);
}

/// Fingerprint of the shared physical-memory state the heap cost model can
/// observe: per-domain free volume and free-map shape (each domain's own
/// O(1) fingerprint). A brk cycle that is net-neutral against this
/// fingerprint left the allocator where it found it, so an identical lane
/// replays to identical costs.
std::uint64_t phys_fingerprint(const mem::PhysMemory& phys) {
  std::uint64_t h = 0x082efa98ec4e6c89ULL;
  for (int d = 0; d < phys.domain_count(); ++d) {
    h = phys_mix(h, phys.domain(static_cast<hw::DomainId>(d)).state_fingerprint());
  }
  return h;
}

}  // namespace

MpiWorld::MpiWorld(Job& job, std::uint64_t noise_seed)
    : job_(job),
      extremes_(job.kernel().noise()),
      coll_extremes_(job.kernel().collective_noise()),
      rng_(noise_seed) {
  lanes_.pending_ns.assign(static_cast<std::size_t>(job.lane_count()), 0);
  const auto& net = job_.machine().cluster.network();
  // Average hop count for a random peer — constant for the job's node count,
  // so computed once instead of on every halo/shift message.
  avg_hops_ = net.hop_count(0, std::max(1, job_.spec().nodes / 2), job_.spec().nodes);
  refresh_lanes();
}

void MpiWorld::refresh_lanes() {
  lanes_.gbps.resize(static_cast<std::size_t>(job_.lane_count()));
  lanes_.heaps.resize(static_cast<std::size_t>(job_.lane_count()));
  if (job_.lane_count() == 0) {
    // No lanes: nothing to min over — leave a safe, recognizable default
    // rather than the +inf-like scan sentinel.
    min_lane_gbps_ = 0.0;
    lanes_uniform_ = true;
    return;
  }
  min_lane_gbps_ = 1e30;
  lanes_uniform_ = true;
  for (int i = 0; i < job_.lane_count(); ++i) {
    lanes_.gbps[static_cast<std::size_t>(i)] = job_.lane_effective_gbps(i);
    min_lane_gbps_ = std::min(min_lane_gbps_, lanes_.gbps[static_cast<std::size_t>(i)]);
    if (lanes_.gbps[static_cast<std::size_t>(i)] != lanes_.gbps[0]) lanes_uniform_ = false;
    lanes_.heaps[static_cast<std::size_t>(i)] = job_.lane(i).heap();
  }
  MKOS_ENSURES(min_lane_gbps_ > 0.0 && min_lane_gbps_ < 1e30);
}

void MpiWorld::set_fast_paths(bool on) {
  fast_paths_ = on;
  coll_cache_.clear();
  msg_cache_.clear();
  heap_memo_.clear();
}

void MpiWorld::mpi_init(sim::Bytes shm_segment_bytes) {
  shm_ = setup_mpi_shm(job_, shm_segment_bytes);
  pending_uniform_ += shm_.per_rank_cost;
  refresh_lanes();
}

std::uint64_t MpiWorld::global_cores() const {
  return static_cast<std::uint64_t>(job_.spec().nodes) *
         static_cast<std::uint64_t>(job_.node().app_core_count());
}

void MpiWorld::compute_bytes(sim::Bytes bytes_per_rank) {
  if (lanes_.size() == 0) return;
  if (fast_paths_ && lanes_uniform_) {
    // Every lane gets the same increment, so the per-sync maximum shifts by
    // exactly that increment: fold it into the uniform accumulator. The ns
    // expression matches the per-lane one bit-for-bit (same operands).
    const double ns =
        static_cast<double>(bytes_per_rank) / (min_lane_gbps_ * 1e9) * 1e9;
    pending_uniform_ += sim::from_double_ns(ns);
    ++engine_.compute_uniform_fast;
    return;
  }
  ++engine_.compute_lane_loops;
  lane_pending_dirty_ = true;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const double ns = static_cast<double>(bytes_per_rank) / (lanes_.gbps[i] * 1e9) * 1e9;
    lanes_.pending_ns[i] += sim::from_double_ns(ns).ns();
  }
}

void MpiWorld::compute_bytes_scaled(sim::Bytes bytes_per_rank,
                                    const std::vector<double>& lane_scale) {
  MKOS_EXPECTS(!lane_scale.empty());
  if (lanes_.size() == 0) return;
  if (fast_paths_ && lanes_uniform_) {
    const bool flat =
        std::all_of(lane_scale.begin(), lane_scale.end(),
                    [&](double s) { return s == lane_scale[0]; });
    if (flat) {
      const double scaled = static_cast<double>(bytes_per_rank) * lane_scale[0];
      pending_uniform_ += sim::from_double_ns(scaled / (min_lane_gbps_ * 1e9) * 1e9);
      ++engine_.compute_uniform_fast;
      return;
    }
    // Uniform bandwidth, non-flat scale: one division per distinct scale
    // entry instead of one per lane.
    std::vector<std::int64_t> per_scale(lane_scale.size());
    for (std::size_t j = 0; j < lane_scale.size(); ++j) {
      const double scaled = static_cast<double>(bytes_per_rank) * lane_scale[j];
      per_scale[j] = sim::from_double_ns(scaled / (min_lane_gbps_ * 1e9) * 1e9).ns();
    }
    ++engine_.compute_lane_loops;
    lane_pending_dirty_ = true;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      lanes_.pending_ns[i] += per_scale[i % per_scale.size()];
    }
    return;
  }
  ++engine_.compute_lane_loops;
  lane_pending_dirty_ = true;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const double scaled =
        static_cast<double>(bytes_per_rank) * lane_scale[i % lane_scale.size()];
    lanes_.pending_ns[i] += sim::from_double_ns(scaled / (lanes_.gbps[i] * 1e9) * 1e9).ns();
  }
}

void MpiWorld::compute_time(sim::TimeNs per_rank) { pending_uniform_ += per_rank; }

void MpiWorld::compute_flops(double flops_per_rank) {
  // KNL per-core sustained scalar+vector rate for real codes (not peak):
  // ~12 GF/s per core over threads_per_rank-covered cores.
  const double gflops = 12.0 * job_.spec().threads_per_rank;
  pending_uniform_ += sim::from_double_ns(flops_per_rank / (gflops * 1e9) * 1e9);
}

void MpiWorld::sched_yields(int count_per_rank) {
  const sim::TimeNs per = job_.kernel().scheduler_model().sched_yield_cost();
  pending_uniform_ += per * count_per_rank;
}

void MpiWorld::syscall(kernel::Sys s, int count_per_rank, sim::Bytes payload) {
  pending_uniform_ += job_.kernel().priced(s, payload) * count_per_rank;
}

void MpiWorld::alloc_churn(std::uint64_t pairs_per_rank, sim::Bytes obj_bytes) {
  if (alloc_model_ == nullptr || pairs_per_rank == 0) return;
  const int lanes = job_.lane_count();
  if (lanes == 0) return;
  // Lane costs diverge (whoever churns first eats the refill cascade; later
  // lanes hit the warmed depot), so this always lands in the per-lane
  // pending array, never in pending_uniform_.
  lane_pending_dirty_ = true;
  for (int i = 0; i < lanes; ++i) {
    const sim::TimeNs cost =
        alloc_model_->churn(i, pairs_per_rank, obj_bytes);
    lanes_.pending_ns[static_cast<std::size_t>(i)] += cost.ns();
    alloc_wait_ += cost;
  }
}

const MpiWorld::HeapCycleMemo* MpiWorld::find_heap_memo(
    std::span<const std::int64_t> deltas, std::uint64_t fp0,
    std::uint64_t phys_fp, int faulters) const {
  for (const HeapCycleMemo& m : heap_memo_) {
    if (m.fp0 == fp0 && m.phys_fp == phys_fp && m.faulters == faulters &&
        m.deltas.size() == deltas.size() &&
        std::equal(m.deltas.begin(), m.deltas.end(), deltas.begin())) {
      return &m;
    }
  }
  return nullptr;
}

void MpiWorld::heap_cycle(std::span<const std::int64_t> deltas) {
  kernel::Kernel& k = job_.kernel();
  const int lanes = job_.lane_count();
  if (lanes == 0 || deltas.empty()) return;
  // Heap faults of distinct rank processes contend only on the per-domain
  // zone allocator, not on a shared mmap_sem (unlike the shm segment), so
  // the effective concurrency in the fault handler is a fraction of the
  // rank count.
  const int faulters = 1 + lanes / 8;

  // Symmetric-lane detection: in the common SPMD steady state every lane's
  // heap is in the same (cost-relevant) state, so one representative cycle
  // prices all of them. The per-lane fingerprints are revision-cached, so
  // this scan is a contiguous compare in the steady state.
  bool symmetric = fast_paths_ && lanes > 1;
  std::uint64_t fp0 = 0;
  if (symmetric) {
    fp0 = lanes_.heaps[0]->state_fingerprint();
    for (int i = 1; symmetric && i < lanes; ++i) {
      symmetric = lanes_.heaps[i]->state_fingerprint() == fp0;
    }
  }
  const std::uint64_t phys_before = symmetric ? phys_fingerprint(k.phys()) : 0;

  // Whole-cycle memo: this exact delta sequence already ran from this exact
  // (heap, phys) fingerprint state and proved state-neutral, so the heaps
  // and the allocator end where they started and the cost and counter
  // deltas replay verbatim — for the representative too. The brk path draws
  // no randomness, so skipping the simulation perturbs no RNG stream, and
  // the engine/kernel counters advance exactly as the simulate-one /
  // replay-rest path below would have.
  if (symmetric) {
    if (const HeapCycleMemo* m = find_heap_memo(deltas, fp0, phys_before, faulters)) {
      for (int i = 0; i < lanes; ++i) {
        lanes_.heaps[static_cast<std::size_t>(i)]->apply_replay_delta(m->delta);
      }
      // The replayed cost is uniform across lanes, and a uniform increment
      // commutes with synchronize()'s max reduction — so it accumulates in
      // pending_uniform_ instead of touching every per-lane slot.
      pending_uniform_ += m->cost0;
      k.note_replayed_local_calls(static_cast<std::uint64_t>(deltas.size()) *
                                  static_cast<std::uint64_t>(lanes));
      ++engine_.heap_slow_lanes;
      engine_.heap_fast_lanes += static_cast<std::uint64_t>(lanes - 1);
      ++engine_.heap_memo_hits;
      return;
    }
  }

  const mem::HeapStats stats_before = lanes_.heaps[0]->stats();

  // Simulate lane 0 — representative if symmetric, first of the loop if not.
  // Its cost lands in pending_uniform_ (replay path, where every lane pays
  // it) or its own lane slot (divergent path) once we know which applies.
  sim::TimeNs cost0{0};
  {
    kernel::Process& p = job_.lane(0);
    for (const std::int64_t d : deltas) {
      const auto r = k.sys_brk(p, d);
      cost0 += r.cost;
      if (d > 0) cost0 += k.heap_touch(p, faulters);
    }
  }
  ++engine_.heap_slow_lanes;

  // Replay is exact only if the cycle was state-neutral: the representative's
  // heap returned to its pre-cycle fingerprint AND the shared physical
  // allocator is back where it started. Then every remaining lane starts
  // from the same heap scalars, moves the same byte counts through per-byte
  // costs that never depend on which domain supplies the pages, and — when
  // the cycle did engage the allocator — returns everything it drew, so the
  // restored free maps serve every lane the same total. The replicated cost
  // and counter deltas are therefore exact, not approximate.
  const mem::HeapStats& stats_after = lanes_.heaps[0]->stats();
  if (symmetric && lanes_.heaps[0]->state_fingerprint() == fp0 &&
      phys_fingerprint(k.phys()) == phys_before) {
    const mem::HeapStats delta = mem::HeapEngine::replay_delta(stats_before, stats_after);
    for (int i = 1; i < lanes; ++i) {
      lanes_.heaps[static_cast<std::size_t>(i)]->apply_replay_delta(delta);
    }
    pending_uniform_ += cost0;  // uniform across all lanes, lane 0 included
    k.note_replayed_local_calls(static_cast<std::uint64_t>(deltas.size()) *
                                static_cast<std::uint64_t>(lanes - 1));
    engine_.heap_fast_lanes += static_cast<std::uint64_t>(lanes - 1);
    ++engine_.heap_memo_misses;
    if (heap_memo_.size() < kHeapMemoCap) {
      HeapCycleMemo m;
      m.deltas.assign(deltas.begin(), deltas.end());
      m.fp0 = fp0;
      m.phys_fp = phys_before;
      m.faulters = faulters;
      m.cost0 = cost0;
      m.delta = delta;
      heap_memo_.push_back(std::move(m));
    }
    return;
  }

  lanes_.pending_ns[0] += cost0.ns();
  lane_pending_dirty_ = true;
  engine_.heap_slow_lanes += static_cast<std::uint64_t>(lanes - 1);
  for (int i = 1; i < lanes; ++i) {
    kernel::Process& p = job_.lane(i);
    sim::TimeNs cost{0};
    for (const std::int64_t d : deltas) {
      const auto r = k.sys_brk(p, d);
      cost += r.cost;
      if (d > 0) cost += k.heap_touch(p, faulters);
    }
    lanes_.pending_ns[static_cast<std::size_t>(i)] += cost.ns();
  }
}

void MpiWorld::synchronize(std::uint64_t sync_cores, sim::TimeNs comm, SyncKind kind) {
  sim::TimeNs span = pending_uniform_;
  // Plain int64 max reduction + fill over the SoA pending array — the
  // vectorizable form of the old per-lane object scan. Skipped outright in
  // the steady state where every cost landed in pending_uniform_ and the
  // per-lane slots are still zero from the previous sync.
  if (lane_pending_dirty_) {
    std::int64_t max_lane = 0;
    for (const std::int64_t lp : lanes_.pending_ns) max_lane = std::max(max_lane, lp);
    std::fill(lanes_.pending_ns.begin(), lanes_.pending_ns.end(), std::int64_t{0});
    span += sim::TimeNs{max_lane};
    lane_pending_dirty_ = false;
  }
  pending_uniform_ = sim::TimeNs{0};

  const NoiseWindow w = extremes_.sample(span, std::max<std::uint64_t>(sync_cores, 1),
                                         rng_, &noise_counters_);
  // Fault/recovery charge for this window (nothing runs when detached, so a
  // fault-free world stays bit-identical to a build without the subsystem).
  sim::TimeNs fault_extra{0};
  if (resilience_ != nullptr) {
    fault_extra = resilience_->on_sync(span);
    fault_wait_ += fault_extra;
  }
  clock_ += span + w.max + comm + fault_extra;
  compute_time_ += span;
  noise_wait_ += w.max;
  comm_time_ += comm;
  if (trace_enabled_) trace_.push_back(SyncEvent{kind, span, w.max, comm, clock_});
}

sim::TimeNs MpiWorld::message_cost(sim::Bytes bytes) {
  if (fast_paths_) {
    if (const sim::TimeNs* hit = msg_cache_.find(bytes, engine_.msg_cache_probes)) {
      ++engine_.msg_cache_hits;
      return *hit;
    }
  }
  const auto& net = job_.machine().cluster.network();
  const kernel::Kernel& k = job_.kernel();
  sim::TimeNs t = net.wire_time(bytes, avg_hops_).scaled(1.0 / k.network_bw_factor());
  // Kernel involvement on the send path (hfi1 device-file writes).
  if (net.kernel_involved_ops > 0.0) {
    t += k.network_syscall_overhead().scaled(net.kernel_involved_ops);
  }
  if (fast_paths_) {
    ++engine_.msg_cache_misses;
    msg_cache_.insert(bytes, t);
  }
  return t;
}

sim::TimeNs MpiWorld::collective_cost(sim::Bytes bytes) {
  const auto& net = job_.machine().cluster.network();
  const kernel::Kernel& k = job_.kernel();

  // The stage schedule and base cost depend only on (model, shape, bytes);
  // shape and the kernel/network factors are fixed for the world's lifetime,
  // so memoize on bytes and invalidate if the model constants are retuned.
  sim::TimeNs base{0};
  std::uint64_t stages = 0;
  bool have = false;
  if (fast_paths_) {
    if (!(coll_cache_model_ == coll_)) {
      coll_cache_.clear();
      coll_cache_model_ = coll_;
    }
    if (const CollCosts* hit = coll_cache_.find(bytes, engine_.coll_cache_probes)) {
      base = hit->base;
      stages = hit->stages;
      have = true;
      ++engine_.coll_cache_hits;
    }
  }
  if (!have) {
    CollectiveShape shape{job_.spec().nodes, job_.spec().ranks_per_node, bytes};
    CollectiveCosts costs;
    costs.intra_stage = coll_.intra_stage;
    costs.software_stage = coll_.software_stage;
    costs.bandwidth_factor = k.network_bw_factor();
    if (net.kernel_involved_ops > 0.0) {
      costs.kernel_overhead_per_msg =
          k.network_syscall_overhead().scaled(net.kernel_involved_ops);
    }
    base = allreduce_base_cost(coll_.algo, shape, net, costs);
    const AllreduceAlgo algo =
        coll_.algo == AllreduceAlgo::kAuto ? allreduce_pick(shape) : coll_.algo;
    stages = static_cast<std::uint64_t>(allreduce_stages(algo, shape));
    if (fast_paths_) {
      ++engine_.coll_cache_misses;
      coll_cache_.insert(bytes, CollCosts{base, stages});
    }
  }
  coll_stages_ += stages;

  // Stall coupling: a rank stalled during (or just before) a blocking
  // collective stalls the whole dependency tree. Two regimes:
  //   * sub-critical — the stall ends, the collective completes: pay the
  //     sampled stall;
  //   * super-critical — once the expected number of further stalls arriving
  //     somewhere in the machine *during one stall* reaches one, every stall
  //     hands over to the next and the collective only completes at the
  //     stall-recovery bound (the component cap). This threshold in
  //     rate x duration x cores is the sharp Fig. 5b collapse; the LWKs'
  //     collective-noise model is empty, so they never enter it.
  const std::uint64_t cores = global_cores();
  const sim::TimeNs exposure = base + coll_.stall_exposure;
  sim::TimeNs stall = coll_extremes_.sample(exposure, cores, rng_, &noise_counters_).max;
  // A genuine stall event (not the sub-event mean floor of the sampler)
  // is on the scale of the component's mean duration.
  const double event_scale_ns = coll_extremes_.mean_duration_s() * 1e9 * 0.1;
  if (static_cast<double>(stall.ns()) > event_scale_ns) {
    const double stalls_per_stall = coll_extremes_.total_rate_hz() *
                                    coll_extremes_.mean_duration_s() *
                                    static_cast<double>(cores);
    const sim::TimeNs cap = coll_extremes_.max_cap();
    if (stalls_per_stall >= 1.0 && cap > stall) stall = cap;
  }
  coll_stall_ += stall;
  return base + stall;
}

void MpiWorld::allreduce(sim::Bytes bytes) {
  ++allreduces_;
  synchronize(global_cores(), collective_cost(bytes), SyncKind::kAllreduce);
}

void MpiWorld::barrier() { allreduce(8); }

void MpiWorld::halo_exchange(sim::Bytes bytes_per_msg, int neighbors) {
  MKOS_EXPECTS(neighbors >= 0);
  // Sends in opposite directions overlap; budget ceil(n/2) serialized
  // message times plus per-message kernel involvement.
  sim::TimeNs comm = message_cost(bytes_per_msg) * ((neighbors + 1) / 2);
  const auto& net = job_.machine().cluster.network();
  if (net.kernel_involved_ops > 0.0 && neighbors > 1) {
    comm += job_.kernel().network_syscall_overhead().scaled(
        net.kernel_involved_ops * (neighbors - (neighbors + 1) / 2));
  }
  // Neighborhood synchronization: skew is absorbed from a bounded set of
  // ranks, not the whole machine.
  const auto sync_cores = static_cast<std::uint64_t>(
      (neighbors + 1) * job_.spec().threads_per_rank);
  synchronize(sync_cores, comm, SyncKind::kHalo);
}

void MpiWorld::send_shift(sim::Bytes bytes) {
  synchronize(static_cast<std::uint64_t>(2 * job_.spec().threads_per_rank),
              message_cost(bytes), SyncKind::kShift);
}

sim::TimeNs MpiWorld::finish() {
  synchronize(global_cores(), sim::TimeNs{0}, SyncKind::kFinish);
  return clock_;
}

}  // namespace mkos::runtime
