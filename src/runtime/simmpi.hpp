#pragma once
// The bulk-synchronous MPI-like execution model.
//
// Applications drive this API from their timestep loops: accumulate per-rank
// work (roofline compute, heap churn, system calls), then synchronize with a
// communication operation. At each synchronization the world advances the
// global clock by the slowest rank's accumulated work — the maximum over all
// application cores of (deterministic work + sampled OS noise) — plus the
// communication cost.
//
// Collectives additionally model the noise/duration feedback: a rank stalled
// *during* an allreduce delays every stage that depends on it, lengthening
// the collective, which widens the exposure window, which raises the chance
// of another stall. The fixed point of that recurrence is benign when noise
// is light (LWKs) and collapses sharply once expected stalls-per-window
// crosses one (Linux at high node counts) — Fig. 5b's cliff.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "kernel/syscalls.hpp"
#include "mem/heap.hpp"
#include "runtime/collectives.hpp"
#include "runtime/job.hpp"
#include "runtime/noise_extremes.hpp"
#include "runtime/shm.hpp"
#include "sim/thread_safety.hpp"

namespace mkos::alloc {
class NodeAllocModel;
}

namespace mkos::runtime {

class ResilienceManager;

class MKOS_THREAD_CONFINED("one campaign cell task") MpiWorld {
 public:
  MpiWorld(Job& job, std::uint64_t noise_seed);

  // ------------------------------------------------------------ init / info
  /// MPI_Init: shared-memory segment mapping + runtime bring-up.
  void mpi_init(sim::Bytes shm_segment_bytes = 128 * sim::MiB);

  [[nodiscard]] int world_size() const { return job_.world_size(); }
  [[nodiscard]] Job& job() { return job_; }

  /// Refresh cached per-lane bandwidths after the setup phase changed
  /// placements. Called automatically by mpi_init().
  void refresh_lanes();

  /// Attach a fault/recovery manager: every synchronization window is closed
  /// against its fault timeline and the returned charge lands on the clock.
  /// nullptr (the default) detaches — the sync path then does no fault work
  /// at all, keeping fault-free runs bit-identical to pre-subsystem builds.
  void attach_resilience(ResilienceManager* mgr) { resilience_ = mgr; }
  /// Total extra time charged by the attached manager so far.
  [[nodiscard]] sim::TimeNs total_fault_wait() const { return fault_wait_; }

  /// Attach a kernel-allocator model: alloc_churn() then prices magazine
  /// and depot traffic through it. nullptr (the default) detaches —
  /// alloc_churn becomes a no-op, keeping model-free runs bit-identical to
  /// pre-subsystem builds.
  void attach_alloc(alloc::NodeAllocModel* model) { alloc_model_ = model; }
  /// Total allocator time charged across all lanes so far.
  [[nodiscard]] sim::TimeNs total_alloc_wait() const { return alloc_wait_; }

  // ------------------------------------------------- per-rank pending work
  /// Memory-bandwidth-bound work: every rank streams `bytes` through its
  /// placement-weighted effective bandwidth.
  void compute_bytes(sim::Bytes bytes_per_rank);
  /// Same, with a per-lane scale factor (repeated cyclically) for imbalanced
  /// decompositions — lane i streams bytes * scale[i % size].
  void compute_bytes_scaled(sim::Bytes bytes_per_rank,
                            const std::vector<double>& lane_scale);
  /// Fixed-duration work (identical on every rank).
  void compute_time(sim::TimeNs per_rank);
  /// Flop-bound work at the node's scalar rate, divided among ranks.
  void compute_flops(double flops_per_rank);
  /// Spin-wait loops calling sched_yield() (OpenMP barriers, MPI progress).
  void sched_yields(int count_per_rank);
  /// Generic system calls issued per rank (priced by kernel disposition).
  void syscall(kernel::Sys s, int count_per_rank, sim::Bytes payload = 256);
  /// Run a brk/sbrk sequence on every lane's heap (deltas in bytes), then
  /// touch the grown memory (Lulesh's allocation churn).
  void heap_cycle(std::span<const std::int64_t> deltas);
  /// Kernel-object allocation churn: every lane performs `pairs_per_rank`
  /// alloc/free pairs of `obj_bytes` objects through the attached allocator
  /// model (per-CPU magazines -> depot -> slab/vmem refill cascade). No-op
  /// when no model is attached.
  void alloc_churn(std::uint64_t pairs_per_rank, sim::Bytes obj_bytes);

  // -------------------------------------------------- synchronizing comms
  /// Tree allreduce of `bytes` (per rank) over the whole world.
  void allreduce(sim::Bytes bytes);
  /// Nearest-neighbour halo exchange: `neighbors` messages of `bytes` each.
  void halo_exchange(sim::Bytes bytes_per_msg, int neighbors);
  /// Global barrier (zero-byte allreduce).
  void barrier();
  /// Pairwise shift (ring / pencil transpose step): one large message.
  void send_shift(sim::Bytes bytes);

  // -------------------------------------------------------------- results
  /// Drain pending work (final sync) and return the slowest rank's clock.
  [[nodiscard]] sim::TimeNs finish();
  [[nodiscard]] sim::TimeNs elapsed() const { return clock_; }

  // ------------------------------------------------------------ statistics
  [[nodiscard]] std::uint64_t allreduce_count() const { return allreduces_; }
  /// Inter-node synchronization stages executed across all collectives
  /// (noise-exposure points; kAuto is resolved per shape before counting).
  [[nodiscard]] std::uint64_t collective_stage_count() const { return coll_stages_; }
  /// Cumulative stall time the collectives absorbed from coupled noise.
  [[nodiscard]] sim::TimeNs total_collective_stall() const { return coll_stall_; }
  [[nodiscard]] sim::TimeNs total_noise_wait() const { return noise_wait_; }
  [[nodiscard]] sim::TimeNs total_comm_time() const { return comm_time_; }
  [[nodiscard]] const ShmSetupResult& shm_setup() const { return shm_; }

  /// Collective-model constants (exposed for the ablation bench).
  struct CollectiveModel {
    sim::TimeNs intra_stage{600};    ///< shm reduce step within the node
    sim::TimeNs software_stage{900}; ///< per-stage software overhead
    /// Window around the collective during which a stall blocks it (entry
    /// skew + the blocking wait itself).
    sim::TimeNs stall_exposure{sim::microseconds(200)};
    /// Allreduce algorithm (kAuto = size-based, like production MPI).
    AllreduceAlgo algo = AllreduceAlgo::kAuto;

    friend bool operator==(const CollectiveModel&, const CollectiveModel&) = default;
  };
  [[nodiscard]] CollectiveModel& collective_model() { return coll_; }

  // ------------------------------------------------------- sampling engine
  /// Fast-path / cache hit counters of the hot-path sampling engine. Pure
  /// functions of the inputs (no wall-clock, no allocator addresses), so
  /// they live in the deterministic block of the run ledger.
  struct EngineCounters {
    std::uint64_t heap_fast_lanes = 0;    ///< lanes satisfied by cycle replay
    std::uint64_t heap_slow_lanes = 0;    ///< lanes simulated call-by-call
    std::uint64_t compute_uniform_fast = 0;  ///< compute ops folded to uniform
    std::uint64_t compute_lane_loops = 0;    ///< compute ops walked per lane
    std::uint64_t coll_cache_hits = 0;    ///< collective base-cost cache hits
    std::uint64_t coll_cache_misses = 0;
    std::uint64_t msg_cache_hits = 0;     ///< point-to-point cost cache hits
    std::uint64_t msg_cache_misses = 0;
    // Data-layout engine telemetry (DESIGN.md §13). Deliberately NOT part of
    // obs::record_world's ledger block — the pre-rewrite ledgers stay
    // byte-identical; bench/event_queue surfaces these as engine.cache.*.
    std::uint64_t coll_cache_probes = 0;  ///< open-table cells inspected
    std::uint64_t msg_cache_probes = 0;
    std::uint64_t heap_memo_hits = 0;     ///< whole brk cycles replayed from memo
    std::uint64_t heap_memo_misses = 0;   ///< symmetric cycles simulated + recorded
  };
  [[nodiscard]] const EngineCounters& engine_counters() const { return engine_; }
  /// Analytic-vs-exact draw tallies of the noise samplers for this world.
  [[nodiscard]] const kernel::SampleCounters& noise_counters() const {
    return noise_counters_;
  }
  /// Disable (or re-enable) every fast path and cost cache; the slow paths
  /// must produce bit-identical clocks — benches and tests verify this.
  void set_fast_paths(bool on);

  /// Where the slowest rank's time went (telemetry for reports/benches).
  struct PhaseBreakdown {
    sim::TimeNs compute{0};  ///< deterministic per-rank work
    sim::TimeNs noise{0};    ///< waiting on the slowest core's detours
    sim::TimeNs comm{0};     ///< network + collective time (incl. stalls)
  };
  [[nodiscard]] PhaseBreakdown breakdown() const {
    return PhaseBreakdown{compute_time_, noise_wait_, comm_time_};
  }

  /// Per-synchronization trace record (populated when tracing is enabled).
  enum class SyncKind : std::uint8_t { kAllreduce, kHalo, kShift, kFinish };
  struct SyncEvent {
    SyncKind kind;
    sim::TimeNs span;   ///< slowest lane's accumulated work in this window
    sim::TimeNs noise;  ///< sampled max detour across the sync scope
    sim::TimeNs comm;   ///< communication cost, including collective stalls
    sim::TimeNs clock;  ///< global clock after the event
  };
  /// Record every synchronization into an in-memory trace (off by default;
  /// the trace of a 60-iteration run is a few KiB).
  void enable_trace(bool on = true) { trace_enabled_ = on; }
  [[nodiscard]] const std::vector<SyncEvent>& trace() const { return trace_; }

 private:
  /// Number of application cores noise is drawn over for a global sync.
  [[nodiscard]] std::uint64_t global_cores() const;
  /// Close the pending window against `sync_cores`, then add `comm`.
  void synchronize(std::uint64_t sync_cores, sim::TimeNs comm,
                   SyncKind kind = SyncKind::kHalo);
  [[nodiscard]] sim::TimeNs message_cost(sim::Bytes bytes);
  [[nodiscard]] sim::TimeNs collective_cost(sim::Bytes bytes);

  Job& job_;
  NoiseExtremes extremes_;       ///< per-core compute-window noise
  NoiseExtremes coll_extremes_;  ///< collective-coupled interference
  sim::Rng rng_;
  CollectiveModel coll_;

  /// Structure-of-arrays lane state (DESIGN.md §13): the synchronize() max
  /// scan, compute_bytes accumulation and heap_cycle replay loop each stride
  /// one contiguous array instead of hopping between per-lane objects. The
  /// heap pointers are cached Process::heap() results — lanes live for the
  /// world's lifetime, so refresh_lanes() is the only invalidation point.
  struct LaneBlock {
    std::vector<double> gbps;              ///< effective bandwidth per lane
    std::vector<std::int64_t> pending_ns;  ///< accumulated work, raw ns
    std::vector<mem::HeapEngine*> heaps;

    [[nodiscard]] std::size_t size() const { return pending_ns.size(); }
  };
  LaneBlock lanes_;
  double min_lane_gbps_ = 0.0;
  bool lanes_uniform_ = false;  ///< all lanes share one effective bandwidth
  int avg_hops_ = 1;            ///< hop count of the average peer (hoisted)

  bool fast_paths_ = true;
  EngineCounters engine_;
  kernel::SampleCounters noise_counters_;

  /// Memoized cost-model outputs, keyed by message size — the only input
  /// that varies within a run (shape, network, kernel factors are fixed).
  /// Open-addressed, linear probing, power-of-two table at <= 1/2 load: the
  /// former linear scans paid up to kCap compares per lookup on cache-busy
  /// benches. Membership semantics (and so hit/miss counts) are unchanged.
  template <typename V>
  struct CostTable {
    static constexpr std::size_t kCap = 64;    ///< entries; past it, recompute
    static constexpr std::size_t kSlots = 128; ///< table cells (power of two)
    struct Cell {
      sim::Bytes key = 0;
      V value{};
      bool used = false;
    };
    std::vector<Cell> cells = std::vector<Cell>(kSlots);
    std::size_t count = 0;

    static std::size_t slot_of(sim::Bytes key) {
      auto x = static_cast<std::uint64_t>(key);
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdULL;
      x ^= x >> 33;
      return static_cast<std::size_t>(x) & (kSlots - 1);
    }
    /// `probes` tallies cells inspected (engine.cache.* telemetry).
    [[nodiscard]] const V* find(sim::Bytes key, std::uint64_t& probes) const {
      for (std::size_t i = slot_of(key);; i = (i + 1) & (kSlots - 1)) {
        ++probes;
        if (!cells[i].used) return nullptr;
        if (cells[i].key == key) return &cells[i].value;
      }
    }
    void insert(sim::Bytes key, const V& value) {
      if (count >= kCap) return;
      std::size_t i = slot_of(key);
      while (cells[i].used) i = (i + 1) & (kSlots - 1);
      cells[i] = Cell{key, value, true};
      ++count;
    }
    void clear() {
      std::fill(cells.begin(), cells.end(), Cell{});
      count = 0;
    }
  };
  struct CollCosts {
    sim::TimeNs base{0};
    std::uint64_t stages = 0;
  };
  CostTable<CollCosts> coll_cache_;
  CollectiveModel coll_cache_model_;  ///< model the cache was built against
  CostTable<sim::TimeNs> msg_cache_;

  /// Whole-cycle memo for heap_cycle (DESIGN.md §13): a symmetric cycle that
  /// proved state-neutral from fingerprint state (fp0, phys) replays its
  /// recorded cost and counter deltas for every lane — including the former
  /// representative — the next time the same deltas hit the same state.
  struct HeapCycleMemo {
    std::vector<std::int64_t> deltas;
    std::uint64_t fp0 = 0;
    std::uint64_t phys_fp = 0;
    int faulters = 0;
    sim::TimeNs cost0{0};
    mem::HeapStats delta;  ///< monotone-counter delta, applied to every lane
  };
  static constexpr std::size_t kHeapMemoCap = 16;
  std::vector<HeapCycleMemo> heap_memo_;
  [[nodiscard]] const HeapCycleMemo* find_heap_memo(
      std::span<const std::int64_t> deltas, std::uint64_t fp0,
      std::uint64_t phys_fp, int faulters) const;

  sim::TimeNs clock_{0};
  sim::TimeNs pending_uniform_{0};
  /// False while every lanes_.pending_ns entry is zero (the steady state in
  /// which all cost lands in pending_uniform_); lets synchronize() skip the
  /// per-lane max-and-clear scan entirely.
  bool lane_pending_dirty_ = false;

  sim::TimeNs noise_wait_{0};
  sim::TimeNs comm_time_{0};
  sim::TimeNs compute_time_{0};
  ResilienceManager* resilience_ = nullptr;
  sim::TimeNs fault_wait_{0};
  alloc::NodeAllocModel* alloc_model_ = nullptr;
  sim::TimeNs alloc_wait_{0};
  bool trace_enabled_ = false;
  std::vector<SyncEvent> trace_;
  std::uint64_t allreduces_ = 0;
  std::uint64_t coll_stages_ = 0;
  sim::TimeNs coll_stall_{0};
  ShmSetupResult shm_;
};

}  // namespace mkos::runtime
