#pragma once
// Minimal Expects()/Ensures() style contracts (C++ Core Guidelines I.6/I.8).
//
// Violations abort with a message; contracts stay on in release builds
// because the simulator's correctness is the product.

#include <cstdio>
#include <cstdlib>

namespace mkos::sim::detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "mkos: %s violated: %s (%s:%d)\n", kind, expr, file, line);
  std::abort();
}
}  // namespace mkos::sim::detail

#define MKOS_EXPECTS(cond)                                                         \
  ((cond) ? static_cast<void>(0)                                                   \
          : ::mkos::sim::detail::contract_failure("precondition", #cond, __FILE__, \
                                                  __LINE__))

#define MKOS_ENSURES(cond)                                                          \
  ((cond) ? static_cast<void>(0)                                                    \
          : ::mkos::sim::detail::contract_failure("postcondition", #cond, __FILE__, \
                                                  __LINE__))

#define MKOS_ASSERT(cond)                                                        \
  ((cond) ? static_cast<void>(0)                                                 \
          : ::mkos::sim::detail::contract_failure("invariant", #cond, __FILE__,  \
                                                  __LINE__))
