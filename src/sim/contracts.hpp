#pragma once
// Minimal Expects()/Ensures() style contracts (C++ Core Guidelines I.6/I.8).
//
// Violations abort with a message; contracts stay on in release builds
// because the simulator's correctness is the product.
//
// Two build-time switches refine that default:
//
//  * MKOS_CONTRACTS_THROW — violations throw mkos::sim::ContractViolation
//    instead of aborting. Meant for tests: EXPECT_THROW(..) replaces death
//    tests (which fork and interact badly with sanitizers and threads).
//    Translation units compiled without the macro keep abort semantics, so
//    enabling it for one test target never weakens the libraries.
//
//  * MKOS_AUDIT_ENABLED — compiles in MKOS_AUDIT(..) checks: expensive,
//    whole-structure invariant walks (free-list consistency, cache/grid
//    agreement) that are too slow for release hot paths. Off by default in
//    Release, on in Debug; toggle with -DMKOS_AUDIT=ON|OFF. When disabled
//    the condition is not evaluated (but still compiled, so it cannot rot).

#include <cstdio>
#include <cstdlib>

#ifdef MKOS_CONTRACTS_THROW
#include <stdexcept>
#include <string>
#endif

namespace mkos::sim {

#ifdef MKOS_CONTRACTS_THROW
/// Thrown on contract violation in MKOS_CONTRACTS_THROW builds. Derives
/// from std::logic_error: a violated contract is a programming error.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};
#endif

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
#ifdef MKOS_CONTRACTS_THROW
  // Built with append() to dodge GCC 12's -Wrestrict false positive on the
  // char* + std::string operator+ path.
  std::string msg("mkos: ");
  msg.append(kind).append(" violated: ").append(expr).append(" (").append(file);
  msg.append(":").append(std::to_string(line)).append(")");
  throw ContractViolation(msg);
#else
  std::fprintf(stderr, "mkos: %s violated: %s (%s:%d)\n", kind, expr, file, line);
  std::abort();
#endif
}
}  // namespace detail
}  // namespace mkos::sim

#define MKOS_EXPECTS(cond)                                                         \
  ((cond) ? static_cast<void>(0)                                                   \
          : ::mkos::sim::detail::contract_failure("precondition", #cond, __FILE__, \
                                                  __LINE__))

#define MKOS_ENSURES(cond)                                                          \
  ((cond) ? static_cast<void>(0)                                                    \
          : ::mkos::sim::detail::contract_failure("postcondition", #cond, __FILE__, \
                                                  __LINE__))

#define MKOS_ASSERT(cond)                                                        \
  ((cond) ? static_cast<void>(0)                                                 \
          : ::mkos::sim::detail::contract_failure("invariant", #cond, __FILE__,  \
                                                  __LINE__))

// Expensive invariant walk: evaluated only when MKOS_AUDIT_ENABLED. The
// disabled form still type-checks the condition (unevaluated sizeof), so an
// audit can never bit-rot out of sync with the code it checks.
#ifdef MKOS_AUDIT_ENABLED
#define MKOS_AUDIT(cond)                                                     \
  ((cond) ? static_cast<void>(0)                                             \
          : ::mkos::sim::detail::contract_failure("audit", #cond, __FILE__,  \
                                                  __LINE__))
#else
#define MKOS_AUDIT(cond) static_cast<void>(sizeof((cond) ? 1 : 0))
#endif
