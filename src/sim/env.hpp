#pragma once
// Strict environment / CLI integer parsing.
//
// std::atoi silently maps garbage to 0, so `MKOS_THREADS=all` used to mean
// "zero threads" and fall back to a default — a misconfiguration the user
// never hears about. Every env knob goes through env_int(): unset keeps the
// fallback, anything else must parse as a strict base-10 integer inside the
// caller's range or the process stops with an error naming the variable.
//
// Header-only on purpose: in MKOS_CONTRACTS_THROW test builds the failure
// path throws ContractViolation from the test's own translation unit, so
// bad-input behavior is testable with EXPECT_THROW instead of death tests.

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string_view>

#include "sim/contracts.hpp"

namespace mkos::sim {

/// Strict base-10 parse: optional +/- sign, then digits only — no leading or
/// trailing junk, no overflow past long long. Empty or invalid → nullopt.
inline std::optional<long long> parse_int(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::size_t i = 0;
  const bool negative = text[0] == '-';
  if (text[0] == '-' || text[0] == '+') ++i;
  if (i == text.size()) return std::nullopt;
  constexpr long long kMax = std::numeric_limits<long long>::max();
  long long magnitude = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return std::nullopt;
    const int digit = c - '0';
    if (magnitude > (kMax - digit) / 10) return std::nullopt;  // would overflow
    magnitude = magnitude * 10 + digit;
  }
  // -kMax - 1 (LLONG_MIN) is representable but its magnitude is not; treating
  // it as overflow keeps the loop simple and costs one value nobody passes.
  return negative ? -magnitude : magnitude;
}

namespace detail {
[[noreturn]] inline void env_failure(const char* name, const char* value,
                                     long long lo, long long hi) {
  char msg[256];
  std::snprintf(msg, sizeof msg, "%s='%s' (expected integer in [%lld, %lld])",
                name, value, lo, hi);
#ifdef MKOS_CONTRACTS_THROW
  std::string what("mkos: invalid environment: ");
  what.append(msg);
  throw ContractViolation(what);
#else
  std::fprintf(stderr, "mkos: invalid environment: %s\n", msg);
  std::exit(2);  // user input error, not a program bug: no abort/core
#endif
}
}  // namespace detail

/// `getenv(name)` parsed strictly. Unset → `fallback` (which need not lie in
/// [lo, hi]; e.g. a "use hardware concurrency" sentinel). Set but
/// non-numeric, overflowing, or outside [lo, hi] → clear error naming the
/// variable (exit(2), or ContractViolation under MKOS_CONTRACTS_THROW).
inline int env_int(const char* name, int fallback,
                   int lo = std::numeric_limits<int>::min(),
                   int hi = std::numeric_limits<int>::max()) {
  MKOS_EXPECTS(lo <= hi);
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const std::optional<long long> parsed = parse_int(value);
  if (!parsed || *parsed < lo || *parsed > hi) {
    detail::env_failure(name, value, lo, hi);
  }
  return static_cast<int>(*parsed);
}

}  // namespace mkos::sim
