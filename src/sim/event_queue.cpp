#include "sim/event_queue.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace mkos::sim {

EventId EventQueue::schedule_at(TimeNs at, Action action) {
  MKOS_EXPECTS(at >= now_);
  auto e = std::make_unique<Entry>(Entry{at, next_seq_++, next_id_++, std::move(action), false});
  Entry* raw = e.get();
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), Cmp{});
  index_.resize(std::max<std::size_t>(index_.size(), raw->id));
  index_[raw->id - 1] = raw;
  ++live_;
  return raw->id;
}

EventId EventQueue::schedule_after(TimeNs delay, Action action) {
  MKOS_EXPECTS(delay >= TimeNs{0});
  return schedule_at(now_ + delay, std::move(action));
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id > index_.size()) return false;
  Entry* e = index_[id - 1];
  if (e == nullptr || e->cancelled) return false;
  e->cancelled = true;
  e->action = nullptr;
  index_[id - 1] = nullptr;
  --live_;
  return true;
}

std::unique_ptr<EventQueue::Entry> EventQueue::pop_next() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Cmp{});
    std::unique_ptr<Entry> e = std::move(heap_.back());
    heap_.pop_back();
    if (e->cancelled) continue;
    return e;
  }
  return nullptr;
}

bool EventQueue::step() {
  const std::unique_ptr<Entry> e = pop_next();
  if (e == nullptr) return false;
  MKOS_ASSERT(e->at >= now_);
  now_ = e->at;
  index_[e->id - 1] = nullptr;
  --live_;
  ++executed_;
  const Action action = std::move(e->action);
  action();
  return true;
}

void EventQueue::run_until(TimeNs limit) {
  while (true) {
    while (!heap_.empty() && heap_.front()->cancelled) {
      std::pop_heap(heap_.begin(), heap_.end(), Cmp{});
      heap_.pop_back();
    }
    if (heap_.empty() || heap_.front()->at > limit) break;
    step();
  }
  now_ = std::max(now_, limit);
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace mkos::sim
