#include "sim/event_queue.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace mkos::sim {

namespace {
/// Compaction threshold: sweep when tombstones dominate and the heap is big
/// enough for the O(n) rebuild to matter. Deterministic — depends only on
/// the schedule/cancel history, never on the host.
constexpr std::size_t kCompactMinHeap = 64;
}  // namespace

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoSlot;
    return slot;
  }
  MKOS_ASSERT(slots_.size() < std::size_t{1} << 24);  // HeapItem::slot width
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.armed = false;
  s.action = nullptr;
  ++s.gen;  // stale ids for this slot now fail the generation check
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::sift_up(std::size_t i) {
  const HeapItem item = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!item_less(item, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = item;
}

void EventQueue::sift_down(std::size_t i) {
  const HeapItem item = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (item_less(heap_[c], heap_[best])) best = c;
    }
    if (!item_less(heap_[best], item)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = item;
}

void EventQueue::pop_root() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::compact_heap() {
  // Filter tombstones in place, then 4-ary heapify bottom-up. O(n) and a
  // pure function of queue history, so serial and pooled runs agree.
  std::size_t kept = 0;
  for (const HeapItem& it : heap_) {
    if (item_live(it)) heap_[kept++] = it;
  }
  heap_.resize(kept);
  if (kept > 1) {
    for (std::size_t i = (kept - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
  ++compactions_;
}

void EventQueue::skim_root() {
  while (!heap_.empty() && !item_live(heap_[0])) pop_root();
}

EventId EventQueue::schedule_at(TimeNs at, Action action) {
  MKOS_EXPECTS(at >= now_);
  if (heap_.size() > kCompactMinHeap && heap_.size() > 2 * live_) compact_heap();
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.at = at;
  s.seq = next_seq_++;
  s.action = std::move(action);
  s.armed = true;
  HeapItem it;
  it.at = at;
  it.seq = s.seq & kSeqMask;
  it.slot = slot;
  heap_.push_back(it);
  sift_up(heap_.size() - 1);
  ++live_;
  return (static_cast<EventId>(s.gen) << 32) | (slot + 1);
}

EventId EventQueue::schedule_after(TimeNs delay, Action action) {
  MKOS_EXPECTS(delay >= TimeNs{0});
  return schedule_at(now_ + delay, std::move(action));
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t low = static_cast<std::uint32_t>(id);
  if (low == 0 || low > slots_.size()) return false;
  const std::uint32_t slot = low - 1;
  Slot& s = slots_[slot];
  if (!s.armed || s.gen != static_cast<std::uint32_t>(id >> 32)) return false;
  release_slot(slot);  // the heap entry becomes a lazy tombstone
  --live_;
  return true;
}

bool EventQueue::step() {
  skim_root();
  if (heap_.empty()) return false;
  const HeapItem top = heap_[0];
  pop_root();
  Slot& s = slots_[top.slot];
  MKOS_ASSERT(s.at >= now_);
  now_ = s.at;
  // Move the payload out and release the slot *before* invoking: the action
  // may schedule new events and grow/reuse the slab under our feet.
  Action action = std::move(s.action);
  release_slot(static_cast<std::uint32_t>(top.slot));
  --live_;
  ++executed_;
  action();
  return true;
}

void EventQueue::run_until(TimeNs limit) {
  while (true) {
    skim_root();
    if (heap_.empty() || heap_[0].at > limit) break;
    step();
  }
  now_ = std::max(now_, limit);
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace mkos::sim
