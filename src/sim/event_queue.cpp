#include "sim/event_queue.hpp"

#include <algorithm>

#include "sim/contracts.hpp"

namespace mkos::sim {

EventQueue::~EventQueue() {
  for (Entry* e : heap_) delete e;
}

EventId EventQueue::schedule_at(TimeNs at, Action action) {
  MKOS_EXPECTS(at >= now_);
  auto* e = new Entry{at, next_seq_++, next_id_++, std::move(action), false};
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), Cmp{});
  index_.resize(std::max<std::size_t>(index_.size(), e->id));
  index_[e->id - 1] = e;
  ++live_;
  return e->id;
}

EventId EventQueue::schedule_after(TimeNs delay, Action action) {
  MKOS_EXPECTS(delay >= TimeNs{0});
  return schedule_at(now_ + delay, std::move(action));
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id > index_.size()) return false;
  Entry* e = index_[id - 1];
  if (e == nullptr || e->cancelled) return false;
  e->cancelled = true;
  e->action = nullptr;
  index_[id - 1] = nullptr;
  --live_;
  return true;
}

EventQueue::Entry* EventQueue::pop_next() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Cmp{});
    Entry* e = heap_.back();
    heap_.pop_back();
    if (e->cancelled) {
      delete e;
      continue;
    }
    return e;
  }
  return nullptr;
}

bool EventQueue::step() {
  Entry* e = pop_next();
  if (e == nullptr) return false;
  MKOS_ASSERT(e->at >= now_);
  now_ = e->at;
  index_[e->id - 1] = nullptr;
  --live_;
  ++executed_;
  Action action = std::move(e->action);
  delete e;
  action();
  return true;
}

void EventQueue::run_until(TimeNs limit) {
  while (true) {
    Entry* peek = nullptr;
    while (!heap_.empty() && heap_.front()->cancelled) {
      std::pop_heap(heap_.begin(), heap_.end(), Cmp{});
      delete heap_.back();
      heap_.pop_back();
    }
    if (!heap_.empty()) peek = heap_.front();
    if (peek == nullptr || peek->at > limit) break;
    step();
  }
  now_ = std::max(now_, limit);
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace mkos::sim
