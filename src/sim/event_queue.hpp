#pragma once
// Discrete-event engine.
//
// Most of the mkos performance pipeline advances per-rank clocks
// analytically, but several substrates are genuinely event-driven: the IKC
// inter-kernel channel, the cooperative/preemptive schedulers, the noise
// sources in their trace-producing mode, and the fault injector's timeline.
// This engine provides a classic time-ordered queue with stable FIFO
// ordering among simultaneous events and O(1) cancellation via handles.
//
// Layout (DESIGN.md §13): events live in a flat slab arena of Slots recycled
// through a freelist; ordering is a 4-ary implicit index heap over (at, seq)
// keys — one cache line per sift level instead of pointer-chasing
// unique_ptr heap nodes. EventIds carry the slot's generation in the high
// 32 bits, so a stale handle (executed, cancelled, or reused slot) fails an
// O(1) validity check instead of consulting an ever-growing id map.
// Cancellation disarms the slot and leaves a lazy tombstone in the heap;
// tombstones are skipped on pop and swept by a deterministic compaction
// when they outnumber live events.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/inplace_function.hpp"
#include "sim/thread_safety.hpp"
#include "sim/time.hpp"

namespace mkos::sim {

/// Opaque handle: (generation << 32) | (slot index + 1). 0 is never issued.
using EventId = std::uint64_t;

class MKOS_THREAD_CONFINED("the owning simulation task") EventQueue {
 public:
  using Action = InplaceAction;

  /// Schedule `action` at absolute time `at` (must be >= now()).
  EventId schedule_at(TimeNs at, Action action);

  /// Schedule `action` `delay` after now().
  EventId schedule_after(TimeNs delay, Action action);

  /// Cancel a pending event. Returns false if it already ran or was cancelled.
  bool cancel(EventId id);

  /// Run the next event; returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or the clock would pass `limit`.
  /// Events scheduled exactly at `limit` are executed.
  void run_until(TimeNs limit);

  /// Drain the queue completely.
  void run();

  [[nodiscard]] TimeNs now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Number of slots in the slab arena. Bounded by the peak pending() over
  /// the queue's lifetime (freelist reuse) — the memory-bound invariant
  /// long cancel/reschedule churn regression-tests against.
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

  /// Cumulative lazy-deletion tombstones swept by heap compaction — the
  /// engine.queue.* telemetry the event_queue microbench reports.
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffff'ffffU;

  struct Slot {
    TimeNs at{0};
    std::uint64_t seq = 0;       // global, never reused: staleness witness
    Action action;
    std::uint32_t gen = 0;       // bumped on every release; high bits of the id
    std::uint32_t next_free = kNoSlot;
    bool armed = false;
  };
  /// Heap entries are 16-byte POD keys; the payload stays in the slab.
  struct HeapItem {
    TimeNs at;
    std::uint64_t seq : 40;  // 2^40 events per queue; seq is the slot's witness
    std::uint64_t slot : 24;
  };

  static bool item_less(const HeapItem& a, const HeapItem& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
  [[nodiscard]] bool item_live(const HeapItem& it) const {
    const Slot& s = slots_[it.slot];
    return s.armed && (s.seq & kSeqMask) == it.seq;
  }

  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << 40) - 1;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void pop_root();
  void compact_heap();
  /// Drop stale tombstones off the heap root; leaves a live root or empty.
  void skim_root();

  TimeNs now_{0};
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint32_t free_head_ = kNoSlot;
  std::vector<Slot> slots_;
  std::vector<HeapItem> heap_;
};

}  // namespace mkos::sim
