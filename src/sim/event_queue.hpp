#pragma once
// Discrete-event engine.
//
// Most of the mkos performance pipeline advances per-rank clocks
// analytically, but several substrates are genuinely event-driven: the IKC
// inter-kernel channel, the cooperative/preemptive schedulers, and the noise
// sources in their trace-producing mode. This engine provides a classic
// time-ordered queue with stable FIFO ordering among simultaneous events and
// O(log n) cancellation via handles.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace mkos::sim {

using EventId = std::uint64_t;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute time `at` (must be >= now()).
  EventId schedule_at(TimeNs at, Action action);

  /// Schedule `action` `delay` after now().
  EventId schedule_after(TimeNs delay, Action action);

  /// Cancel a pending event. Returns false if it already ran or was cancelled.
  bool cancel(EventId id);

  /// Run the next event; returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or the clock would pass `limit`.
  /// Events scheduled exactly at `limit` are executed.
  void run_until(TimeNs limit);

  /// Drain the queue completely.
  void run();

  [[nodiscard]] TimeNs now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    TimeNs at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventId id;
    Action action;
    bool cancelled = false;
  };
  struct Cmp {
    bool operator()(const std::unique_ptr<Entry>& a, const std::unique_ptr<Entry>& b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  TimeNs now_{0};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  std::uint64_t executed_ = 0;
  // Owning heap: cancelled-but-unpopped entries are reclaimed with the queue,
  // never leaked on early destruction.
  std::vector<std::unique_ptr<Entry>> heap_;

 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

 private:
  std::unique_ptr<Entry> pop_next();
  std::vector<Entry*> index_;  // id -> entry (sparse by id - 1, non-owning), nulled when done
};

}  // namespace mkos::sim
