#include "sim/format.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "sim/contracts.hpp"

namespace mkos::sim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      out += "| ";
      if (c == 0) {
        out += row[c];
        out.append(pad, ' ');
      } else {
        out.append(pad, ' ');
        out += row[c];
      }
      out += ' ';
    }
    out += "|\n";
  };
  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (const char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  };
  std::string out;
  emit(headers_, out);
  for (const auto& row : rows_) emit(row, out);
  return out;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string fmt_pct(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, ratio * 100.0);
  return buf;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    const auto byte = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", byte);
          out += buf;
        } else {
          out += ch;
        }
        break;
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  MKOS_ENSURES(res.ec == std::errc{});
  return std::string(buf, res.ptr);
}

JsonObject& JsonObject::number(const std::string& key, double v) {
  fields_.push_back(json_quote(key) + ": " + json_number(v));
  return *this;
}

JsonObject& JsonObject::integer(const std::string& key, std::int64_t v) {
  fields_.push_back(json_quote(key) + ": " + std::to_string(v));
  return *this;
}

JsonObject& JsonObject::text(const std::string& key, const std::string& v) {
  fields_.push_back(json_quote(key) + ": " + json_quote(v));
  return *this;
}

JsonObject& JsonObject::boolean(const std::string& key, bool v) {
  fields_.push_back(json_quote(key) + ": " + (v ? "true" : "false"));
  return *this;
}

JsonObject& JsonObject::raw(const std::string& key, const std::string& json) {
  fields_.push_back(json_quote(key) + ": " + json);
  return *this;
}

std::string JsonObject::to_string() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    out += "  " + fields_[i];
    if (i + 1 < fields_.size()) out += ',';
    out += '\n';
  }
  out += "}\n";
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

void print_banner(const std::string& title, const std::string& paper_ref) {
  std::string bar(72, '=');
  std::printf("%s\n%s\n  (%s)\n%s\n", bar.c_str(), title.c_str(), paper_ref.c_str(),
              bar.c_str());
}

}  // namespace mkos::sim
