#pragma once
// ASCII table / number formatting / strict-JSON emission primitives.
//
// This is the serialization bedrock shared by the run ledger (obs/) and the
// bench harness report layer (core/report.hpp re-exports these names into
// mkos::core for its callers). It lives in sim/ — the bottom layer — so that
// obs can emit JSON/CSV without an upward include of core, keeping the
// module include graph acyclic (enforced by mkos-lint's layering phase
// against tools/layering.rules).

#include <cstdint>
#include <string>
#include <vector>

namespace mkos::sim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Render with aligned columns (first column left-, rest right-aligned).
  [[nodiscard]] std::string to_string() const;

  /// RFC-4180-style CSV (quotes cells containing commas/quotes/newlines).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double ("12.34").
[[nodiscard]] std::string fmt(double v, int precision = 2);
/// Scientific ("1.23e+07").
[[nodiscard]] std::string fmt_sci(double v, int precision = 2);
/// Percentage of 1.0 ("121.0%").
[[nodiscard]] std::string fmt_pct(double ratio, int precision = 1);

/// Section banner used by every bench binary.
void print_banner(const std::string& title, const std::string& paper_ref);

/// RFC 8259 string literal: wraps in quotes, escapes `"` and `\`, and all
/// control characters below 0x20 (`\b \f \n \r \t` shortcuts, `\u00XX`
/// otherwise) so the output always parses under a strict JSON reader.
[[nodiscard]] std::string json_quote(const std::string& s);

/// Shortest round-trip decimal for a double (std::to_chars); non-finite
/// values serialize as `null` — bare `nan`/`inf` are not valid JSON.
[[nodiscard]] std::string json_number(double v);

/// JSON object builder for machine-readable perf artifacts (BENCH_*.json):
/// insertion-ordered key/value pairs; nested objects/arrays attach via raw().
class JsonObject {
 public:
  JsonObject& number(const std::string& key, double v);
  JsonObject& integer(const std::string& key, std::int64_t v);
  JsonObject& text(const std::string& key, const std::string& v);
  JsonObject& boolean(const std::string& key, bool v);
  /// Attach pre-serialized JSON (object/array/literal) under `key`.
  JsonObject& raw(const std::string& key, const std::string& json);

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> fields_;
};

/// Write `content` to `path` (truncating); returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace mkos::sim
