#include "sim/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/contracts.hpp"

namespace mkos::sim {

Histogram::Histogram(double min_value, double max_value, int bins_per_decade)
    : min_value_(min_value),
      max_value_(max_value),
      log_min_(std::log10(min_value)),
      bins_per_decade_(bins_per_decade) {
  MKOS_EXPECTS(min_value > 0.0);
  MKOS_EXPECTS(max_value > min_value);
  MKOS_EXPECTS(bins_per_decade >= 1);
  const double decades = std::log10(max_value) - log_min_;
  counts_.assign(static_cast<std::size_t>(std::ceil(decades * bins_per_decade)), 0);
  MKOS_ENSURES(!counts_.empty());
}

void Histogram::add(double v, std::uint64_t count) {
  total_ += count;
  if (v < min_value_) {
    underflow_ += count;
    return;
  }
  auto idx = static_cast<std::size_t>((std::log10(v) - log_min_) * bins_per_decade_);
  if (idx >= counts_.size()) {
    // A value at (or rounding onto) the declared upper bound is in range:
    // clamp it into the top bin instead of miscounting it as overflow.
    if (v > max_value_) {
      overflow_ += count;
      return;
    }
    idx = counts_.size() - 1;
  }
  counts_[idx] += count;
}

void Histogram::merge(const Histogram& other) {
  MKOS_EXPECTS(counts_.size() == other.counts_.size());
  MKOS_EXPECTS(min_value_ == other.min_value_);
  MKOS_EXPECTS(bins_per_decade_ == other.bins_per_decade_);
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

void Histogram::add_bin_raw(std::size_t i, std::uint64_t count) {
  MKOS_EXPECTS(i < counts_.size());
  counts_[i] += count;
  total_ += count;
}

void Histogram::add_underflow_raw(std::uint64_t count) {
  underflow_ += count;
  total_ += count;
}

void Histogram::add_overflow_raw(std::uint64_t count) {
  overflow_ += count;
  total_ += count;
}

double Histogram::bin_lower(std::size_t i) const {
  return std::pow(10.0, log_min_ + static_cast<double>(i) / bins_per_decade_);
}

double Histogram::quantile(double q) const {
  MKOS_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  const std::uint64_t binned = total_ - underflow_ - overflow_;
  if (binned == 0) {
    // No in-range mass at all. Saturate at the edge holding the requested
    // mass; with pure overflow every quantile honestly reports the top edge
    // (the true value lies above it — callers see overflow() alongside).
    return (underflow_ > 0 && target <= static_cast<double>(underflow_))
               ? min_value_
               : bin_upper(counts_.size() - 1);
  }
  double seen = static_cast<double>(underflow_);
  if (target <= seen) return min_value_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = seen + static_cast<double>(counts_[i]);
    if (target <= next) {
      // An empty bin can only satisfy the target exactly at its boundary:
      // resolve to the bin's lower edge (== upper edge of the last mass)
      // instead of skipping ahead into a later bin.
      if (counts_[i] == 0) return bin_lower(i);
      const double frac = (target - seen) / static_cast<double>(counts_[i]);
      return bin_lower(i) + frac * (bin_upper(i) - bin_lower(i));
    }
    seen = next;
  }
  // The requested mass sits in the overflow tail: saturate at the top edge.
  return bin_upper(counts_.size() - 1);
}

std::string Histogram::to_string(int width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const int bar = static_cast<int>(static_cast<double>(counts_[i]) /
                                     static_cast<double>(peak) * width);
    std::snprintf(buf, sizeof buf, "%10.3g - %-10.3g %8llu |", bin_lower(i),
                  bin_upper(i), static_cast<unsigned long long>(counts_[i]));
    out += buf;
    out.append(static_cast<std::size_t>(std::max(bar, 1)), '#');
    out += '\n';
  }
  if (underflow_ > 0) {
    std::snprintf(buf, sizeof buf, "underflow: %llu\n",
                  static_cast<unsigned long long>(underflow_));
    out += buf;
  }
  if (overflow_ > 0) {
    std::snprintf(buf, sizeof buf, "overflow: %llu\n",
                  static_cast<unsigned long long>(overflow_));
    out += buf;
  }
  return out;
}

}  // namespace mkos::sim
