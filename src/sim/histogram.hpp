#pragma once
// Log-binned histogram for latency/duration distributions.
//
// Noise detours and collective stalls span six orders of magnitude
// (sub-microsecond housekeeping to tens-of-milliseconds stalls); log bins
// keep the resolution proportional everywhere. Used by the noise ablation
// and available to users profiling their own models.

#include <cstdint>
#include <string>
#include <vector>

namespace mkos::sim {

class Histogram {
 public:
  /// Bins cover [min_value, max_value] with `bins_per_decade` log bins;
  /// values outside the range are tracked as under/overflow. The top bin is
  /// closed: add(max_value) lands in the last bin, not in overflow.
  Histogram(double min_value, double max_value, int bins_per_decade = 8);

  void add(double v, std::uint64_t count = 1);

  /// Bin-wise accumulation of another histogram with the identical shape
  /// (same min_value and bins_per_decade, same bin count). Commutative, so
  /// positional merges of per-task histograms are order-independent.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bin_lower(std::size_t i) const;
  [[nodiscard]] double bin_upper(std::size_t i) const { return bin_lower(i + 1); }
  [[nodiscard]] double min_value() const { return min_value_; }
  [[nodiscard]] double max_value() const { return max_value_; }
  /// The shape argument the histogram was constructed with (exact: stored
  /// from the ctor's int), so a serializer can rebuild an identical shape.
  [[nodiscard]] int bins_per_decade() const {
    return static_cast<int>(bins_per_decade_);
  }

  // Deserialization support (campaign cell store): accumulate raw counts
  // into a specific bin / the under- or overflow tails, bypassing value
  // binning. `total()` is maintained, so restoring every serialized count
  // reproduces the source histogram bit-for-bit.
  void add_bin_raw(std::size_t i, std::uint64_t count);
  void add_underflow_raw(std::uint64_t count);
  void add_overflow_raw(std::uint64_t count);

  /// Quantile estimate (linear within the containing log bin), q in [0,1].
  /// Quantiles landing in the overflow tail saturate at the top bin edge —
  /// report overflow() alongside to keep saturated values honest.
  [[nodiscard]] double quantile(double q) const;

  /// Compact ASCII rendering (one line per non-empty bin).
  [[nodiscard]] std::string to_string(int width = 40) const;

 private:
  double min_value_;
  double max_value_;
  double log_min_;
  double bins_per_decade_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace mkos::sim
