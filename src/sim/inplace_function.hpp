#pragma once
// Small-buffer move-only callable: the event arena's Action type.
//
// The discrete-event engine stores one callback per event slot. With
// std::function every schedule_at() risked a heap allocation and carried
// copy-ability machinery no caller uses. InplaceAction keeps the capture
// block inline in the slot for the common sizes (IKC requests, scheduler
// thunks, noise closures — all well under 64 bytes) and falls back to a
// single heap cell for oversized captures. Move-only by design: events are
// scheduled once and executed once.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/contracts.hpp"

namespace mkos::sim {

class InplaceAction {
 public:
  /// Sized to hold an IkcQueue response closure (`this` + Request with its
  /// std::function handler) without spilling: the hottest event payload.
  static constexpr std::size_t kInlineBytes = 64;

  InplaceAction() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  InplaceAction(std::nullptr_t) {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceAction> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  InplaceAction(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InplaceAction(InplaceAction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  InplaceAction& operator=(InplaceAction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InplaceAction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InplaceAction(const InplaceAction&) = delete;
  InplaceAction& operator=(const InplaceAction&) = delete;

  ~InplaceAction() { reset(); }

  void operator()() {
    MKOS_EXPECTS(ops_ != nullptr);
    ops_->invoke(buf_);
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-construct the payload into `dst`, then destroy it in `self`.
    void (*relocate)(void* self, void* dst) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* self) { (*static_cast<D*>(self))(); },
      [](void* self, void* dst) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(self)));
        static_cast<D*>(self)->~D();
      },
      [](void* self) noexcept { static_cast<D*>(self)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* self) { (**static_cast<D**>(self))(); },
      [](void* self, void* dst) noexcept {
        ::new (dst) D*(*static_cast<D**>(self));
      },
      [](void* self) noexcept { delete *static_cast<D**>(self); },
  };

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace mkos::sim
