#include "sim/json.hpp"

#include <cerrno>
#include <cstdlib>

namespace mkos::sim {

std::optional<double> JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(scalar_.c_str(), &end);
  if (end != scalar_.c_str() + scalar_.size() || errno == ERANGE) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> JsonValue::as_u64() const {
  if (kind_ != Kind::kNumber) return std::nullopt;
  // Integer token only: a fraction or exponent means the emitter used
  // json_number, and treating 1e3 as 1 would corrupt counters silently.
  if (scalar_.empty() || scalar_.find_first_of(".eE-") != std::string::npos) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(scalar_.c_str(), &end, 10);
  if (end != scalar_.c_str() + scalar_.size() || errno == ERANGE) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::optional<std::int64_t> JsonValue::as_i64() const {
  if (kind_ != Kind::kNumber) return std::nullopt;
  if (scalar_.empty() || scalar_.find_first_of(".eE") != std::string::npos) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(scalar_.c_str(), &end, 10);
  if (end != scalar_.c_str() + scalar_.size() || errno == ERANGE) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

/// Recursive-descent parser over the raw bytes. Depth is bounded so a
/// maliciously nested (or bit-flipped) store entry cannot blow the stack.
class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue root;
    if (!value(root, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      set_error("trailing content after the document");
      return std::nullopt;
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;

  void set_error(const std::string& why) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = why + " at byte " + std::to_string(pos_);
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool expect_literal(const char* word, JsonValue& out, JsonValue::Kind kind,
                      bool bool_value) {
    for (const char* w = word; *w != '\0'; ++w, ++pos_) {
      if (at_end() || peek() != *w) {
        set_error(std::string("invalid literal (expected '") + word + "')");
        return false;
      }
    }
    out.kind_ = kind;
    out.bool_ = bool_value;
    return true;
  }

  bool value(JsonValue& out, int depth) {  // NOLINT(misc-no-recursion)
    if (depth > kMaxDepth) {
      set_error("nesting deeper than 64 levels");
      return false;
    }
    if (at_end()) {
      set_error("unexpected end of input");
      return false;
    }
    switch (peek()) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"': out.kind_ = JsonValue::Kind::kString; return string(&out.scalar_);
      case 't': return expect_literal("true", out, JsonValue::Kind::kBool, true);
      case 'f': return expect_literal("false", out, JsonValue::Kind::kBool, false);
      case 'n': return expect_literal("null", out, JsonValue::Kind::kNull, false);
      default: return number(out);
    }
  }

  bool object(JsonValue& out, int depth) {  // NOLINT(misc-no-recursion)
    out.kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (at_end() || peek() != ':') {
        set_error("expected ':' after object key");
        return false;
      }
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!value(member, depth + 1)) return false;
      out.object_.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (at_end()) {
        set_error("unterminated object");
        return false;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      if (peek() != ',') {
        set_error("expected ',' or '}' in object");
        return false;
      }
      ++pos_;
    }
  }

  bool array(JsonValue& out, int depth) {  // NOLINT(misc-no-recursion)
    out.kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue item;
      if (!value(item, depth + 1)) return false;
      out.array_.push_back(std::move(item));
      skip_ws();
      if (at_end()) {
        set_error("unterminated array");
        return false;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      if (peek() != ',') {
        set_error("expected ',' or ']' in array");
        return false;
      }
      ++pos_;
    }
  }

  static int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  /// Append `code` (a Unicode scalar value) to `out` as UTF-8.
  static void append_utf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool string(std::string* out) {
    if (at_end() || peek() != '"') {
      set_error("expected string");
      return false;
    }
    ++pos_;
    while (!at_end()) {
      const auto c = static_cast<unsigned char>(peek());
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        set_error("unescaped control character in string");
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (at_end()) break;
        switch (peek()) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              ++pos_;
              if (at_end()) {
                set_error("truncated \\u escape");
                return false;
              }
              const int h = hex_digit(peek());
              if (h < 0) {
                set_error("bad hex digit in \\u escape");
                return false;
              }
              code = code * 16 + static_cast<unsigned>(h);
            }
            // The emitter only writes \u00XX control escapes; surrogate
            // pairs never occur in our documents, so lone surrogates fail.
            if (code >= 0xD800 && code <= 0xDFFF) {
              set_error("surrogate \\u escape unsupported");
              return false;
            }
            append_utf8(out, code);
            break;
          }
          default: set_error("invalid escape in string"); return false;
        }
        ++pos_;
      } else {
        *out += static_cast<char>(c);
        ++pos_;
      }
    }
    set_error("unterminated string");
    return false;
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    auto digit = [&] {
      return !at_end() && peek() >= '0' && peek() <= '9';
    };
    if (!at_end() && peek() == '-') ++pos_;
    if (!digit()) {
      set_error("invalid number");
      return false;
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (!digit()) {
        set_error("digits required after decimal point");
        return false;
      }
      while (digit()) ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digit()) {
        set_error("digits required in exponent");
        return false;
      }
      while (digit()) ++pos_;
    }
    out.kind_ = JsonValue::Kind::kNumber;
    out.scalar_ = text_.substr(start, pos_ - start);
    return true;
  }
};

std::optional<JsonValue> json_parse(const std::string& text, std::string* error) {
  if (error != nullptr) error->clear();
  return JsonParser(text, error).run();
}

}  // namespace mkos::sim
