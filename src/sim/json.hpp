#pragma once
// Strict RFC 8259 JSON parsing into an order-preserving DOM.
//
// Counterpart of the emission side in sim/format.hpp (json_quote /
// json_number / JsonObject). Production code historically only *emitted*
// JSON; the campaign cell store (core/cell_store.*) reads its own artifacts
// back, so parsing now lives here in sim/ — the bottom layer — next to the
// emitter whose output it must round-trip.
//
// Fidelity rules the cell store depends on:
//  - Object members keep document order (vector of pairs, no hashing), so a
//    reconstructed RunLedger serializes its sections byte-identically.
//  - Numbers keep their raw token. `as_u64` parses integers without a
//    double round-trip (counters above 2^53 survive), while `as_double` on
//    a token emitted by json_number() recovers the exact bits (shortest
//    round-trip representation both ways).
//  - The grammar is strict: trailing commas, bare nan/inf, unescaped
//    control characters and trailing junk all fail the parse, so a
//    truncated or bit-flipped store entry reads as corrupt, never as data.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mkos::sim {

class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Decoded bytes of a string value (empty for other kinds).
  [[nodiscard]] const std::string& as_string() const { return scalar_; }
  [[nodiscard]] bool as_bool() const { return bool_; }

  /// Numeric views of a number token. Non-number kinds and out-of-range
  /// tokens return nullopt; `as_double` accepts any grammar-valid token.
  [[nodiscard]] std::optional<double> as_double() const;
  [[nodiscard]] std::optional<std::uint64_t> as_u64() const;
  [[nodiscard]] std::optional<std::int64_t> as_i64() const;

  /// The untouched number token ("1.25e-3"); empty for other kinds.
  [[nodiscard]] const std::string& number_token() const { return scalar_; }

  [[nodiscard]] const std::vector<JsonValue>& items() const { return array_; }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }
  /// First member with this key (documents the store emits never repeat
  /// keys); nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  ///< decoded string bytes, or the raw number token
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parse exactly one JSON document (leading/trailing whitespace allowed,
/// anything else after the value is an error). On failure returns nullopt
/// and, when `error` is non-null, a one-line reason with byte offset.
[[nodiscard]] std::optional<JsonValue> json_parse(const std::string& text,
                                                  std::string* error = nullptr);

}  // namespace mkos::sim
