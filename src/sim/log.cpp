#include "sim/log.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "sim/time.hpp"
#include "sim/units.hpp"

namespace mkos::sim {

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view msg) {
    const char* tag = level == LogLevel::kWarn ? "WARN" : level == LogLevel::kInfo ? "INFO" : "DEBUG";
    std::fprintf(stderr, "[mkos %s] %.*s\n", tag, static_cast<int>(msg.size()), msg.data());
  };
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
    return;
  }
  const LogLevel keep = level_;
  *this = Logger{};  // restore the default stderr sink
  level_ = keep;
}

void Logger::write(LogLevel level, std::string_view msg) {
  if (enabled(level)) sink_(level, msg);
}

std::string to_string(TimeNs t) {
  char buf[64];
  const double ns = static_cast<double>(t.ns());
  const double a = std::fabs(ns);
  if (a < 1e3) {
    std::snprintf(buf, sizeof buf, "%" PRId64 " ns", t.ns());
  } else if (a < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f us", ns * 1e-3);
  } else if (a < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f ms", ns * 1e-6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", ns * 1e-9);
  }
  return buf;
}

std::string bytes_to_string(Bytes b) {
  char buf[64];
  if (b < KiB) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(b));
  } else if (b < MiB) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", static_cast<double>(b) / static_cast<double>(KiB));
  } else if (b < GiB) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", static_cast<double>(b) / static_cast<double>(MiB));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f GiB", static_cast<double>(b) / static_cast<double>(GiB));
  }
  return buf;
}

}  // namespace mkos::sim
