#pragma once
// Leveled logging for simulator internals.
//
// Off by default so benches stay quiet; tests and examples flip the level to
// inspect kernel decisions (placement, offload routing, noise events).

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace mkos::sim {

enum class LogLevel { kOff = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// The process-wide logger used by kernel models. Intentionally a single
  /// mutable service object (exception to I.2 noted: logging is cross-cutting).
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Replace the sink (default: stderr). Pass nullptr to restore the default.
  void set_sink(Sink sink);

  void write(LogLevel level, std::string_view msg);

  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) <= static_cast<int>(level_) && level_ != LogLevel::kOff;
  }

 private:
  Logger();
  LogLevel level_ = LogLevel::kOff;
  Sink sink_;
};

namespace detail {
template <typename... Args>
void log(LogLevel level, Args&&... args) {
  Logger& lg = Logger::instance();
  if (!lg.enabled(level)) return;
  std::ostringstream os;
  (os << ... << args);
  lg.write(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_warn(Args&&... args) { detail::log(LogLevel::kWarn, std::forward<Args>(args)...); }
template <typename... Args>
void log_info(Args&&... args) { detail::log(LogLevel::kInfo, std::forward<Args>(args)...); }
template <typename... Args>
void log_debug(Args&&... args) { detail::log(LogLevel::kDebug, std::forward<Args>(args)...); }

}  // namespace mkos::sim
