#include "sim/rng.hpp"

#include <cmath>

#include "sim/contracts.hpp"

namespace mkos::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MKOS_EXPECTS(lo <= hi);
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  MKOS_EXPECTS(n > 0);
  // Rejection-free modulo is fine for simulation purposes (bias < 2^-53).
  return next_u64() % n;
}

double Rng::exponential(double mean) {
  MKOS_EXPECTS(mean > 0);
  double u = next_double();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::lognormal(double median, double sigma) {
  MKOS_EXPECTS(median > 0 && sigma > 0);
  // Box-Muller.
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return median * std::exp(sigma * z);
}

double Rng::normal(double mean, double stddev) {
  MKOS_EXPECTS(stddev >= 0);
  // Box-Muller (cosine branch; the sine twin is discarded to keep the
  // draw count a fixed two uniforms per call).
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

double Rng::gamma(double shape, double scale) {
  MKOS_EXPECTS(shape > 0 && scale > 0);
  if (shape < 1.0) {
    // Boost: if G ~ Gamma(shape + 1) and U uniform, G * U^(1/shape) is
    // Gamma(shape).
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000): squeeze-accept on a transformed normal.
  // Acceptance probability is > 95% across all shapes, so the expected
  // draw count is a small constant even for shape in the millions.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal(0.0, 1.0);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v * scale;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

double Rng::exponential_sum(std::uint64_t n, double mean) {
  MKOS_EXPECTS(mean > 0);
  if (n == 0) return 0.0;
  if (n == 1) return exponential(mean);
  return gamma(static_cast<double>(n), mean);
}

double Rng::pareto(double xm, double alpha) {
  MKOS_EXPECTS(xm > 0 && alpha > 0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::poisson(double mean) {
  MKOS_EXPECTS(mean >= 0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Inversion by sequential search.
    const double limit = std::exp(-mean);
    double prod = next_double();
    std::uint64_t n = 0;
    while (prod > limit) {
      prod *= next_double();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction; adequate for noise
  // event counts where mean is large and individual counts are summed anyway.
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double v = mean + std::sqrt(mean) * z + 0.5;
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

void Rng::fill_poisson(std::span<const double> means, std::span<std::uint64_t> out) {
  MKOS_EXPECTS(out.size() == means.size());
  for (std::size_t i = 0; i < means.size(); ++i) out[i] = poisson(means[i]);
}

void Rng::fill_exponential_sums(std::span<const std::uint64_t> counts, double mean,
                                std::span<double> out) {
  MKOS_EXPECTS(out.size() == counts.size());
  MKOS_EXPECTS(mean > 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = counts[i] == 0 ? 0.0 : exponential_sum(counts[i], mean);
  }
}

void Rng::fill_normal_sums(std::span<const std::uint64_t> counts, double m1,
                           double var1, std::span<double> out) {
  MKOS_EXPECTS(out.size() == counts.size());
  MKOS_EXPECTS(var1 >= 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      out[i] = 0.0;
      continue;
    }
    const double nd = static_cast<double>(counts[i]);
    out[i] = normal(m1 * nd, std::sqrt(var1 * nd));
  }
}

Rng Rng::fork(std::uint64_t tag) const {
  // Mix the child tag with the parent state; deterministic and independent
  // of how many numbers the parent has drawn since construction is captured
  // in s_[0..3].
  std::uint64_t x = s_[0] ^ rotl(s_[2], 13) ^ (tag * 0x9e3779b97f4a7c15ULL);
  return Rng{splitmix64(x)};
}

}  // namespace mkos::sim
