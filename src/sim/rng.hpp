#pragma once
// Deterministic random number generation for the simulator.
//
// xoshiro256** seeded via splitmix64. Experiments derive per-rank / per-node
// streams with `fork(tag)` so that results are reproducible regardless of the
// order in which model components draw numbers.

#include <cstdint>
#include <span>

#include "sim/time.hpp"

namespace mkos::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Log-normal parameterized by the median and the shape sigma (> 0).
  double lognormal(double median, double sigma);

  /// Normal with the given mean and standard deviation (>= 0).
  double normal(double mean, double stddev);

  /// Gamma with the given shape k (> 0) and scale theta (> 0), via
  /// Marsaglia-Tsang squeeze rejection: O(1) draws regardless of shape.
  /// Gamma(n, mu) is exactly the distribution of the sum of n iid
  /// Exponential(mu) variates — the batched-draw primitive of the hot-path
  /// sampling engine (one call replaces n exponential() calls).
  double gamma(double shape, double scale);

  /// Sum of n iid Exponential(mean) draws in O(1): a single Gamma(n, mean)
  /// variate. Exact in distribution for every n >= 1.
  double exponential_sum(std::uint64_t n, double mean);

  /// Pareto with scale xm (> 0) and shape alpha (> 0); heavy tail for alpha <= 2.
  double pareto(double xm, double alpha);

  /// Number of Poisson arrivals with the given expected count (>= 0).
  /// Uses inversion for small means and a normal approximation for large ones.
  std::uint64_t poisson(double mean);

  // Batched draw primitives. Each fill consumes the stream in index order,
  // drawing nothing for zero-count / zero-mean elements, so a fill over a
  // batch is stream-equivalent to the corresponding scalar loop. New callers
  // only: routing an existing scalar call site through a fill must not change
  // the values it produces (it does not), but batching restructures *who*
  // draws, so hot paths that feed ledgered gauges keep their scalar loops.

  /// out[i] = poisson(means[i]).
  void fill_poisson(std::span<const double> means, std::span<std::uint64_t> out);

  /// Batched Gamma: out[i] = exponential_sum(counts[i], mean) — one Gamma
  /// variate per nonzero count; zero counts write 0.0 and draw nothing.
  void fill_exponential_sums(std::span<const std::uint64_t> counts, double mean,
                             std::span<double> out);

  /// Batched CLT sums: for counts[i] > 0, one Normal(m1 * n, sqrt(var1 * n))
  /// variate (unclamped — the caller owns support bounds); zero counts write
  /// 0.0 and draw nothing. Precondition: var1 >= 0.
  void fill_normal_sums(std::span<const std::uint64_t> counts, double m1,
                        double var1, std::span<double> out);

  /// Derive an independent, deterministic child stream.
  [[nodiscard]] Rng fork(std::uint64_t tag) const;

 private:
  std::uint64_t s_[4];
};

}  // namespace mkos::sim
