#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "sim/contracts.hpp"

namespace mkos::sim {

void Summary::add(double v) {
  samples_.push_back(v);
  sorted_valid_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::min() const {
  MKOS_EXPECTS(!samples_.empty());
  ensure_sorted();
  return sorted_.front();
}

double Summary::max() const {
  MKOS_EXPECTS(!samples_.empty());
  ensure_sorted();
  return sorted_.back();
}

double Summary::mean() const {
  MKOS_EXPECTS(!samples_.empty());
  double s = 0.0;
  for (double v : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  MKOS_EXPECTS(!samples_.empty());
  if (samples_.size() == 1) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : samples_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double Summary::median() const { return percentile(50.0); }

double Summary::percentile(double p) const {
  MKOS_EXPECTS(!samples_.empty());
  MKOS_EXPECTS(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void RunningStat::add(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

}  // namespace mkos::sim
