#pragma once
// Summary statistics used throughout the experiment harness.
//
// The paper reports medians of five runs with min/max error bars; Summary
// collects samples and produces exactly those, plus mean/stddev/percentiles
// for the ablation benches.

#include <cstddef>
#include <vector>

namespace mkos::sim {

class Summary {
 public:
  void add(double v);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;

  /// Median (interpolated for even counts). Precondition: not empty.
  [[nodiscard]] double median() const;

  /// p in [0, 100]; linear interpolation between closest ranks.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Streaming mean/variance (Welford); used where sample storage would be
/// wasteful (per-rank noise accounting at 131k ranks).
class RunningStat {
 public:
  void add(double v);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mkos::sim
