#include "sim/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <numeric>

#include "sim/contracts.hpp"
#include "sim/env.hpp"

namespace mkos::sim {

void TaskPool::submit_weighted(double cost, Task task) {
  (void)cost;  // placement hint; FIFO pools have nowhere to aim it
  submit(std::move(task));
}

ThreadPool::ThreadPool(int threads) {
  MKOS_EXPECTS(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(Task task) {
  MKOS_EXPECTS(task != nullptr);
  {
    const MutexLock lock(mu_);
    MKOS_EXPECTS(!stop_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  // Predicate loop (not the lambda overload of cv::wait): the predicate
  // reads guarded state, and inside this scope the capability analysis can
  // see the lock is held — a lambda would be analyzed as a separate,
  // lock-free function.
  while (!queue_.empty() || running_ != 0) lock.wait(idle_cv_);
}

std::uint64_t ThreadPool::completed() const {
  const MutexLock lock(mu_);
  return completed_;
}

int ThreadPool::default_threads() {
  // 0 = "unset" sentinel; a literal MKOS_THREADS=0 is rejected as out of range.
  const int n = env_int("MKOS_THREADS", /*fallback=*/0, /*lo=*/1, /*hi=*/4096);
  if (n >= 1) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::worker_loop() {
  while (true) {
    Task task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) lock.wait(work_cv_);
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      const MutexLock lock(mu_);
      --running_;
      ++completed_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

namespace {

/// Join block shared by the parallel_for variants: counts completions and
/// keeps the first exception for rethrow in the caller.
struct Join {
  Mutex mu;
  std::condition_variable cv;
  std::size_t remaining MKOS_GUARDED_BY(mu);
  std::exception_ptr error MKOS_GUARDED_BY(mu);
};

void submit_indices(TaskPool& pool, const std::vector<std::size_t>& order,
                    const std::vector<double>* costs, Join& join,
                    const std::function<void(std::size_t)>& body) {
  for (const std::size_t i : order) {
    auto task = [&join, &body, i] {
      std::exception_ptr ep;
      try {
        body(i);
      } catch (...) {
        ep = std::current_exception();
      }
      const MutexLock lock(join.mu);
      if (ep != nullptr && join.error == nullptr) join.error = ep;
      if (--join.remaining == 0) join.cv.notify_all();
    };
    if (costs != nullptr) {
      pool.submit_weighted((*costs)[i], std::move(task));
    } else {
      pool.submit(std::move(task));
    }
  }
  std::exception_ptr error;
  {
    MutexLock lock(join.mu);
    while (join.remaining != 0) lock.wait(join.cv);
    error = join.error;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace

void parallel_for(TaskPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  Join join{.mu = {}, .cv = {}, .remaining = n, .error = nullptr};
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  submit_indices(pool, order, nullptr, join, body);
}

void parallel_for_weighted(TaskPool& pool, const std::vector<double>& costs,
                           const std::function<void(std::size_t)>& body) {
  const std::size_t n = costs.size();
  if (n == 0) return;
  Join join{.mu = {}, .cv = {}, .remaining = n, .error = nullptr};
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (pool.cost_aware()) {
    // LPT: heaviest first so the longest chains start as early as possible;
    // stable on ties so equal-cost work keeps its deterministic index order.
    std::stable_sort(order.begin(), order.end(),
                     [&costs](std::size_t a, std::size_t b) {
                       return costs[a] > costs[b];
                     });
  }
  submit_indices(pool, order, &costs, join, body);
}

}  // namespace mkos::sim
