#pragma once
// Task pools for the campaign engine.
//
// TaskPool is the scheduling seam: the campaign fans cells out through this
// interface and never learns how the pool places or orders work. Two
// implementations exist — this file's ThreadPool (one shared FIFO queue, the
// deliberately simple default) and sim/work_stealing_pool.hpp (per-worker
// deques with cost-guided placement for skewed cell mixes). Determinism is
// never the pool's job — tasks derive every random stream from positional
// seeds and write results into caller-indexed slots, so execution order
// cannot leak into results; either pool yields bit-identical output.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "sim/thread_safety.hpp"

namespace mkos::sim {

class TaskPool {
 public:
  using Task = std::function<void()>;

  /// Scheduler telemetry snapshot (see WorkStealingPool). `active` is false
  /// for cost-oblivious pools, whose other fields stay zero.
  struct SchedTelemetry {
    bool active = false;
    std::uint64_t steals = 0;       ///< tasks taken from a foreign deque
    std::uint64_t steal_fails = 0;  ///< full scans that raced to nothing
    std::uint64_t local_pops = 0;   ///< tasks served from the owner's deque
    double imbalance = 0.0;         ///< max/mean executed cost across workers
  };

  virtual ~TaskPool() = default;

  /// Enqueue a task. Tasks must not throw and must not call back into the
  /// pool's blocking APIs (wait_idle / parallel_for) — cells are leaves.
  virtual void submit(Task task) = 0;

  /// Enqueue with a relative execution-cost estimate. Cost-aware pools use
  /// it for placement; the base forwards to submit(), dropping the hint.
  virtual void submit_weighted(double cost, Task task);

  /// Block until the queue is empty AND no task is executing.
  virtual void wait_idle() = 0;

  [[nodiscard]] virtual int size() const = 0;

  /// True when submit_weighted's cost actually steers placement — callers
  /// may then order submissions heaviest-first (LPT) for better makespans.
  [[nodiscard]] virtual bool cost_aware() const { return false; }

  /// Cumulative scheduler counters; meaningful after wait_idle().
  [[nodiscard]] virtual SchedTelemetry sched_telemetry() const { return {}; }
};

class ThreadPool final : public TaskPool {
 public:
  /// Spawns `threads` workers (>= 1). Defaults to `default_threads()`.
  explicit ThreadPool(int threads = default_threads());
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(Task task) override MKOS_EXCLUDES(mu_);
  void wait_idle() override MKOS_EXCLUDES(mu_);

  [[nodiscard]] int size() const override {
    return static_cast<int>(workers_.size());
  }

  /// Total tasks completed over the pool's lifetime.
  [[nodiscard]] std::uint64_t completed() const MKOS_EXCLUDES(mu_);

  /// `MKOS_THREADS` env var when set (strictly validated: integer in
  /// [1, 4096], anything else is a hard error via sim::env_int), otherwise
  /// `std::thread::hardware_concurrency()`.
  [[nodiscard]] static int default_threads();

 private:
  void worker_loop() MKOS_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // wait_idle() waits for drain
  std::deque<Task> queue_ MKOS_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // written in ctor, joined in dtor only
  std::size_t running_ MKOS_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ MKOS_GUARDED_BY(mu_) = 0;
  bool stop_ MKOS_GUARDED_BY(mu_) = false;
};

/// Run `body(0..n-1)` across the pool and block until all complete. The first
/// exception thrown by any body is rethrown in the caller (remaining
/// iterations still run to completion). Must not be called from inside a
/// pool task.
void parallel_for(TaskPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// parallel_for with a per-index cost estimate (`costs.size() == n`). On a
/// cost-aware pool, indices are submitted heaviest-first (LPT order, ties in
/// index order) through submit_weighted so the skewed tail starts early; on
/// a FIFO pool, submission stays in index order — byte-identical scheduling
/// to plain parallel_for. Results are unaffected either way: bodies write
/// caller-indexed slots.
void parallel_for_weighted(TaskPool& pool, const std::vector<double>& costs,
                           const std::function<void(std::size_t)>& body);

}  // namespace mkos::sim
