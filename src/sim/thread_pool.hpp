#pragma once
// Fixed-size thread pool for the campaign engine.
//
// Deliberately work-stealing-free: one shared FIFO queue, a fixed worker
// count, no task priorities. Campaign cells are coarse (a full simulated
// app run each), so a single locked queue is nowhere near contended and the
// FIFO order keeps scheduling easy to reason about. Determinism is never the
// pool's job — tasks derive every random stream from positional seeds and
// write results into caller-indexed slots, so execution order cannot leak
// into results.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "sim/thread_safety.hpp"

namespace mkos::sim {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers (>= 1). Defaults to `default_threads()`.
  explicit ThreadPool(int threads = default_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw and must not call back into the
  /// pool's blocking APIs (wait_idle / parallel_for) — cells are leaves.
  void submit(Task task) MKOS_EXCLUDES(mu_);

  /// Block until the queue is empty AND no task is executing.
  void wait_idle() MKOS_EXCLUDES(mu_);

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Total tasks completed over the pool's lifetime.
  [[nodiscard]] std::uint64_t completed() const MKOS_EXCLUDES(mu_);

  /// `MKOS_THREADS` env var when set (strictly validated: integer in
  /// [1, 4096], anything else is a hard error via sim::env_int), otherwise
  /// `std::thread::hardware_concurrency()`.
  [[nodiscard]] static int default_threads();

 private:
  void worker_loop() MKOS_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // wait_idle() waits for drain
  std::deque<Task> queue_ MKOS_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // written in ctor, joined in dtor only
  std::size_t running_ MKOS_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ MKOS_GUARDED_BY(mu_) = 0;
  bool stop_ MKOS_GUARDED_BY(mu_) = false;
};

/// Run `body(0..n-1)` across the pool and block until all complete. The first
/// exception thrown by any body is rethrown in the caller (remaining
/// iterations still run to completion). Must not be called from inside a
/// pool task.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace mkos::sim
