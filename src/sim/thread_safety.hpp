#pragma once
// Clang -Wthread-safety capability annotations (DESIGN.md §14).
//
// The campaign engine's bit-reproducibility claim rests on a small amount of
// genuinely shared mutable state (the thread pool's queue, the cell cache)
// being lock-protected, and on everything else being confined to a single
// owning task. Both properties were previously enforced by review only; this
// header makes them compiler-checked under Clang's capability analysis
// (`-Wthread-safety -Werror`, enabled for Clang builds in the top-level
// CMakeLists and exercised by the thread-safety CI job). Under GCC — which
// has no such analysis — every macro expands to nothing, so the annotations
// are zero-cost documentation there.
//
// Two kinds of annotation:
//
//  * Capability annotations (`MKOS_GUARDED_BY`, `MKOS_REQUIRES`, ...) on
//    mutex-protected structures. Use `sim::Mutex` + `sim::MutexLock` rather
//    than `std::mutex` + `std::lock_guard` for such state: libstdc++'s
//    std::mutex carries no capability attributes, so the analysis can only
//    see acquisitions made through an annotated wrapper.
//
//  * `MKOS_THREAD_CONFINED("<owner>")` on structures that are *not* locked
//    because exactly one task may touch them (per-cell simulator state:
//    RunLedger, EventQueue, MpiWorld, IkcQueue, ResilienceManager, ...).
//    It expands to nothing on every compiler; it exists so "no mutex here"
//    reads as a stated ownership contract instead of an omission, and so
//    reviewers of future concurrency PRs (ROADMAP 5b) know which structures
//    must gain locks — or stay confined — when sharing changes.
//
// Escape hatch: MKOS_NO_THREAD_SAFETY_ANALYSIS disables the analysis for one
// function. Any use must carry a written justification on the same line, the
// same contract as a mkos-lint allow annotation.

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define MKOS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MKOS_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a capability (a lock) the analysis can track.
#define MKOS_CAPABILITY(x) MKOS_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type that acquires on construction, releases on destruction.
#define MKOS_SCOPED_CAPABILITY MKOS_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding the named capability.
#define MKOS_GUARDED_BY(x) MKOS_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the named capability.
#define MKOS_PT_GUARDED_BY(x) MKOS_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function callable only while holding the listed capabilities.
#define MKOS_REQUIRES(...) MKOS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function that acquires the listed capabilities (held on return).
#define MKOS_ACQUIRE(...) MKOS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function that releases the listed capabilities.
#define MKOS_RELEASE(...) MKOS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function that must NOT be entered holding the listed capabilities.
#define MKOS_EXCLUDES(...) MKOS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returning a reference to the named capability.
#define MKOS_RETURN_CAPABILITY(x) MKOS_THREAD_ANNOTATION(lock_returned(x))
/// Per-function opt-out; justify on the same line, like a lint allow.
#define MKOS_NO_THREAD_SAFETY_ANALYSIS \
  MKOS_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Documentation-only: this structure is unsynchronized by design because a
/// single owner (named in the argument) may touch it at a time.
#define MKOS_THREAD_CONFINED(owner)

namespace mkos::sim {

class MKOS_SCOPED_CAPABILITY MutexLock;

/// std::mutex with capability attributes, so Clang's analysis can see
/// acquire/release pairs. Lock it through MutexLock (RAII); the raw
/// lock()/unlock() exist for the rare hand-over-hand pattern.
class MKOS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MKOS_ACQUIRE() { mu_.lock(); }
  void unlock() MKOS_RELEASE() { mu_.unlock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over sim::Mutex with condition-variable integration: waits
/// run through the lock object so the capability stays held (to the
/// analysis) across the wait, matching the usual predicate-loop idiom
///
///   MutexLock lock(mu_);
///   while (!predicate()) lock.wait(cv);     // predicate reads guarded state
class MKOS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MKOS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() MKOS_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Block on `cv`; the mutex is atomically released during the wait and
  /// re-acquired before returning (std::condition_variable semantics), so
  /// callers must re-check their predicate — use the while-loop idiom above.
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace mkos::sim
