#pragma once
// Simulation time: 64-bit signed nanoseconds.
//
// All models in mkos price work in nanoseconds. A strong type (rather than a
// bare int64_t) keeps durations from being confused with byte counts or
// event sequence numbers, while remaining a trivially copyable value type.

#include <cstdint>
#include <compare>
#include <string>

namespace mkos::sim {

/// A point in simulated time or a duration, in nanoseconds.
class TimeNs {
 public:
  constexpr TimeNs() = default;
  constexpr explicit TimeNs(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) * 1e-3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const TimeNs&) const = default;

  constexpr TimeNs& operator+=(TimeNs d) { ns_ += d.ns_; return *this; }
  constexpr TimeNs& operator-=(TimeNs d) { ns_ -= d.ns_; return *this; }

  friend constexpr TimeNs operator+(TimeNs a, TimeNs b) { return TimeNs{a.ns_ + b.ns_}; }
  friend constexpr TimeNs operator-(TimeNs a, TimeNs b) { return TimeNs{a.ns_ - b.ns_}; }
  friend constexpr TimeNs operator*(TimeNs a, std::int64_t k) { return TimeNs{a.ns_ * k}; }
  friend constexpr TimeNs operator*(std::int64_t k, TimeNs a) { return TimeNs{a.ns_ * k}; }

  /// Scale by a double (rounds toward zero); used by throughput models.
  [[nodiscard]] constexpr TimeNs scaled(double f) const {
    return TimeNs{static_cast<std::int64_t>(static_cast<double>(ns_) * f)};
  }

 private:
  std::int64_t ns_ = 0;
};

constexpr TimeNs nanoseconds(std::int64_t v) { return TimeNs{v}; }
constexpr TimeNs microseconds(double v) { return TimeNs{static_cast<std::int64_t>(v * 1e3)}; }
constexpr TimeNs milliseconds(double v) { return TimeNs{static_cast<std::int64_t>(v * 1e6)}; }
constexpr TimeNs seconds(double v) { return TimeNs{static_cast<std::int64_t>(v * 1e9)}; }

/// Construct a duration from a (possibly fractional) nanosecond count.
constexpr TimeNs from_double_ns(double v) { return TimeNs{static_cast<std::int64_t>(v)}; }

/// Human-readable rendering ("3.2 ms", "870 ns", ...), for logs and reports.
[[nodiscard]] std::string to_string(TimeNs t);

namespace literals {
constexpr TimeNs operator""_ns(unsigned long long v) { return TimeNs{static_cast<std::int64_t>(v)}; }
constexpr TimeNs operator""_us(unsigned long long v) { return TimeNs{static_cast<std::int64_t>(v) * 1000}; }
constexpr TimeNs operator""_ms(unsigned long long v) { return TimeNs{static_cast<std::int64_t>(v) * 1000000}; }
constexpr TimeNs operator""_s(unsigned long long v) { return TimeNs{static_cast<std::int64_t>(v) * 1000000000}; }
}  // namespace literals

}  // namespace mkos::sim
