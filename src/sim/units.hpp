#pragma once
// Byte-size units and helpers shared by the memory and network substrates.

#include <cstdint>
#include <string>

namespace mkos::sim {

using Bytes = std::uint64_t;

constexpr Bytes KiB = 1024ULL;
constexpr Bytes MiB = 1024ULL * KiB;
constexpr Bytes GiB = 1024ULL * MiB;

/// Round `v` up to a multiple of `align` (align must be a power of two).
[[nodiscard]] constexpr Bytes align_up(Bytes v, Bytes align) {
  return (v + align - 1) & ~(align - 1);
}

/// Round `v` down to a multiple of `align` (align must be a power of two).
[[nodiscard]] constexpr Bytes align_down(Bytes v, Bytes align) {
  return v & ~(align - 1);
}

[[nodiscard]] constexpr bool is_aligned(Bytes v, Bytes align) {
  return (v & (align - 1)) == 0;
}

/// Human-readable rendering ("1.5 GiB", "64 KiB", ...).
[[nodiscard]] std::string bytes_to_string(Bytes b);

namespace literals {
constexpr Bytes operator""_KiB(unsigned long long v) { return v * KiB; }
constexpr Bytes operator""_MiB(unsigned long long v) { return v * MiB; }
constexpr Bytes operator""_GiB(unsigned long long v) { return v * GiB; }
}  // namespace literals

}  // namespace mkos::sim
