#include "sim/work_stealing_pool.hpp"

#include <limits>
#include <utility>

#include "sim/contracts.hpp"

namespace mkos::sim {

WorkStealingPool::WorkStealingPool(int threads) {
  MKOS_EXPECTS(threads >= 1);
  shards_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) shards_.push_back(std::make_unique<Shard>());
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    const MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkStealingPool::submit(Task task) { submit_weighted(1.0, std::move(task)); }

void WorkStealingPool::submit_weighted(double cost, Task task) {
  MKOS_EXPECTS(task != nullptr);
  // Account the task before it becomes stealable: a worker that grabs it
  // the instant it lands must find pending_ already raised.
  {
    const MutexLock lock(mu_);
    MKOS_EXPECTS(!stop_);
    ++pending_;
  }
  // Least-loaded placement: the deque with the smallest queued cost (ties
  // to the lowest index). Snapshots race with workers draining — harmless,
  // placement is a heuristic; correctness never depends on where a task
  // sits because any worker can steal it.
  std::size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    double queued = 0.0;
    {
      const MutexLock lock(s.mu);
      queued = s.queued_cost;
    }
    if (queued < best_cost) {
      best_cost = queued;
      best = i;
    }
  }
  {
    Shard& s = *shards_[best];
    const MutexLock lock(s.mu);
    s.deque.push_back(Item{cost, std::move(task)});
    s.queued_cost += cost;
  }
  work_cv_.notify_one();
}

bool WorkStealingPool::take(std::size_t self, Item* out, bool* stolen) {
  {
    Shard& s = *shards_[self];
    const MutexLock lock(s.mu);
    if (!s.deque.empty()) {
      // Owner pops LIFO: the most recently placed (for LPT submissions:
      // lightest remaining) entry, cache-warm and contention-free.
      *out = std::move(s.deque.back());
      s.deque.pop_back();
      s.queued_cost -= out->cost;
      *stolen = false;
      return true;
    }
  }
  const std::size_t n = shards_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Shard& s = *shards_[(self + k) % n];
    const MutexLock lock(s.mu);
    if (!s.deque.empty()) {
      // Thieves steal FIFO: the oldest (for LPT submissions: heaviest)
      // entry, the end the owner is not working.
      *out = std::move(s.deque.front());
      s.deque.pop_front();
      s.queued_cost -= out->cost;
      *stolen = true;
      return true;
    }
  }
  return false;
}

void WorkStealingPool::worker_loop(std::size_t self) {
  while (true) {
    Item item{0.0, nullptr};
    bool stolen = false;
    if (take(self, &item, &stolen)) {
      {
        const MutexLock lock(mu_);
        --pending_;
        ++running_;
        if (stolen) {
          ++steals_;
        } else {
          ++local_pops_;
        }
      }
      item.task();
      {
        Shard& s = *shards_[self];
        const MutexLock lock(s.mu);
        s.executed_cost += item.cost;
      }
      {
        const MutexLock lock(mu_);
        --running_;
        ++completed_;
        if (pending_ == 0 && running_ == 0) idle_cv_.notify_all();
      }
      continue;
    }
    MutexLock lock(mu_);
    if (pending_ > 0) {
      // The scan raced a submit (accounted but not yet pushed) or another
      // thief: a genuine failed steal. Yield the lock and rescan.
      ++steal_fails_;
      continue;
    }
    if (stop_) return;
    while (!stop_ && pending_ == 0) lock.wait(work_cv_);
    if (stop_ && pending_ == 0) return;
  }
}

void WorkStealingPool::wait_idle() {
  MutexLock lock(mu_);
  // Predicate loop, not the lambda overload: the capability analysis must
  // see the guarded reads under this scope's lock.
  while (pending_ != 0 || running_ != 0) lock.wait(idle_cv_);
}

std::uint64_t WorkStealingPool::completed() const {
  const MutexLock lock(mu_);
  return completed_;
}

TaskPool::SchedTelemetry WorkStealingPool::sched_telemetry() const {
  SchedTelemetry t;
  t.active = true;
  {
    const MutexLock lock(mu_);
    t.steals = steals_;
    t.steal_fails = steal_fails_;
    t.local_pops = local_pops_;
  }
  double total = 0.0;
  double peak = 0.0;
  for (const auto& shard : shards_) {
    const Shard& s = *shard;
    const MutexLock lock(s.mu);
    total += s.executed_cost;
    if (s.executed_cost > peak) peak = s.executed_cost;
  }
  if (total > 0.0) {
    t.imbalance = peak / (total / static_cast<double>(shards_.size()));
  }
  return t;
}

}  // namespace mkos::sim
