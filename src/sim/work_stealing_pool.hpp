#pragma once
// Work-stealing task pool for skewed campaign cell mixes.
//
// The default ThreadPool's single shared FIFO is fine when cells are fat and
// uniform, but a design-space sweep's cell costs span orders of magnitude
// (a 64-node CCS-QCD cell vs a 1-node brk cell), and FIFO order starts the
// heavy tail last — the whole pool then drains while one worker grinds the
// straggler. This pool keeps one deque per worker:
//
//   placement  submit_weighted() appends to the deque with the least queued
//              cost, so a heaviest-first (LPT) submission order spreads the
//              skewed tail across workers up front;
//   owner      pops its own deque LIFO (back) — cache-warm, no contention;
//   thieves    steal FIFO (front) from the next non-empty deque in rotation,
//              taking the oldest (for LPT submissions: heaviest) entry, the
//              classic work-stealing arrangement;
//   locking    a mutex per deque plus one pool mutex for pending/running
//              bookkeeping. Steals are the rare path by construction, and
//              campaign cells are coarse (a whole simulated app run), so
//              mutexes — not Chase–Lev atomics — are the right tradeoff.
//
// Determinism: identical to ThreadPool — tasks use positional seeds and
// write caller-indexed slots, so placement and stealing cannot change a
// result byte (tests/test_campaign.cpp proves ledger byte-identity).

#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "sim/thread_pool.hpp"
#include "sim/thread_safety.hpp"

namespace mkos::sim {

class WorkStealingPool final : public TaskPool {
 public:
  /// Spawns `threads` workers (>= 1), one deque each. Defaults to
  /// `ThreadPool::default_threads()` (MKOS_THREADS).
  explicit WorkStealingPool(int threads = ThreadPool::default_threads());
  ~WorkStealingPool() override;

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// submit() is submit_weighted() at unit cost.
  void submit(Task task) override MKOS_EXCLUDES(mu_);
  void submit_weighted(double cost, Task task) override MKOS_EXCLUDES(mu_);
  void wait_idle() override MKOS_EXCLUDES(mu_);

  [[nodiscard]] int size() const override {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] bool cost_aware() const override { return true; }

  /// Total tasks completed over the pool's lifetime.
  [[nodiscard]] std::uint64_t completed() const MKOS_EXCLUDES(mu_);

  /// active=true; steals/steal_fails/local_pops are cumulative, imbalance is
  /// the max/mean executed cost across workers (1.0 = perfectly even, 0 when
  /// nothing ran). Stable only while the pool is idle — call after
  /// wait_idle().
  [[nodiscard]] SchedTelemetry sched_telemetry() const override
      MKOS_EXCLUDES(mu_);

 private:
  struct Item {
    double cost;
    Task task;
  };

  /// One worker's deque. Lock ordering: a shard mutex and the pool mutex are
  /// never held together.
  struct Shard {
    mutable Mutex mu;
    std::deque<Item> deque MKOS_GUARDED_BY(mu);
    double queued_cost MKOS_GUARDED_BY(mu) = 0.0;    ///< sum of queued items
    double executed_cost MKOS_GUARDED_BY(mu) = 0.0;  ///< charged to the popper
  };

  void worker_loop(std::size_t self) MKOS_EXCLUDES(mu_);
  /// Try the owner's deque (LIFO), then every other deque in rotation
  /// (FIFO). Returns false when all scans came up empty.
  bool take(std::size_t self, Item* out, bool* stolen);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;  // written in ctor, joined in dtor only

  mutable Mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // wait_idle() waits for drain
  std::size_t pending_ MKOS_GUARDED_BY(mu_) = 0;
  std::size_t running_ MKOS_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ MKOS_GUARDED_BY(mu_) = 0;
  std::uint64_t steals_ MKOS_GUARDED_BY(mu_) = 0;
  std::uint64_t steal_fails_ MKOS_GUARDED_BY(mu_) = 0;
  std::uint64_t local_pops_ MKOS_GUARDED_BY(mu_) = 0;
  bool stop_ MKOS_GUARDED_BY(mu_) = false;
};

}  // namespace mkos::sim
