// AMG 2013 — BoomerAMG algebraic multigrid solver (paper ref [12]).
//
// Weak-scaled. 32 ranks x 8 threads per node. Each solve iteration is a
// V-cycle: smoother sweeps on a hierarchy of coarsening levels. Fine levels
// are bandwidth-bound with large halo messages; coarse levels have almost no
// compute but still synchronize, so the per-level windows shrink toward
// communication latency — plus AMG's OpenMP regions spin on sched_yield().
// This is the application the paper's `--mpol-shm-premap` and
// `--disable-sched-yield` McKernel options buy 9% on (16 nodes).

#include <algorithm>
#include <cmath>

#include "workloads/app.hpp"

namespace mkos::workloads {

namespace {

using sim::KiB;
using sim::MiB;

class AmgApp final : public App {
 public:
  [[nodiscard]] std::string_view name() const override { return "AMG2013"; }
  [[nodiscard]] std::string_view metric() const override { return "FOM(nnz*it/s)"; }

  [[nodiscard]] runtime::JobSpec spec(int nodes) const override {
    return runtime::JobSpec{nodes, 32, 8};
  }

  void setup(runtime::Job& job) override {
    tune_linux_mcdram_bind(job);
    alloc_working_set(job, kWsPerRank);
    // hypre allocates aggressively from the heap during setup.
    init_heap(job, 96 * MiB);
  }

  [[nodiscard]] AppResult run(runtime::Job& job, runtime::MpiWorld& world) override {
    world.mpi_init();
    const int levels =
        3 + std::max(1, static_cast<int>(std::log2(std::max(2, job.spec().nodes))));
    const double ranks = world.world_size();
    // hypre's cycle allocates and frees auxiliary vectors from the heap.
    const std::int64_t churn[] = {kHeapChurn, -kHeapChurn};
    for (int it = 0; it < kSimIters; ++it) {
      world.heap_cycle(churn);
      // Down + up sweep of the V-cycle.
      for (int lvl = 0; lvl < levels; ++lvl) {
        const double shrink = std::pow(0.5, lvl);  // per-dimension coarsening
        const auto traffic =
            static_cast<sim::Bytes>(static_cast<double>(kFineTraffic) * shrink * shrink * shrink);
        if (traffic > 0) world.compute_bytes(std::max<sim::Bytes>(traffic, 4 * KiB));
        // OpenMP join barrier per smoother sweep.
        world.sched_yields(kYieldsPerLevel);
        const auto halo = static_cast<sim::Bytes>(
            std::max(2.0 * KiB, static_cast<double>(kFineHalo) * shrink * shrink));
        world.halo_exchange(halo, 6);
      }
      // Convergence check after the cycle.
      world.allreduce(8);
    }
    const sim::TimeNs t = world.finish();
    AppResult r;
    r.unit = metric();
    r.elapsed = t;
    // BoomerAMG's figure of merit: (nnz touched * iterations) / solve time.
    r.fom = kNnzPerRank * ranks * kSimIters / t.sec();
    return r;
  }

 private:
  static constexpr sim::Bytes kWsPerRank = 300 * MiB;   // 32 ranks -> 9.4 GiB/node
  static constexpr sim::Bytes kFineTraffic = 260 * MiB; // finest-level sweeps
  static constexpr sim::Bytes kFineHalo = 192 * KiB;
  static constexpr std::int64_t kHeapChurn = 256 * 1024;
  static constexpr int kYieldsPerLevel = 220;           // OpenMP spin-wait exits
  static constexpr double kNnzPerRank = 8.1e6;
  static constexpr int kSimIters = 18;
};

}  // namespace

std::unique_ptr<App> make_amg2013() { return std::make_unique<AmgApp>(); }

}  // namespace mkos::workloads
