#include "workloads/app.hpp"

#include "kernel/kernel.hpp"
#include "sim/contracts.hpp"

namespace mkos::workloads {

std::vector<int> App::node_counts() const { return fig4_node_counts(); }

std::vector<int> fig4_node_counts() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048};
}

void tune_linux_mcdram_bind(runtime::Job& job) {
  kernel::Kernel& k = job.kernel();
  if (k.kind() != kernel::OsKind::kLinux) return;
  const auto mcdram = job.node().topo().domains_of_kind(hw::MemKind::kMcdram);
  if (mcdram.empty()) return;
  for (int i = 0; i < job.lane_count(); ++i) {
    const auto r = k.sys_set_mempolicy(job.lane(i), mem::MemPolicy::bind(mcdram));
    MKOS_ASSERT(r.err == kernel::kOk);
  }
}

void alloc_working_set(runtime::Job& job, sim::Bytes bytes,
                       const std::vector<double>& per_lane_scale) {
  kernel::Kernel& k = job.kernel();
  const int lanes = job.lane_count();
  // Allocation happens roughly in lockstep across ranks at startup; touching
  // proceeds in slices, interleaved across lanes, which is what lets
  // McKernel's demand-paging fallback pack MCDRAM evenly.
  struct Pending {
    mem::Vma* vma;
    kernel::Process* p;
    sim::Bytes left;
  };
  std::vector<Pending> pending;
  for (int i = 0; i < lanes; ++i) {
    sim::Bytes b = bytes;
    if (!per_lane_scale.empty()) {
      const double s = per_lane_scale[static_cast<std::size_t>(i) % per_lane_scale.size()];
      b = static_cast<sim::Bytes>(static_cast<double>(bytes) * s);
    }
    if (b == 0) continue;
    kernel::Process& p = job.lane(i);
    const auto r = k.sys_mmap(p, b, mem::VmaKind::kAnon, mem::MemPolicy::standard());
    MKOS_ASSERT(r.err == kernel::kOk);
    if (r.vma != nullptr && r.vma->demand_paged) {
      pending.push_back(Pending{r.vma, &p, b});
    }
  }
  // Interleaved first touch, 64 MiB slices per round.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& pend : pending) {
      if (pend.left == 0) continue;
      const sim::Bytes slice = std::min<sim::Bytes>(pend.left, 64 * sim::MiB);
      (void)k.touch(*pend.p, *pend.vma, slice, lanes);
      pend.left -= slice;
      progressed = true;
    }
  }
}

void init_heap(runtime::Job& job, sim::Bytes bytes) {
  kernel::Kernel& k = job.kernel();
  for (int i = 0; i < job.lane_count(); ++i) {
    kernel::Process& p = job.lane(i);
    (void)k.sys_brk(p, static_cast<std::int64_t>(bytes));
    (void)k.heap_touch(p, job.lane_count());
  }
}

}  // namespace mkos::workloads
