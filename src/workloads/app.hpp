#pragma once
// Application proxy models.
//
// Each of the paper's eight benchmarks is modeled as (a) a setup phase that
// performs its real allocation pattern through the kernel under test —
// working-set mmaps, NUMA policy calls, first touches — and (b) a timestep
// loop driving the MpiWorld bulk-synchronous API with the app's
// characteristic compute/communication/allocation mix. The figure of merit
// is computed exactly the way the real benchmark reports it.
//
// The per-app constants (working-set bytes, traffic per iteration, message
// sizes, flop shares) are derived from the paper's configurations (ranks and
// threads per node, problem sizes from the runtime arguments listed in
// Section III-B) and the public structure of each code; they are documented
// inline per app.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/simmpi.hpp"

namespace mkos::workloads {

struct AppResult {
  double fom = 0.0;        ///< figure of merit, higher is better
  std::string unit;        ///< e.g. "zones/s"
  sim::TimeNs elapsed{0};  ///< simulated wall time of the measured loop
};

class App {
 public:
  virtual ~App() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string_view metric() const = 0;

  /// Node counts this app was evaluated at (Fig. 4 / its own figure).
  [[nodiscard]] virtual std::vector<int> node_counts() const;

  /// Ranks/threads layout at the given node count.
  [[nodiscard]] virtual runtime::JobSpec spec(int nodes) const = 0;

  /// Allocate and place the working set on the representative node.
  virtual void setup(runtime::Job& job) = 0;

  /// Run the measured loop; returns the app-reported figure of merit.
  [[nodiscard]] virtual AppResult run(runtime::Job& job, runtime::MpiWorld& world) = 0;
};

// ---------------------------------------------------------------- helpers

/// Power-of-two node counts 1..2048 (the Fig. 4 x-axis).
[[nodiscard]] std::vector<int> fig4_node_counts();

/// "We went to great lengths to provide good settings for Linux": for
/// working sets that fit into MCDRAM, the Linux runs bind memory to the four
/// MCDRAM domains (mbind accepts a multi-domain mask; PREFERRED does not).
/// No-op on the LWKs, whose default placement already spills MCDRAM-first.
void tune_linux_mcdram_bind(runtime::Job& job);

/// Allocate `bytes` of anonymous working set on every lane and touch it
/// (first-touch fills the placement records demand paging defers).
/// `per_lane_scale` lets callers skew per-rank working sets (imbalance).
void alloc_working_set(runtime::Job& job, sim::Bytes bytes,
                       const std::vector<double>& per_lane_scale = {});

/// Grow every lane's heap to `bytes` (initial sbrk) and touch it.
void init_heap(runtime::Job& job, sim::Bytes bytes);

std::unique_ptr<App> make_amg2013();
std::unique_ptr<App> make_ccs_qcd();
std::unique_ptr<App> make_geofem();
std::unique_ptr<App> make_hpcg();
std::unique_ptr<App> make_lammps();
/// `problem_size` is LULESH's -s (per-domain edge). `force_ddr` reproduces
/// the Table I configuration ("memory is taken only from DDR4 RAM"): the
/// Linux run skips the MCDRAM bind. (Pair with SystemConfig's
/// lwk_prefer_mcdram=false for the LWK side.) `iteration_cap` bounds the
/// simulated timestep count (the -s 30 brk-trace run uses the real 932).
std::unique_ptr<App> make_lulesh(int problem_size = 50, bool force_ddr = false,
                                 int iteration_cap = 36);
std::unique_ptr<App> make_milc();
/// `nx` is the global cube edge (the paper runs 660^3; MiniFE is the one
/// benchmark that is NOT weak-scaled).
std::unique_ptr<App> make_minife(int nx = 660);
/// XSBench-style neutron cross-section lookup proxy, one factory per
/// placement policy (first-touch/DDR4, interleave, MCDRAM-preferred) — the
/// bench/fig_numa_lookup axis.
std::unique_ptr<App> make_xsbench_first_touch();
std::unique_ptr<App> make_xsbench_interleave();
std::unique_ptr<App> make_xsbench_mcdram();

/// All Fig. 4 apps, in the figure's order.
[[nodiscard]] std::vector<std::unique_ptr<App>> make_fig4_apps();

/// Registry names of the Fig. 4 apps, in the figure's order. The campaign
/// engine works in names rather than instances: every parallel task builds
/// its own App through make_app() so no simulator state crosses threads.
[[nodiscard]] std::vector<std::string> fig4_app_names();

/// Every name make_app() accepts (Fig. 4 suite + Lulesh2.0).
[[nodiscard]] std::vector<std::string> registry_names();

/// Factory by name ("AMG2013", "CCS-QCD", ...); nullptr when unknown.
[[nodiscard]] std::unique_ptr<App> make_app(std::string_view name);

/// Relative per-(node × rep) simulation cost of one app cell, normalized to
/// MiniFE = 1. The campaign scheduler's cost model estimates a cell as
/// `nodes × reps × app_cost_weight(app)` to place the skewed tail first —
/// a placement heuristic only, never a correctness input, so coarse
/// calibration (measured per-cell wall time on the reference machine,
/// rounded) is plenty. Unknown names get 1.0.
[[nodiscard]] double app_cost_weight(std::string_view name);

}  // namespace mkos::workloads
