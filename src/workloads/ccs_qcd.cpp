// CCS-QCD — clover-fermion lattice QCD solver (paper ref [13]).
//
// Weak-scaled, 4 ranks x 32 threads per node, and the one workload sized to
// EXCEED MCDRAM: the per-node working set is ~20 GiB against 16 GiB of
// MCDRAM. This is the showcase for the LWKs' transparent MCDRAM->DDR4
// spill:
//   * Linux (SNC-4): no policy expresses "all MCDRAM then spill", so the
//     run uses DDR4 only (exactly what the paper did);
//   * mOS: MCDRAM divided per rank at launch; uneven lattice blocks strand
//     some quota while bigger ranks spill more (rigid upfront allocation);
//   * McKernel: mappings that don't fit MCDRAM fall back to demand paging,
//     so pages fill the *remaining* MCDRAM at first touch, interleaved
//     fairly across ranks ("ranks inside the node could better utilize
//     MCDRAM as opposed to dividing memory resources upfront").
// Result ordering: McKernel (up to +39%) > mOS (+28%) > Linux — Fig. 5a.

#include "sim/contracts.hpp"
#include "workloads/app.hpp"

namespace mkos::workloads {

namespace {

using sim::GiB;
using sim::MiB;

class CcsQcdApp final : public App {
 public:
  [[nodiscard]] std::string_view name() const override { return "CCS-QCD"; }
  [[nodiscard]] std::string_view metric() const override { return "Mflops/s/node"; }

  [[nodiscard]] runtime::JobSpec spec(int nodes) const override {
    return runtime::JobSpec{nodes, 4, 32};
  }

  void setup(runtime::Job& job) override {
    // In quadrant mode there is a single MCDRAM domain, so Linux *can*
    // express the spill with `numactl -p`: "the numactl -p option can be
    // used by specifying MCDRAM as the preferred NUMA domain". In SNC-4,
    // PREFERRED accepts one of the four domains only, so the tuned runs
    // fell back to DDR4 (Section III-C) — no policy is set.
    kernel::Kernel& k = job.kernel();
    if (k.kind() == kernel::OsKind::kLinux) {
      const auto hbm = job.node().topo().domains_of_kind(hw::MemKind::kMcdram);
      if (hbm.size() == 1) {
        const auto r = k.sys_set_mempolicy(job.lane(0), mem::MemPolicy::preferred(hbm[0]));
        MKOS_ASSERT(r.err == kernel::kOk);
        for (int i = 1; i < job.lane_count(); ++i) {
          (void)k.sys_set_mempolicy(job.lane(i), mem::MemPolicy::preferred(hbm[0]));
        }
      }
    }
    // Domain decomposition of the clover solver leaves uneven block sizes;
    // this imbalance is what launch-time MCDRAM division (mOS) strands and
    // demand-paging fallback (McKernel) recovers.
    alloc_working_set(job, kWsPerRank, kLaneImbalance());
    init_heap(job, 32 * MiB);
  }

  [[nodiscard]] AppResult run(runtime::Job& job, runtime::MpiWorld& world) override {
    (void)job;
    world.mpi_init();
    for (int it = 0; it < kSimIters; ++it) {
      // BiCGStab iteration on the clover-fermion operator: one pass over
      // the lattice fields plus the flop-heavy clover term inversion. Each
      // rank streams its own (uneven) lattice block.
      world.compute_bytes_scaled(kTrafficPerIter, kLaneImbalance());
      world.compute_flops(kFlopsPerIter);
      world.halo_exchange(640 * sim::KiB, 8);
      world.allreduce(16);
    }
    const sim::TimeNs t = world.finish();
    AppResult r;
    r.unit = metric();
    r.elapsed = t;
    r.fom = kFlopsPerIter * 4.0 * kSimIters / t.sec() / 1e6;  // per node
    return r;
  }

 private:
  [[nodiscard]] static const std::vector<double>& kLaneImbalance() {
    static const std::vector<double> v{1.5, 0.6, 1.2, 0.7};
    return v;
  }

  static constexpr sim::Bytes kWsPerRank = 5 * GiB;        // node WS ~20 GiB
  static constexpr sim::Bytes kTrafficPerIter = 5 * GiB;   // full-lattice pass
  static constexpr double kFlopsPerIter = 1.62e11;          // clover term dominates
  static constexpr int kSimIters = 8;
};

}  // namespace

std::unique_ptr<App> make_ccs_qcd() { return std::make_unique<CcsQcdApp>(); }

}  // namespace mkos::workloads
