// GeoFEM — parallel iterative solver with selective-blocking preconditioning
// for nonlinear contact problems (paper ref [14], Nakajima).
//
// Weak-scaled. 32 ranks x 8 threads per node. ICCG iterations: a couple of
// matrix/vector passes per iteration, a halo exchange over the contact-mesh
// neighbours, and *three* dot-product allreduces per iteration (ICCG needs
// rho, alpha and the norm). The higher collective frequency relative to its
// window makes GeoFEM more noise-sensitive than HPCG — its Fig. 4 ratios
// climb visibly with node count.

#include "workloads/app.hpp"

namespace mkos::workloads {

namespace {

using sim::MiB;

class GeoFemApp final : public App {
 public:
  [[nodiscard]] std::string_view name() const override { return "GeoFEM"; }
  [[nodiscard]] std::string_view metric() const override { return "GFLOP/s"; }

  [[nodiscard]] runtime::JobSpec spec(int nodes) const override {
    return runtime::JobSpec{nodes, 32, 8};
  }

  void setup(runtime::Job& job) override {
    tune_linux_mcdram_bind(job);
    alloc_working_set(job, kWsPerRank);
    init_heap(job, 16 * MiB);
  }

  [[nodiscard]] AppResult run(runtime::Job& job, runtime::MpiWorld& world) override {
    (void)job;
    world.mpi_init();
    const double ranks = world.world_size();
    // Contact-search rebuilds reallocate work arrays from the heap each
    // nonlinear iteration (selective blocking changes the block structure).
    const std::int64_t churn[] = {kHeapChurn, -kHeapChurn};
    for (int it = 0; it < kSimIters; ++it) {
      world.heap_cycle(churn);
      world.compute_bytes(kTrafficPerIter);
      world.compute_flops(kFlopsPerIter);
      world.halo_exchange(64 * sim::KiB, 6);
      world.allreduce(8);   // rho
      world.compute_bytes(kTrafficPerIter / 4);  // preconditioner back-solve
      world.allreduce(8);   // alpha
      world.allreduce(8);   // convergence norm
    }
    const sim::TimeNs t = world.finish();
    AppResult r;
    r.unit = metric();
    r.elapsed = t;
    r.fom = kFlopsPerIter * ranks * kSimIters / t.sec() / 1e9;
    return r;
  }

 private:
  static constexpr sim::Bytes kWsPerRank = 360 * MiB;       // 32 ranks -> 11.3 GiB/node
  static constexpr sim::Bytes kTrafficPerIter = 540 * MiB;  // ~1.5 passes / sub-step
  static constexpr double kFlopsPerIter = 95e6;
  static constexpr std::int64_t kHeapChurn = 1024 * 1024;
  static constexpr int kSimIters = 25;
};

}  // namespace

std::unique_ptr<App> make_geofem() { return std::make_unique<GeoFemApp>(); }

}  // namespace mkos::workloads
