// HPCG — multigrid-preconditioned conjugate gradient (paper ref [15]).
//
// Weak-scaled. 64 ranks x 4 threads per node. The working set (sparse
// matrix + MG hierarchy + vectors) fits in MCDRAM; each iteration streams
// the full hierarchy a handful of times (SpMV + SymGS on every level), does
// a face halo exchange, and synchronizes on two dot-product allreduces.
// Bandwidth-bound with long compute windows: the LWK advantage here is the
// steady large-page/no-fault margin, growing mildly with node count as the
// allreduces pick up the Linux noise tail.

#include "workloads/app.hpp"

namespace mkos::workloads {

namespace {

using sim::MiB;

class HpcgApp final : public App {
 public:
  [[nodiscard]] std::string_view name() const override { return "HPCG"; }
  [[nodiscard]] std::string_view metric() const override { return "GFLOP/s"; }

  [[nodiscard]] runtime::JobSpec spec(int nodes) const override {
    return runtime::JobSpec{nodes, 64, 4};
  }

  void setup(runtime::Job& job) override {
    tune_linux_mcdram_bind(job);
    alloc_working_set(job, kWsPerRank);
    init_heap(job, 8 * MiB);
  }

  [[nodiscard]] AppResult run(runtime::Job& job, runtime::MpiWorld& world) override {
    (void)job;
    world.mpi_init();
    const double ranks = world.world_size();
    for (int it = 0; it < kSimIters; ++it) {
      // SpMV + two SymGS sweeps over the full MG hierarchy: ~6 passes.
      world.compute_bytes(kTrafficPerIter);
      world.compute_flops(kFlopsPerIter);
      // 3D face halos: 6 neighbours, fine level dominates.
      world.halo_exchange(96 * sim::KiB, 6);
      // Two dot products per CG iteration.
      world.allreduce(8);
      world.allreduce(8);
    }
    const sim::TimeNs t = world.finish();
    AppResult r;
    r.unit = metric();
    r.elapsed = t;
    r.fom = kFlopsPerIter * ranks * kSimIters / t.sec() / 1e9;
    return r;
  }

 private:
  static constexpr sim::Bytes kWsPerRank = 192 * MiB;       // 64 ranks -> 12 GiB/node
  static constexpr sim::Bytes kTrafficPerIter = 1150 * MiB; // ~6 hierarchy passes
  static constexpr double kFlopsPerIter = 145e6;            // ~0.12 flop/byte
  static constexpr int kSimIters = 22;
};

}  // namespace

std::unique_ptr<App> make_hpcg() { return std::make_unique<HpcgApp>(); }

}  // namespace mkos::workloads
