// LAMMPS — classical molecular dynamics, Lennard-Jones weak-scaling deck
// (lj.weak.4x2x2x7900; paper ref [16]).
//
// 64 ranks x 2 threads per node. Per timestep: neighbour-list force
// computation (cache-friendly, partly flop-bound), then ghost-atom exchange
// with the 6 face neighbours. The reproduction-critical property: "the Intel
// Omni-Path network involves system calls for certain operations and LAMMPS
// utilizes communication routines that rely on those" — every off-node send
// is chunked through device-file writes, which the LWKs must offload to
// Linux. Single-node runs favour the LWKs (memory margins); at scale the
// offload tax flips the ordering and Linux wins (Fig. 6b).

#include <algorithm>
#include <cmath>

#include "workloads/app.hpp"

namespace mkos::workloads {

namespace {

using sim::KiB;
using sim::MiB;

class LammpsApp final : public App {
 public:
  [[nodiscard]] std::string_view name() const override { return "LAMMPS"; }
  [[nodiscard]] std::string_view metric() const override { return "timesteps/s"; }

  [[nodiscard]] std::vector<int> node_counts() const override {
    // Fig. 6b x-axis.
    return {16, 32, 64, 128, 256, 512, 1024, 2048};
  }

  [[nodiscard]] runtime::JobSpec spec(int nodes) const override {
    return runtime::JobSpec{nodes, 64, 2};
  }

  void setup(runtime::Job& job) override {
    tune_linux_mcdram_bind(job);
    alloc_working_set(job, kWsPerRank);
    init_heap(job, 24 * MiB);  // neighbour lists are rebuilt from the heap
  }

  [[nodiscard]] AppResult run(runtime::Job& job, runtime::MpiWorld& world) override {
    world.mpi_init();
    const int nodes = job.spec().nodes;
    // Fraction of a rank's ghost-exchange volume that crosses the node
    // boundary. The lj.weak deck's elongated global decomposition pushes
    // more directions off-node as replicas are added.
    const double off_node = off_node_fraction(nodes);
    // Off-node sends go through the hfi1 device file in MTU-sized chunks —
    // the system calls the LWKs must offload. A user-space-driven fabric
    // (the Section IV outlook) has no such path.
    const bool kernel_fabric =
        job.machine().cluster.network().kernel_involved_ops > 0.0;
    const int device_ops_per_step =
        kernel_fabric
            ? static_cast<int>(std::ceil(off_node * 6.0 * (kGhostBytes / (2.5 * KiB))))
            : 0;
    // Neighbour-list maintenance reallocates from the heap every step
    // (delta rebuilds; full rebuilds amortized): the LWKs' HPC brk() edge.
    const std::int64_t churn[] = {kNeighborChurn, -kNeighborChurn};

    for (int it = 0; it < kSimIters; ++it) {
      world.heap_cycle(churn);
      world.compute_bytes(kTrafficPerStep);
      world.compute_flops(kFlopsPerStep);
      if (device_ops_per_step > 0) {
        world.syscall(kernel::Sys::kWritev, device_ops_per_step, 3 * KiB);
      }
      world.halo_exchange(kGhostBytes, 6);
      if (it % 50 == 0) world.allreduce(48);  // thermo output reduction
    }
    const sim::TimeNs t = world.finish();
    AppResult r;
    r.unit = metric();
    r.elapsed = t;
    r.fom = kSimIters / t.sec();
    return r;
  }

 private:
  [[nodiscard]] static double off_node_fraction(int nodes) {
    if (nodes <= 1) return 0.0;
    // Grows with the machine until every ghost direction of the per-node
    // rank block has an off-node component.
    return std::min(1.0, 0.3 + 0.1 * std::log2(static_cast<double>(nodes) / 16.0));
  }

  static constexpr sim::Bytes kWsPerRank = 96 * MiB;
  static constexpr sim::Bytes kTrafficPerStep = 22 * MiB;
  static constexpr double kFlopsPerStep = 60e6;
  static constexpr sim::Bytes kGhostBytes = 72 * KiB;
  static constexpr std::int64_t kNeighborChurn = 200 * 1024;
  static constexpr int kSimIters = 300;
};

}  // namespace

std::unique_ptr<App> make_lammps() { return std::make_unique<LammpsApp>(); }

}  // namespace mkos::workloads
