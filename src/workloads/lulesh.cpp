// LULESH 2.0 — shock hydrodynamics proxy (paper ref [17]).
//
// Weak-scaled over cubic rank counts; 64 ranks x 2 threads per node. The
// paper's Section IV microscope: LULESH allocates and frees temporaries
// through the heap *every timestep*. Measured with -s 30 over the ~932
// timesteps of the run: 7,526 sbrk(0) queries, 3,028 expansion requests,
// 1,499 contractions (~12k brk() calls); the heap never exceeds 87 MB yet
// cumulative growth is 22 GB. Under Linux every expansion re-faults the
// pages the preceding contraction returned — "this results in a lot of page
// faults, and it is happening on 64 MPI ranks on each node". The LWKs' HPC
// brk() (2 MiB-aligned, physically backed at call time, shrinks ignored)
// turns the steady-state cycle into pointer arithmetic: Table I's 121%.
//
// The -s 30 call counts are reproduced exactly by the per-iteration schedule
// below; -s 50 scales the byte volumes (sub-cubically: glibc routes the
// largest temporaries to mmap once they pass the malloc thresholds).

#include <algorithm>
#include <cmath>
#include <vector>

#include "workloads/app.hpp"

namespace mkos::workloads {

namespace {

using sim::KiB;
using sim::MiB;

class LuleshApp final : public App {
 public:
  LuleshApp(int problem_size, bool force_ddr, int iteration_cap)
      : size_(problem_size), force_ddr_(force_ddr), iteration_cap_(iteration_cap) {}

  [[nodiscard]] std::string_view name() const override { return "Lulesh2.0"; }
  [[nodiscard]] std::string_view metric() const override { return "zones/s"; }

  [[nodiscard]] std::vector<int> node_counts() const override {
    // Fig. 6a x-axis: cubes (LULESH needs a cubic rank count).
    return {1, 27, 64, 125, 216, 343, 512, 729, 1000, 1331, 1728};
  }

  [[nodiscard]] runtime::JobSpec spec(int nodes) const override {
    return runtime::JobSpec{nodes, 64, 2};
  }

  void setup(runtime::Job& job) override {
    if (!force_ddr_) tune_linux_mcdram_bind(job);
    alloc_working_set(job, ws_per_rank());
    init_heap(job, kHeapBaseline);
  }

  [[nodiscard]] AppResult run(runtime::Job& job, runtime::MpiWorld& world) override {
    (void)job;
    world.mpi_init();
    const int real_iters = real_iterations();
    const int iters = std::min(real_iters, iteration_cap_);

    for (int it = 0; it < iters; ++it) {
      heap_cycle(world, it);
      world.compute_bytes(traffic_per_iter());
      world.compute_flops(flops_per_iter());
      world.halo_exchange(halo_bytes(), 6);
      world.allreduce(8);  // global dt reduction
      // The first iteration's heap churn establishes the steady-state
      // physical footprint (the HPC heap never shrinks): re-derive the
      // placement-weighted bandwidths once it exists. On the LWKs this is
      // where Lulesh "runs out of MCDRAM" (Section IV).
      if (it == 0) world.refresh_lanes();
    }
    const sim::TimeNs t = world.finish();
    AppResult r;
    r.unit = metric();
    r.elapsed = t;
    // LULESH's FOM: zone-iterations per second over the measured loop.
    const double zones =
        static_cast<double>(size_) * size_ * size_ * world.world_size();
    r.fom = zones * iters / t.sec() * kFomScale;
    return r;
  }

  /// The -s 30 brk-trace schedule totals (exposed for tests / the bench).
  struct BrkTraceTotals {
    std::uint64_t queries = 7526;
    std::uint64_t grows = 3028;
    std::uint64_t shrinks = 1499;
    int iterations = 932;
  };
  [[nodiscard]] static BrkTraceTotals s30_totals() { return {}; }

 private:
  // -- problem scaling ------------------------------------------------------
  [[nodiscard]] double zone_scale() const {
    return static_cast<double>(size_) * size_ * size_ / (30.0 * 30.0 * 30.0);
  }
  [[nodiscard]] sim::Bytes ws_per_rank() const {
    // ~1.36 KiB of state per zone (nodal + element fields).
    return static_cast<sim::Bytes>(zone_scale() * 27000.0 * 1360.0);
  }
  [[nodiscard]] sim::Bytes traffic_per_iter() const {
    // ~3 passes over the zone state per timestep.
    return static_cast<sim::Bytes>(3.0 * static_cast<double>(ws_per_rank()));
  }
  [[nodiscard]] double flops_per_iter() const { return zone_scale() * 27000.0 * 420.0; }
  [[nodiscard]] sim::Bytes halo_bytes() const {
    const double face = std::pow(zone_scale() * 27000.0, 2.0 / 3.0);
    return static_cast<sim::Bytes>(face * 8.0 * 6.0);
  }
  [[nodiscard]] int real_iterations() const {
    return 932;  // -s 30 measured; comparable order for -s 50
  }
  /// Heap-churn volume per iteration. Sub-cubic in the problem size: past
  /// the malloc thresholds glibc serves the biggest temporaries via mmap.
  [[nodiscard]] sim::Bytes churn_per_iter() const {
    const double s30_churn = 22e9 / 932.0;  // 22 GB cumulative over the run
    return static_cast<sim::Bytes>(s30_churn * std::min(zone_scale(), 1.9));
  }

  // -- the measured brk() schedule -----------------------------------------
  // Per iteration: 8 queries, 3 grows, 1 shrink; the remainders (70 extra
  // queries, 231 extra grows — the initial heap sbrk is the 3,028th — and
  // 567 extra shrinks over the 932 iterations) land in the early timesteps,
  // where LULESH's Courant ramp-up reallocates more aggressively.
  void heap_cycle(runtime::MpiWorld& world, int it) const {
    const int queries = 8 + (it < 70 ? 1 : 0);
    const int grows = 3 + (it < 231 ? 1 : 0);
    const int shrinks = 1 + (it < 567 ? 1 : 0);

    const auto churn = static_cast<std::int64_t>(churn_per_iter());
    std::vector<std::int64_t> deltas;
    deltas.reserve(static_cast<std::size_t>(queries + grows + shrinks));
    for (int q = 0; q < queries; ++q) deltas.push_back(0);
    for (int g = 0; g < grows; ++g) deltas.push_back(churn / grows);
    for (int s = 0; s < shrinks; ++s) deltas.push_back(-(churn / shrinks));
    world.heap_cycle(deltas);
  }

  int size_;
  bool force_ddr_;
  int iteration_cap_;

  // Heap baseline such that the -s 30 peak lands at the measured 87 MB.
  static constexpr sim::Bytes kHeapBaseline = 87000000 - 23605150;
  // Calibration constant mapping zone-iterations/s to the scale of the
  // paper's reported zones/s (Table I: Linux DDR4 single node = 8,959).
  static constexpr double kFomScale = 1.0 / 2067.0;
};

}  // namespace

std::unique_ptr<App> make_lulesh(int problem_size, bool force_ddr, int iteration_cap) {
  return std::make_unique<LuleshApp>(problem_size, force_ddr, iteration_cap);
}

}  // namespace mkos::workloads
