// MILC — lattice QCD, su3_rmd-style CG (paper ref [18], NERSC APEX MILC).
//
// Weak-scaled. 64 ranks x 2 threads per node, small local 4D lattice. The
// defining property: *very short* compute windows between synchronizations —
// a CG iteration streams only a few tens of MiB per rank and then needs an
// 8-direction halo exchange (4D lattice, +/- in x,y,z,t) and a global
// allreduce. At 2,048 nodes the allreduce window is short enough that the
// Linux noise tail dominates the iteration — MILC is the Fig. 4 outlier
// marked 1.99x at full scale.

#include "workloads/app.hpp"

namespace mkos::workloads {

namespace {

using sim::MiB;

class MilcApp final : public App {
 public:
  [[nodiscard]] std::string_view name() const override { return "MILC"; }
  [[nodiscard]] std::string_view metric() const override { return "GFLOP/s"; }

  [[nodiscard]] runtime::JobSpec spec(int nodes) const override {
    return runtime::JobSpec{nodes, 64, 2};
  }

  void setup(runtime::Job& job) override {
    tune_linux_mcdram_bind(job);
    alloc_working_set(job, kWsPerRank);
    init_heap(job, 8 * MiB);
  }

  [[nodiscard]] AppResult run(runtime::Job& job, runtime::MpiWorld& world) override {
    (void)job;
    world.mpi_init();
    const double ranks = world.world_size();
    for (int it = 0; it < kSimIters; ++it) {
      // Dslash application: a few passes over gauge links + fermion fields.
      world.compute_bytes(kTrafficPerIter);
      world.compute_flops(kFlopsPerIter);
      // 4D nearest neighbours: 8 surface messages.
      world.halo_exchange(48 * sim::KiB, 8);
      // CG scalar reduction every iteration.
      world.allreduce(16);
    }
    const sim::TimeNs t = world.finish();
    AppResult r;
    r.unit = metric();
    r.elapsed = t;
    r.fom = kFlopsPerIter * ranks * kSimIters / t.sec() / 1e9;
    return r;
  }

 private:
  static constexpr sim::Bytes kWsPerRank = 120 * MiB;      // 64 ranks -> 7.5 GiB/node
  static constexpr sim::Bytes kTrafficPerIter = 20 * MiB;  // short CG window (~2.7 ms)
  static constexpr double kFlopsPerIter = 8e6;
  static constexpr int kSimIters = 80;
};

}  // namespace

std::unique_ptr<App> make_milc() { return std::make_unique<MilcApp>(); }

}  // namespace mkos::workloads
