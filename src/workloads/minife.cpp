// MiniFE — implicit finite-element proxy, CG solve (paper ref [19]).
//
// The one benchmark the paper did NOT weak-scale: the global 660x660x660
// problem is divided across ranks, so per-rank work *shrinks* with node
// count while the two dot-product allreduces per CG iteration stay. At
// 1,024 nodes (65,536 ranks) the compute window is down to ~100 us and the
// iteration is at the mercy of the collective: on the LWKs it keeps scaling,
// on Linux the noise tail lands inside nearly every allreduce and aggregate
// Mflops collapse — "that apparent performance gain is actually due to Linux
// performance dropping precariously" (Fig. 5b; 6.47x / 7.01x in Fig. 4).

#include <algorithm>
#include <cmath>

#include "workloads/app.hpp"

namespace mkos::workloads {

namespace {

using sim::MiB;

class MiniFeApp final : public App {
 public:
  explicit MiniFeApp(int nx) : nx_(nx) {}

  [[nodiscard]] std::string_view name() const override { return "MiniFE"; }
  [[nodiscard]] std::string_view metric() const override { return "Mflops"; }

  [[nodiscard]] std::vector<int> node_counts() const override {
    // Fig. 5b x-axis.
    return {16, 32, 64, 128, 256, 512, 1024};
  }

  [[nodiscard]] runtime::JobSpec spec(int nodes) const override {
    return runtime::JobSpec{nodes, 64, 4};
  }

  void setup(runtime::Job& job) override {
    tune_linux_mcdram_bind(job);
    const double rows = rows_per_rank(job.spec().nodes);
    // ~500 B/row: 27-point stencil CRS row (27 x (8+4) B) + solver vectors.
    const auto ws = static_cast<sim::Bytes>(rows * 500.0);
    alloc_working_set(job, std::max<sim::Bytes>(ws, 4 * MiB));
    init_heap(job, 8 * MiB);
  }

  [[nodiscard]] AppResult run(runtime::Job& job, runtime::MpiWorld& world) override {
    world.mpi_init();
    const double rows = rows_per_rank(job.spec().nodes);
    const auto traffic = static_cast<sim::Bytes>(rows * 390.0);  // SpMV + axpys
    const double flops_per_iter = rows * 62.0;  // 2*27 SpMV + 4*2 vector ops
    const auto halo_bytes = static_cast<sim::Bytes>(
        std::max(2048.0, 8.0 * std::pow(rows, 2.0 / 3.0)));

    for (int it = 0; it < kSimIters; ++it) {
      world.compute_bytes(std::max<sim::Bytes>(traffic, 4096));
      world.compute_flops(flops_per_iter);
      // MPI progress / OpenMP spin-waits between phases.
      world.sched_yields(150);
      world.halo_exchange(halo_bytes, 6);
      world.allreduce(8);  // r.z
      world.allreduce(8);  // p.Ap
    }
    const sim::TimeNs t = world.finish();
    AppResult r;
    r.unit = metric();
    r.elapsed = t;
    r.fom = flops_per_iter * world.world_size() * kSimIters / t.sec() / 1e6;
    return r;
  }

 private:
  [[nodiscard]] double rows_per_rank(int nodes) const {
    return static_cast<double>(nx_) * nx_ * nx_ / (64.0 * nodes);
  }

  int nx_;
  static constexpr int kSimIters = 60;
};

}  // namespace

std::unique_ptr<App> make_minife(int nx) { return std::make_unique<MiniFeApp>(nx); }

}  // namespace mkos::workloads
