// Workload registry: factories by name + the Fig. 4 suite.

#include "workloads/app.hpp"

namespace mkos::workloads {

std::vector<std::unique_ptr<App>> make_fig4_apps() {
  std::vector<std::unique_ptr<App>> apps;
  for (const std::string& name : fig4_app_names()) apps.push_back(make_app(name));
  return apps;
}

std::vector<std::string> fig4_app_names() {
  // Fig. 4 order: AMG2013, CCS-QCD, GeoFEM, HPCG, LAMMPS, MILC, MiniFE
  // ("We left out Lulesh 2.0 since it uses different node counts").
  return {"AMG2013", "CCS-QCD", "GeoFEM", "HPCG", "LAMMPS", "MILC", "MiniFE"};
}

std::vector<std::string> registry_names() {
  std::vector<std::string> names = fig4_app_names();
  names.insert(names.begin() + 5, "Lulesh2.0");  // alphabetical slot
  return names;
}

std::unique_ptr<App> make_app(std::string_view name) {
  if (name == "AMG2013") return make_amg2013();
  if (name == "CCS-QCD") return make_ccs_qcd();
  if (name == "GeoFEM") return make_geofem();
  if (name == "HPCG") return make_hpcg();
  if (name == "LAMMPS") return make_lammps();
  if (name == "Lulesh2.0") return make_lulesh();
  if (name == "MILC") return make_milc();
  if (name == "MiniFE") return make_minife();
  return nullptr;
}

}  // namespace mkos::workloads
