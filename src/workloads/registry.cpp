// Workload registry: factories by name + the Fig. 4 suite.

#include "workloads/app.hpp"

namespace mkos::workloads {

std::vector<std::unique_ptr<App>> make_fig4_apps() {
  std::vector<std::unique_ptr<App>> apps;
  for (const std::string& name : fig4_app_names()) apps.push_back(make_app(name));
  return apps;
}

std::vector<std::string> fig4_app_names() {
  // Fig. 4 order: AMG2013, CCS-QCD, GeoFEM, HPCG, LAMMPS, MILC, MiniFE
  // ("We left out Lulesh 2.0 since it uses different node counts").
  return {"AMG2013", "CCS-QCD", "GeoFEM", "HPCG", "LAMMPS", "MILC", "MiniFE"};
}

std::vector<std::string> registry_names() {
  std::vector<std::string> names = fig4_app_names();
  names.insert(names.begin() + 5, "Lulesh2.0");  // alphabetical slot
  // XSBench placement variants sort after MiniFE; appended to keep the
  // long-standing prefix (and everything keyed to its order) stable.
  names.emplace_back("XSBench/first-touch");
  names.emplace_back("XSBench/interleave");
  names.emplace_back("XSBench/mcdram");
  return names;
}

double app_cost_weight(std::string_view name) {
  // Measured: median per-cell simulation wall per rep (bench/sweep_sched
  // calibration grid, all configs × {16..512} nodes), normalized to MiniFE.
  // The analytic engine makes most cells near-flat; the one genuine heavy
  // hitter is Lulesh 2.0, whose brk-churn trace replays at full length on
  // the Linux config. The exact numbers only steer deque placement.
  if (name == "AMG2013") return 0.8;
  if (name == "CCS-QCD") return 0.4;
  if (name == "GeoFEM") return 0.8;
  if (name == "HPCG") return 1.0;
  if (name == "LAMMPS") return 1.6;
  if (name == "Lulesh2.0") return 30.0;
  if (name == "MILC") return 1.0;
  if (name == "MiniFE") return 1.0;
  // Bandwidth-loop proxies with a single-threaded 64-rank layout; cheaper
  // than MiniFE's 4-thread cells.
  if (name == "XSBench/first-touch") return 0.6;
  if (name == "XSBench/interleave") return 0.6;
  if (name == "XSBench/mcdram") return 0.6;
  return 1.0;
}

std::unique_ptr<App> make_app(std::string_view name) {
  if (name == "AMG2013") return make_amg2013();
  if (name == "CCS-QCD") return make_ccs_qcd();
  if (name == "GeoFEM") return make_geofem();
  if (name == "HPCG") return make_hpcg();
  if (name == "LAMMPS") return make_lammps();
  if (name == "Lulesh2.0") return make_lulesh();
  if (name == "MILC") return make_milc();
  if (name == "MiniFE") return make_minife();
  if (name == "XSBench/first-touch") return make_xsbench_first_touch();
  if (name == "XSBench/interleave") return make_xsbench_interleave();
  if (name == "XSBench/mcdram") return make_xsbench_mcdram();
  return nullptr;
}

}  // namespace mkos::workloads
