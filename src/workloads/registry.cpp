// Workload registry: factories by name + the Fig. 4 suite.

#include "workloads/app.hpp"

namespace mkos::workloads {

std::vector<std::unique_ptr<App>> make_fig4_apps() {
  // Fig. 4 order: AMG2013, CCS-QCD, GeoFEM, HPCG, LAMMPS, MILC, MiniFE
  // ("We left out Lulesh 2.0 since it uses different node counts").
  std::vector<std::unique_ptr<App>> apps;
  apps.push_back(make_amg2013());
  apps.push_back(make_ccs_qcd());
  apps.push_back(make_geofem());
  apps.push_back(make_hpcg());
  apps.push_back(make_lammps());
  apps.push_back(make_milc());
  apps.push_back(make_minife());
  return apps;
}

std::unique_ptr<App> make_app(std::string_view name) {
  if (name == "AMG2013") return make_amg2013();
  if (name == "CCS-QCD") return make_ccs_qcd();
  if (name == "GeoFEM") return make_geofem();
  if (name == "HPCG") return make_hpcg();
  if (name == "LAMMPS") return make_lammps();
  if (name == "Lulesh2.0") return make_lulesh();
  if (name == "MILC") return make_milc();
  if (name == "MiniFE") return make_minife();
  return nullptr;
}

}  // namespace mkos::workloads
