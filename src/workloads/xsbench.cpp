// XSBench — neutron cross-section lookup proxy (PAPERS.md: Yoshii et al.,
// the canonical NUMA-placement-sensitive kernel of Monte Carlo transport).
//
// The measured loop is random energy/nuclide lookups into a large read-only
// unionized energy grid: almost no flops, almost all memory bandwidth, so
// the figure of merit tracks where the working set landed. Three placement
// variants expose the policy axis of Section III-C:
//
//   first-touch — the untuned baseline: pages bound to DDR4 (what a naive
//                 first-touch run gets once MCDRAM is not explicitly asked
//                 for), every kernel reads at DDR4 speed.
//   interleave  — pages striped across all domains, ~half the reads hit
//                 MCDRAM on every kernel.
//   mcdram      — MCDRAM-preferred: on Linux, PREFERRED takes exactly ONE
//                 domain (the SNC-4 limitation), so 64 ranks x 96 MiB spill
//                 out of that 4 GiB domain down the zonelist; the LWKs'
//                 native MCDRAM-first spill packs all four domains.
//
// Each iteration also performs kernel-object allocation churn (grid node
// scratch, tally blocks) through the allocator model when one is attached —
// on Linux the magazine/depot/zone-lock cascade plus kreclaimd widen the
// placement gap as core counts grow; on the LWKs churn stays near-free.

#include <algorithm>

#include "kernel/kernel.hpp"
#include "sim/contracts.hpp"
#include "workloads/app.hpp"

namespace mkos::workloads {

namespace {

using sim::KiB;
using sim::MiB;

enum class XsPlacement { kFirstTouch, kInterleave, kMcdramPreferred };

class XsBenchApp final : public App {
 public:
  explicit XsBenchApp(XsPlacement placement) : placement_(placement) {}

  [[nodiscard]] std::string_view name() const override {
    switch (placement_) {
      case XsPlacement::kFirstTouch: return "XSBench/first-touch";
      case XsPlacement::kInterleave: return "XSBench/interleave";
      case XsPlacement::kMcdramPreferred: return "XSBench/mcdram";
    }
    return "XSBench";
  }
  [[nodiscard]] std::string_view metric() const override { return "lookups/s"; }

  [[nodiscard]] std::vector<int> node_counts() const override {
    return {1, 2, 4, 8, 16, 32, 64, 128, 256};
  }

  [[nodiscard]] runtime::JobSpec spec(int nodes) const override {
    return runtime::JobSpec{nodes, 64, 1};
  }

  void setup(runtime::Job& job) override {
    kernel::Kernel& k = job.kernel();
    const hw::NodeTopology& topo = job.node().topo();
    const bool linux_kernel = k.kind() == kernel::OsKind::kLinux;

    mem::MemPolicy policy = mem::MemPolicy::standard();
    switch (placement_) {
      case XsPlacement::kFirstTouch:
        // Bind to DDR4: the portable rendering of "first touch landed in
        // DDR4" that behaves identically under every kernel's default spill.
        policy = mem::MemPolicy::bind(topo.domains_of_kind(hw::MemKind::kDdr4));
        break;
      case XsPlacement::kInterleave: {
        std::vector<hw::DomainId> all;
        for (const auto& d : topo.domains()) all.push_back(d.id);
        policy = mem::MemPolicy::interleave(all);
        break;
      }
      case XsPlacement::kMcdramPreferred: {
        if (linux_kernel) {
          // PREFERRED accepts exactly one domain on Linux (Section III-C);
          // overflow walks the zonelist from there.
          const auto& mcdram = topo.domains_of_kind(hw::MemKind::kMcdram);
          MKOS_ASSERT(!mcdram.empty());
          policy = mem::MemPolicy::preferred(mcdram.front());
        }
        // LWKs: the default policy already spills MCDRAM-first across all
        // four domains — exactly what "MCDRAM preferred" means there.
        break;
      }
    }
    if (policy.mode != mem::PolicyMode::kDefault) {
      for (int i = 0; i < job.lane_count(); ++i) {
        const auto r = k.sys_set_mempolicy(job.lane(i), policy);
        MKOS_ASSERT(r.err == kernel::kOk);
      }
    }
    alloc_working_set(job, kGridBytes);
    init_heap(job, 8 * MiB);
  }

  [[nodiscard]] AppResult run(runtime::Job& job, runtime::MpiWorld& world) override {
    (void)job;
    world.mpi_init();
    for (int it = 0; it < kSimIters; ++it) {
      // Each lookup walks ~5 gridpoint neighborhoods of ~192 B: pure
      // bandwidth against wherever setup() placed the grid.
      world.compute_bytes(kLookupsPerIter * kBytesPerLookup);
      // Tally/scratch kernel-object churn (freed within the iteration).
      world.alloc_churn(kChurnPairsPerIter, 4 * KiB);
      world.sched_yields(40);  // OpenMP dynamic-schedule handoffs
      world.allreduce(8);      // running verification hash
    }
    const sim::TimeNs t = world.finish();
    AppResult r;
    r.unit = metric();
    r.elapsed = t;
    r.fom = static_cast<double>(kLookupsPerIter) * world.world_size() *
            kSimIters / t.sec();
    return r;
  }

 private:
  XsPlacement placement_;
  /// Unionized grid slice per rank: 64 ranks x 96 MiB = 6 GiB per node —
  /// deliberately larger than one 4 GiB MCDRAM domain (the Linux PREFERRED
  /// trap) but far below the 16 GiB of all four (the LWK spill succeeds).
  static constexpr sim::Bytes kGridBytes = 96 * MiB;
  static constexpr std::uint64_t kLookupsPerIter = 120000;
  static constexpr sim::Bytes kBytesPerLookup = 960;
  static constexpr std::uint64_t kChurnPairsPerIter = 4000;
  static constexpr int kSimIters = 50;
};

}  // namespace

std::unique_ptr<App> make_xsbench_first_touch() {
  return std::make_unique<XsBenchApp>(XsPlacement::kFirstTouch);
}
std::unique_ptr<App> make_xsbench_interleave() {
  return std::make_unique<XsBenchApp>(XsPlacement::kInterleave);
}
std::unique_ptr<App> make_xsbench_mcdram() {
  return std::make_unique<XsBenchApp>(XsPlacement::kMcdramPreferred);
}

}  // namespace mkos::workloads
