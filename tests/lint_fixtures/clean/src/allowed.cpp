// Fixture: a rule violation suppressed by a *justified* allow annotation —
// both same-line and line-above forms. Must lint clean.

#include <chrono>

namespace mkos::fixtures {

double telemetry_stamp() {
  const auto t = std::chrono::steady_clock::now();  // mkos-lint: allow(wall-clock) — fixture: host-side telemetry only, never a simulated result
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double telemetry_stamp2() {
  // mkos-lint: allow(wall-clock) — fixture: the annotation-above form, with a
  // multi-line justification that still covers the next code line.
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace mkos::fixtures
