// Clean fixture source: ordered containers, no clocks, no raw asserts.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace mkos::fixtures {

int sum_ordered(const std::map<int, int>& m) {
  int total = 0;
  for (const auto& [k, v] : m) total += v;  // std::map: deterministic order
  return total;
}

std::unique_ptr<int> boxed(int v) { return std::make_unique<int>(v); }

}  // namespace mkos::fixtures
