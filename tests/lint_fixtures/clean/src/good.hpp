#pragma once
// Clean fixture header: pragma + mkos namespace, contracts, no banned calls.
// Mentions of std::mt19937 or steady_clock::now() in comments (like these)
// must NOT be flagged: the linter tokenizes comments away.

#include <cstdint>

namespace mkos::fixtures {

/// "std::rand() inside a string literal is fine too."
inline const char* motto() { return "never call std::rand() or time(nullptr)"; }

/// Digit separators must not be mistaken for char literals.
constexpr std::uint64_t kBig = 1'000'000;

}  // namespace mkos::fixtures
