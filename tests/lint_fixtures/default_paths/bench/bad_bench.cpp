void bad_bench(int v) { assert(v > 0); }
