void bad_example(int v) { assert(v > 0); }
