// Clean file: the default-path-set regression test proves violations in the
// sibling bench/tests/examples/tools trees are found without naming paths.
int default_paths_ok = 0;
