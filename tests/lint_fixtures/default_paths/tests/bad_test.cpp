void bad_test(int v) { assert(v > 0); }
