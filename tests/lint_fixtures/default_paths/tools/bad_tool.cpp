void bad_tool(int v) { assert(v > 0); }
