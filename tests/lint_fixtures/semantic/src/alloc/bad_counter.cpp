// Closed-group fixture for the alloc group: one registered literal (clean)
// and one unregistered literal — the alloc.* manifest is closed, so any
// counter the subsystem emits must be declared in the schema first.

#include "sim/base.hpp"

namespace mkos::alloc {

struct Ledger {
  void incr(const char* name) { (void)name; }
};

void emit(Ledger& ledger) {
  ledger.incr("alloc.magazine_hits");  // registered: clean
  ledger.incr("alloc.bogus");          // unregistered literal, closed group
}

}  // namespace mkos::alloc
