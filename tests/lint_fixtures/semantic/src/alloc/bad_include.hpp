#pragma once
// alloc -> runtime is not in the fixture allowed-edge list: the allocator
// model must stay below the runtime (the runtime consumes it, never the
// other way around), so this include is a layering violation.

#include "runtime/api.hpp"
#include "sim/base.hpp"

namespace mkos::alloc {
int model();
}  // namespace mkos::alloc
