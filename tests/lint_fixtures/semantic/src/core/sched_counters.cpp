// Closed-group fixture for the dotted campaign.sched group: one registered
// literal (clean) and one unregistered literal in the same closed group —
// the group key contains a dot, so prefix matching must take the longest
// registered group, not the first dot.

namespace mkos::core {

struct Ledger {
  void incr(const char* name) { (void)name; }
};

void emit_sched(Ledger& ledger) {
  ledger.incr("campaign.sched.steals");  // registered: clean
  ledger.incr("campaign.sched.bogus");   // unregistered literal, closed group
}

}  // namespace mkos::core
