#pragma once
// core -> mem is an allowed edge, yet together with mem/heap.hpp's include
// of this header it forms a module cycle, which is flagged regardless of
// the allowed-edge list.

#include "mem/heap.hpp"

namespace mkos::core {
int top();
}  // namespace mkos::core
