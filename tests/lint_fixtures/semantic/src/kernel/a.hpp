#pragma once
// Half of a same-module header cycle: invisible at module granularity, so
// it must be caught by the file-level cycle check.

#include "kernel/b.hpp"

namespace mkos::kernel {
int a();
}  // namespace mkos::kernel
