#pragma once
// The other half of the same-module header cycle.

#include "kernel/a.hpp"

namespace mkos::kernel {
int b();
}  // namespace mkos::kernel
