// Counter-manifest fixture: one registered literal (clean), one unregistered
// literal, and one dynamic name whose group is not in the manifest.

#include "sim/base.hpp"

namespace mkos::mem {

struct Ledger {
  void incr(const std::string& name) { (void)name; }
};

void emit(Ledger& ledger, const std::string& suffix) {
  ledger.incr("mem.faults");         // registered: clean
  ledger.incr("mem.bogus_counter");  // unregistered literal
  ledger.incr("zzz." + suffix);      // unregistered group prefix
}

}  // namespace mkos::mem
