#pragma once
// The sim include is allowed by the fixture rules; the core include is the
// layering violation (mem -> core is not in the list) and one edge of the
// mem <-> core cycle.

#include "core/top.hpp"
#include "sim/base.hpp"

namespace mkos::mem {
int heap();
}  // namespace mkos::mem
