#pragma once
// Include target for the alloc -> runtime layering fixture: the layering
// phase only resolves includes against files inside the scanned set, so the
// upward edge must point at a real fixture header.

namespace mkos::runtime {
int api();
}  // namespace mkos::runtime
