#pragma once
// Bottom of the fixture layering order: includes nothing.

namespace mkos::sim {
int base();
}  // namespace mkos::sim
