// Negative fixture for the Clang capability-analysis gate (ctest
// mkos_thread_safety_negative, Clang only): reading a guarded member without
// holding its mutex must fail to compile under
// -Wthread-safety -Werror=thread-safety-analysis. If this file ever compiles
// cleanly, the annotation macros have stopped expanding and the whole
// race-detection layer is silently off.

#include "sim/thread_safety.hpp"

namespace mkos::sim {

struct Guarded {
  Mutex mu;
  int value MKOS_GUARDED_BY(mu) = 0;
};

int read_unlocked(Guarded& g) {
  return g.value;  // no lock held: thread-safety-analysis error
}

}  // namespace mkos::sim
