// Fixture: header-hygiene — no #pragma once, and declares outside mkos::.
#ifndef MKOS_FIXTURE_BAD_HEADER
#define MKOS_FIXTURE_BAD_HEADER

namespace fixtures_wrong_ns {
inline int one() { return 1; }
}  // namespace fixtures_wrong_ns

#endif
