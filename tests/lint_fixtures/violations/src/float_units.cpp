// Fixture: float-arith — float in an accounting path (src/ scope).

namespace mkos::fixtures {

float lossy_bytes_to_gib(long long bytes) {
  return static_cast<float>(bytes) / (1024.0f * 1024.0f * 1024.0f);
}

}  // namespace mkos::fixtures
