// Fixture: naked-new — manual new/delete outside src/sim/.

namespace mkos::fixtures {

struct Node {
  int value = 0;
};

int churn() {
  Node* n = new Node{42};
  const int v = n->value;
  delete n;
  return v;
}

}  // namespace mkos::fixtures
