// Fixture: allow-no-reason — an annotation without a written justification
// neither suppresses the underlying violation nor passes itself.

#include <chrono>

namespace mkos::fixtures {

double stamp() {
  const auto t = std::chrono::steady_clock::now();  // mkos-lint: allow(wall-clock)
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace mkos::fixtures
