// Fixture: raw-assert — assert() instead of MKOS_* contracts.

#include <cassert>

namespace mkos::fixtures {

int halve(int v) {
  assert(v % 2 == 0);
  return v / 2;
}

}  // namespace mkos::fixtures
