// Fixture: raw-rng — engine construction outside src/sim/rng.*.

#include <cstdlib>
#include <random>

namespace mkos::fixtures {

int roll() {
  std::mt19937 gen(std::random_device{}());
  return static_cast<int>(gen()) + std::rand();
}

}  // namespace mkos::fixtures
