// Stale-suppression fixture: the annotation is justified and names a real
// rule, but the assert it once covered was refactored away, so it suppresses
// nothing and must be flagged.
// mkos-lint: allow(raw-assert) — invariant documented at the call site.
int stale_allow_value() { return 3; }
