// Fixture: swallowed-catch — a catch-all handler that absorbs the
// exception without rethrowing or capturing it.

namespace mkos::fixtures {

int risky();

int swallow_everything() {
  try {
    return risky();
  } catch (...) {
    // Nothing rethrown, nothing captured: the failure vanishes.
    return -1;
  }
}

}  // namespace mkos::fixtures
