// Fixture: unknown-rule — an allow annotation naming a rule that does not
// exist (typo'd suppressions must not vanish silently).

namespace mkos::fixtures {

// mkos-lint: allow(wall-clok) — typo'd rule id, should be flagged.
inline int one() { return 1; }

}  // namespace mkos::fixtures
