// Fixture: unordered-iter — result accumulation in hash-table order.

#include <string>
#include <unordered_map>

namespace mkos::fixtures {

std::string join_keys(const std::unordered_map<std::string, int>& unused) {
  std::unordered_map<std::string, int> counts = unused;
  std::string out;
  for (const auto& [key, value] : counts) out += key;  // order leaks into out
  return out;
}

}  // namespace mkos::fixtures
