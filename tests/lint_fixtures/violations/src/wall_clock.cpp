// Fixture: wall-clock — host clock reads outside the telemetry allowlist.

#include <chrono>
#include <ctime>

namespace mkos::fixtures {

double stamp() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long stamp_c() { return static_cast<long>(time(nullptr)); }

}  // namespace mkos::fixtures
