#pragma once
// Minimal strict RFC 8259 JSON parser for tests: validates a document and
// decodes string literals, rejecting everything the grammar rejects (bare
// nan/inf, trailing commas, unescaped control characters, trailing junk).
// Test-only — production code never parses JSON, it only emits it.

#include <cctype>
#include <cstdlib>
#include <string>

namespace mkos::testutil {

class StrictJson {
 public:
  explicit StrictJson(const std::string& text) : p_(text.c_str()), end_(p_ + text.size()) {}

  /// True iff the whole input is exactly one valid JSON document.
  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return p_ == end_;
  }

  /// Decode a standalone JSON string literal; returns false on any
  /// grammar violation. `out` receives the unescaped bytes.
  static bool decode_string(const std::string& literal, std::string* out) {
    StrictJson j{literal};
    if (!j.string(out)) return false;
    return j.p_ == j.end_;
  }

 private:
  const char* p_;
  const char* end_;

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }
  bool literal(const char* word) {
    const char* q = p_;
    for (; *word; ++word, ++q) {
      if (q == end_ || *q != *word) return false;
    }
    p_ = q;
    return true;
  }
  bool value() {  // NOLINT(misc-no-recursion)
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return object();
      case '[': return array();
      case '"': return string(nullptr);
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {  // NOLINT(misc-no-recursion)
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') { ++p_; return true; }
    while (true) {
      skip_ws();
      if (!string(nullptr)) return false;
      skip_ws();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == '}') { ++p_; return true; }
      if (*p_ != ',') return false;
      ++p_;
    }
  }
  bool array() {  // NOLINT(misc-no-recursion)
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') { ++p_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ']') { ++p_; return true; }
      if (*p_ != ',') return false;
      ++p_;
    }
  }
  static int hex(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }
  bool string(std::string* out) {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    while (p_ != end_) {
      const unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') { ++p_; return true; }
      if (c < 0x20) return false;  // unescaped control char
      if (c == '\\') {
        ++p_;
        if (p_ == end_) return false;
        switch (*p_) {
          case '"': case '\\': case '/':
            if (out) *out += *p_;
            break;
          case 'b': if (out) *out += '\b'; break;
          case 'f': if (out) *out += '\f'; break;
          case 'n': if (out) *out += '\n'; break;
          case 'r': if (out) *out += '\r'; break;
          case 't': if (out) *out += '\t'; break;
          case 'u': {
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              ++p_;
              if (p_ == end_) return false;
              const int h = hex(*p_);
              if (h < 0) return false;
              code = code * 16 + h;
            }
            // Tests only emit ASCII escapes; decode BMP < 0x80 directly.
            if (out && code < 0x80) *out += static_cast<char>(code);
            break;
          }
          default: return false;
        }
        ++p_;
      } else {
        if (out) *out += static_cast<char>(c);
        ++p_;
      }
    }
    return false;  // unterminated
  }
  bool number() {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    if (p_ == end_ || std::isdigit(static_cast<unsigned char>(*p_)) == 0) return false;
    if (*p_ == '0') {
      ++p_;
    } else {
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_)) != 0) ++p_;
    }
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      if (p_ == end_ || std::isdigit(static_cast<unsigned char>(*p_)) == 0) return false;
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_)) != 0) ++p_;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ == end_ || std::isdigit(static_cast<unsigned char>(*p_)) == 0) return false;
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_)) != 0) ++p_;
    }
    return p_ != start;
  }
};

}  // namespace mkos::testutil
