// Unit tests for mkos::alloc — the VMem interval arena, the per-CPU
// magazine SlabCache (refill cascade, resize hysteresis, drain), the
// DomainAllocator traffic hook that attributes kernel-heap refills per
// lane, the per-kernel personality separation, and the two contracts the
// subsystem ships under: inert-by-default (an AllocSpec{} config keeps its
// pre-subsystem fingerprint/digest) and serial-vs-pooled ledger identity
// with the model enabled.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "alloc/model.hpp"
#include "alloc/slab.hpp"
#include "alloc/spec.hpp"
#include "alloc/vmem.hpp"
#include "core/experiment.hpp"
#include "hw/knl.hpp"
#include "mem/phys_allocator.hpp"
#include "sim/thread_pool.hpp"
#include "sim/units.hpp"
#include "workloads/app.hpp"

namespace {

using namespace mkos;

// ----------------------------------------------------------------- VmemArena

alloc::VmemArena make_arena(sim::Bytes backing,
                            sim::Bytes quantum = 4 * sim::KiB,
                            sim::Bytes import_quantum = 64 * sim::KiB) {
  // Import grants in import_quantum multiples until `backing` runs out.
  auto import = [backing, granted = sim::Bytes{0}](sim::Bytes want) mutable {
    const sim::Bytes left = backing > granted ? backing - granted : 0;
    const sim::Bytes give = want <= left ? want : 0;
    granted += give;
    return give;
  };
  return alloc::VmemArena("test", quantum, import_quantum, import,
                          sim::TimeNs{50}, sim::TimeNs{400});
}

TEST(VmemArena, AllocImportsAndQuantumCacheServesTheFree) {
  alloc::VmemArena arena = make_arena(sim::Bytes{1} * sim::MiB);
  const alloc::VmemAlloc a = arena.alloc(4 * sim::KiB);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(arena.stats().imports, 1u);      // empty arena imported first
  EXPECT_GT(a.cost.ns(), 0);
  EXPECT_EQ(arena.span_bytes(), 64 * sim::KiB);

  (void)arena.free(a.offset, 4 * sim::KiB);  // lands in the quantum cache
  const alloc::VmemAlloc b = arena.alloc(4 * sim::KiB);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(b.offset, a.offset);             // constant-time pop of the same slot
  EXPECT_EQ(arena.stats().qcache_hits, 1u);
  EXPECT_EQ(arena.stats().allocs, 2u);
  EXPECT_EQ(arena.stats().frees, 1u);
}

TEST(VmemArena, FreeCoalescesNeighborsBackToOneSegment) {
  alloc::VmemArena arena = make_arena(sim::Bytes{1} * sim::MiB);
  // 5 quanta = 20 KiB: above the quantum-cache classes, so frees take the
  // segment path and must coalesce.
  const sim::Bytes sz = 20 * sim::KiB;
  const alloc::VmemAlloc a = arena.alloc(sz);
  const alloc::VmemAlloc b = arena.alloc(sz);
  const alloc::VmemAlloc c = arena.alloc(sz);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  ASSERT_TRUE(c.ok);
  ASSERT_EQ(arena.free_segment_count(), 1u);  // one tail remainder
  // Free out of order: middle, head, tail — ends fully coalesced.
  (void)arena.free(b.offset, sz);
  EXPECT_EQ(arena.free_segment_count(), 2u);
  (void)arena.free(a.offset, sz);
  EXPECT_EQ(arena.free_segment_count(), 2u);  // a+b merged, tail separate
  (void)arena.free(c.offset, sz);
  EXPECT_EQ(arena.free_segment_count(), 1u);  // whole span free again
}

TEST(VmemArena, ExhaustedSourceFailsTheAllocAndCountsIt) {
  alloc::VmemArena arena = make_arena(sim::Bytes{0});  // source grants nothing
  const alloc::VmemAlloc a = arena.alloc(4 * sim::KiB);
  EXPECT_FALSE(a.ok);
  EXPECT_EQ(arena.stats().import_fails, 1u);
  EXPECT_EQ(arena.span_bytes(), 0u);  // short grants must not grow the span
  EXPECT_EQ(arena.stats().allocs, 0u);
}

// ----------------------------------------------------------------- SlabCache

TEST(SlabCache, EmptyDepotCascadesToSlabConstruction) {
  alloc::VmemArena arena = make_arena(sim::Bytes{4} * sim::MiB);
  alloc::SlabCosts costs;
  costs.cpu_hit = sim::TimeNs{10};
  costs.depot_lock = sim::TimeNs{50};
  costs.zone_lock = sim::TimeNs{200};
  // 64 KiB slabs of 4 KiB objects = 16 rounds per slab.
  alloc::SlabCache cache(&arena, 4 * sim::KiB, 64 * sim::KiB, costs,
                         alloc::MagazinePolicy{}, /*cpus=*/2);

  const sim::TimeNs cost = cache.churn(0, 40, 1, 1.0, 1.0);
  // Nothing cached anywhere: every round misses through to fresh slabs.
  EXPECT_EQ(cache.stats().magazine_hits, 0u);
  EXPECT_EQ(cache.stats().magazine_misses, 40u);
  EXPECT_EQ(cache.stats().depot_loads, 0u);  // depot was empty
  EXPECT_EQ(cache.stats().slab_creates, 3u);  // ceil(40 / 16)
  EXPECT_GE(arena.stats().imports, 1u);       // cascade reached the source
  // The burst's 40 frees: the CPU keeps two magazines (16), rest unloads.
  EXPECT_EQ(cache.cached_rounds(0), 16u);
  EXPECT_EQ(cache.depot_rounds(), (3u * 16u - 40u) + 24u);
  EXPECT_GT(cost.ns(), (costs.cpu_hit * 80).ns());  // locks + arena on top

  // Second identical burst: the cache and depot now serve part of it.
  (void)cache.churn(0, 40, 1, 1.0, 1.0);
  EXPECT_EQ(cache.stats().magazine_hits, 16u);
  EXPECT_GT(cache.stats().depot_loads, 0u);
}

TEST(SlabCache, MagazineResizeGrowsUnderPressureAndShrinksWhenQuiet) {
  alloc::VmemArena arena = make_arena(sim::Bytes{16} * sim::MiB);
  alloc::MagazinePolicy policy;
  policy.min_rounds = 8;
  policy.max_rounds = 64;
  policy.grow_trip_threshold = 4;
  policy.shrink_quiet_bursts = 2;
  alloc::SlabCache cache(&arena, 4 * sim::KiB, 64 * sim::KiB,
                         alloc::SlabCosts{}, policy, 1);
  ASSERT_EQ(cache.magazine_rounds(0), 8);

  // A large burst forces many depot unload trips -> grow.
  (void)cache.churn(0, 200, 1, 1.0, 1.0);
  EXPECT_EQ(cache.magazine_rounds(0), 16);
  EXPECT_EQ(cache.stats().resizes_up, 1u);

  // Bursts served entirely from the per-CPU layer are depot-quiet; after
  // the configured streak the magazine halves again.
  (void)cache.churn(0, 8, 1, 1.0, 1.0);
  EXPECT_EQ(cache.magazine_rounds(0), 16);  // quiet streak not complete
  (void)cache.churn(0, 8, 1, 1.0, 1.0);
  EXPECT_EQ(cache.magazine_rounds(0), 8);
  EXPECT_EQ(cache.stats().resizes_down, 1u);
}

TEST(SlabCache, DrainReturnsPerCpuRoundsToTheDepot) {
  alloc::VmemArena arena = make_arena(sim::Bytes{4} * sim::MiB);
  alloc::SlabCache cache(&arena, 4 * sim::KiB, 64 * sim::KiB,
                         alloc::SlabCosts{}, alloc::MagazinePolicy{}, 2);
  (void)cache.churn(1, 40, 2, 1.0, 1.0);
  const std::uint64_t cached = cache.cached_rounds(1);
  ASSERT_GT(cached, 0u);
  const std::uint64_t depot = cache.depot_rounds();

  cache.drain(1);
  EXPECT_EQ(cache.cached_rounds(1), 0u);
  EXPECT_EQ(cache.depot_rounds(), depot + cached);
  const std::uint64_t unloads = cache.stats().depot_unloads;
  cache.drain(1);  // idempotent on an empty cache
  EXPECT_EQ(cache.stats().depot_unloads, unloads);
}

TEST(SlabCache, LockCostsScaleWithActiveCpus) {
  alloc::VmemArena a1 = make_arena(sim::Bytes{4} * sim::MiB);
  alloc::VmemArena a2 = make_arena(sim::Bytes{4} * sim::MiB);
  alloc::SlabCosts costs;
  costs.cpu_hit = sim::TimeNs{10};
  costs.depot_lock = sim::TimeNs{60};
  costs.zone_lock = sim::TimeNs{220};
  costs.lock_contention = 0.35;
  alloc::SlabCache alone(&a1, 4 * sim::KiB, 64 * sim::KiB, costs,
                         alloc::MagazinePolicy{}, 64);
  alloc::SlabCache crowded(&a2, 4 * sim::KiB, 64 * sim::KiB, costs,
                           alloc::MagazinePolicy{}, 64);
  const sim::TimeNs solo = alone.churn(0, 100, 1, 1.0, 1.0);
  const sim::TimeNs packed = crowded.churn(0, 100, 64, 1.0, 1.0);
  EXPECT_GT(packed.ns(), solo.ns());
}

// ------------------------------------------------- DomainAllocator traffic

TEST(TrafficHook, AttributesBestEffortAllocationsToTheTaggedCaller) {
  const hw::NodeTopology topo = hw::knl_snc4_flat();
  mem::PhysMemory phys(topo);
  const hw::DomainId d = topo.domains_of_kind(hw::MemKind::kDdr4).front();
  mem::DomainAllocator& da = phys.domain(d);

  std::vector<std::pair<int, sim::Bytes>> seen;
  da.set_traffic_hook([&seen](int caller, sim::Bytes length) {
    seen.emplace_back(caller, length);
  });
  ASSERT_TRUE(da.has_traffic_hook());

  (void)da.alloc_best_effort(2 * sim::MiB, 4 * sim::KiB);  // unattributed
  da.set_traffic_caller(3);
  (void)da.alloc_best_effort(1 * sim::MiB, 4 * sim::KiB);
  da.set_traffic_caller(-1);
  (void)da.alloc_best_effort(4 * sim::KiB, 4 * sim::KiB);

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<int, sim::Bytes>{-1, 2 * sim::MiB}));
  EXPECT_EQ(seen[1], (std::pair<int, sim::Bytes>{3, 1 * sim::MiB}));
  EXPECT_EQ(seen[2], (std::pair<int, sim::Bytes>{-1, 4 * sim::KiB}));
}

// ------------------------------------------------------------ NodeAllocModel

alloc::AllocSpec enabled_spec() {
  alloc::AllocSpec spec;
  spec.model_allocator = true;
  return spec;
}

TEST(NodeAllocModel, LinuxChurnCostsMoreThanTheLwkAtScale) {
  const hw::NodeTopology topo = hw::knl_snc4_flat();
  mem::PhysMemory phys_linux(topo);
  mem::PhysMemory phys_mos(topo);
  constexpr int kLanes = 64;
  alloc::NodeAllocModel linux_model(topo, phys_linux, kernel::OsKind::kLinux,
                                    enabled_spec(), kLanes);
  alloc::NodeAllocModel mos_model(topo, phys_mos, kernel::OsKind::kMos,
                                  enabled_spec(), kLanes);

  sim::TimeNs linux_cost{0};
  sim::TimeNs mos_cost{0};
  for (int burst = 0; burst < 4; ++burst) {
    linux_cost += linux_model.churn(0, 4000, 4 * sim::KiB);
    mos_cost += mos_model.churn(0, 4000, 4 * sim::KiB);
  }
  // Zone/depot lock contention across 64 lanes is the Linux differentiator.
  EXPECT_GT(linux_cost.ns(), 2 * mos_cost.ns());

  const alloc::AllocCounters c = linux_model.counters();
  EXPECT_GT(c.magazine_misses, 0u);
  EXPECT_GT(c.slab_creates, 0u);
  EXPECT_GT(c.vmem_imports, 0u);
  EXPECT_GT(c.refill_bytes, 0u);
  EXPECT_GT(linux_model.lane_refill_bytes(0), 0u);
}

TEST(NodeAllocModel, ChurnSequenceIsDeterministic) {
  const hw::NodeTopology topo = hw::knl_snc4_flat();
  mem::PhysMemory phys_a(topo);
  mem::PhysMemory phys_b(topo);
  alloc::NodeAllocModel a(topo, phys_a, kernel::OsKind::kMcKernel,
                          enabled_spec(), 8);
  alloc::NodeAllocModel b(topo, phys_b, kernel::OsKind::kMcKernel,
                          enabled_spec(), 8);
  for (int i = 0; i < 16; ++i) {
    const int lane = i % 8;
    EXPECT_EQ(a.churn(lane, 500 + i, 4 * sim::KiB).ns(),
              b.churn(lane, 500 + i, 4 * sim::KiB).ns());
  }
  a.drain_lanes();
  b.drain_lanes();
  EXPECT_EQ(a.counters().depot_unloads, b.counters().depot_unloads);
  EXPECT_EQ(a.counters().vmem_import_bytes, b.counters().vmem_import_bytes);
}

TEST(NodeAllocModel, LinuxReclaimDaemonTrimsTheDepot) {
  const hw::NodeTopology topo = hw::knl_snc4_flat();
  mem::PhysMemory phys(topo);
  alloc::NodeAllocModel model(topo, phys, kernel::OsKind::kLinux,
                              enabled_spec(), 4);
  // One huge burst floods the depot well past the reclaim threshold.
  (void)model.churn(0, 60000, 4 * sim::KiB);
  const alloc::AllocCounters c = model.counters();
  EXPECT_GE(c.reclaims, 1u);
  EXPECT_GE(c.reclaimed_slabs, 1u);
  EXPECT_EQ(c.reclaimed_slabs, c.slab_frees);
}

TEST(NodeAllocModel, LwkPersonalitiesNeverRunAReclaimDaemon) {
  const hw::NodeTopology topo = hw::knl_snc4_flat();
  mem::PhysMemory phys(topo);
  alloc::NodeAllocModel model(topo, phys, kernel::OsKind::kMos,
                              enabled_spec(), 4);
  (void)model.churn(0, 60000, 4 * sim::KiB);
  EXPECT_EQ(model.counters().reclaims, 0u);
}

// ------------------------------------------------------------ the contracts

TEST(AllocSpec, InertSpecKeepsFingerprintAndDigest) {
  const core::SystemConfig base = core::SystemConfig::mos();
  // Knob changes on a DISABLED spec must not perturb cache keys: the spec
  // only folds in when enabled(), like fault::Spec.
  core::SystemConfig tweaked = core::SystemConfig::mos();
  tweaked.alloc.contention_scale = 7.0;
  tweaked.alloc.magazine_cap = 32;
  EXPECT_EQ(base.fingerprint(), tweaked.fingerprint());
  EXPECT_EQ(base.digest(), tweaked.digest());
  // And the digest of an inert config must not even mention the subsystem —
  // an unconditional "alloc=off" token would invalidate every stored cell.
  EXPECT_EQ(base.digest().find("alloc"), std::string::npos);

  core::SystemConfig on = core::SystemConfig::mos();
  on.alloc.model_allocator = true;
  EXPECT_NE(on.fingerprint(), base.fingerprint());
  EXPECT_NE(on.digest().find("alloc="), std::string::npos);

  on.alloc.contention_scale = 0.5;
  EXPECT_NE(on.fingerprint(), core::SystemConfig::mos().fingerprint());
}

TEST(AllocModel, SerialAndPooledSweepLedgersAreByteIdentical) {
  core::SystemConfig config = core::SystemConfig::mos();
  config.alloc.model_allocator = true;
  constexpr int kReps = 2;
  constexpr std::uint64_t kSeed = 99;
  constexpr int kMaxNodes = 16;

  auto app = workloads::make_xsbench_interleave();
  obs::RunLedger serial;
  (void)core::scaling_sweep(*app, config, kReps, kSeed, kMaxNodes, &serial);

  sim::ThreadPool pool{8};
  obs::RunLedger pooled;
  (void)core::scaling_sweep("XSBench/interleave", config, kReps, kSeed, pool,
                            kMaxNodes, &pooled);

  const std::string json = serial.to_json();
  EXPECT_EQ(json, pooled.to_json());
  // The enabled model must surface its counter group in the merged ledger.
  EXPECT_NE(json.find("\"alloc.magazine_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"alloc.vmem_imports\""), std::string::npos);
}

}  // namespace
