// Per-application mechanism tests: each app proxy must exercise the kernel
// mechanism the paper attributes its result to.

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "runtime/simmpi.hpp"
#include "workloads/app.hpp"

namespace {

using namespace mkos;
using namespace mkos::workloads;
using core::SystemConfig;
using runtime::Job;
using runtime::Machine;
using runtime::MpiWorld;

struct Ran {
  Machine machine;
  Job job;
  MpiWorld world;
  AppResult result;

  Ran(App& app, kernel::OsKind os, int nodes, bool trace = false)
      : machine(SystemConfig::for_os(os).machine(nodes)),
        job(machine, app.spec(nodes), 11),
        world(job, 13) {
    app.setup(job);
    if (trace) world.enable_trace();
    result = app.run(job, world);
  }
};

// AMG: V-cycle depth grows with machine size -> more sync points per
// iteration at scale (visible in the trace).
TEST(AppDetail, AmgCycleDepthGrowsWithNodes) {
  auto app = make_amg2013();
  Ran small{*app, kernel::OsKind::kMcKernel, 2, true};
  Ran large{*app, kernel::OsKind::kMcKernel, 1024, true};
  EXPECT_GT(large.world.trace().size(), small.world.trace().size() * 2);
}

// AMG exercises sched_yield (the --disable-sched-yield target): the hijack
// must change its runtime on McKernel.
TEST(AppDetail, AmgSensitiveToYieldHijack) {
  auto app = make_amg2013();
  Ran plain{*app, kernel::OsKind::kMcKernel, 4};
  SystemConfig tuned_cfg = SystemConfig::mckernel();
  tuned_cfg.mckernel_disable_sched_yield = true;
  Machine m = tuned_cfg.machine(4);
  Job job{m, app->spec(4), 11};
  app->setup(job);
  MpiWorld world{job, 13};
  const AppResult tuned = app->run(job, world);
  EXPECT_GT(tuned.fom / plain.result.fom, 1.02);
}

// CCS-QCD: the only workload whose per-node working set exceeds MCDRAM.
TEST(AppDetail, CcsQcdOversubscribesMcdram) {
  auto app = make_ccs_qcd();
  Ran r{*app, kernel::OsKind::kMcKernel, 1};
  sim::Bytes ws = 0;
  for (int i = 0; i < r.job.lane_count(); ++i) {
    r.job.lane(i).address_space().for_each([&](const mem::Vma& v) {
      if (v.kind != mem::VmaKind::kShm) ws += v.length;
    });
  }
  EXPECT_GT(ws, r.job.node().topo().total_capacity(hw::MemKind::kMcdram));
}

// HPCG by contrast fits (the paper: "All but CCS-QCD were sized to fit
// entirely into MCDRAM") — so do the others at representative node counts.
TEST(AppDetail, OtherAppsFitInMcdram) {
  for (const char* name : {"AMG2013", "GeoFEM", "HPCG", "LAMMPS", "MILC"}) {
    auto app = make_app(name);
    Ran r{*app, kernel::OsKind::kMcKernel, 16};
    EXPECT_GT(r.job.lane_fraction_in(0, hw::MemKind::kMcdram), 0.95) << name;
  }
}

// MILC synchronizes every iteration with short windows: per-sync compute
// span must be well under a GeoFEM/HPCG window (the scale-sensitivity knob).
TEST(AppDetail, MilcWindowsAreShort) {
  auto milc = make_milc();
  auto hpcg = make_hpcg();
  Ran rm{*milc, kernel::OsKind::kMcKernel, 16, true};
  Ran rh{*hpcg, kernel::OsKind::kMcKernel, 16, true};
  // The compute span lands on the halo sync that precedes each allreduce;
  // compare the mean synchronization window across all events.
  auto mean_span = [](const MpiWorld& w) {
    double acc = 0;
    int n = 0;
    for (const auto& e : w.trace()) {
      if (e.span.ns() > 0) {
        acc += e.span.sec();
        ++n;
      }
    }
    return n ? acc / n : 0.0;
  };
  EXPECT_LT(mean_span(rm.world) * 5, mean_span(rh.world));
}

// Lulesh: the dt-allreduce makes it the only cubic-decomposition app with a
// global sync per step; its heap cycle must run on every iteration.
TEST(AppDetail, LuleshBrkCallsScaleWithIterations) {
  auto app = make_lulesh(30, false, 50);
  Ran r{*app, kernel::OsKind::kMos, 1};
  const auto& stats = r.job.lane(0).heap()->stats();
  // 50 iterations x (>= 12 calls) + the setup sbrk.
  EXPECT_GE(stats.calls(), 50u * 12);
  EXPECT_LT(stats.calls(), 50u * 16);
}

// GeoFEM does three allreduces per iteration (rho, alpha, norm).
TEST(AppDetail, GeoFemThreeAllreducesPerIteration) {
  auto app = make_geofem();
  Ran r{*app, kernel::OsKind::kMcKernel, 4};
  // 25 iterations x 3 + MPI_Init barrier-free: exactly 75 + finish.
  EXPECT_EQ(r.world.allreduce_count(), 75u);
}

// LAMMPS thermo output is rare — its allreduce count must be far below the
// step count (the device writes, not collectives, are its kernel story).
TEST(AppDetail, LammpsCollectivesAreRare) {
  auto app = make_lammps();
  Ran r{*app, kernel::OsKind::kLinux, 16};
  EXPECT_LT(r.world.allreduce_count(), 10u);
}

// Every app's FOM unit survives the full pipeline.
TEST(AppDetail, MetricsAndUnitsAgree) {
  for (const char* name :
       {"AMG2013", "CCS-QCD", "GeoFEM", "HPCG", "LAMMPS", "MILC", "MiniFE"}) {
    auto app = make_app(name);
    Ran r{*app, kernel::OsKind::kMos, 16};
    EXPECT_EQ(r.result.unit, app->metric()) << name;
    EXPECT_GT(r.result.fom, 0.0) << name;
  }
}

}  // namespace
