// Unit tests: thread pool, campaign engine, determinism and cell cache.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <set>
#include <stdexcept>

#include "core/campaign.hpp"
#include "core/obs_glue.hpp"
#include "sim/thread_pool.hpp"
#include "sim/work_stealing_pool.hpp"
#include "workloads/app.hpp"

namespace {

using namespace mkos;
using namespace mkos::core;

// ------------------------------------------------------------- thread pool

TEST(ThreadPool, RunsEverySubmittedTask) {
  sim::ThreadPool pool(4);
  std::atomic<int> hits{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&hits] { hits.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 100);
  EXPECT_EQ(pool.completed(), 100u);
  EXPECT_EQ(pool.size(), 4);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  sim::ThreadPool pool(3);
  std::vector<std::atomic<int>> seen(257);
  sim::parallel_for(pool, seen.size(), [&seen](std::size_t i) { seen[i].fetch_add(1); });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesTheFirstException) {
  sim::ThreadPool pool(2);
  EXPECT_THROW(sim::parallel_for(pool, 8,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  pool.wait_idle();  // the pool must stay usable afterwards
  std::atomic<int> hits{0};
  sim::parallel_for(pool, 4, [&hits](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);
}

TEST(ThreadPool, DefaultThreadsHonorsEnvVar) {
  ASSERT_EQ(setenv("MKOS_THREADS", "3", 1), 0);
  EXPECT_EQ(sim::ThreadPool::default_threads(), 3);
  ASSERT_EQ(unsetenv("MKOS_THREADS"), 0);
  EXPECT_GE(sim::ThreadPool::default_threads(), 1);
}

TEST(ThreadPool, DefaultThreadsRejectsGarbageEnv) {
  // std::atoi used to map "all" (and "0") to a silent hardware fallback;
  // sim::env_int makes misconfiguration a hard error instead.
  ASSERT_EQ(setenv("MKOS_THREADS", "all", 1), 0);
  EXPECT_EXIT((void)sim::ThreadPool::default_threads(), ::testing::ExitedWithCode(2),
              "invalid environment");
  ASSERT_EQ(setenv("MKOS_THREADS", "0", 1), 0);
  EXPECT_EXIT((void)sim::ThreadPool::default_threads(), ::testing::ExitedWithCode(2),
              "MKOS_THREADS");
  ASSERT_EQ(unsetenv("MKOS_THREADS"), 0);
}

// ------------------------------------------------------ work-stealing pool

TEST(WorkStealingPool, RunsEverySubmittedTask) {
  sim::WorkStealingPool pool(4);
  std::atomic<int> hits{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&hits] { hits.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 100);
  EXPECT_EQ(pool.completed(), 100u);
  EXPECT_EQ(pool.size(), 4);
  EXPECT_TRUE(pool.cost_aware());
}

TEST(WorkStealingPool, WeightedParallelForCoversEveryIndexOnce) {
  sim::WorkStealingPool pool(3);
  std::vector<std::atomic<int>> seen(257);
  std::vector<double> costs(seen.size());
  for (std::size_t i = 0; i < costs.size(); ++i) {
    costs[i] = static_cast<double>(i % 7 + 1);  // skewed, but every index runs
  }
  sim::parallel_for_weighted(pool, costs,
                             [&seen](std::size_t i) { seen[i].fetch_add(1); });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);

  // Every task was served exactly once: from the owner's deque or a steal.
  const sim::TaskPool::SchedTelemetry t = pool.sched_telemetry();
  EXPECT_TRUE(t.active);
  EXPECT_EQ(t.local_pops + t.steals, seen.size());
  EXPECT_GT(t.imbalance, 0.0);  // something executed on some worker
}

TEST(WorkStealingPool, ParallelForPropagatesTheFirstException) {
  sim::WorkStealingPool pool(2);
  EXPECT_THROW(sim::parallel_for(pool, 8,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  pool.wait_idle();  // the pool must stay usable afterwards
  std::atomic<int> hits{0};
  sim::parallel_for(pool, 4, [&hits](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);
}

TEST(WorkStealingPool, FifoPoolReportsInactiveTelemetry) {
  sim::ThreadPool pool(2);
  const sim::TaskPool::SchedTelemetry t = pool.sched_telemetry();
  EXPECT_FALSE(t.active);
  EXPECT_EQ(t.local_pops, 0u);
  EXPECT_EQ(t.steals, 0u);
}

TEST(AppCostWeight, LuleshCarriesTheSkewAndUnknownsDegradeToUnit) {
  for (const std::string& name : workloads::registry_names()) {
    EXPECT_GT(workloads::app_cost_weight(name), 0.0) << name;
    if (name != "Lulesh2.0") {
      EXPECT_GT(workloads::app_cost_weight("Lulesh2.0"),
                workloads::app_cost_weight(name))
          << name;
    }
  }
  EXPECT_DOUBLE_EQ(workloads::app_cost_weight("NoSuchApp"), 1.0);
}

// -------------------------------------------------------------- shard spec

TEST(ShardSpec, FromEnvDefaultsToUnshardedAndParsesSlices) {
  ASSERT_EQ(unsetenv(ShardSpec::kEnvVar), 0);
  EXPECT_FALSE(ShardSpec::from_env().sharded());
  EXPECT_EQ(ShardSpec::from_env().count, 1);
  ASSERT_EQ(setenv(ShardSpec::kEnvVar, "", 1), 0);
  EXPECT_FALSE(ShardSpec::from_env().sharded());
  ASSERT_EQ(setenv(ShardSpec::kEnvVar, "1/4", 1), 0);
  const ShardSpec s = ShardSpec::from_env();
  EXPECT_TRUE(s.sharded());
  EXPECT_EQ(s.index, 1);
  EXPECT_EQ(s.count, 4);
  ASSERT_EQ(setenv(ShardSpec::kEnvVar, "0/1", 1), 0);
  EXPECT_FALSE(ShardSpec::from_env().sharded());  // explicit singleton
  ASSERT_EQ(unsetenv(ShardSpec::kEnvVar), 0);
}

TEST(ShardSpec, FromEnvRejectsGarbage) {
  for (const char* bad : {"2", "a/b", "3/2", "2/2", "-1/2", "0/5000", "1/0"}) {
    ASSERT_EQ(setenv(ShardSpec::kEnvVar, bad, 1), 0);
    EXPECT_EXIT((void)ShardSpec::from_env(), ::testing::ExitedWithCode(2),
                "MKOS_SHARD")
        << bad;
  }
  ASSERT_EQ(unsetenv(ShardSpec::kEnvVar), 0);
}

TEST(ShardSpec, SlicesPartitionTheGridExactly) {
  // Without a store there is no stealing: shard i simulates exactly its
  // keyspace slice and skips the rest — the union over shards is the full
  // grid, pairwise disjoint.
  CampaignSpec spec;
  spec.apps = {"MiniFE", "HPCG"};
  spec.configs = {SystemConfig::linux_default(), SystemConfig::mckernel()};
  spec.nodes = {16, 32};
  spec.reps = 1;
  spec.seed = 11;

  sim::ThreadPool pool(2);
  std::set<std::size_t> owned;
  for (int shard = 0; shard < 3; ++shard) {
    CellCache cache;
    Campaign campaign(pool, cache);
    CampaignSpec sliced = spec;
    sliced.shard = ShardSpec{shard, 3};
    const auto cells = campaign.run(sliced);
    ASSERT_EQ(cells.size(), 8u);
    std::uint64_t skipped = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].skipped) {
        EXPECT_EQ(cells[i].stats.fom.count(), 0u);
        ++skipped;
        continue;
      }
      EXPECT_TRUE(owned.insert(i).second) << "cell " << i << " simulated twice";
    }
    EXPECT_EQ(campaign.telemetry().foreign_skipped, skipped);
  }
  EXPECT_EQ(owned.size(), 8u);
}

// ------------------------------------------------------------ fingerprints

TEST(Fingerprint, DistinguishesEveryKnob) {
  std::set<std::uint64_t> fps;
  fps.insert(SystemConfig::linux_default().fingerprint());
  fps.insert(SystemConfig::mckernel().fingerprint());
  fps.insert(SystemConfig::mos().fingerprint());
  SystemConfig c = SystemConfig::mckernel();
  c.mckernel_mpol_shm_premap = true;
  fps.insert(c.fingerprint());
  c.app_cores = 32;
  fps.insert(c.fingerprint());
  c.mem_mode = MemMode::kQuadrantFlat;
  fps.insert(c.fingerprint());
  EXPECT_EQ(fps.size(), 6u);
  EXPECT_EQ(SystemConfig::mckernel().fingerprint(), SystemConfig::mckernel().fingerprint());
}

TEST(Fingerprint, CellSeedsArePositional) {
  const SystemConfig cfg = SystemConfig::mos();
  const std::uint64_t fp = cell_fingerprint("HPCG", cfg, 16, 7);
  EXPECT_EQ(fp, cell_fingerprint("HPCG", cfg, 16, 7));
  EXPECT_NE(fp, cell_fingerprint("HPCG", cfg, 32, 7));
  EXPECT_NE(fp, cell_fingerprint("MILC", cfg, 16, 7));
  EXPECT_NE(fp, cell_fingerprint("HPCG", cfg, 16, 8));
  EXPECT_NE(rep_seed(fp, 0), rep_seed(fp, 1));
  EXPECT_NE(rep_seed(fp, 0, 0), rep_seed(fp, 0, 1));
}

TEST(Fingerprint, DigestRendersExactlyTheHashedKnobs) {
  // digest() must distinguish everything fingerprint() distinguishes — it
  // is the collision detector for the 64-bit hash.
  EXPECT_EQ(SystemConfig::mckernel().digest(), SystemConfig::mckernel().digest());
  EXPECT_NE(SystemConfig::mckernel().digest(), SystemConfig::mos().digest());
  SystemConfig c = SystemConfig::mckernel();
  SystemConfig d = c;
  d.mckernel_mpol_shm_premap = true;
  EXPECT_NE(c.digest(), d.digest());
  d = c;
  d.app_cores = 32;
  EXPECT_NE(c.digest(), d.digest());
  // An inert resilience spec stays invisible, like in fingerprint(): stored
  // cells must survive the fault subsystem being configured in or out.
  SystemConfig e = c;
  e.resilience = fault::Spec{};
  EXPECT_EQ(c.digest(), e.digest());
}

// ------------------------------------------------------------- determinism

TEST(Campaign, ParallelRunAppIsBitIdenticalToSerial) {
  auto app = workloads::make_minife();
  const RunStats serial = run_app(*app, SystemConfig::mckernel(), 16, 5, 1234);
  sim::ThreadPool pool(4);
  const RunStats parallel = run_app("MiniFE", SystemConfig::mckernel(), 16, 5, 1234, pool);
  ASSERT_EQ(parallel.fom.count(), serial.fom.count());
  EXPECT_EQ(parallel.unit, serial.unit);
  // Bit-identical, rep for rep — not merely statistically close.
  for (std::size_t i = 0; i < serial.fom.samples().size(); ++i) {
    EXPECT_EQ(parallel.fom.samples()[i], serial.fom.samples()[i]) << "rep " << i;
  }
}

TEST(Campaign, SweepMediansBitIdenticalAcrossThreadCounts) {
  const SystemConfig cfg = SystemConfig::mos();
  auto app = workloads::make_minife();
  const auto serial = scaling_sweep(*app, cfg, 3, 99, 64);
  sim::ThreadPool one(1);
  sim::ThreadPool many(4);
  const auto pooled1 = scaling_sweep("MiniFE", cfg, 3, 99, one, 64);
  const auto pooledN = scaling_sweep("MiniFE", cfg, 3, 99, many, 64);
  ASSERT_EQ(pooled1.size(), serial.size());
  ASSERT_EQ(pooledN.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(pooled1[i].nodes, serial[i].nodes);
    EXPECT_EQ(pooledN[i].nodes, serial[i].nodes);
    EXPECT_EQ(pooled1[i].median, serial[i].median);
    EXPECT_EQ(pooledN[i].median, serial[i].median);
    EXPECT_EQ(pooledN[i].min, serial[i].min);
    EXPECT_EQ(pooledN[i].max, serial[i].max);
  }
}

TEST(Campaign, WorkStealingChangesNoLedgerByte) {
  // The tentpole determinism proof: the same grid through a serial pool, the
  // shared-FIFO pool and the work-stealing pool (LPT placement + steals)
  // must produce byte-identical reporting documents. Only the host-state
  // campaign.sched.* block — deliberately NOT recorded here — may differ.
  CampaignSpec spec;
  spec.apps = {"MiniFE", "HPCG", "Lulesh2.0"};
  spec.configs = {SystemConfig::linux_default(), SystemConfig::mckernel(),
                  SystemConfig::mos()};
  spec.nodes = {16, 32};
  spec.reps = 2;
  spec.seed = 21;

  const auto run_grid = [&spec](sim::TaskPool& pool) {
    CellCache cache;
    Campaign campaign(pool, cache);
    obs::RunLedger ledger;
    for (const CellResult& cell : campaign.run(spec)) {
      record_run_stats(ledger,
                       cell.app + "." + cell.config_label + ".n" +
                           std::to_string(cell.nodes),
                       cell.stats);
    }
    return ledger.to_json();
  };

  sim::ThreadPool serial(1);
  sim::ThreadPool fifo(4);
  sim::WorkStealingPool stealing(4);
  const std::string serial_json = run_grid(serial);
  EXPECT_EQ(run_grid(fifo), serial_json);
  EXPECT_EQ(run_grid(stealing), serial_json);
}

TEST(Campaign, SchedCountersAppearOnlyWhenACostAwarePoolRan) {
  CampaignSpec spec;
  spec.apps = {"MiniFE"};
  spec.configs = {SystemConfig::mckernel()};
  spec.nodes = {16};
  spec.reps = 1;

  const auto campaign_json = [&spec](sim::TaskPool& pool) {
    CellCache cache;
    Campaign campaign(pool, cache);
    (void)campaign.run(spec);
    obs::RunLedger ledger;
    record_campaign(ledger, campaign.telemetry(), pool.size(), nullptr);
    return ledger.to_json();
  };

  sim::ThreadPool fifo(2);
  EXPECT_EQ(campaign_json(fifo).find("campaign.sched."), std::string::npos);
  sim::WorkStealingPool stealing(2);
  const std::string json = campaign_json(stealing);
  EXPECT_NE(json.find("campaign.sched.local_pops"), std::string::npos);
  EXPECT_NE(json.find("campaign.sched.steals"), std::string::npos);
  EXPECT_NE(json.find("campaign.sched.imbalance"), std::string::npos);
}

// -------------------------------------------------------------- cell cache

TEST(Campaign, CacheHitsReturnTheSameRunStats) {
  sim::ThreadPool pool(4);
  CellCache cache;
  Campaign campaign(pool, cache);
  CampaignSpec spec;
  spec.apps = {"MiniFE", "HPCG"};
  spec.configs = {SystemConfig::linux_default(), SystemConfig::mckernel()};
  spec.nodes = {16, 32};
  spec.reps = 2;
  spec.seed = 5;

  const auto first = campaign.run(spec);
  ASSERT_EQ(first.size(), 8u);
  for (const auto& cell : first) EXPECT_FALSE(cell.from_cache);
  EXPECT_EQ(cache.size(), 8u);

  const auto second = campaign.run(spec);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(second[i].from_cache);
    EXPECT_EQ(second[i].app, first[i].app);
    EXPECT_EQ(second[i].nodes, first[i].nodes);
    EXPECT_EQ(second[i].stats.fom.samples(), first[i].stats.fom.samples());
    EXPECT_EQ(second[i].stats.unit, first[i].stats.unit);
  }
  EXPECT_EQ(campaign.telemetry().cells, 16u);
  EXPECT_EQ(campaign.telemetry().cache_hits, 8u);
  EXPECT_DOUBLE_EQ(campaign.telemetry().hit_rate(), 0.5);
}

TEST(Campaign, DuplicateCellsWithinOneRunSimulateOnce) {
  sim::ThreadPool pool(2);
  CellCache cache;
  Campaign campaign(pool, cache);
  CampaignSpec spec;
  spec.apps = {"MiniFE"};
  // The same config twice: the second column must be served as a cache hit.
  spec.configs = {SystemConfig::linux_default(), SystemConfig::linux_default()};
  spec.nodes = {16};
  spec.reps = 2;
  const auto cells = campaign.run(spec);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_FALSE(cells[0].from_cache);
  EXPECT_TRUE(cells[1].from_cache);
  EXPECT_EQ(cells[0].stats.fom.samples(), cells[1].stats.fom.samples());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(campaign.telemetry().cache_hits, 1u);
}

TEST(Campaign, GridOrderIsAppMajorAndCapped) {
  sim::ThreadPool pool(2);
  CellCache cache;
  Campaign campaign(pool, cache);
  CampaignSpec spec;
  spec.apps = {"MiniFE"};
  spec.configs = {SystemConfig::mckernel()};
  spec.reps = 1;
  spec.max_nodes = 64;  // MiniFE's own counts start at 16
  const auto cells = campaign.run(spec);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].nodes, 16);
  EXPECT_EQ(cells[2].nodes, 64);
  EXPECT_EQ(cells[0].config_label, "McKernel");
  EXPECT_GT(cells[0].stats.median(), 0.0);
}

TEST(CellCache, FingerprintCollisionIsAMissNotTheWrongCell) {
  // Regression: the cache used to key on the 64-bit fingerprint alone, so
  // two cells colliding on the hash silently shared one result. The full
  // CellKey now rides along and is verified on every hit.
  CellCache cache;
  RunStats stats;
  stats.fom.add(123.0);
  stats.unit = "Mflops";
  const std::uint64_t key = 0xC0111DEDULL;  // one hash, two distinct cells
  const CellKey a{"MiniFE", SystemConfig::mckernel().digest(), 16, 2, 5};
  const CellKey b{"HPCG", SystemConfig::mos().digest(), 32, 2, 5};

  cache.store(key, a, stats);
  ASSERT_TRUE(cache.lookup(key, a).has_value());
  EXPECT_EQ(cache.collisions(), 0u);

  // The colliding cell must read as a miss, not as MiniFE's statistics.
  EXPECT_FALSE(cache.lookup(key, b).has_value());
  EXPECT_EQ(cache.collisions(), 1u);
  EXPECT_TRUE(cache.contains(key, a));
  EXPECT_FALSE(cache.contains(key, b));

  // Recompute-and-store is last-writer-wins on the colliding slot.
  cache.store(key, b, stats);
  EXPECT_FALSE(cache.lookup(key, a).has_value());
  EXPECT_TRUE(cache.lookup(key, b).has_value());
  EXPECT_EQ(cache.collisions(), 2u);
}

// --------------------------------------------------- relative_to guarding

TEST(Experiment, RelativeToSkipsDegenerateBaselines) {
  const std::vector<ScalingPoint> subject{
      {16, 110, 0, 0}, {32, 120, 0, 0}, {64, 130, 0, 0}, {128, 140, 0, 0}};
  const std::vector<ScalingPoint> baseline{
      {16, 100, 0, 0},
      {32, 0.0, 0, 0},                                        // zero: divide-by-zero
      {64, std::numeric_limits<double>::quiet_NaN(), 0, 0},   // NaN: poisons headline
      {128, -5.0, 0, 0}};                                     // negative: nonsense FOM
  const auto rel = relative_to(subject, baseline);
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel[0].nodes, 16);
  EXPECT_DOUBLE_EQ(rel[0].ratio, 1.1);
}

}  // namespace
