// Unit tests for the persistent cell store (core/cell_store.*): exact
// round-trip fidelity, corruption detection (truncation, bad checksum,
// wrong schema version, zero-length entries), quarantine semantics, hash
// collisions on disk, and the resumable-sweep mode.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/campaign.hpp"
#include "core/cell_store.hpp"
#include "sim/thread_pool.hpp"

namespace {

namespace fs = std::filesystem;
using namespace mkos;
using namespace mkos::core;

/// Fresh store directory per test; removed on destruction.
struct StoreDir {
  fs::path dir;
  explicit StoreDir(const char* name)
      : dir(fs::temp_directory_path() / ("mkos_cell_store_" + std::string(name))) {
    fs::remove_all(dir);
  }
  ~StoreDir() { fs::remove_all(dir); }
  [[nodiscard]] std::string path() const { return dir.string(); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// A cell with every ledger section populated, including values that
/// stress round-trip fidelity: full-precision doubles, counters, samples.
RunStats make_stats() {
  RunStats stats;
  stats.unit = "Mflops";
  stats.fom.add(123.456789012345678);
  stats.fom.add(0.1 + 0.2);  // not exactly 0.3: must survive bit-for-bit
  stats.fom.add(987.0);
  stats.ledger.set_meta("bench", "cell_store_test");
  stats.ledger.incr("heap.brk_calls", 42);
  stats.ledger.incr("kernel.syscalls_local", 1234567890123ULL);
  stats.ledger.set_gauge("g", 0.30000000000000004);
  stats.ledger.observe("runtime.comm_ns", 1.5e9);
  stats.ledger.observe("runtime.comm_ns", 2.25e9);
  stats.ledger.hist("stall_us", 1.0, 1e6, 4).add(33.0);
  stats.ledger.hist("stall_us", 1.0, 1e6, 4).add(1e9);  // overflow bucket
  stats.ledger.set_host("wall_seconds", "0.5");
  return stats;
}

CellKey make_key() {
  return CellKey{"MiniFE", SystemConfig::mckernel().digest(), 16, 2, 42};
}

constexpr std::uint64_t kKey = 0xABCDEF0123456789ULL;

// ------------------------------------------------------------- round trip

TEST(CellStore, SaveLoadRoundTripsBitIdentically) {
  const StoreDir tmp("roundtrip");
  CellStore store(tmp.path());
  ASSERT_TRUE(store.ready());
  const RunStats original = make_stats();
  ASSERT_TRUE(store.save(kKey, make_key(), original));

  const auto loaded = store.load(kKey, make_key());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->unit, original.unit);
  EXPECT_EQ(loaded->fom.samples(), original.fom.samples());
  // The reporting document — every section, every digit — must match.
  EXPECT_EQ(loaded->ledger.to_json(), original.ledger.to_json());

  const CellStoreCounters c = store.counters();
  EXPECT_EQ(c.writes, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 0u);
  EXPECT_EQ(c.corrupt, 0u);
  EXPECT_GT(c.bytes_written, 0u);
  EXPECT_EQ(c.bytes_read, c.bytes_written);
}

TEST(CellStore, ColdComputeEqualsWarmLoadThroughTheCampaign) {
  const StoreDir tmp("campaign");
  CampaignSpec spec;
  spec.apps = {"MiniFE"};
  spec.configs = {SystemConfig::linux_default(), SystemConfig::mckernel()};
  spec.nodes = {16};
  spec.reps = 2;
  spec.seed = 7;

  // Cold: simulate and persist.
  sim::ThreadPool pool(2);
  CellStore cold_store(tmp.path());
  CellCache cold_cache(&cold_store);
  Campaign cold(pool, cold_cache);
  const auto computed = cold.run(spec);
  ASSERT_EQ(computed.size(), 2u);
  EXPECT_EQ(cold_store.counters().writes, 2u);

  // Warm: a fresh cache + store over the same directory must serve every
  // cell from disk, bit-identical to the computed results.
  CellStore warm_store(tmp.path());
  CellCache warm_cache(&warm_store);
  Campaign warm(pool, warm_cache);
  const auto loaded = warm.run(spec);
  ASSERT_EQ(loaded.size(), computed.size());
  for (std::size_t i = 0; i < computed.size(); ++i) {
    EXPECT_TRUE(loaded[i].from_cache);
    EXPECT_EQ(loaded[i].stats.fom.samples(), computed[i].stats.fom.samples());
    EXPECT_EQ(loaded[i].stats.unit, computed[i].stats.unit);
    EXPECT_EQ(loaded[i].stats.ledger.to_json(), computed[i].stats.ledger.to_json());
  }
  EXPECT_EQ(warm_store.counters().hits, 2u);
  EXPECT_EQ(warm_store.counters().misses, 0u);
  // Store hits are host-state telemetry, not deterministic cache hits.
  EXPECT_EQ(warm.telemetry().store_hits, 2u);
  EXPECT_EQ(warm.telemetry().cache_hits, 0u);
}

// ------------------------------------------------------------- corruption

TEST(CellStore, TruncatedEntryIsQuarantinedAndRecomputed) {
  const StoreDir tmp("truncated");
  CellStore store(tmp.path());
  ASSERT_TRUE(store.save(kKey, make_key(), make_stats()));
  const std::string path = store.entry_path(kKey);
  const std::string whole = read_file(path);
  write_file(path, whole.substr(0, whole.size() / 2));

  EXPECT_FALSE(store.load(kKey, make_key()).has_value());
  EXPECT_EQ(store.counters().corrupt, 1u);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".quarantined"));

  // Recompute path: a fresh save replaces the entry and serves again.
  ASSERT_TRUE(store.save(kKey, make_key(), make_stats()));
  EXPECT_TRUE(store.load(kKey, make_key()).has_value());
}

TEST(CellStore, BitFlippedPayloadFailsTheChecksum) {
  const StoreDir tmp("bitflip");
  CellStore store(tmp.path());
  ASSERT_TRUE(store.save(kKey, make_key(), make_stats()));
  const std::string path = store.entry_path(kKey);
  std::string whole = read_file(path);
  whole[whole.size() - 3] ^= 0x20;  // flip one payload bit, length intact
  write_file(path, whole);

  EXPECT_FALSE(store.load(kKey, make_key()).has_value());
  EXPECT_EQ(store.counters().corrupt, 1u);
  EXPECT_TRUE(fs::exists(path + ".quarantined"));
}

TEST(CellStore, WrongSchemaVersionIsRejected) {
  const StoreDir tmp("schema");
  CellStore store(tmp.path());
  ASSERT_TRUE(store.save(kKey, make_key(), make_stats()));
  const std::string path = store.entry_path(kKey);

  // Rewrite the entry with a bumped payload schema_version and a *valid*
  // header for the new bytes: only the schema check can catch it.
  const std::string whole = read_file(path);
  const std::size_t eol = whole.find('\n');
  ASSERT_NE(eol, std::string::npos);
  std::string payload = whole.substr(eol + 1);
  const std::string needle = "\"schema_version\": 1";
  const std::size_t at = payload.find(needle);
  ASSERT_NE(at, std::string::npos);
  payload.replace(at, needle.size(), "\"schema_version\": 2");
  std::uint64_t crc = 0xcbf29ce484222325ULL;
  for (const char ch : payload) {
    crc ^= static_cast<unsigned char>(ch);
    crc *= 0x100000001b3ULL;
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(crc));
  write_file(path, "mkos-cell v1 len=" + std::to_string(payload.size()) +
                       " crc=" + hex + "\n" + payload);

  EXPECT_FALSE(store.load(kKey, make_key()).has_value());
  EXPECT_EQ(store.counters().corrupt, 1u);
  EXPECT_TRUE(fs::exists(path + ".quarantined"));
}

TEST(CellStore, ZeroLengthEntryIsCorruptNotACrash) {
  const StoreDir tmp("zerolen");
  CellStore store(tmp.path());
  write_file(store.entry_path(kKey), "");

  EXPECT_FALSE(store.load(kKey, make_key()).has_value());
  EXPECT_EQ(store.counters().corrupt, 1u);
  EXPECT_FALSE(store.contains(kKey, make_key()));
}

TEST(CellStore, ForeignFormatVersionIsCorrupt) {
  const StoreDir tmp("version");
  CellStore store(tmp.path());
  ASSERT_TRUE(store.save(kKey, make_key(), make_stats()));
  const std::string path = store.entry_path(kKey);
  std::string whole = read_file(path);
  whole.replace(whole.find("mkos-cell v1"), 12, "mkos-cell v9");
  write_file(path, whole);
  EXPECT_FALSE(store.load(kKey, make_key()).has_value());
  EXPECT_EQ(store.counters().corrupt, 1u);
}

// -------------------------------------------------------------- collisions

TEST(CellStore, OnDiskKeyMismatchIsAMissNotQuarantine) {
  const StoreDir tmp("collision");
  CellStore store(tmp.path());
  ASSERT_TRUE(store.save(kKey, make_key(), make_stats()));

  CellKey other = make_key();
  other.app = "HPCG";  // same 64-bit name, different cell
  EXPECT_FALSE(store.load(kKey, other).has_value());
  const CellStoreCounters c = store.counters();
  EXPECT_EQ(c.key_mismatches, 1u);
  EXPECT_EQ(c.corrupt, 0u);
  // The entry is someone else's valid cell: still there, still served.
  EXPECT_TRUE(fs::exists(store.entry_path(kKey)));
  EXPECT_TRUE(store.load(kKey, make_key()).has_value());
}

// ------------------------------------------------------------------ resume

TEST(CellStore, ResumeSkipsStoredCellsWithoutLoadingThem) {
  const StoreDir tmp("resume");
  CampaignSpec spec;
  spec.apps = {"MiniFE"};
  spec.configs = {SystemConfig::linux_default(), SystemConfig::mckernel()};
  spec.nodes = {16};
  spec.reps = 1;
  spec.seed = 3;

  sim::ThreadPool pool(2);
  CellStore seed_store(tmp.path());
  CellCache seed_cache(&seed_store);
  Campaign seeder(pool, seed_cache);
  // Store only the Linux cell.
  CampaignSpec linux_only = spec;
  linux_only.configs = {SystemConfig::linux_default()};
  (void)seeder.run(linux_only);

  CellStore store(tmp.path());
  CellCache cache(&store);
  Campaign campaign(pool, cache);
  CampaignSpec resume = spec;
  resume.resume = true;
  const auto cells = campaign.run(resume);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_TRUE(cells[0].skipped);              // Linux: already stored
  EXPECT_EQ(cells[0].stats.fom.count(), 0u);  // nothing loaded
  EXPECT_FALSE(cells[1].skipped);             // McKernel: simulated now
  EXPECT_GT(cells[1].stats.fom.count(), 0u);
  EXPECT_EQ(campaign.telemetry().skipped, 1u);

  // A second resume pass over the now-complete store skips everything.
  const auto again = campaign.run(resume);
  EXPECT_TRUE(again[0].skipped);
  EXPECT_TRUE(again[1].skipped);
  EXPECT_EQ(campaign.telemetry().skipped, 3u);
}

// ------------------------------------------------------------------ claims

TEST(CellStore, ClaimLifecycle) {
  const StoreDir tmp("claims");
  CellStore store(tmp.path());
  ASSERT_EQ(store.try_claim(kKey), CellStore::ClaimOutcome::kAcquired);
  EXPECT_TRUE(fs::exists(store.claim_path(kKey)));
  // The holder is this process and alive: a second attempt loses the race.
  EXPECT_EQ(store.try_claim(kKey), CellStore::ClaimOutcome::kBusy);
  EXPECT_EQ(store.counters().claims, 1u);
  EXPECT_EQ(store.counters().claim_races, 1u);

  store.release_claim(kKey);
  EXPECT_FALSE(fs::exists(store.claim_path(kKey)));
  EXPECT_EQ(store.try_claim(kKey), CellStore::ClaimOutcome::kAcquired);
  EXPECT_EQ(store.counters().claims, 2u);
  store.release_claim(kKey);
}

TEST(CellStore, StaleClaimFromADeadProcessIsReclaimed) {
  const StoreDir tmp("stale_claim");
  CellStore store(tmp.path());

  // A real pid that is guaranteed dead: fork a child that exits at once,
  // reap it, then write its pid into a claim — the orphan a crashed shard
  // would leave behind.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  write_file(store.claim_path(kKey),
             "mkos-claim v1 gen=3 pid=" + std::to_string(child) + "\n");

  EXPECT_EQ(store.try_claim(kKey), CellStore::ClaimOutcome::kAcquired);
  EXPECT_EQ(store.counters().claims, 1u);
  EXPECT_EQ(store.counters().claim_races, 0u);
  // The reclaimed claim names the new owner and records the succession.
  const std::string reclaimed = read_file(store.claim_path(kKey));
  EXPECT_NE(reclaimed.find("gen=4"), std::string::npos) << reclaimed;
  EXPECT_NE(reclaimed.find("pid=" + std::to_string(getpid())),
            std::string::npos)
      << reclaimed;
  store.release_claim(kKey);
}

TEST(CellStore, UnparseableClaimIsReclaimedNotTrusted) {
  const StoreDir tmp("garbage_claim");
  CellStore store(tmp.path());
  write_file(store.claim_path(kKey), "not a claim file\n");
  EXPECT_EQ(store.try_claim(kKey), CellStore::ClaimOutcome::kAcquired);
  store.release_claim(kKey);
}

TEST(CellStore, ClaimsDoNotBlockUnshardedRuns) {
  // Leftover claim files — a crashed shard's droppings — must never stall a
  // merge pass: unsharded runs ignore claims entirely.
  const StoreDir tmp("claims_merge");
  CampaignSpec spec;
  spec.apps = {"MiniFE"};
  spec.configs = {SystemConfig::mckernel()};
  spec.nodes = {16};
  spec.reps = 1;
  spec.seed = 13;

  CellStore store(tmp.path());
  const std::uint64_t key = cell_cache_key(
      "MiniFE", SystemConfig::mckernel(), 16, spec.reps, spec.seed);
  ASSERT_EQ(store.try_claim(key), CellStore::ClaimOutcome::kAcquired);

  sim::ThreadPool pool(2);
  CellCache cache(&store);
  Campaign campaign(pool, cache);
  const auto cells = campaign.run(spec);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_FALSE(cells[0].skipped);
  EXPECT_GT(cells[0].stats.fom.count(), 0u);
  EXPECT_EQ(store.counters().writes, 1u);
}

// ------------------------------------------------------- cross-process races

TEST(CellStore, ConcurrentWritersOfOneCellLastWriterWinsNoTornFile) {
  // Two shards racing to publish the same fingerprint (a reclaimed claim
  // whose original owner still lived, say) must end with ONE valid entry:
  // entry writes are temp+rename, so a reader may see either version or a
  // miss-before-first-write — never a torn file, never quarantine.
  const StoreDir tmp("write_race");
  CellStore a(tmp.path());
  CellStore b(tmp.path());

  RunStats stats_a = make_stats();
  RunStats stats_b = make_stats();
  stats_b.fom.add(555.0);  // distinguishable payloads

  constexpr int kRounds = 50;
  std::thread ta([&] {
    for (int i = 0; i < kRounds; ++i) EXPECT_TRUE(a.save(kKey, make_key(), stats_a));
  });
  std::thread tb([&] {
    for (int i = 0; i < kRounds; ++i) EXPECT_TRUE(b.save(kKey, make_key(), stats_b));
  });
  CellStore reader(tmp.path());
  std::uint64_t observed = 0;
  while (ta.joinable() || tb.joinable()) {
    if (const auto got = reader.load(kKey, make_key())) {
      ++observed;
      const std::size_t n = got->fom.samples().size();
      EXPECT_TRUE(n == stats_a.fom.samples().size() ||
                  n == stats_b.fom.samples().size());
    }
    if (ta.joinable() && observed > 4) ta.join();
    if (tb.joinable() && observed > 8) tb.join();
  }

  EXPECT_EQ(reader.counters().corrupt, 0u);
  EXPECT_EQ(a.counters().corrupt, 0u);
  EXPECT_EQ(b.counters().corrupt, 0u);
  const auto final_read = reader.load(kKey, make_key());
  ASSERT_TRUE(final_read.has_value());
  const std::size_t n = final_read->fom.samples().size();
  EXPECT_TRUE(n == stats_a.fom.samples().size() ||
              n == stats_b.fom.samples().size());
}

TEST(CellStore, ShardedRunsMergeByteIdenticalToDirectSimulation) {
  const StoreDir tmp("sharded_merge");
  CampaignSpec spec;
  spec.apps = {"MiniFE", "HPCG"};
  spec.configs = {SystemConfig::linux_default(), SystemConfig::mos()};
  spec.nodes = {16, 32};
  spec.reps = 2;
  spec.seed = 17;

  // Reference: direct unsharded simulation, no store.
  sim::ThreadPool pool(2);
  CellCache direct_cache;
  Campaign direct(pool, direct_cache);
  const auto reference = direct.run(spec);
  ASSERT_EQ(reference.size(), 8u);

  // Two shards fill one store. Run sequentially: shard 1 then finds shard
  // 0's cells already published and steals nothing — the claim/skip logic
  // still runs in full.
  for (int shard = 0; shard < 2; ++shard) {
    CellStore store(tmp.path());
    CellCache cache(&store);
    Campaign campaign(pool, cache);
    CampaignSpec sliced = spec;
    sliced.shard = ShardSpec{shard, 2};
    (void)campaign.run(sliced);
  }

  // Merge: unsharded over the warm store — all disk hits, zero writes,
  // ledgers byte-identical to direct simulation.
  CellStore merge_store(tmp.path());
  CellCache merge_cache(&merge_store);
  Campaign merge(pool, merge_cache);
  const auto merged = merge.run(spec);
  ASSERT_EQ(merged.size(), reference.size());
  EXPECT_EQ(merge_store.counters().writes, 0u);
  EXPECT_EQ(merge_store.counters().misses, 0u);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_FALSE(merged[i].skipped);
    EXPECT_EQ(merged[i].app, reference[i].app);
    EXPECT_EQ(merged[i].nodes, reference[i].nodes);
    EXPECT_EQ(merged[i].stats.fom.samples(), reference[i].stats.fom.samples());
    EXPECT_EQ(merged[i].stats.ledger.to_json(),
              reference[i].stats.ledger.to_json());
  }
}

TEST(CellStore, ShardStealsUnclaimedForeignCellsThroughTheStore) {
  // A lone shard over a shared store finishes its slice, then steals the
  // unclaimed foreign cells instead of idling: the full grid lands on disk
  // from a single sharded process.
  const StoreDir tmp("steal_all");
  CampaignSpec spec;
  spec.apps = {"MiniFE"};
  spec.configs = {SystemConfig::linux_default(), SystemConfig::mckernel()};
  spec.nodes = {16, 32};
  spec.reps = 1;
  spec.seed = 19;

  // The keyspace split is a pure function of the cell keys: count the cells
  // shard 0 will have to steal, and require the grid genuinely exercises
  // both the owned and the stolen path.
  std::uint64_t foreign_count = 0;
  for (const SystemConfig& config : spec.configs) {
    for (const int nodes : spec.nodes) {
      if (cell_cache_key("MiniFE", config, nodes, spec.reps, spec.seed) % 2 != 0) {
        ++foreign_count;
      }
    }
  }
  ASSERT_GT(foreign_count, 0u);
  ASSERT_LT(foreign_count, 4u);

  sim::ThreadPool pool(2);
  CellStore store(tmp.path());
  CellCache cache(&store);
  Campaign campaign(pool, cache);
  CampaignSpec sliced = spec;
  sliced.shard = ShardSpec{0, 2};
  const auto cells = campaign.run(sliced);
  ASSERT_EQ(cells.size(), 4u);
  for (const auto& cell : cells) EXPECT_FALSE(cell.skipped);
  EXPECT_EQ(store.counters().writes, 4u);
  const CampaignTelemetry& t = campaign.telemetry();
  EXPECT_EQ(t.stolen_cells, foreign_count);
  EXPECT_EQ(t.foreign_skipped, 0u);
  // Every simulated cell — owned or stolen — was claimed exactly once.
  EXPECT_EQ(t.sched_claims, 4u);
  EXPECT_EQ(t.sched_claim_races, 0u);
}

// --------------------------------------------------------------- plumbing

TEST(CellStore, FromEnvHonorsTheVariable) {
  const StoreDir tmp("fromenv");
  ASSERT_EQ(unsetenv(CellStore::kEnvVar), 0);
  EXPECT_EQ(CellStore::from_env(), nullptr);
  ASSERT_EQ(setenv(CellStore::kEnvVar, "", 1), 0);
  EXPECT_EQ(CellStore::from_env(), nullptr);
  ASSERT_EQ(setenv(CellStore::kEnvVar, tmp.path().c_str(), 1), 0);
  const auto store = CellStore::from_env();
  ASSERT_NE(store, nullptr);
  EXPECT_TRUE(store->ready());
  EXPECT_EQ(store->root(), tmp.path());
  ASSERT_EQ(unsetenv(CellStore::kEnvVar), 0);
}

TEST(CellStore, UnreadyStoreDegradesToMisses) {
  // A file occupies the root path: the directory cannot be created.
  const StoreDir tmp("unready");
  write_file(tmp.path(), "not a directory");
  CellStore store(tmp.path());
  EXPECT_FALSE(store.ready());
  EXPECT_FALSE(store.save(kKey, make_key(), make_stats()));
  EXPECT_FALSE(store.load(kKey, make_key()).has_value());
}

}  // namespace
