// Unit tests: collective algorithm cost models.

#include <gtest/gtest.h>

#include "hw/network.hpp"
#include "runtime/collectives.hpp"

namespace {

using namespace mkos;
using namespace mkos::runtime;
using mkos::sim::KiB;
using mkos::sim::MiB;

class CollectivesTest : public ::testing::Test {
 protected:
  hw::NetworkModel net_ = hw::omni_path_100();
  CollectiveCosts costs_;
};

TEST_F(CollectivesTest, StageCounts) {
  const CollectiveShape shape{1024, 64, 8};
  EXPECT_EQ(allreduce_stages(AllreduceAlgo::kRecursiveDoubling, shape), 10);
  EXPECT_EQ(allreduce_stages(AllreduceAlgo::kRabenseifner, shape), 20);
  EXPECT_EQ(allreduce_stages(AllreduceAlgo::kRing, shape), 2 * 1023);
  EXPECT_EQ(allreduce_stages(AllreduceAlgo::kReduceBroadcast, shape), 20);
}

TEST_F(CollectivesTest, SingleNodeIsIntraOnly) {
  const CollectiveShape shape{1, 64, 1 * MiB};
  for (auto a : {AllreduceAlgo::kRecursiveDoubling, AllreduceAlgo::kRing,
                 AllreduceAlgo::kRabenseifner}) {
    const auto t = allreduce_base_cost(a, shape, net_, costs_);
    EXPECT_LT(t.us(), 20.0) << to_string(a);
    EXPECT_GT(t.ns(), 0) << to_string(a);
  }
}

TEST_F(CollectivesTest, RecursiveDoublingWinsSmallMessages) {
  const CollectiveShape shape{512, 64, 8};
  const auto rd = allreduce_base_cost(AllreduceAlgo::kRecursiveDoubling, shape, net_, costs_);
  const auto ring = allreduce_base_cost(AllreduceAlgo::kRing, shape, net_, costs_);
  const auto rab = allreduce_base_cost(AllreduceAlgo::kRabenseifner, shape, net_, costs_);
  EXPECT_LT(rd, ring);
  EXPECT_LT(rd, rab);
}

TEST_F(CollectivesTest, BandwidthOptimalAlgosWinLargeMessages) {
  const CollectiveShape shape{64, 64, 16 * MiB};
  const auto rd = allreduce_base_cost(AllreduceAlgo::kRecursiveDoubling, shape, net_, costs_);
  const auto ring = allreduce_base_cost(AllreduceAlgo::kRing, shape, net_, costs_);
  const auto rab = allreduce_base_cost(AllreduceAlgo::kRabenseifner, shape, net_, costs_);
  EXPECT_LT(ring, rd);
  EXPECT_LT(rab, rd);
}

TEST_F(CollectivesTest, CostMonotoneInNodes) {
  for (auto a : {AllreduceAlgo::kRecursiveDoubling, AllreduceAlgo::kRabenseifner,
                 AllreduceAlgo::kRing, AllreduceAlgo::kReduceBroadcast}) {
    sim::TimeNs prev{0};
    for (int nodes : {2, 16, 128, 1024}) {
      const auto t = allreduce_base_cost(a, CollectiveShape{nodes, 64, 64 * KiB},
                                         net_, costs_);
      EXPECT_GE(t, prev) << to_string(a) << " nodes=" << nodes;
      prev = t;
    }
  }
}

TEST_F(CollectivesTest, CostMonotoneInPayload) {
  for (auto a : {AllreduceAlgo::kRecursiveDoubling, AllreduceAlgo::kRabenseifner,
                 AllreduceAlgo::kRing}) {
    sim::TimeNs prev{0};
    for (sim::Bytes b : {sim::Bytes{8}, 4 * KiB, 256 * KiB, 4 * MiB}) {
      const auto t = allreduce_base_cost(a, CollectiveShape{256, 64, b}, net_, costs_);
      EXPECT_GE(t, prev) << to_string(a);
      prev = t;
    }
  }
}

TEST_F(CollectivesTest, KernelOverheadChargedPerStage) {
  CollectiveCosts taxed = costs_;
  taxed.kernel_overhead_per_msg = sim::microseconds(5);
  const CollectiveShape shape{256, 64, 8};
  const auto plain =
      allreduce_base_cost(AllreduceAlgo::kRecursiveDoubling, shape, net_, costs_);
  const auto with_tax =
      allreduce_base_cost(AllreduceAlgo::kRecursiveDoubling, shape, net_, taxed);
  const int stages = allreduce_stages(AllreduceAlgo::kRecursiveDoubling, shape);
  EXPECT_EQ((with_tax - plain).ns(), stages * 5000);
}

TEST_F(CollectivesTest, BandwidthFactorDeratesWireTime) {
  CollectiveCosts derated = costs_;
  derated.bandwidth_factor = 0.5;
  const CollectiveShape shape{64, 64, 4 * MiB};
  const auto full = allreduce_base_cost(AllreduceAlgo::kRing, shape, net_, costs_);
  const auto half = allreduce_base_cost(AllreduceAlgo::kRing, shape, net_, derated);
  EXPECT_GT(half.ns(), full.ns());
}

TEST_F(CollectivesTest, AutoPolicySwitchPoints) {
  EXPECT_EQ(allreduce_pick({1024, 64, 8}), AllreduceAlgo::kRecursiveDoubling);
  EXPECT_EQ(allreduce_pick({1024, 64, 64 * KiB}), AllreduceAlgo::kRabenseifner);
  EXPECT_EQ(allreduce_pick({16, 64, 16 * MiB}), AllreduceAlgo::kRing);
  EXPECT_EQ(allreduce_pick({1024, 64, 16 * MiB}), AllreduceAlgo::kRabenseifner);
}

TEST_F(CollectivesTest, AutoResolvesToConcreteCost) {
  const CollectiveShape shape{128, 64, 8};
  EXPECT_EQ(allreduce_base_cost(AllreduceAlgo::kAuto, shape, net_, costs_),
            allreduce_base_cost(AllreduceAlgo::kRecursiveDoubling, shape, net_, costs_));
}

TEST_F(CollectivesTest, AlgoNames) {
  EXPECT_EQ(to_string(AllreduceAlgo::kRing), "ring");
  EXPECT_EQ(to_string(AllreduceAlgo::kAuto), "auto");
}

}  // namespace
