// Unit tests: the LTP-style compatibility suite (paper Section III-D).

#include <gtest/gtest.h>

#include "compat/ltp.hpp"
#include "hw/knl.hpp"
#include "kernel/node.hpp"

namespace {

using namespace mkos;
using namespace mkos::compat;
using namespace mkos::kernel;

class CompatFixture : public ::testing::Test {
 protected:
  LtpSuite suite_ = LtpSuite::standard();
  Node linux_node_{hw::knl_snc4_flat(), NodeOsConfig::linux_default(), 1};
  Node mck_node_{hw::knl_snc4_flat(), NodeOsConfig::mckernel_default(), 2};
  Node mos_node_{hw::knl_snc4_flat(), NodeOsConfig::mos_default(), 3};
};

TEST_F(CompatFixture, CatalogHas3328Cases) {
  EXPECT_EQ(suite_.size(), 3328);
}

TEST_F(CompatFixture, LinuxPassesEverything) {
  const Report r = suite_.run(linux_node_.app_kernel());
  EXPECT_EQ(r.failed, 0) << "Linux is the yardstick";
  EXPECT_EQ(r.passed, 3328);
}

TEST_F(CompatFixture, McKernelFails32) {
  // "Concentrating only on system calls, McKernel passes all but 32."
  const Report r = suite_.run(mck_node_.app_kernel());
  EXPECT_EQ(r.failed, 32);
}

TEST_F(CompatFixture, ElevenMcKernelFailuresAreMovePages) {
  // "Eleven of the 32 failing experiments attempt to test various
  // combinations of the move_pages() system call."
  const Report r = suite_.run(mck_node_.app_kernel());
  const auto it = r.failures_by_family.find("move_pages");
  ASSERT_NE(it, r.failures_by_family.end());
  EXPECT_EQ(it->second, 11);
}

TEST_F(CompatFixture, MosFails111) {
  // "For mOS the numbers are more bleak: 111 tests out of 3,328 fail."
  const Report r = suite_.run(mos_node_.app_kernel());
  EXPECT_EQ(r.failed, 111);
}

TEST_F(CompatFixture, MosPtraceFourOfFiveFail) {
  const Report r = suite_.run(mos_node_.app_kernel());
  const auto it = r.failures_by_family.find("ptrace");
  ASSERT_NE(it, r.failures_by_family.end());
  EXPECT_EQ(it->second, 4);
}

TEST_F(CompatFixture, MosFailuresDominatedByForkCascade) {
  const Report r = suite_.run(mos_node_.app_kernel());
  int fork_related = 0;
  for (const auto& t : suite_.cases()) {
    if ((t.fork_setup || t.sys == Sys::kFork || t.sys == Sys::kVfork) &&
        !LtpSuite::passes(t, mos_node_.app_kernel())) {
      ++fork_related;
    }
  }
  EXPECT_GE(fork_related, 80);
  EXPECT_GT(static_cast<double>(fork_related) / r.failed, 0.6);
}

TEST_F(CompatFixture, BrkShrinkTestsFailOnHpcHeapOnly) {
  // "tests that expect a page fault fail. Such a test looks for Linux
  // behavior that HPC applications do not need or expect."
  const TestCase* releases = nullptr;
  for (const auto& t : suite_.cases()) {
    if (t.functional == FunctionalCheck::kBrkShrinkReleases) releases = &t;
  }
  ASSERT_NE(releases, nullptr);
  EXPECT_TRUE(LtpSuite::passes(*releases, linux_node_.app_kernel()));
  EXPECT_FALSE(LtpSuite::passes(*releases, mck_node_.app_kernel()));
  EXPECT_FALSE(LtpSuite::passes(*releases, mos_node_.app_kernel()));

  // With the HPC brk() toggled off (the mOS runtime option), the test passes.
  NodeOsConfig cfg = NodeOsConfig::mos_default();
  cfg.mos_opts.hpc_brk = false;
  Node plain_mos{hw::knl_snc4_flat(), cfg, 7};
  EXPECT_TRUE(LtpSuite::passes(*releases, plain_mos.app_kernel()));
}

TEST_F(CompatFixture, PassRateOrdering) {
  const double lin = suite_.run(linux_node_.app_kernel()).pass_rate();
  const double mck = suite_.run(mck_node_.app_kernel()).pass_rate();
  const double mos = suite_.run(mos_node_.app_kernel()).pass_rate();
  EXPECT_GT(lin, mck);
  EXPECT_GT(mck, mos);
  EXPECT_GT(mos, 0.96);  // both LWKs are still overwhelmingly compatible
}

TEST_F(CompatFixture, ReportInvariants) {
  for (Node* n : {&linux_node_, &mck_node_, &mos_node_}) {
    const Report r = suite_.run(n->app_kernel());
    EXPECT_EQ(r.passed + r.failed, r.total);
    int by_family = 0;
    for (const auto& [family, count] : r.failures_by_family) by_family += count;
    EXPECT_EQ(by_family, r.failed);
    EXPECT_EQ(static_cast<int>(r.failed_tests.size()), r.failed);
  }
}

}  // namespace
