// Unit tests: SystemConfig -> NodeOsConfig / Machine wiring. Every public
// toggle must reach the component that implements it.

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "kernel/node.hpp"

namespace {

using namespace mkos;
using core::MemMode;
using core::SystemConfig;

TEST(ConfigWiring, HpcBrkReachesBothLwks) {
  SystemConfig c = SystemConfig::mckernel();
  c.hpc_brk = false;
  EXPECT_FALSE(c.node_config().mckernel_opts.hpc_brk);
  c.os = kernel::OsKind::kMos;
  EXPECT_FALSE(c.node_config().mos_opts.hpc_brk);
}

TEST(ConfigWiring, PreferMcdramReachesBothLwks) {
  SystemConfig c = SystemConfig::mos();
  c.lwk_prefer_mcdram = false;
  const auto nc = c.node_config();
  EXPECT_FALSE(nc.mos_opts.prefer_mcdram);
  EXPECT_FALSE(nc.mckernel_opts.prefer_mcdram);
}

TEST(ConfigWiring, McKernelProxyOptions) {
  SystemConfig c = SystemConfig::mckernel();
  c.mckernel_mpol_shm_premap = true;
  c.mckernel_disable_sched_yield = true;
  c.mckernel_demand_fallback = false;
  const auto nc = c.node_config();
  EXPECT_TRUE(nc.mckernel_opts.mpol_shm_premap);
  EXPECT_TRUE(nc.mckernel_opts.disable_sched_yield);
  EXPECT_FALSE(nc.mckernel_opts.demand_fallback);
}

TEST(ConfigWiring, CoreSplitPropagates) {
  SystemConfig c = SystemConfig::mos();
  c.app_cores = 66;
  c.service_cores = 2;
  const auto nc = c.node_config();
  EXPECT_EQ(nc.app_cores, 66);
  EXPECT_EQ(nc.service_cores, 2);
  kernel::Node node{c.node_topology(), nc, 1};
  EXPECT_EQ(node.partition().lwk_cores, 66);
}

TEST(ConfigWiring, ServiceCoreSharingOnlyWithoutReservedCores) {
  SystemConfig c = SystemConfig::linux_default();
  EXPECT_FALSE(c.node_config().linux_opts.service_core_shared);
  c.app_cores = 68;
  c.service_cores = 0;
  EXPECT_TRUE(c.node_config().linux_opts.service_core_shared);
}

TEST(ConfigWiring, CoTenantConfinement) {
  // On Linux the tenant shares the app cores; on a multi-kernel it only
  // reaches the Linux side.
  SystemConfig lin = SystemConfig::linux_default();
  lin.co_tenant = true;
  EXPECT_TRUE(lin.node_config().linux_opts.co_tenant);

  SystemConfig mck = SystemConfig::mckernel();
  mck.co_tenant = true;
  const auto nc = mck.node_config();
  EXPECT_FALSE(nc.linux_opts.co_tenant);  // app cores belong to the LWK
  EXPECT_TRUE(nc.mckernel_opts.co_tenant_on_linux);
}

TEST(ConfigWiring, MemModeSelectsTopology) {
  SystemConfig c = SystemConfig::linux_default();
  EXPECT_EQ(c.node_topology().domains().size(), 8u);
  c.mem_mode = MemMode::kQuadrantFlat;
  EXPECT_EQ(c.node_topology().domains().size(), 2u);
  EXPECT_EQ(c.node_topology().total_capacity(hw::MemKind::kMcdram),
            16ull * sim::GiB);
}

TEST(ConfigWiring, NetworkToggle) {
  SystemConfig c = SystemConfig::mckernel();
  EXPECT_EQ(c.network().name, "omni-path-100");
  c.user_space_network = true;
  EXPECT_EQ(c.network().name, "omni-path-bypass");
}

TEST(ConfigWiring, FusedOsBootsThroughConfig) {
  const SystemConfig c = SystemConfig::for_os(kernel::OsKind::kFusedOs);
  EXPECT_EQ(c.label(), "FusedOS");
  const auto machine = c.machine(2);
  runtime::Job job{machine, runtime::JobSpec{2, 8, 1}, 1};
  EXPECT_EQ(job.kernel().kind(), kernel::OsKind::kFusedOs);
  EXPECT_EQ(job.node().proxy_process_count(), 8);  // one CL per rank
}

TEST(ConfigWiring, MachineNodeCountHonored) {
  const auto machine = SystemConfig::linux_default().machine(37);
  EXPECT_EQ(machine.cluster.node_count(), 37);
}

}  // namespace
