// Contracts in MKOS_CONTRACTS_THROW mode: violations surface as
// mkos::sim::ContractViolation so tests assert them with EXPECT_THROW
// instead of death tests (which fork — slow, and hostile to TSan/ASan).
// This binary is compiled with MKOS_CONTRACTS_THROW and MKOS_AUDIT_ENABLED;
// the rest of the suite keeps abort semantics, so the two modes coexist.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "sim/contracts.hpp"
#include "sim/env.hpp"

namespace {

using mkos::sim::ContractViolation;

int checked_half(int v) {
  MKOS_EXPECTS(v >= 0);
  const int half = v / 2;
  MKOS_ENSURES(half * 2 <= v);
  return half;
}

TEST(ContractsThrow, ExpectsThrowsOnViolation) {
  EXPECT_EQ(checked_half(8), 4);
  EXPECT_THROW(checked_half(-1), ContractViolation);
}

TEST(ContractsThrow, MessageNamesKindExpressionAndSite) {
  try {
    MKOS_EXPECTS(1 < 0);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos) << what;
    EXPECT_NE(what.find("1 < 0"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos) << what;
  }
}

TEST(ContractsThrow, EnsuresAndAssertThrowTheirKinds) {
  try {
    MKOS_ENSURES(false);
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"), std::string::npos);
  }
  try {
    MKOS_ASSERT(false);
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(ContractsThrow, ViolationIsALogicError) {
  // Catchable as std::logic_error: contract breaks are programming errors.
  EXPECT_THROW(MKOS_EXPECTS(false), std::logic_error);
}

// --------------------------------------------------------------- MKOS_AUDIT

TEST(Audit, EnabledAuditChecksFire) {
  int walks = 0;
  MKOS_AUDIT([&] {
    ++walks;
    return true;
  }());
  EXPECT_EQ(walks, 1);  // MKOS_AUDIT_ENABLED: the walk really ran
  try {
    MKOS_AUDIT(2 + 2 == 5);
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("audit"), std::string::npos);
  }
}

// ------------------------------------------------------- env_int throw mode

TEST(EnvThrow, GarbageThrowsInsteadOfMappingToZero) {
  ASSERT_EQ(setenv("MKOS_TEST_THREADS", "all", 1), 0);
  EXPECT_THROW(mkos::sim::env_int("MKOS_TEST_THREADS", 1, 1, 64),
               ContractViolation);
  unsetenv("MKOS_TEST_THREADS");
}

TEST(EnvThrow, OutOfRangeThrowsWithRangeInMessage) {
  ASSERT_EQ(setenv("MKOS_TEST_THREADS", "0", 1), 0);
  try {
    (void)mkos::sim::env_int("MKOS_TEST_THREADS", 1, 1, 64);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("MKOS_TEST_THREADS"), std::string::npos) << what;
    EXPECT_NE(what.find("[1, 64]"), std::string::npos) << what;
  }
  unsetenv("MKOS_TEST_THREADS");
}

TEST(EnvThrow, TrailingJunkAndOverflowThrow) {
  for (const char* bad : {"8x", " 8", "8 ", "0x10", "9999999999999999999999", ""}) {
    ASSERT_EQ(setenv("MKOS_TEST_THREADS", bad, 1), 0);
    EXPECT_THROW(mkos::sim::env_int("MKOS_TEST_THREADS", 1, 1, 64),
                 ContractViolation)
        << "accepted garbage: '" << bad << "'";
  }
  unsetenv("MKOS_TEST_THREADS");
}

TEST(EnvThrow, ValidAndUnsetStillWork) {
  unsetenv("MKOS_TEST_THREADS");
  EXPECT_EQ(mkos::sim::env_int("MKOS_TEST_THREADS", 7, 1, 64), 7);
  ASSERT_EQ(setenv("MKOS_TEST_THREADS", "32", 1), 0);
  EXPECT_EQ(mkos::sim::env_int("MKOS_TEST_THREADS", 7, 1, 64), 32);
  unsetenv("MKOS_TEST_THREADS");
}

}  // namespace
