// Unit tests: the hot-path sampling engine — truncated-moment closed forms,
// Gamma/normal batched sums, inverse-CDF maxima, the symmetric-lane heap
// replay, cost caches, and the determinism contract that fast and slow
// paths (and serial vs pooled execution) produce byte-identical results.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/campaign.hpp"
#include "core/config.hpp"
#include "core/obs_glue.hpp"
#include "kernel/noise.hpp"
#include "runtime/simmpi.hpp"

namespace {

using namespace mkos;
using namespace mkos::runtime;
using kernel::NoiseComponent;
using mkos::core::SystemConfig;
using mkos::sim::MiB;

/// One raw (capped) event draw — the reference the analytic forms replace.
double draw_event_ns(const NoiseComponent& c, sim::Rng& rng) {
  double d = 0.0;
  switch (c.dist) {
    case NoiseComponent::Dist::kFixed:
      d = static_cast<double>(c.duration.ns());
      break;
    case NoiseComponent::Dist::kExponential:
      d = rng.exponential(static_cast<double>(c.duration.ns()));
      break;
    case NoiseComponent::Dist::kPareto:
      d = rng.pareto(static_cast<double>(c.duration.ns()), c.pareto_alpha);
      break;
  }
  if (c.cap.ns() > 0) d = std::min(d, static_cast<double>(c.cap.ns()));
  return d;
}

struct Empirical {
  double mean = 0.0;
  double var = 0.0;
};

Empirical empirical_of(const std::vector<double>& xs) {
  Empirical e;
  for (double x : xs) e.mean += x;
  e.mean /= static_cast<double>(xs.size());
  for (double x : xs) e.var += (x - e.mean) * (x - e.mean);
  e.var /= static_cast<double>(xs.size() - 1);
  return e;
}

// ------------------------------------------------------- truncated moments

TEST(ComponentMoments, MatchEmpiricalCappedExponential) {
  const NoiseComponent c{"exp", 1.0, sim::microseconds(4),
                         NoiseComponent::Dist::kExponential, 1.5, sim::microseconds(10)};
  const kernel::ComponentMoments m = kernel::component_moments(c);
  sim::Rng rng{7};
  std::vector<double> xs(200000);
  for (double& x : xs) x = draw_event_ns(c, rng);
  const Empirical e = empirical_of(xs);
  EXPECT_NEAR(e.mean, m.m1_ns, 0.02 * m.m1_ns);
  EXPECT_NEAR(e.var, m.m2_ns2 - m.m1_ns * m.m1_ns,
              0.03 * (m.m2_ns2 - m.m1_ns * m.m1_ns));
  EXPECT_TRUE(m.m2_finite);
}

TEST(ComponentMoments, MatchEmpiricalCappedPareto) {
  const NoiseComponent c{"par", 1.0, sim::milliseconds(1.5),
                         NoiseComponent::Dist::kPareto, 1.4, sim::milliseconds(20)};
  const kernel::ComponentMoments m = kernel::component_moments(c);
  sim::Rng rng{11};
  std::vector<double> xs(400000);
  for (double& x : xs) x = draw_event_ns(c, rng);
  const Empirical e = empirical_of(xs);
  EXPECT_NEAR(e.mean, m.m1_ns, 0.02 * m.m1_ns);
  EXPECT_NEAR(e.var, m.m2_ns2 - m.m1_ns * m.m1_ns,
              0.05 * (m.m2_ns2 - m.m1_ns * m.m1_ns));
}

TEST(ComponentMoments, UncappedParetoUsesClosedForm) {
  const NoiseComponent c{"par3", 1.0, sim::microseconds(700),
                         NoiseComponent::Dist::kPareto, 3.0, sim::TimeNs{0}};
  const kernel::ComponentMoments m = kernel::component_moments(c);
  const double xm = static_cast<double>(c.duration.ns());
  EXPECT_DOUBLE_EQ(m.m1_ns, 3.0 * xm / 2.0);
  EXPECT_DOUBLE_EQ(m.m2_ns2, 3.0 * xm * xm);
  EXPECT_TRUE(m.m2_finite);
}

TEST(ComponentMoments, HeavyTailUncappedParetoFlagsInfiniteVariance) {
  const NoiseComponent c{"heavy", 1.0, sim::microseconds(700),
                         NoiseComponent::Dist::kPareto, 1.5, sim::TimeNs{0}};
  const kernel::ComponentMoments m = kernel::component_moments(c);
  EXPECT_FALSE(m.m2_finite);
  EXPECT_GT(m.m1_ns, 0.0);
}

TEST(ComponentMoments, CapAtOrBelowScaleIsDeterministic) {
  const NoiseComponent c{"deg", 1.0, sim::microseconds(5),
                         NoiseComponent::Dist::kPareto, 1.5, sim::microseconds(5)};
  const kernel::ComponentMoments m = kernel::component_moments(c);
  const double cap = static_cast<double>(c.cap.ns());
  EXPECT_DOUBLE_EQ(m.m1_ns, cap);
  EXPECT_DOUBLE_EQ(m.m2_ns2, cap * cap);
}

// ------------------------------------------------------------ batched sums

TEST(BatchedSum, GammaMatchesNaiveSumOfExponentials) {
  const NoiseComponent c{"exp", 1.0, sim::microseconds(30),
                         NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}};
  const kernel::ComponentMoments m = kernel::component_moments(c);
  const std::uint64_t n = 40;
  const double mu = static_cast<double>(c.duration.ns());

  sim::Rng rng{13};
  std::vector<double> sums(20000);
  for (double& s : sums) s = kernel::sample_component_sum_ns(c, m, n, rng);
  const Empirical e = empirical_of(sums);
  EXPECT_NEAR(e.mean, static_cast<double>(n) * mu, 0.02 * static_cast<double>(n) * mu);
  EXPECT_NEAR(e.var, static_cast<double>(n) * mu * mu,
              0.05 * static_cast<double>(n) * mu * mu);
}

TEST(BatchedSum, NormalPathMatchesTruncatedMomentsAndSupport) {
  const NoiseComponent c{"par", 1.0, sim::milliseconds(1.5),
                         NoiseComponent::Dist::kPareto, 1.4, sim::milliseconds(20)};
  const kernel::ComponentMoments m = kernel::component_moments(c);
  const std::uint64_t n = 100;  // >= kNormalSumThreshold -> one normal draw
  const double xm = static_cast<double>(c.duration.ns());
  const double cap = static_cast<double>(c.cap.ns());

  sim::Rng rng{17};
  kernel::SampleCounters counters;
  std::vector<double> sums(20000);
  for (double& s : sums) s = kernel::sample_component_sum_ns(c, m, n, rng, &counters);
  EXPECT_EQ(counters.exact_events, 0u);
  EXPECT_EQ(counters.analytic_sums, sums.size());

  const Empirical e = empirical_of(sums);
  const double dn = static_cast<double>(n);
  EXPECT_NEAR(e.mean, dn * m.m1_ns, 0.01 * dn * m.m1_ns);
  EXPECT_NEAR(e.var, dn * (m.m2_ns2 - m.m1_ns * m.m1_ns),
              0.05 * dn * (m.m2_ns2 - m.m1_ns * m.m1_ns));
  for (double s : sums) {
    EXPECT_GE(s, dn * xm);  // every event is at least the Pareto scale
    EXPECT_LE(s, dn * cap);  // and at most the cap
  }
}

TEST(BatchedSum, SmallCountsFallBackToExactDraws) {
  const NoiseComponent c{"par", 1.0, sim::milliseconds(1.5),
                         NoiseComponent::Dist::kPareto, 1.4, sim::milliseconds(20)};
  const kernel::ComponentMoments m = kernel::component_moments(c);
  sim::Rng rng{19};
  kernel::SampleCounters counters;
  (void)kernel::sample_component_sum_ns(c, m, 5, rng, &counters);
  EXPECT_EQ(counters.exact_events, 5u);
  EXPECT_EQ(counters.analytic_sums, 0u);
}

TEST(BatchedSum, FixedComponentConsumesNoRandomness) {
  const NoiseComponent c{"tick", 1.0, sim::microseconds(3),
                         NoiseComponent::Dist::kFixed, 1.5, sim::TimeNs{0}};
  const kernel::ComponentMoments m = kernel::component_moments(c);
  sim::Rng rng{23};
  const std::uint64_t state_before = sim::Rng{23}.next_u64();
  const double s = kernel::sample_component_sum_ns(c, m, 1000, rng);
  EXPECT_DOUBLE_EQ(s, 1000.0 * static_cast<double>(c.duration.ns()));
  EXPECT_EQ(rng.next_u64(), state_before);  // stream untouched
}

// ------------------------------------------------------------- max draws

TEST(MaxDraw, MatchesNaiveMaximumDistribution) {
  const NoiseComponent c{"exp", 1.0, sim::microseconds(4),
                         NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}};
  const std::uint64_t n = 64;
  sim::Rng naive_rng{29};
  sim::Rng fast_rng{31};
  std::vector<double> naive(20000);
  std::vector<double> fast(20000);
  for (double& x : naive) {
    double best = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) best = std::max(best, draw_event_ns(c, naive_rng));
    x = best;
  }
  for (double& x : fast) x = kernel::sample_component_max_ns(c, n, fast_rng);
  const Empirical en = empirical_of(naive);
  const Empirical ef = empirical_of(fast);
  EXPECT_NEAR(ef.mean, en.mean, 0.03 * en.mean);
  EXPECT_NEAR(std::sqrt(ef.var), std::sqrt(en.var), 0.08 * std::sqrt(en.var));
}

TEST(MaxDraw, GrowsWithCountAndRespectsCap) {
  const NoiseComponent c{"par", 1.0, sim::milliseconds(1.5),
                         NoiseComponent::Dist::kPareto, 1.4, sim::milliseconds(20)};
  sim::Rng rng{37};
  double mean_small = 0.0;
  double mean_large = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const double small = kernel::sample_component_max_ns(c, 4, rng);
    const double large = kernel::sample_component_max_ns(c, 4096, rng);
    EXPECT_LE(small, static_cast<double>(c.cap.ns()));
    EXPECT_LE(large, static_cast<double>(c.cap.ns()));
    mean_small += small;
    mean_large += large;
  }
  EXPECT_GT(mean_large, mean_small * 2.0);
}

// ----------------------------------------------- model-level sample parity

TEST(NoiseModelSample, TracksExpectedFractionOnLongSpans) {
  const kernel::NoiseModel model = kernel::noise_linux_co_tenant();
  sim::Rng rng{41};
  kernel::SampleCounters counters;
  const sim::TimeNs span = sim::seconds(10.0);
  double stolen = 0.0;
  const int samples = 3000;
  for (int i = 0; i < samples; ++i) {
    stolen += static_cast<double>(model.sample(span, rng, &counters).ns());
  }
  const double fraction =
      stolen / (static_cast<double>(samples) * static_cast<double>(span.ns()));
  EXPECT_NEAR(fraction, model.expected_fraction(), 0.05 * model.expected_fraction());
  // The high-rate components (housekeeping at lambda=250, tenant-preempt at
  // lambda=120) batch; only the sparse tails (kworker, daemon-tail,
  // tenant-burst at lambda <= 12) fall back to exact draws — a couple of
  // percent of the ~390 events/span a naive sampler would draw.
  EXPECT_GT(counters.analytic_sums, 0u);
  const std::uint64_t naive_events = static_cast<std::uint64_t>(
      model.expected_fraction() > 0.0 ? 390.0 * samples : 0.0);
  EXPECT_LT(counters.exact_events, naive_events / 20);
}

// --------------------------------------- fast-path / slow-path equivalence

/// Drive one world through a script covering every fast path: symmetric
/// heap cycles (replayable and state-changing), uniform and scaled compute,
/// cached collectives and messages, and a mid-run algorithm flip that must
/// invalidate the collective cache.
sim::TimeNs run_script(MpiWorld& world) {
  world.mpi_init();
  const std::int64_t grow = 8 * static_cast<std::int64_t>(MiB);
  const std::vector<std::int64_t> cycle{grow, 0, -grow};
  const std::vector<std::int64_t> net_growth{grow / 4};
  for (int step = 0; step < 6; ++step) {
    world.heap_cycle(cycle);
    world.compute_bytes(32 * MiB);
    world.compute_bytes_scaled(16 * MiB, {1.0, 1.25});
    world.allreduce(64 * sim::KiB);
    world.halo_exchange(256 * sim::KiB, 6);
    if (step == 3) {
      world.heap_cycle(net_growth);  // state-changing: exercises the slow path
      world.collective_model().algo = AllreduceAlgo::kRing;
    }
  }
  world.barrier();
  return world.finish();
}

struct WorldOutcome {
  sim::TimeNs clock;
  MpiWorld::PhaseBreakdown breakdown;
  std::vector<mem::HeapStats> heap;
  MpiWorld::EngineCounters engine;
};

WorldOutcome outcome_for(kernel::OsKind os, bool fast_paths) {
  const Machine m = SystemConfig::for_os(os).machine(4);
  Job job{m, JobSpec{4, 8, 1}, 1};
  MpiWorld world{job, 1234};
  world.set_fast_paths(fast_paths);
  WorldOutcome out;
  out.clock = run_script(world);
  out.breakdown = world.breakdown();
  for (int i = 0; i < job.lane_count(); ++i) out.heap.push_back(job.lane(i).heap()->stats());
  out.engine = world.engine_counters();
  return out;
}

void expect_equivalent(kernel::OsKind os) {
  const WorldOutcome fast = outcome_for(os, true);
  const WorldOutcome slow = outcome_for(os, false);

  // Bit-identical outputs: global clock, phase split, per-lane heap stats.
  EXPECT_EQ(fast.clock.ns(), slow.clock.ns());
  EXPECT_EQ(fast.breakdown.compute.ns(), slow.breakdown.compute.ns());
  EXPECT_EQ(fast.breakdown.noise.ns(), slow.breakdown.noise.ns());
  EXPECT_EQ(fast.breakdown.comm.ns(), slow.breakdown.comm.ns());
  ASSERT_EQ(fast.heap.size(), slow.heap.size());
  for (std::size_t i = 0; i < fast.heap.size(); ++i) {
    EXPECT_EQ(fast.heap[i].queries, slow.heap[i].queries) << "lane " << i;
    EXPECT_EQ(fast.heap[i].grows, slow.heap[i].grows) << "lane " << i;
    EXPECT_EQ(fast.heap[i].shrinks, slow.heap[i].shrinks) << "lane " << i;
    EXPECT_EQ(fast.heap[i].current, slow.heap[i].current) << "lane " << i;
    EXPECT_EQ(fast.heap[i].max_break, slow.heap[i].max_break) << "lane " << i;
    EXPECT_EQ(fast.heap[i].cum_growth, slow.heap[i].cum_growth) << "lane " << i;
    EXPECT_EQ(fast.heap[i].faults, slow.heap[i].faults) << "lane " << i;
    EXPECT_EQ(fast.heap[i].zeroed, slow.heap[i].zeroed) << "lane " << i;
  }

  // The fast world actually took the fast paths; the slow one never did.
  EXPECT_GT(fast.engine.heap_fast_lanes, 0u);
  EXPECT_GT(fast.engine.compute_uniform_fast, 0u);
  EXPECT_GT(fast.engine.coll_cache_hits, 0u);
  EXPECT_GT(fast.engine.msg_cache_hits, 0u);
  EXPECT_EQ(slow.engine.heap_fast_lanes, 0u);
  EXPECT_EQ(slow.engine.compute_uniform_fast, 0u);
  EXPECT_EQ(slow.engine.coll_cache_hits, 0u);
  EXPECT_EQ(slow.engine.msg_cache_hits, 0u);
  // The state-changing cycle fell back to per-lane simulation on both.
  EXPECT_GT(fast.engine.heap_slow_lanes, 0u);
}

TEST(FastPaths, LinuxWorldBitIdenticalToSlowPaths) {
  expect_equivalent(kernel::OsKind::kLinux);
}

TEST(FastPaths, McKernelWorldBitIdenticalToSlowPaths) {
  expect_equivalent(kernel::OsKind::kMcKernel);
}

TEST(FastPaths, FreshWorldBandwidthSentinelNeverLeaks) {
  // Job guarantees >= 1 lane, so refresh_lanes' zero-lane branch is a
  // defensive default; what IS reachable is a fresh world with nothing
  // resident, where every lane prices at the DDR4 fallback. The min-scan
  // sentinel (1e30) must never survive into compute costs: streamed bytes
  // take real (positive) time on both the uniform and per-lane paths.
  const Machine m = SystemConfig::linux_default().machine(1);
  Job job{m, JobSpec{1, 8, 1}, 1};
  MpiWorld world{job, 99};
  world.refresh_lanes();
  world.compute_bytes(512 * MiB);
  const sim::TimeNs fast_clock = world.finish();
  EXPECT_GT(fast_clock.ns(), 0);

  Job slow_job{m, JobSpec{1, 8, 1}, 1};
  MpiWorld slow_world{slow_job, 99};
  slow_world.set_fast_paths(false);
  slow_world.compute_bytes(512 * MiB);
  EXPECT_EQ(slow_world.finish().ns(), fast_clock.ns());
}

// ------------------------------------------- serial vs pooled ledger bytes

TEST(LedgerDeterminism, SerialAndPooledCampaignsRenderIdenticalJson) {
  core::CampaignSpec spec;
  spec.apps = {"MiniFE", "Lulesh2.0"};
  spec.configs = {SystemConfig::linux_default(), SystemConfig::mos()};
  spec.reps = 2;
  spec.seed = 4242;
  spec.max_nodes = 16;

  auto render = [&spec](int threads) {
    sim::ThreadPool pool(threads);
    core::CellCache cache;
    core::Campaign campaign(pool, cache);
    const auto cells = campaign.run(spec);
    obs::RunLedger ledger = core::bench_ledger("determinism_probe", "test", spec.seed);
    for (const core::CellResult& cell : cells) {
      core::record_run_stats(
          ledger, cell.app + "." + cell.config_label + ".n" + std::to_string(cell.nodes),
          cell.stats);
    }
    return ledger.to_json();  // no host section written -> fully deterministic
  };

  const std::string serial = render(1);
  const std::string pooled = render(8);
  EXPECT_EQ(serial, pooled);
}

}  // namespace
