// EventQueue semantics pinned before the arena rewrite (DESIGN.md §13).
//
// These tests were written against the unique_ptr binary-heap engine and must
// pass unchanged on the slab-arena engine: they treat EventId as opaque and
// only exercise the documented contract — time order, FIFO among equal
// timestamps, cancel semantics, self-scheduling at now(), and run_until
// boundary inclusivity.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace {

using mkos::sim::EventId;
using mkos::sim::EventQueue;
using mkos::sim::TimeNs;

TEST(EventQueueSemantics, FifoAmongEqualTimestampsAcrossInterleavedSchedules) {
  EventQueue q;
  std::vector<std::string> order;
  // Interleave two timestamps so heap sift order differs from insert order.
  q.schedule_at(TimeNs{200}, [&] { order.push_back("b0"); });
  q.schedule_at(TimeNs{100}, [&] { order.push_back("a0"); });
  q.schedule_at(TimeNs{200}, [&] { order.push_back("b1"); });
  q.schedule_at(TimeNs{100}, [&] { order.push_back("a1"); });
  q.schedule_at(TimeNs{200}, [&] { order.push_back("b2"); });
  q.schedule_at(TimeNs{100}, [&] { order.push_back("a2"); });
  q.run();
  EXPECT_EQ(order, (std::vector<std::string>{"a0", "a1", "a2", "b0", "b1", "b2"}));
}

TEST(EventQueueSemantics, FifoSurvivesCancellationOfMiddleEvent) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  ids.reserve(5);
  for (int i = 0; i < 5; ++i) {
    ids.push_back(q.schedule_at(TimeNs{50}, [&order, i] { order.push_back(i); }));
  }
  EXPECT_TRUE(q.cancel(ids[2]));
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3, 4}));
  EXPECT_EQ(q.executed(), 4u);
}

TEST(EventQueueSemantics, CancelBeforeRunStopsExecutionAndUpdatesPending) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(TimeNs{10}, [&] { ++fired; });
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.pending(), 0u);
  q.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.executed(), 0u);
  EXPECT_EQ(q.now().ns(), 0);  // nothing ran, clock untouched
}

TEST(EventQueueSemantics, CancelOfExecutedIdReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule_at(TimeNs{10}, [] {});
  q.run();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueueSemantics, CancelOfUnknownIdsReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{0}));
  EXPECT_FALSE(q.cancel(EventId{0xffff'ffff'ffff'ffffULL}));
  const EventId id = q.schedule_at(TimeNs{5}, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double cancel
}

TEST(EventQueueSemantics, EventCanCancelALaterEvent) {
  EventQueue q;
  int fired = 0;
  const EventId victim = q.schedule_at(TimeNs{20}, [&] { ++fired; });
  q.schedule_at(TimeNs{10}, [&] { EXPECT_TRUE(q.cancel(victim)); });
  q.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueueSemantics, EventCanCancelASimultaneousLaterEvent) {
  EventQueue q;
  int fired = 0;
  EventId victim = 0;
  q.schedule_at(TimeNs{10}, [&] { EXPECT_TRUE(q.cancel(victim)); });
  victim = q.schedule_at(TimeNs{10}, [&] { ++fired; });
  q.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.now().ns(), 10);
}

TEST(EventQueueSemantics, EventSchedulingAtNowRunsAfterAlreadyPendingPeers) {
  EventQueue q;
  std::vector<std::string> order;
  q.schedule_at(TimeNs{10}, [&] {
    order.push_back("first");
    // Scheduled while executing at t=10: must run at t=10, after the peer
    // that was already pending (FIFO by schedule order, not schedule time).
    q.schedule_at(q.now(), [&] { order.push_back("nested"); });
  });
  q.schedule_at(TimeNs{10}, [&] { order.push_back("peer"); });
  q.run();
  EXPECT_EQ(order, (std::vector<std::string>{"first", "peer", "nested"}));
  EXPECT_EQ(q.now().ns(), 10);
}

TEST(EventQueueSemantics, ZeroDelayScheduleAfterRunsAtCurrentTime) {
  EventQueue q;
  int fired_at = -1;
  q.schedule_at(TimeNs{30}, [&] {
    q.schedule_after(TimeNs{0}, [&] { fired_at = static_cast<int>(q.now().ns()); });
  });
  q.run();
  EXPECT_EQ(fired_at, 30);
}

TEST(EventQueueSemantics, RunUntilExecutesEventsExactlyAtLimit) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_at(TimeNs{10}, [&] { fired.push_back(10); });
  q.schedule_at(TimeNs{20}, [&] { fired.push_back(20); });
  q.schedule_at(TimeNs{21}, [&] { fired.push_back(21); });
  q.run_until(TimeNs{20});
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));  // limit is inclusive
  EXPECT_EQ(q.now().ns(), 20);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(TimeNs{21});
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 21}));
}

TEST(EventQueueSemantics, RunUntilAdvancesClockPastLastEvent) {
  EventQueue q;
  q.schedule_at(TimeNs{5}, [] {});
  q.run_until(TimeNs{100});
  // The queue drained at t=5 but the window was observed through t=100.
  EXPECT_EQ(q.now().ns(), 100);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueSemantics, RunUntilOnEmptyQueueAdvancesClock) {
  EventQueue q;
  q.run_until(TimeNs{42});
  EXPECT_EQ(q.now().ns(), 42);
  // Scheduling at the advanced clock is legal; before it is a contract breach
  // (covered by EventQueue.SchedulingInPastIsRejected in test_sim.cpp).
  q.schedule_at(TimeNs{42}, [] {});
  q.run();
  EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueueSemantics, RunUntilSkipsCancelledEventsWithoutExecuting) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.schedule_at(TimeNs{10}, [&] { ++fired; });
  const EventId b = q.schedule_at(TimeNs{20}, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(a));
  EXPECT_TRUE(q.cancel(b));
  q.run_until(TimeNs{30});
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.executed(), 0u);
  EXPECT_EQ(q.now().ns(), 30);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueSemantics, StepReturnsFalseOnEmptyAndAfterDrain) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule_at(TimeNs{10}, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueueSemantics, PendingTracksLiveEventsNotHeapResidue) {
  EventQueue q;
  std::vector<EventId> ids;
  ids.reserve(8);
  for (int i = 0; i < 8; ++i) {
    ids.push_back(q.schedule_at(TimeNs{static_cast<std::int64_t>(10 + i)}, [] {}));
  }
  for (int i = 0; i < 8; i += 2) {
    EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
  }
  EXPECT_EQ(q.pending(), 4u);
  q.run();
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.executed(), 4u);
}

TEST(EventQueueSemantics, LongCancelRescheduleChurnKeepsAccounting) {
  // Timer-wheel style churn: every tick schedules a timeout and cancels the
  // previous one. Exercises id reuse / staleness paths on the arena engine.
  EventQueue q;
  int timeouts_fired = 0;
  EventId timeout = 0;
  for (int i = 0; i < 10'000; ++i) {
    const auto t = TimeNs{static_cast<std::int64_t>(i)};
    q.run_until(t);
    if (timeout != 0) {
      EXPECT_TRUE(q.cancel(timeout));
    }
    timeout = q.schedule_at(TimeNs{t.ns() + 100}, [&] { ++timeouts_fired; });
  }
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(timeouts_fired, 1);  // only the last timeout survives
  EXPECT_EQ(q.executed(), 1u);
}

// ---------------------------------------------------------------- arena
// Properties specific to the slab-arena engine: bounded memory under churn
// (the old sparse id->entry index grew monotonically with next_id_),
// generation-tagged handle staleness, and move-only capture support.

TEST(EventQueueArena, SlabStaysBoundedUnderCancelRescheduleChurn) {
  EventQueue q;
  EventId timeout = 0;
  for (int i = 0; i < 100'000; ++i) {
    q.run_until(TimeNs{static_cast<std::int64_t>(i)});
    if (timeout != 0) {
      q.cancel(timeout);
    }
    timeout = q.schedule_at(TimeNs{static_cast<std::int64_t>(i) + 100}, [] {});
  }
  // At most two events were ever live at once; the slab must reflect the
  // peak, not the 100k ids issued (the pre-arena index_ held 100k slots).
  EXPECT_LE(q.slot_capacity(), q.pending() + 4);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueArena, ReusedSlotDoesNotValidateStaleIds) {
  EventQueue q;
  int fired = 0;
  const EventId stale = q.schedule_at(TimeNs{10}, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(stale));
  // The slot is recycled for a new event; the stale handle must not hit it.
  const EventId fresh = q.schedule_at(TimeNs{20}, [&] { fired += 10; });
  EXPECT_EQ(q.slot_capacity(), 1u);  // proves the slot really was reused
  EXPECT_FALSE(q.cancel(stale));
  q.run();
  EXPECT_EQ(fired, 10);
  EXPECT_TRUE(fresh != stale);
}

TEST(EventQueueArena, MoveOnlyCapturesAreSupported) {
  EventQueue q;
  auto payload = std::make_unique<int>(7);
  int seen = 0;
  q.schedule_at(TimeNs{5}, [p = std::move(payload), &seen] { seen = *p; });
  q.run();
  EXPECT_EQ(seen, 7);
}

TEST(EventQueueArena, OversizedCapturesSpillToHeapAndStillRun) {
  EventQueue q;
  std::array<std::uint64_t, 32> big{};  // 256 bytes: larger than the slot SBO
  big[31] = 42;
  std::uint64_t seen = 0;
  q.schedule_at(TimeNs{5}, [big, &seen] { seen = big[31]; });
  q.run();
  EXPECT_EQ(seen, 42u);
}

TEST(EventQueueArena, CompactionSweepsTombstonesDeterministically) {
  EventQueue q;
  std::vector<EventId> ids;
  ids.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    ids.push_back(q.schedule_at(TimeNs{static_cast<std::int64_t>(1000 + i)}, [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 8 != 0) q.cancel(ids[i]);
  }
  // Schedule churn past the tombstone threshold to trigger compaction.
  for (int i = 0; i < 64; ++i) {
    q.schedule_at(TimeNs{static_cast<std::int64_t>(10'000 + i)}, [] {});
  }
  EXPECT_GE(q.compactions(), 1u);
  q.run();
  EXPECT_EQ(q.executed(), 4096u / 8 + 64u);
}

}  // namespace
