// Unit tests: core experiment driver, config assembly, report formatting.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/report.hpp"

namespace {

using namespace mkos;
using namespace mkos::core;

TEST(Config, Presets) {
  EXPECT_EQ(SystemConfig::linux_default().label(), "Linux");
  EXPECT_EQ(SystemConfig::mckernel().label(), "McKernel");
  EXPECT_EQ(SystemConfig::mos().label(), "mOS");
  EXPECT_EQ(SystemConfig::for_os(kernel::OsKind::kMos).os, kernel::OsKind::kMos);
}

TEST(Config, MachineAssembly) {
  const auto m = SystemConfig::mckernel().machine(128);
  EXPECT_EQ(m.cluster.node_count(), 128);
  EXPECT_EQ(m.os.os, kernel::OsKind::kMcKernel);
  EXPECT_EQ(m.cluster.node().core_count(), 68);
  EXPECT_GT(m.cluster.network().kernel_involved_ops, 0.0);
}

TEST(Config, UserSpaceNetworkToggle) {
  SystemConfig c = SystemConfig::mckernel();
  c.user_space_network = true;
  EXPECT_DOUBLE_EQ(c.machine(4).cluster.network().kernel_involved_ops, 0.0);
}

TEST(Config, QuadrantModeTopology) {
  SystemConfig c = SystemConfig::linux_default();
  c.mem_mode = MemMode::kQuadrantFlat;
  EXPECT_EQ(c.machine(1).cluster.node().domains().size(), 2u);
}

TEST(Experiment, RunAppCollectsRequestedRepetitions) {
  auto app = workloads::make_minife();
  const RunStats rs = run_app(*app, SystemConfig::mckernel(), 16, 5, 1234);
  EXPECT_EQ(rs.fom.count(), 5u);
  EXPECT_GT(rs.median(), 0.0);
  EXPECT_LE(rs.min(), rs.median());
  EXPECT_GE(rs.max(), rs.median());
  EXPECT_EQ(rs.unit, "Mflops");
}

TEST(Experiment, DeterministicForSameSeed) {
  auto app = workloads::make_hpcg();
  const RunStats a = run_app(*app, SystemConfig::mos(), 4, 2, 99);
  const RunStats b = run_app(*app, SystemConfig::mos(), 4, 2, 99);
  EXPECT_DOUBLE_EQ(a.median(), b.median());
}

TEST(Experiment, ScalingSweepHonorsCapAndCounts) {
  auto app = workloads::make_minife();
  const auto sweep = scaling_sweep(*app, SystemConfig::mckernel(), 2, 7, 64);
  ASSERT_EQ(sweep.size(), 3u);  // 16, 32, 64
  EXPECT_EQ(sweep[0].nodes, 16);
  EXPECT_EQ(sweep[2].nodes, 64);
  for (const auto& p : sweep) {
    EXPECT_LE(p.min, p.median);
    EXPECT_GE(p.max, p.median);
  }
}

TEST(Experiment, RelativeToAlignsOnNodeCounts) {
  std::vector<ScalingPoint> subject{{16, 110, 0, 0}, {32, 120, 0, 0}, {64, 130, 0, 0}};
  std::vector<ScalingPoint> baseline{{16, 100, 0, 0}, {64, 100, 0, 0}};
  const auto rel = relative_to(subject, baseline);
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel[0].nodes, 16);
  EXPECT_DOUBLE_EQ(rel[0].ratio, 1.1);
  EXPECT_DOUBLE_EQ(rel[1].ratio, 1.3);
}

TEST(Experiment, HeadlineAggregation) {
  std::vector<std::vector<RelativePoint>> curves{
      {{1, 1.0}, {2, 1.1}},
      {{1, 1.2}, {2, 2.8}},
  };
  const Headline h = headline(curves);
  EXPECT_DOUBLE_EQ(h.best_ratio, 2.8);
  EXPECT_NEAR(h.median_ratio, 1.15, 1e-9);
}

TEST(Report, TableAlignsColumns) {
  Table t{{"app", "nodes", "fom"}};
  t.add_row({"MiniFE", "1024", "1.2e7"});
  t.add_row({"HPCG", "16", "3.4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| app    |"), std::string::npos);
  EXPECT_NE(s.find("|    16 |"), std::string::npos);  // right-aligned numbers
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Report, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(1.21, 1), "121.0%");
  EXPECT_EQ(fmt_sci(12345678.0, 2), "1.23e+07");
}

}  // namespace
