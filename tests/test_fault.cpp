// Unit tests: the fault-injection subsystem — plan determinism and ordering,
// the injector, recovery-policy math, kernel-specific crash survival, the
// checkpoint-interval trade-off, MCDRAM denial spill, and the byte-identity
// guarantees (zero plan == no subsystem; serial == pooled under faults).

#include <gtest/gtest.h>

#include <vector>

#include "core/campaign.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "mem/address_space.hpp"
#include "runtime/resilience.hpp"
#include "runtime/simmpi.hpp"
#include "sim/thread_pool.hpp"
#include "workloads/app.hpp"

namespace {

using namespace mkos;
using core::SystemConfig;
using fault::FaultEvent;
using fault::FaultKind;
using fault::Plan;
using fault::RecoveryPolicy;
using runtime::Job;
using runtime::JobSpec;
using runtime::Machine;
using runtime::ResilienceManager;
using sim::TimeNs;

fault::Spec rate_spec() {
  fault::Spec s;
  s.node_fail_rate_hz = 0.5;
  s.straggler_rate_hz = 1.0;
  s.ikc_drop_rate_hz = 2.0;
  return s;
}

std::vector<FaultEvent> drain(Plan plan, TimeNs until, int chunks) {
  std::vector<FaultEvent> out;
  for (int i = 1; i <= chunks; ++i) {
    const auto batch = plan.take_until(TimeNs{until.ns() * i / chunks});
    out.insert(out.end(), batch.begin(), batch.end());
  }
  return out;
}

// ---------------------------------------------------------------- Plan

TEST(FaultPlan, GenerateIsDeterministic) {
  const auto a = drain(Plan::generate(rate_spec(), 16, 7), sim::seconds(2), 1);
  const auto b = drain(Plan::generate(rate_spec(), 16, 7), sim::seconds(2), 1);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].node, b[i].node);
  }
}

TEST(FaultPlan, ChunkedDrainMatchesOneShot) {
  const auto one = drain(Plan::generate(rate_spec(), 16, 7), sim::seconds(2), 1);
  const auto many = drain(Plan::generate(rate_spec(), 16, 7), sim::seconds(2), 8);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].at, many[i].at);
    EXPECT_EQ(one[i].kind, many[i].kind);
  }
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  const auto a = drain(Plan::generate(rate_spec(), 16, 7), sim::seconds(2), 1);
  const auto b = drain(Plan::generate(rate_spec(), 16, 8), sim::seconds(2), 1);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].at != b[i].at || a[i].node != b[i].node;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, FixedEventsSortByTimeThenInsertion) {
  Plan plan;
  plan.add({TimeNs{500}, FaultKind::kStraggler, 1, 0, TimeNs{0}})
      .add({TimeNs{100}, FaultKind::kIkcDrop, 2, 0, TimeNs{0}})
      .add({TimeNs{500}, FaultKind::kDaemonStorm, 3, 0, TimeNs{0}});
  const auto events = plan.take_until(TimeNs{1000});
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FaultKind::kIkcDrop);
  EXPECT_EQ(events[1].kind, FaultKind::kStraggler);  // insertion order at t=500
  EXPECT_EQ(events[2].kind, FaultKind::kDaemonStorm);
}

TEST(FaultPlan, TakeUntilIsStrictlyBefore) {
  Plan plan;
  plan.add({TimeNs{100}, FaultKind::kStraggler, 0, 0, TimeNs{0}});
  EXPECT_TRUE(plan.take_until(TimeNs{100}).empty());
  EXPECT_EQ(plan.take_until(TimeNs{101}).size(), 1u);
}

TEST(FaultPlan, EmptySpecYieldsEmptyPlan) {
  Plan plan = Plan::generate(fault::Spec{}, 1024, 99);
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.take_until(sim::seconds(1000)).empty());
}

TEST(FaultPlan, FingerprintSeparatesInputs) {
  const auto fp = [](int nodes, std::uint64_t seed) {
    return Plan::generate(rate_spec(), nodes, seed).fingerprint();
  };
  EXPECT_NE(fp(16, 7), fp(16, 8));
  EXPECT_NE(fp(16, 7), fp(32, 7));
  EXPECT_EQ(fp(16, 7), fp(16, 7));
}

// ------------------------------------------------------------- Injector

TEST(FaultInjector, FiresScheduledEventsOnce) {
  Plan plan;
  plan.add({TimeNs{10}, FaultKind::kStraggler, 0, 0, TimeNs{0}})
      .add({TimeNs{30}, FaultKind::kDaemonStorm, 0, 0, TimeNs{0}});
  fault::Injector inj{std::move(plan)};
  EXPECT_EQ(inj.advance(TimeNs{20}).size(), 1u);
  EXPECT_EQ(inj.advance(TimeNs{25}).size(), 0u);
  EXPECT_EQ(inj.advance(TimeNs{40}).size(), 1u);
  EXPECT_EQ(inj.activated(), 2u);
}

TEST(FaultInjector, ClampsEventsAddedInThePast) {
  // An event timestamped before the injector's clock (advance already moved
  // past it) must still fire, at the current clock, not violate the queue's
  // schedule_at precondition.
  fault::Spec spec;
  spec.straggler_rate_hz = 50.0;
  fault::Injector inj{Plan::generate(spec, 64, 3)};
  (void)inj.advance(sim::milliseconds(100));
  const auto& late = inj.advance(sim::seconds(10));
  for (std::size_t i = 1; i < late.size(); ++i) {
    EXPECT_GE(late[i].at, late[i - 1].at);  // order preserved after clamping
  }
}

// ---------------------------------------------------- config fingerprints

TEST(FaultSpec, DisabledSpecKeepsConfigFingerprint) {
  const SystemConfig base = SystemConfig::mckernel();
  SystemConfig with_defaults = SystemConfig::mckernel();
  with_defaults.resilience = fault::Spec{};  // inert
  EXPECT_FALSE(with_defaults.resilience.enabled());
  EXPECT_EQ(base.fingerprint(), with_defaults.fingerprint());
}

TEST(FaultSpec, EnabledSpecChangesConfigFingerprint) {
  const SystemConfig base = SystemConfig::mckernel();
  SystemConfig faulty = SystemConfig::mckernel();
  faulty.resilience.node_fail_rate_hz = 0.01;
  EXPECT_TRUE(faulty.resilience.enabled());
  EXPECT_NE(base.fingerprint(), faulty.fingerprint());

  SystemConfig other = faulty;
  other.resilience.policy = RecoveryPolicy::kRetry;
  EXPECT_NE(faulty.fingerprint(), other.fingerprint());
}

TEST(FaultSpec, CheckpointCadenceCountsAsEnabled) {
  fault::Spec s;
  s.policy = RecoveryPolicy::kCheckpointRestart;
  EXPECT_FALSE(s.enabled());  // interval 0: no cadence cost
  s.checkpoint_interval = sim::milliseconds(10);
  EXPECT_TRUE(s.enabled());
}

// ------------------------------------------------------ recovery policies

Machine mckernel_machine(int nodes) { return SystemConfig::mckernel().machine(nodes); }

TEST(Resilience, EmptyPlanChargesNothing) {
  const Machine m = mckernel_machine(4);
  Job job{m, JobSpec{4, 8, 1}, 11};
  ResilienceManager mgr{fault::Spec{}, job, 21};
  mgr.install_memory_faults();
  EXPECT_EQ(mgr.on_sync(sim::seconds(10)), TimeNs{0});
  EXPECT_EQ(mgr.counters().injected, 0u);
  EXPECT_EQ(mgr.counters().wait_ns, 0u);
}

TEST(Resilience, FailStopWithoutCheckpointsLosesAllProgress) {
  const Machine m = mckernel_machine(4);
  Job job{m, JobSpec{4, 8, 1}, 11};
  fault::Spec spec;
  spec.restart_cost = sim::milliseconds(1);
  Plan plan = Plan::scripted(spec);
  plan.add({sim::milliseconds(30), FaultKind::kNodeFailStop, 0, 0, TimeNs{0}});
  ResilienceManager mgr{std::move(plan), job, 21};
  const TimeNs extra = mgr.on_sync(sim::milliseconds(60));
  EXPECT_EQ(extra, sim::milliseconds(31));  // 30ms redone + 1ms relaunch
  EXPECT_EQ(mgr.counters().restarts, 1u);
  EXPECT_EQ(mgr.counters().lost_work_ns, 30'000'000u);
  EXPECT_EQ(mgr.counters().recovered, 0u);
}

TEST(Resilience, CheckpointsBoundRollbackAndChargeCadence) {
  const Machine m = mckernel_machine(4);
  Job job{m, JobSpec{4, 8, 1}, 11};
  fault::Spec spec;
  spec.policy = RecoveryPolicy::kCheckpointRestart;
  spec.checkpoint_interval = sim::milliseconds(10);
  spec.checkpoint_cost = sim::microseconds(100);
  spec.restart_cost = sim::milliseconds(1);
  Plan plan = Plan::scripted(spec);
  plan.add({sim::milliseconds(35), FaultKind::kNodeFailStop, 0, 0, TimeNs{0}});
  ResilienceManager mgr{std::move(plan), job, 21};
  const TimeNs extra = mgr.on_sync(sim::milliseconds(60));
  // 6 checkpoint boundaries in [0, 60), 5ms rollback past the 30ms one, 1ms
  // relaunch.
  EXPECT_EQ(extra, sim::milliseconds(6 * 0.1 + 5 + 1));
  EXPECT_EQ(mgr.counters().checkpoints, 6u);
  EXPECT_EQ(mgr.counters().lost_work_ns, 5'000'000u);
  EXPECT_EQ(mgr.counters().recovered, 1u);
}

TEST(Resilience, CheckpointIntervalHasInteriorOptimum) {
  // Fixed fail-stop schedule; sweep tiny / tuned / huge intervals. The tuned
  // interval must beat both edges (cadence-dominated vs rollback-dominated).
  const Machine m = mckernel_machine(4);
  const auto overhead = [&](TimeNs interval) {
    Job job{m, JobSpec{4, 8, 1}, 11};
    fault::Spec spec;
    spec.policy = RecoveryPolicy::kCheckpointRestart;
    spec.checkpoint_interval = interval;
    spec.checkpoint_cost = sim::milliseconds(2);
    spec.restart_cost = sim::milliseconds(1);
    Plan plan = Plan::scripted(spec);
    for (const double at_ms : {110.0, 340.0, 770.0}) {
      plan.add({sim::milliseconds(at_ms), FaultKind::kNodeFailStop, 0, 0, TimeNs{0}});
    }
    ResilienceManager mgr{std::move(plan), job, 21};
    return mgr.on_sync(sim::seconds(1));
  };
  const TimeNs tiny = overhead(sim::milliseconds(2));
  const TimeNs tuned = overhead(sim::milliseconds(40));
  const TimeNs huge = overhead(sim::milliseconds(900));
  EXPECT_LT(tuned, tiny);
  EXPECT_LT(tuned, huge);
}

TEST(Resilience, LwkSurvivesLinuxCrashThatKillsLinuxNode) {
  fault::Spec spec;
  spec.linux_reboot_stall = sim::milliseconds(40);
  spec.restart_cost = sim::milliseconds(1);
  const auto crash = [&](const SystemConfig& config) {
    const Machine m = config.machine(4);
    Job job{m, JobSpec{4, 8, 1}, 11};
    Plan plan = Plan::scripted(spec);
    plan.add({sim::milliseconds(50), FaultKind::kLinuxCrash, 0, 0,
              spec.linux_reboot_stall});
    ResilienceManager mgr{std::move(plan), job, 21};
    const TimeNs extra = mgr.on_sync(sim::milliseconds(100));
    return std::pair{extra, mgr.counters()};
  };

  const auto [lwk_extra, lwk_c] = crash(SystemConfig::mckernel());
  EXPECT_EQ(lwk_c.recovered, 1u);
  EXPECT_EQ(lwk_c.restarts, 0u);
  EXPECT_LT(lwk_extra, spec.linux_reboot_stall);  // only the offloaded share

  const auto [lin_extra, lin_c] = crash(SystemConfig::linux_default());
  EXPECT_EQ(lin_c.restarts, 1u);
  EXPECT_EQ(lin_c.node_failures, 1u);
  EXPECT_EQ(lin_c.recovered, 0u);
  EXPECT_GT(lin_extra, lwk_extra);  // lost the node: 50ms redone + relaunch
}

TEST(Resilience, RedistributionAbsorbsStragglerSlowdown) {
  const Machine m = mckernel_machine(4);
  const auto straggle = [&](RecoveryPolicy policy) {
    Job job{m, JobSpec{4, 8, 1}, 11};
    fault::Spec spec;
    spec.policy = policy;
    spec.redistribution_cost = sim::microseconds(100);
    Plan plan = Plan::scripted(spec);
    plan.add({TimeNs{0}, FaultKind::kStraggler, 0, 3.0, sim::milliseconds(20)});
    ResilienceManager mgr{std::move(plan), job, 21};
    const TimeNs extra = mgr.on_sync(sim::milliseconds(40));
    return std::pair{extra, mgr.counters()};
  };

  const auto [exposed, none_c] = straggle(RecoveryPolicy::kNone);
  EXPECT_EQ(exposed, sim::milliseconds(40));  // 20ms at 3x: 2x slowdown exposed
  EXPECT_EQ(none_c.redistributed_ns, 0u);

  const auto [absorbed, retry_c] = straggle(RecoveryPolicy::kRetry);
  // Residual 0.25 of the slowdown + the rebalance cost.
  EXPECT_EQ(absorbed, sim::milliseconds(10) + sim::microseconds(100));
  EXPECT_EQ(retry_c.redistributed_ns, 30'000'000u);
  EXPECT_EQ(retry_c.recovered, 1u);
}

TEST(Resilience, IkcDropRetriesOnIkcKernelsOnly) {
  fault::Spec spec;
  spec.policy = RecoveryPolicy::kRetry;
  const auto drop = [&](const SystemConfig& config) {
    const Machine m = config.machine(4);
    Job job{m, JobSpec{4, 8, 1}, 11};
    Plan plan = Plan::scripted(spec);
    plan.add({sim::milliseconds(1), FaultKind::kIkcDrop, 0, 4.0, TimeNs{0}});
    ResilienceManager mgr{std::move(plan), job, 21};
    const TimeNs extra = mgr.on_sync(sim::milliseconds(10));
    return std::pair{extra, mgr.counters()};
  };

  const auto [mck_extra, mck_c] = drop(SystemConfig::mckernel());
  EXPECT_EQ(mck_c.ikc_dropped, 4u);
  EXPECT_GE(mck_c.retried, 4u);  // at least one resend per message
  EXPECT_EQ(mck_c.recovered, 4u);
  EXPECT_GT(mck_c.backoff_wait_ns, 0u);
  EXPECT_GT(mck_extra, TimeNs{0});

  // Linux has no IKC channel: the event fires but nothing detects it.
  const auto [lin_extra, lin_c] = drop(SystemConfig::linux_default());
  EXPECT_EQ(lin_extra, TimeNs{0});
  EXPECT_EQ(lin_c.detected, 0u);
  EXPECT_EQ(lin_c.ikc_dropped, 0u);
}

TEST(Resilience, StormBarelyReachesLwkCores) {
  const auto storm = [](const SystemConfig& config) {
    const Machine m = config.machine(4);
    Job job{m, JobSpec{4, 8, 1}, 11};
    Plan plan = Plan::scripted(fault::Spec{});
    plan.add({TimeNs{0}, FaultKind::kDaemonStorm, 0, 1.0, sim::milliseconds(25)});
    ResilienceManager mgr{std::move(plan), job, 21};
    return mgr.on_sync(sim::milliseconds(25));
  };
  const TimeNs on_linux = storm(SystemConfig::linux_default());
  const TimeNs on_mos = storm(SystemConfig::mos());
  EXPECT_GT(on_linux, TimeNs{0});
  // Partitioning: the mOS LWK feels a small fraction of what Linux does.
  EXPECT_LT(on_mos.ns() * 5, on_linux.ns());
}

TEST(Resilience, IsolationLeakOrdersKernels) {
  EXPECT_EQ(ResilienceManager::isolation_leak(kernel::OsKind::kLinux), 1.0);
  EXPECT_LT(ResilienceManager::isolation_leak(kernel::OsKind::kFusedOs), 0.5);
  EXPECT_LT(ResilienceManager::isolation_leak(kernel::OsKind::kMcKernel),
            ResilienceManager::isolation_leak(kernel::OsKind::kFusedOs));
}

// ----------------------------------------------------- MCDRAM denial spill

TEST(Resilience, McdramDenialForcesDdr4Spill) {
  const Machine m = mckernel_machine(1);
  Job job{m, JobSpec{1, 8, 1}, 11};
  fault::Spec spec;
  spec.mcdram_fail_fraction = 1.0;  // every MCDRAM allocation denied
  ResilienceManager mgr{spec, job, 21};
  mgr.install_memory_faults();
  (void)job.kernel().sys_mmap(job.lane(0), 64 * sim::MiB, mem::VmaKind::kAnon,
                              mem::MemPolicy::standard());
  EXPECT_LT(job.lane_fraction_in(0, hw::MemKind::kMcdram), 0.01);
  EXPECT_GT(mgr.counters().mcdram_denied, 0u);

  // Control: the same job without denial places the mapping in MCDRAM.
  Job healthy{m, JobSpec{1, 8, 1}, 11};
  (void)healthy.kernel().sys_mmap(healthy.lane(0), 64 * sim::MiB, mem::VmaKind::kAnon,
                                  mem::MemPolicy::standard());
  EXPECT_GT(healthy.lane_fraction_in(0, hw::MemKind::kMcdram), 0.99);
}

TEST(Resilience, HooksDetachOnDestruction) {
  const Machine m = mckernel_machine(1);
  Job job{m, JobSpec{1, 8, 1}, 11};
  {
    fault::Spec spec;
    spec.mcdram_fail_fraction = 1.0;
    ResilienceManager mgr{spec, job, 21};
    mgr.install_memory_faults();
  }
  // Manager gone: allocations flow to MCDRAM again.
  (void)job.kernel().sys_mmap(job.lane(0), 64 * sim::MiB, mem::VmaKind::kAnon,
                              mem::MemPolicy::standard());
  EXPECT_GT(job.lane_fraction_in(0, hw::MemKind::kMcdram), 0.99);
}

// ----------------------------------------------------- end-to-end identity

fault::Spec chaotic_spec() {
  fault::Spec s;
  s.node_fail_rate_hz = 0.002;
  s.straggler_rate_hz = 0.01;
  s.storm_rate_hz = 0.005;
  s.ikc_drop_rate_hz = 0.02;
  s.linux_crash_rate_hz = 0.002;
  s.policy = RecoveryPolicy::kFull;
  s.checkpoint_interval = sim::milliseconds(20);
  s.checkpoint_cost = sim::microseconds(200);
  return s;
}

TEST(Resilience, ZeroFaultRunMatchesPlainRun) {
  // The whole-pipeline identity: a config whose resilience spec is inert
  // must produce byte-identical ledgers (and FOMs) to the config as it
  // existed before the subsystem.
  auto app_a = workloads::make_app("MiniFE");
  auto app_b = workloads::make_app("MiniFE");
  const SystemConfig plain = SystemConfig::mckernel();
  SystemConfig inert = SystemConfig::mckernel();
  inert.resilience = fault::Spec{};
  const core::RunStats a = core::run_app(*app_a, plain, 8, 2, 42);
  const core::RunStats b = core::run_app(*app_b, inert, 8, 2, 42);
  EXPECT_EQ(a.fom.samples(), b.fom.samples());
  EXPECT_EQ(a.ledger.to_json(), b.ledger.to_json());
}

TEST(Resilience, FaultyRunIsSeedDeterministic) {
  SystemConfig config = SystemConfig::mckernel();
  config.resilience = chaotic_spec();
  auto app_a = workloads::make_app("MiniFE");
  auto app_b = workloads::make_app("MiniFE");
  const core::RunStats a = core::run_app(*app_a, config, 8, 2, 42);
  const core::RunStats b = core::run_app(*app_b, config, 8, 2, 42);
  EXPECT_EQ(a.ledger.to_json(), b.ledger.to_json());
  EXPECT_GT(a.ledger.counter("fault.injected"), 0u);
  EXPECT_GT(a.ledger.counter("fault.wait_ns"), 0u);
}

TEST(Resilience, SerialAndPooledLedgersAreByteIdenticalUnderFaults) {
  SystemConfig config = SystemConfig::mckernel();
  config.resilience = chaotic_spec();
  auto app = workloads::make_app("MiniFE");
  const core::RunStats serial = core::run_app(*app, config, 8, 4, 42);
  sim::ThreadPool pool{4};
  const core::RunStats pooled = core::run_app("MiniFE", config, 8, 4, 42, pool);
  EXPECT_EQ(serial.fom.samples(), pooled.fom.samples());
  EXPECT_EQ(serial.ledger.to_json(), pooled.ledger.to_json());
}

TEST(Resilience, FaultsDegradeFom) {
  auto app_a = workloads::make_app("MiniFE");
  auto app_b = workloads::make_app("MiniFE");
  const SystemConfig plain = SystemConfig::mckernel();
  SystemConfig faulty = SystemConfig::mckernel();
  faulty.resilience = chaotic_spec();
  faulty.resilience.policy = RecoveryPolicy::kNone;
  const double base = core::run_app(*app_a, plain, 8, 2, 42).median();
  const double hurt = core::run_app(*app_b, faulty, 8, 2, 42).median();
  EXPECT_LT(hurt, base);
}

}  // namespace
